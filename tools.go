package confllvm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strings"

	"confllvm/internal/asm"
	"confllvm/internal/link"
	"confllvm/internal/verify"
)

// SaveFile writes the artifact's image to disk (the "U dll" of Fig. 2).
func (a *Artifact) SaveFile(path string) error { return a.Image.SaveFile(path) }

// LoadArtifactFile loads an image produced by SaveFile and wraps it as a
// runnable artifact. The variant is recovered from the embedded config.
func LoadArtifactFile(path string) (*Artifact, error) {
	img, err := link.LoadFile(path)
	if err != nil {
		return nil, err
	}
	art := &Artifact{Image: img, Variant: VariantBase}
	for v := VariantBase; v < numVariants; v++ {
		c := v.Config()
		c.StackOffset = img.Config.StackOffset
		if c == img.Config {
			art.Variant = v
			break
		}
	}
	return art, nil
}

// VerifyImageFile runs ConfVerify on an on-disk image (the standalone
// confverify tool: no compiler state, just the binary and its prefixes).
func VerifyImageFile(path string, strict bool) error {
	_, err := VerifyImageFileStats(path, verify.Options{Strict: strict})
	return err
}

// VerifyImageFileStats is VerifyImageFile with explicit verifier options
// (parallelism, verdict cache) and throughput stats — the entry point
// behind confverify's -par and -bench flags.
func VerifyImageFileStats(path string, opts verify.Options) (verify.Stats, error) {
	img, err := link.LoadFile(path)
	if err != nil {
		return verify.Stats{}, err
	}
	return verify.VerifyStats(img, opts)
}

// ParseVariant resolves a configuration name (as printed by String).
func ParseVariant(name string) (Variant, error) {
	for v := VariantBase; v < numVariants; v++ {
		if strings.EqualFold(v.String(), name) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q (try: base, baseoa, ourbare, ourcfi, ourmpx, ourseg)", name)
}

// Disassemble renders an assembly listing of the linked image, annotating
// function entries, magic words and code addresses — the ConfLLVM
// counterpart of objdump.
func Disassemble(art *Artifact) string {
	img := art.Image
	var b strings.Builder
	fmt.Fprintf(&b, "; %s image, %d bytes of code, %d functions\n",
		art.Variant, len(img.Code), len(img.Funcs))
	if img.Config.CFI {
		fmt.Fprintf(&b, "; MCall prefix %#x, MRet prefix %#x\n", img.MCallPrefix, img.MRetPrefix)
	}

	funcs := append([]*link.FuncSym{}, img.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Base < funcs[j].Base })
	magic := img.MagicOffsets()

	for _, fs := range funcs {
		fmt.Fprintf(&b, "\n%s:  ; args=%05b ret=%d", fs.Name, fs.ArgBits, fs.RetBit)
		if fs.IsStub {
			b.WriteString(" (stub)")
		}
		b.WriteString("\n")
		off := int(fs.Base - img.Layout.CodeBase)
		end := off + int(fs.Size)
		for off < end {
			addr := img.Layout.CodeBase + uint64(off)
			if magic[off] {
				w := binary.LittleEndian.Uint64(img.Code[off:])
				kind := "MRET"
				if w&^31 == img.MCallPrefix {
					kind = "MCALL"
				}
				fmt.Fprintf(&b, "  %08x:  .magic %s|%05b\n", addr, kind, w&31)
				off += 8
				continue
			}
			inst, n, err := asm.Decode(img.Code, off)
			if err != nil {
				fmt.Fprintf(&b, "  %08x:  .byte %#02x\n", addr, img.Code[off])
				off++
				continue
			}
			fmt.Fprintf(&b, "  %08x:  %s\n", addr, inst)
			off += n
		}
	}
	return b.String()
}

// CompileFiles reads miniC sources from disk and compiles them.
func CompileFiles(paths []string, variant Variant, prog Program) (*Artifact, error) {
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		prog.Sources = append(prog.Sources, Source{Name: p, Code: string(data)})
	}
	return Compile(prog, variant)
}
