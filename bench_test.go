// bench_test.go regenerates every table and figure of the paper's
// evaluation (§7). Each figure is one benchmark family; the configuration
// columns are sub-benchmarks. Per-op metrics are *simulated* cycles from
// the machine's cost model ("simcyc"), and when a figure's last column
// finishes, the paper-style percent-of-base table is printed.
//
//	go test -bench=. -benchmem ./...
package confllvm_test

import (
	"fmt"
	"sync"
	"testing"

	"confllvm"
	"confllvm/internal/bench"
)

var (
	tableMu sync.Mutex
	tables  = map[string]*bench.Table{}
)

func record(figure, row string, cols []confllvm.Variant, unit string,
	v confllvm.Variant, cycles uint64, lastRow bool) {
	tableMu.Lock()
	defer tableMu.Unlock()
	t, ok := tables[figure]
	if !ok {
		t = bench.NewTable(figure, cols, unit)
		tables[figure] = t
	}
	t.Set(row, v, cycles)
	if v == cols[len(cols)-1] && lastRow {
		fmt.Printf("\n%s\n", t)
	}
}

// ---- Figure 5: SPEC CPU overhead ----

func BenchmarkFig5SPEC(b *testing.B) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX, confllvm.VariantSeg}
	kernels := bench.SPECKernels()
	for _, v := range cols {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, k := range kernels {
					m, err := bench.RunSPEC(k, v)
					if err != nil {
						b.Fatal(err)
					}
					total += m.Wall
					record("Figure 5: SPEC CPU execution time (% of Base)",
						k.Name, cols, "cyc", v, m.Wall, k.Name == kernels[len(kernels)-1].Name)
				}
			}
			b.ReportMetric(float64(total), "simcyc/op")
		})
	}
}

// ---- Figure 6: NGINX sustained throughput vs response size ----

func BenchmarkFig6NGINX(b *testing.B) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantOneMem,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPXSep, confllvm.VariantMPX}
	sizes := []int{0, 1, 5, 10, 20, 40} // KB
	const reqs = 24
	for _, kb := range sizes {
		for _, v := range cols {
			kb, v := kb, v
			b.Run(fmt.Sprintf("%dKB/%v", kb, v), func(b *testing.B) {
				var wall uint64
				for i := 0; i < b.N; i++ {
					m, err := bench.RunWebServer(v, reqs, kb*1024)
					if err != nil {
						b.Fatal(err)
					}
					wall = m.Wall
				}
				// Throughput: requests per gigacycle (bigger = better).
				thr := float64(reqs) / float64(wall) * 1e9
				b.ReportMetric(thr, "req/Gcyc")
				b.ReportMetric(float64(wall), "simcyc/op")
				tbl := "Figure 6: NGINX throughput (% of Base; cells are cycles/request, lower is better)"
				record(tbl, fmt.Sprintf("resp-%02dKB", kb), cols, "cyc/req",
					v, wall/uint64(reqs), kb == sizes[len(sizes)-1])
			})
		}
	}
}

// ---- §7.3: OpenLDAP throughput (hit and miss workloads) ----

func BenchmarkLDAP(b *testing.B) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX}
	const queries = 600
	for _, mode := range []struct {
		name string
		miss int
	}{{"miss", 100}, {"hit", 0}} {
		for _, v := range cols {
			mode, v := mode, v
			b.Run(fmt.Sprintf("%s/%v", mode.name, v), func(b *testing.B) {
				var wall uint64
				for i := 0; i < b.N; i++ {
					m, err := bench.RunLDAP(v, queries, mode.miss)
					if err != nil {
						b.Fatal(err)
					}
					wall = m.Wall
				}
				b.ReportMetric(float64(queries)/float64(wall)*1e9, "req/Gcyc")
				record("Section 7.3: OpenLDAP time per query (% of Base)",
					"query-"+mode.name, cols, "cyc/q", v, wall/queries, mode.name == "hit")
			})
		}
	}
}

// ---- Figure 7: Privado/SGX classification latency ----

func BenchmarkFig7Privado(b *testing.B) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX}
	const images = 2
	for _, v := range cols {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			var wall uint64
			for i := 0; i < b.N; i++ {
				m, err := bench.RunClassifier(v, images)
				if err != nil {
					b.Fatal(err)
				}
				wall = m.Wall
			}
			b.ReportMetric(float64(wall)/images, "simcyc/image")
			record("Figure 7: Privado classification latency (% of Base)",
				"classify", cols, "cyc/img", v, wall/images, true)
		})
	}
}

// ---- Figure 8: Merkle-FS parallel read scaling ----

func BenchmarkFig8Merkle(b *testing.B) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantSeg, confllvm.VariantMPX}
	const fileKB = 256
	threads := []int{1, 2, 3, 4, 5, 6}
	for _, n := range threads {
		for _, v := range cols {
			n, v := n, v
			b.Run(fmt.Sprintf("%dthreads/%v", n, v), func(b *testing.B) {
				var wall uint64
				for i := 0; i < b.N; i++ {
					m, err := bench.RunMerkle(v, fileKB, n)
					if err != nil {
						b.Fatal(err)
					}
					wall = m.Wall
				}
				b.ReportMetric(float64(wall), "simcyc/op")
				record("Figure 8: Merkle-FS parallel read time (% of Base)",
					fmt.Sprintf("%d-threads", n), cols, "cyc", v, wall,
					n == threads[len(threads)-1])
			})
		}
	}
}

// ---- Ablation: the §5.1 MPX optimizations ----

func BenchmarkAblationMPXNaive(b *testing.B) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX, confllvm.VariantMPXNaive}
	kernels := bench.SPECKernels()[:4] // a representative subset
	for _, v := range cols {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, k := range kernels {
					m, err := bench.RunSPEC(k, v)
					if err != nil {
						b.Fatal(err)
					}
					total += m.Wall
					record("Ablation: MPX check optimizations (% of Base)",
						k.Name, cols, "cyc", v, m.Wall,
						k.Name == kernels[len(kernels)-1].Name)
				}
			}
			b.ReportMetric(float64(total), "simcyc/op")
		})
	}
}

// ---- Toolchain benchmarks: compiler and verifier speed ----

func BenchmarkCompile(b *testing.B) {
	prog := confllvm.Program{Sources: []confllvm.Source{
		{Name: "web.c", Code: bench.WebServerSrc},
		{Name: "ulib.c", Code: bench.ULib},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := confllvm.Compile(prog, confllvm.VariantMPX); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	prog := confllvm.Program{Sources: []confllvm.Source{
		{Name: "web.c", Code: bench.WebServerSrc},
		{Name: "ulib.c", Code: bench.ULib},
	}}
	art, err := confllvm.Compile(prog, confllvm.VariantMPX)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := confllvm.Verify(art); err != nil {
			b.Fatal(err)
		}
	}
}
