package confllvm

import (
	"bytes"
	"testing"
)

// runSrc compiles and runs a program in one variant, failing on any
// pipeline error or machine fault.
func runSrc(t *testing.T, v Variant, w *World, srcs ...Source) *Result {
	t.Helper()
	art, err := Compile(Program{Sources: srcs}, v)
	if err != nil {
		t.Fatalf("[%v] compile: %v", v, err)
	}
	res, err := Run(art, w, nil)
	if err != nil {
		t.Fatalf("[%v] run: %v", v, err)
	}
	if res.Fault != nil {
		t.Fatalf("[%v] fault: %v", v, res.Fault)
	}
	return res
}

func TestE2EReturnValue(t *testing.T) {
	src := Source{"fib.c", `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
`}
	for _, v := range AllVariants() {
		res := runSrc(t, v, nil, src)
		if res.ExitCode != 144 {
			t.Errorf("[%v] fib(12) = %d, want 144", v, res.ExitCode)
		}
	}
}

func TestE2EArraysAndLoops(t *testing.T) {
	src := Source{"arr.c", `
extern void output(long v);
int main() {
	int a[32];
	int i;
	long sum = 0;
	for (i = 0; i < 32; i++) a[i] = i * i;
	for (i = 0; i < 32; i++) sum += a[i];
	output(sum);
	return 0;
}
`}
	for _, v := range AllVariants() {
		res := runSrc(t, v, nil, src)
		if len(res.Outputs) != 1 || res.Outputs[0] != 10416 {
			t.Errorf("[%v] outputs = %v, want [10416]", v, res.Outputs)
		}
	}
}

func TestE2EStructsPointers(t *testing.T) {
	src := Source{"st.c", `
struct node { int val; struct node *next; };
extern void *malloc(long size);
extern void output(long v);

int main() {
	struct node *head = NULL;
	int i;
	for (i = 1; i <= 5; i++) {
		struct node *n = (struct node*)malloc(sizeof(struct node));
		n->val = i * 10;
		n->next = head;
		head = n;
	}
	long sum = 0;
	while (head) {
		sum += head->val;
		head = head->next;
	}
	output(sum);
	return 0;
}
`}
	for _, v := range AllVariants() {
		res := runSrc(t, v, nil, src)
		if len(res.Outputs) != 1 || res.Outputs[0] != 150 {
			t.Errorf("[%v] outputs = %v, want [150]", v, res.Outputs)
		}
	}
}

func TestE2EFunctionPointers(t *testing.T) {
	src := Source{"fp.c", `
extern void output(long v);
int twice(int x) { return 2 * x; }
int square(int x) { return x * x; }
int (*ops[2])(int) = { twice, square };
int main() {
	int i;
	long acc = 0;
	for (i = 0; i < 2; i++) acc += ops[i](7);
	output(acc);
	return 0;
}
`}
	for _, v := range AllVariants() {
		res := runSrc(t, v, nil, src)
		if len(res.Outputs) != 1 || res.Outputs[0] != 63 {
			t.Errorf("[%v] outputs = %v, want [63]", v, res.Outputs)
		}
	}
}

func TestE2EPrivateDataFlow(t *testing.T) {
	// Private data round-trips through decrypt -> private buffer ->
	// encrypt -> send; the cleartext secret must never appear in NetOut.
	src := Source{"priv.c", `
extern int recv(int fd, char *buf, int size);
extern int send(int fd, char *buf, int size);
extern void decrypt(char *src, private char *dst, int size);
extern void encrypt(private char *src, char *dst, int size);

int main() {
	char in[32];
	private char secret[32];
	char out[32];
	int n = recv(0, in, 32);
	decrypt(in, secret, 32);
	// ... compute on secret in the private region ...
	int i;
	for (i = 0; i < 32; i++) secret[i] = secret[i] ^ 1;
	encrypt(secret, out, 32);
	send(1, out, 32);
	return n;
}
`}
	secret := []byte("top-secret-password-0123456789!")
	for _, v := range []Variant{VariantMPX, VariantSeg} {
		art, err := Compile(Program{Sources: []Source{src}}, v)
		if err != nil {
			t.Fatalf("[%v] compile: %v", v, err)
		}
		w := NewWorld()
		// Encrypt the secret as it would arrive on the wire.
		res0, err := Run(art, w, nil) // first run just to build a TCtx for key access
		if err != nil {
			t.Fatalf("[%v] run: %v", v, err)
		}
		enc := res0.TCtx.EncryptBytes(secret)
		w2 := NewWorld()
		w2.NetIn = [][]byte{enc}
		res, err := Run(art, w2, nil)
		if err != nil {
			t.Fatalf("[%v] run: %v", v, err)
		}
		if res.Fault != nil {
			t.Fatalf("[%v] fault: %v", v, res.Fault)
		}
		if res.ExitCode != 31 && res.ExitCode != 32 {
			t.Errorf("[%v] exit=%d", v, res.ExitCode)
		}
		for _, pkt := range res.NetOut {
			if bytes.Contains(pkt, secret[:16]) {
				t.Errorf("[%v] cleartext secret leaked to the network", v)
			}
		}
	}
}

func TestE2EVarargs(t *testing.T) {
	src := Source{"va.c", `
extern void output(long v);
long sum(int n, ...) {
	char *ap = __va_start();
	long total = 0;
	int i;
	for (i = 0; i < n; i++) total += __va_arg(ap, long);
	return total;
}
int main() {
	output(sum(4, 10, 20, 30, 40));
	output(sum(0));
	return 0;
}
`}
	for _, v := range AllVariants() {
		res := runSrc(t, v, nil, src)
		if len(res.Outputs) != 2 || res.Outputs[0] != 100 || res.Outputs[1] != 0 {
			t.Errorf("[%v] outputs = %v, want [100 0]", v, res.Outputs)
		}
	}
}

func TestE2EFloat(t *testing.T) {
	src := Source{"flt.c", `
extern void output(long v);
int main() {
	double a[8];
	int i;
	for (i = 0; i < 8; i++) a[i] = i * 1.5;
	double s = 0.0;
	for (i = 0; i < 8; i++) s = s + a[i] * a[i];
	output((long)s);
	return 0;
}
`}
	// sum of (1.5 i)^2 for i=0..7 = 2.25 * 140 = 315
	for _, v := range AllVariants() {
		res := runSrc(t, v, nil, src)
		if len(res.Outputs) != 1 || res.Outputs[0] != 315 {
			t.Errorf("[%v] outputs = %v, want [315]", v, res.Outputs)
		}
	}
}

func TestE2EGlobals(t *testing.T) {
	src := Source{"glob.c", `
extern void output(long v);
int counter = 5;
int table[4] = { 1, 2, 3, 4 };
char msg[8] = "hey";
int main() {
	counter += table[2];
	output(counter);
	output(msg[1]);
	return 0;
}
`}
	for _, v := range AllVariants() {
		res := runSrc(t, v, nil, src)
		if len(res.Outputs) != 2 || res.Outputs[0] != 8 || res.Outputs[1] != 'e' {
			t.Errorf("[%v] outputs = %v, want [8 101]", v, res.Outputs)
		}
	}
}

func TestE2EThreads(t *testing.T) {
	src := Source{"thr.c", `
extern void thread_spawn(void (*fn)(long), long arg);
extern void output(long v);
int results[4];
void worker(long id) {
	long i;
	long acc = 0;
	for (i = 0; i < 1000; i++) acc += i * (id + 1);
	results[id] = (int)acc;
}
int main() {
	long i;
	for (i = 0; i < 4; i++) thread_spawn(worker, i);
	return 0;
}
`}
	// Threads finish before the run ends; check results via memory would
	// need white-box access; instead have main compute after spawn. The
	// machine runs all threads to completion, so re-reading in a second
	// pass is race-free only because our benches join implicitly. Here we
	// simply check no fault occurs in any variant and cycle accounting
	// sees multiple threads.
	for _, v := range AllVariants() {
		res := runSrc(t, v, nil, src)
		if res.Machine == nil || len(res.Machine.Threads) != 5 {
			t.Errorf("[%v] expected 5 threads", v)
		}
	}
}
