// First unit tests for the lowering layer, focused on the instruction
// shapes the superblock dispatcher depends on: every basic block must end
// in an explicit terminator (jumps are never implicit fall-throughs), and
// calls/branches must lower to the documented CFI sequences.
package codegen

import (
	"testing"

	"confllvm/internal/asm"
	"confllvm/internal/irgen"
	"confllvm/internal/minic"
	"confllvm/internal/taint"
	"confllvm/internal/types"
)

// genModule compiles miniC source through parse -> irgen -> taint -> Gen
// under the given configuration (no optimization passes, so the emitted
// shapes are predictable).
func genModule(t *testing.T, src string, conf Config) *Module {
	t.Helper()
	gen := &minic.QualGen{}
	structs := map[string]*types.Type{}
	f, err := minic.Parse("t.c", src, structs, gen)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := irgen.Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatal(err)
	}
	var a *taint.Assignment
	if conf.IgnoreTaint {
		a = &taint.Assignment{}
	} else {
		a, err = taint.Infer(mod, gen.Count(), taint.Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if conf.StackOffset == 0 {
		conf.StackOffset = 1 << 30
	}
	cm, err := Gen(mod, a, conf)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func fnCode(t *testing.T, cm *Module, name string) *FuncCode {
	t.Helper()
	for _, f := range cm.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %q in module", name)
	return nil
}

// isTerminator mirrors the machine's superblock-terminator set for the
// ops codegen can emit at a block end.
func isTerminator(op asm.Op) bool {
	switch op {
	case asm.OpJmp, asm.OpJcc, asm.OpJmpR, asm.OpRet, asm.OpTrap:
		return true
	}
	return false
}

const branchy = `
long pick(long a, long b) {
	long r = 0;
	if (a < b) { r = a * 2; } else { r = b + 1; }
	while (r > 10) { r = r - 3; }
	return r;
}

int main() {
	return (int)pick(3, 9);
}
`

// TestCondBrLowering: a conditional branch lowers to test + jcc(NE) +
// jmp, both jump operands carrying block relocations — never an implicit
// fall-through.
func TestCondBrLowering(t *testing.T) {
	cm := genModule(t, branchy, Config{})
	fc := fnCode(t, cm, "pick")
	found := false
	for i := 0; i+2 < len(fc.Items); i++ {
		a, b, c := fc.Items[i], fc.Items[i+1], fc.Items[i+2]
		if a.Inst.Op == asm.OpTestRR && b.Inst.Op == asm.OpJcc && c.Inst.Op == asm.OpJmp {
			if b.Inst.Cond != asm.CondNE {
				t.Errorf("condbr jcc condition = %v, want ne", b.Inst.Cond)
			}
			if b.Rel != RelBlock || c.Rel != RelBlock {
				t.Errorf("condbr jump relocations = %v/%v, want RelBlock", b.Rel, c.Rel)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no test+jcc+jmp triple found for the conditional branch")
	}
}

// TestBlocksEndInTerminators: every labeled basic block must be closed by
// an explicit terminator before the next label — the property that lets
// the machine fuse block interiors without missing a dispatch point.
func TestBlocksEndInTerminators(t *testing.T) {
	for _, conf := range []Config{{}, {CFI: true, Bounds: BoundsMPX,
		SeparateStacks: true, SeparateUT: true, ChkStk: true}} {
		cm := genModule(t, branchy, conf)
		for _, fc := range cm.Funcs {
			if fc.IsStub {
				continue
			}
			firstLabel := true
			for i, it := range fc.Items {
				if it.Magic || it.Label < 0 {
					continue
				}
				if firstLabel {
					firstLabel = false // entry block follows the prologue
					continue
				}
				prev := fc.Items[i-1]
				if prev.Magic || !isTerminator(prev.Inst.Op) {
					t.Errorf("%s: block label %d at item %d is preceded by %v, not a terminator",
						fc.Name, it.Label, i, prev.Inst.Op)
				}
			}
			// The function's final item must also be a terminator (the
			// epilogue's ret/jmp or the shared trap site).
			last := fc.Items[len(fc.Items)-1]
			if last.Magic || !isTerminator(last.Inst.Op) {
				t.Errorf("%s: final item %v is not a terminator", fc.Name, last.Inst.Op)
			}
		}
	}
}

const callers = `
extern void output(long v);

long helper(long x, long y) {
	return x * y + 1;
}

int main() {
	long r = helper(6, 7);
	output(r);
	return (int)r;
}
`

// TestDirectCallLowering: a direct call lowers to OpCall with a RelFunc
// relocation on the callee symbol; under CFI the return site is followed
// by a return magic word.
func TestDirectCallLowering(t *testing.T) {
	for _, cfi := range []bool{false, true} {
		conf := Config{}
		if cfi {
			conf = Config{CFI: true, SeparateStacks: true, SeparateUT: true}
		}
		cm := genModule(t, callers, conf)
		fc := fnCode(t, cm, "main")
		found := false
		for i, it := range fc.Items {
			if it.Magic || it.Inst.Op != asm.OpCall || it.Sym != "helper" {
				continue
			}
			if it.Rel != RelFunc {
				t.Errorf("call relocation = %v, want RelFunc", it.Rel)
			}
			if cfi {
				if i+1 >= len(fc.Items) || !fc.Items[i+1].Magic || fc.Items[i+1].MagicCall {
					t.Error("CFI call site is not followed by a return magic word")
				}
			}
			found = true
		}
		if !found {
			t.Fatalf("cfi=%v: no direct call to helper emitted", cfi)
		}
	}
}

const indirect = `
long inc(long x) {
	return x + 1;
}

int main() {
	long (*fp)(long);
	fp = inc;
	return (int)fp(41);
}
`

// TestIndirectCallCFI: an indirect call under CFI lowers to the §4 check
// sequence — load the expected (negated) call magic, compare it against
// the word at the target, trap on mismatch, then icall past the magic.
func TestIndirectCallCFI(t *testing.T) {
	cm := genModule(t, indirect, Config{CFI: true, SeparateStacks: true, SeparateUT: true})
	fc := fnCode(t, cm, "main")
	want := []struct {
		op  asm.Op
		rel RelKind
	}{
		{asm.OpMovRI, RelCallMagicNot},
		{asm.OpNot, RelNone},
		{asm.OpCmpMR, RelNone},
		{asm.OpJcc, RelTrap},
		{asm.OpAddRI, RelNone},
		{asm.OpICall, RelNone},
	}
	for i := 0; i+len(want) <= len(fc.Items); i++ {
		match := true
		for j, w := range want {
			it := fc.Items[i+j]
			if it.Magic || it.Inst.Op != w.op || it.Rel != w.rel {
				match = false
				break
			}
		}
		if match {
			if add := fc.Items[i+4].Inst; add.Imm != 8 {
				t.Errorf("icall magic skip adds %d, want 8", add.Imm)
			}
			return
		}
	}
	t.Fatal("CFI indirect-call sequence not found")
}

// TestIndirectCallNoCFI: without CFI the indirect call is a bare icall.
func TestIndirectCallNoCFI(t *testing.T) {
	cm := genModule(t, indirect, Config{})
	fc := fnCode(t, cm, "main")
	for _, it := range fc.Items {
		if !it.Magic && it.Inst.Op == asm.OpCmpMR {
			t.Fatal("CFI magic check emitted without CFI")
		}
	}
}

const pointerTouch = `
long touch(long *p) {
	p[0] = p[1] + p[2];
	return p[0];
}

int main() {
	long buf[4];
	buf[1] = 20;
	buf[2] = 22;
	return (int)touch(buf);
}
`

// TestBoundsEmission: the MPX scheme emits paired lower/upper checks
// before pointer accesses; the segmentation scheme instead tags operands
// with a segment prefix and the 32-bit constraint; Base emits neither.
func TestBoundsEmission(t *testing.T) {
	count := func(fc *FuncCode, op asm.Op) int {
		n := 0
		for _, it := range fc.Items {
			if !it.Magic && it.Inst.Op == op {
				n++
			}
		}
		return n
	}

	base := genModule(t, pointerTouch, Config{IgnoreTaint: true})
	fc := fnCode(t, base, "touch")
	if count(fc, asm.OpBndCLReg)+count(fc, asm.OpBndCUReg) != 0 {
		t.Error("Base emitted MPX checks")
	}

	mpxConf := Config{CFI: true, Bounds: BoundsMPX, SeparateStacks: true,
		SeparateUT: true, ChkStk: true}
	mpx := genModule(t, pointerTouch, mpxConf)
	fc = fnCode(t, mpx, "touch")
	lo, hi := count(fc, asm.OpBndCLReg), count(fc, asm.OpBndCUReg)
	if lo == 0 || lo != hi {
		t.Errorf("MPX checks: %d lower / %d upper, want equal and nonzero", lo, hi)
	}
	if count(fc, asm.OpChkSP) == 0 {
		t.Error("ChkStk config emitted no chksp")
	}

	// The naive ablation may only add checks, never remove them.
	naiveConf := mpxConf
	naiveConf.NoMPXOpt = true
	naive := genModule(t, pointerTouch, naiveConf)
	nfc := fnCode(t, naive, "touch")
	if n := count(nfc, asm.OpBndCLReg); n < lo {
		t.Errorf("NoMPXOpt emitted fewer checks (%d) than optimized (%d)", n, lo)
	}

	segConf := Config{CFI: true, Bounds: BoundsSeg, SeparateStacks: true,
		SeparateUT: true, ChkStk: true}
	seg := genModule(t, pointerTouch, segConf)
	fc = fnCode(t, seg, "touch")
	if count(fc, asm.OpBndCLReg)+count(fc, asm.OpBndCUReg) != 0 {
		t.Error("Seg scheme emitted MPX checks")
	}
	segged := false
	for _, it := range fc.Items {
		if it.Magic {
			continue
		}
		if (it.Inst.Op == asm.OpLoad || it.Inst.Op == asm.OpStore) &&
			it.Inst.M.Seg != asm.SegNone {
			if !it.Inst.M.Use32 {
				t.Error("segment-prefixed operand without the 32-bit constraint")
			}
			segged = true
		}
	}
	if !segged {
		t.Error("Seg scheme emitted no segment-prefixed accesses")
	}
}

// TestStubShape: an extern (T) function gets a U-side stub that jumps
// through the read-only externals table, with a call magic under CFI and
// an fs-prefixed table load under the segmentation scheme.
func TestStubShape(t *testing.T) {
	cm := genModule(t, callers, Config{CFI: true, Bounds: BoundsSeg,
		SeparateStacks: true, SeparateUT: true, ChkStk: true})
	fc := fnCode(t, cm, "output")
	if !fc.IsStub {
		t.Fatal("extern output did not become a stub")
	}
	if !fc.Items[0].Magic || !fc.Items[0].MagicCall {
		t.Error("CFI stub does not start with a call magic word")
	}
	var ops []asm.Op
	var rels []RelKind
	for _, it := range fc.Items {
		if it.Magic {
			continue
		}
		ops = append(ops, it.Inst.Op)
		rels = append(rels, it.Rel)
	}
	if len(ops) != 3 || ops[0] != asm.OpMovRI || ops[1] != asm.OpLoad || ops[2] != asm.OpJmpR {
		t.Fatalf("stub ops = %v, want [mov load jmpR]", ops)
	}
	if rels[0] != RelExtSlot {
		t.Errorf("stub table relocation = %v, want RelExtSlot", rels[0])
	}
	for _, it := range fc.Items {
		if !it.Magic && it.Inst.Op == asm.OpLoad {
			if it.Inst.M.Seg != asm.SegFS || !it.Inst.M.Use32 {
				t.Error("stub table load must go through fs with the 32-bit constraint")
			}
		}
	}
}
