package codegen

import (
	"fmt"
	"math"

	"confllvm/internal/asm"
	"confllvm/internal/ir"
	"confllvm/internal/regalloc"
	"confllvm/internal/types"
)

// qualPrivate resolves a qualifier under the active configuration.
func (c *ctx) qualPrivate(q types.Qual) bool {
	if c.conf.IgnoreTaint {
		return false
	}
	return c.a.IsPrivate(q)
}

func (c *ctx) valPrivate(v ir.Value) bool {
	t := c.f.ValueType(v)
	return t != nil && c.qualPrivate(t.Qual)
}

// readGPR materializes v into a general-purpose register, using scratch
// when v lives in memory or an FP register.
func (c *ctx) readGPR(v ir.Value, scratch asm.Reg) asm.Reg {
	loc := c.ra.Locs[v]
	switch loc.Kind {
	case regalloc.LocReg:
		return loc.Reg
	case regalloc.LocFReg:
		c.emit(asm.Inst{Op: asm.OpMovQFI, Dst: scratch, FSrc: loc.FReg})
	case regalloc.LocSlot:
		c.emit(asm.Inst{Op: asm.OpLoad, Dst: scratch, M: c.spillOperand(loc)})
	default:
		// Unallocated (dead) value: zero the scratch.
		c.emit(asm.Inst{Op: asm.OpMovRI, Dst: scratch, Imm: 0})
	}
	// The scratch now holds a different value than when any coalesced MPX
	// check was emitted against it; a stale entry here would let a
	// reloaded pointer ride on another pointer's bound check (the
	// verifier rejects exactly this).
	c.invalidateChecks(scratch)
	return scratch
}

// readFPR materializes v into a floating-point register.
func (c *ctx) readFPR(v ir.Value, scratch asm.FReg) asm.FReg {
	loc := c.ra.Locs[v]
	switch loc.Kind {
	case regalloc.LocFReg:
		return loc.FReg
	case regalloc.LocReg:
		c.emit(asm.Inst{Op: asm.OpMovQIF, FDst: scratch, Src: loc.Reg})
		return scratch
	case regalloc.LocSlot:
		c.emit(asm.Inst{Op: asm.OpFLoad, FDst: scratch, M: c.spillOperand(loc)})
		return scratch
	}
	c.emit(asm.Inst{Op: asm.OpFMovI, FDst: scratch, Imm: 0})
	return scratch
}

// destGPR returns the register to compute v's result in; flushGPR stores
// it back if v lives in memory or an FP register.
func (c *ctx) destGPR(v ir.Value) asm.Reg {
	loc := c.ra.Locs[v]
	if loc.Kind == regalloc.LocReg {
		return loc.Reg
	}
	return regalloc.ScratchA
}

func (c *ctx) flushGPR(v ir.Value, r asm.Reg) {
	loc := c.ra.Locs[v]
	switch loc.Kind {
	case regalloc.LocReg:
		// computed in place
	case regalloc.LocFReg:
		c.emit(asm.Inst{Op: asm.OpMovQIF, FDst: loc.FReg, Src: r})
	case regalloc.LocSlot:
		c.emit(asm.Inst{Op: asm.OpStore, M: c.spillOperand(loc), Src: r})
	}
	c.invalidateChecks(r)
}

func (c *ctx) destFPR(v ir.Value) asm.FReg {
	loc := c.ra.Locs[v]
	if loc.Kind == regalloc.LocFReg {
		return loc.FReg
	}
	return regalloc.ScratchFA
}

func (c *ctx) flushFPR(v ir.Value, r asm.FReg) {
	loc := c.ra.Locs[v]
	switch loc.Kind {
	case regalloc.LocFReg:
	case regalloc.LocReg:
		c.emit(asm.Inst{Op: asm.OpMovQFI, Dst: loc.Reg, FSrc: r})
	case regalloc.LocSlot:
		c.emit(asm.Inst{Op: asm.OpFStore, M: c.spillOperand(loc), FSrc: r})
	}
}

// invalidateChecks drops coalesced MPX checks keyed on a clobbered register.
func (c *ctx) invalidateChecks(r asm.Reg) {
	for k := range c.checked {
		if k.reg == r {
			delete(c.checked, k)
		}
	}
}

// memOperand builds the operand for an access of size bytes at the address
// in rb, under the active scheme, emitting MPX checks as needed.
// private selects the region (gs/bnd1 vs fs/bnd0).
func (c *ctx) memOperand(rb asm.Reg, size uint8, signed, private bool) asm.Mem {
	m := asm.Mem{Base: rb, Index: asm.NoReg, Size: size, Signed: signed}
	switch c.conf.Bounds {
	case BoundsSeg:
		if private {
			m.Seg = asm.SegGS
		} else {
			m.Seg = asm.SegFS
		}
		m.Use32 = true
	case BoundsMPX:
		bnd := asm.BND0
		if private {
			bnd = asm.BND1
		}
		// rsp-relative accesses are covered by the _chkstk discipline.
		if rb == asm.RSP && c.conf.ChkStk && !c.conf.NoMPXOpt {
			break
		}
		// Block-local coalescing: skip a check already emitted for the
		// same register and bound with no intervening clobber or call.
		key := checkKey{rb, bnd}
		if c.checked[key] && !c.conf.NoMPXOpt {
			break
		}
		// Register-operand preference with guard-displacement elision:
		// our addresses are fully computed in rb (disp 0), so the
		// register form always applies.
		c.emit(asm.Inst{Op: asm.OpBndCLReg, Src: rb, Bnd: bnd})
		c.emit(asm.Inst{Op: asm.OpBndCUReg, Src: rb, Bnd: bnd})
		c.checked[key] = true
	}
	return m
}

// lower translates one IR instruction.
func (c *ctx) lower(in *ir.Inst) error {
	switch in.Op {
	case ir.OpConst:
		d := c.destGPR(in.Res)
		c.emit(asm.Inst{Op: asm.OpMovRI, Dst: d, Imm: in.Imm})
		c.flushGPR(in.Res, d)
	case ir.OpFConst:
		d := c.destFPR(in.Res)
		c.emit(asm.Inst{Op: asm.OpFMovI, FDst: d, Imm: int64(math.Float64bits(in.FImm))})
		c.flushFPR(in.Res, d)

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar:
		c.lowerIntBin(in)

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		c.lowerFloatBin(in)

	case ir.OpICmp:
		a := c.readGPR(in.Args[0], regalloc.ScratchA)
		b := c.readGPR(in.Args[1], regalloc.ScratchB)
		c.emit(asm.Inst{Op: asm.OpCmpRR, Dst: a, Src: b})
		d := c.destGPR(in.Res)
		c.emit(asm.Inst{Op: asm.OpSetCC, Cond: icmpCond(in.Pred), Dst: d})
		c.flushGPR(in.Res, d)
	case ir.OpFCmp:
		a := c.readFPR(in.Args[0], regalloc.ScratchFA)
		b := c.readFPR(in.Args[1], regalloc.ScratchFB)
		c.emit(asm.Inst{Op: asm.OpFCmp, FDst: a, FSrc: b})
		d := c.destGPR(in.Res)
		c.emit(asm.Inst{Op: asm.OpSetCC, Cond: fcmpCond(in.Pred), Dst: d})
		c.flushGPR(in.Res, d)

	case ir.OpLoad:
		rb := c.readGPR(in.Args[0], regalloc.ScratchB)
		private := c.qualPrivate(in.Ty.Qual)
		if in.Ty.Kind == types.Float {
			m := c.memOperand(rb, 8, false, private)
			d := c.destFPR(in.Res)
			c.emit(asm.Inst{Op: asm.OpFLoad, FDst: d, M: m})
			c.flushFPR(in.Res, d)
			break
		}
		size := uint8(in.Ty.SizeOf())
		if size == 0 || size > 8 {
			size = 8
		}
		m := c.memOperand(rb, size, in.Ty.Signed, private)
		d := c.destGPR(in.Res)
		c.emit(asm.Inst{Op: asm.OpLoad, Dst: d, M: m})
		c.flushGPR(in.Res, d)
	case ir.OpStore:
		rb := c.readGPR(in.Args[0], regalloc.ScratchB)
		private := c.qualPrivate(in.Ty.Qual)
		if in.Ty.Kind == types.Float {
			v := c.readFPR(in.Args[1], regalloc.ScratchFA)
			m := c.memOperand(rb, 8, false, private)
			c.emit(asm.Inst{Op: asm.OpFStore, M: m, FSrc: v})
			break
		}
		v := c.readGPR(in.Args[1], regalloc.ScratchA)
		size := uint8(in.Ty.SizeOf())
		if size == 0 || size > 8 {
			size = 8
		}
		m := c.memOperand(rb, size, in.Ty.Signed, private)
		c.emit(asm.Inst{Op: asm.OpStore, M: m, Src: v})

	case ir.OpCopy:
		src := c.f.ValueType(in.Args[0])
		if src != nil && src.Kind == types.Float {
			v := c.readFPR(in.Args[0], regalloc.ScratchFA)
			c.flushFPR(in.Res, v)
			if c.ra.Locs[in.Res].Kind == regalloc.LocFReg && c.ra.Locs[in.Res].FReg != v {
				c.emit(asm.Inst{Op: asm.OpFMovRR, FDst: c.ra.Locs[in.Res].FReg, FSrc: v})
			}
			break
		}
		v := c.readGPR(in.Args[0], regalloc.ScratchA)
		loc := c.ra.Locs[in.Res]
		if loc.Kind == regalloc.LocReg {
			if loc.Reg != v {
				c.emit(asm.Inst{Op: asm.OpMovRR, Dst: loc.Reg, Src: v})
				c.invalidateChecks(loc.Reg)
			}
		} else {
			c.flushGPR(in.Res, v)
		}

	case ir.OpAddrOf:
		c.lowerAddrOf(in)

	case ir.OpGlobalAddr:
		d := c.destGPR(in.Res)
		c.emitRel(asm.Inst{Op: asm.OpMovRI, Dst: d}, RelGlobal, in.Global, 0)
		c.flushGPR(in.Res, d)
	case ir.OpFuncAddr:
		d := c.destGPR(in.Res)
		c.emitRel(asm.Inst{Op: asm.OpMovRI, Dst: d}, RelFuncPtr, in.Global, 0)
		c.flushGPR(in.Res, d)

	case ir.OpCall, ir.OpICall:
		return c.lowerCall(in)

	case ir.OpTrunc:
		v := c.readGPR(in.Args[0], regalloc.ScratchA)
		d := c.destGPR(in.Res)
		if d != v {
			c.emit(asm.Inst{Op: asm.OpMovRR, Dst: d, Src: v})
		}
		if s := in.Ty.SizeOf(); s < 8 {
			c.emit(asm.Inst{Op: asm.OpAndRI, Dst: d, Imm: int64(1)<<(8*uint(s)) - 1})
		}
		c.flushGPR(in.Res, d)
	case ir.OpZExt:
		v := c.readGPR(in.Args[0], regalloc.ScratchA)
		d := c.destGPR(in.Res)
		if d != v {
			c.emit(asm.Inst{Op: asm.OpMovRR, Dst: d, Src: v})
		}
		srcTy := c.f.ValueType(in.Args[0])
		if s := srcTy.SizeOf(); s < 8 {
			c.emit(asm.Inst{Op: asm.OpAndRI, Dst: d, Imm: int64(1)<<(8*uint(s)) - 1})
		}
		c.flushGPR(in.Res, d)
	case ir.OpSExt:
		v := c.readGPR(in.Args[0], regalloc.ScratchA)
		d := c.destGPR(in.Res)
		if d != v {
			c.emit(asm.Inst{Op: asm.OpMovRR, Dst: d, Src: v})
		}
		srcTy := c.f.ValueType(in.Args[0])
		if s := srcTy.SizeOf(); s < 8 {
			sh := int64(64 - 8*s)
			c.emit(asm.Inst{Op: asm.OpShlRI, Dst: d, Imm: sh})
			c.emit(asm.Inst{Op: asm.OpSarRI, Dst: d, Imm: sh})
		}
		c.flushGPR(in.Res, d)
	case ir.OpBitcast:
		src := c.f.ValueType(in.Args[0])
		if src != nil && src.Kind == types.Float && in.Ty.Kind != types.Float {
			v := c.readFPR(in.Args[0], regalloc.ScratchFA)
			d := c.destGPR(in.Res)
			c.emit(asm.Inst{Op: asm.OpMovQFI, Dst: d, FSrc: v})
			c.flushGPR(in.Res, d)
			break
		}
		v := c.readGPR(in.Args[0], regalloc.ScratchA)
		if in.Ty.Kind == types.Float {
			d := c.destFPR(in.Res)
			c.emit(asm.Inst{Op: asm.OpMovQIF, FDst: d, Src: v})
			c.flushFPR(in.Res, d)
			break
		}
		d := c.destGPR(in.Res)
		if d != v {
			c.emit(asm.Inst{Op: asm.OpMovRR, Dst: d, Src: v})
		}
		c.flushGPR(in.Res, d)
	case ir.OpIntToFP:
		v := c.readGPR(in.Args[0], regalloc.ScratchA)
		d := c.destFPR(in.Res)
		c.emit(asm.Inst{Op: asm.OpCvtIF, FDst: d, Src: v})
		c.flushFPR(in.Res, d)
	case ir.OpFPToInt:
		v := c.readFPR(in.Args[0], regalloc.ScratchFA)
		d := c.destGPR(in.Res)
		c.emit(asm.Inst{Op: asm.OpCvtFI, Dst: d, FSrc: v})
		c.flushGPR(in.Res, d)

	case ir.OpVaStart:
		d := c.destGPR(in.Res)
		disp := c.incomingArgDisp(len(c.f.Params))
		c.emit(asm.Inst{Op: asm.OpLea, Dst: d,
			M: asm.Mem{Base: asm.RSP, Index: asm.NoReg, Disp: int32(disp), Size: 8}})
		c.flushGPR(in.Res, d)

	case ir.OpRet:
		if len(in.Args) > 0 && in.Args[0] != ir.NoValue {
			rt := c.f.ValueType(in.Args[0])
			if rt != nil && rt.Kind == types.Float {
				v := c.readFPR(in.Args[0], regalloc.ScratchFA)
				c.emit(asm.Inst{Op: asm.OpMovQFI, Dst: asm.RetReg, FSrc: v})
			} else {
				v := c.readGPR(in.Args[0], regalloc.ScratchA)
				if v != asm.RetReg {
					c.emit(asm.Inst{Op: asm.OpMovRR, Dst: asm.RetReg, Src: v})
				}
			}
		}
		c.epilogue()
	case ir.OpBr:
		c.emitRel(asm.Inst{Op: asm.OpJmp}, RelBlock, "", in.Blk)
	case ir.OpCondBr:
		v := c.readGPR(in.Args[0], regalloc.ScratchA)
		c.emit(asm.Inst{Op: asm.OpTestRR, Dst: v, Src: v})
		c.emitRel(asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE}, RelBlock, "", in.Blk)
		c.emitRel(asm.Inst{Op: asm.OpJmp}, RelBlock, "", in.Blk2)
	default:
		return fmt.Errorf("unsupported IR op %s", in.Op)
	}
	return nil
}

var intBinOps = map[ir.Op]asm.Op{
	ir.OpAdd: asm.OpAddRR, ir.OpSub: asm.OpSubRR, ir.OpMul: asm.OpMulRR,
	ir.OpDiv: asm.OpDivRR, ir.OpMod: asm.OpModRR,
	ir.OpAnd: asm.OpAndRR, ir.OpOr: asm.OpOrRR, ir.OpXor: asm.OpXorRR,
	ir.OpShl: asm.OpShlRR, ir.OpShr: asm.OpShrRR, ir.OpSar: asm.OpSarRR,
}

func commutative(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		return true
	}
	return false
}

func (c *ctx) lowerIntBin(in *ir.Inst) {
	a := c.readGPR(in.Args[0], regalloc.ScratchA)
	b := c.readGPR(in.Args[1], regalloc.ScratchB)
	d := c.destGPR(in.Res)
	op := intBinOps[in.Op]
	switch {
	case d == a:
		c.emit(asm.Inst{Op: op, Dst: d, Src: b})
	case d == b && commutative(in.Op):
		c.emit(asm.Inst{Op: op, Dst: d, Src: a})
	case d == b:
		// d aliases the right operand of a non-commutative op: preserve
		// it in scratch first.
		c.emit(asm.Inst{Op: asm.OpMovRR, Dst: regalloc.ScratchB, Src: b})
		c.emit(asm.Inst{Op: asm.OpMovRR, Dst: d, Src: a})
		c.emit(asm.Inst{Op: op, Dst: d, Src: regalloc.ScratchB})
	default:
		if d != a {
			c.emit(asm.Inst{Op: asm.OpMovRR, Dst: d, Src: a})
		}
		c.emit(asm.Inst{Op: op, Dst: d, Src: b})
	}
	c.flushGPR(in.Res, d)
}

var fltBinOps = map[ir.Op]asm.Op{
	ir.OpFAdd: asm.OpFAdd, ir.OpFSub: asm.OpFSub,
	ir.OpFMul: asm.OpFMul, ir.OpFDiv: asm.OpFDiv,
}

func (c *ctx) lowerFloatBin(in *ir.Inst) {
	a := c.readFPR(in.Args[0], regalloc.ScratchFA)
	b := c.readFPR(in.Args[1], regalloc.ScratchFB)
	d := c.destFPR(in.Res)
	op := fltBinOps[in.Op]
	switch {
	case d == a:
		c.emit(asm.Inst{Op: op, FDst: d, FSrc: b})
	case d == b && (in.Op == ir.OpFAdd || in.Op == ir.OpFMul):
		c.emit(asm.Inst{Op: op, FDst: d, FSrc: a})
	case d == b:
		c.emit(asm.Inst{Op: asm.OpFMovRR, FDst: regalloc.ScratchFB, FSrc: b})
		c.emit(asm.Inst{Op: asm.OpFMovRR, FDst: d, FSrc: a})
		c.emit(asm.Inst{Op: op, FDst: d, FSrc: regalloc.ScratchFB})
	default:
		if d != a {
			c.emit(asm.Inst{Op: asm.OpFMovRR, FDst: d, FSrc: a})
		}
		c.emit(asm.Inst{Op: op, FDst: d, FSrc: b})
	}
	c.flushFPR(in.Res, d)
}

func icmpCond(p ir.Pred) asm.Cond {
	switch p {
	case ir.PredEQ:
		return asm.CondE
	case ir.PredNE:
		return asm.CondNE
	case ir.PredSLT:
		return asm.CondL
	case ir.PredSLE:
		return asm.CondLE
	case ir.PredSGT:
		return asm.CondG
	case ir.PredSGE:
		return asm.CondGE
	case ir.PredULT:
		return asm.CondB
	case ir.PredULE:
		return asm.CondBE
	case ir.PredUGT:
		return asm.CondA
	case ir.PredUGE:
		return asm.CondAE
	}
	return asm.CondE
}

func fcmpCond(p ir.Pred) asm.Cond {
	switch p {
	case ir.PredEQ:
		return asm.CondE
	case ir.PredNE:
		return asm.CondNE
	case ir.PredSLT, ir.PredULT:
		return asm.CondB
	case ir.PredSLE, ir.PredULE:
		return asm.CondBE
	case ir.PredSGT, ir.PredUGT:
		return asm.CondA
	case ir.PredSGE, ir.PredUGE:
		return asm.CondAE
	}
	return asm.CondE
}

func (c *ctx) lowerAddrOf(in *ir.Inst) {
	al := in.A
	d := c.destGPR(in.Res)
	if !c.allocaPrivate(al) {
		c.emit(asm.Inst{Op: asm.OpLea, Dst: d,
			M: asm.Mem{Base: asm.RSP, Index: asm.NoReg, Disp: int32(al.FrameOff), Size: 8}})
		c.flushGPR(in.Res, d)
		return
	}
	// Private stack object: its address is rsp + off + privBase. Under
	// the segmentation scheme the private segment is tens of GB away, so
	// the offset does not fit a 32-bit displacement and needs the
	// "extra support" sequence the paper describes (§3).
	total := int64(al.FrameOff) + c.privBase
	if total <= math.MaxInt32 && total >= math.MinInt32 {
		c.emit(asm.Inst{Op: asm.OpLea, Dst: d,
			M: asm.Mem{Base: asm.RSP, Index: asm.NoReg, Disp: int32(total), Size: 8}})
	} else {
		c.emit(asm.Inst{Op: asm.OpLea, Dst: d,
			M: asm.Mem{Base: asm.RSP, Index: asm.NoReg, Disp: int32(al.FrameOff), Size: 8}})
		c.emit(asm.Inst{Op: asm.OpMovRI, Dst: regalloc.ScratchB, Imm: c.privBase})
		c.emit(asm.Inst{Op: asm.OpAddRR, Dst: d, Src: regalloc.ScratchB})
	}
	c.flushGPR(in.Res, d)
}

// lowerCall emits argument setup, the (possibly CFI-checked) transfer, the
// return-site magic word and result capture.
func (c *ctx) lowerCall(in *ir.Inst) error {
	args := in.Args
	indirect := in.Op == ir.OpICall
	var sig *types.FuncSig
	var calleeVariadic bool
	var calleeRetBit uint8
	var expectBits uint8
	if indirect {
		fnTy := c.f.ValueType(in.Args[0])
		args = in.Args[1:]
		if fnTy.Kind == types.Ptr && fnTy.Elem.Kind == types.Func {
			sig = fnTy.Elem.Sig
		} else if fnTy.Kind == types.Func {
			sig = fnTy.Sig
		} else {
			return fmt.Errorf("indirect call through non-function type %s", fnTy)
		}
		calleeVariadic = sig.Variadic
		calleeRetBit = c.sigRetBit(sig)
		expectBits = c.sigArgBits(sig)
	} else {
		callee := c.mod.Func(in.Callee)
		if callee == nil {
			return fmt.Errorf("call to unknown function %s", in.Callee)
		}
		sig = &types.FuncSig{Params: callee.Params, Ret: callee.Ret, Variadic: callee.Variadic}
		calleeVariadic = callee.Variadic
		calleeRetBit = retBit(callee, c.a)
		if c.conf.IgnoreTaint {
			calleeRetBit = 0
		}
	}

	// 1. Indirect target into R10 before any argument staging.
	if indirect {
		fp := c.readGPR(in.Args[0], regalloc.ScratchA)
		if fp != regalloc.ScratchA {
			c.emit(asm.Inst{Op: asm.OpMovRR, Dst: regalloc.ScratchA, Src: fp})
		}
	}

	// 2. Stack arguments.
	if calleeVariadic {
		// All arguments travel on the public stack (our varargs ABI).
		for i, av := range args {
			v := c.readGPR(av, regalloc.ScratchB)
			m := c.stackOperand(int64(8*i), 8, false)
			c.emit(asm.Inst{Op: asm.OpStore, M: m, Src: v})
		}
	} else {
		for i := 4; i < len(args); i++ {
			private := false
			if i < len(sig.Params) {
				private = c.qualPrivate(sig.Params[i].Qual)
			}
			v := c.readGPR(args[i], regalloc.ScratchB)
			m := c.stackOperand(int64(8*(i-4)), 8, private)
			c.emit(asm.Inst{Op: asm.OpStore, M: m, Src: v})
		}
		// 3. Register arguments (parallel move).
		var regMoves []move
		type memArg struct {
			v   ir.Value
			dst asm.Reg
		}
		var memArgs []memArg
		for i := 0; i < 4 && i < len(args); i++ {
			loc := c.ra.Locs[args[i]]
			if loc.Kind == regalloc.LocReg {
				regMoves = append(regMoves, move{src: loc.Reg,
					dst: regalloc.Loc{Kind: regalloc.LocReg, Reg: asm.ArgRegs[i]}})
			} else {
				memArgs = append(memArgs, memArg{args[i], asm.ArgRegs[i]})
			}
		}
		c.parallelMove(regMoves)
		for _, ma := range memArgs {
			v := c.readGPR(ma.v, ma.dst)
			if v != ma.dst {
				c.emit(asm.Inst{Op: asm.OpMovRR, Dst: ma.dst, Src: v})
			}
		}
	}

	// 4. Transfer.
	if indirect {
		if c.conf.CFI {
			// cmp [r10], ~^(MCall|bits); jne trap; add r10, 8; icall r10
			c.emitRel(asm.Inst{Op: asm.OpMovRI, Dst: regalloc.ScratchB, Imm: int64(expectBits)},
				RelCallMagicNot, "", 0)
			c.emit(asm.Inst{Op: asm.OpNot, Dst: regalloc.ScratchB})
			c.emit(asm.Inst{Op: asm.OpCmpMR,
				M:   asm.Mem{Base: regalloc.ScratchA, Index: asm.NoReg, Size: 8},
				Src: regalloc.ScratchB})
			c.emitRel(asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE}, RelTrap, "", 0)
			c.emit(asm.Inst{Op: asm.OpAddRI, Dst: regalloc.ScratchA, Imm: 8})
		}
		c.emit(asm.Inst{Op: asm.OpICall, Src: regalloc.ScratchA})
	} else {
		c.emitRel(asm.Inst{Op: asm.OpCall}, RelFunc, in.Callee, 0)
	}
	if c.conf.CFI {
		c.fc.Items = append(c.fc.Items, Item{Magic: true, MagicCall: false,
			MagicBits: calleeRetBit, Label: -1})
	}
	// The callee clobbered caller-saved registers and any coalesced
	// check state.
	c.checked = map[checkKey]bool{}

	// 5. Result.
	if in.Res != ir.NoValue {
		rt := c.f.ValueType(in.Res)
		if rt != nil && rt.Kind == types.Float {
			loc := c.ra.Locs[in.Res]
			d := c.destFPR(in.Res)
			c.emit(asm.Inst{Op: asm.OpMovQIF, FDst: d, Src: asm.RetReg})
			c.flushFPR(in.Res, d)
			_ = loc
		} else {
			c.storeLoc(c.ra.Locs[in.Res], asm.RetReg)
		}
	}
	return nil
}

// sigArgBits computes callsite-expected CFI taint bits from a signature.
func (c *ctx) sigArgBits(sig *types.FuncSig) uint8 {
	if c.conf.IgnoreTaint {
		return 0
	}
	var bits uint8
	for i := 0; i < 4; i++ {
		private := true
		if !sig.Variadic && i < len(sig.Params) {
			private = c.qualPrivate(sig.Params[i].Qual)
		}
		if private {
			bits |= 1 << i
		}
	}
	if c.sigRetBit(sig) == 1 {
		bits |= 1 << 4
	}
	return bits
}

func (c *ctx) sigRetBit(sig *types.FuncSig) uint8 {
	if c.conf.IgnoreTaint {
		return 0
	}
	if sig.Ret == nil || sig.Ret.Kind == types.Void {
		return 1
	}
	if c.qualPrivate(sig.Ret.Qual) {
		return 1
	}
	return 0
}
