// Package codegen lowers taint-resolved IR to the abstract x64 ISA and
// inserts ConfLLVM's runtime instrumentation:
//
//   - the split public/private stack frame at a compile-time OFFSET (§3);
//   - MPX bound checks with the paper's optimizations — register-operand
//     preference, guard-displacement elision, rsp-check elision under
//     _chkstk discipline, and block-local check coalescing (§5.1);
//   - segment-register addressing with the 32-bit operand constraint (§3);
//   - taint-aware CFI magic sequences on entries, returns and indirect
//     calls (§4).
package codegen

import (
	"fmt"

	"confllvm/internal/asm"
	"confllvm/internal/ir"
	"confllvm/internal/regalloc"
	"confllvm/internal/taint"
	"confllvm/internal/types"
)

// Bounds selects the memory-bounds enforcement scheme.
type Bounds uint8

const (
	BoundsNone Bounds = iota
	BoundsMPX
	BoundsSeg
)

// Config selects the instrumentation of one compilation.
type Config struct {
	// CFI enables taint-aware CFI (magic sequences + checked returns and
	// indirect calls).
	CFI bool
	// Bounds selects the region-confinement scheme.
	Bounds Bounds
	// SeparateStacks places private stack data at OFFSET from the public
	// stack. When false (the paper's OurMPX-Sep ablation), the private
	// frame is laid out contiguously after the public frame on the single
	// stack.
	SeparateStacks bool
	// SeparateUT isolates T's memory from U and switches stacks on every
	// U->T transition (false = the paper's Our1Mem ablation).
	SeparateUT bool
	// IgnoreTaint compiles like a vanilla compiler: one stack, no private
	// placement (the Base/BaseOA configurations).
	IgnoreTaint bool
	// ChkStk emits the inlined _chkstk rsp discipline, which also enables
	// eliding bound checks on rsp-relative operands.
	ChkStk bool
	// NoMPXOpt disables the paper's §5.1 MPX optimizations (rsp-check
	// elision and block-local check coalescing) — the ablation baseline.
	NoMPXOpt bool
	// StackOffset is the public->private stack distance (the paper's
	// OFFSET). Must match the loader's layout.
	StackOffset int64
}

// RelKind classifies link-time relocations on emitted items.
type RelKind uint8

const (
	RelNone         RelKind = iota
	RelFunc                 // Imm <- entry address of Sym
	RelFuncPtr              // Imm <- function-pointer value of Sym (magic word addr under CFI, entry otherwise)
	RelGlobal               // Imm <- address of data symbol Sym
	RelBlock                // Imm <- address of local block Blk
	RelTrap                 // Imm <- address of this function's trap site
	RelExtSlot              // Imm <- address of externals-table slot for Sym
	RelRetMagicNot          // Imm <- ^(MRet magic | bits): patched by linker
	RelCallMagicNot         // Imm <- ^(MCall magic | bits): patched by linker
)

// Item is one emitted element: an instruction or an 8-byte magic word.
type Item struct {
	Inst  asm.Inst
	Rel   RelKind
	Sym   string
	Blk   int
	Label int // block id starting at this item, or -1
	// Magic marks this item as an 8-byte magic word (Inst unused).
	Magic     bool
	MagicCall bool  // MCall vs MRet
	MagicBits uint8 // low 5 taint bits
}

// FuncCode is the generated code of one function.
type FuncCode struct {
	Name     string
	Items    []Item
	ArgBits  uint8 // 4 argument taints | ret taint << 4
	RetBit   uint8
	IsStub   bool
	Variadic bool
}

// Module is the code-generation result for all of U.
type Module struct {
	Funcs   []*FuncCode
	Globals []*ir.Global
	// GlobalRegion records the resolved region of each global (true =
	// private).
	GlobalRegion map[string]bool
	Externs      []string // extern (T) function names, externals-table order
	Config       Config
}

// Gen generates code for the whole module under the given configuration.
func Gen(mod *ir.Module, a *taint.Assignment, conf Config) (*Module, error) {
	out := &Module{
		Globals:      mod.Globals,
		GlobalRegion: map[string]bool{},
		Config:       conf,
	}
	for _, g := range mod.Globals {
		private := !conf.IgnoreTaint && a.IsPrivate(g.Type.Qual)
		out.GlobalRegion[g.Name] = private
	}
	extIndex := map[string]int{}
	for _, f := range mod.Funcs {
		if f.Extern {
			extIndex[f.Name] = len(out.Externs)
			out.Externs = append(out.Externs, f.Name)
		}
	}
	for _, f := range mod.Funcs {
		if f.Extern {
			out.Funcs = append(out.Funcs, genStub(f, a, conf, extIndex[f.Name]))
			continue
		}
		if f.Blocks == nil {
			return nil, fmt.Errorf("codegen: function %s declared but never defined", f.Name)
		}
		fc, err := genFunc(mod, f, a, conf)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, fc)
	}
	return out, nil
}

// argBits computes the 5 CFI taint bits for a function signature:
// bit i (i<4) = taint of argument register i, bit 4 = taint of the return
// register. Unused argument registers are conservatively private (§4).
func argBits(f *ir.Func, a *taint.Assignment, conf Config) uint8 {
	if conf.IgnoreTaint {
		return 0
	}
	var bits uint8
	for i := 0; i < 4; i++ {
		private := true // unused arg registers are conservatively private
		if !f.Variadic && i < len(f.Params) {
			private = a.IsPrivate(f.Params[i].Qual)
		}
		if private {
			bits |= 1 << i
		}
	}
	if retBit(f, a) == 1 {
		bits |= 1 << 4
	}
	return bits
}

func retBit(f *ir.Func, a *taint.Assignment) uint8 {
	if f.Ret == nil || f.Ret.Kind == types.Void {
		return 1 // dead return register: conservatively private
	}
	if a.IsPrivate(f.Ret.Qual) {
		return 1
	}
	return 0
}

// genStub generates the U-side stub for an extern T function: a magic-
// prefixed entry that jumps through the externals table (§6).
func genStub(f *ir.Func, a *taint.Assignment, conf Config, slot int) *FuncCode {
	fc := &FuncCode{Name: f.Name, IsStub: true, Variadic: f.Variadic}
	fc.ArgBits = argBits(f, a, conf)
	fc.RetBit = retBit(f, a)
	if conf.CFI {
		fc.Items = append(fc.Items, Item{Magic: true, MagicCall: true, MagicBits: fc.ArgBits, Label: -1})
	}
	// mov r11, &externals[slot] ; load r11, [r11] ; jmp r11
	fc.emit(asm.Inst{Op: asm.OpMovRI, Dst: regalloc.ScratchB}, RelExtSlot, f.Name)
	mem := asm.Mem{Base: regalloc.ScratchB, Index: asm.NoReg, Size: 8}
	if conf.Bounds == BoundsSeg {
		mem.Seg = asm.SegFS
		mem.Use32 = true
	}
	fc.emit(asm.Inst{Op: asm.OpLoad, Dst: regalloc.ScratchB, M: mem}, RelNone, "")
	fc.emit(asm.Inst{Op: asm.OpJmpR, Src: regalloc.ScratchB}, RelNone, "")
	return fc
}

func (fc *FuncCode) emit(in asm.Inst, rel RelKind, sym string) {
	fc.Items = append(fc.Items, Item{Inst: in, Rel: rel, Sym: sym, Label: -1})
}

// ctx is the per-function emission context.
type ctx struct {
	mod  *ir.Module
	f    *ir.Func
	a    *taint.Assignment
	conf Config
	ra   *regalloc.Result
	fc   *FuncCode

	frameSize    int
	outArgBytes  int
	pubSpillOff  int
	privSpillOff int
	pubAllocaOff map[*ir.Alloca]int
	privBase     int64 // displacement from rsp to the private frame
	numSaved     int

	// coalescing state for MPX checks: keys of checks already emitted in
	// the current basic block.
	checked map[checkKey]bool
}

type checkKey struct {
	reg asm.Reg
	bnd asm.Bnd
}

func genFunc(mod *ir.Module, f *ir.Func, a *taint.Assignment, conf Config) (*FuncCode, error) {
	isPrivate := func(v ir.Value) bool {
		if conf.IgnoreTaint {
			return false
		}
		t := f.ValueType(v)
		return t != nil && a.IsPrivate(t.Qual)
	}
	isFloat := func(v ir.Value) bool {
		t := f.ValueType(v)
		return t != nil && t.Kind == types.Float
	}
	ra := regalloc.Allocate(f, isPrivate, isFloat)

	c := &ctx{
		mod: mod, f: f, a: a, conf: conf, ra: ra,
		fc:           &FuncCode{Name: f.Name, Variadic: f.Variadic},
		pubAllocaOff: map[*ir.Alloca]int{},
		checked:      map[checkKey]bool{},
	}
	c.fc.ArgBits = argBits(f, a, conf)
	c.fc.RetBit = retBit(f, a)
	c.numSaved = len(ra.UsedCalleeSaved)

	c.layoutFrame()

	if conf.CFI {
		c.fc.Items = append(c.fc.Items, Item{Magic: true, MagicCall: true,
			MagicBits: c.fc.ArgBits, Label: -1})
	}
	c.prologue()
	for _, blk := range f.Blocks {
		c.checked = map[checkKey]bool{}
		first := len(c.fc.Items)
		for _, in := range blk.Insts {
			if err := c.lower(in); err != nil {
				return nil, fmt.Errorf("codegen %s: %w", f.Name, err)
			}
		}
		// Attach the block label to the first emitted item (emit a nop
		// for empty blocks so the label lands somewhere).
		if first == len(c.fc.Items) {
			c.emit(asm.Inst{Op: asm.OpNop})
		}
		c.fc.Items[first].Label = blk.ID
	}
	if conf.CFI {
		// Shared trap site.
		trapIdx := len(c.fc.Items)
		c.emit(asm.Inst{Op: asm.OpTrap})
		c.fc.Items[trapIdx].Label = trapLabel
	}
	return c.fc, nil
}

// trapLabel is the pseudo block id of the function's trap site.
const trapLabel = -2

// layoutFrame assigns frame offsets.
//
// Public frame (from rsp upward):
//
//	[0, outArgBytes)            outgoing argument slots
//	[outArgBytes, +pubSpills*8) public spill slots
//	[.., ..)                    public allocas
//
// The private frame mirrors the structure at c.privBase (OFFSET when
// stacks are separated, directly after the public frame otherwise).
func (c *ctx) layoutFrame() {
	maxArgs := c.ra.MaxCallArgs
	out := maxArgs * 8
	if c.ra.HasCall && out < 4*8 {
		out = 4 * 8 // room for spilling argument staging
	}
	c.outArgBytes = out
	c.pubSpillOff = out
	c.privSpillOff = out

	pub := out + c.ra.PubSlots*8
	// Allocas: assign offsets per region.
	priv := out + c.ra.PrivSlots*8
	for _, al := range c.f.Allocas {
		sz := al.Type.SizeOf()
		alg := al.Type.Align()
		if alg < 1 {
			alg = 1
		}
		if c.allocaPrivate(al) {
			priv = alignUp(priv, alg)
			al.FrameOff = priv
			priv += sz
		} else {
			pub = alignUp(pub, alg)
			al.FrameOff = pub
			pub += sz
		}
	}
	pub = alignUp(pub, 8)
	priv = alignUp(priv, 8)

	if c.conf.IgnoreTaint {
		c.frameSize = pub
		c.privBase = 0
		return
	}
	if c.conf.SeparateStacks {
		c.privBase = c.conf.StackOffset
		c.frameSize = pub
		if priv > pub {
			c.frameSize = priv
		}
	} else {
		// Single-stack ablation: the private frame sits right after the
		// public frame.
		c.privBase = int64(pub)
		c.frameSize = pub + priv
	}
}

func alignUp(n, a int) int { return (n + a - 1) / a * a }

// allocaPrivate reports whether an alloca lives on the private stack.
func (c *ctx) allocaPrivate(al *ir.Alloca) bool {
	if c.conf.IgnoreTaint {
		return false
	}
	return c.a.IsPrivate(al.Type.Qual)
}

func (c *ctx) emit(in asm.Inst) {
	c.fc.Items = append(c.fc.Items, Item{Inst: in, Label: -1})
}

func (c *ctx) emitRel(in asm.Inst, rel RelKind, sym string, blk int) {
	c.fc.Items = append(c.fc.Items, Item{Inst: in, Rel: rel, Sym: sym, Blk: blk, Label: -1})
}

func (c *ctx) prologue() {
	for _, r := range c.ra.UsedCalleeSaved {
		c.emit(asm.Inst{Op: asm.OpPush, Src: r})
	}
	if c.frameSize > 0 {
		c.emit(asm.Inst{Op: asm.OpSubRI, Dst: asm.RSP, Imm: int64(c.frameSize)})
	}
	if c.conf.ChkStk {
		c.emit(asm.Inst{Op: asm.OpChkSP})
	}
	c.moveParamsIn()
}

// incomingArgDisp returns the rsp displacement of incoming stack argument
// slot i (for variadic functions all arguments are stack slots; for fixed
// functions slot i corresponds to argument i+4).
func (c *ctx) incomingArgDisp(slot int) int64 {
	return int64(c.frameSize + 8*c.numSaved + 8 + 8*slot)
}

// moveParamsIn transfers incoming arguments to their allocated locations.
func (c *ctx) moveParamsIn() {
	f := c.f
	if f.Variadic {
		// All parameters arrive on the public stack.
		for i, pv := range f.ParamRegs {
			loc := c.ra.Locs[pv]
			if loc.Kind == regalloc.LocNone {
				continue
			}
			disp := c.incomingArgDisp(i)
			c.loadStackSlotTo(loc, disp, false)
		}
		return
	}
	// Register parameters: parallel-move into locations.
	var moves []move
	for i, pv := range f.ParamRegs {
		if i >= 4 {
			break
		}
		loc := c.ra.Locs[pv]
		if loc.Kind == regalloc.LocNone {
			continue
		}
		moves = append(moves, move{src: asm.ArgRegs[i], dst: loc})
	}
	c.parallelMove(moves)
	// Stack parameters (beyond 4).
	for i := 4; i < len(f.ParamRegs); i++ {
		loc := c.ra.Locs[f.ParamRegs[i]]
		if loc.Kind == regalloc.LocNone {
			continue
		}
		private := !c.conf.IgnoreTaint && c.a.IsPrivate(f.Params[i].Qual)
		disp := c.incomingArgDisp(i - 4)
		c.loadStackSlotTo(loc, disp, private)
	}
}

// loadStackSlotTo loads an 8-byte stack slot at [rsp+disp] (+private frame
// if private) into a location.
func (c *ctx) loadStackSlotTo(loc regalloc.Loc, disp int64, private bool) {
	mem := c.stackOperand(disp, 8, private)
	switch loc.Kind {
	case regalloc.LocReg:
		c.emit(asm.Inst{Op: asm.OpLoad, Dst: loc.Reg, M: mem})
	case regalloc.LocFReg:
		c.emit(asm.Inst{Op: asm.OpFLoad, FDst: loc.FReg, M: mem})
	case regalloc.LocSlot:
		c.emit(asm.Inst{Op: asm.OpLoad, Dst: regalloc.ScratchA, M: mem})
		c.storeLoc(loc, regalloc.ScratchA)
	}
}

// stackOperand builds an rsp-relative memory operand in the region
// selected by private, applying the active scheme's addressing.
func (c *ctx) stackOperand(disp int64, size uint8, private bool) asm.Mem {
	m := asm.Mem{Base: asm.RSP, Index: asm.NoReg, Size: size}
	if private && !c.conf.IgnoreTaint {
		if c.conf.Bounds == BoundsSeg && c.conf.SeparateStacks {
			// gs:[esp+disp]: the private stack sits at the same offset
			// within the private segment.
			m.Seg = asm.SegGS
			m.Use32 = true
			m.Disp = int32(disp)
			return m
		}
		m.Disp = int32(disp + c.privBase)
		if c.conf.Bounds == BoundsSeg {
			m.Seg = asm.SegFS // single-stack ablation under seg
			m.Use32 = true
		}
		return m
	}
	if c.conf.Bounds == BoundsSeg {
		m.Seg = asm.SegFS
		m.Use32 = true
	}
	m.Disp = int32(disp)
	return m
}

// move is one element of a parallel register move.
type move struct {
	src asm.Reg
	dst regalloc.Loc
}

// parallelMove performs moves whose sources are registers, respecting
// conflicts (a destination register that is still a pending source is
// deferred; cycles break through ScratchA).
func (c *ctx) parallelMove(moves []move) {
	pending := append([]move{}, moves...)
	for len(pending) > 0 {
		progress := false
		for i, m := range pending {
			if m.dst.Kind == regalloc.LocReg && m.dst.Reg == m.src {
				pending = append(pending[:i], pending[i+1:]...)
				progress = true
				break
			}
			// Is dst a source of another pending move?
			blocked := false
			if m.dst.Kind == regalloc.LocReg {
				for j, o := range pending {
					if j != i && o.src == m.dst.Reg {
						blocked = true
						break
					}
				}
			}
			if blocked {
				continue
			}
			c.storeLoc(m.dst, m.src)
			pending = append(pending[:i], pending[i+1:]...)
			progress = true
			break
		}
		if !progress {
			// Cycle: rotate through ScratchA.
			m := pending[0]
			c.emit(asm.Inst{Op: asm.OpMovRR, Dst: regalloc.ScratchA, Src: m.src})
			pending[0].src = regalloc.ScratchA
		}
	}
}

// storeLoc writes a register's value into a location.
func (c *ctx) storeLoc(loc regalloc.Loc, src asm.Reg) {
	switch loc.Kind {
	case regalloc.LocReg:
		if loc.Reg != src {
			c.emit(asm.Inst{Op: asm.OpMovRR, Dst: loc.Reg, Src: src})
		}
	case regalloc.LocFReg:
		c.emit(asm.Inst{Op: asm.OpMovQIF, FDst: loc.FReg, Src: src})
	case regalloc.LocSlot:
		m := c.spillOperand(loc)
		c.emit(asm.Inst{Op: asm.OpStore, M: m, Src: src})
	}
}

// spillOperand builds the memory operand of a spill slot.
func (c *ctx) spillOperand(loc regalloc.Loc) asm.Mem {
	var disp int64
	if loc.Private {
		disp = int64(c.privSpillOff + loc.Slot*8)
	} else {
		disp = int64(c.pubSpillOff + loc.Slot*8)
	}
	return c.stackOperand(disp, 8, loc.Private)
}

// epilogue emits the frame teardown and the configured return sequence.
func (c *ctx) epilogue() {
	if c.frameSize > 0 {
		c.emit(asm.Inst{Op: asm.OpAddRI, Dst: asm.RSP, Imm: int64(c.frameSize)})
	}
	for i := len(c.ra.UsedCalleeSaved) - 1; i >= 0; i-- {
		c.emit(asm.Inst{Op: asm.OpPop, Dst: c.ra.UsedCalleeSaved[i]})
	}
	if !c.conf.CFI {
		c.emit(asm.Inst{Op: asm.OpRet})
		return
	}
	// Taint-aware CFI return (§4):
	//   pop r10
	//   mov r11, ^(MRet|retbit)   ; bitwise-negated magic (linker-patched)
	//   not r11
	//   cmp [r10], r11
	//   jne trap
	//   add r10, 8
	//   jmp r10
	c.emit(asm.Inst{Op: asm.OpPop, Dst: regalloc.ScratchA})
	c.emitRel(asm.Inst{Op: asm.OpMovRI, Dst: regalloc.ScratchB, Imm: int64(c.fc.RetBit)},
		RelRetMagicNot, "", 0)
	c.emit(asm.Inst{Op: asm.OpNot, Dst: regalloc.ScratchB})
	c.emit(asm.Inst{Op: asm.OpCmpMR, M: asm.Mem{Base: regalloc.ScratchA, Index: asm.NoReg, Size: 8},
		Src: regalloc.ScratchB})
	c.emitRel(asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE}, RelTrap, "", 0)
	c.emit(asm.Inst{Op: asm.OpAddRI, Dst: regalloc.ScratchA, Imm: 8})
	c.emit(asm.Inst{Op: asm.OpJmpR, Src: regalloc.ScratchA})
}
