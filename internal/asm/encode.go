package asm

import (
	"encoding/binary"
	"fmt"
)

// operand kinds drive the byte layout of each opcode.
type opKind uint8

const (
	kNone opKind = iota
	kR           // Dst
	kRsrc        // Src
	kRR          // Dst, Src
	kRI          // Dst, Imm64
	kRM          // Dst, Mem
	kMR          // Mem, Src
	kI           // Imm64
	kCI          // Cond, Imm64
	kCR          // Cond, Dst
	kMB          // Mem, Bnd
	kRB          // Src, Bnd
	kFM          // FDst, Mem
	kMF          // Mem, FSrc
	kFF          // FDst, FSrc
	kFI          // FDst, Imm64
	kFR          // FDst, Src
	kRF          // Dst, FSrc
)

var opKinds = [numOps]opKind{
	OpMovRR: kRR, OpMovRI: kRI, OpLoad: kRM, OpStore: kMR, OpLea: kRM,
	OpPush: kRsrc, OpPop: kR,
	OpAddRR: kRR, OpAddRI: kRI, OpSubRR: kRR, OpSubRI: kRI,
	OpMulRR: kRR, OpMulRI: kRI, OpDivRR: kRR, OpModRR: kRR,
	OpAndRR: kRR, OpAndRI: kRI, OpOrRR: kRR, OpOrRI: kRI,
	OpXorRR: kRR, OpXorRI: kRI,
	OpShlRR: kRR, OpShlRI: kRI, OpShrRR: kRR, OpShrRI: kRI,
	OpSarRR: kRR, OpSarRI: kRI, OpNeg: kR, OpNot: kR,
	OpCmpRR: kRR, OpCmpRI: kRI, OpCmpMR: kMR, OpTestRR: kRR, OpTestRI: kRI,
	OpSetCC: kCR,
	OpJmp:   kI, OpJcc: kCI, OpJmpR: kRsrc, OpCall: kI, OpICall: kRsrc,
	OpRet: kNone, OpTrap: kNone, OpExit: kNone,
	OpBndCLMem: kMB, OpBndCUMem: kMB, OpBndCLReg: kRB, OpBndCUReg: kRB,
	OpChkSP: kNone,
	OpFLoad: kFM, OpFStore: kMF, OpFMovRR: kFF, OpFMovI: kFI,
	OpFAdd: kFF, OpFSub: kFF, OpFMul: kFF, OpFDiv: kFF, OpFMax: kFF, OpFCmp: kFF,
	OpCvtIF: kFR, OpCvtFI: kRF, OpMovQIF: kFR, OpMovQFI: kRF,
	OpWrFS: kRsrc, OpWrGS: kRsrc, OpSyscall: kNone, OpNop: kNone,
}

const memEncLen = 8

// kindLen is the operand byte length for each operand kind.
var kindLen = map[opKind]int{
	kNone: 0, kR: 1, kRsrc: 1, kRR: 2, kRI: 9, kRM: 1 + memEncLen,
	kMR: memEncLen + 1, kI: 8, kCI: 9, kCR: 2, kMB: memEncLen + 1,
	kRB: 2, kFM: 1 + memEncLen, kMF: memEncLen + 1, kFF: 2, kFI: 9,
	kFR: 2, kRF: 2,
}

// EncodedLen returns the encoded byte length of an instruction with the
// given opcode (1 opcode byte plus operand bytes).
func EncodedLen(op Op) int {
	if op == OpInvalid || op >= numOps {
		return 0
	}
	return 1 + kindLen[opKinds[op]]
}

func scaleLog2(s uint8) uint8 {
	switch s {
	case 0, 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	return 0
}

func sizeLog2(s uint8) uint8 {
	switch s {
	case 0, 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	return 3
}

func encodeMem(b []byte, m Mem) {
	flags := uint8(m.Seg) & 3
	if m.Use32 {
		flags |= 1 << 2
	}
	flags |= scaleLog2(m.Scale) << 3
	flags |= sizeLog2(m.Size) << 5
	if m.Signed {
		flags |= 1 << 7
	}
	b[0] = flags
	b[1] = uint8(m.Base)
	b[2] = uint8(m.Index)
	binary.LittleEndian.PutUint32(b[3:], uint32(m.Disp))
	b[7] = 0
}

func decodeMem(b []byte) Mem {
	flags := b[0]
	m := Mem{
		Seg:    Seg(flags & 3),
		Use32:  flags&(1<<2) != 0,
		Scale:  1 << ((flags >> 3) & 3),
		Size:   1 << ((flags >> 5) & 3),
		Signed: flags&(1<<7) != 0,
		Base:   Reg(b[1]),
		Index:  Reg(b[2]),
		Disp:   int32(binary.LittleEndian.Uint32(b[3:])),
	}
	return m
}

// Encode appends the encoding of inst to buf and returns the extended slice.
func Encode(buf []byte, inst Inst) []byte {
	op := inst.Op
	buf = append(buf, byte(op))
	var tmp [16]byte
	switch opKinds[op] {
	case kNone:
	case kR:
		buf = append(buf, byte(inst.Dst))
	case kRsrc:
		buf = append(buf, byte(inst.Src))
	case kRR:
		buf = append(buf, byte(inst.Dst), byte(inst.Src))
	case kRI:
		buf = append(buf, byte(inst.Dst))
		binary.LittleEndian.PutUint64(tmp[:8], uint64(inst.Imm))
		buf = append(buf, tmp[:8]...)
	case kRM:
		buf = append(buf, byte(inst.Dst))
		encodeMem(tmp[:memEncLen], inst.M)
		buf = append(buf, tmp[:memEncLen]...)
	case kMR:
		encodeMem(tmp[:memEncLen], inst.M)
		buf = append(buf, tmp[:memEncLen]...)
		buf = append(buf, byte(inst.Src))
	case kI:
		binary.LittleEndian.PutUint64(tmp[:8], uint64(inst.Imm))
		buf = append(buf, tmp[:8]...)
	case kCI:
		buf = append(buf, byte(inst.Cond))
		binary.LittleEndian.PutUint64(tmp[:8], uint64(inst.Imm))
		buf = append(buf, tmp[:8]...)
	case kCR:
		buf = append(buf, byte(inst.Cond), byte(inst.Dst))
	case kMB:
		encodeMem(tmp[:memEncLen], inst.M)
		buf = append(buf, tmp[:memEncLen]...)
		buf = append(buf, byte(inst.Bnd))
	case kRB:
		buf = append(buf, byte(inst.Src), byte(inst.Bnd))
	case kFM:
		buf = append(buf, byte(inst.FDst))
		encodeMem(tmp[:memEncLen], inst.M)
		buf = append(buf, tmp[:memEncLen]...)
	case kMF:
		encodeMem(tmp[:memEncLen], inst.M)
		buf = append(buf, tmp[:memEncLen]...)
		buf = append(buf, byte(inst.FSrc))
	case kFF:
		buf = append(buf, byte(inst.FDst), byte(inst.FSrc))
	case kFI:
		buf = append(buf, byte(inst.FDst))
		binary.LittleEndian.PutUint64(tmp[:8], uint64(inst.Imm))
		buf = append(buf, tmp[:8]...)
	case kFR:
		buf = append(buf, byte(inst.FDst), byte(inst.Src))
	case kRF:
		buf = append(buf, byte(inst.Dst), byte(inst.FSrc))
	}
	return buf
}

// Decode decodes one instruction starting at code[off]. It returns the
// instruction and its encoded length. Decoding fails on an unknown opcode
// or a truncated stream — which is exactly what happens when control flow
// lands in the middle of data (such as a magic sequence).
func Decode(code []byte, off int) (Inst, int, error) {
	var inst Inst
	n, err := DecodeInto(&inst, code, off)
	return inst, n, err
}

// DecodeInto decodes one instruction starting at code[off] into *inst,
// returning the encoded length. It is the allocation-free form of Decode
// for callers that decode into long-lived instruction arrays (the
// machine's per-region decode traces).
func DecodeInto(inst *Inst, code []byte, off int) (int, error) {
	if off < 0 || off >= len(code) {
		return 0, fmt.Errorf("asm: decode offset %d out of range", off)
	}
	op := Op(code[off])
	if op == OpInvalid || op >= numOps {
		return 0, fmt.Errorf("asm: invalid opcode 0x%02x at offset %d", code[off], off)
	}
	n := EncodedLen(op)
	if off+n > len(code) {
		return 0, fmt.Errorf("asm: truncated instruction at offset %d", off)
	}
	b := code[off+1 : off+n]
	*inst = Inst{Op: op}
	switch opKinds[op] {
	case kNone:
	case kR:
		inst.Dst = Reg(b[0])
	case kRsrc:
		inst.Src = Reg(b[0])
	case kRR:
		inst.Dst, inst.Src = Reg(b[0]), Reg(b[1])
	case kRI:
		inst.Dst = Reg(b[0])
		inst.Imm = int64(binary.LittleEndian.Uint64(b[1:]))
	case kRM:
		inst.Dst = Reg(b[0])
		inst.M = decodeMem(b[1:])
	case kMR:
		inst.M = decodeMem(b)
		inst.Src = Reg(b[memEncLen])
	case kI:
		inst.Imm = int64(binary.LittleEndian.Uint64(b))
	case kCI:
		inst.Cond = Cond(b[0])
		inst.Imm = int64(binary.LittleEndian.Uint64(b[1:]))
	case kCR:
		inst.Cond = Cond(b[0])
		inst.Dst = Reg(b[1])
	case kMB:
		inst.M = decodeMem(b)
		inst.Bnd = Bnd(b[memEncLen])
	case kRB:
		inst.Src = Reg(b[0])
		inst.Bnd = Bnd(b[1])
	case kFM:
		inst.FDst = FReg(b[0])
		inst.M = decodeMem(b[1:])
	case kMF:
		inst.M = decodeMem(b)
		inst.FSrc = FReg(b[memEncLen])
	case kFF:
		inst.FDst, inst.FSrc = FReg(b[0]), FReg(b[1])
	case kFI:
		inst.FDst = FReg(b[0])
		inst.Imm = int64(binary.LittleEndian.Uint64(b[1:]))
	case kFR:
		inst.FDst, inst.Src = FReg(b[0]), Reg(b[1])
	case kRF:
		inst.Dst, inst.FSrc = Reg(b[0]), FReg(b[1])
	}
	return n, nil
}

// AppendMagic appends a raw 8-byte magic word (little endian) to buf.
// Magic words are data, not instructions: executing one faults, and the
// verifier locates them by scanning for the 59-bit prefix.
func AppendMagic(buf []byte, word uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], word)
	return append(buf, tmp[:]...)
}

// ReadWord reads the 8-byte little-endian word at code[off:].
func ReadWord(code []byte, off int) (uint64, bool) {
	if off < 0 || off+8 > len(code) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(code[off:]), true
}
