package asm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst builds a random valid instruction for the given opcode.
func randInst(op Op, rng *rand.Rand) Inst {
	reg := func() Reg { return Reg(rng.Intn(NumRegs)) }
	freg := func() FReg { return FReg(rng.Intn(NumFRegs)) }
	mem := func() Mem {
		m := Mem{
			Seg:    Seg(rng.Intn(3)),
			Scale:  []uint8{1, 2, 4, 8}[rng.Intn(4)],
			Disp:   int32(rng.Int63()),
			Size:   []uint8{1, 2, 4, 8}[rng.Intn(4)],
			Signed: rng.Intn(2) == 1,
			Use32:  rng.Intn(2) == 1,
			Base:   reg(),
			Index:  reg(),
		}
		if rng.Intn(4) == 0 {
			m.Base = NoReg
		}
		if rng.Intn(2) == 0 {
			m.Index = NoReg
		}
		return m
	}
	in := Inst{Op: op}
	switch opKinds[op] {
	case kR:
		in.Dst = reg()
	case kRsrc:
		in.Src = reg()
	case kRR:
		in.Dst, in.Src = reg(), reg()
	case kRI:
		in.Dst, in.Imm = reg(), rng.Int63()-rng.Int63()
	case kRM:
		in.Dst, in.M = reg(), mem()
	case kMR:
		in.M, in.Src = mem(), reg()
	case kI:
		in.Imm = rng.Int63() - rng.Int63()
	case kCI:
		in.Cond, in.Imm = Cond(rng.Intn(12)), rng.Int63()
	case kCR:
		in.Cond, in.Dst = Cond(rng.Intn(12)), reg()
	case kMB:
		in.M, in.Bnd = mem(), Bnd(rng.Intn(2))
	case kRB:
		in.Src, in.Bnd = reg(), Bnd(rng.Intn(2))
	case kFM:
		in.FDst, in.M = freg(), mem()
	case kMF:
		in.M, in.FSrc = mem(), freg()
	case kFF:
		in.FDst, in.FSrc = freg(), freg()
	case kFI:
		in.FDst, in.Imm = freg(), rng.Int63()
	case kFR:
		in.FDst, in.Src = freg(), reg()
	case kRF:
		in.Dst, in.FSrc = reg(), freg()
	}
	return in
}

// TestEncodeDecodeRoundtrip: decode(encode(i)) == i for every opcode.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for op := OpInvalid + 1; op < numOps; op++ {
			in := randInst(op, rng)
			buf := Encode(nil, in)
			if len(buf) != EncodedLen(op) {
				t.Logf("op %v: length %d != EncodedLen %d", op, len(buf), EncodedLen(op))
				return false
			}
			got, n, err := Decode(buf, 0)
			if err != nil {
				t.Logf("op %v: decode error: %v", op, err)
				return false
			}
			if n != len(buf) || got != in {
				t.Logf("op %v: roundtrip mismatch:\n  in  %+v\n  got %+v", op, in, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{0xFF}, 0); err == nil {
		t.Error("invalid opcode must fail")
	}
	if _, _, err := Decode([]byte{byte(OpMovRI), 1}, 0); err == nil {
		t.Error("truncated instruction must fail")
	}
	if _, _, err := Decode(nil, 0); err == nil {
		t.Error("empty stream must fail")
	}
	if _, _, err := Decode([]byte{byte(OpNop)}, 5); err == nil {
		t.Error("out-of-range offset must fail")
	}
}

func TestCondNegate(t *testing.T) {
	for c := CondE; c <= CondNS; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("double negation of %v is %v", c, c.Negate().Negate())
		}
		if c.Negate() == c {
			t.Errorf("%v negates to itself", c)
		}
	}
}

func TestMagicWordAppend(t *testing.T) {
	buf := AppendMagic(nil, 0xDEADBEEF12345678)
	w, ok := ReadWord(buf, 0)
	if !ok || w != 0xDEADBEEF12345678 {
		t.Fatalf("magic roundtrip failed: %x", w)
	}
	if _, ok := ReadWord(buf, 1); ok {
		t.Error("short read must fail")
	}
}

func TestCallingConvention(t *testing.T) {
	if ArgIndex(RCX) != 0 || ArgIndex(RDX) != 1 || ArgIndex(R8) != 2 || ArgIndex(R9) != 3 {
		t.Error("argument register order broken")
	}
	if ArgIndex(RAX) != -1 {
		t.Error("rax is not an argument register")
	}
	if !IsCalleeSaved(RBX) || IsCalleeSaved(RAX) || IsCalleeSaved(R10) {
		t.Error("callee-saved classification broken")
	}
}
