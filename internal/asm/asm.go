// Package asm defines the abstract x64-like instruction set that ConfLLVM's
// code generator targets and that the machine emulator executes.
//
// The ISA keeps exactly the x64 features the ConfLLVM scheme depends on:
//
//   - memory operands of the form [base + index*scale + disp32], optionally
//     prefixed with a segment register (fs or gs) and optionally constrained
//     to the low 32 bits of base and index (the segmentation scheme);
//   - MPX-style bound registers bnd0/bnd1 with bndcl/bndcu check
//     instructions;
//   - push/pop/call/ret with an in-memory return address (so control-flow
//     hijacks are expressible and the taint-aware CFI has something real to
//     defend);
//   - scalar double-precision floating point on a separate register file
//     (so the Privado experiment's FP/MPX port parallelism is observable).
//
// Instructions encode to a variable-length byte stream (see encode.go); the
// verifier disassembles that stream, and magic sequences are raw 8-byte
// words embedded in it.
package asm

import "fmt"

// Reg is a general-purpose 64-bit register. The numbering follows x64.
type Reg uint8

const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// NoReg marks an absent base or index register in a memory operand.
	NoReg Reg = 0xFF
)

// NumRegs is the size of the general-purpose register file.
const NumRegs = 16

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if r == NoReg {
		return "-"
	}
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// FReg is a scalar double-precision floating-point register (xmm-like).
type FReg uint8

// NumFRegs is the size of the floating-point register file.
const NumFRegs = 16

func (f FReg) String() string { return fmt.Sprintf("xmm%d", uint8(f)) }

// Seg selects an optional segment-register prefix on a memory operand.
type Seg uint8

const (
	SegNone Seg = iota
	SegFS       // public region base
	SegGS       // private region base
)

func (s Seg) String() string {
	switch s {
	case SegFS:
		return "fs"
	case SegGS:
		return "gs"
	}
	return ""
}

// Bnd selects an MPX bound register.
type Bnd uint8

const (
	BND0 Bnd = iota // public region bounds
	BND1            // private region bounds
)

func (b Bnd) String() string { return fmt.Sprintf("bnd%d", uint8(b)) }

// Cond is a condition code for conditional jumps, mirroring x64 Jcc forms.
type Cond uint8

const (
	CondE  Cond = iota // equal (ZF)
	CondNE             // not equal
	CondL              // signed less
	CondLE             // signed less or equal
	CondG              // signed greater
	CondGE             // signed greater or equal
	CondB              // unsigned below (CF)
	CondBE             // unsigned below or equal
	CondA              // unsigned above
	CondAE             // unsigned above or equal
	CondS              // sign (SF)
	CondNS             // not sign
)

var condNames = [...]string{"e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondE:
		return CondNE
	case CondNE:
		return CondE
	case CondL:
		return CondGE
	case CondLE:
		return CondG
	case CondG:
		return CondLE
	case CondGE:
		return CondL
	case CondB:
		return CondAE
	case CondBE:
		return CondA
	case CondA:
		return CondBE
	case CondAE:
		return CondB
	case CondS:
		return CondNS
	case CondNS:
		return CondS
	}
	return c
}

// Mem is a memory operand: seg:[base + index*scale + disp], accessing Size
// bytes. If Use32 is set, only the low 32 bits of base and index contribute
// to the effective address (the segmentation scheme's addressing mode).
type Mem struct {
	Seg    Seg
	Base   Reg // NoReg if absent
	Index  Reg // NoReg if absent
	Scale  uint8
	Disp   int32
	Size   uint8 // 1, 2, 4 or 8
	Signed bool  // sign-extend loads narrower than 8 bytes
	Use32  bool
}

func (m Mem) String() string {
	s := ""
	if m.Seg != SegNone {
		s = m.Seg.String() + ":"
	}
	s += "["
	first := true
	if m.Base != NoReg {
		if m.Use32 {
			s += "lo32(" + m.Base.String() + ")"
		} else {
			s += m.Base.String()
		}
		first = false
	}
	if m.Index != NoReg {
		if !first {
			s += "+"
		}
		if m.Use32 {
			s += "lo32(" + m.Index.String() + ")"
		} else {
			s += m.Index.String()
		}
		if m.Scale > 1 {
			s += fmt.Sprintf("*%d", m.Scale)
		}
		first = false
	}
	if m.Disp != 0 || first {
		if m.Disp >= 0 && !first {
			s += "+"
		}
		s += fmt.Sprintf("%d", m.Disp)
	}
	s += "]"
	if m.Size != 8 {
		sign := "u"
		if m.Signed {
			sign = "s"
		}
		s += fmt.Sprintf(".%s%d", sign, m.Size*8)
	}
	return s
}

// Op is an opcode.
type Op uint8

const (
	OpInvalid Op = iota

	// Data movement.
	OpMovRR // Dst <- Src
	OpMovRI // Dst <- Imm (64-bit)
	OpLoad  // Dst <- mem (zero/sign extended per M.Size/M.Signed)
	OpStore // mem <- Src (low M.Size bytes)
	OpLea   // Dst <- effective address of M (no segment base applied)
	OpPush  // push Src
	OpPop   // pop into Dst

	// Integer ALU. Two-operand register/register or register/immediate.
	OpAddRR
	OpAddRI
	OpSubRR
	OpSubRI
	OpMulRR
	OpMulRI
	OpDivRR // Dst <- Dst / Src (signed); faults on divide-by-zero
	OpModRR // Dst <- Dst % Src (signed)
	OpAndRR
	OpAndRI
	OpOrRR
	OpOrRI
	OpXorRR
	OpXorRI
	OpShlRR
	OpShlRI
	OpShrRR // logical right shift
	OpShrRI
	OpSarRR // arithmetic right shift
	OpSarRI
	OpNeg
	OpNot

	// Flag-setting comparisons.
	OpCmpRR
	OpCmpRI
	OpCmpMR // compare 8-byte [M] with Src (used by CFI checks)
	OpTestRR
	OpTestRI

	// Conditional materialization.
	OpSetCC // Dst <- 1 if Cond else 0

	// Control flow. Targets are absolute addresses (patched by the linker).
	OpJmp   // jump to Imm
	OpJcc   // conditional jump to Imm
	OpJmpR  // jump to address in Src
	OpCall  // push next-pc; jump to Imm
	OpICall // push next-pc; jump to address in Src
	OpRet   // pop target; jump (plain x64 ret; Base config and T only)
	OpTrap  // CFI-violation trap (__debugbreak)
	OpExit  // terminate the current thread normally; RAX is the exit value

	// MPX bound checks. Fault when the address escapes the bound register.
	OpBndCLMem // check EA(M)            >= bnd.lower
	OpBndCUMem // check EA(M)+M.Size-1   <= bnd.upper
	OpBndCLReg // check Src              >= bnd.lower
	OpBndCUReg // check Src              <= bnd.upper

	// Stack discipline (_chkstk analogue): fault when rsp leaves the
	// current thread's stack bounds.
	OpChkSP

	// Floating point (scalar float64 on the FReg file).
	OpFLoad  // FDst <- [M] (8 bytes)
	OpFStore // [M] <- FSrc
	OpFMovRR // FDst <- FSrc
	OpFMovI  // FDst <- float64 bits in Imm
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFMax
	OpFCmp   // compare FDst with FSrc, set flags (like ucomisd)
	OpCvtIF  // FDst <- float64(Src as signed int)
	OpCvtFI  // Dst <- int64(FSrc), truncating
	OpMovQIF // FDst <- raw bits of Src (movq xmm, r64)
	OpMovQFI // Dst <- raw bits of FSrc (movq r64, xmm)

	// Privileged / rejected-in-U operations. The verifier rejects binaries
	// containing these; the machine executes WrFS/WrGS (for trusted stubs
	// in tests) and faults on Syscall.
	OpWrFS // fs <- Src
	OpWrGS // gs <- Src
	OpSyscall

	OpNop

	numOps
)

var opNames = map[Op]string{
	OpMovRR: "mov", OpMovRI: "mov", OpLoad: "load", OpStore: "store",
	OpLea: "lea", OpPush: "push", OpPop: "pop",
	OpAddRR: "add", OpAddRI: "add", OpSubRR: "sub", OpSubRI: "sub",
	OpMulRR: "imul", OpMulRI: "imul", OpDivRR: "idiv", OpModRR: "imod",
	OpAndRR: "and", OpAndRI: "and", OpOrRR: "or", OpOrRI: "or",
	OpXorRR: "xor", OpXorRI: "xor",
	OpShlRR: "shl", OpShlRI: "shl", OpShrRR: "shr", OpShrRI: "shr",
	OpSarRR: "sar", OpSarRI: "sar", OpNeg: "neg", OpNot: "not",
	OpCmpRR: "cmp", OpCmpRI: "cmp", OpCmpMR: "cmp", OpTestRR: "test", OpTestRI: "test",
	OpSetCC: "set",
	OpJmp:   "jmp", OpJcc: "j", OpJmpR: "jmp", OpCall: "call", OpICall: "icall",
	OpRet: "ret", OpTrap: "trap", OpExit: "exit",
	OpBndCLMem: "bndcl", OpBndCUMem: "bndcu", OpBndCLReg: "bndcl", OpBndCUReg: "bndcu",
	OpChkSP: "chksp",
	OpFLoad: "movsd", OpFStore: "movsd", OpFMovRR: "movsd", OpFMovI: "movsd",
	OpFAdd: "addsd", OpFSub: "subsd", OpFMul: "mulsd", OpFDiv: "divsd",
	OpFMax: "maxsd", OpFCmp: "ucomisd", OpCvtIF: "cvtsi2sd", OpCvtFI: "cvtsd2si",
	OpMovQIF: "movq", OpMovQFI: "movq",
	OpWrFS: "wrfs", OpWrGS: "wrgs", OpSyscall: "syscall", OpNop: "nop",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Inst is a single decoded (or not-yet-encoded) instruction. Fields are
// interpreted per opcode; unused fields are zero.
type Inst struct {
	Op   Op
	Dst  Reg
	Src  Reg
	FDst FReg
	FSrc FReg
	M    Mem
	Imm  int64
	Cond Cond
	Bnd  Bnd
}

func (i Inst) String() string {
	switch i.Op {
	case OpMovRR:
		return fmt.Sprintf("mov %s, %s", i.Dst, i.Src)
	case OpMovRI:
		return fmt.Sprintf("mov %s, %d", i.Dst, i.Imm)
	case OpLoad:
		return fmt.Sprintf("load %s, %s", i.Dst, i.M)
	case OpStore:
		return fmt.Sprintf("store %s, %s", i.M, i.Src)
	case OpLea:
		return fmt.Sprintf("lea %s, %s", i.Dst, i.M)
	case OpPush:
		return fmt.Sprintf("push %s", i.Src)
	case OpPop:
		return fmt.Sprintf("pop %s", i.Dst)
	case OpAddRR, OpSubRR, OpMulRR, OpDivRR, OpModRR, OpAndRR, OpOrRR, OpXorRR,
		OpShlRR, OpShrRR, OpSarRR, OpCmpRR, OpTestRR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dst, i.Src)
	case OpAddRI, OpSubRI, OpMulRI, OpAndRI, OpOrRI, OpXorRI,
		OpShlRI, OpShrRI, OpSarRI, OpCmpRI, OpTestRI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Dst, i.Imm)
	case OpNeg, OpNot:
		return fmt.Sprintf("%s %s", i.Op, i.Dst)
	case OpCmpMR:
		return fmt.Sprintf("cmp %s, %s", i.M, i.Src)
	case OpSetCC:
		return fmt.Sprintf("set%s %s", i.Cond, i.Dst)
	case OpJmp:
		return fmt.Sprintf("jmp 0x%x", uint64(i.Imm))
	case OpJcc:
		return fmt.Sprintf("j%s 0x%x", i.Cond, uint64(i.Imm))
	case OpJmpR:
		return fmt.Sprintf("jmp %s", i.Src)
	case OpCall:
		return fmt.Sprintf("call 0x%x", uint64(i.Imm))
	case OpICall:
		return fmt.Sprintf("icall %s", i.Src)
	case OpRet, OpTrap, OpExit, OpChkSP, OpSyscall, OpNop:
		return i.Op.String()
	case OpBndCLMem, OpBndCUMem:
		return fmt.Sprintf("%s %s, %s", i.Op, i.M, i.Bnd)
	case OpBndCLReg, OpBndCUReg:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Src, i.Bnd)
	case OpFLoad:
		return fmt.Sprintf("movsd %s, %s", i.FDst, i.M)
	case OpFStore:
		return fmt.Sprintf("movsd %s, %s", i.M, i.FSrc)
	case OpFMovRR:
		return fmt.Sprintf("movsd %s, %s", i.FDst, i.FSrc)
	case OpFMovI:
		return fmt.Sprintf("movsd %s, #%x", i.FDst, uint64(i.Imm))
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFMax, OpFCmp:
		return fmt.Sprintf("%s %s, %s", i.Op, i.FDst, i.FSrc)
	case OpCvtIF:
		return fmt.Sprintf("cvtsi2sd %s, %s", i.FDst, i.Src)
	case OpCvtFI:
		return fmt.Sprintf("cvtsd2si %s, %s", i.Dst, i.FSrc)
	case OpMovQIF:
		return fmt.Sprintf("movq %s, %s", i.FDst, i.Src)
	case OpMovQFI:
		return fmt.Sprintf("movq %s, %s", i.Dst, i.FSrc)
	case OpWrFS, OpWrGS:
		return fmt.Sprintf("%s %s", i.Op, i.Src)
	}
	return fmt.Sprintf("%s ?", i.Op)
}

// Calling convention (Windows x64, as used by the paper).
var (
	// ArgRegs are the four integer argument registers, in order.
	ArgRegs = [4]Reg{RCX, RDX, R8, R9}
	// RetReg is the integer return-value register.
	RetReg = RAX
	// CalleeSaved lists registers a callee must preserve. ConfLLVM forces
	// their taint to public (callers save/clear private ones).
	CalleeSaved = []Reg{RBX, RBP, RSI, RDI, R12, R13, R14, R15}
	// CallerSaved lists registers a caller must assume clobbered.
	CallerSaved = []Reg{RAX, RCX, RDX, R8, R9, R10, R11}
)

// IsCalleeSaved reports whether r must be preserved across calls.
func IsCalleeSaved(r Reg) bool {
	for _, c := range CalleeSaved {
		if c == r {
			return true
		}
	}
	return false
}

// ArgIndex returns the argument-slot index of r, or -1 if r is not an
// argument register.
func ArgIndex(r Reg) int {
	for i, a := range ArgRegs {
		if a == r {
			return i
		}
	}
	return -1
}
