package trt

import (
	"math"

	"confllvm/internal/machine"
)

// Handlers returns the standard T library keyed by the extern names U
// declares. The miniC-side signatures are:
//
//	extern int   recv(int fd, char *buf, int size);
//	extern int   send(int fd, char *buf, int size);
//	extern void  decrypt(char *src, private char *dst, int size);
//	extern void  encrypt(private char *src, char *dst, int size);
//	extern void  encrypt_log(private char *src, char *dst, int size);
//	extern void  read_passwd(char *uname, private char *pass, int size);
//	extern int   read_file(char *name, char *buf, int size);
//	extern int   read_file_priv(char *name, private char *buf, int size);
//	extern int   write_file(char *name, char *buf, int size);
//	extern void *malloc(long size);
//	extern void  free(void *p);
//	extern private void *malloc_priv(long size);
//	extern void  free_priv(private void *p);
//	extern long  input(int idx);
//	extern void  input_priv(int idx, private char *buf, int size);
//	extern void  output(long v);
//	extern long  hash_declass(private char *buf, int size);
//	extern void  thread_spawn(void (*fn)(long), long arg);
//	extern long  rand_next(void);
//	extern void  debug_print(char *s, long v);
//	extern long  classify_declass(private double *scores, int n);
//	extern void  log_write(char *buf, int size);
func (c *Context) Handlers() map[string]machine.Handler {
	h := map[string]machine.Handler{}

	h["send"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		buf, size := arg(t, 1), arg(t, 2)
		if f := c.CheckPub(buf, size); f != nil {
			return 0, 0, f
		}
		data := make([]byte, size)
		if f := m.Mem.ReadBytes(buf, data); f != nil {
			return 0, 0, f
		}
		c.NetOut = append(c.NetOut, data)
		return size, size, nil
	})

	h["recv"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		buf, size := arg(t, 1), arg(t, 2)
		if f := c.CheckPub(buf, size); f != nil {
			return 0, 0, f
		}
		if len(c.NetIn) == 0 {
			return 0, 0, nil
		}
		pkt := c.NetIn[0]
		c.NetIn = c.NetIn[1:]
		n := uint64(len(pkt))
		if n > size {
			n = size
		}
		if f := m.Mem.WriteBytes(buf, pkt[:n]); f != nil {
			return 0, 0, f
		}
		return n, n, nil
	})

	h["decrypt"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		src, dst, size := arg(t, 0), arg(t, 1), arg(t, 2)
		if f := c.CheckPub(src, size); f != nil {
			return 0, 0, f
		}
		if f := c.CheckPriv(dst, size); f != nil {
			return 0, 0, f
		}
		data := make([]byte, size)
		if f := m.Mem.ReadBytes(src, data); f != nil {
			return 0, 0, f
		}
		if f := m.Mem.WriteBytes(dst, c.DecryptBytes(data)); f != nil {
			return 0, 0, f
		}
		return 0, 2 * size, nil
	})

	h["encrypt"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		src, dst, size := arg(t, 0), arg(t, 1), arg(t, 2)
		if f := c.CheckPriv(src, size); f != nil {
			return 0, 0, f
		}
		if f := c.CheckPub(dst, size); f != nil {
			return 0, 0, f
		}
		data := make([]byte, size)
		if f := m.Mem.ReadBytes(src, data); f != nil {
			return 0, 0, f
		}
		if f := m.Mem.WriteBytes(dst, c.EncryptBytes(data)); f != nil {
			return 0, 0, f
		}
		return 0, 2 * size, nil
	})

	h["encrypt_log"] = h["encrypt"]

	// ssl_send models OpenSSL's send path living in T (the paper's NGINX
	// split): it accepts a *private* buffer, encrypts it with the session
	// key and puts the ciphertext on the wire.
	h["ssl_send"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		buf, size := arg(t, 1), arg(t, 2)
		if f := c.CheckPriv(buf, size); f != nil {
			return 0, 0, f
		}
		data := make([]byte, size)
		if f := m.Mem.ReadBytes(buf, data); f != nil {
			return 0, 0, f
		}
		c.NetOut = append(c.NetOut, c.EncryptBytes(data))
		return size, 2 * size, nil
	})

	h["read_passwd"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		uname, pass, size := arg(t, 0), arg(t, 1), arg(t, 2)
		if f := c.CheckPub(uname, 1); f != nil {
			return 0, 0, f
		}
		if f := c.CheckPriv(pass, size); f != nil {
			return 0, 0, f
		}
		name, f := ReadCStr(m, uname)
		if f != nil {
			return 0, 0, f
		}
		pw := c.Passwords[name]
		buf := make([]byte, size)
		copy(buf, pw)
		if f := m.Mem.WriteBytes(pass, buf); f != nil {
			return 0, 0, f
		}
		return 0, size, nil
	})

	readFile := func(private bool) machine.Handler {
		return c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
			nameA, buf, size := arg(t, 0), arg(t, 1), arg(t, 2)
			if f := c.CheckPub(nameA, 1); f != nil {
				return 0, 0, f
			}
			var chk *machine.Fault
			if private {
				chk = c.CheckPriv(buf, size)
			} else {
				chk = c.CheckPub(buf, size)
			}
			if chk != nil {
				return 0, 0, chk
			}
			name, f := ReadCStr(m, nameA)
			if f != nil {
				return 0, 0, f
			}
			var content []byte
			if private {
				content = c.PrivFiles[name]
			} else {
				content = c.Files[name]
			}
			n := uint64(len(content))
			if n > size {
				n = size
			}
			if f := m.Mem.WriteBytes(buf, content[:n]); f != nil {
				return 0, 0, f
			}
			return n, n, nil
		})
	}
	h["read_file"] = readFile(false)
	h["read_file_priv"] = readFile(true)

	h["write_file"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		nameA, buf, size := arg(t, 0), arg(t, 1), arg(t, 2)
		if f := c.CheckPub(nameA, 1); f != nil {
			return 0, 0, f
		}
		if f := c.CheckPub(buf, size); f != nil {
			return 0, 0, f
		}
		name, f := ReadCStr(m, nameA)
		if f != nil {
			return 0, 0, f
		}
		data := make([]byte, size)
		if f := m.Mem.ReadBytes(buf, data); f != nil {
			return 0, 0, f
		}
		c.Files[name] = data
		return size, size, nil
	})

	h["log_write"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		buf, size := arg(t, 0), arg(t, 1)
		if f := c.CheckPub(buf, size); f != nil {
			return 0, 0, f
		}
		data := make([]byte, size)
		if f := m.Mem.ReadBytes(buf, data); f != nil {
			return 0, 0, f
		}
		c.Log = append(c.Log, data...)
		return size, size, nil
	})

	h["malloc"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		addr, err := c.PubAlloc.Alloc(arg(t, 0))
		if err != nil {
			return 0, 0, tfault("%v", err)
		}
		return addr, 0, nil
	})
	h["malloc_priv"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		addr, err := c.PrivAlloc.Alloc(arg(t, 0))
		if err != nil {
			return 0, 0, tfault("%v", err)
		}
		return addr, 0, nil
	})
	h["free"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		if err := c.PubAlloc.Free(arg(t, 0)); err != nil {
			return 0, 0, tfault("%v", err)
		}
		return 0, 0, nil
	})
	h["free_priv"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		if err := c.PrivAlloc.Free(arg(t, 0)); err != nil {
			return 0, 0, tfault("%v", err)
		}
		return 0, 0, nil
	})

	h["input"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		i := int(int64(arg(t, 0)))
		if i < 0 || i >= len(c.Params) {
			return 0, 0, nil
		}
		return uint64(c.Params[i]), 0, nil
	})

	h["input_priv"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		i, buf, size := int(int64(arg(t, 0))), arg(t, 1), arg(t, 2)
		if f := c.CheckPriv(buf, size); f != nil {
			return 0, 0, f
		}
		data := c.PrivIn[i]
		n := uint64(len(data))
		if n > size {
			n = size
		}
		out := make([]byte, size)
		copy(out, data[:n])
		if f := m.Mem.WriteBytes(buf, out); f != nil {
			return 0, 0, f
		}
		return 0, size, nil
	})

	h["output"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		// output's argument is a *public* long: it is a declassification-
		// free sink, so the compiler must already have proven the value
		// public. T needs no further check for scalar register values.
		c.Outputs = append(c.Outputs, int64(arg(t, 0)))
		return 0, 0, nil
	})

	h["hash_declass"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		buf, size := arg(t, 0), arg(t, 1)
		if f := c.CheckPriv(buf, size); f != nil {
			return 0, 0, f
		}
		data := make([]byte, size)
		if f := m.Mem.ReadBytes(buf, data); f != nil {
			return 0, 0, f
		}
		// FNV-1a, declassified as a public hash (the paper's Merkle-tree
		// integrity library, §7.5).
		hash := uint64(14695981039346656037)
		for _, b := range data {
			hash ^= uint64(b)
			hash *= 1099511628211
		}
		return hash, size, nil
	})

	h["thread_spawn"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		fn, a0 := arg(t, 0), arg(t, 1)
		if c.Spawn == nil {
			return 0, 0, tfault("thread_spawn: no spawner wired")
		}
		if err := c.Spawn(fn, a0); err != nil {
			return 0, 0, tfault("thread_spawn: %v", err)
		}
		return 0, 0, nil
	})

	h["rand_next"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		return c.Rand.Uint64(), 0, nil
	})

	h["debug_print"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		s, v := arg(t, 0), arg(t, 1)
		if f := c.CheckPub(s, 1); f != nil {
			return 0, 0, f
		}
		str, f := ReadCStr(m, s)
		if f != nil {
			return 0, 0, f
		}
		c.Log = append(c.Log, []byte(str)...)
		c.Log = append(c.Log, le64(v)...)
		return 0, 0, nil
	})

	h["classify_declass"] = c.handler(func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault) {
		scores, n := arg(t, 0), arg(t, 1)
		if f := c.CheckPriv(scores, n*8); f != nil {
			return 0, 0, f
		}
		// Declassify only the argmax class index (Privado's declassifier,
		// §7.4).
		best, bestIdx := -1.0e308, uint64(0)
		for i := uint64(0); i < n; i++ {
			bits, f := m.Mem.Read(scores+8*i, 8)
			if f != nil {
				return 0, 0, f
			}
			v := float64frombits(bits)
			if v > best {
				best, bestIdx = v, i
			}
		}
		return bestIdx, n * 8, nil
	})

	for name, fn := range c.extra {
		h[name] = fn
	}
	if c.Observe != nil {
		// Wrap every handler (extras included) with the observation hook:
		// the observer sees the handler's name and the thread's simulated
		// cycle counter before and after the call — faults included, so a
		// span layer can close a request's last span on a trusted refusal.
		for name, fn := range h {
			name, fn := name, fn
			h[name] = func(m *machine.Machine, t *machine.Thread) *machine.Fault {
				start := t.Stats.Cycles
				f := fn(m, t)
				c.Observe(name, start, t.Stats.Cycles)
				return f
			}
		}
	}
	return h
}

func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
