// Package trt implements the trusted runtime T: the small library of
// declassification, I/O and memory-management functions that U calls
// through the externals table (§2, §6).
//
// Handlers model T code compiled by a vanilla compiler: they run on the
// host, may access all machine memory, and are responsible for the same
// obligations the paper assigns to T wrappers —
//
//   - check that buffer arguments lie in the region their annotated
//     signature promises (e.g. send's buffer must be public);
//   - switch stacks/gs on entry and exit (modeled as a cycle charge);
//   - return to U through the CFI return discipline (jump past the
//     return-site magic word).
//
// The externally observable channels (NetOut, Log, Outputs) are what the
// attacker sees; exploit tests assert secrets never reach them in clear.
package trt

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"confllvm/internal/alloc"
	"confllvm/internal/asm"
	"confllvm/internal/codegen"
	"confllvm/internal/link"
	"confllvm/internal/machine"
)

// Context is the trusted runtime's state for one execution.
type Context struct {
	Img  *link.Image
	Conf codegen.Config

	PubAlloc  *alloc.Allocator
	PrivAlloc *alloc.Allocator

	// Simulated world.
	Files     map[string][]byte // file store (public contents)
	PrivFiles map[string][]byte // private file contents
	Passwords map[string][]byte // username -> stored password
	Params    []int64           // public scenario parameters (input)
	PrivIn    map[int][]byte    // private scenario inputs

	// Observable output channels (the attacker's view).
	NetIn   [][]byte // queued incoming packets
	NetOut  [][]byte // packets U sent (cleartext visible!)
	Log     []byte   // log file
	Outputs []int64  // public scalar outputs

	// Key is the toy cipher key; EncOverhead simulates crypto cost per
	// byte (cycles).
	Key byte

	// Spawn starts a new U thread at a function-pointer value (wired by
	// the loader facade).
	Spawn func(fnPtr uint64, arg uint64) error

	Rand *rand.Rand

	// Observe, when non-nil, is called after every trusted-handler
	// invocation with the handler's externals-table name and the calling
	// thread's cycle counter at entry and exit — the hook the
	// observability plane (internal/obs) builds request spans from. The
	// timestamps are simulated cycles, so observations are deterministic
	// and dispatch-mode-invariant. Handlers are only wrapped when Observe
	// is set at Handlers() time; the nil case costs nothing.
	Observe func(name string, startCycles, endCycles uint64)

	// extra registered handlers (application-specific T functions).
	extra map[string]machine.Handler
}

// NewContext creates a context with empty channels.
func NewContext(img *link.Image, pub, priv *alloc.Allocator) *Context {
	return &Context{
		Img: img, Conf: img.Config,
		PubAlloc: pub, PrivAlloc: priv,
		Files:     map[string][]byte{},
		PrivFiles: map[string][]byte{},
		Passwords: map[string][]byte{},
		PrivIn:    map[int][]byte{},
		Key:       DefaultKey,
		Rand:      rand.New(rand.NewSource(1)),
		extra:     map[string]machine.Handler{},
	}
}

// Register adds an application-specific T function.
func (c *Context) Register(name string, h machine.Handler) { c.extra[name] = h }

// tfault builds a trusted-wrapper rejection fault.
func tfault(format string, args ...interface{}) *machine.Fault {
	return &machine.Fault{Kind: machine.FaultTrusted, Msg: fmt.Sprintf(format, args...)}
}

// ---- Region checks (the wrapper obligations) ----

func (c *Context) pubRange(addr, size uint64) bool {
	l := c.Img.Layout
	return addr >= l.PubBase && size <= l.UsableSize && addr+size <= l.PubBase+l.UsableSize
}

func (c *Context) privRange(addr, size uint64) bool {
	l := c.Img.Layout
	if addr >= l.PrivBase && size <= l.UsableSize && addr+size <= l.PrivBase+l.UsableSize {
		return true
	}
	// Single-stack ablation (OurMPX-Sep): private stack data lives in the
	// public region; the wrapper accepts all of U's memory.
	if !c.Conf.SeparateStacks {
		return c.pubRange(addr, size)
	}
	return false
}

// CheckPub validates a public buffer argument.
func (c *Context) CheckPub(addr, size uint64) *machine.Fault {
	if c.Conf.IgnoreTaint {
		// Vanilla baseline: only require the buffer to be in U memory.
		if c.pubRange(addr, size) || c.privRange(addr, size) {
			return nil
		}
		return tfault("buffer [%#x,+%d) outside U memory", addr, size)
	}
	if !c.pubRange(addr, size) {
		return tfault("public buffer expected, got [%#x,+%d)", addr, size)
	}
	return nil
}

// CheckPriv validates a private buffer argument.
func (c *Context) CheckPriv(addr, size uint64) *machine.Fault {
	if c.Conf.IgnoreTaint {
		if c.pubRange(addr, size) || c.privRange(addr, size) {
			return nil
		}
		return tfault("buffer [%#x,+%d) outside U memory", addr, size)
	}
	if !c.privRange(addr, size) {
		return tfault("private buffer expected, got [%#x,+%d)", addr, size)
	}
	return nil
}

// ---- Transition costs and the return discipline ----

// charge accounts for the U->T->U transition plus per-byte work in T.
func (c *Context) charge(t *machine.Thread, m *machine.Machine, bytes uint64) {
	var cost uint64
	if c.Conf.SeparateUT {
		cost = m.Conf.TrustedCost // stack + gs switch, argument copying
	} else {
		cost = m.Conf.TrustedCost1 // plain call into a shared library
	}
	cost += bytes / 8
	t.AddCycles(cost)
}

// Return performs the T->U return: pop the return address, and under CFI
// verify the return-site magic word and skip it (like the paper's
// wrappers, which "jump to U in a similar manner to our CFI return
// instrumentation").
func (c *Context) Return(m *machine.Machine, t *machine.Thread) *machine.Fault {
	raddr, f := t.Pop()
	if f != nil {
		return f
	}
	if !c.Conf.CFI {
		t.PC = raddr
		return nil
	}
	word, f := m.Mem.Read(raddr, 8)
	if f != nil {
		return f
	}
	if word&^31 != c.Img.MRetPrefix {
		return tfault("T wrapper: return site lacks MRet magic (raddr=%#x)", raddr)
	}
	t.PC = raddr + 8
	return nil
}

// ---- Machine memory helpers ----

// ReadCStr reads a NUL-terminated string (max 4096 bytes) from U memory.
func ReadCStr(m *machine.Machine, addr uint64) (string, *machine.Fault) {
	var out []byte
	for i := 0; i < 4096; i++ {
		b, f := m.Mem.Read(addr+uint64(i), 1)
		if f != nil {
			return "", f
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, byte(b))
	}
	return string(out), nil
}

// arg returns the i-th integer argument (registers only; T's interface
// keeps at most 4 arguments, like the paper's wrappers).
func arg(t *machine.Thread, i int) uint64 {
	return t.Regs[asm.ArgRegs[i]]
}

// handler wraps a body with charge+return bookkeeping. The body returns
// (result, bytesTouched, fault).
func (c *Context) handler(body func(m *machine.Machine, t *machine.Thread) (uint64, uint64, *machine.Fault)) machine.Handler {
	return func(m *machine.Machine, t *machine.Thread) *machine.Fault {
		res, bytes, f := body(m, t)
		if f != nil {
			return f
		}
		t.Regs[asm.RetReg] = res
		c.charge(t, m, bytes)
		return c.Return(m, t)
	}
}

// DefaultKey is the session key used by every context (tests and
// harnesses pre-encrypt wire data with it).
const DefaultKey byte = 0x5a

// EncryptWithDefaultKey applies the toy cipher with the default session
// key (for building simulated wire traffic without a context).
func EncryptWithDefaultKey(data []byte) []byte { return xorCipher(DefaultKey, data) }

// xorCipher is the toy cipher used by encrypt/decrypt: a rolling XOR that
// guarantees ciphertext differs from plaintext on every byte.
func xorCipher(key byte, data []byte) []byte {
	out := make([]byte, len(data))
	k := key
	for i, b := range data {
		out[i] = b ^ k ^ 0x80
		k = k*31 + 17
	}
	return out
}

// EncryptBytes exposes the toy cipher for tests.
func (c *Context) EncryptBytes(data []byte) []byte { return xorCipher(c.Key, data) }

// DecryptBytes inverts EncryptBytes.
func (c *Context) DecryptBytes(data []byte) []byte {
	out := make([]byte, len(data))
	k := c.Key
	for i, b := range data {
		out[i] = b ^ k ^ 0x80
		k = k*31 + 17
	}
	return out
}

// le64 encodes v little-endian.
func le64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}
