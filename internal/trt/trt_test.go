package trt_test

import (
	"bytes"
	"testing"

	"confllvm"
	"confllvm/internal/trt"
)

func TestCipherRoundtrip(t *testing.T) {
	data := []byte("attack at dawn \x00\x01\x02")
	enc := trt.EncryptWithDefaultKey(data)
	if bytes.Equal(enc, data) {
		t.Fatal("ciphertext equals plaintext")
	}
	for i := range enc {
		if enc[i] == data[i] {
			t.Fatalf("byte %d unchanged by the cipher", i)
		}
	}
	// Round-trip through a context (decrypt is the inverse).
	art, err := confllvm.Compile(confllvm.Program{Sources: []confllvm.Source{
		{Name: "n.c", Code: "int main() { return 0; }"},
	}}, confllvm.VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	res, err := confllvm.Run(art, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TCtx.DecryptBytes(enc); !bytes.Equal(got, data) {
		t.Fatalf("decrypt(encrypt(x)) = %q, want %q", got, data)
	}
}

// TestWrapperRangeChecks drives each buffer-taking handler with a pointer
// into the wrong region and expects the trusted wrapper to reject it.
func TestWrapperRangeChecks(t *testing.T) {
	src := `
extern int send(int fd, char *buf, int size);
extern void read_passwd(char *uname, private char *pass, int size);
int main() {
	char u[4];
	u[0] = 'u'; u[1] = 0;
	private char secret[32];
	read_passwd(u, secret, 32);
	/* wrong region: send expects a public buffer */
	send(1, (char*)(void*)secret, 32);
	return 0;
}
`
	art, err := confllvm.Compile(confllvm.Program{Sources: []confllvm.Source{
		{Name: "w.c", Code: src},
	}}, confllvm.VariantMPX)
	if err != nil {
		t.Fatal(err)
	}
	w := confllvm.NewWorld()
	w.Passwords["u"] = []byte("pw")
	res, err := confllvm.Run(art, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault == nil {
		t.Fatal("wrapper accepted a private buffer at a public parameter")
	}
	if len(res.NetOut) != 0 {
		t.Fatal("data reached the network despite the rejection")
	}
}

// TestWrapperCountsCost: U->T transitions are charged, and the Our1Mem
// ablation charges less.
func TestWrapperCountsCost(t *testing.T) {
	src := `
extern void output(long v);
int main() {
	int i;
	for (i = 0; i < 50; i++) output(i);
	return 0;
}
`
	run := func(v confllvm.Variant) uint64 {
		art, err := confllvm.Compile(confllvm.Program{Sources: []confllvm.Source{
			{Name: "c.c", Code: src}}}, v)
		if err != nil {
			t.Fatal(err)
		}
		res, err := confllvm.Run(art, nil, nil)
		if err != nil || res.Fault != nil {
			t.Fatalf("%v %v", err, res.Fault)
		}
		if res.Stats.TrustedCall != 50 {
			t.Fatalf("[%v] %d trusted calls, want 50", v, res.Stats.TrustedCall)
		}
		return res.Stats.Cycles
	}
	sep := run(confllvm.VariantBare)
	one := run(confllvm.VariantOneMem)
	if sep <= one {
		t.Fatalf("memory separation must cost more per T call: sep=%d one=%d", sep, one)
	}
}
