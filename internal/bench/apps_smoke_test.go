package bench

import (
	"testing"

	"confllvm"
)

func TestLDAPSmoke(t *testing.T) {
	queries := 200
	if testing.Short() {
		queries = 40
	}
	for _, v := range []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX, confllvm.VariantSeg} {
		m, err := RunLDAP(v, queries, 50)
		if err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if len(m.Outputs) != 1 {
			t.Fatalf("[%v] outputs %v", v, m.Outputs)
		}
	}
}

func TestClassifierSmoke(t *testing.T) {
	var golden []int64
	for _, v := range []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX} {
		m, err := RunClassifier(v, 2)
		if err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if golden == nil {
			golden = m.Outputs
		} else if m.Outputs[0] != golden[0] {
			t.Fatalf("classifier outputs differ across variants: %v vs %v", m.Outputs, golden)
		}
	}
}

func TestMerkleSmoke(t *testing.T) {
	fileKB, threads := 64, 3
	if testing.Short() {
		fileKB, threads = 16, 2
	}
	for _, v := range []confllvm.Variant{confllvm.VariantBase, confllvm.VariantSeg, confllvm.VariantMPX} {
		m, err := RunMerkle(v, fileKB, threads)
		if err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		_ = m
	}
}
