package bench

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"time"

	"confllvm"
	"confllvm/internal/verify"
	"confllvm/internal/verify/verifymut"
)

// VerifyReport is one verify-figure cell: the verifier run against a
// workload's linked binary. The counters (Funcs, Stubs, Insts, CodeBytes,
// MutantsTried, MutantsKilled) are pure functions of the binary and the
// mutation seed — byte-identical under any scheduling or -parallel
// setting. Only the *NS fields are host-time and may vary run to run.
type VerifyReport struct {
	Funcs, Stubs, Insts int
	CodeBytes           int
	// Workers is the parallel lane's worker count (host property).
	Workers int
	// SerialNS / ParallelNS time a cold full check; CachedNS times a
	// re-check against a warm verdict cache (the load-gate steady state).
	SerialNS, ParallelNS, CachedNS int64
	// MutantsTried counts the seeded verifymut mutants applicable to this
	// binary; MutantsKilled counts those the verifier rejected with the
	// structured error the mutator's contract demands (offset and message).
	// The figure fails loudly when Killed < Tried: a surviving mutant is a
	// verifier soundness hole, not a slow cell.
	MutantsTried, MutantsKilled int
}

// FuncsPerSec is parallel cold-check throughput (0 if untimed).
func (r *VerifyReport) FuncsPerSec() float64 {
	if r.ParallelNS <= 0 {
		return 0
	}
	return float64(r.Funcs) / (float64(r.ParallelNS) / 1e9)
}

// InstsPerSec is parallel cold-check instruction throughput.
func (r *VerifyReport) InstsPerSec() float64 {
	if r.ParallelNS <= 0 {
		return 0
	}
	return float64(r.Insts) / (float64(r.ParallelNS) / 1e9)
}

// Speedup is serial time over parallel time (1.0 on a single-core host).
func (r *VerifyReport) Speedup() float64 {
	if r.ParallelNS <= 0 {
		return 0
	}
	return float64(r.SerialNS) / float64(r.ParallelNS)
}

// verifySeed derives a per-cell mutation seed from the base seed and the
// cell's identity, so every cell mutates different sites yet the whole
// figure is a pure function of the base seed.
func verifySeed(seed uint64, key string, v confllvm.Variant) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%v", key, v)
	return seed ^ h.Sum64()
}

// VerifyCells expands the verify figure into matrix cells: every workload
// under both deployable schemes, each cell checking the workload's binary
// cold-serial, cold-parallel and verdict-cached, then running the seeded
// mutation corpus against it. Cells are Serial — the host-time throughput
// numbers are the measurement, so they must not share the host with
// concurrently running cells.
func VerifyCells(figure string, wls []Workload, vs []confllvm.Variant, seed uint64) []Cell {
	var cells []Cell
	for _, wl := range wls {
		for _, v := range vs {
			wl := wl
			cells = append(cells, Cell{
				Figure:   figure,
				Row:      wl.Name,
				Workload: wl,
				Variant:  v,
				Serial:   true,
				Custom: func(c *Cell) (*Measurement, error) {
					start := time.Now()
					rep, err := verifyCell(c.Workload, c.Variant, seed)
					if err != nil {
						return nil, err
					}
					return &Measurement{
						Variant: c.Variant,
						HostNS:  time.Since(start).Nanoseconds(),
						Verify:  rep,
					}, nil
				},
			})
		}
	}
	return cells
}

// verifyCell measures one (workload, variant) verify cell. It re-checks
// the parallel and cached verdicts against the serial one and fails the
// cell on any divergence — the figure is also a determinism test.
func verifyCell(wl Workload, v confllvm.Variant, seed uint64) (*VerifyReport, error) {
	art, err := CompileCached(wl.Key, v, wl.Prog(v))
	if err != nil {
		return nil, err
	}
	img := art.Image
	opts := verify.Options{Strict: art.Strict}
	workers := runtime.GOMAXPROCS(0)

	t0 := time.Now()
	serial, err := verify.VerifyStats(img, opts)
	serialNS := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("verify %s [%v]: %w", wl.Name, v, err)
	}

	popts := opts
	popts.Parallel = workers
	t0 = time.Now()
	par, err := verify.VerifyStats(img, popts)
	parallelNS := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("parallel verify %s [%v]: %w", wl.Name, v, err)
	}
	if par != serial {
		return nil, fmt.Errorf("verify %s [%v]: parallel stats %+v diverge from serial %+v",
			wl.Name, v, par, serial)
	}

	copts := popts
	copts.Cache = verify.NewCache()
	if _, err := verify.VerifyStats(img, copts); err != nil {
		return nil, fmt.Errorf("cache-priming verify %s [%v]: %w", wl.Name, v, err)
	}
	t0 = time.Now()
	warm, err := verify.VerifyStats(img, copts)
	cachedNS := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("cached verify %s [%v]: %w", wl.Name, v, err)
	}
	if warm.CacheHits != warm.Funcs {
		return nil, fmt.Errorf("verify %s [%v]: warm run served %d/%d verdicts from cache",
			wl.Name, v, warm.CacheHits, warm.Funcs)
	}

	rep := &VerifyReport{
		Funcs:      serial.Funcs,
		Stubs:      serial.Stubs,
		Insts:      serial.Insts,
		CodeBytes:  len(img.Code),
		Workers:    workers,
		SerialNS:   serialNS,
		ParallelNS: parallelNS,
		CachedNS:   cachedNS,
	}

	// The gate-rejection column: every seeded mutant must be killed with
	// the structured error its mutator pinned. A mutant only counts as
	// killed when the offset and message match the contract — a rejection
	// for the wrong reason would mask a soundness hole just as well as an
	// acceptance.
	for _, mut := range verifymut.Generate(img, verifySeed(seed, wl.Key, v)) {
		rep.MutantsTried++
		if killedByContract(mut, opts) {
			rep.MutantsKilled++
		}
	}
	return rep, nil
}

// killedByContract reports whether the verifier rejects the mutant with
// the error its mutator demands (serial and parallel must agree).
func killedByContract(mut *verifymut.Mutant, opts verify.Options) bool {
	serr := verify.Verify(mut.Image, opts)
	popts := opts
	popts.Parallel = 8
	perr := verify.Verify(mut.Image, popts)
	var sv, pv *verify.Error
	if !errors.As(serr, &sv) || !errors.As(perr, &pv) || *sv != *pv {
		return false
	}
	for _, off := range mut.WantOffs {
		if sv.Off == off {
			return mut.WantMsg == "" || strings.Contains(sv.Msg, mut.WantMsg)
		}
	}
	return false
}
