package bench

import (
	"fmt"

	"confllvm"
	"confllvm/internal/machine"
	"confllvm/internal/scenario"
)

// This file is the cluster layer: N machine.Machine instances serving one
// scenario's key space behind a deterministic router (internal/scenario's
// Cluster). Each shard is an ordinary matrix cell — the existing kv.go
// program, the shared singleflight artifact (so every shard binary passes
// the verify-before-load gate exactly once per variant), its own machine
// — and RunMatrix schedules shards across its worker pool like any other
// cells. What makes the result a *cluster* measurement is the merge:
// shards run concurrently in the simulated world, so the cluster's wall
// clock is the slowest shard's simulated cycles, and aggregate req/s is
// client requests over that maximum. The merge uses only commutative,
// associative folds (sum/min/max), so it is invariant under shard
// completion order — the property that keeps cluster figure rows
// byte-identical across -parallel settings.

// ClusterReport is the deterministic merge of one cluster's per-shard
// measurements. Every field is a simulated quantity.
type ClusterReport struct {
	Shards int
	// ClientRequests is the client-visible request count — the req/s
	// numerator. RoutedRequests counts shard requests after scan fan-out.
	ClientRequests int
	RoutedRequests int
	// WallCycles is the cluster clock: the slowest shard's simulated
	// cycles (shards serve concurrently in simulated time).
	WallCycles uint64
	// SumCycles is the aggregate compute across shards (the cost view).
	SumCycles uint64
	// Min/MaxShardCycles and Min/MaxShardReqs are the balance columns:
	// how evenly routing spread simulated work and requests.
	MinShardCycles, MaxShardCycles uint64
	MinShardReqs, MaxShardReqs     int
	// ScanSplits counts extra shard sub-requests created by cross-shard
	// scans; CrossScans counts scans that touched more than one shard.
	ScanSplits, CrossScans int
	// Instrs sums simulated instructions across shards.
	Instrs uint64
}

// AggReqsPerSec is the cluster's aggregate throughput: client requests
// served per second at SimClockHz on the merged clock.
func (r *ClusterReport) AggReqsPerSec() uint64 {
	return ReqsPerSec(uint64(r.ClientRequests), r.WallCycles)
}

// MergeShardClocks folds per-shard measurements into the cluster
// aggregate. ms must hold one measurement per shard of ct, but in *any*
// order: every fold is commutative and associative (sum, min, max), so
// the merged report is independent of shard completion or iteration
// order (pinned by TestClusterMergeOrderInvariance). Request-count
// balance comes from the routing metadata, which is fixed before any
// shard runs.
func MergeShardClocks(ct *scenario.ClusterTraffic, ms []*Measurement) (*ClusterReport, error) {
	if len(ms) != ct.Spec.Shards {
		return nil, fmt.Errorf("cluster %s: %d shard measurements for %d shards",
			ct.Spec.Name, len(ms), ct.Spec.Shards)
	}
	rep := &ClusterReport{
		Shards:         ct.Spec.Shards,
		ClientRequests: ct.ClientRequests,
		ScanSplits:     ct.ScanSplits,
		CrossScans:     ct.CrossScans,
	}
	for i, m := range ms {
		if m == nil {
			return nil, fmt.Errorf("cluster %s: missing measurement at position %d", ct.Spec.Name, i)
		}
		if i == 0 {
			rep.MinShardCycles = m.Wall
		}
		if m.Wall > rep.MaxShardCycles {
			rep.MaxShardCycles = m.Wall
		}
		if m.Wall < rep.MinShardCycles {
			rep.MinShardCycles = m.Wall
		}
		rep.SumCycles += m.Wall
		rep.Instrs += m.Stats.Instrs
	}
	for i, n := range ct.Requests {
		if i == 0 {
			rep.MinShardReqs = n
		}
		if n > rep.MaxShardReqs {
			rep.MaxShardReqs = n
		}
		if n < rep.MinShardReqs {
			rep.MinShardReqs = n
		}
		rep.RoutedRequests += n
	}
	rep.WallCycles = rep.MaxShardCycles
	return rep, nil
}

// shardWorkload wraps one shard's routed slice of a cluster scenario as
// an ordinary Workload: the existing KV server program (shared artifact
// key "kv", so the whole grid compiles — and passes the verify load gate
// — once per variant) serving the shard's packet stream, checked against
// the router's per-shard output prediction.
func shardWorkload(ct *scenario.ClusterTraffic, shard int) Workload {
	wire, expect := ct.Wire[shard], ct.Expect[shard]
	name := fmt.Sprintf("%s/s%02d", ct.Spec.Name, shard)
	return Workload{
		Key:  "kv",
		Name: name,
		Prog: func(confllvm.Variant) confllvm.Program {
			return confllvm.Program{Sources: []confllvm.Source{
				{Name: "kv.c", Code: KVStoreSrc},
				{Name: "ulib.c", Code: ULib},
			}}
		},
		World: func() *confllvm.World {
			w := confllvm.NewWorld()
			w.Params = []int64{int64(len(wire))}
			w.NetIn = wire
			return w
		},
		Check: func(res *confllvm.Result) error {
			if len(res.Outputs) != len(expect) {
				return fmt.Errorf("shard %s: got %d outputs %v, want %d %v",
					name, len(res.Outputs), res.Outputs, len(expect), expect)
			}
			for i := range expect {
				if res.Outputs[i] != expect[i] {
					return fmt.Errorf("shard %s: output[%d] = %d, router predicted %d (%v vs %v)",
						name, i, res.Outputs[i], expect[i], res.Outputs, expect)
				}
			}
			return nil
		},
	}
}

// ClusterTraffics routes every spec of a cluster grid (panicking on a
// non-clusterable spec — grids are built from the KV family only).
func ClusterTraffics(specs []scenario.Spec) []*scenario.ClusterTraffic {
	cts := make([]*scenario.ClusterTraffic, len(specs))
	for i, spec := range specs {
		ct, err := scenario.Cluster(spec)
		if err != nil {
			panic(err)
		}
		cts[i] = ct
	}
	return cts
}

// ClusterCells expands routed cluster traffic into matrix cells: one
// cell per shard, in shard order, so a figure render can slice the
// results back into clusters (Spec.Shards cells per traffic) and merge
// them with MergeShardClocks. Shard cells are simulated quantities (no
// Serial pinning) and all share one artifact per variant through the
// singleflight cache.
func ClusterCells(figure string, cts []*scenario.ClusterTraffic,
	v confllvm.Variant, conf *machine.Config) []Cell {
	var cells []Cell
	for _, ct := range cts {
		for sh := 0; sh < ct.Spec.Shards; sh++ {
			cells = append(cells, Cell{
				Figure:   figure,
				Row:      ct.Spec.Name,
				Label:    fmt.Sprintf("s%02d", sh),
				Workload: shardWorkload(ct, sh),
				Variant:  v,
				Conf:     conf,
				Scale:    uint64(len(ct.Wire[sh])),
			})
		}
	}
	return cells
}

// ClusterServeReport is the supervised-cluster outcome: every shard runs
// its own crash-only Supervise loop — its own queue, restart backoff,
// replay budget and verify-gate rolls — so one shard tripping a fault
// restarts independently while the others keep serving and the cluster
// degrades instead of stopping. All fields are simulated quantities.
type ClusterServeReport struct {
	// PerShard holds each shard's own supervision report, index = shard.
	PerShard []*ServeReport

	Total    int // requests offered across shards
	Served   int
	Rejected int
	Shed     int

	Restarts         int
	VerifyRejections int

	// WallCycles is the cluster clock: the slowest shard's serving time
	// (execution + backoff) — a restarting shard stalls only itself.
	WallCycles uint64
	// RunCycles/BackoffCycles/Instrs are summed across shards.
	RunCycles     uint64
	BackoffCycles uint64
	Instrs        uint64
}

// AvailabilityPct is the percentage of offered requests the cluster
// served — the degraded-service headline.
func (r *ClusterServeReport) AvailabilityPct() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Served) / float64(r.Total) * 100
}

// ServedPerSec converts cluster-served requests over the merged clock
// into req/s at SimClockHz.
func (r *ClusterServeReport) ServedPerSec() uint64 {
	return ReqsPerSec(uint64(r.Served), r.WallCycles)
}

// SuperviseCluster generalizes Supervise to a sharded cluster: shard i
// serves ct.Wire[i] under pols[i] through its own independent supervision
// loop (faults, restarts and backoffs on one shard never touch another's
// queue), and the per-shard reports merge with the same commutative
// clock discipline as MergeShardClocks — max for the cluster wall clock,
// sums for counters — so the report is a pure function of
// (traffic, policies) like every other simulated quantity.
func SuperviseCluster(key string, prog confllvm.Program, v confllvm.Variant,
	ct *scenario.ClusterTraffic, mconf *machine.Config, pols []FaultPolicy) (*ClusterServeReport, error) {

	if len(pols) != ct.Spec.Shards {
		return nil, fmt.Errorf("cluster %s: %d fault policies for %d shards",
			ct.Spec.Name, len(pols), ct.Spec.Shards)
	}
	rep := &ClusterServeReport{PerShard: make([]*ServeReport, ct.Spec.Shards)}
	for sh := 0; sh < ct.Spec.Shards; sh++ {
		sr, err := Supervise(key, prog, v, ct.Wire[sh], mconf, pols[sh])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
		rep.PerShard[sh] = sr
		rep.Total += sr.Total
		rep.Served += sr.Served
		rep.Rejected += sr.Rejected
		rep.Shed += sr.Shed
		rep.Restarts += sr.Restarts
		rep.VerifyRejections += sr.VerifyRejections
		rep.RunCycles += sr.RunCycles
		rep.BackoffCycles += sr.BackoffCycles
		rep.Instrs += sr.Instrs
		if wall := sr.RunCycles + sr.BackoffCycles; wall > rep.WallCycles {
			rep.WallCycles = wall
		}
	}
	return rep, nil
}
