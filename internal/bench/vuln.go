package bench

import (
	"confllvm"
)

// ---- §7.6 vulnerability-injection programs ----
//
// Each program contains a hand-crafted confidentiality exploit. Under the
// Base configuration the exploit leaks the secret to an observable channel
// (the network or the log); under full ConfLLVM (MPX or Seg) the leak is
// prevented — either silently (the attacker reads the wrong stack) or by a
// runtime fault.

// VulnMongooseSrc is the Mongoose stale-stack-data exploit: a request for
// a private file writes its contents into a stack buffer; a later request
// for a public file replies with an attacker-controlled *oversized*
// length, sending stale stack memory. With ConfLLVM the private file
// contents were on the private stack, so the over-send only exposes the
// public stack.
const VulnMongooseSrc = `
extern long input(int idx);
extern int read_file(char *name, char *buf, int size);
extern int read_file_priv(char *name, private char *buf, int size);
extern int send(int fd, char *buf, int size);
extern void output(long v);

/* Request 1: serve a private file over https (stages contents on the
 * stack, sends nothing in clear). */
void serve_private(void) {
	private char staging[256];
	char name[8];
	name[0] = 's'; name[1] = 0;
	int n = read_file_priv(name, staging, 256);
	/* ... processed and sent over TLS by T; the buffer simply dies ... */
	output(n);
}

/* Request 2: serve a small public file from the connection's I/O buffer,
 * with the response length taken from the (attacker-controlled) request. */
void serve_public(int resp_len) {
	char iobuf[512];
	char name[8];
	name[0] = 'p'; name[1] = 0;
	int n = read_file(name, iobuf, 16);
	/* BUG: sends resp_len bytes although only n were filled; the stale
	 * remainder of the I/O buffer goes out in clear. */
	if (resp_len > n) n = resp_len;
	send(1, iobuf, n);
}

int main() {
	long evil_len = input(0);
	serve_private();
	serve_public((int)evil_len);
	return 0;
}
`

// VulnMinizipSrc is the Minizip password-leak: the encryption password is
// private, but a chain of pointer casts makes the leak invisible to the
// static analysis (as the paper constructed); the runtime region checks
// must stop it.
const VulnMinizipSrc = `
extern void read_passwd(char *uname, private char *pass, int size);
extern void log_write(char *buf, int size);
extern void output(long v);

private char password[32];
char logline[64];

int main() {
	char uname[8];
	uname[0] = 'u'; uname[1] = 0;
	read_passwd(uname, password, 32);
	/* BUG: launder the private pointer through casts, then copy the
	 * password into the public log line. */
	char *laundered = (char*)(void*)(long)(private char*)password;
	int i;
	for (i = 0; i < 32; i++) logline[i] = laundered[i];
	log_write(logline, 32);
	output(1);
	return 0;
}
`

// VulnPrintfSrc is the format-string exploit: printf (in U) walks the
// vararg area guided by an attacker-style format string with more
// directives than arguments, reading adjacent stack slots. Under Base the
// secret key sits on the same stack; under ConfLLVM it lives on the
// private stack and the overread sees only public slots.
const VulnPrintfSrc = `
extern long input(int idx);
extern void input_priv(int idx, private char *buf, int size);
extern void output(long v);

int printf(char *fmt, ...);

int main() {
	private long secret[2];
	input_priv(0, (private char*)secret, 16);
	/* one argument, eight directives: printf overreads the stack */
	printf("%x %x %x %x %x %x %x %x", (long)7);
	output(1);
	return 0;
}
`

// VulnResult is the outcome of running one exploit.
type VulnResult struct {
	Leaked  bool // secret bytes visible on an attacker channel
	Faulted bool // runtime enforcement stopped execution
	Res     *confllvm.Result
}

// RunVuln executes one of the exploit programs and reports whether the
// secret leaked. secret is what the attacker hopes to observe.
func RunVuln(name, src string, v confllvm.Variant, w *confllvm.World, secret []byte) (*VulnResult, error) {
	prog := confllvm.Program{Sources: []confllvm.Source{
		{Name: name + ".c", Code: src},
		{Name: "ulib.c", Code: ULib},
	}}
	art, err := CompileCached("vuln-"+name, v, prog)
	if err != nil {
		return nil, err
	}
	res, err := confllvm.Run(art, w, nil)
	if err != nil {
		return nil, err
	}
	vr := &VulnResult{Res: res, Faulted: res.Fault != nil}
	obs := append([]byte{}, res.Log...)
	for _, pkt := range res.NetOut {
		obs = append(obs, pkt...)
	}
	vr.Leaked = containsBytes(obs, secret)
	return vr, nil
}

func containsBytes(hay, needle []byte) bool {
	if len(needle) == 0 || len(hay) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
