package bench

import (
	"testing"

	"confllvm"
)

// TestSPECKernelsCrossVariant runs every kernel in every configuration and
// requires bit-identical outputs: the instrumentation must never change
// program semantics.
func TestSPECKernelsCrossVariant(t *testing.T) {
	for _, k := range SPECKernels() {
		k := k
		k.Params = k.EffectiveParams(testing.Short())
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel() // kernels are independent (workload, variant) cells
			var golden []int64
			for _, v := range confllvm.AllVariants() {
				m, err := RunSPEC(k, v)
				if err != nil {
					t.Fatalf("[%v] %v", v, err)
				}
				if len(m.Outputs) == 0 {
					t.Fatalf("[%v] no output", v)
				}
				if golden == nil {
					golden = m.Outputs
					continue
				}
				if len(m.Outputs) != len(golden) {
					t.Fatalf("[%v] output arity mismatch", v)
				}
				for i := range golden {
					if m.Outputs[i] != golden[i] {
						t.Errorf("[%v] output[%d] = %d, want %d (semantics changed by instrumentation)",
							v, i, m.Outputs[i], golden[i])
					}
				}
			}
		})
	}
}

// TestSPECKernelsPassVerifyGate compiles every kernel under the
// deployable (verifiable) variants and runs the binary verifier on each.
// Regression for a check-coalescing soundness bug: reloading a spilled
// pointer into a scratch register used to leave the register's coalesced
// MPX-check entry live, so the reloaded pointer was dereferenced on
// another pointer's bound check — miscompiled code that the
// verify-before-load gate rejected.
func TestSPECKernelsPassVerifyGate(t *testing.T) {
	for _, k := range SPECKernels() {
		wl := SPECWorkload(k, k.EffectiveParams(true))
		for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
			art, err := confllvm.Compile(wl.Prog(v), v)
			if err != nil {
				t.Fatalf("[%v/%s] compile: %v", v, k.Name, err)
			}
			if !art.Verifiable() {
				t.Fatalf("[%v/%s] expected a verifiable configuration", v, k.Name)
			}
			if err := confllvm.Verify(art); err != nil {
				t.Errorf("[%v/%s] verifier rejected compiler output: %v", v, k.Name, err)
			}
		}
	}
}

// TestSPECOverheadShape checks the headline shape of Fig. 5: the MPX
// scheme costs more than the segmentation scheme, CFI adds a small
// overhead over Bare, and everything instrumented is slower than Base.
func TestSPECOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-variant sweep is slow")
	}
	tbl := NewTable("Fig5", confllvm.AllVariants()[:6], "cycles")
	for _, k := range SPECKernels() {
		for _, v := range []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBare,
			confllvm.VariantCFI, confllvm.VariantMPX, confllvm.VariantSeg} {
			m, err := RunSPEC(k, v)
			if err != nil {
				t.Fatalf("[%v/%s] %v", v, k.Name, err)
			}
			tbl.Set(k.Name, v, m.Wall)
		}
	}
	mpx := tbl.GeoMeanOverhead(confllvm.VariantMPX)
	seg := tbl.GeoMeanOverhead(confllvm.VariantSeg)
	cfi := tbl.GeoMeanOverhead(confllvm.VariantCFI)
	bare := tbl.GeoMeanOverhead(confllvm.VariantBare)
	t.Logf("geomean overheads: Bare=%.1f%% CFI=%.1f%% MPX=%.1f%% Seg=%.1f%%", bare, cfi, mpx, seg)
	if mpx <= seg {
		t.Errorf("MPX overhead (%.1f%%) should exceed segmentation overhead (%.1f%%)", mpx, seg)
	}
	if cfi < bare {
		t.Errorf("CFI overhead (%.1f%%) should be at least Bare overhead (%.1f%%)", cfi, bare)
	}
	if mpx <= 0 || seg <= 0 {
		t.Errorf("instrumented configs must cost something: MPX=%.1f%% Seg=%.1f%%", mpx, seg)
	}
}
