package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"confllvm"
	"confllvm/internal/machine"
)

// matrixCells builds the short workload x variant matrix the determinism
// test schedules: every bench workload under the paper's main checked
// and unchecked configurations, in both dispatch modes.
func matrixCells(t *testing.T) []Cell {
	t.Helper()
	variants := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX, confllvm.VariantSeg}
	if testing.Short() {
		variants = []confllvm.Variant{confllvm.VariantMPX}
	}
	step := machine.DefaultConfig()
	step.Superblocks = false
	block := machine.DefaultConfig()
	block.Superblocks = true
	var cells []Cell
	for _, wl := range Workloads(true) {
		for _, v := range variants {
			cells = append(cells,
				Cell{Figure: "matrix", Row: wl.Name, Label: "superblock", Workload: wl, Variant: v, Conf: &block},
				Cell{Figure: "matrix", Row: wl.Name, Label: "stepwise", Workload: wl, Variant: v, Conf: &step, Serial: true},
			)
		}
	}
	return cells
}

// TestParallelMatrixDeterminism is the concurrency regression test: the
// full short workload x variant matrix runs serially (workers=1) and
// with a many-worker pool, and every simulated observable — Wall,
// Stats, Outputs — must be identical cell for cell. Run under -race
// (the PR CI job does), this also proves the harness shares no mutable
// state across cells beyond the mutex-guarded artifact cache. The
// matrix includes Serial cells so the serial lane's ordering and
// precompile warmup are exercised too.
func TestParallelMatrixDeterminism(t *testing.T) {
	cells := matrixCells(t)
	serial := RunMatrix(cells, 1)
	// More workers than GOMAXPROCS on any host: even a single-core runner
	// interleaves goroutines enough for the race detector to bite.
	parallel := RunMatrix(cells, 8)

	if len(serial) != len(parallel) || len(serial) != len(cells) {
		t.Fatalf("result arity: %d serial, %d parallel, %d cells", len(serial), len(parallel), len(cells))
	}
	for i := range cells {
		name := fmt.Sprintf("%s/%v/%s", cells[i].Row, cells[i].Variant, cells[i].Label)
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: serial err=%v parallel err=%v", name, s.Err, p.Err)
		}
		if s.Cell != &cells[i] || p.Cell != &cells[i] {
			t.Fatalf("%s: result %d not assembled at its cell's index", name, i)
		}
		if s.M.Wall != p.M.Wall {
			t.Errorf("%s: wall cycles %d (serial) vs %d (parallel)", name, s.M.Wall, p.M.Wall)
		}
		if s.M.Stats != p.M.Stats {
			t.Errorf("%s: stats diverge:\nserial:   %+v\nparallel: %+v", name, s.M.Stats, p.M.Stats)
		}
		if len(s.M.Outputs) != len(p.M.Outputs) {
			t.Errorf("%s: outputs %v vs %v", name, s.M.Outputs, p.M.Outputs)
			continue
		}
		for j := range s.M.Outputs {
			if s.M.Outputs[j] != p.M.Outputs[j] {
				t.Errorf("%s: output[%d] %d vs %d", name, j, s.M.Outputs[j], p.M.Outputs[j])
			}
		}
	}
}

// TestCompileCachedSingleflight hammers one cache key from many
// goroutines: exactly one compilation may happen, every caller must get
// the same artifact, and none may observe a partially built entry.
func TestCompileCachedSingleflight(t *testing.T) {
	var compiles int32
	orig := compileFn
	compileFn = func(p confllvm.Program, v confllvm.Variant) (*confllvm.Artifact, error) {
		atomic.AddInt32(&compiles, 1)
		return orig(p, v)
	}
	defer func() { compileFn = orig }()

	wl := QuickstartWorkload()
	prog := wl.Prog(confllvm.VariantMPX)
	const callers = 16
	arts := make([]*confllvm.Artifact, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			art, err := CompileCached("singleflight-test", confllvm.VariantMPX, prog)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			arts[i] = art
		}()
	}
	wg.Wait()
	if n := atomic.LoadInt32(&compiles); n != 1 {
		t.Fatalf("%d concurrent same-key callers compiled %d times, want 1", callers, n)
	}
	for i := 1; i < callers; i++ {
		if arts[i] != arts[0] {
			t.Fatalf("caller %d got a different artifact pointer", i)
		}
	}
}

// TestCompileCachedKeyCompleteness is the stale-artifact regression: two
// requests that differ only in Program.Seed or Program.NoOpt compile to
// different bits and must not share a cache slot.
func TestCompileCachedKeyCompleteness(t *testing.T) {
	wl := QuickstartWorkload()
	base := wl.Prog(confllvm.VariantMPX)

	seeded := base
	seeded.Seed = 12345
	a, err := CompileCached("key-completeness", confllvm.VariantMPX, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileCached("key-completeness", confllvm.VariantMPX, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different Program.Seed returned the same cached artifact")
	}

	noopt := base
	noopt.NoOpt = true
	c, err := CompileCached("key-completeness", confllvm.VariantMPX, noopt)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("Program.NoOpt=true returned the optimized cached artifact")
	}

	// Same parameters must still hit the cache.
	a2, err := CompileCached("key-completeness", confllvm.VariantMPX, base)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Error("identical request missed the cache")
	}
}

// TestReqsPerSec pins the simulated-throughput conversion, including the
// untimed-cell guard.
func TestReqsPerSec(t *testing.T) {
	if got := ReqsPerSec(100, 0); got != 0 {
		t.Errorf("zero wall cycles must yield 0 req/s, got %d", got)
	}
	if got := ReqsPerSec(100, SimClockHz); got != 100 {
		t.Errorf("100 reqs in one simulated second = %d req/s, want 100", got)
	}
}

// TestMeasurementMIPSUntimed pins the zero guard the interp sweep relies
// on: a sub-clock-resolution run reports 0, never +Inf or NaN.
func TestMeasurementMIPSUntimed(t *testing.T) {
	m := &Measurement{HostNS: 0}
	m.Stats.Instrs = 1000
	if got := m.MIPS(); got != 0 {
		t.Errorf("HostNS=0 must yield MIPS 0, got %v", got)
	}
	m.HostNS = -1
	if got := m.MIPS(); got != 0 {
		t.Errorf("negative HostNS must yield MIPS 0, got %v", got)
	}
}
