package bench

import (
	"reflect"
	"testing"

	"confllvm"
	"confllvm/internal/machine"
	"confllvm/internal/obs"
	"confllvm/internal/scenario"
)

func latSpec() scenario.Spec { return scenario.DefaultKV(true) }

func latArr(seed uint64) scenario.Arrival {
	return scenario.Arrival{Kind: scenario.ArrivalPoisson, Seed: seed, MeanGap: 16384}
}

// TestLatencyDispatchInvariance pins the figure's core contract: the
// latency report is a simulated quantity, so stepwise, unchained,
// chained, fused and threaded dispatch must produce byte-identical
// reports (architectural stats too; FusedSlots/Defuses are
// observability counters and may differ, hence Arch()).
func TestLatencyDispatchInvariance(t *testing.T) {
	var reports []*LatencyReport
	var stats []machine.Stats
	for _, mode := range []struct {
		name        string
		superblocks bool
		chain       bool
		fuse        bool
		threaded    bool
	}{
		{"stepwise", false, false, false, false},
		{"nochain", true, false, false, false},
		{"chained", true, true, false, false},
		{"fused", true, true, true, false},
		{"threaded", true, true, true, true},
	} {
		conf := machine.DefaultConfig()
		conf.Superblocks = mode.superblocks
		conf.Chain = mode.chain
		conf.Fuse = mode.fuse
		conf.Threaded = mode.threaded
		m, err := RunLatency(latSpec(), latArr(7), confllvm.VariantMPX, &conf, nil)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		reports = append(reports, m.Latency)
		stats = append(stats, m.Stats)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Errorf("latency report differs across dispatch modes:\n%+v\nvs\n%+v", reports[0], reports[i])
		}
		if stats[0].Arch() != stats[i].Arch() {
			t.Errorf("stats differ across dispatch modes: %+v vs %+v", stats[0], stats[i])
		}
	}
	r := reports[0]
	if r.Requests == 0 || r.SvcMean == 0 || r.P50 == 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	if r.P50 > r.P95 || r.P95 > r.P99 || r.P99 > r.Max {
		t.Fatalf("quantiles not monotone: %+v", r)
	}
}

// TestLatencySeedAndRateSensitivity: different arrival seeds change the
// stream (and almost surely the tail), and shrinking the gap toward the
// service time must not reduce latency.
func TestLatencySeedAndRateSensitivity(t *testing.T) {
	m1, err := RunLatency(latSpec(), latArr(7), confllvm.VariantMPX, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunLatency(latSpec(), latArr(8), confllvm.VariantMPX, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(m1.Latency, m2.Latency) {
		t.Fatal("different arrival seeds produced identical latency reports")
	}
	// Same service times, overloaded arrivals: p99 must not improve.
	over, err := RunLatency(latSpec(), scenario.Arrival{
		Kind: scenario.ArrivalPoisson, Seed: 7, MeanGap: 512,
	}, confllvm.VariantMPX, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if over.Latency.P99 < m1.Latency.P99 {
		t.Errorf("overload p99 %d < light-load p99 %d", over.Latency.P99, m1.Latency.P99)
	}
	if over.Latency.MaxQueue <= m1.Latency.MaxQueue {
		t.Errorf("overload max queue %d not above light-load %d",
			over.Latency.MaxQueue, m1.Latency.MaxQueue)
	}
}

// TestLatencyMatrixDeterminism runs the short latency grid through the
// parallel matrix at 1 and 8 workers: every simulated field must match.
func TestLatencyMatrixDeterminism(t *testing.T) {
	sweeps := LatencyGrid(true, scenario.DefaultSeed)
	mk := func(workers int) []CellResult {
		return RunMatrix(LatencyCells("latency", sweeps, confllvm.VariantMPX, nil), workers)
	}
	serial, par := mk(1), mk(8)
	if len(serial) != len(sweeps) {
		t.Fatalf("got %d results for %d sweeps", len(serial), len(sweeps))
	}
	for i := range serial {
		if serial[i].Err != nil || par[i].Err != nil {
			t.Fatalf("row %s: %v / %v", sweeps[i].Row, serial[i].Err, par[i].Err)
		}
		a, b := serial[i].M, par[i].M
		if !reflect.DeepEqual(a.Latency, b.Latency) {
			t.Errorf("row %s: latency differs across -parallel:\n%+v\nvs\n%+v",
				sweeps[i].Row, a.Latency, b.Latency)
		}
		if a.Stats != b.Stats || a.Wall != b.Wall {
			t.Errorf("row %s: stats differ across -parallel", sweeps[i].Row)
		}
		if a.Latency.Registry.Snapshot() != b.Latency.Registry.Snapshot() {
			t.Errorf("row %s: registry snapshot differs across -parallel", sweeps[i].Row)
		}
	}
}

// TestLatencySpans: the per-request span trees are well-formed and cover
// every request, and tracing does not perturb the report.
func TestLatencySpans(t *testing.T) {
	tr := obs.NewTracer()
	m, err := RunLatency(latSpec(), latArr(7), confllvm.VariantMPX, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WellFormed(); err != nil {
		t.Fatalf("span tree: %v", err)
	}
	var reqs int
	for _, s := range tr.Spans() {
		if s.Name == "req" {
			reqs++
		}
	}
	if uint64(reqs) != m.Latency.Requests {
		t.Fatalf("%d req spans for %d requests", reqs, m.Latency.Requests)
	}
	plain, err := RunLatency(latSpec(), latArr(7), confllvm.VariantMPX, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Latency, plain.Latency) {
		t.Fatal("tracing changed the latency report")
	}
}

// TestWorkloadProfileConservation: profiles over a real compiled
// workload attribute exactly the cycles the run charged — no symbol
// gains or loses a cycle in symbolization — and profiling changes no
// simulated number.
func TestWorkloadProfileConservation(t *testing.T) {
	conf := machine.DefaultConfig()
	conf.Profile = true
	for _, spec := range []scenario.Spec{scenario.DefaultKV(true), scenario.DefaultTLSH(true)} {
		wl := ScenarioWorkload(spec)
		m, err := wl.Run(confllvm.VariantMPX, &conf)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if m.Profile == nil {
			t.Fatalf("%s: no profile with Profile=true", spec.Name)
		}
		if got, want := m.Profile.TotalCycles(), m.Stats.Cycles; got != want {
			t.Errorf("%s: profile total %d != run cycles %d", spec.Name, got, want)
		}
		plain, err := wl.Run(confllvm.VariantMPX, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.Stats != plain.Stats {
			t.Errorf("%s: profiling changed stats: %+v vs %+v", spec.Name, m.Stats, plain.Stats)
		}
		// The serving loop and at least one trusted handler must appear.
		top := m.Profile.Top()
		if len(top) < 2 {
			t.Fatalf("%s: profile too small: %+v", spec.Name, top)
		}
		var sawHandler bool
		for _, c := range top {
			if len(c.Name) > 2 && c.Name[:2] == "T:" {
				sawHandler = true
			}
			if len(c.Name) > 3 && c.Name[:3] == "pc:" {
				t.Errorf("%s: unsymbolized cost %+v", spec.Name, c)
			}
		}
		if !sawHandler {
			t.Errorf("%s: no trusted-handler cost in profile", spec.Name)
		}
	}
}

// TestSuperviseTrace: supervised serving under injected faults emits a
// well-formed epoch span forest, and tracing leaves the report alone.
func TestSuperviseTrace(t *testing.T) {
	spec := scenario.DefaultKV(true)
	wl := ScenarioWorkload(spec)
	wire, _, err := scenario.Traffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *obs.Tracer) *ServeReport {
		pol := DefaultFaultPolicy(1234, 150) // 15% fault rate: restarts guaranteed
		pol.Trace = tr
		rep, err := Supervise(wl.Key, wl.Prog(confllvm.VariantMPX), confllvm.VariantMPX, wire, nil, pol)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	tr := obs.NewTracer()
	rep := run(tr)
	if err := tr.WellFormed(); err != nil {
		t.Fatalf("epoch span tree: %v", err)
	}
	var epochs, faulted int
	for _, s := range tr.Spans() {
		switch {
		case s.Name == "epoch":
			epochs++
		case len(s.Name) > 4 && s.Name[:4] == "run:":
			faulted++
		}
	}
	if epochs != rep.Epochs {
		t.Errorf("%d epoch spans for %d epochs", epochs, rep.Epochs)
	}
	if rep.Restarts > 0 && faulted == 0 {
		t.Errorf("report shows %d restarts but no faulted run spans", rep.Restarts)
	}
	if plain := run(nil); !reflect.DeepEqual(rep, plain) {
		t.Error("tracing changed the serve report")
	}
}
