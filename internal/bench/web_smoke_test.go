package bench

import (
	"testing"

	"confllvm"
)

func TestWebSmoke(t *testing.T) {
	for _, v := range confllvm.AllVariants() {
		m, err := RunWebServer(v, 5, 2048)
		if err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if len(m.Res.NetOut) != 5 {
			t.Fatalf("[%v] %d responses", v, len(m.Res.NetOut))
		}
	}
}
