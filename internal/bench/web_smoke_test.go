package bench

import (
	"testing"

	"confllvm"
)

func TestWebSmoke(t *testing.T) {
	reqs, size := 5, 2048
	if testing.Short() {
		reqs, size = 3, 512
	}
	for _, v := range confllvm.AllVariants() {
		m, err := RunWebServer(v, reqs, size)
		if err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if len(m.Res.NetOut) != reqs {
			t.Fatalf("[%v] %d responses", v, len(m.Res.NetOut))
		}
	}
}
