package bench

import (
	"testing"

	"confllvm"
)

// TestVulnMongoose: the stale-stack over-send leaks the private file under
// Base and must not under full ConfLLVM (§7.6, first experiment).
func TestVulnMongoose(t *testing.T) {
	secret := []byte("THE-PRIVATE-FILE-CONTENTS-ARE-SECRET")
	// The public request overwrites the first 16 stale bytes, so the
	// attacker observes the tail of the secret; search for that.
	signature := secret[20:34]
	world := func() *confllvm.World {
		w := confllvm.NewWorld()
		pf := make([]byte, 256)
		copy(pf, secret)
		w.PrivFiles["s"] = pf
		w.Files["p"] = []byte("public-file")
		w.Params = []int64{500} // attacker asks for 500 bytes though 16 were filled
		return w
	}

	base, err := RunVuln("mongoose", VulnMongooseSrc, confllvm.VariantBase, world(), signature)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("exploit must leak under Base (single stack) or the test has no teeth")
	}
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
		r, err := RunVuln("mongoose", VulnMongooseSrc, v, world(), signature)
		if err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if r.Leaked {
			t.Errorf("[%v] private file leaked despite stack separation", v)
		}
	}
}

// TestVulnMinizip: the cast-laundered password leak compiles (the static
// analysis cannot see it) but the runtime region checks stop the read
// through the laundered pointer (§7.6, second experiment).
func TestVulnMinizip(t *testing.T) {
	secret := []byte("hunter2-hunter2-hunter2-hunter2")
	world := func() *confllvm.World {
		w := confllvm.NewWorld()
		w.Passwords["u"] = secret
		return w
	}

	base, err := RunVuln("minizip", VulnMinizipSrc, confllvm.VariantBase, world(), secret[:16])
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("exploit must leak under Base")
	}
	// MPX: the bound check faults on the laundered private pointer.
	mpx, err := RunVuln("minizip", VulnMinizipSrc, confllvm.VariantMPX, world(), secret[:16])
	if err != nil {
		t.Fatal(err)
	}
	if mpx.Leaked {
		t.Error("[OurMPX] password leaked to the log")
	}
	if !mpx.Faulted {
		t.Error("[OurMPX] expected the bound check to fault the laundered read")
	}
	// Segmentation: the fs prefix *redirects* the read into the public
	// segment (it cannot escape), so execution continues but only public
	// bytes are observable — the paper's "cannot escape the segment".
	seg, err := RunVuln("minizip", VulnMinizipSrc, confllvm.VariantSeg, world(), secret[:16])
	if err != nil {
		t.Fatal(err)
	}
	if seg.Leaked {
		t.Error("[OurSeg] password leaked to the log")
	}
}

// TestVulnPrintf: the format-string overread prints stack slots; under
// Base the private key is among them, under ConfLLVM it is not (§7.6,
// third experiment).
func TestVulnPrintf(t *testing.T) {
	// The secret as raw little-endian longs; printf would render them in
	// hex, so compare against the hex rendering.
	world := func() *confllvm.World {
		w := confllvm.NewWorld()
		w.PrivIn[0] = []byte{0xEF, 0xBE, 0xAD, 0xDE, 0xEF, 0xBE, 0xAD, 0xDE,
			0xEF, 0xBE, 0xAD, 0xDE, 0xEF, 0xBE, 0xAD, 0xDE}
		return w
	}
	hexSig := []byte("deadbeefdeadbeef")

	base, err := RunVuln("printf", VulnPrintfSrc, confllvm.VariantBase, world(), hexSig)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("format-string exploit must print the secret under Base")
	}
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
		r, err := RunVuln("printf", VulnPrintfSrc, v, world(), hexSig)
		if err != nil {
			t.Fatalf("[%v] %v", v, err)
		}
		if r.Leaked {
			t.Errorf("[%v] secret printed via format-string overread", v)
		}
		if r.Faulted {
			t.Errorf("[%v] overread of public slots should be harmless, got %v", v, r.Res.Fault)
		}
	}
}
