package bench

import (
	"fmt"

	"confllvm"
	"confllvm/internal/machine"
	"confllvm/internal/scenario"
)

// scenarioWorkload wires one spec into a Workload. The traffic is
// generated once up front for the expected-output vector (this also
// validates the spec's family — our grids never fail it, hence the
// panic); each World call regenerates the deterministic packets, since
// worlds are consumed by runs. The check compares the program's output
// counters against the generator's predictions, so a scenario run is
// validated end to end, not just fault-free.
func scenarioWorkload(key string, sources []confllvm.Source, spec scenario.Spec) Workload {
	_, expect, err := scenario.Traffic(spec)
	if err != nil {
		panic(err)
	}
	return Workload{
		Key:  key,
		Name: spec.Name,
		Prog: func(confllvm.Variant) confllvm.Program {
			return confllvm.Program{Sources: sources}
		},
		World: func() *confllvm.World {
			wire, _, _ := scenario.Traffic(spec)
			w := confllvm.NewWorld()
			w.Params = []int64{int64(len(wire))}
			w.NetIn = wire
			return w
		},
		Check: func(res *confllvm.Result) error {
			if len(res.Outputs) != len(expect) {
				return fmt.Errorf("scenario %s: got %d outputs %v, want %d %v",
					spec.Name, len(res.Outputs), res.Outputs, len(expect), expect)
			}
			for i := range expect {
				if res.Outputs[i] != expect[i] {
					return fmt.Errorf("scenario %s: output[%d] = %d, generator predicted %d (%v vs %v)",
						spec.Name, i, res.Outputs[i], expect[i], res.Outputs, expect)
				}
			}
			return nil
		},
	}
}

// ScenarioWorkload maps a spec to its workload family.
func ScenarioWorkload(spec scenario.Spec) Workload {
	switch spec.Workload {
	case scenario.WorkloadKV:
		return KVWorkload(spec)
	case scenario.WorkloadTLSH:
		return TLSHWorkload(spec)
	case scenario.WorkloadMerkleFS:
		return MerkleFSWorkload(spec)
	}
	panic("bench: unknown scenario workload family " + spec.Workload)
}

// ScenarioCells expands a scenario sweep into matrix cells: one cell per
// (spec, variant), scaled by the spec's total request count so table
// cells read as requests per second. Specs sharing a workload family
// share one artifact per variant through the singleflight cache — only
// the generated traffic differs — so even a 100x grid compiles each
// family exactly once per column. The cells are simulated quantities
// (no Serial pinning): the sweep is byte-identical under any scheduling.
func ScenarioCells(figure string, specs []scenario.Spec, cols []confllvm.Variant, conf *machine.Config) []Cell {
	var cells []Cell
	for _, spec := range specs {
		wl := ScenarioWorkload(spec)
		for _, v := range cols {
			cells = append(cells, Cell{
				Figure: figure, Row: spec.Name, Workload: wl,
				Variant: v, Conf: conf, Scale: uint64(spec.TotalRequests()),
			})
		}
	}
	return cells
}
