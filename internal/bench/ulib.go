// Package bench contains the miniC workloads and the measurement harness
// that regenerate every table and figure of the paper's evaluation (§7).
package bench

// ULib is the U-side C library: like the paper, routines such as memcpy
// and sprintf live in *untrusted* code (§2: "even sprintf and memcpy
// would be in U"). Programs that need it append it as an extra source.
const ULib = `
extern void log_write(char *buf, int size);

void *memcpy(void *dstv, void *srcv, long n) {
	char *dst = (char*)dstv;
	char *src = (char*)srcv;
	long i;
	for (i = 0; i < n; i++) dst[i] = src[i];
	return dstv;
}

void memcpy_priv(private char *dst, private char *src, long n) {
	long i;
	for (i = 0; i < n; i++) dst[i] = src[i];
}

void *memset(void *pv, int v, long n) {
	char *p = (char*)pv;
	long i;
	for (i = 0; i < n; i++) p[i] = (char)v;
	return pv;
}

int strlen(char *s) {
	int n = 0;
	while (s[n]) n++;
	return n;
}

int strcmp(char *a, char *b) {
	int i = 0;
	while (a[i] && b[i] && a[i] == b[i]) i++;
	return a[i] - b[i];
}

char *strcpy(char *dst, char *src) {
	int i = 0;
	while (src[i]) { dst[i] = src[i]; i++; }
	dst[i] = 0;
	return dst;
}

/* Formats a signed decimal into out, returns chars written. */
int u_itoa(char *out, long v) {
	char tmp[24];
	int n = 0;
	int i;
	int neg = 0;
	if (v < 0) { neg = 1; v = -v; }
	if (v == 0) { tmp[n] = '0'; n++; }
	while (v > 0) { tmp[n] = (char)('0' + v % 10); n++; v = v / 10; }
	i = 0;
	if (neg) { out[0] = '-'; i = 1; }
	while (n > 0) { n--; out[i] = tmp[n]; i++; }
	return i;
}

int u_xtoa(char *out, long v) {
	char tmp[20];
	int n = 0;
	int i;
	if (v == 0) { tmp[n] = '0'; n++; }
	while (v != 0) {
		int d = (int)(v & 15);
		if (d < 10) tmp[n] = (char)('0' + d);
		else tmp[n] = (char)('a' + d - 10);
		n++;
		v = (long)((unsigned long)v >> 4);
	}
	i = 0;
	while (n > 0) { n--; out[i] = tmp[n]; i++; }
	return i;
}

/* vsprintf core: supports %d %x %s %c %%. ap points at the first vararg
 * slot of the *caller of the caller*, so both sprintf and printf share it. */
int u_format(char *out, char *fmt, char *ap) {
	int o = 0;
	int i = 0;
	while (fmt[i]) {
		if (fmt[i] != '%') { out[o] = fmt[i]; o++; i++; continue; }
		i++;
		if (fmt[i] == 'd') {
			long v = *(long*)ap; ap = ap + 8;
			o += u_itoa(out + o, v);
		} else if (fmt[i] == 'x') {
			long v = *(long*)ap; ap = ap + 8;
			o += u_xtoa(out + o, v);
		} else if (fmt[i] == 's') {
			char *s = *(char**)ap; ap = ap + 8;
			int k = 0;
			while (s[k]) { out[o] = s[k]; o++; k++; }
		} else if (fmt[i] == 'c') {
			long v = *(long*)ap; ap = ap + 8;
			out[o] = (char)v; o++;
		} else if (fmt[i] == '%') {
			out[o] = '%'; o++;
		}
		i++;
	}
	out[o] = 0;
	return o;
}

int sprintf(char *out, char *fmt, ...) {
	char *ap = __va_start();
	return u_format(out, fmt, ap);
}

char u_printf_buf[512];

int printf(char *fmt, ...) {
	char *ap = __va_start();
	int n = u_format(u_printf_buf, fmt, ap);
	log_write(u_printf_buf, n);
	return n;
}

long u_rand(long *state) {
	long x = *state;
	x = x * 6364136223846793005 + 1442695040888963407;
	*state = x;
	return (long)((unsigned long)x >> 33);
}
`
