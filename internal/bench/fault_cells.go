package bench

import (
	"fmt"
	"time"

	"confllvm"
	"confllvm/internal/chaos"
	"confllvm/internal/machine"
	"confllvm/internal/scenario"
)

// FaultCells expands a fault sweep into matrix cells: one supervised
// serving run per (scenario spec, fault rate in per-mille). Each cell
// derives an independent injector seed from the base seed and its grid
// coordinates, so cells never share a fault schedule yet the whole sweep
// is a pure function of the base seed. Like every matrix cell, the
// resulting ServeReports are simulated quantities — byte-identical across
// schedulings, dispatch modes, and -parallel settings; only HostNS is
// host-sensitive.
func FaultCells(figure string, specs []scenario.Spec, rates []uint64,
	v confllvm.Variant, conf *machine.Config, seed uint64) []Cell {
	var cells []Cell
	for si, spec := range specs {
		wl := ScenarioWorkload(spec)
		wire, _, err := scenario.Traffic(spec)
		if err != nil {
			panic(err)
		}
		for _, rate := range rates {
			pol := DefaultFaultPolicy(chaos.DeriveSeed(seed, uint64(si), rate), rate)
			cells = append(cells, Cell{
				Figure: figure,
				Row:    fmt.Sprintf("%s/r%03d", spec.Name, rate),
				// Workload is kept for scheduling metadata (key, name);
				// execution goes through Custom below — the generator's
				// output predictions do not hold once packets are
				// corrupted and requests shed.
				Workload: wl,
				Variant:  v,
				Conf:     conf,
				Scale:    uint64(spec.TotalRequests()),
				Custom: func(c *Cell) (*Measurement, error) {
					start := time.Now()
					rep, err := Supervise(wl.Key, wl.Prog(c.Variant), c.Variant, wire, c.Conf, pol)
					if err != nil {
						return nil, err
					}
					return &Measurement{
						Variant: c.Variant,
						Wall:    rep.RunCycles + rep.BackoffCycles,
						Stats:   machine.Stats{Instrs: rep.Instrs, Cycles: rep.RunCycles},
						HostNS:  time.Since(start).Nanoseconds(),
						Serve:   rep,
					}, nil
				},
			})
		}
	}
	return cells
}
