package bench

import (
	"math"
	"strings"
	"testing"

	"confllvm"
	"confllvm/internal/machine"
	"confllvm/internal/scenario"
)

// scenarioCells builds the smoke-sized scenario sweep the PR CI runs
// under -race: the short grid across the unchecked baseline and one
// checked variant.
func scenarioCells() []Cell {
	mc := machine.DefaultConfig()
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX}
	return ScenarioCells("scenarios", scenario.FigureGrid(true, scenario.DefaultSeed), cols, &mc)
}

// scenarioTable renders matrix results the way confbench's scenarios
// figure does: requests/sec per cell.
func scenarioTable(t *testing.T, results []CellResult) *Table {
	t.Helper()
	tbl := NewTable("scenarios", []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX}, "req/s")
	tbl.HigherIsBetter = true
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s [%v]: %v", r.Cell.Row, r.Cell.Variant, r.Err)
		}
		tbl.Set(r.Cell.Row, r.Cell.Variant, ReqsPerSec(r.Cell.Scale, r.M.Wall))
	}
	return tbl
}

// TestScenarioMatrixDeterminism is the engine-to-figure determinism
// guarantee: the same seed must yield identical simulated measurements
// and byte-identical figure rows whether the matrix runs serially or on
// an 8-worker pool. Run under -race in PR CI, this doubles as the
// scenario smoke test.
func TestScenarioMatrixDeterminism(t *testing.T) {
	cells := scenarioCells()
	serial := RunMatrix(cells, 1)
	parallel := RunMatrix(cells, 8)

	for i := range cells {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s [%v]: serial err=%v parallel err=%v",
				cells[i].Row, cells[i].Variant, s.Err, p.Err)
		}
		if s.M.Wall != p.M.Wall || s.M.Stats != p.M.Stats {
			t.Errorf("%s [%v]: serial and parallel runs disagree (wall %d vs %d)",
				cells[i].Row, cells[i].Variant, s.M.Wall, p.M.Wall)
		}
		for j := range s.M.Outputs {
			if s.M.Outputs[j] != p.M.Outputs[j] {
				t.Errorf("%s [%v]: output[%d] %d vs %d",
					cells[i].Row, cells[i].Variant, j, s.M.Outputs[j], p.M.Outputs[j])
			}
		}
	}

	st, pt := scenarioTable(t, serial), scenarioTable(t, parallel)
	if st.String() != pt.String() {
		t.Errorf("rendered figure rows differ between serial and parallel matrix runs:\n%s\nvs\n%s", st, pt)
	}
}

// TestScenarioSeedChangesFigureRows: the sweep must actually depend on
// the engine seed — distinct seeds yield distinct traffic and therefore
// distinct simulated cycle counts somewhere in the grid.
func TestScenarioSeedChangesFigureRows(t *testing.T) {
	mc := machine.DefaultConfig()
	cols := []confllvm.Variant{confllvm.VariantMPX}
	a := RunMatrix(ScenarioCells("s", scenario.FigureGrid(true, 1), cols, &mc), 4)
	b := RunMatrix(ScenarioCells("s", scenario.FigureGrid(true, 2), cols, &mc), 4)
	same := true
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("cell %d: %v / %v", i, a[i].Err, b[i].Err)
		}
		if a[i].M.Wall != b[i].M.Wall {
			same = false
		}
	}
	if same {
		t.Fatal("every cell's wall cycles identical across distinct seeds — the sweep ignores its seed")
	}
}

// TestWorkloadsIncludeScenarioFamilies guards the zero-extra-wiring
// registration: the differential and fuzz harnesses iterate Workloads,
// so the KV and TLS-ish families must appear there.
func TestWorkloadsIncludeScenarioFamilies(t *testing.T) {
	for _, short := range []bool{true, false} {
		keys := map[string]bool{}
		for _, wl := range Workloads(short) {
			keys[wl.Key] = true
		}
		for _, want := range []string{"kv", "tlsh"} {
			if !keys[want] {
				t.Errorf("Workloads(short=%v) lacks the %q family", short, want)
			}
		}
	}
}

// TestTableGeoMeanSkipsZeroCells pins the zero-cycle guard on the
// geomean paths: an untimed/zero cell must be skipped — exactly like the
// interp sweep skips untimed MIPS cells — never folded in as +Inf/NaN.
func TestTableGeoMeanSkipsZeroCells(t *testing.T) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX}
	for _, higher := range []bool{false, true} {
		tbl := NewTable("t", cols, "req/s")
		tbl.HigherIsBetter = higher
		// A healthy row: MPX at 80% of Base.
		tbl.Set("ok", confllvm.VariantBase, 1000)
		tbl.Set("ok", confllvm.VariantMPX, 800)
		// A zero-cycle row (ReqsPerSec of an untimed cell) and a zero base.
		tbl.Set("zerocell", confllvm.VariantBase, 1000)
		tbl.Set("zerocell", confllvm.VariantMPX, 0)
		tbl.Set("zerobase", confllvm.VariantBase, 0)
		tbl.Set("zerobase", confllvm.VariantMPX, 900)

		g := tbl.GeoMeanOverhead(confllvm.VariantMPX)
		if math.IsInf(g, 0) || math.IsNaN(g) {
			t.Fatalf("HigherIsBetter=%v: geomean poisoned by zero cells: %v", higher, g)
		}
		want := 25.0 // only the healthy row: 1000/800
		if !higher {
			want = -20.0 // 800/1000
		}
		if math.Abs(g-want) > 1e-9 {
			t.Errorf("HigherIsBetter=%v: geomean %.4f, want %.4f (zero rows skipped)", higher, g, want)
		}
		if o := tbl.Overhead("zerocell", confllvm.VariantMPX); math.IsInf(o, 0) || math.IsNaN(o) {
			t.Errorf("Overhead on a zero cell: %v", o)
		}
		if s := tbl.String(); strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
			t.Errorf("rendered table contains Inf/NaN:\n%s", s)
		}
	}
}

// TestScenarioCellsShareArtifacts: the whole KV grid must map to one
// artifact-cache key per variant (the sweep's cost is simulated requests,
// not recompilation).
func TestScenarioCellsShareArtifacts(t *testing.T) {
	cells := scenarioCells()
	keys := map[string]bool{}
	for _, c := range cells {
		keys[c.Workload.Key] = true
	}
	if len(keys) != 2 {
		t.Fatalf("scenario grid uses %d artifact keys %v, want exactly {kv, tlsh}", len(keys), keys)
	}
}
