package bench

// SPECKernel is one CPU-bound miniC workload standing in for a SPEC CPU
// 2006 benchmark. The kernels are chosen to cover the instruction-mix axes
// that drive the paper's per-benchmark variance in Fig. 5: pointer chasing
// (mcf), regular integer DP (hmmer), compression (bzip2), recursion/branchy
// search (sjeng, gobmk), streaming array math (libquantum), integer
// multiply-heavy transforms (h264) and floating-point stencils with heavy
// allocation (milc).
type SPECKernel struct {
	Name   string
	Src    string
	Params []int64 // input(0), input(1), ...
	// ShortParams is a reduced input set for `go test -short`: same code
	// paths, fewer iterations. Checksums differ from the full run, but the
	// cross-variant identity property holds at any size.
	ShortParams []int64
}

// EffectiveParams returns ShortParams when short is set (and they exist),
// else the full Params.
func (k SPECKernel) EffectiveParams(short bool) []int64 {
	if short && k.ShortParams != nil {
		return k.ShortParams
	}
	return k.Params
}

// SPECKernels returns the suite in report order.
func SPECKernels() []SPECKernel {
	return []SPECKernel{
		{
			Name:        "bzip2",
			Params:      []int64{1 << 13, 6},
			ShortParams: []int64{1 << 10, 2},
			Src: `
extern long input(int idx);
extern void output(long v);
extern void *malloc(long size);
long seed = 42;
long u_rand(long *state);

/* RLE + move-to-front over a pseudo-random buffer. */
int main() {
	long n = input(0);
	long iters = input(1);
	char *buf = (char*)malloc(n);
	char *out = (char*)malloc(2 * n);
	char mtf[256];
	long i;
	long it;
	long check = 0;
	for (i = 0; i < n; i++) buf[i] = (char)(u_rand(&seed) % 17);
	for (it = 0; it < iters; it++) {
		for (i = 0; i < 256; i++) mtf[i] = (char)i;
		long o = 0;
		long run = 1;
		for (i = 1; i <= n; i++) {
			if (i < n && buf[i] == buf[i-1]) { run++; continue; }
			/* move-to-front encode the symbol */
			int sym = buf[i-1] & 255;
			int j = 0;
			while ((mtf[j] & 255) != sym) j++;
			int k;
			for (k = j; k > 0; k--) mtf[k] = mtf[k-1];
			mtf[0] = (char)sym;
			out[o] = (char)j; o++;
			out[o] = (char)run; o++;
			run = 1;
		}
		check += o;
		for (i = 0; i < o; i += 97) check += out[i];
	}
	output(check);
	return 0;
}
`,
		},
		{
			Name:        "mcf",
			Params:      []int64{1 << 11, 24},
			ShortParams: []int64{1 << 9, 6},
			Src: `
extern long input(int idx);
extern void output(long v);
extern void *malloc(long size);
long seed = 7;
long u_rand(long *state);

struct arc { int to; int cost; int next; };

/* Bellman-Ford relaxation over a sparse random graph: pointer chasing. */
int main() {
	long n = input(0);
	long rounds = input(1);
	long m = 4 * n;
	int *head = (int*)malloc(n * 4);
	long *dist = (long*)malloc(n * 8);
	struct arc *arcs = (struct arc*)malloc(m * sizeof(struct arc));
	long i;
	for (i = 0; i < n; i++) head[i] = -1;
	for (i = 0; i < m; i++) {
		long from = u_rand(&seed) % n;
		arcs[i].to = (int)(u_rand(&seed) % n);
		arcs[i].cost = (int)(u_rand(&seed) % 100) + 1;
		arcs[i].next = head[from];
		head[from] = (int)i;
	}
	for (i = 0; i < n; i++) dist[i] = 1000000000;
	dist[0] = 0;
	long r;
	long relaxed = 0;
	for (r = 0; r < rounds; r++) {
		long u;
		for (u = 0; u < n; u++) {
			if (dist[u] >= 1000000000) continue;
			int a = head[u];
			while (a >= 0) {
				long nd = dist[u] + arcs[a].cost;
				if (nd < dist[arcs[a].to]) { dist[arcs[a].to] = nd; relaxed++; }
				a = arcs[a].next;
			}
		}
	}
	long check = relaxed;
	for (i = 0; i < n; i += 37) check += dist[i] % 1009;
	output(check);
	return 0;
}
`,
		},
		{
			Name:        "gobmk",
			Params:      []int64{19, 420},
			ShortParams: []int64{9, 60},
			Src: `
extern long input(int idx);
extern void output(long v);
long seed = 99;
long u_rand(long *state);

int board[361];
int marks[361];

/* Flood-fill liberty counting on a Go board: branchy, irregular. */
int liberties(int size, int pos, int color, int depth) {
	if (depth > 80) return 0;
	int libs = 0;
	marks[pos] = 1;
	int r = pos / size;
	int c = pos % size;
	int d;
	for (d = 0; d < 4; d++) {
		int nr = r; int nc = c;
		if (d == 0) nr = r - 1;
		if (d == 1) nr = r + 1;
		if (d == 2) nc = c - 1;
		if (d == 3) nc = c + 1;
		if (nr < 0 || nr >= size || nc < 0 || nc >= size) continue;
		int np = nr * size + nc;
		if (marks[np]) continue;
		if (board[np] == 0) { libs++; marks[np] = 1; }
		else if (board[np] == color) libs += liberties(size, np, color, depth + 1);
	}
	return libs;
}

int main() {
	int size = (int)input(0);
	long plays = input(1);
	int cells = size * size;
	long check = 0;
	long p;
	for (p = 0; p < plays; p++) {
		int pos = (int)(u_rand(&seed) % cells);
		int color = 1 + (int)(u_rand(&seed) % 2);
		if (board[pos] == 0) board[pos] = color;
		int i;
		for (i = 0; i < cells; i++) marks[i] = 0;
		check += liberties(size, pos, board[pos], 0);
	}
	output(check);
	return 0;
}
`,
		},
		{
			Name:        "hmmer",
			Params:      []int64{160, 360},
			ShortParams: []int64{64, 60},
			Src: `
extern long input(int idx);
extern void output(long v);
extern void *malloc(long size);
long seed = 5;
long u_rand(long *state);

/* Viterbi-style dynamic programming: dense regular integer loops. */
int main() {
	long states = input(0);
	long seqlen = input(1);
	long *prev = (long*)malloc(states * 8);
	long *cur = (long*)malloc(states * 8);
	long *emit = (long*)malloc(states * 8);
	long *trans = (long*)malloc(states * 8);
	long i;
	for (i = 0; i < states; i++) {
		prev[i] = u_rand(&seed) % 100;
		emit[i] = u_rand(&seed) % 50;
		trans[i] = u_rand(&seed) % 20;
	}
	long t;
	for (t = 0; t < seqlen; t++) {
		for (i = 0; i < states; i++) {
			long best = prev[i];
			long stay = prev[(i + states - 1) % states] + trans[i];
			if (stay > best) best = stay;
			long jump = prev[(i + 7) % states] - trans[(i + 3) % states];
			if (jump > best) best = jump;
			cur[i] = best + emit[(i + t) % states];
		}
		long *tmp = prev; prev = cur; cur = tmp;
	}
	long check = 0;
	for (i = 0; i < states; i++) check = (check + prev[i]) % 1000000007;
	output(check);
	return 0;
}
`,
		},
		{
			Name:        "sjeng",
			Params:      []int64{5, 130},
			ShortParams: []int64{4, 24},
			Src: `
extern long input(int idx);
extern void output(long v);
long seed = 3;
long u_rand(long *state);

long nodes = 0;

/* Alpha-beta-ish game tree search with a cheap evaluator: recursion and
 * unpredictable branches. */
long search(long hash, int depth, long alpha, long beta) {
	nodes++;
	if (depth == 0) {
		long e = (hash * 2654435761) % 4096 - 2048;
		return e;
	}
	int moves = 3 + (int)(hash % 5);
	int m;
	long best = -1000000;
	for (m = 0; m < moves; m++) {
		long child = hash * 31 + m * 17 + depth;
		long v = -search(child, depth - 1, -beta, -alpha);
		if (v > best) best = v;
		if (v > alpha) alpha = v;
		if (alpha >= beta) break;
	}
	return best;
}

int main() {
	int depth = (int)input(0);
	long roots = input(1);
	long r;
	long check = 0;
	for (r = 0; r < roots; r++) {
		long h = u_rand(&seed);
		check += search(h % 100000, depth, -1000000, 1000000) % 8191;
	}
	output(check + nodes % 65536);
	return 0;
}
`,
		},
		{
			Name:        "libquantum",
			Params:      []int64{1 << 12, 40},
			ShortParams: []int64{1 << 10, 10},
			Src: `
extern long input(int idx);
extern void output(long v);
extern void *malloc(long size);

/* Quantum register simulation on fixed-point amplitudes: streaming array
 * passes (libquantum's profile). */
int main() {
	long n = input(0);
	long gates = input(1);
	long *re = (long*)malloc(n * 8);
	long *im = (long*)malloc(n * 8);
	long i;
	for (i = 0; i < n; i++) { re[i] = (i * 37) % 1000; im[i] = (i * 73) % 1000; }
	long g;
	for (g = 0; g < gates; g++) {
		long target = g % 12;
		long mask = 1 << target;
		for (i = 0; i < n; i++) {
			if ((i & mask) == 0) {
				long j = i | mask;
				if (j < n) {
					long ar = re[i]; long ai = im[i];
					long br = re[j]; long bi = im[j];
					re[i] = (ar + br) / 2 + 1;
					im[i] = (ai + bi) / 2;
					re[j] = (ar - br) / 2;
					im[j] = (ai - bi) / 2 + 1;
				}
			}
		}
	}
	long check = 0;
	for (i = 0; i < n; i += 13) check = (check + re[i] * 3 + im[i]) % 1000000007;
	output(check);
	return 0;
}
`,
		},
		{
			Name:        "h264",
			Params:      []int64{96, 40},
			ShortParams: []int64{32, 6},
			Src: `
extern long input(int idx);
extern void output(long v);
extern void *malloc(long size);
long seed = 11;
long u_rand(long *state);

int blkin[64];
int blkout[64];

/* 8x8 integer DCT-like butterflies plus sum-of-absolute-differences
 * motion search: multiply-heavy integer code. */
void dct8(int *in, int *out) {
	int i;
	int j;
	for (i = 0; i < 8; i++) {
		for (j = 0; j < 8; j++) {
			int k;
			int acc = 0;
			for (k = 0; k < 8; k++) {
				int c = (i * k) % 7 - 3;
				acc += in[k * 8 + j] * c;
			}
			out[i * 8 + j] = acc >> 2;
		}
	}
}

int main() {
	long dim = input(0);
	long frames = input(1);
	long pix = dim * dim;
	char *cur = (char*)malloc(pix);
	char *ref = (char*)malloc(pix);
	long i;
	for (i = 0; i < pix; i++) {
		cur[i] = (char)(u_rand(&seed) % 255);
		ref[i] = (char)(u_rand(&seed) % 255);
	}
	long f;
	long check = 0;
	for (f = 0; f < frames; f++) {
		long bx;
		for (bx = 0; bx + 8 <= dim; bx += 8) {
			long by;
			for (by = 0; by + 8 <= dim; by += 8) {
				int x;
				int y;
				long sad = 0;
				for (y = 0; y < 8; y++) {
					for (x = 0; x < 8; x++) {
						long p = (by + y) * dim + bx + x;
						int d = (cur[p] & 255) - (ref[p] & 255);
						if (d < 0) d = -d;
						sad += d;
						blkin[y * 8 + x] = cur[p] & 255;
					}
				}
				dct8(blkin, blkout);
				check = (check + sad + blkout[(bx + by) % 64]) % 1000000007;
			}
		}
	}
	output(check);
	return 0;
}
`,
		},
		{
			Name:        "milc",
			Params:      []int64{40, 24},
			ShortParams: []int64{16, 6},
			Src: `
extern long input(int idx);
extern void output(long v);
extern void *malloc(long size);
extern void free(void *p);

/* FP stencil sweeps over lattice fields with per-sweep temporary
 * allocation: exercises both the FPU and the allocator (milc's profile,
 * where the custom allocator visibly helps). */
int main() {
	long dim = input(0);
	long sweeps = input(1);
	long n = dim * dim;
	double *field = (double*)malloc(n * 8);
	long i;
	for (i = 0; i < n; i++) field[i] = (double)(i % 17) * 0.25;
	long s;
	double acc = 0.0;
	for (s = 0; s < sweeps; s++) {
		double *tmp = (double*)malloc(n * 8);
		long r;
		for (r = 1; r < dim - 1; r++) {
			long c;
			for (c = 1; c < dim - 1; c++) {
				long p = r * dim + c;
				tmp[p] = 0.25 * (field[p-1] + field[p+1] + field[p-dim] + field[p+dim])
				       + 0.5 * field[p];
			}
		}
		for (r = 1; r < dim - 1; r++) {
			long c;
			for (c = 1; c < dim - 1; c++) {
				long p = r * dim + c;
				field[p] = tmp[p] * 0.999;
			}
		}
		acc = acc + field[(s * 7) % n];
		free(tmp);
	}
	output((long)(acc * 1000.0));
	return 0;
}
`,
		},
	}
}
