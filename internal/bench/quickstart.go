package bench

import (
	"strings"

	"confllvm"
)

// QuickstartBuggySrc is the paper's Figure 1 story: a web-server request
// handler that sends the cleartext password to a public channel. Taint
// inference must reject it. examples/quickstart walks the full narrative;
// the fixed version doubles as a differential-execution workload.
const QuickstartBuggySrc = `
#define SIZE 32
extern int send(int fd, char *buf, int buf_size);
extern void read_passwd(char *uname, private char *pass, int size);
extern int read_file(char *fname, char *out, int size);

int authenticate(char *uname, private char *upass, private char *pass);

void handleReq(char *uname, private char *upasswd, char *fname,
               char *out, int out_size) {
	char passwd[SIZE];
	char fcontents[SIZE];
	read_passwd(uname, passwd, SIZE);
	if (!authenticate(uname, upasswd, passwd)) return;
	/* BUG (paper Fig. 1, line 10): the cleartext password goes to a
	 * public channel. */
	send(1, passwd, SIZE);
	read_file(fname, fcontents, SIZE);
	int i;
	for (i = 0; i < out_size && i < SIZE; i++) out[i] = fcontents[i];
}

int authenticate(char *uname, private char *upass, private char *pass) {
	int i;
	for (i = 0; i < SIZE; i++) {
		if (upass[i] != pass[i]) return 0;
		if (upass[i] == 0) break;
	}
	return 1;
}

extern int recv(int fd, char *buf, int buf_size);
extern void decrypt(char *src, private char *dst, int size);

int main() {
	char req[128];
	char out[SIZE];
	private char upw[SIZE];
	int n = recv(0, req, 128);
	if (n < SIZE) return 1;
	/* request: 32 bytes encrypted password + filename */
	decrypt(req, upw, SIZE);
	handleReq(req + SIZE, upw, req + SIZE, out, SIZE);
	send(1, out, SIZE);
	return 0;
}
`

// QuickstartFixedSrc is the buggy handler with the leaking send removed:
// it compiles under taint inference and runs cleanly.
func QuickstartFixedSrc() string {
	return strings.Replace(QuickstartBuggySrc, "send(1, passwd, SIZE);", "", 1)
}

// QuickstartPassword is the secret the quickstart world authenticates
// with; observable channels must never contain it.
const QuickstartPassword = "correct-horse-battery"

// QuickstartWorld builds the quickstart request: an encrypted password
// followed by the filename, padded to the handler's 128-byte read.
func QuickstartWorld() *confllvm.World {
	w := confllvm.NewWorld()
	// The toy request reuses the filename as the username.
	w.Passwords["file0"] = []byte(QuickstartPassword)
	pw := make([]byte, 32)
	copy(pw, QuickstartPassword)
	req := append([]byte{}, confllvm.EncryptForWire(pw)...)
	req = append(req, []byte("file0")...)
	req = append(req, make([]byte, 128-len(req))...)
	w.NetIn = [][]byte{req}
	w.Files["file0"] = []byte("hello world")
	return w
}

// QuickstartWorkload is the fixed quickstart handler as a benchmark/
// differential workload.
func QuickstartWorkload() Workload {
	return Workload{
		Key:  "quickstart",
		Name: "quickstart",
		Prog: func(confllvm.Variant) confllvm.Program {
			return confllvm.Program{Sources: []confllvm.Source{
				{Name: "fixed.c", Code: QuickstartFixedSrc()},
			}}
		},
		World: QuickstartWorld,
	}
}
