package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"confllvm"
	"confllvm/internal/machine"
)

// Measurement is one (workload, variant) run.
type Measurement struct {
	Variant confllvm.Variant
	Wall    uint64 // estimated wall-clock cycles
	Stats   machine.Stats
	Outputs []int64
	Res     *confllvm.Result
	// HostNS is the host wall time of the simulation itself (load + run),
	// used to report interpreter throughput (MIPS).
	HostNS int64
}

// MIPS returns the interpreter throughput of this run in millions of
// simulated instructions per host second (0 if untimed).
func (m *Measurement) MIPS() float64 {
	if m.HostNS <= 0 {
		return 0
	}
	return float64(m.Stats.Instrs) / 1e6 / (float64(m.HostNS) / 1e9)
}

// timedRun executes an artifact and records the host wall time alongside
// the result.
func timedRun(art *confllvm.Artifact, w *confllvm.World, mc *machine.Config) (*confllvm.Result, int64, error) {
	start := time.Now()
	res, err := confllvm.Run(art, w, mc)
	return res, time.Since(start).Nanoseconds(), err
}

var (
	artMu    sync.Mutex
	artCache = map[string]*confllvm.Artifact{}
)

// CompileCached compiles a named workload for a variant, memoizing the
// artifact (benchmarks re-run the same binary many times).
func CompileCached(name string, v confllvm.Variant, prog confllvm.Program) (*confllvm.Artifact, error) {
	key := fmt.Sprintf("%s/%v/%v/%v", name, v, prog.Strict, prog.AllPrivate)
	artMu.Lock()
	defer artMu.Unlock()
	if art, ok := artCache[key]; ok {
		return art, nil
	}
	art, err := confllvm.Compile(prog, v)
	if err != nil {
		return nil, fmt.Errorf("%s [%v]: %w", name, v, err)
	}
	artCache[key] = art
	return art, nil
}

// RunSPEC executes one SPEC-like kernel under a variant.
func RunSPEC(k SPECKernel, v confllvm.Variant) (*Measurement, error) {
	wl := SPECWorkload(k, k.Params)
	return wl.Run(v, nil)
}

// Table renders a paper-style percent-of-base table: one row per workload,
// one column per configuration, cells are execution metric as % of Base.
type Table struct {
	Title    string
	Columns  []confllvm.Variant
	rowNames []string
	cells    map[string]map[confllvm.Variant]float64
	absolute map[string]uint64 // Base absolute value per row
	// HigherIsBetter flips the ratio (throughput tables).
	HigherIsBetter bool
	Unit           string
}

// NewTable creates an empty table.
func NewTable(title string, cols []confllvm.Variant, unit string) *Table {
	return &Table{Title: title, Columns: cols, Unit: unit,
		cells:    map[string]map[confllvm.Variant]float64{},
		absolute: map[string]uint64{}}
}

// Set records a measurement for (row, variant).
func (t *Table) Set(row string, v confllvm.Variant, value uint64) {
	if _, ok := t.cells[row]; !ok {
		t.cells[row] = map[confllvm.Variant]float64{}
		t.rowNames = append(t.rowNames, row)
	}
	t.cells[row][v] = float64(value)
	if v == confllvm.VariantBase {
		t.absolute[row] = value
	}
}

// Overhead returns a variant's cell as percent overhead relative to Base
// for a row (positive = slower, or lower throughput when HigherIsBetter).
func (t *Table) Overhead(row string, v confllvm.Variant) float64 {
	base := t.cells[row][confllvm.VariantBase]
	val := t.cells[row][v]
	if base == 0 || val == 0 {
		return 0
	}
	if t.HigherIsBetter {
		return (base/val - 1) * 100
	}
	return (val/base - 1) * 100
}

// String renders the table like the paper's figures: percent of Base per
// configuration with the absolute baseline annotated.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-14s", "workload")
	for _, v := range t.Columns {
		fmt.Fprintf(&b, "%14v", v)
	}
	fmt.Fprintf(&b, "%16s\n", "Base("+t.Unit+")")
	rows := append([]string{}, t.rowNames...)
	sort.Strings(rows)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r)
		base := t.cells[r][confllvm.VariantBase]
		for _, v := range t.Columns {
			if base == 0 {
				fmt.Fprintf(&b, "%14s", "-")
				continue
			}
			fmt.Fprintf(&b, "%13.1f%%", t.cells[r][v]/base*100)
		}
		fmt.Fprintf(&b, "%16d\n", t.absolute[r])
	}
	return b.String()
}

// GeoMeanOverhead computes the geometric-mean ratio (vs Base) across rows
// for one variant, returned as percent overhead.
func (t *Table) GeoMeanOverhead(v confllvm.Variant) float64 {
	prod := 1.0
	n := 0
	for _, r := range t.rowNames {
		base := t.cells[r][confllvm.VariantBase]
		val := t.cells[r][v]
		if base == 0 || val == 0 {
			continue
		}
		prod *= val / base
		n++
	}
	if n == 0 {
		return 0
	}
	return (math.Pow(prod, 1.0/float64(n)) - 1) * 100
}
