package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"confllvm"
	"confllvm/internal/link"
	"confllvm/internal/machine"
	"confllvm/internal/obs"
	"confllvm/internal/verify"
)

// Measurement is one (workload, variant) run.
type Measurement struct {
	Variant confllvm.Variant
	Wall    uint64 // estimated wall-clock cycles
	Stats   machine.Stats
	Outputs []int64
	Res     *confllvm.Result
	// HostNS is the host wall time of the simulation itself (load + run),
	// used to report interpreter throughput (MIPS).
	HostNS int64
	// Serve is set by supervised (chaos) cells: the availability report
	// of a fault-injected serving run.
	Serve *ServeReport
	// Verify is set by verify-figure cells: throughput and mutation-kill
	// counters for checking this cell's binary.
	Verify *VerifyReport
	// Cluster is set by cluster-figure render code after merging the
	// per-shard measurements of one cluster row.
	Cluster *ClusterReport
	// Latency is set by latency-figure cells: the open-loop queueing
	// report of a traced serving run.
	Latency *LatencyReport
	// Profile is the symbolized per-function cycle profile, non-nil only
	// when the cell ran with machine profiling enabled.
	Profile *obs.Profile
}

// MIPS returns the interpreter throughput of this run in millions of
// simulated instructions per host second (0 if untimed).
func (m *Measurement) MIPS() float64 {
	if m.HostNS <= 0 {
		return 0
	}
	return float64(m.Stats.Instrs) / 1e6 / (float64(m.HostNS) / 1e9)
}

// SimClockHz is the nominal clock used to convert simulated cycles into
// seconds for throughput tables. Any fixed value yields a deterministic,
// host-independent req/s figure; 2 GHz roughly matches the paper's
// evaluation hardware.
const SimClockHz = 2_000_000_000

// ReqsPerSec converts a request count and its simulated wall-cycle cost
// into requests per second at SimClockHz (0 if untimed).
func ReqsPerSec(reqs, wallCycles uint64) uint64 {
	if wallCycles == 0 {
		return 0
	}
	return reqs * SimClockHz / wallCycles
}

// timedRun executes an artifact and records the host wall time alongside
// the result.
func timedRun(art *confllvm.Artifact, w *confllvm.World, mc *machine.Config) (*confllvm.Result, int64, error) {
	start := time.Now()
	res, err := confllvm.Run(art, w, mc)
	return res, time.Since(start).Nanoseconds(), err
}

// compileFn is the compiler entry point used by CompileCached; tests
// swap it to count or fail compilations.
var compileFn = confllvm.Compile

// gateCache memoizes per-function verify verdicts across every gate
// check in the process. Workloads share library functions (the trusted
// shims, the allocator glue), and the chaos supervisor re-verifies
// near-identical tampered images every epoch — the cache turns those
// into re-checks of only the functions whose bytes differ.
var gateCache = verify.NewCache()

// gateVerify is the verify-before-load gate's entry point: the parallel
// verifier with the process-wide verdict cache. The verdict is
// byte-identical to serial, uncached verification.
func gateVerify(img *link.Image, strict bool) (verify.Stats, error) {
	return verify.VerifyStats(img, verify.Options{
		Strict:   strict,
		Parallel: runtime.GOMAXPROCS(0),
		Cache:    gateCache,
	})
}

// artEntry is one singleflight slot in the artifact cache: the first
// caller of a key compiles inside the entry's once while later callers
// for the same key block on it, and callers for other keys do not.
type artEntry struct {
	once sync.Once
	art  *confllvm.Artifact
	err  error
}

var (
	artMu    sync.Mutex // guards the map only, never held across a compile
	artCache = map[string]*artEntry{}
)

// artKey is the complete identity of a cached artifact. Everything that
// changes the compiled bits must appear here: variant plus every Program
// field (Strict, AllPrivate, Seed, NoOpt) — omitting any of them would
// hand a stale artifact to a differently-parameterized caller.
func artKey(name string, v confllvm.Variant, prog confllvm.Program) string {
	return fmt.Sprintf("%s/%v/strict=%v/allpriv=%v/seed=%d/noopt=%v",
		name, v, prog.Strict, prog.AllPrivate, prog.Seed, prog.NoOpt)
}

// CompileCached compiles a named workload for a variant, memoizing the
// artifact (benchmarks re-run the same binary many times). Concurrent
// callers with the same key share one compilation; callers with
// different keys compile in parallel. Artifacts are immutable after
// Compile, so sharing the pointer across goroutines is safe.
func CompileCached(name string, v confllvm.Variant, prog confllvm.Program) (*confllvm.Artifact, error) {
	key := artKey(name, v, prog)
	artMu.Lock()
	e, ok := artCache[key]
	if !ok {
		e = &artEntry{}
		artCache[key] = e
	}
	artMu.Unlock()
	e.once.Do(func() {
		e.art, e.err = compileFn(prog, v)
		if e.err == nil && e.art.Verifiable() {
			// Verify-before-load gate (§5.2 as deployment policy): every
			// deployable-configuration artifact the harness will ever
			// load is machine-checked first. A rejected binary never
			// reaches the loader — the artifact is discarded and the
			// error propagates to every caller of this key. The gate runs
			// the parallel verifier with the shared verdict cache.
			if _, verr := gateVerify(e.art.Image, e.art.Strict); verr != nil {
				e.art, e.err = nil, fmt.Errorf("verify-before-load gate rejected binary: %w", verr)
			}
		}
		if e.err != nil {
			// Don't cache failures: drop the entry so a later caller
			// retries (a transient host-side failure would otherwise
			// poison the key for the whole process). Callers already
			// blocked on this once still see the error.
			artMu.Lock()
			if artCache[key] == e {
				delete(artCache, key)
			}
			artMu.Unlock()
		}
	})
	if e.err != nil {
		return nil, fmt.Errorf("%s [%v]: %w", name, v, e.err)
	}
	return e.art, nil
}

// RunSPEC executes one SPEC-like kernel under a variant.
func RunSPEC(k SPECKernel, v confllvm.Variant) (*Measurement, error) {
	wl := SPECWorkload(k, k.Params)
	return wl.Run(v, nil)
}

// Table renders a paper-style percent-of-base table: one row per workload,
// one column per configuration, cells are execution metric as % of Base.
// Set and the accessors are safe for concurrent use; row order in String
// is sorted, so the rendering is independent of insertion order.
type Table struct {
	Title    string
	Columns  []confllvm.Variant
	mu       sync.Mutex
	rowNames []string
	cells    map[string]map[confllvm.Variant]float64
	absolute map[string]uint64 // Base absolute value per row
	// HigherIsBetter flips the ratio (throughput tables).
	HigherIsBetter bool
	Unit           string
}

// NewTable creates an empty table.
func NewTable(title string, cols []confllvm.Variant, unit string) *Table {
	return &Table{Title: title, Columns: cols, Unit: unit,
		cells:    map[string]map[confllvm.Variant]float64{},
		absolute: map[string]uint64{}}
}

// Set records a measurement for (row, variant).
func (t *Table) Set(row string, v confllvm.Variant, value uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.cells[row]; !ok {
		t.cells[row] = map[confllvm.Variant]float64{}
		t.rowNames = append(t.rowNames, row)
	}
	t.cells[row][v] = float64(value)
	if v == confllvm.VariantBase {
		t.absolute[row] = value
	}
}

// Overhead returns a variant's cell as percent overhead relative to Base
// for a row (positive = slower, or lower throughput when HigherIsBetter).
func (t *Table) Overhead(row string, v confllvm.Variant) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.cells[row][confllvm.VariantBase]
	val := t.cells[row][v]
	if base == 0 || val == 0 {
		return 0
	}
	if t.HigherIsBetter {
		return (base/val - 1) * 100
	}
	return (val/base - 1) * 100
}

// String renders the table like the paper's figures: percent of Base per
// configuration with the absolute baseline annotated.
func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-14s", "workload")
	for _, v := range t.Columns {
		fmt.Fprintf(&b, "%14v", v)
	}
	fmt.Fprintf(&b, "%16s\n", "Base("+t.Unit+")")
	rows := append([]string{}, t.rowNames...)
	sort.Strings(rows)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r)
		base := t.cells[r][confllvm.VariantBase]
		for _, v := range t.Columns {
			if base == 0 {
				fmt.Fprintf(&b, "%14s", "-")
				continue
			}
			fmt.Fprintf(&b, "%13.1f%%", t.cells[r][v]/base*100)
		}
		fmt.Fprintf(&b, "%16d\n", t.absolute[r])
	}
	return b.String()
}

// GeoMeanOverhead computes the geometric-mean ratio (vs Base) across rows
// for one variant, returned as percent overhead.
func (t *Table) GeoMeanOverhead(v confllvm.Variant) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	prod := 1.0
	n := 0
	for _, r := range t.rowNames {
		base := t.cells[r][confllvm.VariantBase]
		val := t.cells[r][v]
		if base == 0 || val == 0 {
			continue
		}
		ratio := val / base
		if t.HigherIsBetter {
			ratio = base / val
		}
		prod *= ratio
		n++
	}
	if n == 0 {
		return 0
	}
	return (math.Pow(prod, 1.0/float64(n)) - 1) * 100
}
