package bench

import (
	"fmt"

	"confllvm"
	"confllvm/internal/chaos"
	"confllvm/internal/machine"
	"confllvm/internal/obs"
)

// FaultPolicy configures a supervised serving run: the fault schedule and
// the recovery discipline. Every quantity is simulated (cycles, requests)
// — a policy plus a wire trace fully determines the ServeReport, bit for
// bit, on any host, under any scheduling, in any dispatch mode.
type FaultPolicy struct {
	Injector chaos.Injector
	// MaxRestarts bounds *consecutive fruitless* restarts — epochs that
	// fault before consuming a single request. Once exhausted, the
	// remaining queue is rejected (a persistent crash loop, not a stream
	// of per-request faults, is what makes a supervisor give up).
	MaxRestarts int
	// MaxReplays bounds how often one request may be replayed after
	// transient faults before it is rejected as a poison pill. Together
	// with MaxRestarts this makes termination unconditional: every epoch
	// either serves requests, burns a replay, or extends a bounded
	// streak.
	MaxReplays int
	// BackoffBase is the simulated-cycle pause before a restart; each
	// consecutive fruitless restart doubles it, capped at BackoffCap, and
	// any progress resets it to the base.
	BackoffBase uint64
	BackoffCap  uint64
	// QueueDepth bounds the request queue during a backoff pause:
	// arrivals beyond it are shed (graceful degradation, not collapse).
	QueueDepth int
	// ArrivalEveryCycles models the client arrival rate during backoff —
	// one request per this many simulated cycles (0 disables shedding).
	ArrivalEveryCycles uint64
	// BatchRequests caps the requests served per machine epoch (planned
	// recycling, crash-only style): smaller batches bound the blast
	// radius of one fault and give the per-epoch fault mechanisms more
	// injection points. 0 serves the whole queue in one epoch.
	BatchRequests int
	// Trace, when non-nil, receives one span tree per epoch on the
	// supervisor's simulated clock (RunCycles + BackoffCycles): an
	// "epoch" root spanning the whole lifecycle with a "run" child (the
	// machine execution, labeled "run:<fault kind>" when it faulted) and
	// a "backoff" child for the restart pause. Purely observational —
	// the ServeReport is bit-identical with or without it.
	Trace *obs.Tracer
}

// DefaultFaultPolicy is the faults figure's policy: one knob (the fault
// rate) on top of fixed recovery parameters.
func DefaultFaultPolicy(seed, ratePermille uint64) FaultPolicy {
	in := chaos.NewInjector(seed, ratePermille)
	// One absolute fuel window must make sense for every workload in the
	// sweep: drawn uniformly from it, a budget almost always truncates a
	// long epoch (the TLS-ish handshake burns ~30k instructions per
	// request) and only rarely a cheap one (a KV batch runs in a few
	// thousand), so fuel exhaustion is the handshake's main fault source
	// while the KV store's is wire corruption.
	in.FuelMin, in.FuelMax = 2_000, 200_000
	return FaultPolicy{
		Injector:    in,
		MaxRestarts: 8,
		MaxReplays:  3,
		BackoffBase: 1_000_000,  // 0.5 ms at SimClockHz
		BackoffCap:  16_000_000, // 8 ms
		QueueDepth:  32,
		// One arrival per 50k cycles: a minimum-length (1M-cycle) backoff
		// brings 20 arrivals — absorbed by the 32-deep queue — but an
		// escalated (2M+) backoff brings 40+, so crash loops shed while
		// isolated restarts do not. The bounded queue is exercised by the
		// figure, not just available in principle.
		ArrivalEveryCycles: 50_000,
		BatchRequests:      4,
	}
}

// ServeReport is the outcome of one supervised serving run. All fields
// are simulated quantities.
type ServeReport struct {
	Total    int // requests offered
	Served   int // requests completed by the server
	Rejected int // poisoned requests refused + remainder after give-up
	Shed     int // requests dropped by the bounded queue during backoff

	Restarts         int // machine teardown/restart cycles
	Epochs           int // machine runs (restarts + the final clean run)
	VerifyRejections int // tampered images refused by the load gate

	RunCycles     uint64 // simulated cycles spent executing
	BackoffCycles uint64 // simulated cycles spent in restart pauses
	Instrs        uint64 // simulated instructions executed

	// Recoveries holds each restart's recovery latency in simulated
	// cycles (the fault-to-serving-again pause).
	Recoveries []uint64
}

// AvailabilityPct is the percentage of offered requests served.
func (r *ServeReport) AvailabilityPct() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Served) / float64(r.Total) * 100
}

// ServedPerSec converts served requests over total simulated time
// (execution + backoff) into req/s at SimClockHz.
func (r *ServeReport) ServedPerSec() uint64 {
	return ReqsPerSec(uint64(r.Served), r.RunCycles+r.BackoffCycles)
}

// RecoveryMean returns the mean restart latency in simulated cycles
// (0 with no restarts).
func (r *ServeReport) RecoveryMean() uint64 {
	if len(r.Recoveries) == 0 {
		return 0
	}
	var sum uint64
	for _, c := range r.Recoveries {
		sum += c
	}
	return sum / uint64(len(r.Recoveries))
}

// RecoveryMax returns the largest restart latency in simulated cycles.
func (r *ServeReport) RecoveryMax() uint64 {
	var max uint64
	for _, c := range r.Recoveries {
		if c > max {
			max = c
		}
	}
	return max
}

// pending is one queued request: its packet plus its absolute index in
// the original trace (wire-corruption decisions key on the absolute
// index, so a request keeps its fault fate across replays) and its
// replay count.
type pending struct {
	idx   uint64
	pkt   []byte
	tries int
}

// Supervise serves a wire trace through supervised machine lifecycles:
// the request queue is fed to a freshly prepared machine; when the
// machine faults, the supervisor tears it down, waits out an exponential
// backoff (in simulated cycles), sheds queue overflow, and restarts with
// the unserved remainder. The in-flight request is replayed after
// transient faults (code corruption, fuel exhaustion) but rejected after
// a trusted-runtime refusal (FaultTrusted means the request itself is
// poisoned — replaying it would fault forever). Every epoch the injector
// may also present a tampered image to the verify-before-load gate; the
// gate must reject it (an acceptance failure otherwise), and serving
// continues with the pristine verified artifact.
//
// The server program must follow the scenario serving convention:
// Params[0] = request count, one recv per request.
func Supervise(key string, prog confllvm.Program, v confllvm.Variant,
	wire [][]byte, mconf *machine.Config, pol FaultPolicy) (*ServeReport, error) {

	art, err := CompileCached(key, v, prog)
	if err != nil {
		return nil, err
	}
	in := pol.Injector

	// Corrupt the wire up front: the schedule keys on absolute request
	// indices, so it is fixed before any epoch runs.
	queue := make([]pending, len(wire))
	for i, pkt := range wire {
		p := pending{idx: uint64(i), pkt: pkt}
		if in.CorruptWire(uint64(i)) {
			p.pkt = in.CorruptPacket(uint64(i), pkt)
		}
		queue[i] = p
	}

	rep := &ServeReport{Total: len(wire)}
	baseConf := machine.DefaultConfig()
	if mconf != nil {
		baseConf = *mconf
	}

	// streak counts consecutive fruitless restarts (no request consumed);
	// progress resets it, so backoff escalation and the give-up bound
	// target crash loops, not ordinary per-request faults.
	streak := 0
	for epoch := uint64(0); len(queue) > 0; epoch++ {
		rep.Epochs++
		// The supervisor's simulated clock: execution plus backoff so
		// far. Epoch spans are emitted against it once the epoch's
		// extent is known (parents precede children in a trace).
		c0 := rep.RunCycles + rep.BackoffCycles

		// Verify-before-load gate: a tampered build artifact must never
		// reach the loader. One load per epoch, so one roll per epoch.
		if in.Tamper(epoch) {
			tampered := chaos.TamperImage(in.Seed, epoch, art.Image)
			if tampered != nil {
				if _, verr := gateVerify(tampered, art.Strict); verr != nil {
					rep.VerifyRejections++
				} else {
					return nil, fmt.Errorf("%s [%v]: tampered image passed the verify gate", key, v)
				}
			}
		}

		// One epoch serves a bounded batch off the head of the queue.
		batch := len(queue)
		if pol.BatchRequests > 0 && batch > pol.BatchRequests {
			batch = pol.BatchRequests
		}

		// Code and fuel bombs roll once per request slot, not per epoch:
		// fault exposure then scales with offered load, independent of the
		// BatchRequests knob. The first fuel hit in the batch sets the
		// epoch's budget (one machine, one budget).
		mc := baseConf
		for j := 0; j < batch; j++ {
			if slot := epoch*chaos.EpochStride + uint64(j); in.FuelBomb(slot) {
				mc.DefaultFuel = in.FuelBudget(slot)
				break
			}
		}

		w := confllvm.NewWorld()
		w.Params = []int64{int64(batch)}
		w.NetIn = make([][]byte, batch)
		for i, p := range queue[:batch] {
			w.NetIn[i] = p.pkt
		}

		prep, err := confllvm.Prepare(art, w, &mc)
		if err != nil {
			return nil, fmt.Errorf("%s [%v]: prepare: %w", key, v, err)
		}
		for j := 0; j < batch; j++ {
			slot := epoch*chaos.EpochStride + uint64(j)
			if !in.CodeBomb(slot) {
				continue
			}
			// Post-load corruption: by design this bypasses the verify
			// gate (which checks bits at load time); the machine's own
			// decode/CFI checks catch it at execution time instead.
			if addr, ok := in.CodeBombSite(slot, art.Image); ok {
				if f := prep.Machine().Mem.WriteBytesUnchecked(addr, []byte{chaos.InvalidOpcode}); f != nil {
					return nil, fmt.Errorf("%s [%v]: code bomb write: %v", key, v, f)
				}
			}
		}
		res := prep.Finish()
		rep.RunCycles += res.WallCycles
		rep.Instrs += res.Stats.Instrs
		runEnd := c0 + res.WallCycles

		if res.Fault == nil {
			if tr := pol.Trace; tr != nil {
				ep := tr.Span("epoch", 0, c0, runEnd)
				tr.Span("run", ep, c0, runEnd)
			}
			rep.Served += batch
			queue = queue[batch:]
			continue
		}

		// The server pops one NetIn packet per request: the consumed
		// count locates the in-flight request (simulated quantities on
		// both sides, so this is dispatch-mode-invariant).
		consumed := batch - len(res.TCtx.NetIn)
		if consumed > 0 {
			streak = 0
			rep.Served += consumed - 1
			inflight := queue[consumed-1]
			queue = queue[consumed:]
			// Replay only environment-injected faults: decode faults come
			// from planted code corruption (verified code cannot produce
			// them) and fuel faults from the watchdog — both gone after a
			// restart. Every other kind is the instrumentation convicting
			// the request itself (the trusted runtime refusing a poisoned
			// payload, MPX/CFI tripped by adversarial input), so replaying
			// it would fault identically forever; reject it. MaxReplays
			// additionally caps replays, so even a misclassified poison
			// pill cannot wedge the supervisor.
			transient := res.Fault.Kind == machine.FaultDecode ||
				res.Fault.Kind == machine.FaultFuel
			inflight.tries++
			if transient && inflight.tries <= pol.MaxReplays {
				queue = append([]pending{inflight}, queue...)
			} else {
				rep.Rejected++
			}
		} else {
			streak++
		}

		rep.Restarts++
		if streak > pol.MaxRestarts {
			if tr := pol.Trace; tr != nil {
				ep := tr.Span("epoch", 0, c0, runEnd)
				tr.Span("run:"+res.Fault.Kind.String(), ep, c0, runEnd)
			}
			rep.Rejected += len(queue)
			queue = nil
			break
		}

		// Exponential backoff in simulated cycles, escalating with the
		// fruitless streak.
		backoff := pol.BackoffBase
		for i := 0; i < streak && backoff < pol.BackoffCap; i++ {
			backoff *= 2
		}
		if pol.BackoffCap > 0 && backoff > pol.BackoffCap {
			backoff = pol.BackoffCap
		}
		rep.BackoffCycles += backoff
		rep.Recoveries = append(rep.Recoveries, backoff)
		if tr := pol.Trace; tr != nil {
			ep := tr.Span("epoch", 0, c0, runEnd+backoff)
			tr.Span("run:"+res.Fault.Kind.String(), ep, c0, runEnd)
			tr.Span("backoff", ep, runEnd, runEnd+backoff)
		}

		// Bounded queue: of the requests arriving during the pause (the
		// next arrivals in the trace), the queue absorbs QueueDepth; the
		// rest find it full and are shed. Requests arriving after the
		// pause are untouched, so shedding never empties the queue below
		// its own capacity — degradation, not collapse.
		if pol.ArrivalEveryCycles > 0 {
			arrivals := int(backoff / pol.ArrivalEveryCycles)
			if arrivals > len(queue) {
				arrivals = len(queue)
			}
			if shed := arrivals - pol.QueueDepth; shed > 0 {
				queue = append(queue[:pol.QueueDepth:pol.QueueDepth], queue[arrivals:]...)
				rep.Shed += shed
			}
		}
	}
	return rep, nil
}
