package bench

import (
	"confllvm"
	"confllvm/internal/trt"
)

// WebServerSrc is the NGINX-analogue (§7.2): request parsing, password
// authentication, private file serving through T's SSL path, and request
// logging with URI encryption. Everything except the log buffers is
// private, mirroring the paper's annotation of NGINX.
const WebServerSrc = `
#define MAXF 65536
extern int recv(int fd, char *buf, int size);
extern void decrypt(char *src, private char *dst, int size);
extern void read_passwd(char *uname, private char *pass, int size);
extern int read_file_priv(char *name, private char *buf, int size);
extern int ssl_send(int fd, private char *buf, int size);
extern void encrypt_log(private char *src, char *dst, int size);
extern void log_write(char *buf, int size);
extern long input(int idx);
extern void output(long v);

int strlen(char *s);
void memcpy_priv(private char *dst, private char *src, long n);

private char fbuf[MAXF];
private char resp[MAXF + 64];
private char upw[32];
private char spw[32];
private char uribuf[64];
char logenc[64];
char req[256];

int authenticate(private char *a, private char *b, int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (a[i] != b[i]) return 0;
		if (a[i] == 0) break;
	}
	return 1;
}

/* request layout: "<fname> <uname> " + 32 bytes encrypted password */
int handle(void) {
	int n = recv(0, req, 256);
	if (n <= 0) return 0;
	char fname[64];
	char uname[64];
	int i = 0;
	int j = 0;
	while (req[i] != ' ' && i < n) { fname[j] = req[i]; i++; j++; }
	fname[j] = 0;
	i++;
	j = 0;
	while (req[i] != ' ' && i < n) { uname[j] = req[i]; i++; j++; }
	uname[j] = 0;
	i++;

	decrypt(req + i, upw, 32);
	read_passwd(uname, spw, 32);
	if (!authenticate(upw, spw, 32)) return -1;

	int fn = read_file_priv(fname, fbuf, MAXF);

	/* response header (public chars stored into the private response
	 * buffer: L flows into H) */
	int h = 0;
	resp[h] = 'O'; h++;
	resp[h] = 'K'; h++;
	resp[h] = ' '; h++;
	memcpy_priv(resp + h, fbuf, fn);

	ssl_send(1, resp, h + fn);

	/* log: the URI is treated as sensitive; it is encrypted into the
	 * public log buffer before logging (the paper's encrypt_log). */
	int ul = strlen(fname);
	for (i = 0; i <= ul && i < 63; i++) uribuf[i] = fname[i];
	encrypt_log(uribuf, logenc, 64);
	log_write(logenc, 64);
	return 1;
}

int main() {
	long reqs = input(0);
	long served = 0;
	long r;
	for (r = 0; r < reqs; r++) {
		if (handle() > 0) served++;
	}
	output(served);
	return 0;
}
`

// WebRequest builds one simulated wire request.
func WebRequest(fname, uname, password string) []byte {
	req := []byte(fname + " " + uname + " ")
	pw := make([]byte, 32)
	copy(pw, password)
	return append(req, trt.EncryptWithDefaultKey(pw)...)
}

// WebWorld builds a world with nReqs identical requests for a file of
// fileSize bytes.
func WebWorld(nReqs int, fileSize int) *confllvm.World {
	w := confllvm.NewWorld()
	content := make([]byte, fileSize)
	for i := range content {
		content[i] = byte('a' + i%26)
	}
	w.PrivFiles["f0"] = content
	w.Passwords["alice"] = []byte("correct-horse")
	w.Params = []int64{int64(nReqs)}
	for i := 0; i < nReqs; i++ {
		w.NetIn = append(w.NetIn, WebRequest("f0", "alice", "correct-horse"))
	}
	return w
}

// RunWebServer serves nReqs requests of fileSize bytes under a variant and
// returns the measurement (throughput = requests per wall cycle).
func RunWebServer(v confllvm.Variant, nReqs, fileSize int) (*Measurement, error) {
	wl := WebWorkload(nReqs, fileSize)
	return wl.Run(v, nil)
}
