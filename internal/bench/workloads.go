package bench

import (
	"fmt"

	"confllvm"
	"confllvm/internal/machine"
	"confllvm/internal/obs"
	"confllvm/internal/scenario"
)

// Workload is one named, compilable benchmark program together with its
// input world: the unit that the figure tables, confbench's superblock
// on/off sweep, and the differential-execution tests all iterate over.
type Workload struct {
	// Key is the artifact-cache key, stable across parameterizations of
	// the same program (CompileCached adds variant and taint mode).
	Key string
	// Name labels this parameterization in tables and test names.
	Name string
	// Prog builds the compilation request; some workloads (the Privado
	// classifier) compile differently per variant.
	Prog func(confllvm.Variant) confllvm.Program
	// World builds a fresh input world (worlds are consumed by runs).
	World func() *confllvm.World
	// Check validates the observable outcome beyond fault-freedom (nil =
	// fault-free is enough).
	Check func(*confllvm.Result) error
}

// Run compiles (cached) and executes the workload under a variant with an
// optional machine configuration (nil = the default cost model, which has
// superblock dispatch enabled).
func (wl *Workload) Run(v confllvm.Variant, mconf *machine.Config) (*Measurement, error) {
	art, err := CompileCached(wl.Key, v, wl.Prog(v))
	if err != nil {
		return nil, err
	}
	res, hostNS, err := timedRun(art, wl.World(), mconf)
	if err != nil {
		return nil, err
	}
	if res.Fault != nil {
		return nil, fmt.Errorf("%s [%v]: %v", wl.Name, v, res.Fault)
	}
	if wl.Check != nil {
		if err := wl.Check(res); err != nil {
			return nil, fmt.Errorf("%s [%v]: %w", wl.Name, v, err)
		}
	}
	m := &Measurement{Variant: v, Wall: res.WallCycles, Stats: res.Stats,
		Outputs: res.Outputs, Res: res, HostNS: hostNS}
	if res.Profile != nil {
		m.Profile = obs.FlattenProfile(res.Profile, art.Image)
	}
	return m, nil
}

// SPECWorkload wraps one SPEC-like kernel with explicit input parameters.
func SPECWorkload(k SPECKernel, params []int64) Workload {
	return Workload{
		Key:  "spec-" + k.Name,
		Name: k.Name,
		Prog: func(confllvm.Variant) confllvm.Program {
			return confllvm.Program{
				Sources: []confllvm.Source{
					{Name: k.Name + ".c", Code: k.Src},
					{Name: "ulib.c", Code: ULib},
				},
				Strict: true, // SPEC has no private data; strict mode is free
			}
		},
		World: func() *confllvm.World {
			w := confllvm.NewWorld()
			w.Params = params
			return w
		},
	}
}

// WebWorkload wraps the NGINX analogue serving nReqs requests of fileSize
// bytes.
func WebWorkload(nReqs, fileSize int) Workload {
	return Workload{
		Key:  "webserver",
		Name: fmt.Sprintf("webserver-%dx%dB", nReqs, fileSize),
		Prog: func(confllvm.Variant) confllvm.Program {
			return confllvm.Program{Sources: []confllvm.Source{
				{Name: "webserver.c", Code: WebServerSrc},
				{Name: "ulib.c", Code: ULib},
			}}
		},
		World: func() *confllvm.World { return WebWorld(nReqs, fileSize) },
		Check: func(res *confllvm.Result) error {
			if len(res.Outputs) != 1 || res.Outputs[0] != int64(nReqs) {
				return fmt.Errorf("served %v of %d requests", res.Outputs, nReqs)
			}
			return nil
		},
	}
}

// LDAPWorkload wraps the directory server issuing queries with the given
// miss rate (percent).
func LDAPWorkload(queries, missRate int) Workload {
	return Workload{
		Key:  "ldap",
		Name: fmt.Sprintf("ldap-%dq", queries),
		Prog: func(confllvm.Variant) confllvm.Program {
			return confllvm.Program{Sources: []confllvm.Source{
				{Name: "ldap.c", Code: LDAPSrc},
				{Name: "ulib.c", Code: ULib},
			}}
		},
		World: func() *confllvm.World { return LDAPWorld(queries, missRate) },
	}
}

// LDAPWorld builds the directory-server input world.
func LDAPWorld(queries, missRate int) *confllvm.World {
	w := confllvm.NewWorld()
	w.Params = []int64{int64(queries), int64(missRate)}
	return w
}

// ClassifierWorkload wraps the Privado private-inference network
// classifying `images` inputs. The instrumented variants compile in the
// paper's all-private SGX mode.
func ClassifierWorkload(images int) Workload {
	return Workload{
		Key:  "classifier",
		Name: fmt.Sprintf("classifier-%dimg", images),
		Prog: func(v confllvm.Variant) confllvm.Program {
			return confllvm.Program{
				Sources: []confllvm.Source{
					{Name: "classifier.c", Code: ClassifierSrc},
					{Name: "ulib.c", Code: ULib},
				},
				AllPrivate: v != confllvm.VariantBase && v != confllvm.VariantBaseOA,
			}
		},
		World: func() *confllvm.World { return ClassifierWorld(images) },
	}
}

// ClassifierWorld builds the classifier input world: a seeded image and
// three weight matrices, delivered through the private-input channel.
func ClassifierWorld(images int) *confllvm.World {
	w := confllvm.NewWorld()
	w.Params = []int64{int64(images)}
	mk := func(n int, scale float64) []byte {
		vals := make([]float64, n)
		s := int64(99)
		for i := range vals {
			s = s*6364136223846793005 + 1442695040888963407
			vals[i] = (float64(s%1000)/500 - 1) * scale
		}
		return packFloats(vals)
	}
	w.PrivIn[0] = mk(192, 1)      // image (192*8 = 1.5 KB)
	w.PrivIn[1] = mk(192*48, 0.1) // w0
	w.PrivIn[2] = mk(48*48, 0.1)  // wh
	w.PrivIn[3] = mk(48*10, 0.1)  // wo
	return w
}

// MerkleWorkload wraps the multi-threaded integrity-protected read
// library: a fileKB-kilobyte file scanned by nThreads parallel readers.
func MerkleWorkload(fileKB, nThreads int) Workload {
	return Workload{
		Key:  "merkle",
		Name: fmt.Sprintf("merkle-%dKBx%dt", fileKB, nThreads),
		Prog: func(confllvm.Variant) confllvm.Program {
			return confllvm.Program{Sources: []confllvm.Source{
				{Name: "merkle.c", Code: MerkleSrc},
				{Name: "ulib.c", Code: ULib},
			}}
		},
		World: func() *confllvm.World { return MerkleWorld(fileKB, nThreads) },
		Check: func(res *confllvm.Result) error {
			for _, o := range res.Outputs {
				if o < 0 {
					return fmt.Errorf("integrity verification failed (%d)", o)
				}
			}
			return nil
		},
	}
}

// MerkleWorld builds the Merkle-FS input world.
func MerkleWorld(fileKB, nThreads int) *confllvm.World {
	w := confllvm.NewWorld()
	w.Params = []int64{int64(fileKB * 1024), int64(nThreads)}
	data := make([]byte, fileKB*1024)
	for i := range data {
		data[i] = byte(i * 7)
	}
	w.PrivIn[0] = data
	return w
}

// Workloads returns the default parameterization of every benchmark
// program, including the examples' quickstart handler. short selects
// reduced inputs (same code paths, fewer iterations) — the differential
// tests use them even in full mode, since dispatch-mode coverage does not
// grow with iteration count; the nightly figure-regeneration diff covers
// the full-scale runs.
func Workloads(short bool) []Workload {
	var wls []Workload
	for _, k := range SPECKernels() {
		wls = append(wls, SPECWorkload(k, k.EffectiveParams(short)))
	}
	reqs, size := 6, 2048
	queries := 300
	images := 2
	fileKB, threads := 64, 3
	if short {
		reqs, size = 3, 512
		queries = 60
		images = 1
		fileKB, threads = 16, 2
	}
	wls = append(wls,
		WebWorkload(reqs, size),
		LDAPWorkload(queries, 50),
		ClassifierWorkload(images),
		MerkleWorkload(fileKB, threads),
		QuickstartWorkload(),
		// The scenario-driven families: seeded traffic from
		// internal/scenario, outputs checked against the generator's
		// predictions. Registering them here puts KV/TLS-ish traffic under
		// the differential and fuzz harnesses with zero extra wiring.
		KVWorkload(scenario.DefaultKV(short)),
		TLSHWorkload(scenario.DefaultTLSH(short)),
		MerkleFSWorkload(scenario.DefaultMerkleFS(short)),
	)
	return wls
}
