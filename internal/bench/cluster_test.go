package bench

import (
	"reflect"
	"testing"

	"confllvm"
	"confllvm/internal/scenario"
)

// clusterBenchSpec is a 4-shard scenario small enough for unit tests yet
// wide enough to exercise routing, scan fan-out and the clock merge.
func clusterBenchSpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Name:     "kv-cluster-bench",
		Workload: scenario.WorkloadKV,
		Seed:     seed,
		Requests: 10, Multiplier: 1, Clients: 2,
		KeySpace: 256, Preload: 16, HitPct: 50,
		GetPct: 55, PutPct: 25, DelPct: 5,
		ValueMin: 8, ValueMax: 64, ScanSpan: 24,
		Shards: 4,
	}
}

// runClusterCells executes one routed cluster through the matrix and
// returns its per-shard measurements (fatal on any cell error — each
// shard's Check compares outputs against the router's prediction, so a
// pass here is end-to-end validation of the per-shard expect vectors).
func runClusterCells(t *testing.T, ct *scenario.ClusterTraffic, workers int) []*Measurement {
	t.Helper()
	cells := ClusterCells("cluster", []*scenario.ClusterTraffic{ct}, confllvm.VariantMPX, nil)
	results := RunMatrix(cells, workers)
	ms := make([]*Measurement, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d (%s/%s): %v", i, r.Cell.Row, r.Cell.Label, r.Err)
		}
		ms[i] = r.M
	}
	return ms
}

// TestClusterMatrixDeterminism: the cluster grid's shard cells and the
// merged per-cluster reports are simulated quantities — cell-for-cell
// identical between a serial and an 8-worker matrix. The CI smoke runs
// this under -race.
func TestClusterMatrixDeterminism(t *testing.T) {
	cts := ClusterTraffics(scenario.ClusterGrid(true, scenario.DefaultSeed))
	cells := ClusterCells("cluster", cts, confllvm.VariantMPX, nil)
	serial := RunMatrix(cells, 1)
	parallel := RunMatrix(ClusterCells("cluster", cts, confllvm.VariantMPX, nil), 8)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("cell %d (%s/%s): serial err %v, parallel err %v",
				i, s.Cell.Row, s.Cell.Label, s.Err, p.Err)
		}
		if s.M.Wall != p.M.Wall || s.M.Stats != p.M.Stats ||
			!reflect.DeepEqual(s.M.Outputs, p.M.Outputs) {
			t.Fatalf("cell %d (%s/%s) diverged between worker counts:\n  serial   %d cycles %+v\n  parallel %d cycles %+v",
				i, s.Cell.Row, s.Cell.Label, s.M.Wall, s.M.Stats, p.M.Wall, p.M.Stats)
		}
	}
	// The merged rows must agree too — this is what the figure prints.
	idx := 0
	for _, ct := range cts {
		n := ct.Spec.Shards
		ms, mp := make([]*Measurement, n), make([]*Measurement, n)
		for sh := 0; sh < n; sh++ {
			ms[sh], mp[sh] = serial[idx].M, parallel[idx].M
			idx++
		}
		rs, err := MergeShardClocks(ct, ms)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := MergeShardClocks(ct, mp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs, rp) {
			t.Fatalf("%s: merged reports diverged:\n  serial   %+v\n  parallel %+v", ct.Spec.Name, rs, rp)
		}
	}
}

// TestClusterMergeOrderInvariance: the merge uses only commutative,
// associative folds, so feeding shard measurements in any order yields
// the identical report — the invariant that makes the figure independent
// of shard completion order.
func TestClusterMergeOrderInvariance(t *testing.T) {
	ct, err := scenario.Cluster(clusterBenchSpec(101))
	if err != nil {
		t.Fatal(err)
	}
	ms := runClusterCells(t, ct, 4)
	ref, err := MergeShardClocks(ct, ms)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	for _, p := range perms {
		shuffled := make([]*Measurement, len(ms))
		for i, j := range p {
			shuffled[i] = ms[j]
		}
		got, err := MergeShardClocks(ct, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("merge order %v changed the report:\n  ref %+v\n  got %+v", p, ref, got)
		}
	}
	if ref.WallCycles != ref.MaxShardCycles {
		t.Fatalf("cluster wall %d is not the slowest shard %d", ref.WallCycles, ref.MaxShardCycles)
	}
	if ref.AggReqsPerSec() != ReqsPerSec(uint64(ref.ClientRequests), ref.WallCycles) {
		t.Fatal("aggregate req/s is not client requests over the merged clock")
	}
}

// TestClusterMergeSeedSensitivity: a different traffic seed must change
// the merged report — the figure's rows are functions of -seed, not
// constants.
func TestClusterMergeSeedSensitivity(t *testing.T) {
	reports := make([]*ClusterReport, 2)
	for i, seed := range []uint64{201, 202} {
		ct, err := scenario.Cluster(clusterBenchSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := MergeShardClocks(ct, runClusterCells(t, ct, 4))
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	if reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("distinct seeds produced identical merged reports: %+v", reports[0])
	}
}

// TestMergeShardClocksArityCheck: the merge refuses measurement slices
// that do not match the cluster width or contain holes.
func TestMergeShardClocksArityCheck(t *testing.T) {
	ct, err := scenario.Cluster(clusterBenchSpec(303))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShardClocks(ct, make([]*Measurement, 2)); err == nil {
		t.Fatal("short measurement slice must error")
	}
	if _, err := MergeShardClocks(ct, make([]*Measurement, ct.Spec.Shards)); err == nil {
		t.Fatal("nil measurements must error")
	}
}

// TestSuperviseClusterFaultIsolation: a fault-ridden shard restarts and
// degrades alone — every other shard serves 100% — and the cluster's
// merged availability sits strictly between the two. This is the
// degraded-service property the cluster supervisor exists for.
func TestSuperviseClusterFaultIsolation(t *testing.T) {
	spec := clusterBenchSpec(404)
	spec.Multiplier = 2 // enough per-shard traffic for faults to land
	ct, err := scenario.Cluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	wl := KVWorkload(spec)
	const faulty = 1
	pols := make([]FaultPolicy, ct.Spec.Shards)
	for i := range pols {
		rate := uint64(0)
		if i == faulty {
			rate = 500
		}
		pols[i] = DefaultFaultPolicy(777, rate)
	}
	rep, err := SuperviseCluster(wl.Key, wl.Prog(confllvm.VariantMPX), confllvm.VariantMPX,
		ct, nil, pols)
	if err != nil {
		t.Fatal(err)
	}
	for sh, sr := range rep.PerShard {
		if sh == faulty {
			if sr.AvailabilityPct() >= 100 || sr.Restarts == 0 {
				t.Fatalf("faulty shard did not degrade: %+v", sr)
			}
			continue
		}
		if sr.AvailabilityPct() != 100 || sr.Restarts != 0 {
			t.Fatalf("healthy shard %d was disturbed by shard %d's faults: %+v", sh, faulty, sr)
		}
	}
	if a := rep.AvailabilityPct(); a <= 0 || a >= 100 {
		t.Fatalf("cluster availability %v, want strictly degraded", a)
	}
	// The merged clock is the slowest shard's serving time.
	var maxWall uint64
	for _, sr := range rep.PerShard {
		if w := sr.RunCycles + sr.BackoffCycles; w > maxWall {
			maxWall = w
		}
	}
	if rep.WallCycles != maxWall {
		t.Fatalf("cluster wall %d != slowest shard %d", rep.WallCycles, maxWall)
	}
	if rep.Restarts != rep.PerShard[faulty].Restarts {
		t.Fatalf("restarts %d not isolated to the faulty shard's %d",
			rep.Restarts, rep.PerShard[faulty].Restarts)
	}
}

// TestSuperviseClusterCleanRun: with no faults anywhere the cluster
// supervisor is transparent — full availability, no restarts, and
// per-shard totals matching the router's request counts.
func TestSuperviseClusterCleanRun(t *testing.T) {
	ct, err := scenario.Cluster(clusterBenchSpec(505))
	if err != nil {
		t.Fatal(err)
	}
	wl := KVWorkload(ct.Spec)
	pols := make([]FaultPolicy, ct.Spec.Shards)
	for i := range pols {
		pols[i] = DefaultFaultPolicy(0, 0)
	}
	rep, err := SuperviseCluster(wl.Key, wl.Prog(confllvm.VariantMPX), confllvm.VariantMPX,
		ct, nil, pols)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvailabilityPct() != 100 || rep.Restarts != 0 {
		t.Fatalf("clean cluster run not transparent: %+v", rep)
	}
	for sh, sr := range rep.PerShard {
		if sr.Total != ct.Requests[sh] {
			t.Fatalf("shard %d offered %d requests, router routed %d", sh, sr.Total, ct.Requests[sh])
		}
	}
	if rep.ServedPerSec() == 0 {
		t.Fatal("throughput column empty on a served cluster")
	}
	if _, err := SuperviseCluster(wl.Key, wl.Prog(confllvm.VariantMPX), confllvm.VariantMPX,
		ct, nil, pols[:1]); err == nil {
		t.Fatal("policy arity mismatch must error")
	}
}
