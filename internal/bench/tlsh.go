package bench

import (
	"confllvm"
	"confllvm/internal/scenario"
)

// TLSHandshakeSrc is the TLS-ish handshake server: for every client hello
// it hashes the public transcript (hello type + client nonce) on the
// public side, decrypts the pre-secret into private memory, draws a
// public server nonce, and runs a key-schedule-style mixing loop entirely
// in the private partition — 16 rounds for a full handshake, 4 for a
// resumption. The derived verify data leaves only through T's ssl_send
// (encrypted); the only cleartext the wire ever sees is the transcript
// accumulator, which is a function of public inputs alone. The traffic
// and the expected [done, full, resumed, transcript] outputs come from
// internal/scenario, which replicates the transcript arithmetic exactly.
const TLSHandshakeSrc = `
#define NONCE 32
#define KEYLEN 32
#define RFULL 16
#define RRES 4
#define RBUF 128

extern int recv(int fd, char *buf, int size);
extern int ssl_send(int fd, private char *buf, int size);
extern void decrypt(char *src, private char *dst, int size);
extern long input(int idx);
extern void output(long v);

long u_rand(long *state);

long srvseed = 424242;
char req[RBUF];
private char pm[NONCE];
private char ks[KEYLEN];
long transcript = 0;

int main() {
	long n = input(0);
	long done = 0;
	long full = 0;
	long resumed = 0;
	long i;
	for (i = 0; i < n; i++) {
		int got = recv(0, req, RBUF);
		if (got <= 0) break;
		long typ = *(long*)(req);

		/* transcript hash: public side, over the hello (type + nonce) */
		long h = typ * 16777619 + 2166136261;
		int j;
		for (j = 0; j < NONCE; j++) h = h * 1099511628211 + (req[8 + j] & 255);
		transcript = transcript * 7 + h;

		/* the pre-secret exists in clear only in private memory */
		decrypt(req + 40, pm, NONCE);

		/* server nonce is public; the key schedule mixes it with the
		 * private pre-secret and the client nonce in private memory */
		long sn = u_rand(&srvseed);
		long rounds = RFULL;
		if (typ == 2) rounds = RRES;
		for (j = 0; j < KEYLEN; j++) ks[j] = pm[j];
		int r;
		for (r = 0; r < rounds; r++) {
			for (j = 0; j < KEYLEN; j++) {
				ks[j] = (char)(ks[j] * 31 + pm[(j + r) % NONCE]
				               + req[8 + j % NONCE] + (sn >> (j % 8)));
			}
		}
		/* finished message: verify data leaves only encrypted */
		ssl_send(1, ks, KEYLEN);

		if (typ == 2) resumed++;
		else full++;
		done++;
	}
	output(done);
	output(full);
	output(resumed);
	output(transcript);
	return 0;
}
`

// TLSHWorkload wraps the TLS-ish handshake server driving one scenario's
// hellos. All scenarios share one artifact per variant (Key "tlsh"); the
// check also covers the public transcript accumulator.
func TLSHWorkload(spec scenario.Spec) Workload {
	return scenarioWorkload("tlsh", []confllvm.Source{
		{Name: "tlsh.c", Code: TLSHandshakeSrc},
		{Name: "ulib.c", Code: ULib},
	}, spec)
}
