package bench

import (
	"encoding/binary"
	"math"

	"confllvm"
	"confllvm/internal/trt"
)

// ---- OpenLDAP analogue (§7.3) ----

// LDAPSrc is a directory server: a hash table of entries built in U, with
// user passwords held only in private buffers (decrypted by T on load).
// Queries authenticate with a password compare, like the paper's
// username/password-configured OpenLDAP.
const LDAPSrc = `
#define NENTRIES 10000
#define NBUCKETS 512
#define PWLEN 16

extern long input(int idx);
extern void output(long v);
extern void *malloc(long size);
extern private void *malloc_priv(long size);
extern long rand_next(void);
extern void decrypt(char *src, private char *dst, int size);

long seed = 1234;
long u_rand(long *state);

struct entry {
	long uid;
	long payload;
	private char *pw;
	struct entry *next;
};

struct entry *buckets[NBUCKETS];
char encpw[PWLEN];

void insert(long uid) {
	struct entry *e = (struct entry*)malloc(sizeof(struct entry));
	e->uid = uid;
	e->payload = uid * 31 + 7;
	e->pw = (private char*)malloc_priv(PWLEN);
	/* per-user password derived from the uid, arriving encrypted */
	int i;
	for (i = 0; i < PWLEN; i++) encpw[i] = (char)((uid + i * 7) % 120 + 1);
	decrypt(encpw, e->pw, PWLEN);
	long b = uid % NBUCKETS;
	e->next = buckets[b];
	buckets[b] = e;
}

struct entry *lookup(long uid) {
	struct entry *e = buckets[uid % NBUCKETS];
	while (e) {
		if (e->uid == uid) return e;
		e = e->next;
	}
	return NULL;
}

int auth(struct entry *e, private char *guess) {
	int i;
	for (i = 0; i < PWLEN; i++) {
		if (e->pw[i] != guess[i]) return 0;
	}
	return 1;
}

private char guesspw[PWLEN];

int main() {
	long queries = input(0);
	long missRate = input(1); /* percent of queries for absent uids */
	long i;
	for (i = 0; i < NENTRIES; i++) insert(i * 2); /* even uids exist */
	long found = 0;
	long q;
	for (q = 0; q < queries; q++) {
		long r = u_rand(&seed);
		long uid;
		if (r % 100 < missRate) uid = (r % NENTRIES) * 2 + 1; /* miss */
		else uid = (r % NENTRIES) * 2;                        /* hit */
		struct entry *e = lookup(uid);
		if (e) {
			int j;
			for (j = 0; j < PWLEN; j++) encpw[j] = (char)((uid + j * 7) % 120 + 1);
			decrypt(encpw, guesspw, PWLEN);
			if (auth(e, guesspw)) found += e->payload % 97;
		}
	}
	output(found);
	return 0;
}
`

// RunLDAP runs the directory server: missRate=100 reproduces the paper's
// first experiment (queries for absent entries), missRate=0 the second.
func RunLDAP(v confllvm.Variant, queries, missRate int) (*Measurement, error) {
	wl := LDAPWorkload(queries, missRate)
	return wl.Run(v, nil)
}

// ---- Privado / SGX image classifier (Fig. 7, §7.4) ----

// ClassifierSrc is an 11-layer feed-forward network over float64s,
// compiled in the paper's all-private SGX mode: both the model and the
// input image are private; only the argmax class index is declassified.
const ClassifierSrc = `
#define IN 192
#define HID 48
#define NCLASS 10
#define NLAYERS 11

extern long input(int idx);
extern void input_priv(int idx, private char *buf, int size);
extern void output(long v);
extern long classify_declass(private double *scores, int n);

private double img[IN];
private double w0[IN * HID];
private double wh[HID * HID];
private double wo[HID * NCLASS];
private double actA[IN];
private double actB[IN];

/* |x| as sqrt(x*x) by Newton iteration: branch-free, so the all-private
 * mode stays free of implicit flows, and heavily FP-pipelined (which is
 * what lets the MPX checks hide behind FP work, as in Fig. 7). */
double absd(double x) {
	double y = x * x + 0.000000000001;
	double g = 1.0 + y * 0.5;
	int k;
	for (k = 0; k < 12; k++) g = 0.5 * (g + y / g);
	return g;
}

void dense(private double *in, private double *w, private double *out,
           int nin, int nout) {
	int o;
	for (o = 0; o < nout; o++) {
		double acc = 0.0;
		int i;
		for (i = 0; i < nin; i++) {
			acc = acc + in[i] * w[o * nin + i];
		}
		/* branch-free ReLU: (x + |x|) / 2 */
		out[o] = (acc + absd(acc)) * 0.5;
	}
}

int main() {
	long images = input(0);
	input_priv(1, (private char*)w0, IN * HID * 8);
	input_priv(2, (private char*)wh, HID * HID * 8);
	input_priv(3, (private char*)wo, HID * NCLASS * 8);
	long n;
	long check = 0;
	for (n = 0; n < images; n++) {
		input_priv(0, (private char*)img, IN * 8);
		dense(img, w0, actA, IN, HID);
		int l;
		for (l = 0; l < NLAYERS - 2; l++) {
			if (l % 2 == 0) dense(actA, wh, actB, HID, HID);
			else dense(actB, wh, actA, HID, HID);
		}
		dense(actB, wo, actA, HID, NCLASS);
		check += classify_declass(actA, NCLASS);
	}
	output(check);
	return 0;
}
`

// packFloats encodes float64s little-endian for input_priv.
func packFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// RunClassifier classifies `images` private images and returns the
// measurement; per-image latency is Wall/images.
func RunClassifier(v confllvm.Variant, images int) (*Measurement, error) {
	wl := ClassifierWorkload(images)
	return wl.Run(v, nil)
}

// ---- Merkle integrity library (Fig. 8, §7.5) ----

// MerkleSrc is the multi-threaded integrity-protected read library: all
// file data is private, the hash tree is public, and hashes cross the
// boundary only through T's hash_declass declassifier.
const MerkleSrc = `
#define CHUNK 4096
extern long input(int idx);
extern void input_priv(int idx, private char *buf, int size);
extern void output(long v);
extern long hash_declass(private char *buf, int size);
extern void thread_spawn(void (*fn)(long), long arg);
extern private void *malloc_priv(long size);

long nchunks = 0;
long hashtree[2048];     /* public: leaf hashes + parents */
private char *filedata;
long perthread = 0;
long nthreads = 0;

void reader(long tid) {
	long c;
	long lo = tid * perthread;
	long hi = lo + perthread;
	for (c = lo; c < hi && c < nchunks; c++) {
		/* read the chunk (simulating the file read) and verify its
		 * hash against the public tree */
		long h = hash_declass(filedata + c * CHUNK, CHUNK);
		if (hashtree[c] != h) {
			output(-1);
			return;
		}
		/* touch the private data to model the actual read work */
		private char *p = filedata + c * CHUNK;
		long i;
		long acc = 0;
		for (i = 0; i < CHUNK; i += 8) acc += p[i];
		if (acc == 123456789) output(-2);
	}
}

int main() {
	long fsize = input(0);
	nthreads = input(1);
	nchunks = fsize / CHUNK;
	perthread = (nchunks + nthreads - 1) / nthreads;
	filedata = (private char*)malloc_priv(fsize);
	input_priv(0, filedata, (int)fsize);
	/* build the tree (leaf hashes) */
	long c;
	for (c = 0; c < nchunks; c++)
		hashtree[c] = hash_declass(filedata + c * CHUNK, CHUNK);
	/* parents: public computation in U */
	long base = nchunks;
	long w = nchunks;
	long off = 0;
	while (w > 1) {
		long i;
		for (i = 0; i + 1 < w; i += 2)
			hashtree[base + i / 2] = hashtree[off + i] * 31 + hashtree[off + i + 1];
		off = base;
		base = base + w / 2;
		w = w / 2;
	}
	long t;
	for (t = 0; t < nthreads; t++) thread_spawn(reader, t);
	output(1);
	return 0;
}
`

// RunMerkle reads a fileKB-kilobyte integrity-protected file with nThreads
// parallel readers.
func RunMerkle(v confllvm.Variant, fileKB, nThreads int) (*Measurement, error) {
	wl := MerkleWorkload(fileKB, nThreads)
	return wl.Run(v, nil)
}

var _ = trt.DefaultKey
