package bench

import (
	"runtime"
	"sync"

	"confllvm"
	"confllvm/internal/machine"
)

// Cell is one schedulable (figure, workload, variant) unit of a bench
// matrix. Every cell compiles (through the shared singleflight artifact
// cache) and runs on its own machine.Machine, so cells are independent:
// the simulated numbers (Wall, Stats, Outputs) are identical no matter
// how cells are scheduled. Only HostNS is scheduling-sensitive.
type Cell struct {
	// Figure and Row name the cell in tables and the JSON report.
	Figure string
	Row    string
	// Label distinguishes runs of the same workload under different
	// machine configs (the interp sweep's "stepwise"/"superblock"); empty
	// means the variant name labels the cell.
	Label    string
	Workload Workload
	Variant  confllvm.Variant
	// Conf is the machine configuration (nil = default cost model). It is
	// only read by the run, so cells may share one Config.
	Conf *machine.Config
	// Scale divides Wall for the table cell (cycles per request/query/
	// image); 0 means no scaling.
	Scale uint64
	// Serial pins the cell out of the worker pool: its host-time numbers
	// (MIPS) are the measurement, so it must not share the host with
	// concurrently running cells. Serial cells execute one at a time, in
	// input order, after the parallel lane has drained.
	Serial bool
	// Custom replaces the default Workload.Run execution when non-nil
	// (the faults figure runs supervised serving loops instead of single
	// machine runs). Custom cells still flow through the matrix scheduler
	// and the shared artifact cache; like ordinary cells, they must
	// produce identical simulated numbers under any scheduling.
	Custom func(*Cell) (*Measurement, error)
}

// CellResult pairs a cell with its measurement. Exactly one of M/Err is
// set. M.Res is nil: a matrix retains every cell's result until the
// caller assembles tables, and keeping each finished machine (its whole
// simulated address space) alive that long would make peak memory scale
// with the matrix size — consumers only need the scalar measurements.
type CellResult struct {
	Cell *Cell
	M    *Measurement
	Err  error
}

// RunMatrix executes every cell and returns results indexed exactly like
// cells, regardless of completion order — callers assemble tables and
// reports deterministically by iterating the slice. workers <= 0 selects
// GOMAXPROCS; workers == 1 reproduces the serial harness (modulo
// host-time noise, the results must be byte-identical — that invariant
// is tested under the race detector).
//
// Cells marked Serial are excluded from the pool and run sequentially on
// the calling goroutine after all parallel cells finish, so their HostNS
// reflects a quiet host. Their artifacts are still compiled in the pool
// first (compilation is not host-time-sensitive).
func RunMatrix(cells []Cell, workers int) []CellResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]CellResult, len(cells))

	runCell := func(i int) {
		c := &cells[i]
		var m *Measurement
		var err error
		if c.Custom != nil {
			m, err = c.Custom(c)
		} else {
			m, err = c.Workload.Run(c.Variant, c.Conf)
		}
		if m != nil {
			m.Res = nil // release the machine; see CellResult
		}
		results[i] = CellResult{Cell: c, M: m, Err: err}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if cells[i].Serial {
					// Warm the artifact cache only; the measured run
					// happens in the serial lane below.
					c := &cells[i]
					_, _ = CompileCached(c.Workload.Key, c.Variant, c.Workload.Prog(c.Variant))
					continue
				}
				runCell(i)
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i := range cells {
		if cells[i].Serial {
			runCell(i)
		}
	}
	return results
}
