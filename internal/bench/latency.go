package bench

import (
	"fmt"
	"time"

	"confllvm"
	"confllvm/internal/machine"
	"confllvm/internal/obs"
	"confllvm/internal/scenario"
)

// LatencyReport is the outcome of one open-loop latency run: the
// serving program's per-request service times (measured at the trusted
// recv boundary in simulated cycles) pushed through a deterministic
// FIFO queue fed by a seeded arrival process. Every field is a
// simulated quantity — byte-identical across dispatch modes, matrix
// scheduling and -parallel settings.
type LatencyReport struct {
	// Requests is the number of served requests (= recv calls).
	Requests uint64 `json:"requests"`
	// Kind/MeanGap echo the arrival process (cycles).
	Kind    string `json:"kind"`
	MeanGap uint64 `json:"mean_gap_cycles"`
	// OfferedRPS is the empirical offered load: requests per simulated
	// second at SimClockHz over the arrival span.
	OfferedRPS uint64 `json:"offered_rps"`
	// SvcMean is the mean per-request service time in cycles; the
	// server saturates when MeanGap < SvcMean.
	SvcMean uint64 `json:"svc_mean_cycles"`
	// Latency quantiles in simulated cycles (queueing + service).
	P50 uint64 `json:"p50_cycles"`
	P95 uint64 `json:"p95_cycles"`
	P99 uint64 `json:"p99_cycles"`
	Max uint64 `json:"max_cycles"`
	// MaxQueue is the high-watermark queue depth (arrived, not done).
	MaxQueue uint64 `json:"max_queue"`
	// Registry holds the run's full metric set (latency and per-handler
	// histograms, counters, queue gauge); registries from many cells
	// merge commutatively for the figure's aggregate line.
	Registry *obs.Registry `json:"-"`
}

// RunLatency serves one scenario spec under an open-loop arrival
// process. The serving run itself is closed-loop (the simulated server
// consumes the wire back to back); per-request service times are
// recovered from the trusted recv boundary — request i's service is
// the cycle distance between consecutive recv dispatches — and a FIFO
// single-server queue simulation replays those services against the
// arrival timestamps. tracer, when non-nil, receives one span tree per
// request (req → queue/service children).
func RunLatency(spec scenario.Spec, arr scenario.Arrival, v confllvm.Variant,
	conf *machine.Config, tracer *obs.Tracer) (*Measurement, error) {
	wl := ScenarioWorkload(spec)
	art, err := CompileCached(wl.Key, v, wl.Prog(v))
	if err != nil {
		return nil, err
	}
	w := wl.World()
	reqs := len(w.NetIn)
	reg := obs.NewRegistry()
	var recv []uint64
	w.Observe = func(name string, start, end uint64) {
		reg.Counter("trusted-calls", 1)
		reg.Hist("handler:" + name).Observe(end - start)
		if name == "recv" {
			recv = append(recv, start)
		}
	}
	start := time.Now()
	res, err := confllvm.Run(art, w, conf)
	if err != nil {
		return nil, err
	}
	hostNS := time.Since(start).Nanoseconds()
	if res.Fault != nil {
		return nil, fmt.Errorf("%s [%v]: %v", wl.Name, v, res.Fault)
	}
	if wl.Check != nil {
		if err := wl.Check(res); err != nil {
			return nil, fmt.Errorf("%s [%v]: %w", wl.Name, v, err)
		}
	}
	if len(res.Machine.Threads) != 1 {
		return nil, fmt.Errorf("%s: latency model needs a single serving thread, got %d",
			wl.Name, len(res.Machine.Threads))
	}
	n := len(recv)
	if n == 0 || n != reqs {
		return nil, fmt.Errorf("%s: observed %d recv dispatches for %d wire packets",
			wl.Name, n, reqs)
	}

	// Per-request service times at the recv boundary: the distance from
	// one recv dispatch to the next covers request i's full processing;
	// the final request runs to the thread's last cycle.
	svc := make([]uint64, n)
	for i := 0; i < n-1; i++ {
		svc[i] = recv[i+1] - recv[i]
	}
	svc[n-1] = res.Stats.Cycles - recv[n-1]
	for _, s := range svc {
		reg.Hist("service").Observe(s)
	}

	// FIFO single-server queue: request i starts at max(arrival_i,
	// done_{i-1}) and completes svc[i] later. Integer-only, so the
	// queue walk is as deterministic as the arrival stream feeding it.
	arrivals, err := arr.Times(n)
	if err != nil {
		return nil, err
	}
	done := make([]uint64, n)
	var prevDone, maxQ uint64
	dp := 0
	for i, a := range arrivals {
		s := a
		if prevDone > s {
			s = prevDone
		}
		d := s + svc[i]
		done[i] = d
		prevDone = d
		// Queue depth at the arrival instant, counting the arriver:
		// requests that arrived earlier and have not completed. done[]
		// is nondecreasing (FIFO), so a single pointer suffices.
		for dp < i && done[dp] <= a {
			dp++
		}
		depth := uint64(i - dp + 1)
		if depth > maxQ {
			maxQ = depth
		}
		reg.Gauge("queue-depth", depth)
		reg.Hist("latency").Observe(d - a)
		if tracer != nil {
			req := tracer.Span("req", 0, a, d)
			if s > a {
				tracer.Span("queue", req, a, s)
			}
			tracer.Span("service", req, s, d)
		}
	}

	lat := reg.Hist("latency")
	rep := &LatencyReport{
		Requests: uint64(n),
		Kind:     arr.Kind, MeanGap: arr.MeanGap,
		OfferedRPS: ReqsPerSec(uint64(n), arrivals[n-1]),
		SvcMean:    reg.Hist("service").Mean(),
		P50:        lat.Quantile(50), P95: lat.Quantile(95), P99: lat.Quantile(99),
		Max: lat.Max, MaxQueue: maxQ,
		Registry: reg,
	}
	m := &Measurement{Variant: v, Wall: res.WallCycles, Stats: res.Stats,
		Outputs: res.Outputs, HostNS: hostNS, Latency: rep}
	if res.Profile != nil {
		m.Profile = obs.FlattenProfile(res.Profile, art.Image)
	}
	return m, nil
}

// LatencySweep is one row of the latency figure: a traffic spec served
// under one arrival process.
type LatencySweep struct {
	Row  string
	Spec scenario.Spec
	Arr  scenario.Arrival
}

// latencyGaps are the mean inter-arrival gaps of the sweep in cycles.
// The KV service time is ~600-850 cycles per request (shorter grids
// serve pricier requests), so the three gaps put the queue in light
// load (<10% utilization), heavy load (60-85%) and overload (the
// offered rate exceeds the ~2 GHz service rate) — the classic
// latency-vs-load knee, with the overload row showing queue growth.
var latencyGaps = []uint64{8192, 1024, 512}

// LatencyGrid builds the latency figure's sweep: the KV scenario under
// uniform, Poisson and bursty arrivals at each gap. Every arrival seed
// derives from the base seed and the row coordinates, so rows never
// share a stream yet the grid is a pure function of seed.
func LatencyGrid(short bool, seed uint64) []LatencySweep {
	spec := scenario.DefaultKV(short)
	var sweeps []LatencySweep
	for ki, kind := range []string{scenario.ArrivalUniform, scenario.ArrivalPoisson, scenario.ArrivalBursty} {
		for gi, gap := range latencyGaps {
			sweeps = append(sweeps, LatencySweep{
				Row:  fmt.Sprintf("%s-%s-g%d", spec.Name, kind, gap),
				Spec: spec,
				Arr: scenario.Arrival{
					Kind:    kind,
					Seed:    scenario.MixSeed(seed, 0x1a7e, uint64(ki), uint64(gi)),
					MeanGap: gap,
				},
			})
		}
	}
	return sweeps
}

// LatencyCells expands a latency sweep into matrix cells, one per row.
// Like the scenario cells these are simulated quantities with no
// Serial pinning: the figure is byte-identical under any scheduling.
func LatencyCells(figure string, sweeps []LatencySweep, v confllvm.Variant, conf *machine.Config) []Cell {
	var cells []Cell
	for _, sw := range sweeps {
		sw := sw
		cells = append(cells, Cell{
			Figure:   figure,
			Row:      sw.Row,
			Workload: ScenarioWorkload(sw.Spec),
			Variant:  v,
			Conf:     conf,
			Scale:    uint64(sw.Spec.TotalRequests()),
			Custom: func(c *Cell) (*Measurement, error) {
				return RunLatency(sw.Spec, sw.Arr, c.Variant, c.Conf, nil)
			},
		})
	}
	return cells
}
