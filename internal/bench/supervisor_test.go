package bench

import (
	"reflect"
	"strings"
	"testing"

	"confllvm"
	"confllvm/internal/asm"
	"confllvm/internal/machine"
	"confllvm/internal/scenario"
)

// tamperOpcode is the byte planted on main's entry in the gate test.
const tamperOpcode = byte(asm.OpSyscall)

// superviseKV runs the short KV scenario under a supervisor with the
// given fault rate and machine config.
func superviseKV(t *testing.T, rate uint64, mconf *machine.Config) *ServeReport {
	t.Helper()
	spec := scenario.DefaultKV(true)
	wl := KVWorkload(spec)
	wire, _, err := scenario.Traffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultFaultPolicy(1234, rate)
	rep, err := Supervise(wl.Key, wl.Prog(confllvm.VariantMPX), confllvm.VariantMPX, wire, mconf, pol)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	return rep
}

// TestSupervisedServingCleanRun: at fault rate zero the supervisor is
// transparent — every request served across the planned recycling
// epochs, no restarts, no backoff.
func TestSupervisedServingCleanRun(t *testing.T) {
	rep := superviseKV(t, 0, nil)
	batch := DefaultFaultPolicy(0, 0).BatchRequests
	wantEpochs := (rep.Total + batch - 1) / batch
	if rep.Served != rep.Total || rep.Restarts != 0 || rep.Epochs != wantEpochs || rep.BackoffCycles != 0 {
		t.Fatalf("clean run not transparent (want %d epochs): %+v", wantEpochs, rep)
	}
	if rep.AvailabilityPct() != 100 {
		t.Fatalf("availability = %v, want 100", rep.AvailabilityPct())
	}
}

// TestSupervisedServingDegradesGracefully: at a heavy fault rate the
// supervisor keeps serving (availability strictly between 0 and 100),
// restarts with populated recovery latencies, and accounts for every
// request exactly once.
func TestSupervisedServingDegradesGracefully(t *testing.T) {
	rep := superviseKV(t, 400, nil)
	avail := rep.AvailabilityPct()
	if avail <= 0 || avail >= 100 {
		t.Fatalf("availability = %v, want 0 < a < 100 (%+v)", avail, rep)
	}
	if rep.Restarts == 0 || len(rep.Recoveries) == 0 || rep.RecoveryMean() == 0 {
		t.Fatalf("faults injected but no recoveries recorded: %+v", rep)
	}
	if got := rep.Served + rep.Rejected + rep.Shed; got != rep.Total {
		t.Fatalf("request accounting leak: served %d + rejected %d + shed %d != total %d",
			rep.Served, rep.Rejected, rep.Shed, rep.Total)
	}
	if rep.ServedPerSec() == 0 {
		t.Fatalf("throughput column empty: %+v", rep)
	}
}

// TestSupervisedServingModeInvariant: the ServeReport is a simulated
// quantity — byte-identical across per-instruction stepping, superblock
// dispatch, and direct chaining, and across repeated runs.
func TestSupervisedServingModeInvariant(t *testing.T) {
	step := machine.DefaultConfig()
	step.Superblocks = false
	blocks := machine.DefaultConfig()
	blocks.Superblocks = true
	blocks.Chain = false
	chained := machine.DefaultConfig()
	chained.Superblocks = true
	chained.Chain = true

	ref := superviseKV(t, 300, &step)
	for name, mc := range map[string]*machine.Config{
		"superblocks": &blocks, "chained": &chained, "stepping-again": &step,
	} {
		if got := superviseKV(t, 300, mc); !reflect.DeepEqual(ref, got) {
			t.Errorf("%s diverged from stepping:\n  ref %+v\n  got %+v", name, ref, got)
		}
	}
}

// TestSupervisorVerifyGateCountsTampering: with tampering forced every
// epoch, the gate rejects the tampered image every time and serving
// still completes.
func TestSupervisorVerifyGateCountsTampering(t *testing.T) {
	spec := scenario.DefaultKV(true)
	wl := KVWorkload(spec)
	wire, _, err := scenario.Traffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultFaultPolicy(1, 0)
	pol.Injector.TamperPermille = 1000
	rep, err := Supervise(wl.Key, wl.Prog(confllvm.VariantMPX), confllvm.VariantMPX, wire, nil, pol)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	if rep.VerifyRejections != rep.Epochs || rep.VerifyRejections == 0 {
		t.Fatalf("want one gate rejection per epoch, got %d/%d", rep.VerifyRejections, rep.Epochs)
	}
	if rep.Served != rep.Total {
		t.Fatalf("gate rejections must not cost availability: %+v", rep)
	}
}

// TestTamperedBinaryNeverExecutes is the load-gate acceptance test: a
// compiler that emits a tampered binary is stopped at CompileCached's
// verify-before-load gate — the binary is rejected before any machine is
// built, so it never executes. Running the same tampered image with the
// gate bypassed demonstrates what the gate prevented: the planted
// syscall faults at first execution.
func TestTamperedBinaryNeverExecutes(t *testing.T) {
	spec := scenario.DefaultKV(true)
	wl := KVWorkload(spec)
	prog := wl.Prog(confllvm.VariantMPX)

	orig := compileFn
	defer func() { compileFn = orig }()
	var tampered *confllvm.Artifact
	compileFn = func(p confllvm.Program, v confllvm.Variant) (*confllvm.Artifact, error) {
		art, err := confllvm.Compile(p, v)
		if err != nil {
			return nil, err
		}
		// Plant a syscall on main's entry instruction — always reachable,
		// so the verifier must flag it and execution must trip on it.
		img := art.Image
		code := append([]byte(nil), img.Code...)
		code[img.Func("main").Entry-img.Layout.CodeBase] = tamperOpcode
		mut := *img
		mut.Code = code
		art.Image = &mut
		tampered = art
		return art, nil
	}

	// Unique key: must not collide with the shared artifact cache.
	_, err := CompileCached("kv-tampered-gate", confllvm.VariantMPX, prog)
	if err == nil || !strings.Contains(err.Error(), "verify-before-load") {
		t.Fatalf("gate did not reject tampered binary: %v", err)
	}

	// The whole supervised path refuses it too — no machine runs.
	wire, _, _ := scenario.Traffic(spec)
	if _, err := Supervise("kv-tampered-gate", prog, confllvm.VariantMPX, wire, nil,
		DefaultFaultPolicy(1, 0)); err == nil {
		t.Fatal("Supervise executed a tampered binary")
	}

	// What the gate prevented: executed anyway, the tampering faults.
	w := confllvm.NewWorld()
	w.Params = []int64{int64(len(wire))}
	w.NetIn = wire
	res, err := confllvm.Run(tampered, w, nil)
	if err != nil {
		t.Fatalf("bypass run: %v", err)
	}
	if res.Fault == nil {
		t.Fatal("tampered binary ran to completion — tampering was not execution-visible")
	}
}
