package bench

import (
	"runtime"
	"testing"

	"confllvm"
	"confllvm/internal/scenario"
)

// TestVerifyCells runs one verify-figure cell per deployable scheme on
// the short KV workload and pins the figure's hard guarantees: the
// deterministic counters are identical across repeated measurements, and
// every seeded mutant is killed by contract.
func TestVerifyCells(t *testing.T) {
	wl := KVWorkload(scenario.DefaultKV(true))
	cells := VerifyCells("verify", []Workload{wl},
		[]confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg}, 0x5eedbeef)
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, res := range RunMatrix(cells, 1) {
		if res.Err != nil {
			t.Fatalf("[%s %v] %v", res.Cell.Row, res.Cell.Variant, res.Err)
		}
		rep := res.M.Verify
		if rep == nil {
			t.Fatalf("[%s %v] no verify report", res.Cell.Row, res.Cell.Variant)
		}
		if rep.Funcs == 0 || rep.Stubs == 0 || rep.Insts == 0 || rep.CodeBytes == 0 {
			t.Errorf("[%v] implausible counters: %+v", res.Cell.Variant, rep)
		}
		if rep.MutantsTried == 0 || rep.MutantsKilled != rep.MutantsTried {
			t.Errorf("[%v] mutation kill rate %d/%d, want 100%%",
				res.Cell.Variant, rep.MutantsKilled, rep.MutantsTried)
		}
		if rep.SerialNS <= 0 || rep.ParallelNS <= 0 || rep.CachedNS <= 0 {
			t.Errorf("[%v] untimed lanes: %+v", res.Cell.Variant, rep)
		}
		if rep.FuncsPerSec() <= 0 || rep.InstsPerSec() <= 0 {
			t.Errorf("[%v] zero throughput: %+v", res.Cell.Variant, rep)
		}
		// The acceptance criterion's speedup assertion only holds with real
		// parallel hardware; on a single-core host the figure still reports
		// the (≈1.0) ratio.
		if runtime.NumCPU() > 1 && rep.Workers > 1 && rep.Speedup() <= 0 {
			t.Errorf("[%v] speedup %v not positive", res.Cell.Variant, rep.Speedup())
		}

		// The deterministic part of the report must reproduce exactly.
		again, err := verifyCell(wl, res.Cell.Variant, 0x5eedbeef)
		if err != nil {
			t.Fatalf("[%v] re-measure: %v", res.Cell.Variant, err)
		}
		if again.Funcs != rep.Funcs || again.Stubs != rep.Stubs ||
			again.Insts != rep.Insts || again.CodeBytes != rep.CodeBytes ||
			again.MutantsTried != rep.MutantsTried || again.MutantsKilled != rep.MutantsKilled {
			t.Errorf("[%v] deterministic counters drifted: %+v vs %+v",
				res.Cell.Variant, again, rep)
		}
	}
}
