// Package loader maps a linked image into a fresh machine, populates the
// externals table with trusted-runtime handler addresses, initializes the
// MPX bound registers / segment registers per thread, and sets up the
// per-thread stacks (§6's "Loading the U and T dlls").
package loader

import (
	"encoding/binary"
	"fmt"

	"confllvm/internal/asm"
	"confllvm/internal/codegen"
	"confllvm/internal/link"
	"confllvm/internal/machine"
)

// TCanary is written into T's data region at load time; exploit tests
// assert that U can never read or overwrite it.
var TCanary = []byte("T-REGION-SECRET-CANARY-0123456789")

// HandlerAddr returns the dispatch address of externals-table slot i: the
// T-region PC the machine traps to the i-th trusted handler at. Exported
// so the observability plane (internal/obs) can symbolize profile PCs
// back to handler names with the same formula Load binds them by.
func HandlerAddr(l link.Layout, i int) uint64 {
	return l.TBase + 0x10000 + uint64(i)*0x100
}

// Load builds a machine, maps all regions, installs the image and binds
// the externals table to the given trusted handlers.
func Load(img *link.Image, handlers map[string]machine.Handler, mconf machine.Config) (*machine.Machine, error) {
	m := machine.New(mconf)
	l := img.Layout

	codeSize := (uint64(len(img.Code)) + 4095) &^ 4095
	if _, err := m.Mem.Map("u-code", l.CodeBase, codeSize, machine.PermR|machine.PermX); err != nil {
		return nil, err
	}
	if _, err := m.Mem.Map("u-public", l.PubBase, l.UsableSize, machine.PermR|machine.PermW); err != nil {
		return nil, err
	}
	if _, err := m.Mem.Map("u-private", l.PrivBase, l.UsableSize, machine.PermR|machine.PermW); err != nil {
		return nil, err
	}
	if _, err := m.Mem.Map("t-region", l.TBase, l.TSize, machine.PermR|machine.PermW); err != nil {
		return nil, err
	}
	// The externals table is read-only: U's stubs jump through it, so U
	// must never be able to rewrite it.
	tblSize := (uint64(8*len(img.Externals)) + 4095) &^ 4095
	if tblSize == 0 {
		tblSize = 4096
	}
	if _, err := m.Mem.Map("u-ext-table", l.ExtTableBase(), tblSize, machine.PermR); err != nil {
		return nil, err
	}

	if f := m.Mem.WriteBytesUnchecked(l.CodeBase, img.Code); f != nil {
		return nil, f
	}
	if f := m.Mem.WriteBytesUnchecked(l.PubBase, img.PubData); f != nil {
		return nil, f
	}
	if f := m.Mem.WriteBytesUnchecked(l.PrivBase, img.PrivData); f != nil {
		return nil, f
	}
	if f := m.Mem.WriteBytesUnchecked(l.TBase+64, TCanary); f != nil {
		return nil, f
	}

	// Bind externals: handler i lives at a distinct address in T; the
	// table slot holds that address and the machine dispatches to the Go
	// handler when pc reaches it.
	for i, name := range img.Externals {
		h, ok := handlers[name]
		if !ok {
			return nil, fmt.Errorf("loader: no trusted handler for extern %q", name)
		}
		addr := HandlerAddr(l, i)
		m.Handlers[addr] = h
		var slot [8]byte
		binary.LittleEndian.PutUint64(slot[:], addr)
		if f := m.Mem.WriteBytesUnchecked(img.ExternalSlotAddr(i), slot[:]); f != nil {
			return nil, f
		}
	}
	// Register the code region for decode tracing now that every image
	// byte is in place (unchecked writes flush existing traces, so this
	// must come last). Decode itself stays lazy, per PC.
	if f := m.RegisterCode(l.CodeBase); f != nil {
		return nil, f
	}
	return m, nil
}

// FuncByPtr resolves a function-pointer value (as produced by RelFuncPtr)
// back to its symbol.
func FuncByPtr(img *link.Image, ptr uint64) *link.FuncSym {
	for _, f := range img.Funcs {
		if f.Ptr(img.Config.CFI) == ptr {
			return f
		}
	}
	return nil
}

// SpawnThread creates a machine thread running fn(arg). The thread gets
// the next stack slot in both regions; its return lands on the exit shim
// matching fn's return taint.
func SpawnThread(m *machine.Machine, img *link.Image, fn *link.FuncSym, arg uint64) (*machine.Thread, error) {
	l := img.Layout
	tid := len(m.Threads)
	if uint64(tid+1)*l.ThreadStack > l.StackArea {
		return nil, fmt.Errorf("loader: out of stack area for thread %d", tid)
	}
	lo, hi := l.StackBounds(l.PubBase, tid)
	rsp := hi - 64 // small top pad, keeps pushes inside the stack

	t := m.NewThread(fn.Entry, rsp, lo, hi)
	t.FS = l.PubBase
	t.GS = l.PrivBase
	t.Bnd[asm.BND0] = machine.BndRange{Lo: l.PubBase, Hi: l.PubBase + l.UsableSize - 1}
	if img.Config.SeparateStacks || img.Config.IgnoreTaint {
		t.Bnd[asm.BND1] = machine.BndRange{Lo: l.PrivBase, Hi: l.PrivBase + l.UsableSize - 1}
	} else {
		// Single-stack ablation: private stack data lives in the public
		// region, so the private bound covers all of U's memory.
		t.Bnd[asm.BND1] = machine.BndRange{Lo: l.PubBase, Hi: l.PrivBase + l.UsableSize - 1}
	}
	t.Regs[asm.ArgRegs[0]] = arg

	// Push the return address: the exit shim matching fn's return taint.
	if f := t.Push(img.ExitShim[fn.RetBit&1]); f != nil {
		return nil, f
	}
	return t, nil
}

// Start spawns the main thread.
func Start(m *machine.Machine, img *link.Image) (*machine.Thread, error) {
	main := img.Func("main")
	if main == nil {
		return nil, fmt.Errorf("loader: image has no main")
	}
	return SpawnThread(m, img, main, 0)
}

// BndFor returns the MPX bound register index for a region taint (used by
// tests and the verifier's documentation).
func BndFor(private bool) asm.Bnd {
	if private {
		return asm.BND1
	}
	return asm.BND0
}

var _ = codegen.Config{}
