// First unit tests for the loader: the region layout and permissions the
// machine's decode-trace cache and page TLB key on, the externals-table
// binding, and the per-thread stack/bound/segment initialization.
package loader_test

import (
	"bytes"
	"testing"

	"confllvm"
	"confllvm/internal/asm"
	"confllvm/internal/loader"
	"confllvm/internal/machine"
)

const tinySrc = `
extern void output(long v);

int main() {
	output(42);
	return 0;
}
`

func compile(t *testing.T, v confllvm.Variant) *confllvm.Artifact {
	t.Helper()
	art, err := confllvm.Compile(confllvm.Program{
		Sources: []confllvm.Source{{Name: "tiny.c", Code: tinySrc}},
	}, v)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// load maps the artifact with inert handlers (the tests never Run).
func load(t *testing.T, art *confllvm.Artifact) *machine.Machine {
	t.Helper()
	handlers := map[string]machine.Handler{}
	for _, name := range art.Image.Externals {
		handlers[name] = func(m *machine.Machine, th *machine.Thread) *machine.Fault { return nil }
	}
	m, err := loader.Load(art.Image, handlers, machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRegionLayout: the mapped regions must match the image layout with
// the permissions the paper's scheme requires — executable code is never
// writable, the externals table is read-only, data regions are never
// executable.
func TestRegionLayout(t *testing.T) {
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
		art := compile(t, v)
		m := load(t, art)
		l := art.Image.Layout

		want := map[string]struct {
			lo   uint64
			perm machine.Perm
		}{
			"u-code":      {l.CodeBase, machine.PermR | machine.PermX},
			"u-public":    {l.PubBase, machine.PermR | machine.PermW},
			"u-private":   {l.PrivBase, machine.PermR | machine.PermW},
			"t-region":    {l.TBase, machine.PermR | machine.PermW},
			"u-ext-table": {l.ExtTableBase(), machine.PermR},
		}
		regions := m.Mem.Regions()
		if len(regions) != len(want) {
			t.Fatalf("[%v] %d regions mapped, want %d", v, len(regions), len(want))
		}
		for _, r := range regions {
			w, ok := want[r.Name]
			if !ok {
				t.Errorf("[%v] unexpected region %q", v, r.Name)
				continue
			}
			if r.Lo != w.lo || r.Perm != w.perm {
				t.Errorf("[%v] region %q at %#x perm %v, want %#x perm %v",
					v, r.Name, r.Lo, r.Perm, w.lo, w.perm)
			}
		}

		// The layout invariants the trace cache and the bounds schemes
		// rely on: both data regions share internal offsets, and under
		// the segmentation scheme the regions are 4 GB-aligned.
		if l.PrivBase-l.PubBase != uint64(l.Offset()) {
			t.Errorf("[%v] OFFSET mismatch", v)
		}
		if v == confllvm.VariantSeg && (l.PubBase%(4<<30) != 0 || l.PrivBase%(4<<30) != 0) {
			t.Errorf("[%v] segment bases not 4 GB-aligned: %#x %#x", v, l.PubBase, l.PrivBase)
		}

		// Code must be installed and immutable: a checked write faults.
		if f := m.Mem.Write(l.CodeBase, 8, 0); f == nil || f.Kind != machine.FaultPerm {
			t.Errorf("[%v] write to code region: %v, want perm fault", v, f)
		}
		head := make([]byte, 16)
		if f := m.Mem.ReadBytes(l.CodeBase, head); f != nil {
			t.Errorf("[%v] code not readable: %v", v, f)
		}
		if !bytes.Equal(head, art.Image.Code[:16]) {
			t.Errorf("[%v] code bytes not installed", v)
		}

		// The guard hole between the regions faults.
		if f := m.Mem.Write(l.PubBase+l.UsableSize+4096, 8, 1); f == nil || f.Kind != machine.FaultUnmapped {
			t.Errorf("[%v] guard-space write: %v, want unmapped fault", v, f)
		}

		// The T canary is in place (exploit tests assert U can't reach it).
		canary := make([]byte, len(loader.TCanary))
		if f := m.Mem.ReadBytes(l.TBase+64, canary); f != nil || !bytes.Equal(canary, loader.TCanary) {
			t.Errorf("[%v] T canary not installed (%v)", v, f)
		}
	}
}

// TestExternalsBinding: each extern resolves to a handler address inside
// the T region, the read-only table slot holds that address, and the
// machine dispatches at it.
func TestExternalsBinding(t *testing.T) {
	art := compile(t, confllvm.VariantMPX)
	m := load(t, art)
	img := art.Image
	l := img.Layout
	if len(img.Externals) == 0 {
		t.Fatal("tiny program has no externals")
	}
	for i := range img.Externals {
		slot, f := m.Mem.Read(img.ExternalSlotAddr(i), 8)
		if f != nil {
			t.Fatalf("slot %d unreadable: %v", i, f)
		}
		if slot < l.TBase || slot >= l.TBase+l.TSize {
			t.Errorf("extern %d handler address %#x outside the T region", i, slot)
		}
		if m.Handlers[slot] == nil {
			t.Errorf("extern %d: no machine handler at %#x", i, slot)
		}
	}
	// Missing handlers must be a load-time error, not a runtime surprise.
	if _, err := loader.Load(img, map[string]machine.Handler{}, machine.DefaultConfig()); err == nil {
		t.Error("Load succeeded with no handlers for the image's externals")
	}
}

// TestSpawnThreadState: thread initialization per variant — segment
// bases, MPX bound ranges (split vs single-stack ablation), stack bounds
// marching down per thread, and exhaustion of the stack area.
func TestSpawnThreadState(t *testing.T) {
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantMPXSep} {
		art := compile(t, v)
		m := load(t, art)
		img := art.Image
		l := img.Layout

		t0, err := loader.Start(m, img)
		if err != nil {
			t.Fatal(err)
		}
		if t0.FS != l.PubBase || t0.GS != l.PrivBase {
			t.Errorf("[%v] segment bases fs=%#x gs=%#x", v, t0.FS, t0.GS)
		}
		wantB0 := machine.BndRange{Lo: l.PubBase, Hi: l.PubBase + l.UsableSize - 1}
		if t0.Bnd[asm.BND0] != wantB0 {
			t.Errorf("[%v] bnd0 = %+v, want %+v", v, t0.Bnd[asm.BND0], wantB0)
		}
		b1 := t0.Bnd[asm.BND1]
		if img.Config.SeparateStacks {
			if b1.Lo != l.PrivBase {
				t.Errorf("[%v] split stacks: bnd1.lo = %#x, want %#x", v, b1.Lo, l.PrivBase)
			}
		} else {
			// Single-stack ablation: the private bound covers all of U.
			if b1.Lo != l.PubBase {
				t.Errorf("[%v] single stack: bnd1.lo = %#x, want %#x", v, b1.Lo, l.PubBase)
			}
		}

		lo, hi := l.StackBounds(l.PubBase, 0)
		if t0.StackLo != lo || t0.StackHi != hi {
			t.Errorf("[%v] thread 0 stack [%#x,%#x], want [%#x,%#x]", v, t0.StackLo, t0.StackHi, lo, hi)
		}
		if t0.Regs[asm.RSP] >= hi || t0.Regs[asm.RSP] < lo {
			t.Errorf("[%v] rsp %#x outside its stack", v, t0.Regs[asm.RSP])
		}

		// Each spawn takes the next slot down; the area is finite.
		main := img.Func("main")
		prev := t0.StackHi
		spawned := 1
		for {
			th, err := loader.SpawnThread(m, img, main, 0)
			if err != nil {
				break
			}
			if th.StackHi >= prev {
				t.Errorf("[%v] thread %d stack does not march down (%#x >= %#x)",
					v, spawned, th.StackHi, prev)
			}
			prev = th.StackHi
			spawned++
			if spawned > 64 {
				t.Fatalf("[%v] stack area never exhausted", v)
			}
		}
		if want := int(l.StackArea / l.ThreadStack); spawned != want {
			t.Errorf("[%v] spawned %d threads before exhaustion, want %d", v, spawned, want)
		}
	}
}
