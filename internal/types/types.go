// Package types implements ConfLLVM's qualified C type system: every type
// carries a confidentiality qualifier (public or private), and qualifiers
// may be inference variables that the taint solver resolves.
//
// The qualifier conventions follow the paper (§5.1):
//
//   - `private int x`          — the int is private;
//   - `private int *p`         — a *public* pointer to a private int;
//   - struct/union fields inherit their *outermost* qualifier from the
//     struct-typed variable, so every object is laid out entirely in one
//     region.
package types

import (
	"fmt"
	"strings"
)

// Qual is a confidentiality qualifier term. Non-negative values are
// inference-variable indices; the two negative constants are the concrete
// lattice points.
type Qual int32

const (
	// Public is the low (L) lattice point: data that may flow anywhere.
	Public Qual = -1
	// Private is the high (H) lattice point: data confined to the
	// private region.
	Private Qual = -2
)

// IsVar reports whether q is an inference variable.
func (q Qual) IsVar() bool { return q >= 0 }

func (q Qual) String() string {
	switch q {
	case Public:
		return "public"
	case Private:
		return "private"
	}
	return fmt.Sprintf("q%d", int32(q))
}

// Kind discriminates types.
type Kind uint8

const (
	Void   Kind = iota
	Int         // integer of Size bytes, Signed or not
	Float       // float64 ("double")
	Ptr         // pointer to Elem
	Array       // Len elements of Elem
	Struct      // record with Fields
	Union       // overlay with Fields
	Func        // function type (only behind pointers or as decl type)
)

// Field is a struct or union member.
type Field struct {
	Name   string
	Type   *Type
	Offset int // byte offset (0 for union members)
}

// FuncSig is a function signature.
type FuncSig struct {
	Params   []*Type
	Ret      *Type
	Variadic bool
}

// Type is a qualified C type. Types are treated as immutable after
// construction; use Clone/WithQual to derive variants.
type Type struct {
	Kind   Kind
	Qual   Qual // qualifier of values of this type
	Size   int  // Int: 1/2/4/8
	Signed bool
	Elem   *Type   // Ptr, Array
	Len    int     // Array
	Name   string  // Struct/Union tag
	Fields []Field // Struct/Union
	Sig    *FuncSig
	size   int // cached layout size for records
	align  int
}

// Constructors.

// MakeVoid returns the void type.
func MakeVoid() *Type { return &Type{Kind: Void, Qual: Public} }

// MakeInt returns an integer type of the given width.
func MakeInt(size int, signed bool, q Qual) *Type {
	return &Type{Kind: Int, Size: size, Signed: signed, Qual: q}
}

// MakeFloat returns the double type.
func MakeFloat(q Qual) *Type { return &Type{Kind: Float, Size: 8, Qual: q} }

// MakePtr returns a pointer type. The pointer value's own qualifier is q;
// the region it must point into is determined by elem.Qual.
func MakePtr(elem *Type, q Qual) *Type { return &Type{Kind: Ptr, Elem: elem, Qual: q} }

// MakeArray returns an array type. The array's qualifier is its element's
// outermost qualifier (objects are uniform).
func MakeArray(elem *Type, n int) *Type {
	return &Type{Kind: Array, Elem: elem, Len: n, Qual: elem.Qual}
}

// MakeFunc returns a function type.
func MakeFunc(sig *FuncSig) *Type { return &Type{Kind: Func, Sig: sig, Qual: Public} }

// Clone returns a shallow copy of t.
func (t *Type) Clone() *Type {
	c := *t
	return &c
}

// WithQual returns a copy of t whose outermost qualifier is q. For arrays
// the element qualifier is rewritten too (objects are uniform); for
// structs/unions the qualifier applies to all fields' outermost level at
// access time (see FieldType).
func (t *Type) WithQual(q Qual) *Type {
	c := t.Clone()
	c.Qual = q
	if t.Kind == Array {
		c.Elem = t.Elem.WithQual(q)
	}
	return c
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool { return t != nil && t.Kind == Int }

// IsScalar reports whether t is integer, float or pointer.
func (t *Type) IsScalar() bool {
	return t != nil && (t.Kind == Int || t.Kind == Float || t.Kind == Ptr)
}

// IsRecord reports whether t is a struct or union.
func (t *Type) IsRecord() bool { return t != nil && (t.Kind == Struct || t.Kind == Union) }

// FieldType returns the type of the named field as seen through a value of
// this record type: the field's outermost qualifier is inherited from the
// record's qualifier (the paper's uniform-object rule). It returns nil if
// the field does not exist.
func (t *Type) FieldType(name string) (*Type, int) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type.WithQual(t.Qual), f.Offset
		}
	}
	return nil, 0
}

// Align returns the alignment of t in bytes.
func (t *Type) Align() int {
	switch t.Kind {
	case Int:
		return t.Size
	case Float, Ptr, Func:
		return 8
	case Array:
		return t.Elem.Align()
	case Struct, Union:
		if t.align == 0 {
			t.layout()
		}
		return t.align
	}
	return 1
}

// SizeOf returns the size of t in bytes (pointers are 8).
func (t *Type) SizeOf() int {
	switch t.Kind {
	case Void:
		return 0
	case Int:
		return t.Size
	case Float:
		return 8
	case Ptr, Func:
		return 8
	case Array:
		return t.Elem.SizeOf() * t.Len
	case Struct, Union:
		if t.size == 0 {
			t.layout()
		}
		return t.size
	}
	return 0
}

func align(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// layout assigns field offsets and computes size/alignment for records.
func (t *Type) layout() {
	maxAlign := 1
	off := 0
	size := 0
	for i := range t.Fields {
		f := &t.Fields[i]
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		if t.Kind == Struct {
			off = align(off, a)
			f.Offset = off
			off += f.Type.SizeOf()
		} else { // Union: all fields at offset 0
			f.Offset = 0
			if s := f.Type.SizeOf(); s > size {
				size = s
			}
		}
	}
	if t.Kind == Struct {
		size = align(off, maxAlign)
	} else {
		size = align(size, maxAlign)
	}
	if size == 0 {
		size = 1 // empty records occupy one byte, as in C
	}
	t.size = size
	t.align = maxAlign
}

// Layout forces record layout computation (used after parsing).
func (t *Type) Layout() { t.layout() }

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	var b strings.Builder
	if t.Qual == Private {
		b.WriteString("private ")
	} else if t.Qual.IsVar() {
		fmt.Fprintf(&b, "%s ", t.Qual)
	}
	switch t.Kind {
	case Void:
		b.WriteString("void")
	case Int:
		if !t.Signed {
			b.WriteString("u")
		}
		fmt.Fprintf(&b, "int%d", t.Size*8)
	case Float:
		b.WriteString("double")
	case Ptr:
		fmt.Fprintf(&b, "%s*", t.Elem)
	case Array:
		fmt.Fprintf(&b, "%s[%d]", t.Elem, t.Len)
	case Struct:
		fmt.Fprintf(&b, "struct %s", t.Name)
	case Union:
		fmt.Fprintf(&b, "union %s", t.Name)
	case Func:
		b.WriteString("fn(")
		for i, p := range t.Sig.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		if t.Sig.Variadic {
			b.WriteString(", ...")
		}
		fmt.Fprintf(&b, ") %s", t.Sig.Ret)
	}
	return b.String()
}

// Decay converts array types to pointers to their element (C decay).
func Decay(t *Type) *Type {
	if t != nil && t.Kind == Array {
		return MakePtr(t.Elem, Public)
	}
	return t
}

// SameShape reports whether two types have identical shapes ignoring
// qualifiers (used for cast classification and diagnostics, not for
// enforcement — enforcement is via constraints and runtime checks).
func SameShape(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Int:
		return a.Size == b.Size && a.Signed == b.Signed
	case Ptr, Array:
		return SameShape(a.Elem, b.Elem) && a.Len == b.Len
	case Struct, Union:
		return a.Name == b.Name
	case Func:
		if len(a.Sig.Params) != len(b.Sig.Params) || a.Sig.Variadic != b.Sig.Variadic {
			return false
		}
		for i := range a.Sig.Params {
			if !SameShape(a.Sig.Params[i], b.Sig.Params[i]) {
				return false
			}
		}
		return SameShape(a.Sig.Ret, b.Sig.Ret)
	}
	return true
}
