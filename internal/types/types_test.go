package types

import "testing"

func TestQualifierBasics(t *testing.T) {
	if Public.IsVar() || Private.IsVar() {
		t.Error("constants are not variables")
	}
	if !Qual(0).IsVar() || !Qual(7).IsVar() {
		t.Error("non-negative quals are variables")
	}
}

func TestWithQualRewritesArrays(t *testing.T) {
	arr := MakeArray(MakeInt(4, true, Public), 8)
	p := arr.WithQual(Private)
	if p.Qual != Private || p.Elem.Qual != Private {
		t.Error("array qualifier must apply to elements (uniform objects)")
	}
	if arr.Qual != Public {
		t.Error("WithQual must not mutate the original")
	}
}

func TestFieldInheritance(t *testing.T) {
	// struct st { private int *p; }; private st x  =>  x.p is a private
	// pointer to private int (the paper's §5.1 example).
	inner := MakePtr(MakeInt(4, true, Private), Public)
	st := &Type{Kind: Struct, Name: "st", Qual: Public,
		Fields: []Field{{Name: "p", Type: inner}}}
	st.Layout()

	pub := st.Clone()
	ft, _ := pub.FieldType("p")
	if ft.Qual != Public || ft.Elem.Qual != Private {
		t.Errorf("public st: field is %s", ft)
	}

	priv := st.WithQual(Private)
	ft2, _ := priv.FieldType("p")
	if ft2.Qual != Private || ft2.Elem.Qual != Private {
		t.Errorf("private st: field is %s, want private pointer to private int", ft2)
	}
}

func TestLayoutPaddingAndUnions(t *testing.T) {
	st := &Type{Kind: Struct, Name: "s", Fields: []Field{
		{Name: "a", Type: MakeInt(1, true, Public)},
		{Name: "b", Type: MakeInt(8, true, Public)},
		{Name: "c", Type: MakeInt(2, true, Public)},
	}}
	st.Layout()
	if st.SizeOf() != 24 || st.Align() != 8 {
		t.Errorf("size=%d align=%d, want 24/8", st.SizeOf(), st.Align())
	}
	_, boff := st.FieldType("b")
	if boff != 8 {
		t.Errorf("b at %d, want 8", boff)
	}
	un := &Type{Kind: Union, Name: "u", Fields: []Field{
		{Name: "i", Type: MakeInt(4, true, Public)},
		{Name: "d", Type: MakeFloat(Public)},
	}}
	un.Layout()
	if un.SizeOf() != 8 {
		t.Errorf("union size %d, want 8", un.SizeOf())
	}
	for _, f := range un.Fields {
		if f.Offset != 0 {
			t.Error("union fields must overlay at offset 0")
		}
	}
}

func TestDecayAndShape(t *testing.T) {
	arr := MakeArray(MakeInt(1, true, Private), 16)
	d := Decay(arr)
	if d.Kind != Ptr || d.Elem.Qual != Private {
		t.Errorf("decay produced %s", d)
	}
	if !SameShape(MakePtr(MakeInt(4, true, Public), Public),
		MakePtr(MakeInt(4, true, Private), Private)) {
		t.Error("SameShape must ignore qualifiers")
	}
	if SameShape(MakeInt(4, true, Public), MakeInt(8, true, Public)) {
		t.Error("different widths are different shapes")
	}
}

func TestSizeOf(t *testing.T) {
	cases := []struct {
		ty   *Type
		want int
	}{
		{MakeVoid(), 0},
		{MakeInt(1, true, Public), 1},
		{MakeInt(8, false, Public), 8},
		{MakeFloat(Public), 8},
		{MakePtr(MakeVoid(), Public), 8},
		{MakeArray(MakeInt(4, true, Public), 10), 40},
	}
	for _, c := range cases {
		if got := c.ty.SizeOf(); got != c.want {
			t.Errorf("sizeof(%s) = %d, want %d", c.ty, got, c.want)
		}
	}
}
