package link_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"confllvm"
	"confllvm/internal/link"
)

const prog = `
extern void output(long v);
int add(int a, int b) { return a + b; }
int main() { output(add(2, 3)); return 0; }
`

func buildImage(t *testing.T, v confllvm.Variant) *link.Image {
	t.Helper()
	art, err := confllvm.Compile(confllvm.Program{
		Sources: []confllvm.Source{{Name: "p.c", Code: prog}},
	}, v)
	if err != nil {
		t.Fatal(err)
	}
	return art.Image
}

func TestMagicPrefixUniqueness(t *testing.T) {
	img := buildImage(t, confllvm.VariantMPX)
	if img.MCallPrefix == 0 || img.MRetPrefix == 0 || img.MCallPrefix == img.MRetPrefix {
		t.Fatal("bad magic prefixes")
	}
	if img.MCallPrefix&31 != 0 || img.MRetPrefix&31 != 0 {
		t.Fatal("prefixes must leave the low 5 taint bits clear")
	}
	// Scan every byte offset: each prefix occurrence must be a recorded
	// magic word (the §6 uniqueness property).
	magic := img.MagicOffsets()
	for i := 0; i+8 <= len(img.Code); i++ {
		w := binary.LittleEndian.Uint64(img.Code[i:])
		if p := w &^ 31; p == img.MCallPrefix || p == img.MRetPrefix {
			if !magic[i] {
				t.Fatalf("stray magic prefix at offset %#x", i)
			}
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a := buildImage(t, confllvm.VariantSeg)
	b := buildImage(t, confllvm.VariantSeg)
	if !bytes.Equal(a.Code, b.Code) {
		t.Fatal("builds with the same seed must be byte-identical")
	}
}

func TestFunctionSymbols(t *testing.T) {
	img := buildImage(t, confllvm.VariantMPX)
	main := img.Func("main")
	add := img.Func("add")
	if main == nil || add == nil {
		t.Fatal("symbols missing")
	}
	if main.Entry != main.MagicAddr+8 {
		t.Error("entry must follow the magic word under CFI")
	}
	// add(int, int) -> int: args 0,1 public, 2,3 unused=private, ret public.
	if add.ArgBits != 0b01100 {
		t.Errorf("add taint bits = %05b, want 01100", add.ArgBits)
	}
	if stub := img.Func("output"); stub == nil || !stub.IsStub {
		t.Error("extern function must have a stub")
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	img := buildImage(t, confllvm.VariantSeg)
	var buf bytes.Buffer
	if err := img.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := link.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Code, img.Code) {
		t.Error("code changed across serialization")
	}
	if got.MCallPrefix != img.MCallPrefix || got.MRetPrefix != img.MRetPrefix {
		t.Error("prefixes changed")
	}
	if got.Func("main") == nil || got.Func("main").Entry != img.Func("main").Entry {
		t.Error("function symbols changed")
	}
	if len(got.MagicOffsets()) != len(img.MagicOffsets()) {
		t.Error("magic offsets changed")
	}
	if got.Layout != img.Layout || got.Config != img.Config {
		t.Error("layout/config changed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := link.Load(bytes.NewReader([]byte("not an image"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestLayoutInvariants(t *testing.T) {
	for _, l := range []link.Layout{link.MPXLayout(), link.SegLayout()} {
		if l.Offset() <= 0 {
			t.Error("private region must be above public")
		}
		lo0, hi0 := l.StackBounds(l.PubBase, 0)
		lo1, hi1 := l.StackBounds(l.PubBase, 1)
		if hi1 != lo0 || hi0-lo0 != l.ThreadStack || hi1-lo1 != l.ThreadStack {
			t.Error("thread stacks must tile downward")
		}
	}
	mpx := link.MPXLayout()
	if mpx.Offset() > (1<<31)-1 {
		t.Error("MPX OFFSET must fit a 32-bit displacement")
	}
	seg := link.SegLayout()
	if seg.Offset() < 36<<30 {
		t.Error("segment scheme needs at least 36 GB of guard space")
	}
	// The segment bases must be 4 GB aligned so that fs/gs + low32(reg)
	// reconstructs in-segment addresses exactly (§3).
	if seg.PubBase%(4<<30) != 0 || seg.PrivBase%(4<<30) != 0 {
		t.Error("segment bases must be 4 GB aligned")
	}
}
