package link

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"confllvm/internal/codegen"
)

// imageFile is the on-disk representation of an Image (gob-encoded).
type imageFile struct {
	Magic       string
	Code        []byte
	Funcs       []FuncSym
	PubData     []byte
	PrivData    []byte
	Symbols     map[string]uint64
	Externals   []string
	MCallPrefix uint64
	MRetPrefix  uint64
	Layout      Layout
	Config      codegen.Config
	ExitShim    [2]uint64
	MagicOffs   []int
}

const imageMagic = "CONFLLVM-IMG-1"

// Save writes the image to w.
func (img *Image) Save(w io.Writer) error {
	f := imageFile{
		Magic:       imageMagic,
		Code:        img.Code,
		PubData:     img.PubData,
		PrivData:    img.PrivData,
		Symbols:     img.Symbols,
		Externals:   img.Externals,
		MCallPrefix: img.MCallPrefix,
		MRetPrefix:  img.MRetPrefix,
		Layout:      img.Layout,
		Config:      img.Config,
		ExitShim:    img.ExitShim,
	}
	for _, fs := range img.Funcs {
		f.Funcs = append(f.Funcs, *fs)
	}
	for off := range img.magicOffsets {
		f.MagicOffs = append(f.MagicOffs, off)
	}
	return gob.NewEncoder(w).Encode(&f)
}

// Load reads an image written by Save.
func Load(r io.Reader) (*Image, error) {
	var f imageFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("link: corrupt image: %w", err)
	}
	if f.Magic != imageMagic {
		return nil, fmt.Errorf("link: not a ConfLLVM image")
	}
	img := &Image{
		Code:         f.Code,
		PubData:      f.PubData,
		PrivData:     f.PrivData,
		Symbols:      f.Symbols,
		Externals:    f.Externals,
		MCallPrefix:  f.MCallPrefix,
		MRetPrefix:   f.MRetPrefix,
		Layout:       f.Layout,
		Config:       f.Config,
		ExitShim:     f.ExitShim,
		byName:       map[string]*FuncSym{},
		magicOffsets: map[int]bool{},
	}
	for i := range f.Funcs {
		fs := f.Funcs[i]
		img.Funcs = append(img.Funcs, &fs)
		img.byName[fs.Name] = &fs
	}
	for _, off := range f.MagicOffs {
		img.magicOffsets[off] = true
	}
	return img, nil
}

// SaveFile writes the image to path.
func (img *Image) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := img.Save(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadFile reads an image from path.
func LoadFile(path string) (*Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Load(bytes.NewReader(data))
}
