// Package link assembles a codegen.Module into a loadable image: it lays
// out U's code and two-region data (Fig. 3), selects the unique 59-bit
// magic-sequence prefixes post-link (§6), patches all relocations and
// encodes the final byte stream that ConfVerify later re-checks.
package link

import "confllvm/internal/codegen"

// Layout fixes the virtual-address-space plan of an execution. Guard space
// is simply everything not covered by a region.
type Layout struct {
	// U code (read + execute).
	CodeBase uint64

	// Public and private data regions: globals, then heap, then the
	// stack area at the top. Both regions use the same internal offsets
	// so the public and private stacks stay in lock-step at distance
	// (PrivBase - PubBase).
	PubBase  uint64
	PrivBase uint64
	// UsableSize is the in-use window of each region.
	UsableSize uint64
	// StackArea is the portion of the window reserved for thread stacks.
	StackArea uint64
	// ThreadStack is the per-thread stack size (1 MB, 1 MB-aligned).
	ThreadStack uint64

	// ExtTableOff is the offset of the read-only externals table from
	// PubBase. The table must live inside the public segment window (the
	// stubs read it through fs under the segmentation scheme) but outside
	// the writable region and outside the MPX bounds, so U can never
	// redirect the stub jumps.
	ExtTableOff uint64

	// Trusted runtime (T): handler entry points and private T data.
	TBase uint64
	TSize uint64
}

// ExtTableBase returns the externals table's base address.
func (l Layout) ExtTableBase() uint64 { return l.PubBase + l.ExtTableOff }

// Offset returns the public->private distance (the paper's OFFSET).
func (l Layout) Offset() int64 { return int64(l.PrivBase - l.PubBase) }

// HeapStart returns the heap base of a region, given the size of its
// globals segment.
func (l Layout) HeapStart(regionBase, globalsSize uint64) uint64 {
	return (regionBase + globalsSize + 63) &^ 63
}

// StackTop returns the top of a region's stack area.
func (l Layout) StackTop(regionBase uint64) uint64 {
	return regionBase + l.UsableSize
}

// StackBounds returns the [lo, hi) bounds of thread tid's stack in a
// region. Thread stacks grow down from the top of the stack area.
func (l Layout) StackBounds(regionBase uint64, tid int) (lo, hi uint64) {
	top := l.StackTop(regionBase)
	hi = top - uint64(tid)*l.ThreadStack
	lo = hi - l.ThreadStack
	return lo, hi
}

const (
	kib = 1024
	mib = 1024 * kib
	gib = 1024 * mib
)

// MPXLayout is the contiguous two-partition layout of Fig. 3b: public and
// private regions adjacent, OFFSET = partition size (must fit in a 32-bit
// displacement).
func MPXLayout() Layout {
	return Layout{
		CodeBase:    16 * mib,
		PubBase:     4 * gib,
		PrivBase:    5 * gib, // OFFSET = 1 GB, fits imm32
		UsableSize:  64 * mib,
		StackArea:   8 * mib,
		ThreadStack: 1 * mib,
		ExtTableOff: 64*mib + 1*mib,
		TBase:       1024 * gib,
		TSize:       16 * mib,
	}
}

// SegLayout is the segment-register layout of Fig. 3a: 4 GB-aligned
// segments separated by 36 GB of guard space, so no fs/gs-prefixed
// 32-bit-constrained operand can escape its segment.
func SegLayout() Layout {
	return Layout{
		CodeBase:    16 * mib,
		PubBase:     4 * gib,
		PrivBase:    44 * gib, // 4 GB usable + 36 GB guard + 4 GB-aligned
		UsableSize:  64 * mib,
		StackArea:   8 * mib,
		ThreadStack: 1 * mib,
		ExtTableOff: 64*mib + 1*mib,
		TBase:       1024 * gib,
		TSize:       16 * mib,
	}
}

// LayoutFor picks the layout matching a configuration.
func LayoutFor(conf codegen.Config) Layout {
	if conf.Bounds == codegen.BoundsSeg {
		return SegLayout()
	}
	return MPXLayout()
}
