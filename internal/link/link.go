package link

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"confllvm/internal/asm"
	"confllvm/internal/codegen"
)

// FuncSym is a linked function's metadata.
type FuncSym struct {
	Name      string
	Base      uint64 // first byte (magic word under CFI)
	Entry     uint64 // first instruction
	MagicAddr uint64 // address of the entry magic word (0 without CFI)
	Size      uint64
	ArgBits   uint8
	RetBit    uint8
	IsStub    bool
	Variadic  bool
}

// Ptr returns the function-pointer value for this function: the magic word
// address under CFI, the entry otherwise.
func (f *FuncSym) Ptr(cfi bool) uint64 {
	if cfi {
		return f.MagicAddr
	}
	return f.Entry
}

// Image is a linked, loadable U binary.
type Image struct {
	Code     []byte
	Funcs    []*FuncSym
	byName   map[string]*FuncSym
	PubData  []byte // initialized public region prefix (externals + globals)
	PrivData []byte // initialized private region prefix

	Symbols   map[string]uint64 // data symbol -> absolute address
	Externals []string          // T functions in externals-table order

	// MCallPrefix and MRetPrefix are the two unique 59-bit magic
	// prefixes, stored shifted into the top 59 bits (low 5 bits zero).
	MCallPrefix uint64
	MRetPrefix  uint64

	Layout Layout
	Config codegen.Config

	// ExitShim maps a return-taint bit to the address a returning
	// top-level function lands on (a magic word + exit instruction).
	ExitShim [2]uint64

	// magicOffsets records where magic words legitimately live in Code
	// (used by the uniqueness scan and by tests).
	magicOffsets map[int]bool
}

// Func looks up a linked function by name.
func (img *Image) Func(name string) *FuncSym { return img.byName[name] }

// MagicOffsets exposes the legitimate magic word offsets (for tests and
// fault injection).
func (img *Image) MagicOffsets() map[int]bool { return img.magicOffsets }

// ExternalSlotAddr returns the absolute address of externals-table slot i.
// The table lives in its own read-only region (see Layout.ExtTableOff).
func (img *Image) ExternalSlotAddr(i int) uint64 {
	return img.Layout.ExtTableBase() + uint64(8*i)
}

// item placement bookkeeping.
type placedFunc struct {
	fc       *codegen.FuncCode
	base     uint64
	itemOff  []uint64 // offset of each item within the function
	size     uint64
	blockOff map[int]uint64
	trapOff  uint64
}

// Link assembles the module. seed drives magic-prefix selection (the
// prefixes are random; the seed makes builds reproducible).
func Link(m *codegen.Module, layout Layout, seed int64) (*Image, error) {
	img := &Image{
		byName:       map[string]*FuncSym{},
		Symbols:      map[string]uint64{},
		Externals:    m.Externs,
		Layout:       layout,
		Config:       m.Config,
		magicOffsets: map[int]bool{},
	}

	// ---- Pass A: function sizes and block offsets ----
	var placed []*placedFunc
	cursor := layout.CodeBase
	place := func(fc *codegen.FuncCode) *placedFunc {
		p := &placedFunc{fc: fc, blockOff: map[int]uint64{}}
		cursor = (cursor + 15) &^ 15
		p.base = cursor
		off := uint64(0)
		for _, it := range fc.Items {
			p.itemOff = append(p.itemOff, off)
			if it.Label >= 0 {
				p.blockOff[it.Label] = off
			}
			if it.Label == -2 { // trap site
				p.trapOff = off
			}
			if it.Magic {
				off += 8
			} else {
				off += uint64(asm.EncodedLen(it.Inst.Op))
			}
		}
		p.size = off
		cursor += off
		placed = append(placed, p)
		return p
	}
	for _, fc := range m.Funcs {
		place(fc)
	}
	// Exit shims: where top-level functions return to. Under CFI each is
	// an MRet magic word followed by exit; otherwise just exit.
	exitShims := [2]*placedFunc{}
	for bit := 0; bit < 2; bit++ {
		fc := &codegen.FuncCode{Name: fmt.Sprintf("_exit%d", bit), RetBit: uint8(bit)}
		if m.Config.CFI {
			fc.Items = append(fc.Items, codegen.Item{Magic: true, MagicCall: false,
				MagicBits: uint8(bit), Label: -1})
		}
		fc.Items = append(fc.Items, codegen.Item{Inst: asm.Inst{Op: asm.OpExit}, Label: -1})
		exitShims[bit] = place(fc)
	}

	// Function symbols.
	for i, p := range placed {
		fs := &FuncSym{
			Name: p.fc.Name, Base: p.base, Size: p.size,
			ArgBits: p.fc.ArgBits, RetBit: p.fc.RetBit,
			IsStub: p.fc.IsStub, Variadic: p.fc.Variadic,
		}
		fs.Entry = p.base
		if m.Config.CFI {
			fs.MagicAddr = p.base
			fs.Entry = p.base + 8
		}
		img.Funcs = append(img.Funcs, fs)
		img.byName[fs.Name] = fs
		if i >= len(placed)-2 { // the two exit shims
			bit := i - (len(placed) - 2)
			if m.Config.CFI {
				img.ExitShim[bit] = fs.MagicAddr
			} else {
				img.ExitShim[bit] = fs.Entry
			}
		}
	}
	if img.byName["main"] == nil {
		return nil, fmt.Errorf("link: no main function")
	}

	// ---- Pass B: data layout ----
	// The externals table lives in its own read-only region; globals fill
	// each data region from its base.
	pubCur := uint64(0)
	privCur := uint64(0)
	type placedGlobal struct {
		off     uint64
		private bool
	}
	globs := map[string]placedGlobal{}
	for _, g := range m.Globals {
		private := m.GlobalRegion[g.Name]
		al := uint64(g.Type.Align())
		if al < 1 {
			al = 1
		}
		if private {
			privCur = (privCur + al - 1) &^ (al - 1)
			globs[g.Name] = placedGlobal{privCur, true}
			img.Symbols[g.Name] = layout.PrivBase + privCur
			privCur += uint64(len(g.Data))
		} else {
			pubCur = (pubCur + al - 1) &^ (al - 1)
			globs[g.Name] = placedGlobal{pubCur, false}
			img.Symbols[g.Name] = layout.PubBase + pubCur
			pubCur += uint64(len(g.Data))
		}
	}
	img.PubData = make([]byte, pubCur)
	img.PrivData = make([]byte, privCur)
	extIndex := map[string]int{}
	for i, e := range m.Externs {
		extIndex[e] = i
	}

	// symValue resolves any symbol to its address (data or function ptr).
	symValue := func(name string) (uint64, error) {
		if a, ok := img.Symbols[name]; ok {
			return a, nil
		}
		if fs := img.byName[name]; fs != nil {
			return fs.Ptr(m.Config.CFI), nil
		}
		return 0, fmt.Errorf("link: undefined symbol %q", name)
	}

	// Fill initialized global data (with relocations).
	for _, g := range m.Globals {
		pg := globs[g.Name]
		var dst []byte
		if pg.private {
			dst = img.PrivData[pg.off:]
		} else {
			dst = img.PubData[pg.off:]
		}
		copy(dst, g.Data)
		for _, rel := range g.Relocs {
			v, err := symValue(rel.Symbol)
			if err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint64(dst[rel.Off:], v)
		}
	}

	// ---- Pass C: choose magic prefixes, patch, encode, verify ----
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 64; attempt++ {
		mcall := rng.Uint64() &^ 31
		mret := rng.Uint64() &^ 31
		if mcall == 0 || mret == 0 || mcall == mret {
			continue
		}
		code, magicOffs, err := encodeAll(m, layout, placed, img, extIndex, mcall, mret)
		if err != nil {
			return nil, err
		}
		if scanUnique(code, mcall, mret, magicOffs) {
			img.Code = code
			img.MCallPrefix = mcall
			img.MRetPrefix = mret
			img.magicOffsets = magicOffs
			return img, nil
		}
	}
	return nil, fmt.Errorf("link: could not find unique magic prefixes")
}

// encodeAll patches relocations and encodes every function.
func encodeAll(m *codegen.Module, layout Layout, placed []*placedFunc,
	img *Image, extIndex map[string]int, mcall, mret uint64) ([]byte, map[int]bool, error) {

	var code []byte
	magicOffs := map[int]bool{}
	base := layout.CodeBase

	for _, p := range placed {
		// Alignment padding with nops.
		for uint64(len(code))+base < p.base {
			code = append(code, byte(asm.OpNop))
		}
		for _, it := range p.fc.Items {
			if it.Magic {
				word := mret
				if it.MagicCall {
					word = mcall
				}
				word |= uint64(it.MagicBits)
				magicOffs[len(code)] = true
				code = asm.AppendMagic(code, word)
				continue
			}
			inst := it.Inst
			switch it.Rel {
			case codegen.RelNone:
			case codegen.RelFunc:
				fs := img.byName[it.Sym]
				if fs == nil {
					return nil, nil, fmt.Errorf("link: call to undefined function %q", it.Sym)
				}
				inst.Imm = int64(fs.Entry)
			case codegen.RelFuncPtr:
				fs := img.byName[it.Sym]
				if fs == nil {
					return nil, nil, fmt.Errorf("link: address of undefined function %q", it.Sym)
				}
				inst.Imm = int64(fs.Ptr(m.Config.CFI))
			case codegen.RelGlobal:
				a, ok := img.Symbols[it.Sym]
				if !ok {
					return nil, nil, fmt.Errorf("link: undefined global %q", it.Sym)
				}
				inst.Imm = int64(a)
			case codegen.RelBlock:
				off, ok := p.blockOff[it.Blk]
				if !ok {
					return nil, nil, fmt.Errorf("link: %s: undefined block b%d", p.fc.Name, it.Blk)
				}
				inst.Imm = int64(p.base + off)
			case codegen.RelTrap:
				inst.Imm = int64(p.base + p.trapOff)
			case codegen.RelExtSlot:
				i, ok := extIndex[it.Sym]
				if !ok {
					return nil, nil, fmt.Errorf("link: unknown extern %q", it.Sym)
				}
				inst.Imm = int64(layout.ExtTableBase() + uint64(8*i))
			case codegen.RelRetMagicNot:
				// The item's Imm holds the 5 taint bits.
				inst.Imm = int64(^(mret | uint64(inst.Imm)))
			case codegen.RelCallMagicNot:
				inst.Imm = int64(^(mcall | uint64(inst.Imm)))
			}
			code = asm.Encode(code, inst)
		}
	}
	return code, magicOffs, nil
}

// scanUnique checks that the magic prefixes appear nowhere in the code
// except at the recorded magic-word offsets (the paper's §6 uniqueness
// requirement). The scan covers every byte offset.
func scanUnique(code []byte, mcall, mret uint64, magicOffs map[int]bool) bool {
	for i := 0; i+8 <= len(code); i++ {
		w := binary.LittleEndian.Uint64(code[i:])
		p := w &^ 31
		if p == mcall || p == mret {
			if !magicOffs[i] {
				return false
			}
		}
	}
	return true
}
