package scenario

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestTrafficDeterministic is the engine's core invariant: the same Spec
// (same seed) yields byte-identical wire packets and identical expected
// outputs on every call.
func TestTrafficDeterministic(t *testing.T) {
	for _, spec := range append(FigureGrid(true, DefaultSeed),
		DefaultKV(false), DefaultKV(true), DefaultTLSH(false), DefaultTLSH(true)) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			w1, e1, err := Traffic(spec)
			if err != nil {
				t.Fatal(err)
			}
			w2, e2, err := Traffic(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(w1) != len(w2) {
				t.Fatalf("packet count differs across calls: %d vs %d", len(w1), len(w2))
			}
			for i := range w1 {
				if !bytes.Equal(w1[i], w2[i]) {
					t.Fatalf("packet %d differs across calls with the same seed", i)
				}
			}
			if len(e1) != len(e2) {
				t.Fatalf("expect vector arity differs: %v vs %v", e1, e2)
			}
			for i := range e1 {
				if e1[i] != e2[i] {
					t.Fatalf("expect[%d] differs across calls: %d vs %d", i, e1[i], e2[i])
				}
			}
			if got := len(w1); got != spec.TotalRequests() {
				t.Fatalf("emitted %d packets, TotalRequests says %d", got, spec.TotalRequests())
			}
		})
	}
}

// TestTrafficSeedSensitivity: distinct seeds must yield distinct streams —
// a generator that ignores its seed would silently collapse every grid
// cell into the same traffic.
func TestTrafficSeedSensitivity(t *testing.T) {
	for _, base := range []Spec{DefaultKV(true), DefaultTLSH(true)} {
		base := base
		t.Run(base.Workload, func(t *testing.T) {
			other := base
			other.Seed = base.Seed + 1
			w1, _, err := Traffic(base)
			if err != nil {
				t.Fatal(err)
			}
			w2, _, err := Traffic(other)
			if err != nil {
				t.Fatal(err)
			}
			same := len(w1) == len(w2)
			if same {
				for i := range w1 {
					if !bytes.Equal(w1[i], w2[i]) {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatal("streams for distinct seeds are byte-identical")
			}
		})
	}
}

// TestTrafficClientCountChangesStream: the client count is part of the
// stream's identity (per-client RNGs, round-robin interleave).
func TestTrafficClientCountChangesStream(t *testing.T) {
	a := DefaultKV(true)
	b := a
	b.Clients = a.Clients + 2
	wa, _, _ := Traffic(a)
	wb, _, _ := Traffic(b)
	if len(wa) == len(wb) {
		t.Fatalf("client count should change the request count here (%d vs %d packets)", len(wa), len(wb))
	}
}

// TestKVModelConsistency cross-checks the generator's store model against
// an independent replay of the emitted packets: the predicted hit/miss/
// delete counts must match what a server would actually observe.
func TestKVModelConsistency(t *testing.T) {
	spec := DefaultKV(false)
	spec.Multiplier = 3 // more traffic, more deletes and re-puts
	wire, expect, err := Traffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	store := map[uint64]bool{}
	var processed, hits, misses, puts, delhits, scanhits int64
	for _, pkt := range wire {
		op := binary.LittleEndian.Uint64(pkt[0:])
		a := binary.LittleEndian.Uint64(pkt[8:])
		switch op {
		case OpGet:
			if store[a] {
				hits++
			} else {
				misses++
			}
		case OpPut:
			vlen := binary.LittleEndian.Uint64(pkt[16:])
			if int(vlen) != len(pkt)-24 {
				t.Fatalf("put packet length field %d does not match payload %d", vlen, len(pkt)-24)
			}
			if vlen == 0 || vlen > MaxValueLen {
				t.Fatalf("put value length %d outside (0, %d]", vlen, MaxValueLen)
			}
			store[a] = true
			puts++
		case OpDel:
			if store[a] {
				delete(store, a)
				delhits++
			}
		case OpScan:
			span := binary.LittleEndian.Uint64(pkt[16:])
			for k := a; k < a+span; k++ {
				if store[k] {
					scanhits++
				}
			}
		default:
			t.Fatalf("unknown op %d", op)
		}
		processed++
	}
	got := []int64{processed, hits, misses, puts, delhits, scanhits}
	for i := range expect {
		if got[i] != expect[i] {
			t.Fatalf("replayed counters %v disagree with predicted %v (index %d)", got, expect, i)
		}
	}
}

// TestMissKeysAliasOccupiedBuckets: miss traffic must be absent by
// construction yet congruent mod KVBuckets with the present key range —
// even when KeySpace is smaller than the bucket count — so a miss walks
// a hash chain instead of probing a bucket no put can ever touch.
func TestMissKeysAliasOccupiedBuckets(t *testing.T) {
	spec := DefaultKV(true) // KeySpace 64 < KVBuckets: the regression case
	if spec.KeySpace >= KVBuckets {
		t.Fatalf("test wants a sub-bucket key space, got %d", spec.KeySpace)
	}
	spec = spec.normalized()
	wire, expect, err := Traffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if expect[2] == 0 {
		t.Fatal("stream produced no misses")
	}
	for i, pkt := range wire {
		op := binary.LittleEndian.Uint64(pkt[0:])
		key := binary.LittleEndian.Uint64(pkt[8:])
		if (op != OpGet && op != OpDel) || key < spec.KeySpace {
			continue
		}
		if key%KVBuckets >= spec.KeySpace {
			t.Fatalf("packet %d: miss key %d maps to bucket %d, outside the occupied range [0,%d)",
				i, key, key%KVBuckets, spec.KeySpace)
		}
	}
}

// TestHitRatioTargeting: with a warm store, the realized hit ratio must
// track the target at both extremes.
func TestHitRatioTargeting(t *testing.T) {
	for _, target := range []int{0, 100} {
		spec := DefaultKV(false)
		spec.HitPct = target
		spec.DelPct = 0 // keep the store warm so 100% is reachable
		_, expect, err := Traffic(spec)
		if err != nil {
			t.Fatal(err)
		}
		hits, missesN := expect[1], expect[2]
		gets := hits + missesN
		if gets == 0 {
			t.Fatal("mix produced no gets")
		}
		realized := int(hits * 100 / gets)
		if target == 0 && realized != 0 {
			t.Fatalf("target 0%% hit ratio realized %d%%", realized)
		}
		if target == 100 && realized != 100 {
			t.Fatalf("target 100%% hit ratio realized %d%%", realized)
		}
	}
}

// TestTrafficUnknownWorkload: the engine rejects unknown families.
func TestTrafficUnknownWorkload(t *testing.T) {
	if _, _, err := Traffic(Spec{Workload: "smtp"}); err == nil {
		t.Fatal("unknown workload family must error")
	}
}

// TestFigureGridShape pins the acceptance-level grid coverage: the full
// grid must sweep at least 1x/10x/100x and at least three hit ratios for
// the KV family.
func TestFigureGridShape(t *testing.T) {
	specs := FigureGrid(false, DefaultSeed)
	mults := map[int]bool{}
	ratios := map[int]bool{}
	seeds := map[uint64]bool{}
	for _, s := range specs {
		if s.Workload == WorkloadKV {
			mults[s.Multiplier] = true
			ratios[s.HitPct] = true
		}
		if seeds[s.Seed] {
			t.Fatalf("grid cell %s reuses another cell's seed", s.Name)
		}
		seeds[s.Seed] = true
	}
	for _, m := range []int{1, 10, 100} {
		if !mults[m] {
			t.Fatalf("grid lacks the %dx multiplier", m)
		}
	}
	if len(ratios) < 3 {
		t.Fatalf("grid has %d hit ratios, want >= 3", len(ratios))
	}
}
