package scenario

import (
	"encoding/binary"

	"confllvm/internal/trt"
)

// KV wire protocol: every field is an 8-byte little-endian word, so the
// miniC server parses packets with aligned *(long*) reads.
//
//	GET:  [op=1][key]
//	PUT:  [op=2][key][len][len bytes of encrypted value]
//	DEL:  [op=3][key]
//	SCAN: [op=4][start][span]
//
// Values travel encrypted (the client encrypts with the session cipher);
// the server decrypts them straight into private-partition buffers, so
// cleartext values exist only in private memory.
const (
	OpGet uint64 = 1 + iota
	OpPut
	OpDel
	OpScan
)

// KVBuckets is the miniC store's hash-table size (NBUCKETS in
// bench.KVStoreSrc). The generator needs it to shape miss traffic: a
// miss key must be absent (outside [0, KeySpace)) yet land in the same
// buckets as present keys, so the server walks a chain before failing.
const KVBuckets = 256

// missKey derives an absent key congruent (mod KVBuckets) with a
// present-range key: base plus the smallest multiple of KVBuckets that
// clears the key space. For KeySpace <= KVBuckets that is base+KVBuckets;
// either way the result is >= KeySpace (never present) and hashes into
// base's bucket.
func missKey(s Spec, base uint64) uint64 {
	step := (s.KeySpace + KVBuckets - 1) / KVBuckets * KVBuckets
	return base + step
}

func le(pkt []byte, off int, v uint64) { binary.LittleEndian.PutUint64(pkt[off:], v) }

// kvModel mirrors the server's store: which keys are present. It lets the
// generator target hit ratios and predict the run's outputs exactly.
type kvModel struct {
	index map[uint64]int // key -> position in keys
	keys  []uint64       // present keys, swap-removed on delete
}

func (m *kvModel) put(key uint64) {
	if _, ok := m.index[key]; !ok {
		m.index[key] = len(m.keys)
		m.keys = append(m.keys, key)
	}
}

func (m *kvModel) del(key uint64) bool {
	i, ok := m.index[key]
	if !ok {
		return false
	}
	last := m.keys[len(m.keys)-1]
	m.keys[i] = last
	m.index[last] = i
	m.keys = m.keys[:len(m.keys)-1]
	delete(m.index, key)
	return true
}

// kvTraffic generates the KV scenario: Preload puts of distinct keys,
// then the mixed op stream, interleaved round-robin across the client
// streams. The returned expect vector is
// [processed, getHits, getMisses, puts, delHits, scanHits].
func kvTraffic(s Spec) ([][]byte, []int64) {
	model := &kvModel{index: map[uint64]int{}}
	var wire [][]byte
	var processed, hits, misses, puts, delhits, scanhits int64

	emitPut := func(r *rng, key uint64) {
		vlen := s.ValueMin + int(r.intn(uint64(s.ValueMax-s.ValueMin+1)))
		val := make([]byte, vlen)
		for i := range val {
			val[i] = byte(r.next())
		}
		pkt := make([]byte, 24+vlen)
		le(pkt, 0, OpPut)
		le(pkt, 8, key)
		le(pkt, 16, uint64(vlen))
		copy(pkt[24:], trt.EncryptWithDefaultKey(val))
		wire = append(wire, pkt)
		model.put(key)
		puts++
		processed++
	}
	emit2 := func(op, a, b uint64) {
		pkt := make([]byte, 24)
		le(pkt, 0, op)
		le(pkt, 8, a)
		le(pkt, 16, b)
		wire = append(wire, pkt)
		processed++
	}

	// Preload: distinct keys via linear probing (Preload <= KeySpace/2,
	// so the probe always terminates). The fill is always uniform — skew
	// shapes the measured mix, not the warm store.
	pr := newRNG(mix(s.Seed, 2))
	for i := 0; i < s.Preload; i++ {
		key := pr.intn(s.KeySpace)
		for _, ok := model.index[key]; ok; _, ok = model.index[key] {
			key = (key + 1) % s.KeySpace
		}
		emitPut(pr, key)
	}

	rngs := clientRNGs(s)
	total := s.Requests * s.Multiplier * s.Clients
	for n := 0; n < total; n++ {
		r := rngs[n%s.Clients]
		roll := int(r.intn(100))
		switch {
		case roll < s.GetPct:
			// Target the hit ratio: hits draw from the present set, misses
			// from missKey — absent by construction but hashing into the
			// same buckets, so misses still walk chains before failing.
			if int(r.intn(100)) < s.HitPct && len(model.keys) > 0 {
				key := model.keys[r.intn(uint64(len(model.keys)))]
				emit2(OpGet, key, 0)
				hits++
			} else {
				emit2(OpGet, missKey(s, s.drawKey(r)), 0)
				misses++
			}
		case roll < s.GetPct+s.PutPct:
			emitPut(r, s.drawKey(r))
		case roll < s.GetPct+s.PutPct+s.DelPct:
			if len(model.keys) > 0 {
				key := model.keys[r.intn(uint64(len(model.keys)))]
				model.del(key)
				emit2(OpDel, key, 0)
				delhits++
			} else {
				emit2(OpDel, missKey(s, s.drawKey(r)), 0)
			}
		default:
			start := s.drawKey(r)
			for k := start; k < start+s.ScanSpan; k++ {
				if _, ok := model.index[k]; ok {
					scanhits++
				}
			}
			emit2(OpScan, start, s.ScanSpan)
		}
	}
	return wire, []int64{processed, hits, misses, puts, delhits, scanhits}
}
