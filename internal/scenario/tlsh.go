package scenario

import "confllvm/internal/trt"

// TLS-ish wire protocol: one client-hello per handshake.
//
//	[type][32-byte client nonce][32-byte encrypted pre-secret]
//
// type is an 8-byte LE word: 1 = full handshake, 2 = resumption (the
// server runs a shortened key schedule). The nonce is public; the
// pre-secret crosses the wire encrypted and is decrypted by T straight
// into private memory.
const (
	HelloFull   uint64 = 1
	HelloResume uint64 = 2
	// NonceLen is the client/server nonce and pre-secret length.
	NonceLen = 32
)

// tlshTranscript mirrors the server's public-side transcript hash for one
// hello: the same wrapping int64 arithmetic the miniC program performs, so
// the generator predicts the final transcript accumulator exactly.
func tlshTranscript(acc int64, typ uint64, nonce []byte) int64 {
	h := int64(typ)*16777619 + 2166136261
	for _, b := range nonce {
		h = h*1099511628211 + int64(b)
	}
	return acc*7 + h
}

// tlshTraffic generates the handshake scenario: Requests*Multiplier
// hellos per client, each a resumption with probability HitPct. The
// returned expect vector is [done, full, resumed, transcript].
func tlshTraffic(s Spec) ([][]byte, []int64) {
	var wire [][]byte
	var done, full, resumed int64
	var transcript int64

	rngs := clientRNGs(s)
	total := s.Requests * s.Multiplier * s.Clients
	for n := 0; n < total; n++ {
		r := rngs[n%s.Clients]
		typ := HelloFull
		if int(r.intn(100)) < s.HitPct {
			typ = HelloResume
		}
		nonce := make([]byte, NonceLen)
		for i := range nonce {
			nonce[i] = byte(r.next())
		}
		secret := make([]byte, NonceLen)
		for i := range secret {
			secret[i] = byte(r.next())
		}
		pkt := make([]byte, 8+NonceLen+NonceLen)
		le(pkt, 0, typ)
		copy(pkt[8:], nonce)
		copy(pkt[8+NonceLen:], trt.EncryptWithDefaultKey(secret))
		wire = append(wire, pkt)

		transcript = tlshTranscript(transcript, typ, nonce)
		if typ == HelloResume {
			resumed++
		} else {
			full++
		}
		done++
	}
	return wire, []int64{done, full, resumed, transcript}
}
