// Package scenario is the traffic engine that sits between the bench
// workloads and the parallel matrix: it turns a declarative Spec (request
// mix, key-space size, hit/miss ratio, value-size distribution, request
// multiplier, client count) into a concrete, fully deterministic request
// stream — the wire packets a workload program consumes through the
// trusted runtime's recv — plus the exact scalar outputs the program must
// produce when it serves that stream.
//
// Determinism is the contract the whole bench story rests on: the same
// Spec (including Seed) always yields byte-identical wire packets and the
// same expected outputs, on any host, under any matrix scheduling. The
// generator therefore uses its own splitmix64 streams (one per simulated
// client, derived from Spec.Seed) and never touches math/rand, time, or
// any global state. Distinct seeds yield distinct streams.
//
// The engine also predicts the workload's observable outcome: while
// emitting requests it simulates the server's state (which keys are
// present, which handshakes resume), so Traffic returns the expected
// output vector alongside the packets and the bench harness can check the
// run end to end, not just fault-freedom.
package scenario

import "fmt"

// Workload family names understood by Traffic.
const (
	// WorkloadKV is the confidential key-value store: private-partition
	// values, public wire buffers, get/put/delete/scan over T's handlers.
	WorkloadKV = "kv"
	// WorkloadTLSH is the TLS-ish handshake: nonce exchange, key-schedule
	// mixing in private memory, transcript hash on the public side.
	WorkloadTLSH = "tlsh"
	// WorkloadMerkleFS is the confidential merkle block store: private
	// block contents, public per-block integrity hashes over the wire
	// ciphertext, read/write over T's handlers.
	WorkloadMerkleFS = "merklefs"
)

// Client key-popularity distributions understood by the KV-family
// generators. The empty string means SkewUniform.
const (
	// SkewUniform draws keys uniformly from the key space (the default;
	// byte-identical to the pre-skew streams).
	SkewUniform = "uniform"
	// SkewZipf is a zipf-like power law: a geometric level (counting
	// trailing zero bits of one splitmix64 draw, integer-only — never
	// floats, so streams cannot drift across hosts) halves the candidate
	// prefix, concentrating traffic on low keys.
	SkewZipf = "zipf"
	// SkewHot sends hotTrafficPct percent of draws to the first
	// hotSetSize keys and the rest uniform — the cache-adversarial
	// hot-key shape.
	SkewHot = "hot"
)

const (
	// hotSetSize is the number of distinct keys in the SkewHot hot set
	// (the lowest keys of the space).
	hotSetSize = 8
	// hotTrafficPct is the share of SkewHot draws aimed at the hot set.
	hotTrafficPct = 90
	// zipfMaxLevel caps the geometric level of SkewZipf draws so the
	// candidate prefix never collapses below a single key.
	zipfMaxLevel = 16
)

// MaxValueLen is the largest value a KV request may carry; it must match
// the MAXV capacity of the miniC store's private value buffers.
const MaxValueLen = 128

// Spec declares one traffic scenario. The zero value of most fields is
// normalized to a sensible default (see normalized); Name, Workload and
// Seed are the caller's responsibility.
type Spec struct {
	// Name labels the scenario in tables, test names and JSON rows.
	Name string
	// Workload selects the family: WorkloadKV or WorkloadTLSH.
	Workload string
	// Seed drives every random choice. Same seed, same stream — always.
	Seed uint64
	// Requests is the base request count per client.
	Requests int
	// Multiplier scales the request count (the 1x/10x/100x sweeps).
	Multiplier int
	// Clients is the number of interleaved client streams. Each client
	// has its own derived RNG; requests are interleaved round-robin, so
	// the client count changes the stream deterministically.
	Clients int

	// KeySpace is the KV key universe [0, KeySpace). Miss traffic draws
	// keys that are absent by construction but congruent mod KVBuckets
	// with the present range, so misses still walk hash chains.
	KeySpace uint64
	// Preload emits this many puts of distinct keys before the measured
	// mix, so hit targeting is meaningful from the first request.
	Preload int
	// HitPct targets the hit ratio: for KV it is the percent of gets
	// aimed at present keys; for TLSH it is the session-resumption rate.
	HitPct int
	// GetPct/PutPct/DelPct is the KV op mix in percent; the remainder is
	// scans.
	GetPct, PutPct, DelPct int
	// ValueMin/ValueMax bound the KV value-size distribution (bytes).
	ValueMin, ValueMax int
	// ScanSpan is the key width of one scan request.
	ScanSpan uint64

	// Skew selects the key-popularity distribution for the KV-family
	// generators: SkewUniform (also the "" default), SkewZipf or SkewHot.
	// Uniform consumes exactly one RNG draw per key, so the default
	// streams are byte-identical to the pre-skew engine.
	Skew string
	// Shards is the simulated cluster width consumed by Cluster: the
	// router partitions the key space into Shards contiguous blocks, one
	// per machine. 0 and 1 both mean a single machine; Traffic ignores
	// the field entirely (a spec's single-machine stream never depends on
	// how a cluster would split it).
	Shards int
}

// normalized fills defaulted fields and clamps the ones with hard limits.
func (s Spec) normalized() Spec {
	if s.Requests < 0 {
		s.Requests = 0
	}
	if s.Multiplier < 1 {
		s.Multiplier = 1
	}
	if s.Clients < 1 {
		s.Clients = 1
	}
	if s.HitPct < 0 {
		s.HitPct = 0
	}
	if s.HitPct > 100 {
		s.HitPct = 100
	}
	if s.Skew == "" {
		s.Skew = SkewUniform
	}
	if s.Shards < 1 {
		s.Shards = 1
	}
	if s.Workload == WorkloadMerkleFS {
		if s.KeySpace == 0 || s.KeySpace > MFSBlocks {
			s.KeySpace = MFSBlocks
		}
		if s.ValueMin <= 0 {
			s.ValueMin = 8
		}
		if s.ValueMax < s.ValueMin {
			s.ValueMax = s.ValueMin
		}
		if s.ValueMax > MFSMaxBlock {
			s.ValueMax = MFSMaxBlock
		}
		if s.Preload < 0 {
			s.Preload = 0
		}
		// Preload probes linearly for unwritten blocks, same discipline
		// as the KV preload.
		if s.Preload > int(s.KeySpace)/2 {
			s.Preload = int(s.KeySpace) / 2
		}
		if s.PutPct < 0 || s.PutPct > 100 {
			s.PutPct = 30
		}
	}
	if s.Workload == WorkloadKV {
		if s.KeySpace == 0 {
			s.KeySpace = 256
		}
		if s.ValueMin <= 0 {
			s.ValueMin = 8
		}
		if s.ValueMax < s.ValueMin {
			s.ValueMax = s.ValueMin
		}
		if s.ValueMax > MaxValueLen {
			s.ValueMax = MaxValueLen
		}
		if s.ScanSpan == 0 {
			s.ScanSpan = 8
		}
		if s.Preload < 0 {
			s.Preload = 0
		}
		// Preload probes linearly for absent keys; keep it under half the
		// key space so it always terminates quickly.
		if s.Preload > int(s.KeySpace)/2 {
			s.Preload = int(s.KeySpace) / 2
		}
		if s.GetPct < 0 {
			s.GetPct = 0
		}
		if s.PutPct < 0 {
			s.PutPct = 0
		}
		if s.DelPct < 0 {
			s.DelPct = 0
		}
		if s.GetPct+s.PutPct+s.DelPct > 100 {
			// Degenerate mixes fall back to the default.
			s.GetPct, s.PutPct, s.DelPct = 60, 25, 5
		}
	}
	return s
}

// TotalRequests is the number of wire requests the scenario emits — the
// req/s scale of its table cells.
func (s Spec) TotalRequests() int {
	s = s.normalized()
	n := s.Requests * s.Multiplier * s.Clients
	if s.Workload == WorkloadKV || s.Workload == WorkloadMerkleFS {
		n += s.Preload
	}
	return n
}

// Traffic generates the scenario's request stream: the wire packets (in
// send order) and the expected output vector of the serving program. Both
// are pure functions of the Spec.
//
// Expected-output layout:
//
//	WorkloadKV:       [processed, getHits, getMisses, puts, delHits, scanHits]
//	WorkloadTLSH:     [done, fullHandshakes, resumedHandshakes, transcript]
//	WorkloadMerkleFS: [processed, writes, readHits, readMisses, rootAcc, readAcc]
func Traffic(s Spec) (wire [][]byte, expect []int64, err error) {
	if err := s.validSkew(); err != nil {
		return nil, nil, err
	}
	switch s.Workload {
	case WorkloadKV:
		wire, expect = kvTraffic(s.normalized())
		return wire, expect, nil
	case WorkloadTLSH:
		wire, expect = tlshTraffic(s.normalized())
		return wire, expect, nil
	case WorkloadMerkleFS:
		wire, expect = mfsTraffic(s.normalized())
		return wire, expect, nil
	default:
		return nil, nil, fmt.Errorf("scenario: unknown workload family %q (want %q, %q or %q)",
			s.Workload, WorkloadKV, WorkloadTLSH, WorkloadMerkleFS)
	}
}

// validSkew rejects unknown skew names before any stream is emitted: a
// typo silently falling back to uniform would quietly change what a grid
// cell measures.
func (s Spec) validSkew() error {
	switch s.Skew {
	case "", SkewUniform, SkewZipf, SkewHot:
		return nil
	}
	return fmt.Errorf("scenario: unknown key skew %q (want %q, %q or %q)",
		s.Skew, SkewUniform, SkewZipf, SkewHot)
}

// drawKey draws one key from [0, KeySpace) under the spec's skew. The
// uniform path consumes exactly one RNG value — the same draw the
// pre-skew engine made — so Skew's zero value leaves every existing
// stream byte-identical.
func (s Spec) drawKey(r *rng) uint64 {
	switch s.Skew {
	case SkewZipf:
		l := trailingZeros(r.next())
		if l > zipfMaxLevel {
			l = zipfMaxLevel
		}
		space := s.KeySpace >> uint(l)
		if space == 0 {
			space = 1
		}
		return r.intn(space)
	case SkewHot:
		hot := uint64(hotSetSize)
		if hot > s.KeySpace {
			hot = s.KeySpace
		}
		if r.intn(100) < hotTrafficPct {
			return r.intn(hot)
		}
		return r.intn(s.KeySpace)
	default:
		return r.intn(s.KeySpace)
	}
}

// trailingZeros counts trailing zero bits (64 for zero) without pulling
// math/bits into the stream definition — the loop is the spec.
func trailingZeros(v uint64) int {
	if v == 0 {
		return 64
	}
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// ---- Deterministic randomness ----

// rng is a splitmix64 stream: tiny, fast, and — unlike math/rand — a
// frozen algorithm, so streams can never drift across Go releases.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is irrelevant for
// traffic shaping and keeps the stream definition trivial.
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// mix derives a child seed from a parent seed and a tag path, so every
// client stream and every grid cell gets an independent stream while
// remaining a pure function of the base seed.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 29
	}
	return h
}

// clientRNGs builds one derived stream per simulated client.
func clientRNGs(s Spec) []*rng {
	rs := make([]*rng, s.Clients)
	for i := range rs {
		rs[i] = newRNG(mix(s.Seed, 1, uint64(i)))
	}
	return rs
}
