package scenario

import (
	"reflect"
	"testing"
)

func TestArrivalDeterminism(t *testing.T) {
	for _, kind := range []string{ArrivalPoisson, ArrivalBursty, ArrivalUniform} {
		a := Arrival{Kind: kind, Seed: 7, MeanGap: 4096}
		t1, err := a.Times(500)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		t2, _ := a.Times(500)
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("%s: same Arrival produced different streams", kind)
		}
		for i := 1; i < len(t1); i++ {
			if t1[i] < t1[i-1] {
				t.Fatalf("%s: timestamps decrease at %d: %d < %d", kind, i, t1[i], t1[i-1])
			}
		}
	}
}

func TestArrivalSeedSensitivity(t *testing.T) {
	for _, kind := range []string{ArrivalPoisson, ArrivalBursty} {
		a := Arrival{Kind: kind, Seed: 7, MeanGap: 4096}
		b := Arrival{Kind: kind, Seed: 8, MeanGap: 4096}
		ta, _ := a.Times(200)
		tb, _ := b.Times(200)
		if reflect.DeepEqual(ta, tb) {
			t.Fatalf("%s: different seeds produced identical streams", kind)
		}
	}
}

func TestArrivalKindsDiffer(t *testing.T) {
	p, _ := Arrival{Kind: ArrivalPoisson, Seed: 7, MeanGap: 4096}.Times(200)
	b, _ := Arrival{Kind: ArrivalBursty, Seed: 7, MeanGap: 4096}.Times(200)
	u, _ := Arrival{Kind: ArrivalUniform, Seed: 7, MeanGap: 4096}.Times(200)
	if reflect.DeepEqual(p, b) || reflect.DeepEqual(p, u) || reflect.DeepEqual(b, u) {
		t.Fatal("distinct kinds produced identical streams")
	}
}

func TestArrivalApproximateMean(t *testing.T) {
	// Poisson and uniform should hit the requested mean gap within 15%
	// over a long stream. (Bursty is intentionally slower overall: OFF
	// phases add dead time on top of the per-arrival mean.)
	const n, mean = 5000, 4096
	for _, kind := range []string{ArrivalPoisson, ArrivalUniform} {
		ts, err := Arrival{Kind: kind, Seed: 11, MeanGap: mean}.Times(n)
		if err != nil {
			t.Fatal(err)
		}
		got := ts[n-1] / n
		if got < mean*85/100 || got > mean*115/100 {
			t.Errorf("%s: empirical mean gap %d, want within 15%% of %d", kind, got, mean)
		}
	}
	// Bursty still makes progress and is no faster than the base rate.
	ts, err := Arrival{Kind: ArrivalBursty, Seed: 11, MeanGap: mean}.Times(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts[n-1] / n; got < mean*85/100 {
		t.Errorf("bursty: empirical mean gap %d faster than base mean %d", got, mean)
	}
}

func TestArrivalDefaultsAndErrors(t *testing.T) {
	ts, err := Arrival{Seed: 1}.Times(3) // empty kind → poisson, MeanGap → 65536
	if err != nil || len(ts) != 3 {
		t.Fatalf("defaults: %v %v", ts, err)
	}
	if _, err := (Arrival{Kind: "closed-loop"}).Times(1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
