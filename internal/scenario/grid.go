package scenario

import "fmt"

// DefaultSeed is the base seed used when the caller does not pick one
// (confbench's -seed flag overrides it).
const DefaultSeed uint64 = 7

// DefaultKV is the KV-store parameterization registered in
// bench.Workloads: the mix the differential and fuzz harnesses replay.
// short selects fewer requests over the same code paths.
func DefaultKV(short bool) Spec {
	s := Spec{
		Name:     "kv-default",
		Workload: WorkloadKV,
		Seed:     mix(DefaultSeed, 0x6b76),
		Requests: 60, Multiplier: 1, Clients: 2,
		KeySpace: 256, Preload: 32, HitPct: 50,
		GetPct: 60, PutPct: 25, DelPct: 5,
		ValueMin: 8, ValueMax: 96, ScanSpan: 8,
	}
	if short {
		s.Requests = 15
		s.KeySpace = 64
		s.Preload = 12
	}
	return s
}

// DefaultTLSH is the TLS-ish handshake parameterization registered in
// bench.Workloads.
func DefaultTLSH(short bool) Spec {
	s := Spec{
		Name:     "tlsh-default",
		Workload: WorkloadTLSH,
		Seed:     mix(DefaultSeed, 0x7151),
		Requests: 12, Multiplier: 1, Clients: 2,
		HitPct: 50,
	}
	if short {
		s.Requests = 4
	}
	return s
}

// DefaultMerkleFS is the merkle-block-store parameterization registered
// in bench.Workloads: a write/read mix over confidential blocks whose
// public integrity accumulators the generator predicts exactly.
func DefaultMerkleFS(short bool) Spec {
	s := Spec{
		Name:     "merklefs-default",
		Workload: WorkloadMerkleFS,
		Seed:     mix(DefaultSeed, 0x6d66),
		Requests: 40, Multiplier: 1, Clients: 2,
		KeySpace: 64, Preload: 16, HitPct: 60,
		PutPct: 30, ValueMin: 8, ValueMax: 96,
	}
	if short {
		s.Requests = 12
		s.KeySpace = 32
		s.Preload = 8
	}
	return s
}

// ClusterGrid is the -figure cluster sweep: request-count multipliers
// crossed with shard counts and client key skews for the confidential KV
// store. The full grid covers 1x/10x/100x at {1, 4, 16} shards under
// {uniform, zipf} skew; short shrinks it to a smoke-sized grid with the
// same shape. Every cell derives its own seed from the base seed and its
// grid coordinates — note the skew is folded in too, so the uniform and
// zipf columns are independent streams, not one stream reshaped.
func ClusterGrid(short bool, seed uint64) []Spec {
	mults := []int{1, 10, 100}
	shards := []int{1, 4, 16}
	kvReqs := 30
	if short {
		mults = []int{1, 4}
		shards = []int{1, 4}
		kvReqs = 8
	}
	var specs []Spec
	for _, m := range mults {
		for _, sh := range shards {
			for si, skew := range []string{SkewUniform, SkewZipf} {
				specs = append(specs, Spec{
					Name:     fmt.Sprintf("kv-x%03d-s%02d-%s", m, sh, skew[:3]),
					Workload: WorkloadKV,
					Seed:     mix(seed, 0x636c, uint64(m), uint64(sh), uint64(si)),
					Requests: kvReqs, Multiplier: m, Clients: 2,
					KeySpace: 256, Preload: 32, HitPct: 50,
					GetPct: 55, PutPct: 25, DelPct: 5,
					ValueMin: 8, ValueMax: 96, ScanSpan: 24,
					Skew: skew, Shards: sh,
				})
			}
		}
	}
	return specs
}

// FigureGrid is the -figure scenarios sweep: request-count multipliers
// crossed with hit/resumption ratios for both workload families. The full
// grid covers 1x/10x/100x at hit ratios 0/50/90; short shrinks it to a
// smoke-sized grid with the same shape. Every cell derives its own seed
// from the base seed and its grid coordinates, so cells are independent
// streams but the whole grid is reproducible from one number.
func FigureGrid(short bool, seed uint64) []Spec {
	mults := []int{1, 10, 100}
	ratios := []int{0, 50, 90}
	kvReqs, tlshReqs := 30, 8
	if short {
		mults = []int{1, 4}
		ratios = []int{0, 100}
		kvReqs, tlshReqs = 8, 3
	}
	var specs []Spec
	for _, m := range mults {
		for _, h := range ratios {
			specs = append(specs, Spec{
				Name:     fmt.Sprintf("kv-x%03d-h%02d", m, h),
				Workload: WorkloadKV,
				Seed:     mix(seed, 0x6b76, uint64(m), uint64(h)),
				Requests: kvReqs, Multiplier: m, Clients: 2,
				KeySpace: 256, Preload: 32, HitPct: h,
				GetPct: 60, PutPct: 25, DelPct: 5,
				ValueMin: 8, ValueMax: 96, ScanSpan: 8,
			})
		}
	}
	for _, m := range mults {
		for _, h := range ratios {
			specs = append(specs, Spec{
				Name:     fmt.Sprintf("tlsh-x%03d-r%02d", m, h),
				Workload: WorkloadTLSH,
				Seed:     mix(seed, 0x7151, uint64(m), uint64(h)),
				Requests: tlshReqs, Multiplier: m, Clients: 2,
				HitPct: h,
			})
		}
	}
	return specs
}
