package scenario

import (
	"encoding/binary"
	"fmt"
)

// This file is the cluster half of the traffic engine: a deterministic
// router that partitions one scenario's key space across Spec.Shards
// machines. Routing is part of the model, not of the benchmark harness —
// the same splitmix64-seeded stream a single machine would serve is
// split, packet by packet, into per-shard streams, and the generator
// predicts every shard's output vector exactly. Nothing here draws new
// randomness: Cluster(s) is a pure function of the Spec, so per-shard
// wire bytes and expectations are byte-identical on any host, under any
// scheduling, at any worker count.
//
// Partitioning rule: the key space splits into contiguous blocks of
// shardBlock(s) keys and block b belongs to shard b % Shards. Contiguous
// blocks keep scans cheap (a scan touches one shard per block it
// crosses, expressible as an ordinary OpScan on that shard); the modulo
// wrap gives miss keys (which lie above the key space by construction) a
// deterministic owner without piling them all onto the last shard.

// ClusterTraffic is one scenario routed across a cluster: per-shard wire
// streams, per-shard predicted output vectors, and the routing metadata
// the figure's balance and scan-cost columns report.
type ClusterTraffic struct {
	// Spec is the normalized spec the cluster was routed from.
	Spec Spec
	// Wire[i] is shard i's packet stream, in global emit order.
	Wire [][][]byte
	// Expect[i] is shard i's predicted output vector
	// [processed, getHits, getMisses, puts, delHits, scanHits].
	Expect [][]int64
	// Requests[i] = len(Wire[i]): shard i's routed request count.
	Requests []int
	// GlobalExpect is the unrouted stream's prediction (what one big
	// machine would report); per-shard counters sum back to it.
	GlobalExpect []int64
	// ClientRequests is the client-visible request count — the req/s
	// numerator. Scan fan-out inflates routed shard requests above it.
	ClientRequests int
	// ScanSplits counts the extra shard sub-requests cross-shard scans
	// created (a scan touching k shards adds k-1).
	ScanSplits int
	// CrossScans counts scans that touched more than one shard.
	CrossScans int
}

// shardBlock is the contiguous key width owned by one shard before the
// block pattern repeats.
func shardBlock(s Spec) uint64 {
	n := uint64(s.Shards)
	if n == 0 {
		n = 1
	}
	return (s.KeySpace + n - 1) / n
}

// ShardOf returns the owning shard of a key under the cluster's
// contiguous-block partitioning. Keys above the key space (miss traffic)
// wrap deterministically via the modulo.
func (s Spec) ShardOf(key uint64) int {
	s = s.normalized()
	if s.Shards <= 1 {
		return 0
	}
	return int(key / shardBlock(s) % uint64(s.Shards))
}

// Cluster routes a scenario across Spec.Shards machines: it generates the
// family's single-machine stream (identical bytes to Traffic) and splits
// it into per-shard streams, decomposing cross-shard scans into one
// contiguous sub-scan per touched shard. Only the KV family clusters —
// it is the only keyed workload.
func Cluster(s Spec) (*ClusterTraffic, error) {
	if s.Workload != WorkloadKV {
		return nil, fmt.Errorf("scenario: workload family %q cannot be sharded (only %q is keyed)",
			s.Workload, WorkloadKV)
	}
	if err := s.validSkew(); err != nil {
		return nil, err
	}
	s = s.normalized()
	global, globalExpect := kvTraffic(s)
	blk := shardBlock(s)
	owner := func(key uint64) int {
		if s.Shards <= 1 {
			return 0
		}
		return int(key / blk % uint64(s.Shards))
	}

	ct := &ClusterTraffic{
		Spec:           s,
		Wire:           make([][][]byte, s.Shards),
		GlobalExpect:   globalExpect,
		ClientRequests: len(global),
	}
	for _, pkt := range global {
		op := binary.LittleEndian.Uint64(pkt[0:])
		key := binary.LittleEndian.Uint64(pkt[8:])
		if op != OpScan {
			sh := owner(key)
			ct.Wire[sh] = append(ct.Wire[sh], pkt)
			continue
		}
		// Scans split at ownership boundaries into maximal contiguous
		// runs, each an ordinary OpScan on its owner. Emit order follows
		// key order, so the split is deterministic.
		span := binary.LittleEndian.Uint64(pkt[16:])
		pieces := 0
		for start := key; start < key+span; {
			sh := owner(start)
			end := start + 1
			for end < key+span && owner(end) == sh {
				end++
			}
			sub := make([]byte, 24)
			le(sub, 0, OpScan)
			le(sub, 8, start)
			le(sub, 16, end-start)
			ct.Wire[sh] = append(ct.Wire[sh], sub)
			pieces++
			start = end
		}
		if pieces > 1 {
			ct.ScanSplits += pieces - 1
			ct.CrossScans++
		}
	}

	// Predict each shard's output vector by replaying its stream against
	// a per-shard store model. Keys route stably, so each shard's model
	// is exactly the global model restricted to its key range and the
	// per-shard counters decompose the global ones.
	ct.Expect = make([][]int64, s.Shards)
	ct.Requests = make([]int, s.Shards)
	for i, wire := range ct.Wire {
		ct.Requests[i] = len(wire)
		store := map[uint64]bool{}
		var processed, hits, misses, puts, delhits, scanhits int64
		for _, pkt := range wire {
			op := binary.LittleEndian.Uint64(pkt[0:])
			a := binary.LittleEndian.Uint64(pkt[8:])
			switch op {
			case OpGet:
				if store[a] {
					hits++
				} else {
					misses++
				}
			case OpPut:
				store[a] = true
				puts++
			case OpDel:
				if store[a] {
					delete(store, a)
					delhits++
				}
			case OpScan:
				span := binary.LittleEndian.Uint64(pkt[16:])
				for k := a; k < a+span; k++ {
					if store[k] {
						scanhits++
					}
				}
			}
			processed++
		}
		ct.Expect[i] = []int64{processed, hits, misses, puts, delhits, scanhits}
	}
	return ct, nil
}
