package scenario

import "confllvm/internal/trt"

// MerkleFS wire protocol: every header field is an 8-byte little-endian
// word, so the miniC server parses packets with aligned *(long*) reads.
//
//	WRITE: [op=1][blk][len][len bytes of encrypted block contents]
//	READ:  [op=2][blk]
//
// Block contents travel encrypted and are decrypted by T straight into
// private-partition buffers — cleartext blocks exist only in private
// memory and leave only through ssl_send. The integrity metadata is
// public by design: the server hashes the *ciphertext* it received off
// the wire (public bytes) into a per-block hash and chains those hashes
// into a root accumulator, so the generator — which emitted that exact
// ciphertext — replicates both accumulators bit for bit.
const (
	MFSWrite uint64 = 1 + iota
	MFSRead
)

// MFSBlocks is the block universe of the miniC store (NBLK in
// bench.MerkleFSSrc); specs may use a smaller KeySpace but never more.
const MFSBlocks = 64

// MFSMaxBlock is the largest block payload in bytes; it must match the
// MAXB capacity of the miniC store's private block buffers.
const MFSMaxBlock = 128

// mfsHash mirrors the server's public-side per-block hash: the same
// wrapping int64 arithmetic the miniC program performs over the block
// number and the ciphertext bytes.
func mfsHash(blk uint64, ct []byte) int64 {
	h := int64(blk)*16777619 + 2166136261
	for _, b := range ct {
		h = h*1099511628211 + int64(b)
	}
	return h
}

// mfsTraffic generates the merkle-block-store scenario: Preload writes of
// distinct blocks, then a write/read mix (PutPct writes, remainder reads
// targeting the HitPct written-block ratio), interleaved round-robin
// across the client streams. The returned expect vector is
// [processed, writes, readHits, readMisses, rootAcc, readAcc].
func mfsTraffic(s Spec) ([][]byte, []int64) {
	written := make([]bool, s.KeySpace)
	var order []uint64 // written blocks in first-write order
	var wire [][]byte
	var processed, writes, readhits, readmisses int64
	var root, readAcc int64
	hash := make([]int64, s.KeySpace)

	emitWrite := func(r *rng, blk uint64) {
		vlen := s.ValueMin + int(r.intn(uint64(s.ValueMax-s.ValueMin+1)))
		val := make([]byte, vlen)
		for i := range val {
			val[i] = byte(r.next())
		}
		ct := trt.EncryptWithDefaultKey(val)
		pkt := make([]byte, 24+vlen)
		le(pkt, 0, MFSWrite)
		le(pkt, 8, blk)
		le(pkt, 16, uint64(vlen))
		copy(pkt[24:], ct)
		wire = append(wire, pkt)
		if !written[blk] {
			written[blk] = true
			order = append(order, blk)
		}
		hash[blk] = mfsHash(blk, ct)
		root = root*7 + hash[blk]
		writes++
		processed++
	}
	emitRead := func(blk uint64) {
		pkt := make([]byte, 16)
		le(pkt, 0, MFSRead)
		le(pkt, 8, blk)
		wire = append(wire, pkt)
		if written[blk] {
			readAcc = readAcc*7 + hash[blk]
			readhits++
		} else {
			readmisses++
		}
		processed++
	}

	// Preload: distinct blocks via linear probing (Preload <= KeySpace/2,
	// so the probe always terminates); uniform like the KV fill.
	pr := newRNG(mix(s.Seed, 2))
	for i := 0; i < s.Preload; i++ {
		blk := pr.intn(s.KeySpace)
		for written[blk] {
			blk = (blk + 1) % s.KeySpace
		}
		emitWrite(pr, blk)
	}

	rngs := clientRNGs(s)
	total := s.Requests * s.Multiplier * s.Clients
	for n := 0; n < total; n++ {
		r := rngs[n%s.Clients]
		if int(r.intn(100)) < s.PutPct {
			emitWrite(r, s.drawKey(r))
			continue
		}
		// Target the hit ratio: hits draw from the written set, misses
		// probe for a still-unwritten block. When every block is written
		// a miss is impossible; the draw degrades to a hit.
		if int(r.intn(100)) < s.HitPct && len(order) > 0 {
			emitRead(order[r.intn(uint64(len(order)))])
		} else if len(order) < int(s.KeySpace) {
			blk := s.drawKey(r)
			for written[blk] {
				blk = (blk + 1) % s.KeySpace
			}
			emitRead(blk)
		} else if len(order) > 0 {
			emitRead(order[r.intn(uint64(len(order)))])
		}
	}
	return wire, []int64{processed, writes, readhits, readmisses, root, readAcc}
}
