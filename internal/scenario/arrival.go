package scenario

import "fmt"

// Arrival kinds understood by Times.
const (
	// ArrivalPoisson is a memoryless open-loop process: inter-arrival
	// gaps are integer-geometric draws approximating an exponential
	// with mean MeanGap cycles.
	ArrivalPoisson = "poisson"
	// ArrivalBursty gates the Poisson process through a two-state
	// ON/OFF modulator (geometric phase lengths): arrivals only occur
	// in ON phases, producing clumped traffic with the same per-phase
	// memorylessness.
	ArrivalBursty = "bursty"
	// ArrivalUniform spaces arrivals exactly MeanGap cycles apart —
	// the deterministic baseline row of the latency figure.
	ArrivalUniform = "uniform"
)

// Arrival declares one open-loop arrival process in simulated cycles.
// Like Spec, it is integer-only and seed-driven: the same Arrival
// always yields the same timestamps, on any host, under any matrix
// scheduling — the arrival stream is part of the figure's spec, not a
// measurement.
type Arrival struct {
	// Kind selects the process (ArrivalPoisson, ArrivalBursty,
	// ArrivalUniform). Empty means ArrivalPoisson.
	Kind string
	// Seed drives every random choice, independent of the traffic
	// Spec's seed (derive with mix so figures can't alias streams).
	Seed uint64
	// MeanGap is the mean inter-arrival gap in simulated cycles; the
	// offered load is SimClockHz/MeanGap requests per simulated
	// second. 0 is normalized to 65536.
	MeanGap uint64
	// BurstOn/BurstOff are the mean ON/OFF phase lengths in cycles for
	// ArrivalBursty (0 → 8*MeanGap each). Arrivals pause during OFF
	// phases, so the effective load during ON roughly doubles when the
	// duty cycle is 50%.
	BurstOn  uint64
	BurstOff uint64
}

// MixSeed derives an independent stream seed from a base seed plus
// coordinates (grid indices, figure tags): the exported face of the
// generator's internal mixer, so figure grids outside this package can
// derive per-row arrival seeds with the same avalanche guarantees.
func MixSeed(vals ...uint64) uint64 { return mix(vals...) }

// arrivalTick quantizes geometric draws: gaps are multiples of
// MeanGap/arrivalTicks (min 1 cycle), giving a discrete exponential
// whose mean is within a few percent of MeanGap.
const arrivalTicks = 32

// geometricGap draws one integer-geometric gap with the given mean:
// count Bernoulli(1/arrivalTicks) failures in tick units. Mean of the
// geometric (number of trials to first success) is arrivalTicks ticks
// = ~mean cycles; integer-only, so streams cannot drift across hosts.
func geometricGap(r *rng, mean uint64) uint64 {
	tick := mean / arrivalTicks
	if tick == 0 {
		tick = 1
	}
	k := uint64(1)
	for r.intn(arrivalTicks) != 0 {
		k++
	}
	return k * tick
}

// Times returns the first n arrival timestamps (simulated cycles,
// strictly measured from 0, nondecreasing) of the process. Unknown
// kinds return an error so figure configs fail loudly.
func (a Arrival) Times(n int) ([]uint64, error) {
	mean := a.MeanGap
	if mean == 0 {
		mean = 65536
	}
	kind := a.Kind
	if kind == "" {
		kind = ArrivalPoisson
	}
	out := make([]uint64, 0, n)
	var now uint64
	switch kind {
	case ArrivalUniform:
		for i := 0; i < n; i++ {
			now += mean
			out = append(out, now)
		}
	case ArrivalPoisson:
		r := newRNG(mix(a.Seed, 0xa441))
		for i := 0; i < n; i++ {
			now += geometricGap(r, mean)
			out = append(out, now)
		}
	case ArrivalBursty:
		r := newRNG(mix(a.Seed, 0xa442))
		phase := newRNG(mix(a.Seed, 0xa443))
		on, off := a.BurstOn, a.BurstOff
		if on == 0 {
			on = 8 * mean
		}
		if off == 0 {
			off = 8 * mean
		}
		// Walk ON/OFF phases; arrivals drawn during ON only. The
		// phase walk always advances (geometricGap >= 1), so the loop
		// terminates for any parameters.
		phaseEnd := now + geometricGap(phase, on)
		for len(out) < n {
			gap := geometricGap(r, mean)
			for now+gap > phaseEnd {
				// Skip the OFF phase that follows this ON phase; the
				// residual gap carries into the next ON phase.
				gap -= phaseEnd - now
				now = phaseEnd + geometricGap(phase, off)
				phaseEnd = now + geometricGap(phase, on)
			}
			now += gap
			out = append(out, now)
		}
	default:
		return nil, fmt.Errorf("scenario: unknown arrival kind %q", a.Kind)
	}
	return out, nil
}
