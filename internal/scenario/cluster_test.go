package scenario

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// clusterTestSpec is a 4-shard parameterization with enough traffic for
// the balance and conservation properties to bite.
func clusterTestSpec() Spec {
	return Spec{
		Name:     "kv-cluster-test",
		Workload: WorkloadKV,
		Seed:     mix(DefaultSeed, 0xc1),
		Requests: 50, Multiplier: 2, Clients: 2,
		KeySpace: 256, Preload: 32, HitPct: 50,
		GetPct: 55, PutPct: 25, DelPct: 5,
		ValueMin: 8, ValueMax: 96, ScanSpan: 24,
		Shards: 4,
	}
}

// TestClusterDeterministic: routing is part of the model — the same spec
// yields byte-identical per-shard streams, expectations and routing
// metadata on every call.
func TestClusterDeterministic(t *testing.T) {
	specs := append(ClusterGrid(true, DefaultSeed), clusterTestSpec())
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			a, err := Cluster(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Cluster(spec)
			if err != nil {
				t.Fatal(err)
			}
			if a.ClientRequests != b.ClientRequests || a.ScanSplits != b.ScanSplits ||
				a.CrossScans != b.CrossScans {
				t.Fatalf("routing metadata differs across calls: %+v vs %+v", a, b)
			}
			for sh := range a.Wire {
				if len(a.Wire[sh]) != len(b.Wire[sh]) {
					t.Fatalf("shard %d: packet count differs across calls", sh)
				}
				for i := range a.Wire[sh] {
					if !bytes.Equal(a.Wire[sh][i], b.Wire[sh][i]) {
						t.Fatalf("shard %d: packet %d differs across calls", sh, i)
					}
				}
				for i := range a.Expect[sh] {
					if a.Expect[sh][i] != b.Expect[sh][i] {
						t.Fatalf("shard %d: expect differs across calls: %v vs %v",
							sh, a.Expect[sh], b.Expect[sh])
					}
				}
			}
		})
	}
}

// TestClusterConservation: per-shard counters must decompose the global
// (single-machine) prediction exactly — requests and processed inflate by
// precisely the scan fan-out, every other counter sums back unchanged.
// Routing that lost, duplicated or misattributed a single op would break
// one of these sums.
func TestClusterConservation(t *testing.T) {
	for _, spec := range append(ClusterGrid(false, DefaultSeed), clusterTestSpec()) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ct, err := Cluster(spec)
			if err != nil {
				t.Fatal(err)
			}
			var reqs int
			for _, n := range ct.Requests {
				reqs += n
			}
			if want := ct.ClientRequests + ct.ScanSplits; reqs != want {
				t.Fatalf("shard requests sum to %d, want client %d + splits %d",
					reqs, ct.ClientRequests, ct.ScanSplits)
			}
			sums := make([]int64, len(ct.GlobalExpect))
			for _, e := range ct.Expect {
				for i, v := range e {
					sums[i] += v
				}
			}
			// Index 0 is processed (inflated by splits); 1..5 are
			// hits/misses/puts/delhits/scanhits and must sum exactly.
			if want := ct.GlobalExpect[0] + int64(ct.ScanSplits); sums[0] != want {
				t.Fatalf("processed sums to %d, want global %d + splits %d",
					sums[0], ct.GlobalExpect[0], ct.ScanSplits)
			}
			for i := 1; i < len(sums); i++ {
				if sums[i] != ct.GlobalExpect[i] {
					t.Fatalf("counter %d: shard sum %v does not decompose global %v",
						i, sums, ct.GlobalExpect)
				}
			}
		})
	}
}

// TestClusterPartitionCorrectness: every packet on a shard's stream must
// concern only keys that shard owns — non-scan ops by their key, scan
// sub-requests over their whole range.
func TestClusterPartitionCorrectness(t *testing.T) {
	spec := clusterTestSpec()
	ct, err := Cluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	for sh, wire := range ct.Wire {
		for i, pkt := range wire {
			op := binary.LittleEndian.Uint64(pkt[0:])
			key := binary.LittleEndian.Uint64(pkt[8:])
			if op == OpScan {
				span := binary.LittleEndian.Uint64(pkt[16:])
				for k := key; k < key+span; k++ {
					if got := spec.ShardOf(k); got != sh {
						t.Fatalf("shard %d packet %d: scan key %d belongs to shard %d", sh, i, k, got)
					}
				}
				continue
			}
			if got := spec.ShardOf(key); got != sh {
				t.Fatalf("shard %d packet %d: key %d belongs to shard %d", sh, i, key, got)
			}
		}
	}
}

// TestClusterSingleShardIsTraffic: a 1-shard cluster is the single
// machine — shard 0's stream must be byte-identical to Traffic and its
// expectation the global one. This pins that routing is pure
// post-processing of the unchanged stream.
func TestClusterSingleShardIsTraffic(t *testing.T) {
	spec := clusterTestSpec()
	spec.Shards = 1
	ct, err := Cluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	wire, expect, err := Traffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Wire[0]) != len(wire) {
		t.Fatalf("1-shard cluster has %d packets, Traffic has %d", len(ct.Wire[0]), len(wire))
	}
	for i := range wire {
		if !bytes.Equal(ct.Wire[0][i], wire[i]) {
			t.Fatalf("1-shard cluster packet %d differs from Traffic", i)
		}
	}
	for i := range expect {
		if ct.Expect[0][i] != expect[i] || ct.GlobalExpect[i] != expect[i] {
			t.Fatalf("1-shard expectations %v / global %v differ from Traffic's %v",
				ct.Expect[0], ct.GlobalExpect, expect)
		}
	}
	if ct.ScanSplits != 0 || ct.CrossScans != 0 {
		t.Fatalf("1-shard cluster reports scan fan-out: %d splits, %d cross", ct.ScanSplits, ct.CrossScans)
	}
}

// TestClusterCrossShardScans: with a scan span wider than a shard's
// contiguous block, scans must fan out — and each split must add exactly
// its piece count minus one.
func TestClusterCrossShardScans(t *testing.T) {
	spec := clusterTestSpec()
	spec.Shards = 16 // block width 16 < ScanSpan 24: every in-range scan crosses
	ct, err := Cluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ct.CrossScans == 0 {
		t.Fatal("no cross-shard scans despite span exceeding the shard block width")
	}
	if ct.ScanSplits < ct.CrossScans {
		t.Fatalf("%d splits < %d cross-shard scans (each adds at least one)",
			ct.ScanSplits, ct.CrossScans)
	}
}

// TestClusterSkewImbalance: zipf-skewed clients must load shards less
// evenly than uniform ones — the property the figure's balance columns
// exist to show. Both streams are deterministic, so this is a fixed
// comparison, not a statistical one.
func TestClusterSkewImbalance(t *testing.T) {
	spread := func(skew string) int {
		spec := clusterTestSpec()
		spec.Multiplier = 4
		spec.Skew = skew
		ct, err := Cluster(spec)
		if err != nil {
			t.Fatal(err)
		}
		min, max := ct.Requests[0], ct.Requests[0]
		for _, n := range ct.Requests {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		return max - min
	}
	uni, zip := spread(SkewUniform), spread(SkewZipf)
	if zip <= uni {
		t.Fatalf("zipf spread %d not wider than uniform spread %d", zip, uni)
	}
}

// TestClusterSeedSensitivity: distinct seeds must route distinct streams.
func TestClusterSeedSensitivity(t *testing.T) {
	a := clusterTestSpec()
	b := a
	b.Seed = a.Seed + 1
	ca, err := Cluster(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Cluster(b)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for sh := range ca.Wire {
		if len(ca.Wire[sh]) != len(cb.Wire[sh]) {
			same = false
			break
		}
		for i := range ca.Wire[sh] {
			if !bytes.Equal(ca.Wire[sh][i], cb.Wire[sh][i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("clusters for distinct seeds are byte-identical")
	}
}

// TestClusterRejects: only the keyed KV family shards, and skew names are
// validated before any stream is generated.
func TestClusterRejects(t *testing.T) {
	if _, err := Cluster(DefaultTLSH(true)); err == nil {
		t.Fatal("sharding the TLS-ish family must error")
	}
	bad := clusterTestSpec()
	bad.Skew = "pareto"
	if _, err := Cluster(bad); err == nil {
		t.Fatal("unknown skew must error")
	}
	if _, _, err := Traffic(bad); err == nil {
		t.Fatal("Traffic must reject unknown skew too")
	}
}

// TestSkewShapesStream: skew must change the key stream (same seed) and
// hot skew must concentrate put traffic on the hot set.
func TestSkewShapesStream(t *testing.T) {
	base := clusterTestSpec()
	base.Shards = 1
	wu, _, err := Traffic(base)
	if err != nil {
		t.Fatal(err)
	}
	zs := base
	zs.Skew = SkewZipf
	wz, _, err := Traffic(zs)
	if err != nil {
		t.Fatal(err)
	}
	same := len(wu) == len(wz)
	if same {
		for i := range wu {
			if !bytes.Equal(wu[i], wz[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("zipf skew left the stream byte-identical to uniform")
	}

	hs := base
	hs.Skew = SkewHot
	wh, _, err := Traffic(hs)
	if err != nil {
		t.Fatal(err)
	}
	var hot, total int
	for _, pkt := range wh[hs.Preload:] { // measured mix only; preload stays uniform
		if binary.LittleEndian.Uint64(pkt[0:]) != OpPut {
			continue
		}
		total++
		if binary.LittleEndian.Uint64(pkt[8:]) < hotSetSize {
			hot++
		}
	}
	if total == 0 {
		t.Fatal("mix produced no puts")
	}
	if hot*100 < total*60 {
		t.Fatalf("hot skew put only %d/%d puts on the hot set", hot, total)
	}
}
