package machine

import (
	"fmt"
	"math"

	"confllvm/internal/asm"
)

// BndRange is an MPX bound register: a [Lo, Hi] closed interval.
type BndRange struct {
	Lo uint64
	Hi uint64
}

// Stats counts architectural and micro-architectural events per thread.
type Stats struct {
	Instrs      uint64
	Cycles      uint64
	Loads       uint64
	Stores      uint64
	BndChecks   uint64
	BndMasked   uint64 // bound checks hidden behind FP work
	CacheMisses uint64
	TrustedCall uint64 // transitions into T handlers

	// FusedSlots counts fused superinstruction slots executed to
	// completion and Defuses counts the times a fused slot fell back to
	// its constituent list (a fuel/quantum bite or a fault landing
	// inside the slot; see fuse.go). They describe how the dispatcher
	// executed, not what the program did: they legitimately differ
	// across dispatch modes, so cross-mode comparisons go through
	// Arch(), which zeroes them.
	FusedSlots uint64
	Defuses    uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Instrs += other.Instrs
	s.Cycles += other.Cycles
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.BndChecks += other.BndChecks
	s.BndMasked += other.BndMasked
	s.CacheMisses += other.CacheMisses
	s.TrustedCall += other.TrustedCall
	s.FusedSlots += other.FusedSlots
	s.Defuses += other.Defuses
}

// Arch returns the architectural subset of s: the counters that must be
// bit-identical across every dispatch mode (stepping, superblock,
// chained, fused, threaded). The dispatcher-observability counters
// (FusedSlots, Defuses) are zeroed — a stepping run fuses nothing, so
// whole-struct equality across modes would be vacuously false.
func (s Stats) Arch() Stats {
	s.FusedSlots = 0
	s.Defuses = 0
	return s
}

// Thread is a hardware execution context (one per simulated core thread).
type Thread struct {
	ID    int
	Regs  [asm.NumRegs]uint64
	FRegs [asm.NumFRegs]float64
	PC    uint64

	// Flags.
	ZF, SF, CF, OF bool

	// Segment bases (4 GB-aligned in the segmentation scheme).
	FS, GS uint64

	// MPX bound registers.
	Bnd [2]BndRange

	// Thread stack bounds enforced by chksp ([_chkstk] analogue).
	StackLo, StackHi uint64

	Halted   bool
	ExitCode uint64
	Fault    *Fault

	Stats    Stats
	fpCredit int
	l1       *cache

	m *Machine
}

// Handler is a trusted-runtime entry point implemented on the host. When a
// thread's pc reaches the handler's address, the machine invokes it instead
// of fetching. Handlers model T code compiled by a vanilla compiler: they
// may access all memory and must set the thread's pc before returning (by
// performing the return sequence of the active configuration).
type Handler func(m *Machine, t *Thread) *Fault

// Config tunes the cost model.
type Config struct {
	Cores        int    // hardware cores for wall-clock estimation
	CacheModel   bool   // model L1D hit/miss
	MissPenalty  uint64 // cycles per L1D miss
	FPMaskDepth  int    // bound checks maskable behind each FP op window
	DefaultFuel  uint64 // instruction budget per Run call (0 = no limit)
	TrustedCost  uint64 // cycles charged for a U->T->U transition (wrapper)
	TrustedCost1 uint64 // same, when U and T share memory (Our1Mem)

	// Superblocks makes Run dispatch once per basic block instead of once
	// per instruction: straight-line decoded instructions are fused into
	// superblocks (see superblock.go) executed by a tight handler loop.
	// Architectural results — registers, memory, cycle counts, fault PCs
	// and messages — are bit-identical to per-instruction stepping; the
	// differential tests in diff_test.go enforce this. Thread.Step always
	// executes a single instruction regardless of this flag.
	Superblocks bool

	// Profile enables cycle-attributed profiling: the machine carries a
	// Profile (see profile.go) charging each superblock's cycle delta to
	// its entry PC and each trusted-handler dispatch to the handler
	// address. Purely observational — no simulated result changes — and
	// free when off (one nil check per block, zero allocations).
	Profile bool

	// Chain links superblocks to their successors: a block ending in a
	// direct jmp (and both edges of a jcc) caches a pointer to the
	// successor's flattened run when the target lies in the same decode
	// trace and outside the trusted-handler range, so hot loops execute
	// run-to-run without returning through the dispatcher (see
	// superblock.go). Only meaningful with Superblocks; bit-identical to
	// unchained dispatch in every simulated result.
	Chain bool

	// Fuse enables superinstruction fusion at flatten time: buildBlock
	// peephole-recognizes hot multi-instruction idioms — add/sub+cmp+jcc
	// loop heads, load/op/store triples, cmp+jcc pairs, and MPX
	// check+load / check+store pairs — into synthetic fused slots that
	// the dispatcher executes with a single opcode dispatch (see
	// fuse.go). A fuel or quantum bite, or a fault, landing inside a
	// fused slot de-fuses: execution falls back to the constituent
	// instruction list, so per-instruction PCs, cycle charges and fault
	// messages are bit-identical to unfused dispatch. Only meaningful
	// with Superblocks.
	Fuse bool

	// Threaded replaces execRun's opcode switch with threaded-code
	// dispatch: every blockRun slot resolves its handler func once at
	// flatten time into a parallel ops[] array, and the hot loop is an
	// indirect call through the per-slot pointer instead of a switch
	// (see dispatch.go). Composes with Fuse (fused slots get fused
	// handlers) and is bit-identical to switch dispatch in every
	// simulated result. Only meaningful with Superblocks.
	Threaded bool
}

// DefaultConfig returns the calibrated default cost model.
func DefaultConfig() Config {
	return Config{
		Cores:        4,
		CacheModel:   true,
		MissPenalty:  14,
		FPMaskDepth:  2,
		DefaultFuel:  2_000_000_000,
		TrustedCost:  40,
		TrustedCost1: 8,
		Superblocks:  true,
		Chain:        true,
		Fuse:         true,
	}
}

// Machine is the whole simulated machine: memory, threads, trusted-runtime
// handlers and the cost model.
type Machine struct {
	Mem      *Memory
	Threads  []*Thread
	Handlers map[uint64]Handler
	Conf     Config

	fuel uint64

	// traces holds one decoded-trace cache per executable region (see
	// trace.go); lastTrace memoizes the region the PC last executed in.
	traces    []*codeTrace
	lastTrace *codeTrace

	// Handler address range, recomputed whenever len(Handlers) changes:
	// Step only probes the Handlers map when the PC falls inside
	// [hndLo, hndHi]. Empty map: hndLo > hndHi, so the test never passes.
	hndLo, hndHi uint64
	nHandlers    int

	// prof is non-nil when Conf.Profile is set (see profile.go).
	prof *Profile
}

// Profile returns the machine's cycle-attribution profile, or nil when
// Conf.Profile is off.
func (m *Machine) Profile() *Profile { return m.prof }

// New creates a machine with the given configuration.
func New(conf Config) *Machine {
	if conf.Cores <= 0 {
		conf.Cores = 1
	}
	m := &Machine{
		Mem:      NewMemory(),
		Handlers: make(map[uint64]Handler),
		Conf:     conf,
		hndLo:    ^uint64(0),
	}
	m.Mem.onUncheckedWrite = m.flushTraces
	if conf.Profile {
		m.prof = NewProfile()
	}
	return m
}

// RefreshHandlers re-indexes the Handlers map. Adding or removing a
// handler is detected automatically (the map's size changes), and Run
// re-indexes on entry; call this only when replacing same-count handler
// sets at new addresses between direct Step calls.
func (m *Machine) RefreshHandlers() { m.rebuildHandlerIndex() }

// rebuildHandlerIndex recomputes the [hndLo, hndHi] PC range covering all
// registered trusted handlers. When the range changes, superblock metadata
// is flushed: blocks are built to never span a PC inside the handler
// range, so a changed range may invalidate existing block boundaries (the
// decoded instructions themselves stay valid — handler-set changes move
// dispatch points, not code bytes).
func (m *Machine) rebuildHandlerIndex() {
	oldLo, oldHi, oldN := m.hndLo, m.hndHi, m.nHandlers
	m.nHandlers = len(m.Handlers)
	m.hndLo, m.hndHi = ^uint64(0), 0
	for a := range m.Handlers {
		if a < m.hndLo {
			m.hndLo = a
		}
		if a > m.hndHi {
			m.hndHi = a
		}
	}
	if m.hndLo != oldLo || m.hndHi != oldHi || m.nHandlers != oldN {
		m.flushBlocks()
	}
}

// NewThread creates a thread starting at pc with the given stack pointer
// and stack bounds.
func (m *Machine) NewThread(pc, rsp, stackLo, stackHi uint64) *Thread {
	t := &Thread{ID: len(m.Threads), PC: pc, StackLo: stackLo, StackHi: stackHi, m: m}
	t.Regs[asm.RSP] = rsp
	if m.Conf.CacheModel {
		t.l1 = newCache()
	}
	m.Threads = append(m.Threads, t)
	return t
}

// fault halts the thread with a fault at the current pc, stamping the
// fault with the thread's simulated cycle count. Every fault delivery in
// every dispatch mode funnels through here (execRun, stepBlocks, the fuel
// discipline in Run/runBlocks, and handler faults in Step), and the
// callers all write back their cycle accounting before calling, so the
// stamp is bit-identical across stepping, superblock and chained dispatch.
func (t *Thread) fault(f *Fault) *Fault {
	f.PC = t.PC
	f.Cycle = t.Stats.Cycles
	t.Fault = f
	t.Halted = true
	return f
}

// AddCycles charges the thread extra cycles (used by trusted handlers).
func (t *Thread) AddCycles(n uint64) { t.Stats.Cycles += n }

// Push pushes an 8-byte value onto the thread's stack.
func (t *Thread) Push(val uint64) *Fault {
	t.Regs[asm.RSP] -= 8
	return t.m.Mem.Write(t.Regs[asm.RSP], 8, val)
}

// Pop pops an 8-byte value from the thread's stack.
func (t *Thread) Pop() (uint64, *Fault) {
	v, f := t.m.Mem.Read(t.Regs[asm.RSP], 8)
	if f != nil {
		return 0, f
	}
	t.Regs[asm.RSP] += 8
	return v, nil
}

// EA computes the effective address of a memory operand for this thread,
// applying segment bases and the 32-bit operand constraint of the
// segmentation scheme.
func (t *Thread) EA(m asm.Mem) uint64 { return t.ea(&m, true) }

// ea is the pointer form of EA used by the dispatch loop: it avoids
// copying the operand out of the decode trace. useSeg=false computes the
// raw address without the segment base (lea and the bndcl/bndcu memory
// forms, as on x64).
func (t *Thread) ea(m *asm.Mem, useSeg bool) uint64 {
	var base, index uint64
	if m.Base != asm.NoReg {
		base = t.Regs[m.Base]
	}
	if m.Index != asm.NoReg {
		index = t.Regs[m.Index]
	}
	if m.Use32 {
		base = uint64(uint32(base))
		index = uint64(uint32(index))
	}
	scale := uint64(m.Scale)
	if scale == 0 {
		scale = 1
	}
	ea := base + index*scale + uint64(int64(m.Disp))
	if useSeg {
		switch m.Seg {
		case asm.SegFS:
			ea += t.FS
		case asm.SegGS:
			ea += t.GS
		}
	}
	return ea
}

func (t *Thread) memCost(addr uint64) uint64 {
	if t.l1 == nil {
		return 0
	}
	if t.l1.access(addr) {
		return 0
	}
	t.Stats.CacheMisses++
	return t.m.Conf.MissPenalty
}

func (t *Thread) setCmpFlags(a, b uint64) {
	d := a - b
	t.ZF = d == 0
	t.SF = int64(d) < 0
	t.CF = a < b
	// Signed overflow of a - b.
	t.OF = (int64(a) < 0) != (int64(b) < 0) && (int64(d) < 0) != (int64(a) < 0)
}

func (t *Thread) setTestFlags(v uint64) {
	t.ZF = v == 0
	t.SF = int64(v) < 0
	t.CF = false
	t.OF = false
}

func (t *Thread) condTrue(c asm.Cond) bool {
	switch c {
	case asm.CondE:
		return t.ZF
	case asm.CondNE:
		return !t.ZF
	case asm.CondL:
		return t.SF != t.OF
	case asm.CondLE:
		return t.ZF || t.SF != t.OF
	case asm.CondG:
		return !t.ZF && t.SF == t.OF
	case asm.CondGE:
		return t.SF == t.OF
	case asm.CondB:
		return t.CF
	case asm.CondBE:
		return t.CF || t.ZF
	case asm.CondA:
		return !t.CF && !t.ZF
	case asm.CondAE:
		return !t.CF
	case asm.CondS:
		return t.SF
	case asm.CondNS:
		return !t.SF
	}
	return false
}

// extend narrows v to size bytes and zero- or sign-extends back to 64 bits.
func extend(v uint64, size uint8, signed bool) uint64 {
	switch size {
	case 1:
		if signed {
			return uint64(int64(int8(v)))
		}
		return uint64(uint8(v))
	case 2:
		if signed {
			return uint64(int64(int16(v)))
		}
		return uint64(uint16(v))
	case 4:
		if signed {
			return uint64(int64(int32(v)))
		}
		return uint64(uint32(v))
	}
	return v
}

// Step executes one instruction (or one trusted handler) on thread t.
// It returns a fault if the thread faulted. Step always executes exactly
// one instruction regardless of Config.Superblocks: it is the reference
// the superblock dispatcher is differentially tested against.
func (t *Thread) Step() *Fault {
	m := t.m
	if t.Halted {
		return t.Fault
	}
	// Trusted-handler dispatch, hoisted behind a cheap PC-range test: the
	// map is only probed when the PC falls inside the handler address
	// range (handlers live in the T region, far from any U code).
	if len(m.Handlers) != m.nHandlers {
		m.rebuildHandlerIndex()
	}
	if t.PC >= m.hndLo && t.PC <= m.hndHi {
		if h, ok := m.Handlers[t.PC]; ok {
			t.Stats.TrustedCall++
			// Capture the handler address and cycle count before the call:
			// the handler performs the return sequence (moving t.PC) and
			// charges its transition cost, and the profile attributes that
			// delta to the handler's own address.
			hpc, c0 := t.PC, t.Stats.Cycles
			f := h(m, t)
			if prof := m.prof; prof != nil {
				prof.add(hpc, t.Stats.Cycles-c0, 0)
			}
			if f != nil {
				return t.fault(f)
			}
			return nil
		}
	}

	// Execute the flattened run entered at the current PC through the
	// shared engine. A run already cached by block dispatch is reused
	// (slot 0, budget 1); a miss builds a one-slot run, so stepping
	// through a long straight-line stretch stays linear instead of
	// piling up overlapping suffix runs. Either way Step and block
	// dispatch share one executor, one run cache, and one fault path.
	tr := m.lastTrace
	if tr == nil || t.PC-tr.lo >= tr.size {
		var f *Fault
		if tr, f = m.traceFor(t.PC); f != nil {
			return t.fault(f)
		}
		m.lastTrace = tr
	}
	off := t.PC - tr.lo
	run := tr.runs[off]
	if run == nil {
		var f *Fault
		if run, f = tr.buildBlock(m, off, 1); f != nil {
			return t.fault(f)
		}
	}
	_, f := t.execRun(run, tr, 1, false)
	return f
}

// execRun executes up to max instructions starting at run's entry slot,
// then — with chain set and budget remaining — follows the run's cached
// successor links (resolving them on first use) so hot loops execute
// run-to-run without returning through the dispatcher. Every run is a
// flattened superblock (see superblock.go): slot k's instruction is
// insts[k], its PC is pcs[k] and its fall-through PC is pcs[k+1], so the
// interior pays no lens[] walk — in fact no per-instruction PC work at
// all: only control-flow ops consult pcs, a faulting instruction's PC is
// reconstructed from its slot index (run.pcs[k-1]) after the loop, and
// the resume PC of a completed run is either the terminator's redirect
// or the fall-through pcs[k].
//
// The instruction count is recovered from the slot count on exit and the
// Cycles counter is kept in a local, written back only on exit, so
// neither block interiors nor chained block boundaries pay
// per-instruction (or per-block) bookkeeping. All architectural effects
// — register updates, memory accesses, flag math, per-op costs, fault
// kinds/addresses/messages and the PC left behind on a fault or exit —
// are identical to stepping one instruction at a time; the faulting
// instruction counts toward Instrs (but not Cycles), as it always has.
//
// Returns the number of instructions charged, including a faulting one.
func (t *Thread) execRun(run *blockRun, tr *codeTrace, max int, chain bool) (int, *Fault) {
	if max <= 0 {
		return 0, nil
	}
	var fault *Fault
	var nextPC uint64
	done := 0
	k := 0
	prof := t.m.prof
	var profC0 uint64
chained:
	for {
		if prof != nil {
			profC0 = t.Stats.Cycles
		}
		nb := run.n
		if rem := max - done; nb > rem {
			nb = rem
		}
		k = 0
		if run.ops != nil && nb == run.n {
			// Threaded dispatch: the whole block fits the budget, so walk
			// the flatten-time handler array (see dispatch.go). Budget
			// bites fall through to the switch walk below — the ops array
			// parallels the full slot program, not an arbitrary prefix.
			k, nextPC, fault = t.execThreaded(run)
			goto charge
		}
		{
			// Switch dispatch. xs is the slot program: the fused program
			// when the whole block runs (fused slots execute their idiom
			// with one dispatch), the raw constituent list when a fuel or
			// quantum bite truncates the block — a bite landing strictly
			// inside a fused slot de-fuses it (Stats.Defuses) so the
			// partial execution is constituent-exact. j indexes slots, k
			// counts constituent instructions; pcs[] and cum[] stay
			// constituent-indexed throughout.
			xs := run.insts[:nb]
			if run.xinsts != nil {
				if nb == run.n {
					xs = run.xinsts
				} else if run.splitsFused(nb) {
					t.Stats.Defuses++
				}
			}
			j := 0
		loop:
			for j < len(xs) {
				ip := &xs[j]
				j++
				k++
				// Static per-op base costs are precomputed into run.cum (a
				// prefix sum charged once per block below); the cases only add
				// the dynamic components — cache-miss penalties and FP-masked
				// bound checks — that depend on machine state.
				switch ip.Op {
				case asm.OpNop:
				case asm.OpMovRR:
					t.Regs[ip.Dst] = t.Regs[ip.Src]
				case asm.OpMovRI:
					t.Regs[ip.Dst] = uint64(ip.Imm)
				case asm.OpLea:
					// lea computes the raw address without the segment base (as x64).
					t.Regs[ip.Dst] = t.ea(&ip.M, false)
				case asm.OpLoad:
					addr := t.ea(&ip.M, true)
					v, f := t.m.Mem.Read(addr, ip.M.Size)
					if f != nil {
						fault = f
						break loop
					}
					t.Regs[ip.Dst] = extend(v, ip.M.Size, ip.M.Signed)
					t.Stats.Loads++
					t.Stats.Cycles += t.memCost(addr)
				case asm.OpStore:
					addr := t.ea(&ip.M, true)
					if f := t.m.Mem.Write(addr, ip.M.Size, t.Regs[ip.Src]); f != nil {
						fault = f
						break loop
					}
					t.Stats.Stores++
					t.Stats.Cycles += t.memCost(addr)
				case asm.OpPush:
					if f := t.Push(t.Regs[ip.Src]); f != nil {
						fault = f
						break loop
					}
					t.Stats.Stores++
					t.Stats.Cycles += t.memCost(t.Regs[asm.RSP])
				case asm.OpPop:
					v, f := t.Pop()
					if f != nil {
						fault = f
						break loop
					}
					t.Regs[ip.Dst] = v
					t.Stats.Loads++
					t.Stats.Cycles += t.memCost(t.Regs[asm.RSP] - 8)

				case asm.OpAddRR:
					t.Regs[ip.Dst] += t.Regs[ip.Src]
				case asm.OpAddRI:
					t.Regs[ip.Dst] += uint64(ip.Imm)
				case asm.OpSubRR:
					t.Regs[ip.Dst] -= t.Regs[ip.Src]
				case asm.OpSubRI:
					t.Regs[ip.Dst] -= uint64(ip.Imm)
				case asm.OpMulRR:
					t.Regs[ip.Dst] = uint64(int64(t.Regs[ip.Dst]) * int64(t.Regs[ip.Src]))
				case asm.OpMulRI:
					t.Regs[ip.Dst] = uint64(int64(t.Regs[ip.Dst]) * ip.Imm)
				case asm.OpDivRR:
					d := int64(t.Regs[ip.Src])
					n := int64(t.Regs[ip.Dst])
					if d == 0 || (d == -1 && n == math.MinInt64) {
						// x64 #DE covers both divide-by-zero and quotient overflow
						// (INT64_MIN / -1). Go itself defines the overflow case to
						// wrap, which is what the interpreter used to do — faulting
						// instead matches the modeled hardware.
						fault = &Fault{Kind: FaultDivide}
						break loop
					}
					t.Regs[ip.Dst] = uint64(n / d)
				case asm.OpModRR:
					d := int64(t.Regs[ip.Src])
					n := int64(t.Regs[ip.Dst])
					if d == 0 || (d == -1 && n == math.MinInt64) {
						fault = &Fault{Kind: FaultDivide}
						break loop
					}
					t.Regs[ip.Dst] = uint64(n % d)
				case asm.OpAndRR:
					t.Regs[ip.Dst] &= t.Regs[ip.Src]
				case asm.OpAndRI:
					t.Regs[ip.Dst] &= uint64(ip.Imm)
				case asm.OpOrRR:
					t.Regs[ip.Dst] |= t.Regs[ip.Src]
				case asm.OpOrRI:
					t.Regs[ip.Dst] |= uint64(ip.Imm)
				case asm.OpXorRR:
					t.Regs[ip.Dst] ^= t.Regs[ip.Src]
				case asm.OpXorRI:
					t.Regs[ip.Dst] ^= uint64(ip.Imm)
				case asm.OpShlRR:
					t.Regs[ip.Dst] <<= t.Regs[ip.Src] & 63
				case asm.OpShlRI:
					t.Regs[ip.Dst] <<= uint64(ip.Imm) & 63
				case asm.OpShrRR:
					t.Regs[ip.Dst] >>= t.Regs[ip.Src] & 63
				case asm.OpShrRI:
					t.Regs[ip.Dst] >>= uint64(ip.Imm) & 63
				case asm.OpSarRR:
					t.Regs[ip.Dst] = uint64(int64(t.Regs[ip.Dst]) >> (t.Regs[ip.Src] & 63))
				case asm.OpSarRI:
					t.Regs[ip.Dst] = uint64(int64(t.Regs[ip.Dst]) >> (uint64(ip.Imm) & 63))
				case asm.OpNeg:
					t.Regs[ip.Dst] = -t.Regs[ip.Dst]
				case asm.OpNot:
					t.Regs[ip.Dst] = ^t.Regs[ip.Dst]

				case asm.OpCmpRR:
					t.setCmpFlags(t.Regs[ip.Dst], t.Regs[ip.Src])
				case asm.OpCmpRI:
					t.setCmpFlags(t.Regs[ip.Dst], uint64(ip.Imm))
				case asm.OpCmpMR:
					addr := t.ea(&ip.M, true)
					v, f := t.m.Mem.Read(addr, 8)
					if f != nil {
						fault = f
						break loop
					}
					t.setCmpFlags(v, t.Regs[ip.Src])
					t.Stats.Loads++
					t.Stats.Cycles += t.memCost(addr)
				case asm.OpTestRR:
					t.setTestFlags(t.Regs[ip.Dst] & t.Regs[ip.Src])
				case asm.OpTestRI:
					t.setTestFlags(t.Regs[ip.Dst] & uint64(ip.Imm))
				case asm.OpSetCC:
					if t.condTrue(ip.Cond) {
						t.Regs[ip.Dst] = 1
					} else {
						t.Regs[ip.Dst] = 0
					}

				case asm.OpJmp:
					nextPC = uint64(ip.Imm)
				case asm.OpJcc:
					if t.condTrue(ip.Cond) {
						nextPC = uint64(ip.Imm)
					} else {
						nextPC = run.pcs[k]
					}
				case asm.OpJmpR:
					nextPC = t.Regs[ip.Src]
				case asm.OpCall:
					if f := t.Push(run.pcs[k]); f != nil {
						fault = f
						break loop
					}
					t.Stats.Cycles += t.memCost(t.Regs[asm.RSP])
					nextPC = uint64(ip.Imm)
				case asm.OpICall:
					if f := t.Push(run.pcs[k]); f != nil {
						fault = f
						break loop
					}
					t.Stats.Cycles += t.memCost(t.Regs[asm.RSP])
					nextPC = t.Regs[ip.Src]
				case asm.OpRet:
					v, f := t.Pop()
					if f != nil {
						fault = f
						break loop
					}
					t.Stats.Cycles += t.memCost(t.Regs[asm.RSP] - 8)
					nextPC = v
				case asm.OpTrap:
					fault = &Fault{Kind: FaultCFI, Msg: "trap"}
					break loop
				case asm.OpExit:
					t.Halted = true
					t.ExitCode = t.Regs[asm.RetReg]
					t.PC = run.pcs[k-1]
					break loop

				case asm.OpBndCLMem, asm.OpBndCUMem, asm.OpBndCLReg, asm.OpBndCUReg:
					t.Stats.BndChecks++
					masked := false
					if t.fpCredit > 0 {
						t.fpCredit--
						t.Stats.BndMasked++
						masked = true
					}
					var addr uint64
					switch ip.Op {
					case asm.OpBndCLMem, asm.OpBndCUMem:
						// As with lea, the check is on the raw address (no segment).
						addr = t.ea(&ip.M, false)
					default:
						addr = t.Regs[ip.Src]
					}
					b := t.Bnd[ip.Bnd]
					switch ip.Op {
					case asm.OpBndCLMem, asm.OpBndCLReg:
						if addr < b.Lo {
							fault = &Fault{Kind: FaultBounds, Addr: addr,
								Msg: fmt.Sprintf("below %s.lower=%#x", ip.Bnd, b.Lo)}
							break loop
						}
					default:
						if addr > b.Hi {
							fault = &Fault{Kind: FaultBounds, Addr: addr,
								Msg: fmt.Sprintf("above %s.upper=%#x", ip.Bnd, b.Hi)}
							break loop
						}
					}
					if masked {
						// The check hid behind FP work: refund the static unit
						// cost charged by the block's prefix sum. A faulting
						// masked check never gets here — its cost was never
						// charged (the prefix sum excludes the faulting slot).
						t.Stats.Cycles--
					}

				case asm.OpChkSP:
					sp := t.Regs[asm.RSP]
					if sp < t.StackLo || sp > t.StackHi {
						fault = &Fault{Kind: FaultStack, Addr: sp,
							Msg: fmt.Sprintf("rsp outside [%#x,%#x]", t.StackLo, t.StackHi)}
						break loop
					}

				case asm.OpFLoad:
					addr := t.ea(&ip.M, true)
					v, f := t.m.Mem.Read(addr, 8)
					if f != nil {
						fault = f
						break loop
					}
					t.FRegs[ip.FDst] = math.Float64frombits(v)
					t.Stats.Loads++
					t.Stats.Cycles += t.memCost(addr)
					t.grantFPCredit()
				case asm.OpFStore:
					addr := t.ea(&ip.M, true)
					if f := t.m.Mem.Write(addr, 8, math.Float64bits(t.FRegs[ip.FSrc])); f != nil {
						fault = f
						break loop
					}
					t.Stats.Stores++
					t.Stats.Cycles += t.memCost(addr)
					t.grantFPCredit()
				case asm.OpFMovRR:
					t.FRegs[ip.FDst] = t.FRegs[ip.FSrc]
				case asm.OpFMovI:
					t.FRegs[ip.FDst] = math.Float64frombits(uint64(ip.Imm))
				case asm.OpFAdd:
					t.FRegs[ip.FDst] += t.FRegs[ip.FSrc]
					t.grantFPCredit()
				case asm.OpFSub:
					t.FRegs[ip.FDst] -= t.FRegs[ip.FSrc]
					t.grantFPCredit()
				case asm.OpFMul:
					t.FRegs[ip.FDst] *= t.FRegs[ip.FSrc]
					t.grantFPCredit()
				case asm.OpFDiv:
					t.FRegs[ip.FDst] /= t.FRegs[ip.FSrc]
					t.grantFPCredit()
				case asm.OpFMax:
					if t.FRegs[ip.FSrc] > t.FRegs[ip.FDst] {
						t.FRegs[ip.FDst] = t.FRegs[ip.FSrc]
					}
					t.grantFPCredit()
				case asm.OpFCmp:
					a, b := t.FRegs[ip.FDst], t.FRegs[ip.FSrc]
					if math.IsNaN(a) || math.IsNaN(b) {
						t.ZF, t.CF = true, true // x64 unordered result
					} else {
						t.ZF = a == b
						t.CF = a < b
					}
					t.SF, t.OF = false, false
					t.grantFPCredit()
				case asm.OpCvtIF:
					t.FRegs[ip.FDst] = float64(int64(t.Regs[ip.Src]))
				case asm.OpCvtFI:
					t.Regs[ip.Dst] = uint64(int64(t.FRegs[ip.FSrc]))
				case asm.OpMovQIF:
					t.FRegs[ip.FDst] = math.Float64frombits(t.Regs[ip.Src])
				case asm.OpMovQFI:
					t.Regs[ip.Dst] = math.Float64bits(t.FRegs[ip.FSrc])

				case asm.OpWrFS:
					t.FS = t.Regs[ip.Src]
				case asm.OpWrGS:
					t.GS = t.Regs[ip.Src]
				case asm.OpSyscall:
					fault = &Fault{Kind: FaultPerm, Msg: "syscall from untrusted code"}
					break loop

				case opFuseAluCmpJcc:
					// Fused idioms (see fuse.go): one dispatch executes the
					// whole constituent sequence. k advances by the constituent
					// count so the cum[]/pcs[] contracts below keep holding; an
					// interior fault advances k only past the clean constituents
					// plus the faulting one, exactly as the unfused walk would.
					fs := &run.fused[ip.Imm]
					nextPC = t.fuseAluCmpJcc(fs)
					t.Stats.FusedSlots++
					k += len(fs.insts) - 1
				case opFuseAluPack:
					fs := &run.fused[ip.Imm]
					t.packExec(fs.uops)
					t.Stats.FusedSlots++
					k += len(fs.insts) - 1
				case opFuseCmpJcc:
					fs := &run.fused[ip.Imm]
					nextPC = t.fuseCmpJcc(fs)
					t.Stats.FusedSlots++
					k++
				case opFuseLoadOpStore:
					fs := &run.fused[ip.Imm]
					nc, f := t.fuseLoadOpStore(fs)
					if f != nil {
						t.Stats.Defuses++
						k += nc
						fault = f
						break loop
					}
					t.Stats.FusedSlots++
					k += 2
				case opFuseChkLoad, opFuseChkStore:
					fs := &run.fused[ip.Imm]
					nc, f := t.fuseChk(fs)
					if f != nil {
						t.Stats.Defuses++
						k += nc
						fault = f
						break loop
					}
					t.Stats.FusedSlots++
					k++

				default:
					fault = &Fault{Kind: FaultDecode, Msg: "unimplemented opcode " + ip.Op.String()}
					break loop
				}

			}
		}

	charge:
		done += k
		if fault != nil {
			// Charge the static costs of the slots before the faulting one:
			// a faulting instruction counts toward Instrs but not Cycles,
			// as it always has.
			t.Stats.Cycles += uint64(run.cum[k-1])
			if prof != nil {
				prof.add(run.pcs[0], t.Stats.Cycles-profC0, uint64(k))
			}
			break chained
		}
		// cum[k] includes a halting exit's own cost; dynamic components
		// (cache misses, FP masking) were added inline by the cases.
		t.Stats.Cycles += uint64(run.cum[k])
		if prof != nil {
			// Attribute the block's cycle delta — the static cum[] charge
			// plus every dynamic component the cases added — to its entry
			// PC, and its executed slot count to Instrs. Summed over a run
			// this conserves Stats exactly (see profile.go).
			prof.add(run.pcs[0], t.Stats.Cycles-profC0, uint64(k))
		}
		if t.Halted || k < run.n || done >= max || !chain {
			break chained
		}
		// The whole block completed with budget left: follow (or resolve
		// and cache) the chain link its terminator selected. nextPC is the
		// PC the terminator produced, so a jcc picks its taken edge iff
		// nextPC matches the branch target. A nil link — different trace,
		// potential trusted-handler PC, or an undecodable entry — falls
		// back to the dispatcher, which re-probes everything chaining
		// skips and delivers any fetch fault with stepping-identical
		// charging.
		var next *blockRun
		switch run.term {
		case asm.OpJmp:
			if next = run.next; next == nil {
				next = tr.chainTarget(t.m, nextPC)
				run.next = next
			}
		case asm.OpJcc:
			if nextPC == run.takenPC {
				if next = run.taken; next == nil {
					next = tr.chainTarget(t.m, nextPC)
					run.taken = next
				}
			} else {
				if next = run.fall; next == nil {
					next = tr.chainTarget(t.m, nextPC)
					run.fall = next
				}
			}
		}
		if next == nil {
			break
		}
		run = next
	}

	t.Stats.Instrs += uint64(done)
	if fault != nil {
		// Reconstruct the faulting instruction's PC from its slot index.
		t.PC = run.pcs[k-1]
		return done, t.fault(fault)
	}
	if !t.Halted {
		if k == run.n && run.term != asm.OpInvalid {
			// The run completed through a redirecting terminator (trap,
			// syscall and exit never reach here): resume where it pointed.
			t.PC = nextPC
		} else {
			// Straight-line end: budget bite, early-ended block, or a plain
			// interior prefix — resume at the fall-through slot PC.
			t.PC = run.pcs[k]
		}
	}
	return done, nil
}

func (t *Thread) grantFPCredit() {
	if t.fpCredit < t.m.Conf.FPMaskDepth {
		t.fpCredit++
	}
}

// quantum is the round-robin scheduling slice: how many instructions
// (counting trusted-handler dispatches) each live thread executes before
// yielding to the next. Both dispatch modes share it, so the thread
// interleaving — and therefore every simulated result — is identical.
const quantum = 1024

// Run executes all live threads round-robin until every thread halts (or
// one faults). It returns the first fault encountered, if any. With
// Conf.Superblocks set, dispatch is per basic block (see superblock.go);
// otherwise one instruction at a time. The two modes are bit-identical in
// every simulated outcome.
func (m *Machine) Run() *Fault {
	m.rebuildHandlerIndex()
	m.fuel = m.Conf.DefaultFuel
	if m.Conf.Superblocks {
		return m.runBlocks()
	}
	for {
		live := false
		for _, t := range m.Threads {
			if t.Halted {
				continue
			}
			live = true
			for i := 0; i < quantum && !t.Halted; i++ {
				if m.fuel > 0 {
					m.fuel--
					if m.fuel == 0 {
						return t.fault(&Fault{Kind: FaultFuel})
					}
				}
				if f := t.Step(); f != nil {
					return f
				}
			}
		}
		if !live {
			return nil
		}
	}
}

// runBlocks is Run's superblock mode: each thread's quantum is spent in
// block-sized bites. The per-instruction fuel discipline is preserved
// exactly: stepping mode charges one fuel unit per Step and faults
// *before* the instruction that would consume the last unit, so with F
// units exactly F-1 instructions execute. Here the bite is capped at
// fuel-1 and the FaultFuel is raised when the tank is down to one unit.
func (m *Machine) runBlocks() *Fault {
	for {
		live := false
		for _, t := range m.Threads {
			if t.Halted {
				continue
			}
			live = true
			for i := 0; i < quantum && !t.Halted; {
				budget := quantum - i
				if m.fuel > 0 {
					if m.fuel == 1 {
						m.fuel = 0
						return t.fault(&Fault{Kind: FaultFuel})
					}
					if rem := m.fuel - 1; uint64(budget) > rem {
						budget = int(rem)
					}
				}
				n, f := t.stepBlocks(budget)
				if m.fuel > 0 {
					m.fuel -= uint64(n)
				}
				i += n
				if f != nil {
					return f
				}
			}
		}
		if !live {
			return nil
		}
	}
}

// TotalStats sums the stats of all threads.
func (m *Machine) TotalStats() Stats {
	var s Stats
	for _, t := range m.Threads {
		s.Add(t.Stats)
	}
	return s
}

// WallCycles estimates the wall-clock cycle count of the run: threads are
// assigned to Cores cores using longest-processing-time-first scheduling
// and the makespan is returned. With one thread this is just its cycle
// count; with more threads than cores the load is shared.
func (m *Machine) WallCycles() uint64 {
	loads := make([]uint64, m.Conf.Cores)
	// LPT: sort thread cycle counts descending, assign to least-loaded core.
	cycles := make([]uint64, 0, len(m.Threads))
	for _, t := range m.Threads {
		cycles = append(cycles, t.Stats.Cycles)
	}
	for i := 0; i < len(cycles); i++ {
		maxI := i
		for j := i + 1; j < len(cycles); j++ {
			if cycles[j] > cycles[maxI] {
				maxI = j
			}
		}
		cycles[i], cycles[maxI] = cycles[maxI], cycles[i]
		minCore := 0
		for c := 1; c < len(loads); c++ {
			if loads[c] < loads[minCore] {
				minCore = c
			}
		}
		loads[minCore] += cycles[i]
	}
	var max uint64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}
