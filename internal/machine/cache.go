package machine

// cache models a set-associative L1 data cache with LRU replacement. Each
// hardware thread (core) has its own instance. The model only affects the
// cycle count, never the architectural state — it exists so that effects
// like the extra cache pressure of split public/private stacks (paper
// Fig. 6, OurMPX vs OurMPX-Sep) are observable.
type cache struct {
	// lines is the whole cache as one flat array, set-major: set s owns
	// lines[s*cacheWays : (s+1)*cacheWays]. One allocation and no
	// per-access pointer chase through a slice-of-slices header.
	lines    []cacheLine
	setMask  uint64
	lineBits uint
	hits     uint64
	misses   uint64

	// clock is the per-cache LRU timestamp source. It is per instance (not
	// a process global) so that a machine's replacement decisions depend
	// only on its own access sequence: LRU comparisons are always between
	// lines of the same cache, so only the relative order of that cache's
	// own accesses matters, and a private monotonic clock preserves it
	// while keeping runs reproducible no matter what else the process has
	// simulated before.
	clock uint64
}

type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64
}

// cache geometry: 32 KB, 64-byte lines, 8-way (Skylake-like L1D).
const (
	cacheLineBits = 6
	cacheWays     = 8
	cacheSets     = 32 * 1024 / (1 << cacheLineBits) / cacheWays
)

func newCache() *cache {
	return &cache{
		lines:    make([]cacheLine, cacheSets*cacheWays),
		setMask:  cacheSets - 1,
		lineBits: cacheLineBits,
	}
}

// access touches addr and reports whether it hit. The hit scan and the
// LRU victim scan share one pass; the replacement policy (first invalid
// way by index, else the least-recently-used way) is unchanged, so miss
// counts — and therefore simulated cycles — are identical.
func (c *cache) access(addr uint64) bool {
	c.clock++
	line := addr >> c.lineBits
	si := (line & c.setMask) * cacheWays
	set := c.lines[si : si+cacheWays : si+cacheWays]
	tag := line >> 5 // bits above the set index
	victim, invalid := 0, -1
	for i := range set {
		if set[i].valid {
			if set[i].tag == tag {
				set[i].lru = c.clock
				c.hits++
				return true
			}
			if set[i].lru < set[victim].lru {
				victim = i
			}
		} else if invalid < 0 {
			invalid = i
		}
	}
	c.misses++
	if invalid >= 0 {
		victim = invalid
	}
	set[victim] = cacheLine{tag: tag, valid: true, lru: c.clock}
	return false
}
