package machine

import (
	"fmt"
	"testing"

	"confllvm/internal/asm"
)

// White-box tests for superinstruction fusion (fuse.go) and its
// interaction with fuel bites, faults, Step's short runs, and trusted
// handler registration. The black-box cross-mode matrix lives in
// diff_test.go; here we pin the fusion mechanics themselves: which
// idioms match, what the fused slot program looks like, and that every
// event landing inside a fused slot de-fuses bit-exactly.

// fuseParity runs insts under per-instruction stepping and every
// superblock dispatch mode with an optional fuel limit and thread setup
// hook (for bound registers), and requires identical faults, registers,
// flags, architectural stats and memory across all modes.
func fuseParity(t *testing.T, insts []asm.Inst, fuel uint64, setup func(*Thread)) {
	t.Helper()
	confA := DefaultConfig()
	confA.Superblocks = false
	confA.Fuse = false
	if fuel > 0 {
		confA.DefaultFuel = fuel
	}
	mA, thA := buildFor(t, confA, insts)
	if setup != nil {
		setup(thA)
	}
	fA := mA.Run()
	for _, mode := range parityModes {
		confB := confA
		confB.Superblocks = true
		confB.Chain = mode.chain
		confB.Fuse = mode.fuse
		confB.Threaded = mode.threaded
		mB, thB := buildFor(t, confB, insts)
		if setup != nil {
			setup(thB)
		}
		fB := mB.Run()
		if (fA == nil) != (fB == nil) {
			t.Fatalf("[%s fuel=%d] fault mismatch: stepwise=%v superblock=%v", mode.name, fuel, fA, fB)
		}
		if fA != nil {
			if *fA != *fB {
				t.Fatalf("[%s fuel=%d] fault mismatch:\nstepwise:   %+v\nsuperblock: %+v", mode.name, fuel, *fA, *fB)
			}
			if fA.Error() != fB.Error() {
				t.Fatalf("[%s fuel=%d] fault message mismatch:\nstepwise:   %s\nsuperblock: %s",
					mode.name, fuel, fA.Error(), fB.Error())
			}
		}
		if thA.Regs != thB.Regs {
			t.Fatalf("[%s fuel=%d] register mismatch:\nstepwise:   %v\nsuperblock: %v", mode.name, fuel, thA.Regs, thB.Regs)
		}
		if thA.PC != thB.PC {
			t.Fatalf("[%s fuel=%d] PC mismatch: stepwise=%#x superblock=%#x", mode.name, fuel, thA.PC, thB.PC)
		}
		if thA.ZF != thB.ZF || thA.SF != thB.SF || thA.CF != thB.CF || thA.OF != thB.OF {
			t.Fatalf("[%s fuel=%d] flag mismatch", mode.name, fuel)
		}
		if thA.Stats.Arch() != thB.Stats.Arch() {
			t.Fatalf("[%s fuel=%d] stats mismatch:\nstepwise:   %+v\nsuperblock: %+v", mode.name, fuel, thA.Stats, thB.Stats)
		}
		if dA, dB := mA.Mem.Digest(), mB.Mem.Digest(); dA != dB {
			t.Fatalf("[%s fuel=%d] memory digest mismatch: %#x vs %#x", mode.name, fuel, dA, dB)
		}
	}
}

// idiomLoop builds a countdown loop whose body contains the given
// instructions followed by the sub/cmp/jcc tail, iterating iters times.
func idiomLoop(body []asm.Inst, iters int64) []asm.Inst {
	pre := []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100100},
		{Op: asm.OpMovRI, Dst: asm.RCX, Imm: iters},
	}
	loopStart := int64(0x1000)
	for _, in := range pre {
		loopStart += encodeLen(in)
	}
	insts := append(pre, body...)
	return append(insts,
		asm.Inst{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		asm.Inst{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	)
}

// fuseProgram is one bite-matrix workload: a loop whose body exercises a
// set of fused idioms. bodyLen counts the loop body's constituents
// (body + the 3-instruction tail) so the fuel sweep can be sized to land
// a bite on every constituent position across two iterations.
type fuseProgram struct {
	name  string
	body  []asm.Inst
	setup func(*Thread)
}

func fusePrograms() []fuseProgram {
	wideBnd := func(th *Thread) {
		th.Bnd[asm.BND0] = BndRange{Lo: 0x100000, Hi: 0x10FFFF}
	}
	return []fuseProgram{
		// The tail alone: sub/cmp/jcc loop head (fkAluCmpJcc).
		{name: "alu-cmp-jcc", body: []asm.Inst{
			{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
		}},
		// A bare cmp/jcc pair: it opens the loop-body block (nothing
		// packable precedes it inside the block), so it fuses as
		// fkCmpJcc rather than being absorbed into an ALU-pack head.
		{name: "cmp-jcc", body: []asm.Inst{
			{Op: asm.OpCmpRI, Dst: asm.RDX, Imm: 1 << 40},
			{Op: asm.OpJcc, Cond: asm.CondE, Imm: 0x1000}, // never taken
		}},
		// A standalone ALU pack broken off from the tail by a load.
		{name: "alu-pack", body: []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 7},
			{Op: asm.OpXorRR, Dst: asm.RDX, Src: asm.RAX},
			{Op: asm.OpShlRI, Dst: asm.RAX, Imm: 1},
			{Op: asm.OpLoad, Dst: asm.RSI, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
		}},
		// load/alu/store read-modify-write triple (fkLoadOpStore).
		{name: "load-op-store", body: []asm.Inst{
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
			{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 7},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		}},
		// MPX check+load and check+store pairs (fkChkLoad, fkChkStore).
		{name: "chk-load-store", setup: wideBnd, body: []asm.Inst{
			{Op: asm.OpBndCLReg, Src: asm.RBX, Bnd: asm.BND0},
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
			{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
			{Op: asm.OpBndCUReg, Src: asm.RBX, Bnd: asm.BND0},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		}},
	}
}

// TestFuseBiteMatrix lands fuel bites on every constituent position of
// every fused idiom, in every dispatch mode. Fuels 1..2*body+4 cut at
// each slot across the first two loop iterations (including both bite
// positions strictly inside each fused slot); the quantum-straddling
// fuels catch bites induced by scheduling boundaries deep into the run.
func TestFuseBiteMatrix(t *testing.T) {
	for _, p := range fusePrograms() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			insts := idiomLoop(p.body, 1<<40) // effectively infinite: every run fuel-faults
			sweep := 2*(len(p.body)+3) + 4
			fuels := make([]uint64, 0, sweep+4)
			for f := 1; f <= sweep; f++ {
				fuels = append(fuels, uint64(f))
			}
			fuels = append(fuels, 1023, 1024, 1025, 4097)
			for _, fuel := range fuels {
				fuseParity(t, insts, fuel, p.setup)
			}
		})
	}
}

// TestFuseCompletionParity runs each idiom loop to completion (no fuel
// cut) across all dispatch modes, and asserts — white-box — that the
// fused modes actually executed fused slots (the parity sweep must not
// pass vacuously with fusion never engaging).
func TestFuseCompletionParity(t *testing.T) {
	for _, p := range fusePrograms() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			insts := idiomLoop(p.body, 64)
			fuseParity(t, insts, 0, p.setup)

			conf := DefaultConfig()
			conf.Superblocks = true
			conf.Chain = true
			conf.Fuse = true
			m, th := buildFor(t, conf, insts)
			if p.setup != nil {
				p.setup(th)
			}
			if f := m.Run(); f != nil {
				t.Fatal(f)
			}
			if th.Stats.FusedSlots == 0 {
				t.Fatalf("%s: fused mode executed no fused slots — the parity matrix is vacuous", p.name)
			}
		})
	}
}

// TestFuseFaultInsideIdiom places a fault on each faultable constituent
// of each fused idiom — the load, the store, and the bound check — and
// requires the fault's kind, address, PC, message, and all partial state
// to match per-instruction stepping; fused dispatch must record the
// de-fuse.
func TestFuseFaultInsideIdiom(t *testing.T) {
	wideBnd := func(th *Thread) {
		th.Bnd[asm.BND0] = BndRange{Lo: 0, Hi: ^uint64(0)}
	}
	narrowBnd := func(th *Thread) {
		th.Bnd[asm.BND0] = BndRange{Lo: 0x100000, Hi: 0x100010}
	}
	cases := []struct {
		name  string
		insts []asm.Inst
		setup func(*Thread)
		kind  FaultKind
	}{
		// load/alu/store: fault on constituent 0 (the load).
		{name: "rmw-load-faults", kind: FaultUnmapped, insts: []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x500000}, // unmapped
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
			{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		}},
		// load/alu/store: fault on constituent 2 (the store) — the load
		// and alu results must be retained in the partial state.
		{name: "rmw-store-faults", kind: FaultUnmapped, insts: []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100100},
			{Op: asm.OpMovRI, Dst: asm.RDX, Imm: 0x500000}, // unmapped
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
			{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RDX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		}},
		// chk+load: fault on constituent 0 (the bound check itself).
		{name: "chk-faults", kind: FaultBounds, setup: narrowBnd, insts: []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100030}, // above bnd0.upper
			{Op: asm.OpBndCUReg, Src: asm.RBX, Bnd: asm.BND0},
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
		}},
		// chk+load: check passes, fault on constituent 1 (the load).
		{name: "chk-load-faults", kind: FaultUnmapped, setup: wideBnd, insts: []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x500000},
			{Op: asm.OpBndCLReg, Src: asm.RBX, Bnd: asm.BND0},
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
		}},
		// chk+store: check passes, fault on constituent 1 (the store).
		{name: "chk-store-faults", kind: FaultUnmapped, setup: wideBnd, insts: []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x500000},
			{Op: asm.OpBndCLReg, Src: asm.RBX, Bnd: asm.BND0},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			fuseParity(t, tc.insts, 0, tc.setup)

			// White-box: fused dispatch must (a) fault with the expected
			// kind and (b) account the interior fault as a de-fuse.
			conf := DefaultConfig()
			conf.Superblocks = true
			conf.Fuse = true
			m, th := buildFor(t, conf, tc.insts)
			if tc.setup != nil {
				tc.setup(th)
			}
			f := m.Run()
			if f == nil || f.Kind != tc.kind {
				t.Fatalf("want %v fault in fused mode, got %v", tc.kind, f)
			}
			if tc.name != "chk-faults" && th.Stats.Defuses == 0 {
				t.Fatal("interior fault did not bump Stats.Defuses")
			}
		})
	}
}

// TestFuseSlotProgram pins the fused slot program itself: bases, lengths,
// kinds, summed costs, and the singleton interleaving.
func TestFuseSlotProgram(t *testing.T) {
	// mov / mov | bndcl+load | add-singleton | bndcu+store | sub+cmp+jcc
	insts := idiomLoop([]asm.Inst{
		{Op: asm.OpBndCLReg, Src: asm.RBX, Bnd: asm.BND0},
		{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
		{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
		{Op: asm.OpBndCUReg, Src: asm.RBX, Bnd: asm.BND0},
		{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
	}, 4)
	conf := DefaultConfig()
	conf.Superblocks = true
	conf.Fuse = true
	m, th := buildFor(t, conf, insts)
	th.Bnd[asm.BND0] = BndRange{Lo: 0x100000, Hi: 0x10FFFF}
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}

	// The loop body starts after the two mov prologue instructions.
	var loopStart uint64 = 0x1000
	loopStart += uint64(encodeLen(insts[0]) + encodeLen(insts[1]))
	tr := m.traces[0]
	run := tr.runs[loopStart-tr.lo]
	if run == nil || run.xinsts == nil {
		t.Fatalf("loop body run not fused: %+v", run)
	}
	// 8 constituents → chk+load, add, chk+store, sub+cmp+jcc = 4 slots.
	if len(run.xinsts) != 4 || len(run.fused) != 3 {
		t.Fatalf("slot program: %d slots / %d fused, want 4 / 3", len(run.xinsts), len(run.fused))
	}
	wants := []struct {
		kind fuseKind
		base int
		n    int
	}{
		{fkChkLoad, 0, 2},
		{fkChkStore, 3, 2},
		{fkAluCmpJcc, 5, 3},
	}
	for i, w := range wants {
		fs := &run.fused[i]
		if fs.kind != w.kind || fs.base != w.base || len(fs.insts) != w.n {
			t.Fatalf("fused[%d] = kind %d base %d len %d, want %+v", i, fs.kind, fs.base, len(fs.insts), w)
		}
		if len(fs.pcs) != w.n+1 {
			t.Fatalf("fused[%d] has %d PCs, want %d", i, len(fs.pcs), w.n+1)
		}
		if fs.cost != run.cum[w.base+w.n]-run.cum[w.base] {
			t.Fatalf("fused[%d] cost %d does not cover its cum span", i, fs.cost)
		}
	}
	if run.xinsts[1].Op != asm.OpAddRI {
		t.Fatalf("singleton slot 1 is %v, want the interleaved add", run.xinsts[1].Op)
	}
	// The bite-boundary probe: boundaries inside each pair/triple split,
	// boundaries between slots do not.
	for nb, want := range map[int]bool{1: true, 2: false, 3: false, 4: true, 5: false, 6: true, 7: true, 8: false} {
		if got := run.splitsFused(nb); got != want {
			t.Fatalf("splitsFused(%d) = %v, want %v", nb, got, want)
		}
	}
}

// TestFuseMatchIdiom pins the matcher's accept and reject sets.
func TestFuseMatchIdiom(t *testing.T) {
	ld := asm.Inst{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}}
	st := asm.Inst{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX}
	cases := []struct {
		name  string
		insts []asm.Inst
		kind  fuseKind
		ln    int
	}{
		{"sub-cmp-jcc", []asm.Inst{
			{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
			{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
			{Op: asm.OpJcc, Cond: asm.CondNE, Imm: 0x1000},
		}, fkAluCmpJcc, 3},
		{"add-cmp-jcc-rr", []asm.Inst{
			{Op: asm.OpAddRR, Dst: asm.RCX, Src: asm.RDX},
			{Op: asm.OpCmpRR, Dst: asm.RCX, Src: asm.RSI},
			{Op: asm.OpJcc, Cond: asm.CondL, Imm: 0x1000},
		}, fkAluCmpJcc, 3},
		{"cmp-jcc", []asm.Inst{
			{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
			{Op: asm.OpJcc, Cond: asm.CondNE, Imm: 0x1000},
		}, fkCmpJcc, 2},
		{"pack-cmp-jcc", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 7},
			{Op: asm.OpXorRR, Dst: asm.RDX, Src: asm.RAX},
			{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
			{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
			{Op: asm.OpJcc, Cond: asm.CondNE, Imm: 0x1000},
		}, fkAluCmpJcc, 5},
		{"alu-pack", []asm.Inst{
			{Op: asm.OpMovRR, Dst: asm.RBX, Src: asm.RAX},
			{Op: asm.OpShlRI, Dst: asm.RBX, Imm: 2},
			ld,
		}, fkAluPack, 2},
		{"load-add-store", []asm.Inst{ld, {Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1}, st}, fkLoadOpStore, 3},
		{"load-shl-store", []asm.Inst{ld, {Op: asm.OpShlRI, Dst: asm.RAX, Imm: 3}, st}, fkLoadOpStore, 3},
		{"chk-load", []asm.Inst{{Op: asm.OpBndCLReg, Src: asm.RBX, Bnd: asm.BND0}, ld}, fkChkLoad, 2},
		{"chk-store", []asm.Inst{{Op: asm.OpBndCUReg, Src: asm.RBX, Bnd: asm.BND0}, st}, fkChkStore, 2},
		// Rejections: faultable or flag-clobbering constituents.
		{"div-not-fusable", []asm.Inst{ld, {Op: asm.OpDivRR, Dst: asm.RAX, Src: asm.RDX}, st}, 0, 0},
		{"cmp-mem-not-fusable", []asm.Inst{
			{Op: asm.OpCmpMR, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
			{Op: asm.OpJcc, Cond: asm.CondNE, Imm: 0x1000},
		}, 0, 0},
		{"lone-cmp", []asm.Inst{{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0}}, 0, 0},
		{"load-store-no-alu", []asm.Inst{ld, st}, 0, 0},
		{"lone-alu-no-pack", []asm.Inst{{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1}, ld}, 0, 0},
	}
	for _, tc := range cases {
		kind, ln := matchIdiom(tc.insts, 0, len(tc.insts))
		if kind != tc.kind || ln != tc.ln {
			t.Errorf("%s: matchIdiom = (%d, %d), want (%d, %d)", tc.name, kind, ln, tc.kind, tc.ln)
		}
	}
}

// TestStepNeverCachesFusedSlots: Step's one-slot builds must never carry
// a fused program or threaded ops (fuseRun requires two constituents),
// and block dispatch must rebuild them at full length WITH fusion — so a
// prior Step at a hot PC cannot silently disable fusion there.
func TestStepNeverCachesFusedSlots(t *testing.T) {
	pre := []asm.Inst{{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 200}}
	loopStart := int64(0x1000) + encodeLen(pre[0])
	insts := append(pre,
		asm.Inst{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
		asm.Inst{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		asm.Inst{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	)
	conf := DefaultConfig()
	conf.Superblocks = true
	conf.Chain = true
	conf.Fuse = true
	conf.Threaded = true
	m, th := buildFor(t, conf, insts)

	for i := 0; i < 3; i++ {
		if f := th.Step(); f != nil {
			t.Fatal(f)
		}
	}
	tr := m.traces[0]
	off := uint64(loopStart) - tr.lo
	run := tr.runs[off]
	if run == nil || !run.short || run.n != 1 {
		t.Fatalf("expected a cached one-slot short run at the loop head, got %+v", run)
	}
	if run.xinsts != nil || run.fused != nil {
		t.Fatalf("Step cached a fused slot program on a one-slot run: %+v", run)
	}

	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	run = tr.runs[off]
	if run == nil || run.short || run.n < 4 {
		t.Fatalf("block dispatch did not rebuild the short run at full length: %+v", run)
	}
	if run.xinsts == nil || len(run.fused) == 0 {
		t.Fatal("rebuilt run was not fused — a prior Step disabled fusion at a hot PC")
	}
	if run.ops == nil || len(run.ops) != len(run.xinsts) {
		t.Fatalf("rebuilt run has no threaded ops parallel to its slot program: %d ops / %d slots",
			len(run.ops), len(run.xinsts))
	}
	if th.Regs[asm.RAX] != 200 {
		t.Fatalf("loop computed %d, want 200", th.Regs[asm.RAX])
	}
}

// TestHandlerRegistrationInsideFusedIdiom: a trusted handler registered
// mid-run at the PC of an interior constituent of a fused idiom (the cmp
// of a fused sub/cmp/jcc loop head) must flush and de-fuse the block so
// the handler is dispatched — in every dispatch mode, with identical
// state.
func TestHandlerRegistrationInsideFusedIdiom(t *testing.T) {
	subLen := encodeLen(asm.Inst{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1})
	cmpLen := encodeLen(asm.Inst{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0})
	mk := func(conf Config) (*Machine, *Thread) {
		calls := 0
		return chainLoopWithHandler(t, conf, 8,
			func(addPC, skipPC uint64) Handler {
				// skipPC is the sub's PC: the fused triple is sub/cmp/jcc.
				cmpPC := skipPC + uint64(subLen)
				jccPC := cmpPC + uint64(cmpLen)
				return func(m *Machine, t *Thread) *Fault {
					ret, f := t.Pop()
					if f != nil {
						return f
					}
					t.PC = ret
					calls++
					if calls == 4 {
						// Registers INSIDE the fused sub/cmp/jcc slot: the
						// rebuilt blocks must stop before cmpPC, so the pair
						// can no longer fuse and the handler is probed.
						m.Handlers[cmpPC] = func(m *Machine, t *Thread) *Fault {
							t.Regs[asm.RDX]++
							t.setCmpFlags(t.Regs[asm.RCX], 0)
							t.PC = jccPC
							return nil
						}
					}
					return nil
				}
			})
	}
	confA := DefaultConfig()
	confA.Superblocks = false
	confA.Fuse = false
	mA, thA := mk(confA)
	if f := mA.Run(); f != nil {
		t.Fatal(f)
	}
	// 8 iterations of the add; the cmp handler shadows the cmp from
	// iteration 4 on (5 dispatches).
	if thA.Regs[asm.RAX] != 8 || thA.Regs[asm.RDX] != 5 {
		t.Fatalf("stepwise rax/rdx = %d/%d, want 8/5", thA.Regs[asm.RAX], thA.Regs[asm.RDX])
	}
	for _, mode := range parityModes {
		confB := DefaultConfig()
		confB.Superblocks = true
		confB.Chain = mode.chain
		confB.Fuse = mode.fuse
		confB.Threaded = mode.threaded
		mB, thB := mk(confB)
		if f := mB.Run(); f != nil {
			t.Fatal(f)
		}
		if thA.Regs != thB.Regs || thA.Stats.Arch() != thB.Stats.Arch() || thA.PC != thB.PC {
			t.Fatalf("[%s] state mismatch after handler registration inside a fused idiom:\nstepwise:   %+v\nsuperblock: %+v",
				mode.name, thA.Stats, thB.Stats)
		}
	}
}

// TestFusedModesProfileString is a cheap guard that the synthetic opcodes
// never leak into user-visible space: they must stay above every real
// opcode and map onto distinct values.
func TestFuseSyntheticOpcodeSpace(t *testing.T) {
	ops := []asm.Op{opFuseAluCmpJcc, opFuseCmpJcc, opFuseLoadOpStore, opFuseChkLoad, opFuseChkStore, opFuseAluPack}
	seen := map[asm.Op]bool{}
	for i, op := range ops {
		if op <= asm.OpNop {
			t.Fatalf("synthetic opcode %d collides with the real opcode space", op)
		}
		if seen[op] {
			t.Fatalf("synthetic opcode %d duplicated", op)
		}
		seen[op] = true
		if got := fuseOpFor(fuseKind(i)); got != op {
			t.Fatalf("fuseOpFor(%d) = %v, want %v", i, got, op)
		}
	}
	_ = fmt.Sprintf("%v", ops) // opcode stringer must not panic on synthetic values
}
