// Package machine emulates the x64-like hardware that ConfLLVM-compiled
// binaries run on: a 64-bit sparse paged address space whose unmapped guard
// areas fault on access, fs/gs segment registers, MPX bound registers,
// per-thread stacks, an L1 data-cache model and a dual-issue port model
// (so that MPX checks can hide behind floating-point work, as the paper
// observes in the Privado experiment).
package machine

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Perm is a region permission bitmask.
type Perm uint8

const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

func (p Perm) String() string {
	s := [3]byte{'-', '-', '-'}
	if p&PermR != 0 {
		s[0] = 'r'
	}
	if p&PermW != 0 {
		s[1] = 'w'
	}
	if p&PermX != 0 {
		s[2] = 'x'
	}
	return string(s[:])
}

// Region is a mapped range of the virtual address space. Anything outside
// every region is guard space: touching it faults.
type Region struct {
	Name string
	Lo   uint64
	Size uint64
	Perm Perm
}

// Contains reports whether addr lies inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.Lo && addr-r.Lo < r.Size
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Lo + r.Size }

const pageShift = 12
const pageSize = 1 << pageShift

// tlbBits sizes the direct-mapped page-lookup cache. 64 entries cover the
// working set of code + both stacks + a few heap pages with no search.
const (
	tlbBits = 6
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

// tlbEntry caches one fully-validated page: the page is allocated, and a
// single region both contains it entirely and grants perm. Any access that
// stays inside the page needs only the perm test — no binary search, no
// boundary checks. An entry is valid iff page != nil.
type tlbEntry struct {
	pn   uint64
	page *[pageSize]byte
	perm Perm
}

// Memory is a sparse paged physical memory with region-based permissions.
// Pages are allocated lazily on first touch, so multi-gigabyte layouts
// (the paper's 4 GB-aligned segments with 36 GB guard areas) cost nothing.
type Memory struct {
	regions []*Region // sorted by Lo
	pages   map[uint64]*[pageSize]byte

	// tlb short-circuits Read/Write for pages wholly inside one region.
	// Only positive lookups are cached, and mapped regions are never
	// removed or re-permissioned, so entries never go stale.
	tlb [tlbSize]tlbEntry

	// lastRegion and lastPage memoize the most recent lookups (execution
	// is single-goroutine; accesses are highly local).
	lastRegion *Region
	lastPageNo uint64
	lastPage   *[pageSize]byte

	onUncheckedWrite func()
}

// NewMemory returns an empty memory with no mappings.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// Map adds a region. Regions must not overlap.
func (mem *Memory) Map(name string, lo, size uint64, perm Perm) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("machine: empty region %q", name)
	}
	for _, r := range mem.regions {
		if lo < r.End() && r.Lo < lo+size {
			return nil, fmt.Errorf("machine: region %q [%#x,%#x) overlaps %q", name, lo, lo+size, r.Name)
		}
	}
	r := &Region{Name: name, Lo: lo, Size: size, Perm: perm}
	mem.regions = append(mem.regions, r)
	sort.Slice(mem.regions, func(i, j int) bool { return mem.regions[i].Lo < mem.regions[j].Lo })
	return r, nil
}

// Find returns the region containing addr, or nil (guard space).
func (mem *Memory) Find(addr uint64) *Region {
	if r := mem.lastRegion; r != nil && r.Contains(addr) {
		return r
	}
	i := sort.Search(len(mem.regions), func(i int) bool { return mem.regions[i].End() > addr })
	if i < len(mem.regions) && mem.regions[i].Contains(addr) {
		mem.lastRegion = mem.regions[i]
		return mem.regions[i]
	}
	return nil
}

// Regions returns the mapped regions, sorted by base address.
func (mem *Memory) Regions() []*Region { return mem.regions }

func (mem *Memory) page(addr uint64) *[pageSize]byte {
	pn := addr >> pageShift
	if pn == mem.lastPageNo && mem.lastPage != nil {
		return mem.lastPage
	}
	p := mem.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		mem.pages[pn] = p
	}
	mem.lastPageNo, mem.lastPage = pn, p
	return p
}

// check validates an access of size bytes at addr with permission need.
// A single access may not straddle a region boundary. On success it
// returns the containing region so callers can warm the TLB. Faults (and
// their messages) are built only on the failure path.
func (mem *Memory) check(addr uint64, size uint64, need Perm) (*Region, *Fault) {
	r := mem.Find(addr)
	if r == nil {
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	if addr+size-1 > r.End()-1 { // careful with wraparound
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr + size - 1}
	}
	if r.Perm&need != need {
		return nil, &Fault{Kind: FaultPerm, Addr: addr, Msg: fmt.Sprintf("need %s in %s (%s)", need, r.Name, r.Perm)}
	}
	return r, nil
}

// fillTLB caches the page containing addr if region r wholly covers it
// (a partially-covered page must keep taking the slow path, because an
// access inside the page could still escape the region).
func (mem *Memory) fillTLB(addr uint64, r *Region) {
	pn := addr >> pageShift
	lo := pn << pageShift
	if lo < r.Lo || r.End()-lo < pageSize {
		return
	}
	mem.tlb[pn&tlbMask] = tlbEntry{pn: pn, page: mem.page(addr), perm: r.Perm}
}

// Read reads size (1/2/4/8) bytes at addr, zero-extended.
func (mem *Memory) Read(addr uint64, size uint8) (uint64, *Fault) {
	off := addr & (pageSize - 1)
	if e := &mem.tlb[(addr>>pageShift)&tlbMask]; e.page != nil && e.pn == addr>>pageShift &&
		e.perm&PermR != 0 && off+uint64(size) <= pageSize {
		p := e.page
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(p[off : off+8]), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off : off+4])), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off : off+2])), nil
		case 1:
			return uint64(p[off]), nil
		}
	}
	return mem.readSlow(addr, size)
}

func (mem *Memory) readSlow(addr uint64, size uint8) (uint64, *Fault) {
	r, f := mem.check(addr, uint64(size), PermR)
	if f != nil {
		return 0, f
	}
	mem.fillTLB(addr, r)
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		// The access stays within one page.
		p := mem.page(addr)
		var v uint64
		for i := int(size) - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+uint64(i)])
		}
		return v, nil
	}
	var buf [8]byte
	mem.copyOut(addr, buf[:size])
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Write writes the low size bytes of val at addr.
func (mem *Memory) Write(addr uint64, size uint8, val uint64) *Fault {
	off := addr & (pageSize - 1)
	if e := &mem.tlb[(addr>>pageShift)&tlbMask]; e.page != nil && e.pn == addr>>pageShift &&
		e.perm&PermW != 0 && off+uint64(size) <= pageSize {
		p := e.page
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(p[off:off+8], val)
			return nil
		case 4:
			binary.LittleEndian.PutUint32(p[off:off+4], uint32(val))
			return nil
		case 2:
			binary.LittleEndian.PutUint16(p[off:off+2], uint16(val))
			return nil
		case 1:
			p[off] = byte(val)
			return nil
		}
	}
	return mem.writeSlow(addr, size, val)
}

func (mem *Memory) writeSlow(addr uint64, size uint8, val uint64) *Fault {
	r, f := mem.check(addr, uint64(size), PermW)
	if f != nil {
		return f
	}
	mem.fillTLB(addr, r)
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		p := mem.page(addr)
		for i := uint64(0); i < uint64(size); i++ {
			p[off+i] = byte(val)
			val >>= 8
		}
		return nil
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	mem.copyIn(addr, buf[:size])
	return nil
}

// ReadBytes copies len(dst) bytes starting at addr into dst. Used by
// trusted-runtime handlers, which access U memory on the host side.
func (mem *Memory) ReadBytes(addr uint64, dst []byte) *Fault {
	if len(dst) == 0 {
		return nil
	}
	if _, f := mem.check(addr, uint64(len(dst)), PermR); f != nil {
		return f
	}
	mem.copyOut(addr, dst)
	return nil
}

// WriteBytes copies src into memory at addr.
func (mem *Memory) WriteBytes(addr uint64, src []byte) *Fault {
	if len(src) == 0 {
		return nil
	}
	if _, f := mem.check(addr, uint64(len(src)), PermW); f != nil {
		return f
	}
	mem.copyIn(addr, src)
	return nil
}

// ReadBytesUnchecked copies bytes ignoring permissions (still requires the
// range to be mapped). The loader uses it to initialize read-only regions.
func (mem *Memory) ReadBytesUnchecked(addr uint64, dst []byte) *Fault {
	r := mem.Find(addr)
	if r == nil || addr+uint64(len(dst)) > r.End() {
		return &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	mem.copyOut(addr, dst)
	return nil
}

// WriteBytesUnchecked writes bytes ignoring the W permission (the range
// must be mapped). The loader uses it to populate code and rodata.
func (mem *Memory) WriteBytesUnchecked(addr uint64, src []byte) *Fault {
	if len(src) == 0 {
		return nil
	}
	if mem.onUncheckedWrite != nil {
		mem.onUncheckedWrite()
	}
	r := mem.Find(addr)
	if r == nil || addr+uint64(len(src)) > r.End() {
		return &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	mem.copyIn(addr, src)
	return nil
}

// Digest returns a deterministic FNV-1a hash of the allocated page
// contents, keyed by page number. All-zero pages are skipped, so pages
// that were lazily allocated but never written (e.g. by a read of fresh
// memory) do not perturb the hash. The differential-execution tests use
// this to compare whole address spaces across dispatch modes.
func (mem *Memory) Digest() uint64 {
	pns := make([]uint64, 0, len(mem.pages))
	for pn := range mem.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, pn := range pns {
		p := mem.pages[pn]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		for i := 0; i < 8; i++ {
			h ^= (pn >> (8 * i)) & 0xFF
			h *= prime64
		}
		for _, b := range p {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}

func (mem *Memory) copyOut(addr uint64, dst []byte) {
	for len(dst) > 0 {
		p := mem.page(addr)
		off := addr & (pageSize - 1)
		n := copy(dst, p[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

func (mem *Memory) copyIn(addr uint64, src []byte) {
	for len(src) > 0 {
		p := mem.page(addr)
		off := addr & (pageSize - 1)
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// FaultKind classifies machine faults.
type FaultKind uint8

const (
	FaultNone     FaultKind = iota
	FaultUnmapped           // guard-space access (unmapped page)
	FaultPerm               // permission violation (e.g. writing code)
	FaultNX                 // fetching from a non-executable region
	FaultBounds             // MPX bndcl/bndcu violation
	FaultCFI                // trap instruction reached (CFI check failed)
	FaultDecode             // undecodable instruction (e.g. executing data)
	FaultDivide             // integer divide by zero
	FaultStack              // rsp escaped the thread stack (_chkstk)
	FaultTrusted            // trusted-runtime wrapper rejected an argument
	FaultFuel               // instruction budget exhausted
)

var faultNames = map[FaultKind]string{
	FaultUnmapped: "guard-page access", FaultPerm: "permission violation",
	FaultNX: "non-executable fetch", FaultBounds: "MPX bound violation",
	FaultCFI: "CFI trap", FaultDecode: "decode fault",
	FaultDivide: "divide error", FaultStack: "stack bound violation",
	FaultTrusted: "trusted wrapper check failed", FaultFuel: "fuel exhausted",
}

// String names the fault kind (the same label Fault.Error leads with).
func (k FaultKind) String() string {
	if k == FaultNone {
		return "none"
	}
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault describes an execution fault. Faults stop the faulting thread; the
// confidentiality argument is that ill-behaved code faults instead of
// leaking.
type Fault struct {
	Kind FaultKind
	Addr uint64
	PC   uint64
	Msg  string
	// Cycle is the faulting thread's simulated cycle count at delivery,
	// stamped by Thread.fault. It is a simulated quantity — bit-identical
	// across dispatch modes (the differential tests compare whole Fault
	// values) — so restart supervisors can account recovery latency in
	// simulated cycles. It is deliberately excluded from Error(): fault
	// messages predate it and stay stable.
	Cycle uint64
}

func (f *Fault) Error() string {
	s := faultNames[f.Kind]
	if s == "" {
		s = fmt.Sprintf("fault(%d)", f.Kind)
	}
	if f.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", f.Addr)
	}
	if f.PC != 0 {
		s += fmt.Sprintf(" pc=%#x", f.PC)
	}
	if f.Msg != "" {
		s += ": " + f.Msg
	}
	return s
}
