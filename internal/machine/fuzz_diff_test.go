// Randomized differential fuzzing: seeded, deterministic miniC programs
// are generated, compiled through the full pipeline, and executed under
// every dispatch mode (per-instruction stepping, unchained superblocks,
// chained superblocks, superinstruction fusion, and threaded dispatch —
// see diffRun and diffModes). The generator leans on
// control-flow shapes — nested ifs, bounded loops, calls — because block
// boundaries and branch edges are exactly where superblock dispatch and
// direct block chaining can diverge from per-instruction stepping; it
// also emits occasional unguarded divisions so divide-fault delivery is
// fuzzed too.
package machine_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"confllvm"
	"confllvm/internal/asm"
	"confllvm/internal/bench"
	"confllvm/internal/link"
	"confllvm/internal/machine"
)

// progGen builds one random-but-valid miniC program.
type progGen struct {
	r      *rand.Rand
	nFuncs int
}

const (
	fuzzGlobals = 4
	fuzzLocals  = 4
	fuzzArrLen  = 32
)

// expr emits a depth-bounded integer expression over the in-scope names.
func (g *progGen) expr(depth, fn int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", g.r.Int63n(2001)-1000)
		case 1:
			return fmt.Sprintf("%d", g.r.Int63()-g.r.Int63()) // wide constants
		case 2:
			return fmt.Sprintf("g%d", g.r.Intn(fuzzGlobals))
		case 3:
			return fmt.Sprintf("l%d", g.r.Intn(fuzzLocals))
		default:
			return fmt.Sprintf("arr[(%s) & %d]", g.expr(0, fn), fuzzArrLen-1)
		}
	}
	a := g.expr(depth-1, fn)
	b := g.expr(depth-1, fn)
	switch g.r.Intn(12) {
	case 0:
		return "(" + a + " + " + b + ")"
	case 1:
		return "(" + a + " - " + b + ")"
	case 2:
		return "(" + a + " * " + b + ")"
	case 3:
		return "(" + a + " & " + b + ")"
	case 4:
		return "(" + a + " | " + b + ")"
	case 5:
		return "(" + a + " ^ " + b + ")"
	case 6:
		return "(" + a + " << ((" + b + ") & 15))"
	case 7:
		return "(" + a + " >> ((" + b + ") & 15))"
	case 8:
		// Guarded division: the divisor is always in [1, 8].
		return "(" + a + " / (((" + b + ") & 7) + 1))"
	case 9:
		if g.r.Intn(8) == 0 {
			// Rarely, an unguarded division: may fault — which both
			// dispatch modes must report identically.
			return "(" + a + " % " + b + ")"
		}
		return "(" + a + " % (((" + b + ") & 7) + 1))"
	case 10:
		return "(" + a + " < " + b + ")"
	default:
		if fn > 0 {
			return fmt.Sprintf("f%d(%s, %s)", g.r.Intn(fn), a, b)
		}
		return "(" + a + " == " + b + ")"
	}
}

// stmts emits up to n statements; fn bounds which functions may be called
// (callees are always lower-numbered, so there is no recursion), and lv
// is the loop-nesting level (used to pick distinct counter names).
func (g *progGen) stmts(b *strings.Builder, n, depth, fn, lv int) {
	for i := 0; i < n; i++ {
		switch g.r.Intn(7) {
		case 0, 1:
			fmt.Fprintf(b, "l%d = %s;\n", g.r.Intn(fuzzLocals), g.expr(depth, fn))
		case 2:
			fmt.Fprintf(b, "g%d = %s;\n", g.r.Intn(fuzzGlobals), g.expr(depth, fn))
		case 3:
			fmt.Fprintf(b, "arr[(%s) & %d] = %s;\n", g.expr(1, fn), fuzzArrLen-1, g.expr(depth, fn))
		case 4:
			fmt.Fprintf(b, "if (%s) {\n", g.expr(depth, fn))
			g.stmts(b, 1+g.r.Intn(2), depth-1, fn, lv)
			if g.r.Intn(2) == 0 {
				b.WriteString("} else {\n")
				g.stmts(b, 1+g.r.Intn(2), depth-1, fn, lv)
			}
			b.WriteString("}\n")
		case 5:
			if lv >= 2 {
				fmt.Fprintf(b, "acc = acc + %s;\n", g.expr(depth, fn))
				continue
			}
			// A bounded countdown loop with a dedicated counter.
			fmt.Fprintf(b, "i%d = (%s) & 15;\n", lv, g.expr(1, fn))
			fmt.Fprintf(b, "while (i%d > 0) {\n", lv)
			g.stmts(b, 1+g.r.Intn(2), depth-1, fn, lv+1)
			fmt.Fprintf(b, "i%d = i%d - 1;\n}\n", lv, lv)
		default:
			fmt.Fprintf(b, "acc = acc + %s;\n", g.expr(depth, fn))
		}
	}
}

func (g *progGen) fn(b *strings.Builder, idx int) {
	fmt.Fprintf(b, "long f%d(long a, long b) {\n", idx)
	b.WriteString("long acc = a + b;\nlong i0 = 0;\nlong i1 = 0;\n")
	for i := 0; i < fuzzLocals; i++ {
		fmt.Fprintf(b, "long l%d = %d;\n", i, g.r.Int63n(100))
	}
	g.stmts(b, 2+g.r.Intn(3), 2, idx, 0)
	b.WriteString("return acc;\n}\n\n")
}

// generate produces one complete translation unit.
func (g *progGen) generate() string {
	var b strings.Builder
	b.WriteString("extern void output(long v);\n\n")
	for i := 0; i < fuzzGlobals; i++ {
		fmt.Fprintf(&b, "long g%d = %d;\n", i, g.r.Int63n(1000))
	}
	fmt.Fprintf(&b, "long arr[%d];\n\n", fuzzArrLen)
	for i := 0; i < g.nFuncs; i++ {
		g.fn(&b, i)
	}
	b.WriteString("int main() {\n")
	b.WriteString("long acc = 0;\nlong i0 = 0;\nlong i1 = 0;\n")
	for i := 0; i < fuzzLocals; i++ {
		fmt.Fprintf(&b, "long l%d = %d;\n", i, g.r.Int63n(50))
	}
	g.stmts(&b, 4+g.r.Intn(4), 3, g.nFuncs, 0)
	b.WriteString("output(acc);\n")
	for i := 0; i < fuzzGlobals; i++ {
		fmt.Fprintf(&b, "output(g%d);\n", i)
	}
	b.WriteString("output(arr[7]);\nreturn 0;\n}\n")
	return b.String()
}

// TestFuzzDifferential compiles seeded random programs across variants
// and differentially executes both dispatch modes. Failures reproduce
// from the seed in the subtest name.
func TestFuzzDifferential(t *testing.T) {
	nProgs := 48
	if testing.Short() {
		nProgs = 10
	}
	variants := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantCFI,
		confllvm.VariantMPX, confllvm.VariantSeg}
	for seed := 0; seed < nProgs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel() // each seed compiles and runs its own program end to end
			g := &progGen{r: rand.New(rand.NewSource(int64(seed)*7919 + 17)), nFuncs: 1 + seed%3}
			src := g.generate()
			v := variants[seed%len(variants)]
			art, err := confllvm.Compile(confllvm.Program{
				Sources: []confllvm.Source{
					{Name: "fuzz.c", Code: src},
					{Name: "ulib.c", Code: bench.ULib},
				},
			}, v)
			if err != nil {
				t.Fatalf("generated program failed to compile:\n%s\nerror: %v", src, err)
			}
			res := diffRun(t, art, confllvm.NewWorld, nil)
			t.Logf("seed %d [%v]: %d instrs, fault=%v", seed, v, res.Stats.Instrs, res.Fault)
			if res.Fault != nil && res.Fault.Kind != machine.FaultDivide {
				t.Fatalf("unexpected fault kind (still mode-identical): %v\nprogram:\n%s",
					res.Fault, src)
			}
			// Every few seeds, re-run with the instruction budget cut to a
			// point inside the program, so the fuel fault lands at a fuzzed
			// position (often mid-superblock).
			if seed%3 == 0 && res.Stats.Instrs > 20 {
				c := machine.DefaultConfig()
				c.DefaultFuel = res.Stats.Instrs/2 + uint64(seed%7)
				cut := diffRun(t, art, confllvm.NewWorld, &c)
				if cut.Fault == nil {
					t.Fatalf("fuel cutoff at %d of %d instrs did not fault",
						c.DefaultFuel, res.Stats.Instrs)
				}
			}
		})
	}
}

// TestFuzzDifferentialBoundsFaults drives seeded wild accesses — far past
// the array on either side — through the MPX configuration: every run
// must raise a bounds fault, and the fault's kind, address, PC, partial
// state and memory digest must be identical across per-instruction
// stepping, unchained superblocks and direct chaining. This is the
// adversarial-input half of the fault-path diff: the instrumentation
// itself is what faults, at a PC the dispatch layers reach differently.
func TestFuzzDifferentialBoundsFaults(t *testing.T) {
	nSeeds := 12
	if testing.Short() {
		nSeeds = 4
	}
	for seed := 0; seed < nSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(seed)*6007 + 11))
			// A seeded wild index: far above the public region, or negative.
			idx := int64(1<<37) + r.Int63n(1<<37)
			if seed%2 == 1 {
				idx = -(1 + r.Int63n(1<<20))
			}
			// Warm the array first so the fault interrupts a program with
			// real partial state (digests must still agree mid-flight).
			src := fmt.Sprintf(`
extern void output(long v);
long arr[%d];
int main() {
	long i;
	for (i = 0; i < %d; i++) arr[i & %d] = i * 3;
	arr[%d] = 7;
	output(arr[3]);
	return 0;
}
`, fuzzArrLen, 10+r.Int63n(40), fuzzArrLen-1, idx)
			art, err := confllvm.Compile(confllvm.Program{
				Sources: []confllvm.Source{{Name: "wild.c", Code: src}},
			}, confllvm.VariantMPX)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, src)
			}
			res := diffRun(t, art, confllvm.NewWorld, nil)
			if res.Fault == nil || res.Fault.Kind != machine.FaultBounds {
				t.Fatalf("index %d: want a bounds fault, got %v", idx, res.Fault)
			}
		})
	}
}

// diffRunCorrupt mirrors diffRun for post-load code corruption: each
// dispatch mode loads the same pristine artifact, has one code byte
// overwritten with an invalid opcode at addr before execution, and runs.
// Fault traces (kind, PC, message), partial state and memory digests must
// agree across modes — superblock caches and chain links must not let a
// mode run stale pre-corruption bytes.
func diffRunCorrupt(t *testing.T, art *confllvm.Artifact, addr uint64) *confllvm.Result {
	t.Helper()
	run := func(mc *machine.Config) *confllvm.Result {
		p, err := confllvm.Prepare(art, confllvm.NewWorld(), mc)
		if err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if f := p.Machine().Mem.WriteBytesUnchecked(addr, []byte{0xFF}); f != nil {
			t.Fatalf("corrupting code at %#x: %v", addr, f)
		}
		return p.Finish()
	}
	mcStep := machine.DefaultConfig()
	mcStep.Superblocks = false
	mcStep.Fuse = false
	mcStep.Threaded = false
	ref := run(&mcStep)
	for _, md := range diffModes() {
		mc := mcStep
		mc.Superblocks = true
		mc.Chain = md.chain
		mc.Fuse = md.fuse
		mc.Threaded = md.threaded
		compareResults(t, md.name, ref, run(&mc))
	}
	return ref
}

// instAddrs walks a function's body (skipping embedded magic words) and
// returns the address of every instruction boundary.
func instAddrs(img *link.Image, fs *link.FuncSym) []uint64 {
	magic := img.MagicOffsets()
	off := int(fs.Entry - img.Layout.CodeBase)
	end := int(fs.Base-img.Layout.CodeBase) + int(fs.Size)
	var addrs []uint64
	for off < end {
		if magic[off] {
			off += 8
			continue
		}
		_, n, err := asm.Decode(img.Code, off)
		if err != nil {
			break
		}
		addrs = append(addrs, img.Layout.CodeBase+uint64(off))
		off += n
	}
	return addrs
}

// TestFuzzDifferentialDecodeFaults plants an invalid opcode at a seeded
// instruction boundary inside main of a seeded fuzz program and diffs the
// execution across all dispatch modes. Corruption on the executed path
// must raise FaultDecode at the same PC with the same digest everywhere;
// corruption on a cold path must leave all modes running to the same
// clean completion. Across the seed set, at least one bomb must land hot
// (otherwise the test is vacuous).
func TestFuzzDifferentialDecodeFaults(t *testing.T) {
	nSeeds := 12
	if testing.Short() {
		nSeeds = 4
	}
	hot := 0
	for seed := 0; seed < nSeeds; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(seed)*4241 + 5)), nFuncs: 1 + seed%2}
		src := g.generate()
		art, err := confllvm.Compile(confllvm.Program{
			Sources: []confllvm.Source{
				{Name: "fuzz.c", Code: src},
				{Name: "ulib.c", Code: bench.ULib},
			},
		}, confllvm.VariantMPX)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		addrs := instAddrs(art.Image, art.Image.Func("main"))
		if len(addrs) == 0 {
			t.Fatalf("seed %d: no instruction boundaries in main", seed)
		}
		addr := addrs[rand.New(rand.NewSource(int64(seed)+99)).Intn(len(addrs))]
		res := diffRunCorrupt(t, art, addr)
		if res.Fault != nil {
			if res.Fault.Kind != machine.FaultDecode && res.Fault.Kind != machine.FaultDivide {
				t.Fatalf("seed %d: corrupting %#x: unexpected fault kind %v", seed, addr, res.Fault)
			}
			if res.Fault.Kind == machine.FaultDecode {
				hot++
			}
		}
	}
	if hot == 0 {
		t.Fatalf("no decode bomb landed on an executed instruction across %d seeds", nSeeds)
	}
	t.Logf("%d/%d decode bombs were execution-visible", hot, nSeeds)
}

// TestFuzzDifferentialFuelAtBoundaries cuts the instruction budget of
// seeded fuzz programs at seeded fractions of their run length, so fuel
// faults land at arbitrary alignments relative to superblock and chain
// boundaries. Every cut must fault with FaultFuel, identically in all
// dispatch modes.
func TestFuzzDifferentialFuelAtBoundaries(t *testing.T) {
	nSeeds := 6
	if testing.Short() {
		nSeeds = 2
	}
	for seed := 0; seed < nSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			g := &progGen{r: rand.New(rand.NewSource(int64(seed)*911 + 3)), nFuncs: 1 + seed%3}
			src := g.generate()
			art, err := confllvm.Compile(confllvm.Program{
				Sources: []confllvm.Source{
					{Name: "fuzz.c", Code: src},
					{Name: "ulib.c", Code: bench.ULib},
				},
			}, confllvm.VariantMPX)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			clean := diffRun(t, art, confllvm.NewWorld, nil)
			if clean.Fault != nil || clean.Stats.Instrs < 16 {
				t.Skipf("seed unusable for fuel cuts: fault=%v instrs=%d",
					clean.Fault, clean.Stats.Instrs)
			}
			r := rand.New(rand.NewSource(int64(seed)*13 + 7))
			for _, quarter := range []uint64{1, 2, 3} {
				fuel := clean.Stats.Instrs*quarter/4 + uint64(r.Intn(9)) - 4
				if fuel == 0 || fuel >= clean.Stats.Instrs {
					continue
				}
				mc := machine.DefaultConfig()
				mc.DefaultFuel = fuel
				cut := diffRun(t, art, confllvm.NewWorld, &mc)
				if cut.Fault == nil || cut.Fault.Kind != machine.FaultFuel {
					t.Fatalf("fuel cut at %d of %d: want FaultFuel, got %v",
						fuel, clean.Stats.Instrs, cut.Fault)
				}
			}
		})
	}
}
