package machine

import (
	"testing"

	"confllvm/internal/asm"
)

// benchThread maps a code page, encodes insts followed by a jmp back to the
// start, and returns a thread that can Step forever without halting.
func benchThread(b *testing.B, insts []asm.Inst) (*Machine, *Thread) {
	b.Helper()
	m := New(DefaultConfig())
	var code []byte
	for _, in := range insts {
		code = asm.Encode(code, in)
	}
	code = asm.Encode(code, asm.Inst{Op: asm.OpJmp, Imm: 0x1000})
	if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		b.Fatal(err)
	}
	if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
		b.Fatal(f)
	}
	t := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
	return m, t
}

func stepLoop(b *testing.B, t *Thread) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := t.Step(); f != nil {
			b.Fatal(f)
		}
	}
	b.StopTimer()
	mips := float64(t.Stats.Instrs) / 1e6 / b.Elapsed().Seconds()
	b.ReportMetric(mips, "MIPS")
}

// BenchmarkStep measures straight-line ALU throughput: the pure
// fetch/decode/dispatch cost with no memory operands.
func BenchmarkStep(b *testing.B) {
	_, t := benchThread(b, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 7},
		{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 3},
		{Op: asm.OpMovRR, Dst: asm.RBX, Src: asm.RAX},
		{Op: asm.OpXorRR, Dst: asm.RCX, Src: asm.RBX},
		{Op: asm.OpShlRI, Dst: asm.RBX, Imm: 2},
		{Op: asm.OpSubRR, Dst: asm.RBX, Src: asm.RAX},
		{Op: asm.OpCmpRI, Dst: asm.RBX, Imm: 100},
		{Op: asm.OpSetCC, Cond: asm.CondL, Dst: asm.RDX},
	})
	stepLoop(b, t)
}

// BenchmarkStepMem measures the load/store path through Memory including
// the L1 model.
func BenchmarkStepMem(b *testing.B) {
	_, t := benchThread(b, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100000},
		{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		{Op: asm.OpLoad, Dst: asm.RCX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
		{Op: asm.OpLoad, Dst: asm.RDX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 4, Disp: 16}},
		{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 1, Disp: 32}, Src: asm.RDX},
	})
	stepLoop(b, t)
}

// BenchmarkStepBnd measures the MPX check path (the hot extra work of the
// OurMPX variant).
func BenchmarkStepBnd(b *testing.B) {
	_, t := benchThread(b, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100100},
		{Op: asm.OpBndCLReg, Src: asm.RBX, Bnd: asm.BND0},
		{Op: asm.OpBndCUReg, Src: asm.RBX, Bnd: asm.BND0},
	})
	t.Bnd[asm.BND0] = BndRange{Lo: 0x100000, Hi: 0x10FFFF}
	stepLoop(b, t)
}

// BenchmarkRun measures whole-Run dispatch throughput on a loopy program
// (straight-line ALU blocks broken by a conditional branch), comparing
// the default dispatch stack (chained superblocks with superinstruction
// fusion), each layer peeled off in turn, and per-instruction stepping.
// The "superblock" sub-benchmark is the BENCH_interp.json /
// BENCH_history.jsonl "BenchmarkRun" datapoint: it must hold a >= 1.5x
// MIPS advantage over "stepwise". "nofuse" is chained dispatch with
// fusion off — the superblock-vs-nofuse delta is the fusion win;
// "threaded" swaps the opcode switch for the per-slot handler table on
// top of fusion (its name deliberately does not start with "superblock":
// benchhistory greps for that prefix to find the headline lane). The
// "profiled" lane runs the default stack with cycle-attributed profiling
// on — its gap to "superblock" is the observability plane's enabled cost
// (the disabled cost is zero: TestRunProfileDisabledZeroAlloc).
func BenchmarkRun(b *testing.B) {
	for _, mode := range []struct {
		name        string
		superblocks bool
		chain       bool
		fuse        bool
		threaded    bool
		profile     bool
	}{
		{"superblock", true, true, true, false, false},
		{"nofuse", true, true, false, false, false},
		{"threaded", true, true, true, true, false},
		{"nochain", true, false, false, false, false},
		{"stepwise", false, false, false, false, false},
		{"profiled", true, true, true, false, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			const iters = 1000
			conf := DefaultConfig()
			conf.Superblocks = mode.superblocks
			conf.Chain = mode.chain
			conf.Fuse = mode.fuse
			conf.Threaded = mode.threaded
			conf.Profile = mode.profile
			m := New(conf)
			var code []byte
			// rcx = iters; loop: 8 ALU ops; rcx--; cmp; jne loop; exit.
			code = asm.Encode(code, asm.Inst{Op: asm.OpMovRI, Dst: asm.RCX, Imm: iters})
			loopStart := 0x1000 + uint64(len(code))
			for _, in := range []asm.Inst{
				{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 7},
				{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 3},
				{Op: asm.OpMovRR, Dst: asm.RBX, Src: asm.RAX},
				{Op: asm.OpXorRR, Dst: asm.RDX, Src: asm.RBX},
				{Op: asm.OpShlRI, Dst: asm.RBX, Imm: 2},
				{Op: asm.OpSubRR, Dst: asm.RBX, Src: asm.RAX},
				{Op: asm.OpAddRR, Dst: asm.RSI, Src: asm.RBX},
				{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
				{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
			} {
				code = asm.Encode(code, in)
			}
			code = asm.Encode(code, asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: int64(loopStart)})
			code = asm.Encode(code, asm.Inst{Op: asm.OpExit})
			if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
				b.Fatal(err)
			}
			if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
				b.Fatal(f)
			}
			t := m.NewThread(0x1000, 0, 0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Halted = false
				t.Fault = nil
				t.PC = 0x1000
				if f := m.Run(); f != nil {
					b.Fatal(f)
				}
			}
			b.StopTimer()
			mips := float64(t.Stats.Instrs) / 1e6 / b.Elapsed().Seconds()
			b.ReportMetric(mips, "MIPS")
		})
	}
}

// BenchmarkDispatchOnly isolates the dispatcher's constant factor from
// memory traffic: a pure-ALU loop (no loads, stores or checks) where the
// only per-instruction work besides the register arithmetic is fetching
// the next slot and dispatching its opcode. The switch/fused/threaded
// deltas here are the pure dispatch-overhead wins that BenchmarkRun
// dilutes with the memory model.
func BenchmarkDispatchOnly(b *testing.B) {
	for _, mode := range []struct {
		name     string
		fuse     bool
		threaded bool
	}{
		{"switch", false, false},
		{"fused", true, false},
		{"threaded", true, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			const iters = 1000
			conf := DefaultConfig()
			conf.Superblocks = true
			conf.Chain = true
			conf.Fuse = mode.fuse
			conf.Threaded = mode.threaded
			m := New(conf)
			var code []byte
			code = asm.Encode(code, asm.Inst{Op: asm.OpMovRI, Dst: asm.RCX, Imm: iters})
			loopStart := 0x1000 + uint64(len(code))
			for _, in := range []asm.Inst{
				{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 3},
				{Op: asm.OpXorRR, Dst: asm.RDX, Src: asm.RAX},
				{Op: asm.OpAddRR, Dst: asm.RSI, Src: asm.RAX},
				{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
				{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
			} {
				code = asm.Encode(code, in)
			}
			code = asm.Encode(code, asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: int64(loopStart)})
			code = asm.Encode(code, asm.Inst{Op: asm.OpExit})
			if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
				b.Fatal(err)
			}
			if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
				b.Fatal(f)
			}
			t := m.NewThread(0x1000, 0, 0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Halted = false
				t.Fault = nil
				t.PC = 0x1000
				if f := m.Run(); f != nil {
					b.Fatal(f)
				}
			}
			b.StopTimer()
			mips := float64(t.Stats.Instrs) / 1e6 / b.Elapsed().Seconds()
			b.ReportMetric(mips, "MIPS")
		})
	}
}

// BenchmarkMemRead measures Memory.Read alone (aligned 8-byte hits).
func BenchmarkMemRead(b *testing.B) {
	mem := NewMemory()
	if _, err := mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		b.Fatal(err)
	}
	if f := mem.Write(0x100040, 8, 0x1122334455667788); f != nil {
		b.Fatal(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var v uint64
	for i := 0; i < b.N; i++ {
		x, f := mem.Read(0x100040+uint64(i%64)*8&^7, 8)
		if f != nil {
			b.Fatal(f)
		}
		v += x
	}
	sinkU64 = v
}

// BenchmarkMemWrite measures Memory.Write alone (aligned 8-byte hits).
func BenchmarkMemWrite(b *testing.B) {
	mem := NewMemory()
	if _, err := mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := mem.Write(0x100040+uint64(i%64)*8, 8, uint64(i)); f != nil {
			b.Fatal(f)
		}
	}
}

var sinkU64 uint64
