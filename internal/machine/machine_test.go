package machine

import (
	"math"
	"testing"

	"confllvm/internal/asm"
)

// buildMachine maps a small code region and a data region and returns a
// thread ready to run the given instructions.
func buildMachine(t *testing.T, insts []asm.Inst) (*Machine, *Thread) {
	t.Helper()
	m := New(DefaultConfig())
	var code []byte
	for _, in := range insts {
		code = asm.Encode(code, in)
	}
	code = asm.Encode(code, asm.Inst{Op: asm.OpExit})
	if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
		t.Fatal(f)
	}
	th := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
	return m, th
}

func run(t *testing.T, m *Machine) *Fault {
	t.Helper()
	return m.Run()
}

func TestALUAndFlags(t *testing.T) {
	m, th := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 10},
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 3},
		{Op: asm.OpSubRR, Dst: asm.RAX, Src: asm.RBX}, // 7
		{Op: asm.OpMulRI, Dst: asm.RAX, Imm: 6},       // 42
		{Op: asm.OpCmpRI, Dst: asm.RAX, Imm: 42},
		{Op: asm.OpSetCC, Cond: asm.CondE, Dst: asm.RCX},
	})
	if f := run(t, m); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RAX] != 42 || th.Regs[asm.RCX] != 1 {
		t.Fatalf("rax=%d rcx=%d", th.Regs[asm.RAX], th.Regs[asm.RCX])
	}
}

func TestSignedConditions(t *testing.T) {
	cases := []struct {
		a, b int64
		cond asm.Cond
		want uint64
	}{
		{-5, 3, asm.CondL, 1},
		{-5, 3, asm.CondB, 0}, // unsigned: huge > 3
		{5, 5, asm.CondLE, 1},
		{5, 5, asm.CondGE, 1},
		{7, 5, asm.CondG, 1},
		{7, 5, asm.CondA, 1},
	}
	for _, c := range cases {
		m, th := buildMachine(t, []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: c.a},
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: c.b},
			{Op: asm.OpCmpRR, Dst: asm.RAX, Src: asm.RBX},
			{Op: asm.OpSetCC, Cond: c.cond, Dst: asm.RCX},
		})
		if f := run(t, m); f != nil {
			t.Fatal(f)
		}
		if th.Regs[asm.RCX] != c.want {
			t.Errorf("%d cmp %d set%v = %d, want %d", c.a, c.b, c.cond, th.Regs[asm.RCX], c.want)
		}
	}
}

func TestLoadStoreSizes(t *testing.T) {
	m, th := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100000},
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: -2}, // 0xFFFF...FE
		{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 2}, Src: asm.RAX},
		{Op: asm.OpLoad, Dst: asm.RCX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 2}},
		{Op: asm.OpLoad, Dst: asm.RDX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 2, Signed: true}},
	})
	if f := run(t, m); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RCX] != 0xFFFE {
		t.Errorf("zero-extended load = %#x, want 0xFFFE", th.Regs[asm.RCX])
	}
	if int64(th.Regs[asm.RDX]) != -2 {
		t.Errorf("sign-extended load = %d, want -2", int64(th.Regs[asm.RDX]))
	}
}

func TestGuardPageFault(t *testing.T) {
	m, _ := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x500000}, // unmapped
		{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
	})
	f := run(t, m)
	if f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("want guard fault, got %v", f)
	}
}

func TestWriteToCodeFaults(t *testing.T) {
	m, _ := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x1000},
		{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
	})
	f := run(t, m)
	if f == nil || f.Kind != FaultPerm {
		t.Fatalf("want perm fault, got %v", f)
	}
}

func TestNXFetchFaults(t *testing.T) {
	m, _ := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100000},
		{Op: asm.OpJmpR, Src: asm.RBX}, // jump into the data region
	})
	f := run(t, m)
	if f == nil || f.Kind != FaultNX {
		t.Fatalf("want NX fault, got %v", f)
	}
}

func TestMPXBounds(t *testing.T) {
	m, th := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100010},
		{Op: asm.OpBndCLReg, Src: asm.RBX, Bnd: asm.BND0},
		{Op: asm.OpBndCUReg, Src: asm.RBX, Bnd: asm.BND0},
	})
	th.Bnd[asm.BND0] = BndRange{Lo: 0x100000, Hi: 0x100020}
	if f := run(t, m); f != nil {
		t.Fatalf("in-bounds check faulted: %v", f)
	}

	m2, th2 := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100030},
		{Op: asm.OpBndCUReg, Src: asm.RBX, Bnd: asm.BND0},
	})
	th2.Bnd[asm.BND0] = BndRange{Lo: 0x100000, Hi: 0x100020}
	f := run(t, m2)
	if f == nil || f.Kind != FaultBounds {
		t.Fatalf("want bounds fault, got %v", f)
	}
}

func TestSegmentAddressing(t *testing.T) {
	// gs + low32(base): write through a gs-prefixed operand and check the
	// effective address arithmetic.
	m, th := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 123},
		// Base register holds a full VA whose low 32 bits are 0x100040;
		// the high bits must be ignored under Use32.
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x0B00000000100040},
		{Op: asm.OpStore, M: asm.Mem{Seg: asm.SegGS, Base: asm.RBX, Index: asm.NoReg,
			Size: 8, Use32: true}, Src: asm.RAX},
	})
	th.GS = 0 // segment base 0 for the test: EA = low32(rbx)
	if f := run(t, m); f != nil {
		t.Fatal(f)
	}
	v, f := m.Mem.Read(0x100040, 8)
	if f != nil || v != 123 {
		t.Fatalf("segment store missed: v=%d f=%v", v, f)
	}
}

func TestChkSP(t *testing.T) {
	m, th := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RSP, Imm: 0x50}, // way outside the stack
		{Op: asm.OpChkSP},
	})
	_ = th
	f := run(t, m)
	if f == nil || f.Kind != FaultStack {
		t.Fatalf("want stack fault, got %v", f)
	}
}

func TestCallRetAndTrap(t *testing.T) {
	// call +x; exit at return; callee traps.
	m, _ := buildMachine(t, []asm.Inst{
		{Op: asm.OpCall, Imm: 0x1000 + 9 + 1}, // skip following exit
		{Op: asm.OpExit},
		{Op: asm.OpTrap},
	})
	f := run(t, m)
	if f == nil || f.Kind != FaultCFI {
		t.Fatalf("want CFI trap, got %v", f)
	}
}

func TestDivideFault(t *testing.T) {
	m, _ := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 1},
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0},
		{Op: asm.OpDivRR, Dst: asm.RAX, Src: asm.RBX},
	})
	f := run(t, m)
	if f == nil || f.Kind != FaultDivide {
		t.Fatalf("want divide fault, got %v", f)
	}
}

func TestFloatOps(t *testing.T) {
	m, th := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 7},
		{Op: asm.OpCvtIF, FDst: 0, Src: asm.RAX},
		{Op: asm.OpFMovI, FDst: 1, Imm: int64(float64bits(0.5))},
		{Op: asm.OpFMul, FDst: 0, FSrc: 1}, // 3.5
		{Op: asm.OpCvtFI, Dst: asm.RBX, FSrc: 0},
	})
	if f := run(t, m); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RBX] != 3 {
		t.Fatalf("cvt(7*0.5) = %d, want 3", th.Regs[asm.RBX])
	}
}

func TestFPMaskingCredits(t *testing.T) {
	// A bound check right after FP work costs nothing; standalone it
	// costs a cycle.
	mk := func(withFP bool) uint64 {
		var insts []asm.Inst
		if withFP {
			insts = append(insts, asm.Inst{Op: asm.OpFAdd, FDst: 0, FSrc: 1})
		}
		insts = append(insts, asm.Inst{Op: asm.OpBndCLReg, Src: asm.RBX, Bnd: asm.BND0})
		m, th := buildMachine(t, insts)
		th.Bnd[asm.BND0] = BndRange{Lo: 0, Hi: ^uint64(0)}
		if f := run(t, m); f != nil {
			t.Fatal(f)
		}
		return th.Stats.BndMasked
	}
	if mk(true) != 1 {
		t.Error("check after FP op should be masked")
	}
	if mk(false) != 0 {
		t.Error("standalone check should not be masked")
	}
}

func TestWallCyclesScheduling(t *testing.T) {
	m := New(Config{Cores: 2})
	for i := 0; i < 4; i++ {
		th := m.NewThread(0, 0, 0, 0)
		th.Stats.Cycles = 100
		th.Halted = true
	}
	// 4 threads x 100 cycles on 2 cores = 200 wall cycles.
	if w := m.WallCycles(); w != 200 {
		t.Fatalf("wall = %d, want 200", w)
	}
}

func TestTrustedHandlerDispatch(t *testing.T) {
	m, th := buildMachine(t, []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.R11, Imm: 0x9000},
		{Op: asm.OpICall, Src: asm.R11},
	})
	called := false
	m.Handlers[0x9000] = func(m *Machine, t *Thread) *Fault {
		called = true
		ra, f := t.Pop()
		if f != nil {
			return f
		}
		t.PC = ra
		return nil
	}
	if f := run(t, m); f != nil {
		t.Fatal(f)
	}
	if !called {
		t.Fatal("handler never dispatched")
	}
	_ = th
}

func float64bits(f float64) uint64 { return math.Float64bits(f) }
