package machine

import (
	"confllvm/internal/asm"
)

// codeTrace is the decoded-trace cache for one executable region: a dense
// array of decoded instructions indexed by PC offset, so the fetch path is
// one bounds check and a pointer dereference instead of a map probe.
//
// Instructions are decoded lazily, one PC at a time, on first execution:
// the instruction stream is variable-length and interleaves data (magic
// sequences), so linear pre-decode from the region base would misalign.
// A slot in the middle of another instruction's encoding simply stays
// undecoded unless control flow actually lands there — which mirrors the
// hardware, where any byte offset is a potential instruction start.
//
// Code regions are immutable after loading (no W permission), so traces
// never go stale; Memory.WriteBytesUnchecked flushes them anyway for tests
// that patch code.
type codeTrace struct {
	lo   uint64
	size uint64
	code []byte // immutable snapshot of the region's bytes

	// insts[off] is valid iff lens[off] != 0; lens[off] is the encoded
	// length of the instruction starting at lo+off.
	insts []asm.Inst
	lens  []uint8

	// runs[off] is the flattened superblock entered at lo+off (nil = not
	// yet built), and blocks[off] its instruction count (0 = unbuilt) —
	// the compact index the tests and invariants assert against; see
	// superblock.go. Both share the trace's lifetime — a flushed trace
	// takes its runs (and every chain link living inside them) with it —
	// and are additionally flushed when the trusted-handler index changes.
	blocks []uint16
	runs   []*blockRun
}

func newCodeTrace(mem *Memory, r *Region) *codeTrace {
	tr := &codeTrace{
		lo:     r.Lo,
		size:   r.Size,
		code:   make([]byte, r.Size),
		insts:  make([]asm.Inst, r.Size),
		lens:   make([]uint8, r.Size),
		blocks: make([]uint16, r.Size),
		runs:   make([]*blockRun, r.Size),
	}
	mem.copyOut(r.Lo, tr.code)
	return tr
}

// traceFor returns the decode trace covering pc, building one on first
// entry into an executable region. Fetching from guard space or a
// non-executable region faults.
func (m *Machine) traceFor(pc uint64) (*codeTrace, *Fault) {
	for _, tr := range m.traces {
		if pc-tr.lo < tr.size {
			return tr, nil
		}
	}
	r := m.Mem.Find(pc)
	if r == nil {
		return nil, &Fault{Kind: FaultUnmapped, Addr: pc, Msg: "fetch from guard space"}
	}
	if r.Perm&PermX == 0 {
		return nil, &Fault{Kind: FaultNX, Addr: pc, Msg: "fetch from " + r.Name}
	}
	tr := newCodeTrace(m.Mem, r)
	m.traces = append(m.traces, tr)
	return tr, nil
}

// RegisterCode eagerly builds the decode trace for the executable region
// containing addr (instruction decode itself stays lazy). The loader calls
// this once the image bytes are in place so the first fetch does not pay
// the region snapshot.
func (m *Machine) RegisterCode(addr uint64) *Fault {
	_, f := m.traceFor(addr)
	return f
}

// flushTraces drops every decode trace (used when code bytes are patched).
func (m *Machine) flushTraces() {
	m.traces = m.traces[:0]
	m.lastTrace = nil
}
