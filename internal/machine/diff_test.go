// Differential-execution harness: every workload is run under every
// dispatch mode — per-instruction stepping, unchained superblocks,
// chained superblocks, superinstruction fusion, and threaded dispatch —
// and the executions must be bit-identical in every observable: final
// registers and flags per thread, per-thread architectural stats
// (instructions, cycles, loads, stores, bound checks, cache misses,
// trusted calls; the dispatcher-observability counters are compared
// through Stats.Arch), exit codes, memory digests, output channels, and
// — for faulting programs — the fault kind, address, PC and formatted
// message. This is the test that licenses enabling superblocks and
// fusion by default: any dispatch-layer bug that perturbs a simulated
// result fails here before it can silently skew a figure table.
package machine_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"confllvm"
	"confllvm/internal/bench"
	"confllvm/internal/machine"
)

// diffModes is the dispatch-mode matrix of the 5-way diff: stepping is
// the reference, and every other mode must match it bit for bit. -short
// trims to the two newest (and strictest) modes — fused and threaded —
// both of which subsume chained dispatch.
type diffMode struct {
	name                  string
	chain, fuse, threaded bool
}

func diffModes() []diffMode {
	modes := []diffMode{
		{name: "fused", chain: true, fuse: true},
		{name: "threaded", chain: true, fuse: true, threaded: true},
	}
	if !testing.Short() {
		modes = append(modes,
			// Unchained, unfused: divergence here isolates a bug to run
			// flattening itself.
			diffMode{name: "nochain"},
			// Chained but unfused: isolates the chain layer.
			diffMode{name: "chained", chain: true},
		)
	}
	return modes
}

// diffRun executes one artifact+world under per-instruction stepping and
// every superblock dispatch mode (see diffModes) and compares
// everything. It returns the stepping-mode result for further
// workload-specific assertions.
func diffRun(t *testing.T, art *confllvm.Artifact, mkWorld func() *confllvm.World,
	base *machine.Config) *confllvm.Result {
	t.Helper()
	mcStep := machine.DefaultConfig()
	if base != nil {
		mcStep = *base
	}
	mcStep.Superblocks = false
	mcStep.Fuse = false
	mcStep.Threaded = false

	ref, err := confllvm.Run(art, mkWorld(), &mcStep)
	if err != nil {
		t.Fatalf("stepwise run: %v", err)
	}
	for _, md := range diffModes() {
		mc := mcStep
		mc.Superblocks = true
		mc.Chain = md.chain
		mc.Fuse = md.fuse
		mc.Threaded = md.threaded
		got, err := confllvm.Run(art, mkWorld(), &mc)
		if err != nil {
			t.Fatalf("%s run: %v", md.name, err)
		}
		compareResults(t, md.name, ref, got)
	}
	return ref
}

func compareResults(t *testing.T, mode string, ref, got *confllvm.Result) {
	t.Helper()
	// Faults: kind, address, PC and message must all match.
	if (ref.Fault == nil) != (got.Fault == nil) {
		t.Fatalf("fault divergence: stepwise=%v %s=%v", ref.Fault, mode, got.Fault)
	}
	if ref.Fault != nil {
		if *ref.Fault != *got.Fault {
			t.Fatalf("fault mismatch:\nstepwise: %+v\n%s: %+v", *ref.Fault, mode, *got.Fault)
		}
		if ref.Fault.Error() != got.Fault.Error() {
			t.Fatalf("fault message mismatch:\nstepwise: %s\n%s: %s",
				ref.Fault.Error(), mode, got.Fault.Error())
		}
	}
	if ref.ExitCode != got.ExitCode {
		t.Fatalf("exit code: %d vs %d", ref.ExitCode, got.ExitCode)
	}
	if ref.Stats.Arch() != got.Stats.Arch() {
		t.Fatalf("aggregate stats mismatch:\nstepwise: %+v\n%s: %+v", ref.Stats, mode, got.Stats)
	}
	if ref.WallCycles != got.WallCycles {
		t.Fatalf("wall cycles: %d vs %d", ref.WallCycles, got.WallCycles)
	}

	// Observable channels.
	if len(ref.Outputs) != len(got.Outputs) {
		t.Fatalf("outputs: %v vs %v", ref.Outputs, got.Outputs)
	}
	for i := range ref.Outputs {
		if ref.Outputs[i] != got.Outputs[i] {
			t.Fatalf("outputs[%d]: %d vs %d", i, ref.Outputs[i], got.Outputs[i])
		}
	}
	if !bytes.Equal(ref.Log, got.Log) {
		t.Fatal("log bytes differ across dispatch modes")
	}
	if len(ref.NetOut) != len(got.NetOut) {
		t.Fatalf("net packets: %d vs %d", len(ref.NetOut), len(got.NetOut))
	}
	for i := range ref.NetOut {
		if !bytes.Equal(ref.NetOut[i], got.NetOut[i]) {
			t.Fatalf("net packet %d differs across dispatch modes", i)
		}
	}

	// Per-thread architectural state.
	if len(ref.Machine.Threads) != len(got.Machine.Threads) {
		t.Fatalf("thread count: %d vs %d", len(ref.Machine.Threads), len(got.Machine.Threads))
	}
	for i := range ref.Machine.Threads {
		a, b := ref.Machine.Threads[i], got.Machine.Threads[i]
		if a.Regs != b.Regs {
			t.Fatalf("thread %d registers:\nstepwise: %v\n%s: %v", i, a.Regs, mode, b.Regs)
		}
		for r := range a.FRegs {
			if math.Float64bits(a.FRegs[r]) != math.Float64bits(b.FRegs[r]) {
				t.Fatalf("thread %d xmm%d: %v vs %v", i, r, a.FRegs[r], b.FRegs[r])
			}
		}
		if a.PC != b.PC {
			t.Fatalf("thread %d PC: %#x vs %#x", i, a.PC, b.PC)
		}
		if a.ZF != b.ZF || a.SF != b.SF || a.CF != b.CF || a.OF != b.OF {
			t.Fatalf("thread %d flags differ", i)
		}
		if a.FS != b.FS || a.GS != b.GS || a.Bnd != b.Bnd {
			t.Fatalf("thread %d segment/bound state differs", i)
		}
		if a.Halted != b.Halted || a.ExitCode != b.ExitCode {
			t.Fatalf("thread %d halt state differs", i)
		}
		if a.Stats.Arch() != b.Stats.Arch() {
			t.Fatalf("thread %d stats:\nstepwise: %+v\n%s: %+v", i, a.Stats, mode, b.Stats)
		}
	}

	// The whole address space.
	if da, db := ref.Machine.Mem.Digest(), got.Machine.Mem.Digest(); da != db {
		t.Fatalf("memory digest: %#x vs %#x", da, db)
	}
}

// TestDifferentialWorkloads runs every bench program and the examples'
// quickstart binary under both dispatch modes across the paper's main
// configurations.
func TestDifferentialWorkloads(t *testing.T) {
	variants := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantCFI,
		confllvm.VariantMPX, confllvm.VariantSeg}
	if testing.Short() {
		variants = []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg}
	}
	for _, wl := range bench.Workloads(true) {
		wl := wl
		for _, v := range variants {
			v := v
			t.Run(fmt.Sprintf("%s/%v", wl.Name, v), func(t *testing.T) {
				t.Parallel() // cells are independent machines; the artifact cache is singleflight
				art, err := bench.CompileCached(wl.Key, v, wl.Prog(v))
				if err != nil {
					t.Fatal(err)
				}
				res := diffRun(t, art, wl.World, nil)
				if res.Fault != nil {
					t.Fatalf("workload faulted (in both modes): %v", res.Fault)
				}
				if wl.Check != nil {
					if err := wl.Check(res); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

// TestDifferentialVulns runs the §7.6 exploit programs — which fault or
// mis-read by design — under both modes: fault traces and attacker-
// observable channels must agree exactly.
func TestDifferentialVulns(t *testing.T) {
	secretFile := []byte("THE-PRIVATE-FILE-CONTENTS-ARE-SECRET")
	vulns := []struct {
		name  string
		src   string
		world func() *confllvm.World
	}{
		{"mongoose", bench.VulnMongooseSrc, func() *confllvm.World {
			w := confllvm.NewWorld()
			pf := make([]byte, 256)
			copy(pf, secretFile)
			w.PrivFiles["s"] = pf
			w.Files["p"] = []byte("public-file")
			w.Params = []int64{500}
			return w
		}},
		{"minizip", bench.VulnMinizipSrc, func() *confllvm.World {
			w := confllvm.NewWorld()
			w.Passwords["u"] = []byte("hunter2-hunter2-hunter2-hunter2")
			return w
		}},
		{"printf", bench.VulnPrintfSrc, func() *confllvm.World {
			w := confllvm.NewWorld()
			w.PrivIn[0] = []byte("0123456789abcdef")
			return w
		}},
	}
	variants := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX, confllvm.VariantSeg}
	for _, vu := range vulns {
		vu := vu
		for _, v := range variants {
			v := v
			t.Run(fmt.Sprintf("%s/%v", vu.name, v), func(t *testing.T) {
				t.Parallel()
				art, err := bench.CompileCached("vuln-"+vu.name, v, confllvm.Program{
					Sources: []confllvm.Source{
						{Name: vu.name + ".c", Code: vu.src},
						{Name: "ulib.c", Code: bench.ULib},
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				diffRun(t, art, vu.world, nil)
			})
		}
	}
}

// TestDifferentialFuelCutoff places the instruction-budget fault at
// arbitrary points inside superblocks: both modes must cut at the same
// instruction with identical partial state.
func TestDifferentialFuelCutoff(t *testing.T) {
	wl := bench.SPECWorkload(bench.SPECKernels()[0], bench.SPECKernels()[0].ShortParams)
	art, err := bench.CompileCached(wl.Key, confllvm.VariantMPX, wl.Prog(confllvm.VariantMPX))
	if err != nil {
		t.Fatal(err)
	}
	fuels := []uint64{2, 100, 1023, 1024, 1025, 5_000, 77_777}
	if testing.Short() {
		fuels = []uint64{100, 1025, 5_000}
	}
	for _, fuel := range fuels {
		fuel := fuel
		t.Run(fmt.Sprintf("fuel-%d", fuel), func(t *testing.T) {
			t.Parallel()
			mc := machine.DefaultConfig()
			mc.DefaultFuel = fuel
			res := diffRun(t, art, wl.World, &mc)
			if res.Fault == nil || res.Fault.Kind != machine.FaultFuel {
				t.Fatalf("want fuel fault, got %v", res.Fault)
			}
		})
	}
}
