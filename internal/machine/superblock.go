package machine

import (
	"confllvm/internal/asm"
)

// Superblock execution: Run (with Conf.Superblocks) dispatches once per
// basic block instead of once per instruction. A superblock is a maximal
// run of straight-line decoded instructions ending at (and including) the
// first terminator — any instruction that redirects or ends control flow.
// Block interiors skip the per-instruction trusted-handler probe, the
// PC-range gate against the decode trace, and the per-instruction PC and
// counter write-backs; all of those are either hoisted to block entry or
// deferred to block exit without changing any simulated result.
//
// Invalidation mirrors the decode traces themselves: patching code bytes
// (Memory.WriteBytesUnchecked) flushes whole traces, blocks included. In
// addition, blocks never span a PC inside the registered trusted-handler
// address range [hndLo, hndHi] — per-instruction stepping probes the
// handler map at every PC, so a block fused across a handler address
// would skip a dispatch. rebuildHandlerIndex flushes all block metadata
// whenever that range changes.

// maxBlockLen caps a superblock at one scheduling quantum: longer blocks
// would be split by the quantum budget anyway, and the cap keeps the
// count comfortably inside the uint16 blocks slot.
const maxBlockLen = quantum

// blockEnd reports whether op terminates a superblock: the ops that set
// the next PC non-sequentially, halt the thread, or unconditionally
// fault. Faultable straight-line ops (loads, bound checks, division...)
// stay in block interiors — execInsts delivers their faults with the
// exact per-instruction PC and message.
func blockEnd(op asm.Op) bool {
	switch op {
	case asm.OpJmp, asm.OpJcc, asm.OpJmpR, asm.OpCall, asm.OpICall,
		asm.OpRet, asm.OpTrap, asm.OpExit, asm.OpSyscall:
		return true
	}
	return false
}

// buildBlock decodes straight-line instructions from off up to and
// including the first terminator, records the block length, and returns
// it. A decode failure at off itself is the caller's fault to deliver; a
// failure further in simply ends the block early — execution faults there
// when, and only when, the PC actually reaches that slot, exactly as
// per-instruction stepping would.
func (tr *codeTrace) buildBlock(m *Machine, off uint64) (int, *Fault) {
	n := 0
	for o := off; ; {
		ln := int(tr.lens[o])
		if ln == 0 {
			dn, err := asm.DecodeInto(&tr.insts[o], tr.code, int(o))
			if err != nil {
				if n == 0 {
					return 0, &Fault{Kind: FaultDecode, Addr: tr.lo + o, Msg: err.Error()}
				}
				break
			}
			tr.lens[o] = uint8(dn)
			ln = dn
		}
		n++
		if blockEnd(tr.insts[o].Op) || n >= maxBlockLen {
			break
		}
		o += uint64(ln)
		if o >= tr.size {
			// Straight-line code running off the region: the next dispatch
			// faults on fetch, as stepping mode does.
			break
		}
		if pc := tr.lo + o; pc >= m.hndLo && pc <= m.hndHi {
			// The successor PC could be a trusted handler: end the block so
			// the dispatcher re-probes the handler map there.
			break
		}
	}
	tr.blocks[off] = uint16(n)
	return n, nil
}

// stepBlocks executes up to max instructions on t, a block at a time:
// trusted-handler dispatches (each counting as one instruction, exactly
// like a Step call), whole superblocks, and budget-capped block prefixes
// when a quantum or fuel boundary lands mid-block — the remainder simply
// becomes a new block entry at the interior PC. Returns the number of
// instructions charged, including a faulting one.
func (t *Thread) stepBlocks(max int) (int, *Fault) {
	m := t.m
	done := 0
	for done < max && !t.Halted {
		if len(m.Handlers) != m.nHandlers {
			m.rebuildHandlerIndex()
		}
		if t.PC >= m.hndLo && t.PC <= m.hndHi {
			if h, ok := m.Handlers[t.PC]; ok {
				t.Stats.TrustedCall++
				done++
				if f := h(m, t); f != nil {
					return done, t.fault(f)
				}
				continue
			}
		}
		tr := m.lastTrace
		if tr == nil || t.PC-tr.lo >= tr.size {
			var f *Fault
			if tr, f = m.traceFor(t.PC); f != nil {
				return done, t.fault(f)
			}
			m.lastTrace = tr
		}
		off := t.PC - tr.lo
		nb := int(tr.blocks[off])
		if nb == 0 {
			var f *Fault
			if nb, f = tr.buildBlock(m, off); f != nil {
				// The entry instruction is undecodable: the charge matches
				// the Step call that would have faulted fetching it.
				return done + 1, t.fault(f)
			}
		}
		if rem := max - done; nb > rem {
			nb = rem
		}
		n, f := t.execInsts(tr, off, nb)
		done += n
		if f != nil {
			return done, f
		}
	}
	return done, nil
}

// flushBlocks invalidates superblock metadata in every decode trace. The
// decoded instructions are untouched: this is for events that move
// dispatch points (handler-index changes), not code-byte patches — those
// flush the traces wholesale.
func (m *Machine) flushBlocks() {
	for _, tr := range m.traces {
		for i := range tr.blocks {
			tr.blocks[i] = 0
		}
	}
}
