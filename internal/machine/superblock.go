package machine

import (
	"math"

	"confllvm/internal/asm"
)

// Superblock execution: Run (with Conf.Superblocks) dispatches once per
// basic block instead of once per instruction. A superblock is a maximal
// run of straight-line decoded instructions ending at (and including) the
// first terminator — any instruction that redirects or ends control flow.
// Block interiors skip the per-instruction trusted-handler probe, the
// PC-range gate against the decode trace, and the per-instruction PC and
// counter write-backs; all of those are either hoisted to block entry or
// deferred to block exit without changing any simulated result.
//
// Block IR: when buildBlock closes a superblock it flattens it into a
// blockRun — a dense []asm.Inst slice plus per-slot PCs and terminator
// metadata — cached in codeTrace.runs[entryOff], so execRun iterates a
// flat slice instead of re-walking lens[o] offsets per instruction.
//
// Direct block chaining (Conf.Chain): a run ending in a direct jmp, and
// both edges of a jcc, cache a pointer to the successor run when the
// target lies in the same trace and outside the trusted-handler range.
// Hot loops then execute run-to-run inside execRun without returning
// through stepBlocks' trace lookup, handler probe and runs[] probe. A
// link is only ever cached after validating that the dispatcher work it
// skips could not have mattered: same trace (no fetch fault or region
// change), outside [hndLo, hndHi] (no handler dispatch), decodable entry
// (no decode fault).
//
// Invalidation mirrors the decode traces themselves: patching code bytes
// (Memory.WriteBytesUnchecked) flushes whole traces — runs and the chain
// links inside them die with the trace. In addition, blocks never span a
// PC inside the registered trusted-handler address range [hndLo, hndHi]
// and chain links never target one — per-instruction stepping probes the
// handler map at every PC, so a block fused across (or chained into) a
// handler address would skip a dispatch. rebuildHandlerIndex flushes all
// run and block metadata whenever that range changes.

// maxBlockLen caps a superblock at one scheduling quantum: longer blocks
// would be split by the quantum budget anyway, and the cap keeps the
// count comfortably inside the uint16 blocks slot.
const maxBlockLen = quantum

func init() {
	// buildBlock narrows block lengths into the uint16 blocks[] index and
	// relies on maxBlockLen == quantum to bound them; guard the narrowing
	// against a future quantum bump.
	if quantum > math.MaxUint16 {
		panic("machine: quantum does not fit the uint16 blocks[] narrowing")
	}
}

// blockEnd reports whether op terminates a superblock: the ops that set
// the next PC non-sequentially, halt the thread, or unconditionally
// fault. Faultable straight-line ops (loads, bound checks, division...)
// stay in block interiors — execRun delivers their faults with the
// exact per-instruction PC and message.
func blockEnd(op asm.Op) bool {
	switch op {
	case asm.OpJmp, asm.OpJcc, asm.OpJmpR, asm.OpCall, asm.OpICall,
		asm.OpRet, asm.OpTrap, asm.OpExit, asm.OpSyscall:
		return true
	}
	return false
}

// blockRun is the flattened (block-IR) form of one superblock. Slot k's
// instruction is insts[k]; pcs[k] is its PC and pcs[k+1] its fall-through
// PC (pcs has n+1 entries), so execRun needs no lens[] walk and can
// reconstruct the exact faulting PC from a slot index alone. The chain
// fields cache validated successor links, resolved lazily on first use;
// nil means unresolved-or-unchainable, and a failed resolution simply
// falls back to the dispatcher (retrying costs two compares).
type blockRun struct {
	insts []asm.Inst // flattened copies of the block's instructions
	pcs   []uint64   // pcs[k] = PC of slot k; pcs[n] = fall-through PC
	cum   []uint32   // cum[k] = summed static cost of slots [0,k)
	n     int        // == len(insts)

	// term is the terminator op when the block ended at a true terminator,
	// and OpInvalid when it ended early — maxBlockLen cap, straight-line
	// code running off the region, the next PC entering the trusted-handler
	// range, or an undecodable next slot. Early-ended runs are never
	// chained: their successor dispatch must re-probe everything (and the
	// off-region case must fault on fetch exactly as stepping mode does).
	term    asm.Op
	takenPC uint64    // jmp/jcc branch target (uint64(Imm))
	next    *blockRun // chained successor of a direct jmp
	taken   *blockRun // chained jcc taken edge
	fall    *blockRun // chained jcc fall-through edge

	// short marks a run truncated by a caller limit below maxBlockLen
	// (Step's one-slot builds): correct to execute, but block dispatch
	// and chain resolution rebuild it at full length on first contact so
	// a prior Step at a hot PC cannot degrade Run to one-instruction
	// dispatches there.
	short bool

	// Superinstruction fusion (Conf.Fuse, see fuse.go): xinsts is the
	// fused slot program — synthetic idiom slots (Imm indexing fused)
	// interleaved with singleton copies — or nil when no idiom matched.
	// insts/pcs/cum above stay constituent-indexed regardless, so fuel,
	// fault PCs and cycle charges are computed identically either way.
	xinsts []asm.Inst
	fused  []fusedInst

	// Threaded dispatch (Conf.Threaded, see dispatch.go): per-slot
	// handler funcs resolved at flatten time, parallel to xinsts when
	// fusion produced one and to insts otherwise; nil when off.
	ops []opFunc
}

// buildBlock decodes straight-line instructions from off up to and
// including the first terminator (capped at limit slots), flattens them
// into a blockRun cached at tr.runs[off] (recording the count in
// tr.blocks[off]), and returns it. Block dispatch passes maxBlockLen;
// Step passes 1 so that stepping through a long straight-line stretch
// builds one-slot runs instead of a quadratic pile of overlapping
// suffixes. A decode failure at off itself is the caller's fault to
// deliver; a failure further in simply ends the block early — execution
// faults there when, and only when, the PC actually reaches that slot,
// exactly as per-instruction stepping would.
func (tr *codeTrace) buildBlock(m *Machine, off uint64, limit int) (*blockRun, *Fault) {
	n := 0
	term := asm.OpInvalid
	for o := off; ; {
		ln := int(tr.lens[o])
		if ln == 0 {
			dn, err := asm.DecodeInto(&tr.insts[o], tr.code, int(o))
			if err != nil {
				if n == 0 {
					return nil, &Fault{Kind: FaultDecode, Addr: tr.lo + o, Msg: err.Error()}
				}
				break
			}
			tr.lens[o] = uint8(dn)
			ln = dn
		}
		n++
		if op := tr.insts[o].Op; blockEnd(op) {
			term = op
			break
		}
		if n >= limit {
			break
		}
		o += uint64(ln)
		if o >= tr.size {
			// Straight-line code running off the region: the next dispatch
			// faults on fetch, as stepping mode does. term stays OpInvalid
			// so the run is never chained past the missing fetch.
			break
		}
		if pc := tr.lo + o; pc >= m.hndLo && pc <= m.hndHi {
			// The successor PC could be a trusted handler: end the block so
			// the dispatcher re-probes the handler map there.
			break
		}
	}

	run := &blockRun{
		insts: make([]asm.Inst, n),
		pcs:   make([]uint64, n+1),
		cum:   make([]uint32, n+1),
		n:     n,
		term:  term,
		short: term == asm.OpInvalid && n == limit && limit < maxBlockLen,
	}
	o := off
	for i := 0; i < n; i++ {
		run.insts[i] = tr.insts[o]
		run.pcs[i] = tr.lo + o
		run.cum[i+1] = run.cum[i] + staticCost(tr.insts[o].Op)
		o += uint64(tr.lens[o])
	}
	run.pcs[n] = tr.lo + o
	if term == asm.OpJmp || term == asm.OpJcc {
		run.takenPC = uint64(run.insts[n-1].Imm)
	}
	// The slot-program passes run after the constituent arrays and the
	// terminator metadata are final: fusion rewrites only the program
	// the dispatch loop walks, and threading resolves handlers for
	// whichever program that is. Step's one-slot builds (limit 1) never
	// fuse — fuseRun needs at least two constituents — so a prior Step
	// at a hot PC cannot change the fusion of the full-length run block
	// dispatch rebuilds.
	if m.Conf.Fuse {
		fuseRun(run)
	}
	if m.Conf.Threaded {
		threadRun(run)
	}
	tr.blocks[off] = uint16(n)
	tr.runs[off] = run
	return run, nil
}

// staticCost returns op's fixed base cycle cost — the part of the cost
// model that depends only on the opcode. buildBlock folds these into the
// run's cum[] prefix sum so execRun charges a whole block's static
// cycles with one addition; the dynamic components (cache-miss
// penalties, FP-masked bound-check refunds) are applied by the opcode
// cases at execution time. Any new cost in the execRun switch must be
// either reflected here or added dynamically there.
func staticCost(op asm.Op) uint32 {
	switch op {
	case asm.OpMulRR, asm.OpMulRI:
		return 3
	case asm.OpDivRR, asm.OpModRR:
		return 20
	case asm.OpCall, asm.OpICall, asm.OpRet:
		return 2
	case asm.OpFDiv:
		return 12
	case asm.OpCvtIF, asm.OpCvtFI:
		return 2
	}
	return 1
}

// chainTarget resolves a chain link: the run entered at pc, built on
// demand, or nil when pc must go back through the full dispatcher — a
// different trace (the target may need a fetch fault or a trace switch),
// a PC inside the trusted-handler range (the handler map must be
// probed), or an entry that fails to decode (the dispatcher delivers
// that fault with stepping-identical charging).
func (tr *codeTrace) chainTarget(m *Machine, pc uint64) *blockRun {
	off := pc - tr.lo
	if off >= tr.size {
		return nil
	}
	if pc >= m.hndLo && pc <= m.hndHi {
		return nil
	}
	run := tr.runs[off]
	if run == nil || run.short {
		run, _ = tr.buildBlock(m, off, maxBlockLen)
	}
	return run
}

// stepBlocks executes up to max instructions on t: trusted-handler
// dispatches (each counting as one instruction, exactly like a Step
// call), chained sequences of whole superblocks, and budget-capped block
// prefixes when a quantum or fuel boundary lands mid-block — the
// remainder simply becomes a new block entry at the interior PC. Returns
// the number of instructions charged, including a faulting one.
func (t *Thread) stepBlocks(max int) (int, *Fault) {
	m := t.m
	chain := m.Conf.Chain
	done := 0
	for done < max && !t.Halted {
		if t.PC >= m.hndLo && t.PC <= m.hndHi {
			if h, ok := m.Handlers[t.PC]; ok {
				t.Stats.TrustedCall++
				done++
				// Mirror Step's profiling wrap: the handler's cycle delta
				// (its charge() transition cost) lands on its address.
				hpc, c0 := t.PC, t.Stats.Cycles
				f := h(m, t)
				if prof := m.prof; prof != nil {
					prof.add(hpc, t.Stats.Cycles-c0, 0)
				}
				if f != nil {
					return done, t.fault(f)
				}
				// Trusted handlers are the only code that can change the
				// handler set mid-run (Run re-indexes on entry), so the
				// size check lives here — after a dispatch — instead of
				// costing every block.
				if len(m.Handlers) != m.nHandlers {
					m.rebuildHandlerIndex()
				}
				continue
			}
		}
		tr := m.lastTrace
		if tr == nil || t.PC-tr.lo >= tr.size {
			var f *Fault
			if tr, f = m.traceFor(t.PC); f != nil {
				return done, t.fault(f)
			}
			m.lastTrace = tr
		}
		run := tr.runs[t.PC-tr.lo]
		if run == nil || run.short {
			var f *Fault
			if run, f = tr.buildBlock(m, t.PC-tr.lo, maxBlockLen); f != nil {
				// The entry instruction is undecodable: the charge matches
				// the Step call that would have faulted fetching it.
				return done + 1, t.fault(f)
			}
		}
		n, f := t.execRun(run, tr, max-done, chain)
		done += n
		if f != nil {
			return done, f
		}
	}
	return done, nil
}

// flushBlocks invalidates superblock metadata — flattened runs, chain
// links, and the block-length index — in every decode trace. The decoded
// instructions are untouched: this is for events that move dispatch
// points (handler-index changes), not code-byte patches — those flush
// the traces wholesale.
func (m *Machine) flushBlocks() {
	for _, tr := range m.traces {
		for i := range tr.blocks {
			tr.blocks[i] = 0
		}
		for i := range tr.runs {
			tr.runs[i] = nil
		}
	}
}
