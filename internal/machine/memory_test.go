package machine

import (
	"testing"
)

// mapped returns a memory with one RW data region at base covering pages
// whole pages, plus a read-only region.
func mappedMem(t *testing.T) *Memory {
	t.Helper()
	mem := NewMemory()
	if _, err := mem.Map("data", 0x100000, 0x3000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Map("ro", 0x200000, 0x1000, PermR); err != nil {
		t.Fatal(err)
	}
	return mem
}

// TestPageStraddleAccess: an access crossing a page boundary must bypass
// the TLB fast path (which only covers one page) and still read/write the
// correct little-endian value — both cold and after the TLB has been
// warmed for the pages on either side.
func TestPageStraddleAccess(t *testing.T) {
	mem := mappedMem(t)
	const straddle = 0x100FFC // 4 bytes in page 0, 4 bytes in page 1

	// Cold straddling write + read.
	if f := mem.Write(straddle, 8, 0x1122334455667788); f != nil {
		t.Fatal(f)
	}
	v, f := mem.Read(straddle, 8)
	if f != nil || v != 0x1122334455667788 {
		t.Fatalf("cold straddle read = %#x (%v)", v, f)
	}

	// Warm both pages' TLB entries, then repeat: the fast path must
	// reject the straddle (off+size > pageSize) and fall back.
	if _, f := mem.Read(0x100FF0, 8); f != nil {
		t.Fatal(f)
	}
	if _, f := mem.Read(0x101000, 8); f != nil {
		t.Fatal(f)
	}
	if f := mem.Write(straddle, 8, 0x8877665544332211); f != nil {
		t.Fatal(f)
	}
	v, f = mem.Read(straddle, 8)
	if f != nil || v != 0x8877665544332211 {
		t.Fatalf("warm straddle read = %#x (%v)", v, f)
	}
	// Byte-level check of the split: low bytes land at the end of page 0.
	lo, _ := mem.Read(straddle, 1)
	hi, _ := mem.Read(straddle+7, 1)
	if lo != 0x11 || hi != 0x88 {
		t.Fatalf("straddle bytes = %#x..%#x, want 0x11..0x88", lo, hi)
	}
}

// TestMisalignedAccessParity: misaligned in-page accesses are legal on
// both the cold (byte-loop) and warm (LittleEndian) paths and must agree
// bit-for-bit.
func TestMisalignedAccessParity(t *testing.T) {
	for _, size := range []uint8{2, 4, 8} {
		mem := mappedMem(t)
		const addr = 0x100801 // odd address, well inside a page
		val := uint64(0x1122334455667788) & (1<<(8*uint(size)) - 1)
		if size == 8 {
			val = 0x1122334455667788
		}
		// Cold: slow path (byte loop) both directions.
		if f := mem.Write(addr, size, val); f != nil {
			t.Fatal(f)
		}
		cold, f := mem.Read(addr, size)
		if f != nil {
			t.Fatal(f)
		}
		// Warm: the same page is now in the TLB; the fast path must see
		// the identical bytes.
		warm, f := mem.Read(addr, size)
		if f != nil {
			t.Fatal(f)
		}
		if cold != val || warm != val {
			t.Fatalf("size %d: cold=%#x warm=%#x want %#x", size, cold, warm, val)
		}
	}
}

// TestPartialPageNotCached: a region that covers only part of a page must
// never enter the TLB — a cached entry would let accesses inside the page
// but outside the region slip past the permission check.
func TestPartialPageNotCached(t *testing.T) {
	mem := NewMemory()
	// Region occupying the middle of one page.
	if _, err := mem.Map("sliver", 0x5800, 0x400, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if f := mem.Write(0x5800, 8, 42); f != nil {
		t.Fatal(f)
	}
	if v, f := mem.Read(0x5800, 8); f != nil || v != 42 {
		t.Fatalf("in-region read = %d (%v)", v, f)
	}
	// Same page, before the region: must fault even though the page was
	// just touched (the slow path must not have cached it).
	if _, f := mem.Read(0x5400, 8); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("out-of-region read in the same page: got %v, want unmapped fault", f)
	}
	// Access straddling the region end: the fault address is the first
	// out-of-range byte.
	if _, f := mem.Read(0x5BFC, 8); f == nil || f.Kind != FaultUnmapped || f.Addr != 0x5BFC+7 {
		t.Fatalf("region-end straddle: got %v, want unmapped at %#x", f, 0x5BFC+7)
	}
}

// TestFaultMessageParityFastSlow: the formatted fault for a denied access
// must be identical whether or not the page is resident in the TLB — the
// fast path may only succeed, never produce a different failure.
func TestFaultMessageParityFastSlow(t *testing.T) {
	// Cold machine: write to the read-only region.
	memA := mappedMem(t)
	fCold := memA.Write(0x200010, 8, 1)

	// Warm machine: read the page first so the TLB holds it (with R-only
	// perm), then write — the fast path sees perm&W == 0 and must fall
	// back to the identical slow-path fault.
	memB := mappedMem(t)
	if _, f := memB.Read(0x200010, 8); f != nil {
		t.Fatal(f)
	}
	fWarm := memB.Write(0x200010, 8, 1)

	if fCold == nil || fWarm == nil {
		t.Fatalf("read-only write must fault: cold=%v warm=%v", fCold, fWarm)
	}
	if *fCold != *fWarm {
		t.Fatalf("fault mismatch: cold=%+v warm=%+v", *fCold, *fWarm)
	}
	if fCold.Error() != fWarm.Error() {
		t.Fatalf("fault message mismatch:\ncold: %s\nwarm: %s", fCold.Error(), fWarm.Error())
	}
	if fCold.Kind != FaultPerm {
		t.Fatalf("want perm fault, got %v", fCold)
	}

	// Unmapped accesses: cold vs after unrelated TLB traffic.
	fColdU := memA.Write(0x900000, 8, 1)
	fWarmU := memB.Write(0x900000, 8, 1)
	if fColdU == nil || fWarmU == nil || *fColdU != *fWarmU || fColdU.Kind != FaultUnmapped {
		t.Fatalf("unmapped fault parity: cold=%v warm=%v", fColdU, fWarmU)
	}
}

// TestDigestIgnoresUntouchedPages: reading freshly-mapped (all-zero)
// memory allocates pages lazily but must not change the digest.
func TestDigestIgnoresUntouchedPages(t *testing.T) {
	mem := mappedMem(t)
	if f := mem.Write(0x100010, 8, 0xDEAD); f != nil {
		t.Fatal(f)
	}
	d0 := mem.Digest()
	if _, f := mem.Read(0x101000, 8); f != nil { // allocates a zero page
		t.Fatal(f)
	}
	if d1 := mem.Digest(); d1 != d0 {
		t.Fatalf("digest changed after reading untouched memory: %#x -> %#x", d0, d1)
	}
	if f := mem.Write(0x101000, 1, 1); f != nil {
		t.Fatal(f)
	}
	if d2 := mem.Digest(); d2 == d0 {
		t.Fatal("digest did not change after a real write")
	}
}
