package machine

import (
	"testing"

	"confllvm/internal/asm"
)

// buildFor encodes insts into a fresh machine with the standard test
// layout, under the given config.
func buildFor(t *testing.T, conf Config, insts []asm.Inst) (*Machine, *Thread) {
	t.Helper()
	m := New(conf)
	var code []byte
	for _, in := range insts {
		code = asm.Encode(code, in)
	}
	code = asm.Encode(code, asm.Inst{Op: asm.OpExit})
	if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
		t.Fatal(f)
	}
	th := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
	return m, th
}

// parityModes is the superblock-side half of the white-box dispatch
// matrix: every entry must be bit-identical to per-instruction stepping
// in thread state, architectural stats and memory.
var parityModes = []struct {
	name                  string
	chain, fuse, threaded bool
}{
	{"nochain", false, false, false},
	{"chained", true, false, false},
	{"fused", true, true, false},
	{"threaded", true, true, true},
}

// runParity runs the same instruction stream under per-instruction
// stepping and every superblock dispatch mode (unchained, chained,
// fused, threaded), and requires identical thread state, architectural
// stats and memory across all of them.
func runParity(t *testing.T, insts []asm.Inst) (*Thread, *Thread) {
	t.Helper()
	confA := DefaultConfig()
	confA.Superblocks = false
	confA.Fuse = false
	mA, thA := buildFor(t, confA, insts)
	fA := mA.Run()

	var thB *Thread
	for _, mode := range parityModes {
		confB := DefaultConfig()
		confB.Superblocks = true
		confB.Chain = mode.chain
		confB.Fuse = mode.fuse
		confB.Threaded = mode.threaded
		mB, th := buildFor(t, confB, insts)
		fB := mB.Run()
		if (fA == nil) != (fB == nil) {
			t.Fatalf("[%s] fault mismatch: stepwise=%v superblock=%v", mode.name, fA, fB)
		}
		if fA != nil && *fA != *fB {
			t.Fatalf("[%s] fault mismatch: stepwise=%+v superblock=%+v", mode.name, *fA, *fB)
		}
		if thA.Regs != th.Regs {
			t.Fatalf("[%s] register mismatch:\nstepwise:   %v\nsuperblock: %v", mode.name, thA.Regs, th.Regs)
		}
		if thA.PC != th.PC {
			t.Fatalf("[%s] PC mismatch: stepwise=%#x superblock=%#x", mode.name, thA.PC, th.PC)
		}
		if thA.Stats.Arch() != th.Stats.Arch() {
			t.Fatalf("[%s] stats mismatch:\nstepwise:   %+v\nsuperblock: %+v", mode.name, thA.Stats, th.Stats)
		}
		if thA.ZF != th.ZF || thA.SF != th.SF || thA.CF != th.CF || thA.OF != th.OF {
			t.Fatalf("[%s] flag mismatch across dispatch modes", mode.name)
		}
		if dA, dB := mA.Mem.Digest(), mB.Mem.Digest(); dA != dB {
			t.Fatalf("[%s] memory digest mismatch: %#x vs %#x", mode.name, dA, dB)
		}
		thB = th
	}
	return thA, thB
}

// encodeLen returns the encoded length of one instruction.
func encodeLen(in asm.Inst) int64 { return int64(len(asm.Encode(nil, in))) }

func TestSuperblockParityLoop(t *testing.T) {
	// Hand-lay a countdown loop with a store and a load in the body.
	pre := []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 100},
		{Op: asm.OpMovRI, Dst: asm.RDI, Imm: 0x100100},
	}
	var loopStart int64 = 0x1000
	for _, in := range pre {
		loopStart += encodeLen(in)
	}
	body := []asm.Inst{
		{Op: asm.OpAddRR, Dst: asm.RAX, Src: asm.RCX},
		{Op: asm.OpStore, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		{Op: asm.OpLoad, Dst: asm.RDX, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8}},
		{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	}
	thA, _ := runParity(t, append(pre, body...))
	if thA.Regs[asm.RAX] != 5050 {
		t.Fatalf("loop computed %d, want 5050", thA.Regs[asm.RAX])
	}
}

func TestSuperblockParityFaults(t *testing.T) {
	cases := []struct {
		name  string
		insts []asm.Inst
		kind  FaultKind
	}{
		{"unmapped-load", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x500000},
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
		}, FaultUnmapped},
		{"store-to-code", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x1000},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		}, FaultPerm},
		{"divide-zero", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 5},
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0},
			{Op: asm.OpDivRR, Dst: asm.RAX, Src: asm.RBX},
		}, FaultDivide},
		{"trap", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 5},
			{Op: asm.OpTrap},
		}, FaultCFI},
		{"nx-jump", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100000},
			{Op: asm.OpJmpR, Src: asm.RBX},
		}, FaultNX},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			thA, _ := runParity(t, c.insts)
			if thA.Fault == nil || thA.Fault.Kind != c.kind {
				t.Fatalf("want fault kind %d, got %v", c.kind, thA.Fault)
			}
		})
	}
}

// TestDivideOverflowFaults: INT64_MIN / -1 (and % -1) overflows the
// quotient; x64 raises #DE, and the interpreter must fault like the
// modeled hardware rather than wrap like a host Go division.
func TestDivideOverflowFaults(t *testing.T) {
	for _, op := range []asm.Op{asm.OpDivRR, asm.OpModRR} {
		thA, _ := runParity(t, []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: -0x8000000000000000},
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: -1},
			{Op: op, Dst: asm.RAX, Src: asm.RBX},
		})
		if thA.Fault == nil || thA.Fault.Kind != FaultDivide {
			t.Fatalf("%v: want divide fault, got %v", op, thA.Fault)
		}
	}
}

// TestRunFuelParity: the instruction budget must cut execution at the
// same instruction in both dispatch modes, even when the boundary lands
// in the middle of a superblock.
func TestRunFuelParity(t *testing.T) {
	loop := []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 1 << 40}, // effectively infinite
	}
	var loopStart int64 = 0x1000
	for _, in := range loop {
		loopStart += encodeLen(in)
	}
	loop = append(loop,
		asm.Inst{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
		asm.Inst{Op: asm.OpAddRI, Dst: asm.RBX, Imm: 3},
		asm.Inst{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		asm.Inst{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	)
	for _, fuel := range []uint64{1, 2, 7, 1023, 1024, 1025, 4097} {
		confA := DefaultConfig()
		confA.Superblocks = false
		confA.Fuse = false
		confA.DefaultFuel = fuel
		mA, thA := buildFor(t, confA, loop)
		fA := mA.Run()
		if fA == nil || fA.Kind != FaultFuel {
			t.Fatalf("fuel=%d: want stepwise fuel fault, got %v", fuel, fA)
		}
		if thA.Stats.Instrs != fuel-1 {
			t.Fatalf("fuel=%d: executed %d instrs, want %d", fuel, thA.Stats.Instrs, fuel-1)
		}
		// The budget boundary must land identically whether blocks return
		// to the dispatcher or chain run-to-run: the bite is capped and
		// the remainder resumes at the interior slot PC in both cases.
		// The loop tail sub/cmp/jcc is a fused idiom, so the fused and
		// threaded modes also exercise de-fusing at every bite position
		// the fuel sweep produces.
		for _, mode := range parityModes {
			confB := confA
			confB.Superblocks = true
			confB.Chain = mode.chain
			confB.Fuse = mode.fuse
			confB.Threaded = mode.threaded
			mB, thB := buildFor(t, confB, loop)
			fB := mB.Run()
			if fB == nil || fB.Kind != FaultFuel {
				t.Fatalf("fuel=%d %s: want fuel fault, got %v", fuel, mode.name, fB)
			}
			if *fA != *fB {
				t.Fatalf("fuel=%d %s: fault mismatch %+v vs %+v", fuel, mode.name, *fA, *fB)
			}
			if thA.Stats.Arch() != thB.Stats.Arch() {
				t.Fatalf("fuel=%d %s: stats mismatch %+v vs %+v", fuel, mode.name, thA.Stats, thB.Stats)
			}
			if thA.PC != thB.PC || thA.Regs != thB.Regs {
				t.Fatalf("fuel=%d %s: state mismatch at cutoff", fuel, mode.name)
			}
		}
	}
}

// TestSuperblockHandlerInvalidation: registering a trusted handler at a PC
// in the middle of already-fused straight-line code must re-split the
// blocks so the handler is dispatched, exactly as per-instruction
// stepping would.
func TestSuperblockHandlerInvalidation(t *testing.T) {
	insts := []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 1},
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 2},
		{Op: asm.OpMovRI, Dst: asm.RDX, Imm: 3},
	}
	conf := DefaultConfig()
	m, th := buildFor(t, conf, insts)
	// First run fuses the whole body into one superblock.
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RDX] != 3 {
		t.Fatalf("rdx=%d, want 3", th.Regs[asm.RDX])
	}

	// Install a handler at the third instruction's PC: stepping mode would
	// dispatch it instead of executing the mov.
	hpc := uint64(0x1000) + uint64(2*encodeLen(insts[0]))
	exitPC := uint64(0x1000)
	for _, in := range insts {
		exitPC += uint64(encodeLen(in))
	}
	called := false
	m.Handlers[hpc] = func(m *Machine, t *Thread) *Fault {
		called = true
		t.Regs[asm.RDX] = 99
		t.PC = exitPC // resume at the trailing exit
		return nil
	}

	th.Halted = false
	th.PC = 0x1000
	th.Regs = [asm.NumRegs]uint64{}
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if !called {
		t.Fatal("handler inside a fused block was not dispatched after re-registration")
	}
	if th.Regs[asm.RDX] != 99 {
		t.Fatalf("rdx=%d, want 99 (handler result)", th.Regs[asm.RDX])
	}
}

// TestSuperblockCodePatchInvalidation: patching code bytes must flush
// superblocks along with the decode traces.
func TestSuperblockCodePatchInvalidation(t *testing.T) {
	insts := []asm.Inst{{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 1}}
	m, th := buildFor(t, DefaultConfig(), insts)
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RAX] != 1 {
		t.Fatalf("rax=%d, want 1", th.Regs[asm.RAX])
	}

	var patched []byte
	patched = asm.Encode(patched, asm.Inst{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 2})
	patched = asm.Encode(patched, asm.Inst{Op: asm.OpExit})
	if f := m.Mem.WriteBytesUnchecked(0x1000, patched); f != nil {
		t.Fatal(f)
	}
	th.Halted = false
	th.PC = 0x1000
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RAX] != 2 {
		t.Fatalf("rax=%d after code patch, want 2 (stale superblock executed)", th.Regs[asm.RAX])
	}
}

// TestSuperblockQuantumInterleaving: with multiple threads, the
// round-robin interleaving (quantum granularity) must not change with
// dispatch mode — both threads' stats and the shared memory must agree.
func TestSuperblockQuantumInterleaving(t *testing.T) {
	// Two threads increment and read a shared counter; the final counter
	// and each thread's observed values depend on the interleaving.
	mk := func(superblocks bool) (*Machine, *Thread, *Thread) {
		conf := DefaultConfig()
		conf.Superblocks = superblocks
		m := New(conf)
		var code []byte
		loopStart := int64(0x1000) + encodeLen(asm.Inst{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 3000}) +
			encodeLen(asm.Inst{Op: asm.OpMovRI, Dst: asm.RDI, Imm: 0x100100})
		for _, in := range []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 3000},
			{Op: asm.OpMovRI, Dst: asm.RDI, Imm: 0x100100},
			// loop:
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8}},
			{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
			{Op: asm.OpAddRR, Dst: asm.RSI, Src: asm.RAX}, // interleaving-sensitive
			{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
			{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
			{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
			{Op: asm.OpExit},
		} {
			code = asm.Encode(code, in)
		}
		if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
			t.Fatal(err)
		}
		if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
			t.Fatal(f)
		}
		t0 := m.NewThread(0x1000, 0x100000+0x4000, 0x100000, 0x100000+0x8000)
		t1 := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
		return m, t0, t1
	}
	mA, a0, a1 := mk(false)
	mB, b0, b1 := mk(true)
	if f := mA.Run(); f != nil {
		t.Fatal(f)
	}
	if f := mB.Run(); f != nil {
		t.Fatal(f)
	}
	if a0.Regs[asm.RSI] != b0.Regs[asm.RSI] || a1.Regs[asm.RSI] != b1.Regs[asm.RSI] {
		t.Fatalf("interleaving-sensitive sums differ: (%d,%d) vs (%d,%d)",
			a0.Regs[asm.RSI], a1.Regs[asm.RSI], b0.Regs[asm.RSI], b1.Regs[asm.RSI])
	}
	if a0.Stats.Arch() != b0.Stats.Arch() || a1.Stats.Arch() != b1.Stats.Arch() {
		t.Fatal("per-thread stats differ across dispatch modes")
	}
	if mA.Mem.Digest() != mB.Mem.Digest() {
		t.Fatal("shared memory differs across dispatch modes")
	}
	// The exact counter value depends on lost updates at quantum
	// boundaries — which is precisely the scheduler-sensitive behavior the
	// two modes must agree on (the digest check above covers the value);
	// it must at least reflect one thread's worth of increments.
	v, f := mA.Mem.Read(0x100100, 8)
	if f != nil || v < 3000 {
		t.Fatalf("shared counter = %d (%v), want >= 3000", v, f)
	}
}

// buildRawFor maps a code region of exactly size bytes at 0x1000 (plus
// the standard data region), writes code into it, and returns a thread
// at 0x1000. Unlike buildFor it appends no trailing exit, so tests can
// lay out code that runs into the region edge or into garbage bytes.
func buildRawFor(t *testing.T, conf Config, code []byte, size uint64) (*Machine, *Thread) {
	t.Helper()
	m := New(conf)
	if uint64(len(code)) > size {
		t.Fatalf("code (%d bytes) exceeds region size %d", len(code), size)
	}
	if _, err := m.Mem.Map("code", 0x1000, size, PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
		t.Fatal(f)
	}
	th := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
	return m, th
}

// TestChainStraightLineOffRegion pins the rule that a block whose
// straight-line flow runs off the end of its region must never chain: a
// chained successor would bypass the fetch fault stepping mode delivers
// at the first PC past the region. The loop's jcc fall-through edge leads
// into exactly such a block, so a buggy chain would carry the hot loop
// straight past the region edge.
func TestChainStraightLineOffRegion(t *testing.T) {
	var code []byte
	code = asm.Encode(code, asm.Inst{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 40})
	loopStart := int64(0x1000 + len(code))
	for _, in := range []asm.Inst{
		{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
		{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	} {
		code = asm.Encode(code, in)
	}
	// Fall-through: straight-line code that ends exactly at the region
	// edge, with no terminator.
	offEdge := uint64(len(code))
	code = asm.Encode(code, asm.Inst{Op: asm.OpAddRI, Dst: asm.RBX, Imm: 7})
	size := uint64(len(code)) // region ends exactly after the last instruction

	confA := DefaultConfig()
	confA.Superblocks = false
	mA, thA := buildRawFor(t, confA, code, size)
	fA := mA.Run()
	if fA == nil || fA.Kind != FaultUnmapped {
		t.Fatalf("stepwise: want unmapped fetch fault past the region, got %v", fA)
	}
	if want := uint64(0x1000) + size; fA.PC != want {
		t.Fatalf("stepwise fault PC = %#x, want %#x", fA.PC, want)
	}

	for _, chain := range []bool{false, true} {
		confB := DefaultConfig()
		confB.Chain = chain
		mB, thB := buildRawFor(t, confB, code, size)
		fB := mB.Run()
		if fB == nil || *fA != *fB || fA.Error() != fB.Error() {
			t.Fatalf("chain=%v: fault mismatch: stepwise=%+v superblock=%v", chain, *fA, fB)
		}
		if thA.Regs != thB.Regs || thA.Stats.Arch() != thB.Stats.Arch() || thA.PC != thB.PC {
			t.Fatalf("chain=%v: state mismatch at off-region fault", chain)
		}
		if chain {
			// White-box: the final block must have been built as unchainable
			// (no terminator, so no edge to follow past the missing fetch).
			tr := mB.traces[0]
			run := tr.runs[offEdge]
			if run == nil {
				t.Fatalf("no run built at the fall-through block (off %#x)", offEdge)
			}
			if run.term != asm.OpInvalid {
				t.Fatalf("off-region block has terminator %v, want OpInvalid", run.term)
			}
			if run.next != nil || run.taken != nil || run.fall != nil {
				t.Fatal("off-region block cached a chain link; it must never chain")
			}
		}
	}
}

// TestChainedDecodeFaultTarget: a direct jmp whose target does not
// decode. Chain resolution must refuse the link and let the dispatcher
// deliver the decode fault with the same kind, address, PC, message and
// charging as stepping mode.
func TestChainedDecodeFaultTarget(t *testing.T) {
	var code []byte
	code = asm.Encode(code, asm.Inst{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 5})
	jmpLen := encodeLen(asm.Inst{Op: asm.OpJmp, Imm: 0})
	target := int64(0x1000+len(code)) + jmpLen
	code = asm.Encode(code, asm.Inst{Op: asm.OpJmp, Imm: target})
	code = append(code, 0xFF) // undecodable opcode at the jump target

	confA := DefaultConfig()
	confA.Superblocks = false
	mA, thA := buildRawFor(t, confA, code, 0x1000)
	fA := mA.Run()
	if fA == nil || fA.Kind != FaultDecode {
		t.Fatalf("stepwise: want decode fault at jmp target, got %v", fA)
	}
	if fA.Addr != uint64(target) || fA.PC != uint64(target) {
		t.Fatalf("stepwise fault addr/PC = %#x/%#x, want %#x", fA.Addr, fA.PC, target)
	}
	for _, chain := range []bool{false, true} {
		confB := DefaultConfig()
		confB.Chain = chain
		mB, thB := buildRawFor(t, confB, code, 0x1000)
		fB := mB.Run()
		if fB == nil || *fA != *fB || fA.Error() != fB.Error() {
			t.Fatalf("chain=%v: fault mismatch: stepwise=%+v superblock=%v", chain, *fA, fB)
		}
		if thA.Regs != thB.Regs || thA.Stats.Arch() != thB.Stats.Arch() {
			t.Fatalf("chain=%v: state mismatch at decode fault", chain)
		}
	}
}

// chainLoopWithHandler builds the shared shape of the mid-run
// invalidation tests: a countdown loop that calls a trusted handler once
// per iteration. It returns the machine, thread, and the PCs of the
// add instruction and its successor.
func chainLoopWithHandler(t *testing.T, conf Config, iters int64,
	handler func(addPC, skipPC uint64) Handler) (*Machine, *Thread) {
	t.Helper()
	m := New(conf)
	const hpc = 0x9000
	var code []byte
	code = asm.Encode(code, asm.Inst{Op: asm.OpMovRI, Dst: asm.RCX, Imm: iters})
	loopStart := int64(0x1000 + len(code))
	code = asm.Encode(code, asm.Inst{Op: asm.OpCall, Imm: hpc})
	addPC := uint64(0x1000 + len(code))
	code = asm.Encode(code, asm.Inst{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1})
	skipPC := uint64(0x1000 + len(code))
	for _, in := range []asm.Inst{
		{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
		{Op: asm.OpExit},
	} {
		code = asm.Encode(code, in)
	}
	if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
		t.Fatal(f)
	}
	m.Handlers[hpc] = handler(addPC, skipPC)
	th := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
	return m, th
}

// TestChainedCodePatchInvalidation: a trusted handler patches the body of
// a loop that is already executing through cached chain links. The patch
// flushes the traces (runs and links included), so the remaining
// iterations must execute the new bytes — identically in all three
// dispatch modes.
func TestChainedCodePatchInvalidation(t *testing.T) {
	mk := func(superblocks, chain bool) (*Machine, *Thread) {
		conf := DefaultConfig()
		conf.Superblocks = superblocks
		conf.Chain = chain
		calls := 0
		return chainLoopWithHandler(t, conf, 6,
			func(addPC, skipPC uint64) Handler {
				return func(m *Machine, t *Thread) *Fault {
					ret, f := t.Pop()
					if f != nil {
						return f
					}
					t.PC = ret
					calls++
					if calls == 3 {
						// Patch "add rax, 1" to "add rax, 100" mid-loop.
						patch := asm.Encode(nil, asm.Inst{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 100})
						if pf := m.Mem.WriteBytesUnchecked(addPC, patch); pf != nil {
							return pf
						}
					}
					return nil
				}
			})
	}
	mA, thA := mk(false, false)
	if f := mA.Run(); f != nil {
		t.Fatal(f)
	}
	// Iterations 1-2 add 1; the patch lands during iteration 3's call, so
	// iterations 3-6 add 100.
	if want := uint64(2 + 4*100); thA.Regs[asm.RAX] != want {
		t.Fatalf("stepwise rax = %d, want %d", thA.Regs[asm.RAX], want)
	}
	for _, chain := range []bool{false, true} {
		mB, thB := mk(true, chain)
		if f := mB.Run(); f != nil {
			t.Fatal(f)
		}
		if thA.Regs != thB.Regs || thA.Stats.Arch() != thB.Stats.Arch() || thA.PC != thB.PC {
			t.Fatalf("chain=%v: state mismatch after mid-loop code patch:\nstepwise:   %+v\nsuperblock: %+v",
				chain, thA.Stats, thB.Stats)
		}
		if dA, dB := mA.Mem.Digest(), mB.Mem.Digest(); dA != dB {
			t.Fatalf("chain=%v: memory digest mismatch after patch", chain)
		}
	}
}

// TestChainedHandlerRegistrationMidRun: a trusted handler registers a
// second handler at a PC inside a loop that is already chained. The
// handler index rebuild (hoisted to run after handler dispatches) moves
// [hndLo, hndHi] across the loop and flushes every run and chain link,
// so the new handler must be dispatched instead of the fused add — in
// all three dispatch modes identically.
func TestChainedHandlerRegistrationMidRun(t *testing.T) {
	mk := func(superblocks, chain bool) (*Machine, *Thread) {
		conf := DefaultConfig()
		conf.Superblocks = superblocks
		conf.Chain = chain
		calls := 0
		return chainLoopWithHandler(t, conf, 8,
			func(addPC, skipPC uint64) Handler {
				return func(m *Machine, t *Thread) *Fault {
					ret, f := t.Pop()
					if f != nil {
						return f
					}
					t.PC = ret
					calls++
					if calls == 4 {
						m.Handlers[addPC] = func(m *Machine, t *Thread) *Fault {
							t.Regs[asm.RDX] += 50
							t.PC = skipPC
							return nil
						}
					}
					return nil
				}
			})
	}
	mA, thA := mk(false, false)
	if f := mA.Run(); f != nil {
		t.Fatal(f)
	}
	// Iterations 1-3 execute the add; from iteration 4 on the new handler
	// shadows it.
	if thA.Regs[asm.RAX] != 3 || thA.Regs[asm.RDX] != 5*50 {
		t.Fatalf("stepwise rax/rdx = %d/%d, want 3/250", thA.Regs[asm.RAX], thA.Regs[asm.RDX])
	}
	for _, chain := range []bool{false, true} {
		mB, thB := mk(true, chain)
		if f := mB.Run(); f != nil {
			t.Fatal(f)
		}
		if thA.Regs != thB.Regs || thA.Stats.Arch() != thB.Stats.Arch() || thA.PC != thB.PC {
			t.Fatalf("chain=%v: state mismatch after mid-run handler registration:\nstepwise:   %+v\nsuperblock: %+v",
				chain, thA.Stats, thB.Stats)
		}
	}
}

// TestChainLinksResolvedAndFlushed is the white-box pin on the chain
// cache itself: a hot self-loop must end up with its taken edge chained
// to its own run and its fall edge chained to the exit block, and a
// handler-range change must drop every run, block count and link.
func TestChainLinksResolvedAndFlushed(t *testing.T) {
	pre := []asm.Inst{{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 500}}
	loopStart := int64(0x1000) + encodeLen(pre[0])
	insts := append(pre,
		asm.Inst{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
		asm.Inst{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		asm.Inst{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	)
	m, th := buildFor(t, DefaultConfig(), insts)
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RAX] != 500 {
		t.Fatalf("loop computed %d, want 500", th.Regs[asm.RAX])
	}
	tr := m.traces[0]
	off := uint64(loopStart) - tr.lo
	run := tr.runs[off]
	if run == nil || run.term != asm.OpJcc {
		t.Fatalf("loop block not built as a jcc run: %+v", run)
	}
	if tr.blocks[off] != uint16(run.n) {
		t.Fatalf("blocks[] count %d disagrees with run length %d", tr.blocks[off], run.n)
	}
	if run.taken != run {
		t.Fatalf("self-loop taken edge not chained to its own run (got %p, want %p)", run.taken, run)
	}
	if run.fall == nil || run.fall.term != asm.OpExit {
		t.Fatalf("fall edge not chained to the exit block: %+v", run.fall)
	}

	// A handler-range change must flush runs, counts and links together.
	m.Handlers[0x9000] = func(m *Machine, t *Thread) *Fault { return nil }
	m.RefreshHandlers()
	for i := range tr.runs {
		if tr.runs[i] != nil || tr.blocks[i] != 0 {
			t.Fatalf("run/block metadata at off %#x survived a handler-range flush", i)
		}
	}
}

// TestStepThenRunRebuildsFullBlocks: a Step at a PC builds a one-slot
// run; later block dispatch at the same PC must rebuild it at full
// length (and chain it) rather than inheriting one-instruction
// dispatches forever.
func TestStepThenRunRebuildsFullBlocks(t *testing.T) {
	pre := []asm.Inst{{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 300}}
	loopStart := int64(0x1000) + encodeLen(pre[0])
	insts := append(pre,
		asm.Inst{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
		asm.Inst{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		asm.Inst{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	)
	m, th := buildFor(t, DefaultConfig(), insts)

	// Single-step into the loop body: builds (and caches) short runs.
	for i := 0; i < 3; i++ {
		if f := th.Step(); f != nil {
			t.Fatal(f)
		}
	}
	tr := m.traces[0]
	off := uint64(loopStart) - tr.lo
	if run := tr.runs[off]; run == nil || !run.short || run.n != 1 {
		t.Fatalf("expected a cached one-slot short run at the loop head after Step, got %+v", run)
	}

	// Block dispatch must replace the short run with the full block and
	// chain it, then finish the loop with results identical to stepping.
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	run := tr.runs[off]
	if run == nil || run.short || run.n < 4 || run.term != asm.OpJcc {
		t.Fatalf("block dispatch did not rebuild the short run at full length: %+v", run)
	}
	if run.taken != run {
		t.Fatal("rebuilt loop run was not chained to itself")
	}
	if th.Regs[asm.RAX] != 300 {
		t.Fatalf("loop computed %d, want 300", th.Regs[asm.RAX])
	}
}
