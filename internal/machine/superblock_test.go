package machine

import (
	"testing"

	"confllvm/internal/asm"
)

// buildFor encodes insts into a fresh machine with the standard test
// layout, under the given config.
func buildFor(t *testing.T, conf Config, insts []asm.Inst) (*Machine, *Thread) {
	t.Helper()
	m := New(conf)
	var code []byte
	for _, in := range insts {
		code = asm.Encode(code, in)
	}
	code = asm.Encode(code, asm.Inst{Op: asm.OpExit})
	if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
		t.Fatal(f)
	}
	th := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
	return m, th
}

// runParity runs the same instruction stream under both dispatch modes
// and requires identical thread state, stats and memory.
func runParity(t *testing.T, insts []asm.Inst) (*Thread, *Thread) {
	t.Helper()
	confA := DefaultConfig()
	confA.Superblocks = false
	confB := DefaultConfig()
	confB.Superblocks = true

	mA, thA := buildFor(t, confA, insts)
	mB, thB := buildFor(t, confB, insts)
	fA := mA.Run()
	fB := mB.Run()
	if (fA == nil) != (fB == nil) {
		t.Fatalf("fault mismatch: stepwise=%v superblock=%v", fA, fB)
	}
	if fA != nil && *fA != *fB {
		t.Fatalf("fault mismatch: stepwise=%+v superblock=%+v", *fA, *fB)
	}
	if thA.Regs != thB.Regs {
		t.Fatalf("register mismatch:\nstepwise:   %v\nsuperblock: %v", thA.Regs, thB.Regs)
	}
	if thA.PC != thB.PC {
		t.Fatalf("PC mismatch: stepwise=%#x superblock=%#x", thA.PC, thB.PC)
	}
	if thA.Stats != thB.Stats {
		t.Fatalf("stats mismatch:\nstepwise:   %+v\nsuperblock: %+v", thA.Stats, thB.Stats)
	}
	if thA.ZF != thB.ZF || thA.SF != thB.SF || thA.CF != thB.CF || thA.OF != thB.OF {
		t.Fatal("flag mismatch across dispatch modes")
	}
	if dA, dB := mA.Mem.Digest(), mB.Mem.Digest(); dA != dB {
		t.Fatalf("memory digest mismatch: %#x vs %#x", dA, dB)
	}
	return thA, thB
}

// encodeLen returns the encoded length of one instruction.
func encodeLen(in asm.Inst) int64 { return int64(len(asm.Encode(nil, in))) }

func TestSuperblockParityLoop(t *testing.T) {
	// Hand-lay a countdown loop with a store and a load in the body.
	pre := []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 100},
		{Op: asm.OpMovRI, Dst: asm.RDI, Imm: 0x100100},
	}
	var loopStart int64 = 0x1000
	for _, in := range pre {
		loopStart += encodeLen(in)
	}
	body := []asm.Inst{
		{Op: asm.OpAddRR, Dst: asm.RAX, Src: asm.RCX},
		{Op: asm.OpStore, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		{Op: asm.OpLoad, Dst: asm.RDX, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8}},
		{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	}
	thA, _ := runParity(t, append(pre, body...))
	if thA.Regs[asm.RAX] != 5050 {
		t.Fatalf("loop computed %d, want 5050", thA.Regs[asm.RAX])
	}
}

func TestSuperblockParityFaults(t *testing.T) {
	cases := []struct {
		name  string
		insts []asm.Inst
		kind  FaultKind
	}{
		{"unmapped-load", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x500000},
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}},
		}, FaultUnmapped},
		{"store-to-code", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x1000},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RBX, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
		}, FaultPerm},
		{"divide-zero", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 5},
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0},
			{Op: asm.OpDivRR, Dst: asm.RAX, Src: asm.RBX},
		}, FaultDivide},
		{"trap", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 5},
			{Op: asm.OpTrap},
		}, FaultCFI},
		{"nx-jump", []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 0x100000},
			{Op: asm.OpJmpR, Src: asm.RBX},
		}, FaultNX},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			thA, _ := runParity(t, c.insts)
			if thA.Fault == nil || thA.Fault.Kind != c.kind {
				t.Fatalf("want fault kind %d, got %v", c.kind, thA.Fault)
			}
		})
	}
}

// TestDivideOverflowFaults: INT64_MIN / -1 (and % -1) overflows the
// quotient; x64 raises #DE, and the interpreter must fault like the
// modeled hardware rather than wrap like a host Go division.
func TestDivideOverflowFaults(t *testing.T) {
	for _, op := range []asm.Op{asm.OpDivRR, asm.OpModRR} {
		thA, _ := runParity(t, []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RAX, Imm: -0x8000000000000000},
			{Op: asm.OpMovRI, Dst: asm.RBX, Imm: -1},
			{Op: op, Dst: asm.RAX, Src: asm.RBX},
		})
		if thA.Fault == nil || thA.Fault.Kind != FaultDivide {
			t.Fatalf("%v: want divide fault, got %v", op, thA.Fault)
		}
	}
}

// TestRunFuelParity: the instruction budget must cut execution at the
// same instruction in both dispatch modes, even when the boundary lands
// in the middle of a superblock.
func TestRunFuelParity(t *testing.T) {
	loop := []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 1 << 40}, // effectively infinite
	}
	var loopStart int64 = 0x1000
	for _, in := range loop {
		loopStart += encodeLen(in)
	}
	loop = append(loop,
		asm.Inst{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
		asm.Inst{Op: asm.OpAddRI, Dst: asm.RBX, Imm: 3},
		asm.Inst{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		asm.Inst{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
		asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
	)
	for _, fuel := range []uint64{1, 2, 7, 1023, 1024, 1025, 4097} {
		confA := DefaultConfig()
		confA.Superblocks = false
		confA.DefaultFuel = fuel
		confB := confA
		confB.Superblocks = true

		mA, thA := buildFor(t, confA, loop)
		mB, thB := buildFor(t, confB, loop)
		fA, fB := mA.Run(), mB.Run()
		if fA == nil || fB == nil || fA.Kind != FaultFuel || fB.Kind != FaultFuel {
			t.Fatalf("fuel=%d: want fuel faults, got %v / %v", fuel, fA, fB)
		}
		if *fA != *fB {
			t.Fatalf("fuel=%d: fault mismatch %+v vs %+v", fuel, *fA, *fB)
		}
		if thA.Stats != thB.Stats {
			t.Fatalf("fuel=%d: stats mismatch %+v vs %+v", fuel, thA.Stats, thB.Stats)
		}
		if thA.Stats.Instrs != fuel-1 {
			t.Fatalf("fuel=%d: executed %d instrs, want %d", fuel, thA.Stats.Instrs, fuel-1)
		}
		if thA.PC != thB.PC || thA.Regs != thB.Regs {
			t.Fatalf("fuel=%d: state mismatch at cutoff", fuel)
		}
	}
}

// TestSuperblockHandlerInvalidation: registering a trusted handler at a PC
// in the middle of already-fused straight-line code must re-split the
// blocks so the handler is dispatched, exactly as per-instruction
// stepping would.
func TestSuperblockHandlerInvalidation(t *testing.T) {
	insts := []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 1},
		{Op: asm.OpMovRI, Dst: asm.RBX, Imm: 2},
		{Op: asm.OpMovRI, Dst: asm.RDX, Imm: 3},
	}
	conf := DefaultConfig()
	m, th := buildFor(t, conf, insts)
	// First run fuses the whole body into one superblock.
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RDX] != 3 {
		t.Fatalf("rdx=%d, want 3", th.Regs[asm.RDX])
	}

	// Install a handler at the third instruction's PC: stepping mode would
	// dispatch it instead of executing the mov.
	hpc := uint64(0x1000) + uint64(2*encodeLen(insts[0]))
	exitPC := uint64(0x1000)
	for _, in := range insts {
		exitPC += uint64(encodeLen(in))
	}
	called := false
	m.Handlers[hpc] = func(m *Machine, t *Thread) *Fault {
		called = true
		t.Regs[asm.RDX] = 99
		t.PC = exitPC // resume at the trailing exit
		return nil
	}

	th.Halted = false
	th.PC = 0x1000
	th.Regs = [asm.NumRegs]uint64{}
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if !called {
		t.Fatal("handler inside a fused block was not dispatched after re-registration")
	}
	if th.Regs[asm.RDX] != 99 {
		t.Fatalf("rdx=%d, want 99 (handler result)", th.Regs[asm.RDX])
	}
}

// TestSuperblockCodePatchInvalidation: patching code bytes must flush
// superblocks along with the decode traces.
func TestSuperblockCodePatchInvalidation(t *testing.T) {
	insts := []asm.Inst{{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 1}}
	m, th := buildFor(t, DefaultConfig(), insts)
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RAX] != 1 {
		t.Fatalf("rax=%d, want 1", th.Regs[asm.RAX])
	}

	var patched []byte
	patched = asm.Encode(patched, asm.Inst{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 2})
	patched = asm.Encode(patched, asm.Inst{Op: asm.OpExit})
	if f := m.Mem.WriteBytesUnchecked(0x1000, patched); f != nil {
		t.Fatal(f)
	}
	th.Halted = false
	th.PC = 0x1000
	if f := m.Run(); f != nil {
		t.Fatal(f)
	}
	if th.Regs[asm.RAX] != 2 {
		t.Fatalf("rax=%d after code patch, want 2 (stale superblock executed)", th.Regs[asm.RAX])
	}
}

// TestSuperblockQuantumInterleaving: with multiple threads, the
// round-robin interleaving (quantum granularity) must not change with
// dispatch mode — both threads' stats and the shared memory must agree.
func TestSuperblockQuantumInterleaving(t *testing.T) {
	// Two threads increment and read a shared counter; the final counter
	// and each thread's observed values depend on the interleaving.
	mk := func(superblocks bool) (*Machine, *Thread, *Thread) {
		conf := DefaultConfig()
		conf.Superblocks = superblocks
		m := New(conf)
		var code []byte
		loopStart := int64(0x1000) + encodeLen(asm.Inst{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 3000}) +
			encodeLen(asm.Inst{Op: asm.OpMovRI, Dst: asm.RDI, Imm: 0x100100})
		for _, in := range []asm.Inst{
			{Op: asm.OpMovRI, Dst: asm.RCX, Imm: 3000},
			{Op: asm.OpMovRI, Dst: asm.RDI, Imm: 0x100100},
			// loop:
			{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8}},
			{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
			{Op: asm.OpStore, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8}, Src: asm.RAX},
			{Op: asm.OpAddRR, Dst: asm.RSI, Src: asm.RAX}, // interleaving-sensitive
			{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
			{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
			{Op: asm.OpJcc, Cond: asm.CondNE, Imm: loopStart},
			{Op: asm.OpExit},
		} {
			code = asm.Encode(code, in)
		}
		if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
			t.Fatal(err)
		}
		if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
			t.Fatal(f)
		}
		t0 := m.NewThread(0x1000, 0x100000+0x4000, 0x100000, 0x100000+0x8000)
		t1 := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
		return m, t0, t1
	}
	mA, a0, a1 := mk(false)
	mB, b0, b1 := mk(true)
	if f := mA.Run(); f != nil {
		t.Fatal(f)
	}
	if f := mB.Run(); f != nil {
		t.Fatal(f)
	}
	if a0.Regs[asm.RSI] != b0.Regs[asm.RSI] || a1.Regs[asm.RSI] != b1.Regs[asm.RSI] {
		t.Fatalf("interleaving-sensitive sums differ: (%d,%d) vs (%d,%d)",
			a0.Regs[asm.RSI], a1.Regs[asm.RSI], b0.Regs[asm.RSI], b1.Regs[asm.RSI])
	}
	if a0.Stats != b0.Stats || a1.Stats != b1.Stats {
		t.Fatal("per-thread stats differ across dispatch modes")
	}
	if mA.Mem.Digest() != mB.Mem.Digest() {
		t.Fatal("shared memory differs across dispatch modes")
	}
	// The exact counter value depends on lost updates at quantum
	// boundaries — which is precisely the scheduler-sensitive behavior the
	// two modes must agree on (the digest check above covers the value);
	// it must at least reflect one thread's worth of increments.
	v, f := mA.Mem.Read(0x100100, 8)
	if f != nil || v < 3000 {
		t.Fatalf("shared counter = %d (%v), want >= 3000", v, f)
	}
}
