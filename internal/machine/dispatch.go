package machine

import (
	"fmt"
	"math"

	"confllvm/internal/asm"
)

// Threaded dispatch (Conf.Threaded): instead of re-deciding `switch
// ip.Op` for every slot on every execution, threadRun resolves each
// slot's handler once at flatten time into run.ops — an array of
// opFuncs parallel to the slot program (the fused program when fusion
// produced one, the raw constituent list otherwise) — and execThreaded
// walks it with one indirect call per slot.
//
// Every handler replicates its switch case exactly, under one uniform
// contract so the shared post-loop charging in execRun needs no mode
// checks:
//
//   - k is the constituent index of the slot's first instruction on
//     entry; the handler returns k advanced past every constituent it
//     executed, including a faulting one — so run.cum[k-1] charges the
//     clean prefix and run.pcs[k-1] is the faulting PC, exactly as the
//     switch walk leaves k.
//   - The second result is the next PC. Only terminator slots produce a
//     value execRun consults (after a fully executed run whose term
//     redirects); interior slots return 0, harmlessly overwritten.
//   - The handler returns a non-nil fault exactly when the switch case
//     would have set one.
//
// Budget bites never reach the ops array: execRun only takes the
// threaded path when the whole block fits the remaining budget, so a
// truncated prefix always runs through the constituent switch walk and
// threading composes with de-fusion for free.
type opFunc func(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault)

// opTable maps every opcode — real and synthetic fused — to its
// handler. Indexing by the full uint8 space keeps the resolve in
// threadRun a plain array load; unimplemented opcodes get the same
// decode fault the switch's default case raises.
var opTable [256]opFunc

func init() {
	for i := range opTable {
		opTable[i] = hBadOp
	}
	set := func(op asm.Op, h opFunc) { opTable[op] = h }
	set(asm.OpNop, hNop)
	set(asm.OpMovRR, hMovRR)
	set(asm.OpMovRI, hMovRI)
	set(asm.OpLea, hLea)
	set(asm.OpLoad, hLoad)
	set(asm.OpStore, hStore)
	set(asm.OpPush, hPush)
	set(asm.OpPop, hPop)
	set(asm.OpAddRR, hAddRR)
	set(asm.OpAddRI, hAddRI)
	set(asm.OpSubRR, hSubRR)
	set(asm.OpSubRI, hSubRI)
	set(asm.OpMulRR, hMulRR)
	set(asm.OpMulRI, hMulRI)
	set(asm.OpDivRR, hDivRR)
	set(asm.OpModRR, hModRR)
	set(asm.OpAndRR, hAndRR)
	set(asm.OpAndRI, hAndRI)
	set(asm.OpOrRR, hOrRR)
	set(asm.OpOrRI, hOrRI)
	set(asm.OpXorRR, hXorRR)
	set(asm.OpXorRI, hXorRI)
	set(asm.OpShlRR, hShlRR)
	set(asm.OpShlRI, hShlRI)
	set(asm.OpShrRR, hShrRR)
	set(asm.OpShrRI, hShrRI)
	set(asm.OpSarRR, hSarRR)
	set(asm.OpSarRI, hSarRI)
	set(asm.OpNeg, hNeg)
	set(asm.OpNot, hNot)
	set(asm.OpCmpRR, hCmpRR)
	set(asm.OpCmpRI, hCmpRI)
	set(asm.OpCmpMR, hCmpMR)
	set(asm.OpTestRR, hTestRR)
	set(asm.OpTestRI, hTestRI)
	set(asm.OpSetCC, hSetCC)
	set(asm.OpJmp, hJmp)
	set(asm.OpJcc, hJcc)
	set(asm.OpJmpR, hJmpR)
	set(asm.OpCall, hCall)
	set(asm.OpICall, hICall)
	set(asm.OpRet, hRet)
	set(asm.OpTrap, hTrap)
	set(asm.OpExit, hExit)
	set(asm.OpBndCLMem, hBndCheck)
	set(asm.OpBndCUMem, hBndCheck)
	set(asm.OpBndCLReg, hBndCheck)
	set(asm.OpBndCUReg, hBndCheck)
	set(asm.OpChkSP, hChkSP)
	set(asm.OpFLoad, hFLoad)
	set(asm.OpFStore, hFStore)
	set(asm.OpFMovRR, hFMovRR)
	set(asm.OpFMovI, hFMovI)
	set(asm.OpFAdd, hFAdd)
	set(asm.OpFSub, hFSub)
	set(asm.OpFMul, hFMul)
	set(asm.OpFDiv, hFDiv)
	set(asm.OpFMax, hFMax)
	set(asm.OpFCmp, hFCmp)
	set(asm.OpCvtIF, hCvtIF)
	set(asm.OpCvtFI, hCvtFI)
	set(asm.OpMovQIF, hMovQIF)
	set(asm.OpMovQFI, hMovQFI)
	set(asm.OpWrFS, hWrFS)
	set(asm.OpWrGS, hWrGS)
	set(asm.OpSyscall, hSyscall)
	set(opFuseAluCmpJcc, hFuseAluCmpJcc)
	set(opFuseCmpJcc, hFuseCmpJcc)
	set(opFuseLoadOpStore, hFuseLoadOpStore)
	set(opFuseChkLoad, hFuseChk)
	set(opFuseChkStore, hFuseChk)
	set(opFuseAluPack, hFuseAluPack)
}

// threadRun resolves the run's slot program into its handler array.
// Called once at flatten time (buildBlock), after any fusion pass, so
// execution never touches the table.
func threadRun(run *blockRun) {
	xs := run.insts
	if run.xinsts != nil {
		xs = run.xinsts
	}
	ops := make([]opFunc, len(xs))
	for i := range xs {
		ops[i] = opTable[xs[i].Op]
	}
	run.ops = ops
}

// execThreaded walks the run's full slot program through the handler
// array. Only called when the whole block fits the budget (execRun
// guards), so the slot program and ops array always align end to end.
// Returns the constituent count, the terminator's next PC and the
// fault, positioned under the same contract as the switch walk.
func (t *Thread) execThreaded(run *blockRun) (int, uint64, *Fault) {
	xs := run.insts
	if run.xinsts != nil {
		xs = run.xinsts
	}
	ops := run.ops
	k := 0
	var nextPC uint64
	var fault *Fault
	for j := 0; j < len(ops); j++ {
		k, nextPC, fault = ops[j](t, &xs[j], run, k)
		if fault != nil {
			break
		}
	}
	return k, nextPC, fault
}

func hBadOp(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, 0, &Fault{Kind: FaultDecode, Msg: "unimplemented opcode " + ip.Op.String()}
}

func hNop(_ *Thread, _ *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, 0, nil
}

func hMovRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = t.Regs[ip.Src]
	return k + 1, 0, nil
}

func hMovRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = uint64(ip.Imm)
	return k + 1, 0, nil
}

func hLea(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = t.ea(&ip.M, false)
	return k + 1, 0, nil
}

func hLoad(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, 0, t.execLoad(ip)
}

func hStore(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, 0, t.execStore(ip)
}

func hPush(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	if f := t.Push(t.Regs[ip.Src]); f != nil {
		return k + 1, 0, f
	}
	t.Stats.Stores++
	t.Stats.Cycles += t.memCost(t.Regs[asm.RSP])
	return k + 1, 0, nil
}

func hPop(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	v, f := t.Pop()
	if f != nil {
		return k + 1, 0, f
	}
	t.Regs[ip.Dst] = v
	t.Stats.Loads++
	t.Stats.Cycles += t.memCost(t.Regs[asm.RSP] - 8)
	return k + 1, 0, nil
}

func hAddRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] += t.Regs[ip.Src]
	return k + 1, 0, nil
}

func hAddRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] += uint64(ip.Imm)
	return k + 1, 0, nil
}

func hSubRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] -= t.Regs[ip.Src]
	return k + 1, 0, nil
}

func hSubRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] -= uint64(ip.Imm)
	return k + 1, 0, nil
}

func hMulRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = uint64(int64(t.Regs[ip.Dst]) * int64(t.Regs[ip.Src]))
	return k + 1, 0, nil
}

func hMulRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = uint64(int64(t.Regs[ip.Dst]) * ip.Imm)
	return k + 1, 0, nil
}

func hDivRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	d := int64(t.Regs[ip.Src])
	n := int64(t.Regs[ip.Dst])
	if d == 0 || (d == -1 && n == math.MinInt64) {
		return k + 1, 0, &Fault{Kind: FaultDivide}
	}
	t.Regs[ip.Dst] = uint64(n / d)
	return k + 1, 0, nil
}

func hModRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	d := int64(t.Regs[ip.Src])
	n := int64(t.Regs[ip.Dst])
	if d == 0 || (d == -1 && n == math.MinInt64) {
		return k + 1, 0, &Fault{Kind: FaultDivide}
	}
	t.Regs[ip.Dst] = uint64(n % d)
	return k + 1, 0, nil
}

func hAndRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] &= t.Regs[ip.Src]
	return k + 1, 0, nil
}

func hAndRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] &= uint64(ip.Imm)
	return k + 1, 0, nil
}

func hOrRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] |= t.Regs[ip.Src]
	return k + 1, 0, nil
}

func hOrRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] |= uint64(ip.Imm)
	return k + 1, 0, nil
}

func hXorRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] ^= t.Regs[ip.Src]
	return k + 1, 0, nil
}

func hXorRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] ^= uint64(ip.Imm)
	return k + 1, 0, nil
}

func hShlRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] <<= t.Regs[ip.Src] & 63
	return k + 1, 0, nil
}

func hShlRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] <<= uint64(ip.Imm) & 63
	return k + 1, 0, nil
}

func hShrRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] >>= t.Regs[ip.Src] & 63
	return k + 1, 0, nil
}

func hShrRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] >>= uint64(ip.Imm) & 63
	return k + 1, 0, nil
}

func hSarRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = uint64(int64(t.Regs[ip.Dst]) >> (t.Regs[ip.Src] & 63))
	return k + 1, 0, nil
}

func hSarRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = uint64(int64(t.Regs[ip.Dst]) >> (uint64(ip.Imm) & 63))
	return k + 1, 0, nil
}

func hNeg(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = -t.Regs[ip.Dst]
	return k + 1, 0, nil
}

func hNot(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = ^t.Regs[ip.Dst]
	return k + 1, 0, nil
}

func hCmpRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.setCmpFlags(t.Regs[ip.Dst], t.Regs[ip.Src])
	return k + 1, 0, nil
}

func hCmpRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.setCmpFlags(t.Regs[ip.Dst], uint64(ip.Imm))
	return k + 1, 0, nil
}

func hCmpMR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	addr := t.ea(&ip.M, true)
	v, f := t.m.Mem.Read(addr, 8)
	if f != nil {
		return k + 1, 0, f
	}
	t.setCmpFlags(v, t.Regs[ip.Src])
	t.Stats.Loads++
	t.Stats.Cycles += t.memCost(addr)
	return k + 1, 0, nil
}

func hTestRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.setTestFlags(t.Regs[ip.Dst] & t.Regs[ip.Src])
	return k + 1, 0, nil
}

func hTestRI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.setTestFlags(t.Regs[ip.Dst] & uint64(ip.Imm))
	return k + 1, 0, nil
}

func hSetCC(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	if t.condTrue(ip.Cond) {
		t.Regs[ip.Dst] = 1
	} else {
		t.Regs[ip.Dst] = 0
	}
	return k + 1, 0, nil
}

func hJmp(_ *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, uint64(ip.Imm), nil
}

func hJcc(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, t.jccNext(ip, run.pcs[k+1]), nil
}

func hJmpR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, t.Regs[ip.Src], nil
}

func hCall(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	if f := t.Push(run.pcs[k+1]); f != nil {
		return k + 1, 0, f
	}
	t.Stats.Cycles += t.memCost(t.Regs[asm.RSP])
	return k + 1, uint64(ip.Imm), nil
}

func hICall(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	if f := t.Push(run.pcs[k+1]); f != nil {
		return k + 1, 0, f
	}
	t.Stats.Cycles += t.memCost(t.Regs[asm.RSP])
	return k + 1, t.Regs[ip.Src], nil
}

func hRet(t *Thread, _ *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	v, f := t.Pop()
	if f != nil {
		return k + 1, 0, f
	}
	t.Stats.Cycles += t.memCost(t.Regs[asm.RSP] - 8)
	return k + 1, v, nil
}

func hTrap(_ *Thread, _ *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, 0, &Fault{Kind: FaultCFI, Msg: "trap"}
}

func hExit(t *Thread, _ *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	t.Halted = true
	t.ExitCode = t.Regs[asm.RetReg]
	t.PC = run.pcs[k]
	return k + 1, 0, nil
}

func hBndCheck(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, 0, t.bndCheck(ip)
}

func hChkSP(t *Thread, _ *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	sp := t.Regs[asm.RSP]
	if sp < t.StackLo || sp > t.StackHi {
		return k + 1, 0, &Fault{Kind: FaultStack, Addr: sp,
			Msg: fmt.Sprintf("rsp outside [%#x,%#x]", t.StackLo, t.StackHi)}
	}
	return k + 1, 0, nil
}

func hFLoad(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	addr := t.ea(&ip.M, true)
	v, f := t.m.Mem.Read(addr, 8)
	if f != nil {
		return k + 1, 0, f
	}
	t.FRegs[ip.FDst] = math.Float64frombits(v)
	t.Stats.Loads++
	t.Stats.Cycles += t.memCost(addr)
	t.grantFPCredit()
	return k + 1, 0, nil
}

func hFStore(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	addr := t.ea(&ip.M, true)
	if f := t.m.Mem.Write(addr, 8, math.Float64bits(t.FRegs[ip.FSrc])); f != nil {
		return k + 1, 0, f
	}
	t.Stats.Stores++
	t.Stats.Cycles += t.memCost(addr)
	t.grantFPCredit()
	return k + 1, 0, nil
}

func hFMovRR(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FRegs[ip.FDst] = t.FRegs[ip.FSrc]
	return k + 1, 0, nil
}

func hFMovI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FRegs[ip.FDst] = math.Float64frombits(uint64(ip.Imm))
	return k + 1, 0, nil
}

func hFAdd(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FRegs[ip.FDst] += t.FRegs[ip.FSrc]
	t.grantFPCredit()
	return k + 1, 0, nil
}

func hFSub(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FRegs[ip.FDst] -= t.FRegs[ip.FSrc]
	t.grantFPCredit()
	return k + 1, 0, nil
}

func hFMul(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FRegs[ip.FDst] *= t.FRegs[ip.FSrc]
	t.grantFPCredit()
	return k + 1, 0, nil
}

func hFDiv(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FRegs[ip.FDst] /= t.FRegs[ip.FSrc]
	t.grantFPCredit()
	return k + 1, 0, nil
}

func hFMax(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	if t.FRegs[ip.FSrc] > t.FRegs[ip.FDst] {
		t.FRegs[ip.FDst] = t.FRegs[ip.FSrc]
	}
	t.grantFPCredit()
	return k + 1, 0, nil
}

func hFCmp(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	a, b := t.FRegs[ip.FDst], t.FRegs[ip.FSrc]
	if math.IsNaN(a) || math.IsNaN(b) {
		t.ZF, t.CF = true, true // x64 unordered result
	} else {
		t.ZF = a == b
		t.CF = a < b
	}
	t.SF, t.OF = false, false
	t.grantFPCredit()
	return k + 1, 0, nil
}

func hCvtIF(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FRegs[ip.FDst] = float64(int64(t.Regs[ip.Src]))
	return k + 1, 0, nil
}

func hCvtFI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = uint64(int64(t.FRegs[ip.FSrc]))
	return k + 1, 0, nil
}

func hMovQIF(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FRegs[ip.FDst] = math.Float64frombits(t.Regs[ip.Src])
	return k + 1, 0, nil
}

func hMovQFI(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.Regs[ip.Dst] = math.Float64bits(t.FRegs[ip.FSrc])
	return k + 1, 0, nil
}

func hWrFS(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.FS = t.Regs[ip.Src]
	return k + 1, 0, nil
}

func hWrGS(t *Thread, ip *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	t.GS = t.Regs[ip.Src]
	return k + 1, 0, nil
}

func hSyscall(_ *Thread, _ *asm.Inst, _ *blockRun, k int) (int, uint64, *Fault) {
	return k + 1, 0, &Fault{Kind: FaultPerm, Msg: "syscall from untrusted code"}
}

func hFuseAluCmpJcc(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	fs := &run.fused[ip.Imm]
	npc := t.fuseAluCmpJcc(fs)
	t.Stats.FusedSlots++
	return k + len(fs.insts), npc, nil
}

func hFuseAluPack(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	fs := &run.fused[ip.Imm]
	t.packExec(fs.uops)
	t.Stats.FusedSlots++
	return k + len(fs.insts), 0, nil
}

func hFuseCmpJcc(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	npc := t.fuseCmpJcc(&run.fused[ip.Imm])
	t.Stats.FusedSlots++
	return k + 2, npc, nil
}

func hFuseLoadOpStore(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	nc, f := t.fuseLoadOpStore(&run.fused[ip.Imm])
	if f != nil {
		t.Stats.Defuses++
		return k + nc + 1, 0, f
	}
	t.Stats.FusedSlots++
	return k + 3, 0, nil
}

func hFuseChk(t *Thread, ip *asm.Inst, run *blockRun, k int) (int, uint64, *Fault) {
	nc, f := t.fuseChk(&run.fused[ip.Imm])
	if f != nil {
		t.Stats.Defuses++
		return k + nc + 1, 0, f
	}
	t.Stats.FusedSlots++
	return k + 2, 0, nil
}

// bndCheck executes a bndcl/bndcu constituent: the exact semantics of
// the combined bound-check case in execRun's switch, including the
// FP-masking credit and the masked check's static-cost refund.
func (t *Thread) bndCheck(ip *asm.Inst) *Fault {
	t.Stats.BndChecks++
	masked := false
	if t.fpCredit > 0 {
		t.fpCredit--
		t.Stats.BndMasked++
		masked = true
	}
	var addr uint64
	switch ip.Op {
	case asm.OpBndCLMem, asm.OpBndCUMem:
		// As with lea, the check is on the raw address (no segment).
		addr = t.ea(&ip.M, false)
	default:
		addr = t.Regs[ip.Src]
	}
	b := t.Bnd[ip.Bnd]
	switch ip.Op {
	case asm.OpBndCLMem, asm.OpBndCLReg:
		if addr < b.Lo {
			return &Fault{Kind: FaultBounds, Addr: addr,
				Msg: fmt.Sprintf("below %s.lower=%#x", ip.Bnd, b.Lo)}
		}
	default:
		if addr > b.Hi {
			return &Fault{Kind: FaultBounds, Addr: addr,
				Msg: fmt.Sprintf("above %s.upper=%#x", ip.Bnd, b.Hi)}
		}
	}
	if masked {
		// The check hid behind FP work: refund the static unit cost
		// charged by the block's prefix sum. A faulting masked check
		// never gets here — its cost was never charged (the prefix sum
		// excludes the faulting slot).
		t.Stats.Cycles--
	}
	return nil
}
