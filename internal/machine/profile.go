package machine

// Cycle-attributed profiling. When Config.Profile is set the machine
// carries a Profile: a map from attribution PC to the cycles and
// instructions spent there. The attribution grain is the superblock (or
// the trusted handler): execRun snapshots the thread's cycle counter at
// block entry and attributes the delta — the cum[] static charge plus
// every dynamic component the opcode cases added inline (cache-miss
// penalties, FP-masked bound-check refunds) — to the block's entry PC;
// Step and stepBlocks wrap trusted-handler dispatches the same way, so a
// handler's charge() cost lands on the handler's address. Because every
// mutation of Stats.Cycles in the codebase happens inside one of those
// two windows, the profile conserves cycles exactly:
//
//	sum over cells of Cycles == TotalStats().Cycles
//
// for any program, any dispatch mode, any fault. The bench layer tests
// this conservation per run; internal/obs symbolizes the PCs against the
// link-layer symbol table.
//
// The disabled path costs one nil check per block (not per instruction)
// and zero allocations; TestRunProfileDisabledZeroAlloc pins that.

// ProfCell is one attribution bucket: the cycles and instructions charged
// at an entry PC, and how many times execution entered there.
type ProfCell struct {
	Cycles uint64
	Instrs uint64
	Hits   uint64
}

// Profile accumulates per-entry-PC cost attribution for one machine. It
// is owned by the machine's single execution goroutine; callers read it
// after Run returns.
type Profile struct {
	cells map[uint64]*ProfCell
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{cells: map[uint64]*ProfCell{}} }

// add charges cycles and instrs to pc's bucket.
func (p *Profile) add(pc, cycles, instrs uint64) {
	c := p.cells[pc]
	if c == nil {
		c = &ProfCell{}
		p.cells[pc] = c
	}
	c.Cycles += cycles
	c.Instrs += instrs
	c.Hits++
}

// Cells returns a copy of the attribution buckets keyed by entry PC.
func (p *Profile) Cells() map[uint64]ProfCell {
	out := make(map[uint64]ProfCell, len(p.cells))
	for pc, c := range p.cells {
		out[pc] = *c
	}
	return out
}

// TotalCycles sums the attributed cycles across all buckets. With
// profiling enabled for a whole run this equals TotalStats().Cycles.
func (p *Profile) TotalCycles() uint64 {
	var sum uint64
	for _, c := range p.cells {
		sum += c.Cycles
	}
	return sum
}

// TotalInstrs sums the attributed instructions across all buckets. Only
// U instructions are counted (trusted-handler dispatches add cycles but
// no instruction, matching Stats.Instrs).
func (p *Profile) TotalInstrs() uint64 {
	var sum uint64
	for _, c := range p.cells {
		sum += c.Instrs
	}
	return sum
}
