package machine

import (
	"testing"

	"confllvm/internal/asm"
)

// profLoopMachine builds the BenchmarkRun loop program (iters ALU loop
// iterations, then exit) on a machine with the given config, optionally
// appending extra instructions after the loop in place of the exit.
func profLoopMachine(t *testing.T, conf Config, iters int64, tail []asm.Inst) (*Machine, *Thread) {
	t.Helper()
	m := New(conf)
	var code []byte
	code = asm.Encode(code, asm.Inst{Op: asm.OpMovRI, Dst: asm.RCX, Imm: iters})
	loopStart := 0x1000 + uint64(len(code))
	for _, in := range []asm.Inst{
		{Op: asm.OpMovRI, Dst: asm.RAX, Imm: 7},
		{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 3},
		{Op: asm.OpMovRR, Dst: asm.RBX, Src: asm.RAX},
		{Op: asm.OpXorRR, Dst: asm.RDX, Src: asm.RBX},
		{Op: asm.OpMulRR, Dst: asm.RBX, Src: asm.RAX},
		{Op: asm.OpStore, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8, Disp: 0x100000}, Src: asm.RBX},
		{Op: asm.OpLoad, Dst: asm.RSI, M: asm.Mem{Base: asm.RDI, Index: asm.NoReg, Size: 8, Disp: 0x100000}},
		{Op: asm.OpSubRI, Dst: asm.RCX, Imm: 1},
		{Op: asm.OpCmpRI, Dst: asm.RCX, Imm: 0},
	} {
		code = asm.Encode(code, in)
	}
	code = asm.Encode(code, asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: int64(loopStart)})
	for _, in := range tail {
		code = asm.Encode(code, in)
	}
	code = asm.Encode(code, asm.Inst{Op: asm.OpExit})
	if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
		t.Fatal(f)
	}
	th := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
	return m, th
}

var profModes = []struct {
	name        string
	superblocks bool
	chain       bool
	fuse        bool
	threaded    bool
}{
	{"stepwise", false, false, false, false},
	{"superblock", true, false, false, false},
	{"chained", true, true, false, false},
	{"fused", true, true, true, false},
	{"threaded", true, true, true, true},
}

// TestProfileConservation: with profiling on, the attributed cycle and
// instruction totals equal the thread's Stats exactly — in every dispatch
// mode, on clean exits and on faulting runs (the fault path charges
// cum[k-1]; its attribution must match).
func TestProfileConservation(t *testing.T) {
	for _, mode := range profModes {
		for _, faulting := range []bool{false, true} {
			name := mode.name
			if faulting {
				name += "/fault"
			}
			t.Run(name, func(t *testing.T) {
				conf := DefaultConfig()
				conf.Superblocks = mode.superblocks
				conf.Chain = mode.chain
				conf.Fuse = mode.fuse
				conf.Threaded = mode.threaded
				conf.Profile = true
				var tail []asm.Inst
				if faulting {
					// An unmapped load right after the loop: the run ends in
					// a mid-block fault, exercising the cum[k-1] charge path.
					tail = []asm.Inst{
						{Op: asm.OpAddRI, Dst: asm.RAX, Imm: 1},
						{Op: asm.OpLoad, Dst: asm.RAX, M: asm.Mem{Base: asm.NoReg, Index: asm.NoReg, Size: 8, Disp: 0x40}},
					}
				}
				m, th := profLoopMachine(t, conf, 50, tail)
				f := m.Run()
				if faulting && f == nil {
					t.Fatal("expected a fault")
				}
				if !faulting && f != nil {
					t.Fatalf("unexpected fault: %v", f)
				}
				prof := m.Profile()
				if prof == nil {
					t.Fatal("Conf.Profile set but Profile() == nil")
				}
				if got, want := prof.TotalCycles(), th.Stats.Cycles; got != want {
					t.Fatalf("profile cycles %d != Stats.Cycles %d", got, want)
				}
				if got, want := prof.TotalInstrs(), th.Stats.Instrs; got != want {
					t.Fatalf("profile instrs %d != Stats.Instrs %d", got, want)
				}
			})
		}
	}
}

// TestProfileStatsUnchanged: profiling is purely observational — every
// simulated result (Stats, registers, exit) is bit-identical with it on.
func TestProfileStatsUnchanged(t *testing.T) {
	for _, mode := range profModes {
		t.Run(mode.name, func(t *testing.T) {
			run := func(profile bool) (*Machine, *Thread) {
				conf := DefaultConfig()
				conf.Superblocks = mode.superblocks
				conf.Chain = mode.chain
				conf.Fuse = mode.fuse
				conf.Threaded = mode.threaded
				conf.Profile = profile
				m, th := profLoopMachine(t, conf, 50, nil)
				if f := m.Run(); f != nil {
					t.Fatalf("fault: %v", f)
				}
				return m, th
			}
			_, off := run(false)
			_, on := run(true)
			if off.Stats != on.Stats {
				t.Fatalf("profiling changed Stats: off=%+v on=%+v", off.Stats, on.Stats)
			}
			if off.Regs != on.Regs {
				t.Fatal("profiling changed register state")
			}
		})
	}
}

// TestProfileHandlerAttribution: a trusted-handler dispatch attributes its
// cycle delta (AddCycles charges included) to the handler's address, with
// zero instructions — matching Stats, which counts handlers in
// TrustedCall but not Instrs.
func TestProfileHandlerAttribution(t *testing.T) {
	for _, mode := range profModes {
		t.Run(mode.name, func(t *testing.T) {
			conf := DefaultConfig()
			conf.Superblocks = mode.superblocks
			conf.Chain = mode.chain
			conf.Fuse = mode.fuse
			conf.Threaded = mode.threaded
			conf.Profile = true
			m := New(conf)
			const hnd = uint64(0x9000)
			var code []byte
			code = asm.Encode(code, asm.Inst{Op: asm.OpCall, Imm: int64(hnd)})
			code = asm.Encode(code, asm.Inst{Op: asm.OpExit})
			if _, err := m.Mem.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Mem.Map("data", 0x100000, 0x10000, PermR|PermW); err != nil {
				t.Fatal(err)
			}
			if f := m.Mem.WriteBytesUnchecked(0x1000, code); f != nil {
				t.Fatal(f)
			}
			m.Handlers[hnd] = func(m *Machine, th *Thread) *Fault {
				th.AddCycles(37)
				raddr, f := th.Pop()
				if f != nil {
					return f
				}
				th.PC = raddr
				return nil
			}
			th := m.NewThread(0x1000, 0x100000+0x8000, 0x100000, 0x100000+0x10000)
			if f := m.Run(); f != nil {
				t.Fatalf("fault: %v", f)
			}
			cells := m.Profile().Cells()
			hc, ok := cells[hnd]
			if !ok {
				t.Fatalf("no profile cell at handler address %#x (cells: %v)", hnd, cells)
			}
			if hc.Instrs != 0 || hc.Hits != 1 {
				t.Fatalf("handler cell = %+v, want Instrs 0, Hits 1", hc)
			}
			// The pop's Read is free (no memCost outside execRun); the delta
			// is exactly the AddCycles charge.
			if hc.Cycles != 37 {
				t.Fatalf("handler cell cycles = %d, want 37", hc.Cycles)
			}
			if got, want := m.Profile().TotalCycles(), th.Stats.Cycles; got != want {
				t.Fatalf("profile cycles %d != Stats.Cycles %d", got, want)
			}
		})
	}
}

// TestRunProfileDisabledZeroAlloc pins the disabled path's cost: after
// warmup (traces and blocks built), re-running the loop program with
// profiling off performs zero allocations. This is the acceptance bar for
// shipping the hooks inside the hot dispatch loop.
func TestRunProfileDisabledZeroAlloc(t *testing.T) {
	// The fused slot program and threaded op table are built once at
	// flatten time, so the re-run path must stay allocation-free in every
	// dispatch mode, fused and threaded included.
	for _, mode := range profModes {
		if !mode.superblocks {
			continue // stepping re-dispatches per instruction; not the pinned path
		}
		t.Run(mode.name, func(t *testing.T) {
			conf := DefaultConfig()
			conf.Superblocks = mode.superblocks
			conf.Chain = mode.chain
			conf.Fuse = mode.fuse
			conf.Threaded = mode.threaded
			m, th := profLoopMachine(t, conf, 200, nil)
			reset := func() {
				th.Halted = false
				th.Fault = nil
				th.PC = 0x1000
			}
			if f := m.Run(); f != nil {
				t.Fatalf("warmup fault: %v", f)
			}
			allocs := testing.AllocsPerRun(10, func() {
				reset()
				if f := m.Run(); f != nil {
					t.Fatalf("fault: %v", f)
				}
			})
			if allocs != 0 {
				t.Fatalf("Run with profiling disabled allocates %.1f objects per run, want 0", allocs)
			}
		})
	}
}
