package machine

import (
	"confllvm/internal/asm"
)

// Superinstruction fusion (Conf.Fuse): when buildBlock flattens a
// superblock into a blockRun, fuseRun peephole-scans the constituent
// instruction list for hot multi-instruction idioms and rewrites the
// run's *slot program* — the sequence the dispatch loop walks — so each
// recognized idiom occupies one synthetic slot executed with a single
// opcode dispatch. The constituent arrays (insts, pcs, cum) are never
// touched: they stay constituent-indexed, so every per-instruction
// contract — fault PC reconstruction from run.pcs[k-1], the cum[]
// prefix-sum cycle charge, fuel accounting in instructions — extends
// through fused slots unchanged.
//
// Recognized idioms (greedy, left to right, longest first):
//
//	alu… + cmp + jcc      loop heads: a maximal run of packable ALU ops
//	                      (register/immediate arithmetic, logic, shifts,
//	                      moves — nothing that can fault or touch memory)
//	                      capped by a compare-and-branch
//	alu + alu…            packs: two or more consecutive packable ALU ops
//	load + alu + store    read-modify-write triples (non-faulting alu)
//	cmp + jcc             compare-and-branch pairs
//	bndck + load|store    MPX check+access pairs (any bndcl/bndcu form)
//
// De-fuse rules: a fused slot must be unobservable in every simulated
// result, so whenever an event lands *inside* one, execution falls back
// to the constituent list.
//
//   - A fuel or quantum bite whose boundary falls strictly inside a
//     fused slot makes execRun walk run.insts[:nb] (the raw constituent
//     prefix) instead of the fused program — the resume PC, cycle charge
//     and instruction count are those of the unfused walk.
//   - A fault on constituent i of a fused slot advances k only past the
//     i clean constituents plus the faulting one, so the fault's PC
//     (run.pcs[k-1]), its cycle stamp (cum charges exclude the faulting
//     slot) and its message are bit-identical to unfused dispatch.
//
// Both events bump Stats.Defuses; completed fused slots bump
// Stats.FusedSlots. Step's one-slot builds (limit 1) never fuse — a run
// needs at least two constituents — and short runs are rebuilt at full
// length by block dispatch before fusion decisions matter, so a prior
// Step at a hot PC cannot change Run's fusion. Invalidation needs no
// new machinery: fused programs live inside blockRuns, so code patches
// (flushTraces) and handler-range changes (flushBlocks) discard them
// with the runs, and a rebuilt block that now ends at a handler-range
// boundary simply never fuses across it.

// fuseKind enumerates the recognized idioms. The order must match the
// synthetic opcode block below (fuseOpFor adds the kind to the base).
type fuseKind uint8

const (
	fkAluCmpJcc   fuseKind = iota // alu pack (>= 1), cmp, jcc
	fkCmpJcc                      // cmp, jcc
	fkLoadOpStore                 // load, alu, store
	fkChkLoad                     // bndcl|bndcu, load
	fkChkStore                    // bndcl|bndcu, store
	fkAluPack                     // >= 2 consecutive packable ALU ops
)

// Synthetic fused opcodes, living far above the real opcode space. They
// appear only in a blockRun's fused slot program (xinsts), never in
// decoded traces or encoded images; their Imm field indexes run.fused.
const (
	opFuseAluCmpJcc asm.Op = 0xF0 + iota
	opFuseCmpJcc
	opFuseLoadOpStore
	opFuseChkLoad
	opFuseChkStore
	opFuseAluPack
)

func init() {
	// The real opcode space must stay clear of the synthetic block:
	// OpNop is the last real opcode.
	if asm.OpNop >= opFuseAluCmpJcc {
		panic("machine: synthetic fused opcodes collide with the real opcode space")
	}
	// regMask-based bounds-check elimination needs a power-of-two file.
	if asm.NumRegs&(asm.NumRegs-1) != 0 {
		panic("machine: NumRegs must be a power of two")
	}
}

// regMask masks register indices in the fused exec bodies. The decoder
// does not validate register bytes — an out-of-range index panics at
// execution time in the singleton opcode cases — so fusion must not
// change that: regsOK keeps any constituent with an out-of-range
// register *unfused* (it executes, and panics, on the switch path), and
// the mask is therefore a no-op on every register that reaches a fused
// body. Its only job is letting the compiler drop the per-access bounds
// checks in packExec and fuseAluCmpJcc, the hottest fused code.
const regMask = asm.NumRegs - 1

// regsOK reports whether a constituent's register fields are in range
// (Src is zero on immediate forms, so the unconditional check is safe).
func regsOK(ip *asm.Inst) bool {
	return ip.Dst < asm.NumRegs && ip.Src < asm.NumRegs
}

func fuseOpFor(k fuseKind) asm.Op { return opFuseAluCmpJcc + asm.Op(k) }

// fusedInst is one fused slot: the constituent instructions (a subslice
// of run.insts), their PCs including the fall-through PC (a subslice of
// run.pcs), the constituent index of the first one, and the summed
// static cost of the sequence (the cum[] span it covers).
//
// The exec-side fields below insts/pcs are *pre-decoded* operands,
// filled at flatten time so the hot fused bodies touch no asm.Inst at
// all: uops is the pack constituents translated to dense micro-ops
// (packExec's switch compiles to a jump table over them, where a switch
// on the sparse asm.Op space compiles to a comparison tree), and the
// cmp*/cond/PC scalars flatten an fkAluCmpJcc's compare-and-branch
// tail.
type fusedInst struct {
	kind  fuseKind
	base  int        // constituent index of insts[0]
	insts []asm.Inst // the constituents, aliasing run.insts
	pcs   []uint64   // len(insts)+1 PCs, aliasing run.pcs
	cost  uint32     // == run.cum[base+len(insts)] - run.cum[base]

	uops []uop // pre-decoded pack constituents (see packUop)

	// Pre-decoded compare-and-branch tail (fkAluCmpJcc only).
	cmpDst, cmpSrc uint8 // pre-masked register indices
	cmpIsRR        bool
	cond           asm.Cond
	cmpImm         uint64
	takenPC        uint64 // jcc target
	fallPC         uint64 // == pcs[len(insts)]
}

// uop is a pre-decoded packable constituent: a dense opcode (the u*
// block below), pre-masked register indices and the pre-converted
// immediate (shift immediates are pre-masked to 0..63). 24 bytes, so a
// pack walks half the memory the asm.Inst slots occupy — and after
// optimizePack usually fewer slots than constituents.
type uop struct {
	code     uint8
	dst, src uint8
	imm      uint64
	imm2     uint64 // second immediate, uMovRI2 only
}

// Dense micro-opcodes, one per isPackable member, starting at 0 so
// packExec's switch is a jump table.
const (
	uMovRI uint8 = iota
	uMovRR
	uAddRR
	uAddRI
	uSubRR
	uSubRI
	uMulRR
	uMulRI
	uAndRR
	uAndRI
	uOrRR
	uOrRI
	uXorRR
	uXorRI
	uShlRR
	uShlRI
	uShrRR
	uShrRI
	uSarRR
	uSarRI
	uNeg
	uNot
	uMovRI2 // dst=imm, src=imm2: two constant materializations in one step
)

// packUop translates a packable constituent (isPackable && regsOK) to
// its micro-op. Reached only from fuseRun, so the default case is a
// matcher/translator disagreement, not a user-input condition.
func packUop(ip *asm.Inst) uop {
	u := uop{dst: uint8(ip.Dst) & regMask, src: uint8(ip.Src) & regMask, imm: uint64(ip.Imm)}
	switch ip.Op {
	case asm.OpMovRI:
		u.code = uMovRI
	case asm.OpMovRR:
		u.code = uMovRR
	case asm.OpAddRR:
		u.code = uAddRR
	case asm.OpAddRI:
		u.code = uAddRI
	case asm.OpSubRR:
		u.code = uSubRR
	case asm.OpSubRI:
		u.code = uSubRI
	case asm.OpMulRR:
		u.code = uMulRR
	case asm.OpMulRI:
		u.code = uMulRI
	case asm.OpAndRR:
		u.code = uAndRR
	case asm.OpAndRI:
		u.code = uAndRI
	case asm.OpOrRR:
		u.code = uOrRR
	case asm.OpOrRI:
		u.code = uOrRI
	case asm.OpXorRR:
		u.code = uXorRR
	case asm.OpXorRI:
		u.code = uXorRI
	case asm.OpShlRR:
		u.code = uShlRR
	case asm.OpShlRI:
		u.code, u.imm = uShlRI, u.imm&63
	case asm.OpShrRR:
		u.code = uShrRR
	case asm.OpShrRI:
		u.code, u.imm = uShrRI, u.imm&63
	case asm.OpSarRR:
		u.code = uSarRR
	case asm.OpSarRI:
		u.code, u.imm = uSarRI, u.imm&63
	case asm.OpNeg:
		u.code = uNeg
	case asm.OpNot:
		u.code = uNot
	default:
		panic("machine: packUop: op is not packable")
	}
	return u
}

// fuseRun rewrites run's slot program: every matched idiom becomes one
// synthetic slot (Op = the idiom's fused opcode, Imm = index into
// run.fused), unmatched instructions become singleton copies. Runs with
// no match keep xinsts nil and pay nothing. Called once at flatten time
// (buildBlock), so the dispatch loop allocates nothing per execution.
func fuseRun(run *blockRun) {
	n := run.n
	if n < 2 {
		return
	}
	var xs []asm.Inst
	var fused []fusedInst
	for i := 0; i < n; {
		kind, ln := matchIdiom(run.insts, i, n)
		if ln == 0 {
			if xs != nil {
				xs = append(xs, run.insts[i])
			}
			i++
			continue
		}
		if xs == nil {
			// First match: materialize the singleton prefix.
			xs = append(make([]asm.Inst, 0, n), run.insts[:i]...)
		}
		xs = append(xs, asm.Inst{Op: fuseOpFor(kind), Imm: int64(len(fused))})
		fs := fusedInst{
			kind:  kind,
			base:  i,
			insts: run.insts[i : i+ln],
			pcs:   run.pcs[i : i+ln+1],
			cost:  run.cum[i+ln] - run.cum[i],
		}
		fs.predecode()
		fused = append(fused, fs)
		i += ln
	}
	if fused == nil {
		return
	}
	run.xinsts = xs
	run.fused = fused
}

// predecode fills the slot's exec-side fields from its constituents:
// the micro-op translation of the pack members and, for fkAluCmpJcc,
// the flattened compare-and-branch tail.
func (fs *fusedInst) predecode() {
	n := len(fs.insts)
	switch fs.kind {
	case fkAluCmpJcc:
		fs.uops = optimizePack(fs.insts[:n-2])
		cp := &fs.insts[n-2]
		fs.cmpDst = uint8(cp.Dst) & regMask
		fs.cmpSrc = uint8(cp.Src) & regMask
		fs.cmpIsRR = cp.Op == asm.OpCmpRR
		fs.cmpImm = uint64(cp.Imm)
		jp := &fs.insts[n-1]
		fs.cond = jp.Cond
		fs.takenPC = uint64(jp.Imm)
		fs.fallPC = fs.pcs[n]
	case fkAluPack:
		fs.uops = optimizePack(fs.insts)
	case fkLoadOpStore:
		fs.uops = []uop{packUop(&fs.insts[1])}
	}
}

// Pack optimization: a completed fused slot only exposes its *final*
// register file — packables cannot fault, never touch flags, and every
// bite or interior event de-fuses to the raw constituent walk — so the
// micro-op translation is free to fold the pack's dataflow at flatten
// time. optimizePack symbolically executes the constituents tracking
// each register as untouched (Orig), a known constant (Const), or
// already produced by emitted micro-ops (Expr): constant operands fold
// RR forms into RI forms, fully-constant results emit nothing until a
// single materializing mov at the end, dst==src identities (sub/xor to
// zero, self-mov/and/or no-ops) collapse, and intermediate overwrites
// die entirely. The emitted sequence is observation-equivalent to the
// constituents: every register a constituent wrote holds the identical
// final value, and instruction/cycle accounting stays constituent-
// indexed in the outer loop (cum[]/pcs[]/k are untouched by how few
// micro-ops execute).

const (
	rsOrig  uint8 = iota // register still holds its pack-entry value
	rsConst              // register's value is a known constant, not yet written
	rsExpr               // register was written by an emitted micro-op
)

type regState struct {
	kind uint8
	val  uint64
}

// packBinOp describes one two-operand packable op for the optimizer:
// its RR/RI micro-opcodes, its fold function, and whether the immediate
// operand is a shift count (masked to 0..63 before eval/emission).
type packBinOp struct {
	rr, ri uint8
	eval   func(a, b uint64) uint64
	shift  bool
}

var packBinOps = map[asm.Op]packBinOp{
	asm.OpAddRR: {uAddRR, uAddRI, func(a, b uint64) uint64 { return a + b }, false},
	asm.OpAddRI: {uAddRR, uAddRI, func(a, b uint64) uint64 { return a + b }, false},
	asm.OpSubRR: {uSubRR, uSubRI, func(a, b uint64) uint64 { return a - b }, false},
	asm.OpSubRI: {uSubRR, uSubRI, func(a, b uint64) uint64 { return a - b }, false},
	asm.OpMulRR: {uMulRR, uMulRI, func(a, b uint64) uint64 { return uint64(int64(a) * int64(b)) }, false},
	asm.OpMulRI: {uMulRR, uMulRI, func(a, b uint64) uint64 { return uint64(int64(a) * int64(b)) }, false},
	asm.OpAndRR: {uAndRR, uAndRI, func(a, b uint64) uint64 { return a & b }, false},
	asm.OpAndRI: {uAndRR, uAndRI, func(a, b uint64) uint64 { return a & b }, false},
	asm.OpOrRR:  {uOrRR, uOrRI, func(a, b uint64) uint64 { return a | b }, false},
	asm.OpOrRI:  {uOrRR, uOrRI, func(a, b uint64) uint64 { return a | b }, false},
	asm.OpXorRR: {uXorRR, uXorRI, func(a, b uint64) uint64 { return a ^ b }, false},
	asm.OpXorRI: {uXorRR, uXorRI, func(a, b uint64) uint64 { return a ^ b }, false},
	asm.OpShlRR: {uShlRR, uShlRI, func(a, b uint64) uint64 { return a << b }, true},
	asm.OpShlRI: {uShlRR, uShlRI, func(a, b uint64) uint64 { return a << b }, true},
	asm.OpShrRR: {uShrRR, uShrRI, func(a, b uint64) uint64 { return a >> b }, true},
	asm.OpShrRI: {uShrRR, uShrRI, func(a, b uint64) uint64 { return a >> b }, true},
	asm.OpSarRR: {uSarRR, uSarRI, func(a, b uint64) uint64 { return uint64(int64(a) >> b) }, true},
	asm.OpSarRI: {uSarRR, uSarRI, func(a, b uint64) uint64 { return uint64(int64(a) >> b) }, true},
}

// optimizePack translates pack constituents (all isPackable && regsOK)
// to a minimal micro-op sequence. Pure function of the constituent
// slice, so fused runs rebuilt from the same bytes optimize
// identically.
func optimizePack(insts []asm.Inst) []uop {
	var st [asm.NumRegs]regState
	uops := make([]uop, 0, len(insts))
	// force materializes a pending constant so an emitted micro-op can
	// read the register at runtime.
	force := func(r uint8) {
		if st[r].kind == rsConst {
			uops = append(uops, uop{code: uMovRI, dst: r, imm: st[r].val})
			st[r] = regState{kind: rsExpr}
		}
	}
	for i := range insts {
		ip := &insts[i]
		d := uint8(ip.Dst) & regMask
		s := uint8(ip.Src) & regMask
		switch op := ip.Op; op {
		case asm.OpMovRI:
			st[d] = regState{kind: rsConst, val: uint64(ip.Imm)}
		case asm.OpMovRR:
			switch {
			case d == s: // self-move: no-op
			case st[s].kind == rsConst:
				st[d] = regState{kind: rsConst, val: st[s].val}
			default:
				uops = append(uops, uop{code: uMovRR, dst: d, src: s})
				st[d] = regState{kind: rsExpr}
			}
		case asm.OpNeg, asm.OpNot:
			if st[d].kind == rsConst {
				if op == asm.OpNeg {
					st[d].val = -st[d].val
				} else {
					st[d].val = ^st[d].val
				}
				break
			}
			code := uNeg
			if op == asm.OpNot {
				code = uNot
			}
			uops = append(uops, uop{code: code, dst: d})
			st[d] = regState{kind: rsExpr}
		default:
			bo := packBinOps[op]
			isRR := op == asm.OpAddRR || op == asm.OpSubRR || op == asm.OpMulRR ||
				op == asm.OpAndRR || op == asm.OpOrRR || op == asm.OpXorRR ||
				op == asm.OpShlRR || op == asm.OpShrRR || op == asm.OpSarRR
			if isRR && d == s {
				// dst==src identities hold for any value.
				switch op {
				case asm.OpSubRR, asm.OpXorRR:
					st[d] = regState{kind: rsConst, val: 0}
					continue
				case asm.OpAndRR, asm.OpOrRR:
					continue // a&a == a|a == a
				}
			}
			var b uint64
			known := true
			if isRR {
				if st[s].kind == rsConst {
					b = st[s].val
				} else {
					known = false
				}
			} else {
				b = uint64(ip.Imm)
			}
			if known && bo.shift {
				b &= 63
			}
			switch {
			case known && st[d].kind == rsConst:
				st[d].val = bo.eval(st[d].val, b)
			case known:
				uops = append(uops, uop{code: bo.ri, dst: d, imm: b})
				st[d] = regState{kind: rsExpr}
			default:
				force(d)
				uops = append(uops, uop{code: bo.rr, dst: d, src: s})
				st[d] = regState{kind: rsExpr}
			}
		}
	}
	// Materialize every register whose final value is a pending constant.
	for r := uint8(0); r < asm.NumRegs; r++ {
		if st[r].kind == rsConst {
			uops = append(uops, uop{code: uMovRI, dst: r, imm: st[r].val})
		}
	}
	// Peephole: pair adjacent constant materializations. Writing dst
	// then src matches the sequential order, so even dst==src (which
	// the passes above never produce) would stay correct.
	merged := uops[:0]
	for i := 0; i < len(uops); i++ {
		if uops[i].code == uMovRI && i+1 < len(uops) && uops[i+1].code == uMovRI {
			merged = append(merged, uop{
				code: uMovRI2,
				dst:  uops[i].dst, src: uops[i+1].dst,
				imm: uops[i].imm, imm2: uops[i+1].imm,
			})
			i++
			continue
		}
		merged = append(merged, uops[i])
	}
	return merged
}

// matchIdiom reports the idiom starting at constituent i, or (0, 0).
// Longest match wins at each position; jcc and the other terminators
// can only ever be the last constituent (blockEnd), so a matched jcc is
// always the run's terminator and the chain-follow logic keeps working
// on run.term/run.takenPC untouched.
func matchIdiom(insts []asm.Inst, i, n int) (fuseKind, int) {
	rem := n - i
	op := insts[i].Op
	if isPackable(op) && regsOK(&insts[i]) {
		// Maximal run of packable ALU ops; if a cmp+jcc follows, absorb
		// it too — the whole loop head becomes one slot.
		p := 1
		for i+p < n && isPackable(insts[i+p].Op) && regsOK(&insts[i+p]) {
			p++
		}
		if rem >= p+2 && isCmpFlag(insts[i+p].Op) && regsOK(&insts[i+p]) &&
			insts[i+p+1].Op == asm.OpJcc {
			return fkAluCmpJcc, p + 2
		}
		if p >= 2 {
			return fkAluPack, p
		}
		return 0, 0
	}
	if rem >= 3 {
		if op == asm.OpLoad && isFusableALU(insts[i+1].Op) && regsOK(&insts[i+1]) &&
			insts[i+2].Op == asm.OpStore {
			return fkLoadOpStore, 3
		}
	}
	if rem >= 2 {
		if isBndCheck(op) {
			switch insts[i+1].Op {
			case asm.OpLoad:
				return fkChkLoad, 2
			case asm.OpStore:
				return fkChkStore, 2
			}
		}
		if isCmpFlag(op) && insts[i+1].Op == asm.OpJcc {
			return fkCmpJcc, 2
		}
	}
	return 0, 0
}

// isPackable matches the flag-free, fault-free register ops eligible for
// ALU packs: the fusable ALU set plus the two register moves. packExec
// must cover exactly this set.
func isPackable(op asm.Op) bool {
	return isFusableALU(op) || op == asm.OpMovRI || op == asm.OpMovRR
}

// isCmpFlag matches the register/immediate cmp forms. OpCmpMR is
// excluded: it can fault on its memory read, and keeping the flag-math
// constituents non-faulting keeps the cmp+jcc idioms fault-free.
func isCmpFlag(op asm.Op) bool {
	return op == asm.OpCmpRR || op == asm.OpCmpRI
}

// isFusableALU matches the non-faulting register ALU ops allowed as the
// middle of a load/op/store triple (div and mod can raise #DE and are
// excluded; packExec covers this set plus the moves).
func isFusableALU(op asm.Op) bool {
	switch op {
	case asm.OpAddRR, asm.OpAddRI, asm.OpSubRR, asm.OpSubRI,
		asm.OpMulRR, asm.OpMulRI,
		asm.OpAndRR, asm.OpAndRI, asm.OpOrRR, asm.OpOrRI,
		asm.OpXorRR, asm.OpXorRI,
		asm.OpShlRR, asm.OpShlRI, asm.OpShrRR, asm.OpShrRI,
		asm.OpSarRR, asm.OpSarRI,
		asm.OpNeg, asm.OpNot:
		return true
	}
	return false
}

func isBndCheck(op asm.Op) bool {
	switch op {
	case asm.OpBndCLMem, asm.OpBndCUMem, asm.OpBndCLReg, asm.OpBndCUReg:
		return true
	}
	return false
}

// splitsFused reports whether a bite boundary after constituent nb
// lands strictly inside one of run's fused slots (run.fused is ordered
// by base).
func (run *blockRun) splitsFused(nb int) bool {
	for i := range run.fused {
		fs := &run.fused[i]
		if fs.base >= nb {
			return false
		}
		if nb < fs.base+len(fs.insts) {
			return true
		}
	}
	return false
}

// The fused execution methods below are the single implementation of
// each idiom's semantics, shared by the switch cases in execRun and the
// threaded handlers in dispatch.go. Each replays its constituents in
// exact program order through the same helpers the singleton paths use,
// so registers, flags, stats, dynamic cycle components and fault
// payloads are bit-identical to unfused dispatch.

// fuseAluCmpJcc executes an ALU-pack + cmp + jcc loop head (variable
// length: >= 1 packable ops, then the pair). None of the constituents
// can fault. Everything it touches was pre-decoded at flatten time —
// the pack as micro-ops, the compare-and-branch as scalar fields — and
// the flag math is inlined rather than routed through cmpFlags: this is
// the hottest fused path, and both the asm.Inst traffic and the call
// overhead are measurable at interpreter speeds. Returns the jcc's
// next PC.
func (t *Thread) fuseAluCmpJcc(fs *fusedInst) uint64 {
	t.packExec(fs.uops)
	a := t.Regs[fs.cmpDst&regMask]
	b := fs.cmpImm
	if fs.cmpIsRR {
		b = t.Regs[fs.cmpSrc&regMask]
	}
	d := a - b
	t.ZF = d == 0
	t.SF = int64(d) < 0
	t.CF = a < b
	t.OF = (int64(a) < 0) != (int64(b) < 0) && (int64(d) < 0) != (int64(a) < 0)
	if t.condTrue(fs.cond) {
		return fs.takenPC
	}
	return fs.fallPC
}

// fuseCmpJcc executes a cmp, jcc pair (non-faulting). Returns the
// jcc's next PC.
func (t *Thread) fuseCmpJcc(fs *fusedInst) uint64 {
	t.cmpFlags(&fs.insts[0])
	return t.jccNext(&fs.insts[1], fs.pcs[2])
}

// fuseAluPack executes a standalone ALU pack (non-faulting).
func (t *Thread) fuseAluPack(fs *fusedInst) {
	t.packExec(fs.uops)
}

// packExec executes a pre-decoded pack: one jump-table dispatch per
// micro-op, with none of the outer dispatch loop's per-slot accounting.
// Register indices are pre-masked at build time and re-masked here
// (regMask) purely for bounds-check elimination — matchIdiom only fuses
// constituents whose registers regsOK validated, so the masks never
// change an index.
func (t *Thread) packExec(uops []uop) {
	for i := range uops {
		u := &uops[i]
		d := u.dst & regMask
		s := u.src & regMask
		switch u.code {
		case uMovRI:
			t.Regs[d] = u.imm
		case uMovRR:
			t.Regs[d] = t.Regs[s]
		case uAddRR:
			t.Regs[d] += t.Regs[s]
		case uAddRI:
			t.Regs[d] += u.imm
		case uSubRR:
			t.Regs[d] -= t.Regs[s]
		case uSubRI:
			t.Regs[d] -= u.imm
		case uMulRR:
			t.Regs[d] = uint64(int64(t.Regs[d]) * int64(t.Regs[s]))
		case uMulRI:
			t.Regs[d] = uint64(int64(t.Regs[d]) * int64(u.imm))
		case uAndRR:
			t.Regs[d] &= t.Regs[s]
		case uAndRI:
			t.Regs[d] &= u.imm
		case uOrRR:
			t.Regs[d] |= t.Regs[s]
		case uOrRI:
			t.Regs[d] |= u.imm
		case uXorRR:
			t.Regs[d] ^= t.Regs[s]
		case uXorRI:
			t.Regs[d] ^= u.imm
		case uShlRR:
			t.Regs[d] <<= t.Regs[s] & 63
		case uShlRI:
			t.Regs[d] <<= u.imm
		case uShrRR:
			t.Regs[d] >>= t.Regs[s] & 63
		case uShrRI:
			t.Regs[d] >>= u.imm
		case uSarRR:
			t.Regs[d] = uint64(int64(t.Regs[d]) >> (t.Regs[s] & 63))
		case uSarRI:
			t.Regs[d] = uint64(int64(t.Regs[d]) >> u.imm)
		case uNeg:
			t.Regs[d] = -t.Regs[d]
		case uNot:
			t.Regs[d] = ^t.Regs[d]
		case uMovRI2:
			t.Regs[d] = u.imm
			t.Regs[s] = u.imm2
		}
	}
}

// fuseLoadOpStore executes a load, alu, store triple. Returns the
// number of constituents that completed cleanly — on a fault that is
// the faulting constituent's index, so the caller can place k exactly
// where the unfused walk would have left it.
func (t *Thread) fuseLoadOpStore(fs *fusedInst) (int, *Fault) {
	if f := t.execLoad(&fs.insts[0]); f != nil {
		return 0, f
	}
	t.packExec(fs.uops)
	if f := t.execStore(&fs.insts[2]); f != nil {
		return 2, f
	}
	return 3, nil
}

// fuseChk executes a bndcl|bndcu check followed by the load or store it
// guards. Same return contract as fuseLoadOpStore.
func (t *Thread) fuseChk(fs *fusedInst) (int, *Fault) {
	if f := t.bndCheck(&fs.insts[0]); f != nil {
		return 0, f
	}
	mem := &fs.insts[1]
	var f *Fault
	if mem.Op == asm.OpLoad {
		f = t.execLoad(mem)
	} else {
		f = t.execStore(mem)
	}
	if f != nil {
		return 1, f
	}
	return 2, nil
}

// cmpFlags executes a cmp constituent (register or immediate form).
func (t *Thread) cmpFlags(ip *asm.Inst) {
	if ip.Op == asm.OpCmpRR {
		t.setCmpFlags(t.Regs[ip.Dst], t.Regs[ip.Src])
	} else {
		t.setCmpFlags(t.Regs[ip.Dst], uint64(ip.Imm))
	}
}

// jccNext resolves a jcc constituent's next PC: the branch target when
// the condition holds, the fall-through PC otherwise.
func (t *Thread) jccNext(ip *asm.Inst, fall uint64) uint64 {
	if t.condTrue(ip.Cond) {
		return uint64(ip.Imm)
	}
	return fall
}

// execLoad executes a load constituent: the exact semantics of the
// OpLoad case in execRun's switch, including the dynamic cache cost.
func (t *Thread) execLoad(ip *asm.Inst) *Fault {
	addr := t.ea(&ip.M, true)
	v, f := t.m.Mem.Read(addr, ip.M.Size)
	if f != nil {
		return f
	}
	t.Regs[ip.Dst] = extend(v, ip.M.Size, ip.M.Signed)
	t.Stats.Loads++
	t.Stats.Cycles += t.memCost(addr)
	return nil
}

// execStore executes a store constituent (the OpStore case).
func (t *Thread) execStore(ip *asm.Inst) *Fault {
	addr := t.ea(&ip.M, true)
	if f := t.m.Mem.Write(addr, ip.M.Size, t.Regs[ip.Src]); f != nil {
		return f
	}
	t.Stats.Stores++
	t.Stats.Cycles += t.memCost(addr)
	return nil
}
