package taint_test

import (
	"strings"
	"testing"

	"confllvm/internal/irgen"
	"confllvm/internal/minic"
	"confllvm/internal/taint"
	"confllvm/internal/types"
)

func infer(t *testing.T, src string, opts taint.Options) (*taint.Assignment, error) {
	t.Helper()
	gen := &minic.QualGen{}
	f, err := minic.Parse("t.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := irgen.Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return taint.Infer(mod, gen.Count(), opts)
}

func TestTransitivePropagation(t *testing.T) {
	// private -> a -> b -> c -> public sink: caught through the chain.
	_, err := infer(t, `
extern void get(private long *out);
extern void put(long v);
void f() {
	long a;
	get(&a);
	long b = a + 1;
	long c = b * 2;
	put(c);
}
`, taint.Options{})
	if err == nil {
		t.Fatal("transitive flow not caught")
	}
}

func TestPublicIntoPrivateIsFine(t *testing.T) {
	if _, err := infer(t, `
extern void sink(private long v);
void f() { sink(42); }
`, taint.Options{}); err != nil {
		t.Fatalf("L ⊑ H must be allowed: %v", err)
	}
}

func TestPointeeInvariance(t *testing.T) {
	// Assigning a pointer-to-private where pointer-to-public is expected
	// must fail even without a dereference (deep invariance).
	_, err := infer(t, `
extern void take_pub(char *p);
void f(private char *s) {
	take_pub(s);
}
`, taint.Options{})
	if err == nil {
		t.Fatal("pointee-qualifier mismatch not caught")
	}
}

func TestBranchWarningsAndStrict(t *testing.T) {
	src := `
extern void get(private long *out);
void f() {
	long a;
	get(&a);
	if (a > 0) { a = 1; }
}
`
	a, err := infer(t, src, taint.Options{})
	if err != nil {
		t.Fatalf("non-strict must accept with a warning: %v", err)
	}
	if len(a.BranchWarnings) == 0 {
		t.Fatal("expected an implicit-flow warning")
	}
	if _, err := infer(t, src, taint.Options{Strict: true}); err == nil {
		t.Fatal("strict mode must reject branch on private")
	}
	if _, err := infer(t, src, taint.Options{Strict: true, AllPrivate: true}); err != nil {
		t.Fatalf("all-private mode has no implicit flows: %v", err)
	}
}

func TestErrorCarriesPosition(t *testing.T) {
	_, err := infer(t, `
extern void get(private long *out);
extern void put(long v);
void f() {
	long a;
	get(&a);
	put(a);
}
`, taint.Options{})
	if err == nil {
		t.Fatal("expected violation")
	}
	if !strings.Contains(err.Error(), "t.c:7") {
		t.Fatalf("error lacks the leaking line: %v", err)
	}
}

func TestAllPrivateAssignment(t *testing.T) {
	a := taint.AllPrivateAssignment()
	if !a.IsPrivate(types.Public) || !a.IsPrivate(types.Qual(3)) {
		t.Fatal("all-private must resolve everything private")
	}
}

// TestPrivateVoidPointerParam is the regression test for the PR 4
// footgun: `extern void free_priv(private void *p);` used to drop the
// qualifier on the void pointee (the parser hardcoded `void` as public),
// so every private pointer passed to it tripped deep pointee invariance
// and callers had to spell the parameter `private char *`. The `private`
// must survive type erasure to void*.
func TestPrivateVoidPointerParam(t *testing.T) {
	if _, err := infer(t, `
extern void free_priv(private void *p);
extern private void *malloc_priv(long size);
void f() {
	private char *s = (private char*)malloc_priv(16);
	free_priv(s);
}
`, taint.Options{}); err != nil {
		t.Fatalf("private pointer into private void * must be allowed: %v", err)
	}
}

// TestPublicIntoPrivateVoidPointerRejected is the dual: a *public*
// pointer handed to a `private void *` parameter is still a pointee-
// qualifier mismatch and must be rejected with the usual diagnostic.
func TestPublicIntoPrivateVoidPointerRejected(t *testing.T) {
	_, err := infer(t, `
extern void free_priv(private void *p);
void f(char *s) {
	free_priv(s);
}
`, taint.Options{})
	if err == nil {
		t.Fatal("public pointee into private void * not caught")
	}
	if !strings.Contains(err.Error(), "free_priv") || !strings.Contains(err.Error(), "pointee") {
		t.Fatalf("diagnostic should name the call and the pointee: %v", err)
	}
}

// TestPlainVoidPointerStaysPublic pins the other half of the fix: an
// unqualified void* keeps its public pointee, so erasing a private
// pointer to plain void* is still a violation.
func TestPlainVoidPointerStaysPublic(t *testing.T) {
	_, err := infer(t, `
extern void free(void *p);
void f(private char *s) {
	free(s);
}
`, taint.Options{})
	if err == nil {
		t.Fatal("private pointee into public void * not caught")
	}
}
