// Package taint implements ConfLLVM's type-qualifier inference (§5.1): it
// generates subtyping constraints over qualifier variables from the IR
// dataflow and solves them with a worklist fixpoint over the two-point
// lattice L ⊑ H. The paper discharges these constraints with an SMT
// solver; on this lattice a least-fixpoint propagation is decision-
// equivalent and runs in linear time.
//
// The inference is deliberately alias-free: declared pointer taints are
// *assumed* here and *enforced* by the runtime region checks inserted by
// codegen — exactly the paper's split between static analysis and runtime
// instrumentation.
package taint

import (
	"fmt"
	"strings"

	"confllvm/internal/ir"
	"confllvm/internal/minic"
	"confllvm/internal/types"
)

// edge is one constraint: From ⊑ To.
type edge struct {
	From, To types.Qual
	Pos      minic.Pos
	Reason   string
}

// Violation is a constraint the solver could not satisfy: private data
// flowing into a public position.
type Violation struct {
	Pos    minic.Pos
	Reason string
}

func (v Violation) String() string {
	if v.Pos.Line == 0 {
		return v.Reason
	}
	return fmt.Sprintf("%s: %s", v.Pos, v.Reason)
}

// TypeError aggregates all inference violations for a module.
type TypeError struct {
	Violations []Violation
}

func (e *TypeError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "taint inference failed with %d violation(s):", len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  private data may leak: ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Assignment is the solved qualifier valuation.
type Assignment struct {
	priv []bool
	// allPrivate short-circuits resolution: every term is private (the
	// paper's SGX mode, where U's entire dataset lives in the private
	// region and the compiler only enforces region confinement).
	allPrivate bool
	// BranchWarnings lists branch-on-private occurrences (implicit-flow
	// warnings; errors in strict mode).
	BranchWarnings []Violation
}

// AllPrivateAssignment returns the valuation of the all-private mode.
func AllPrivateAssignment() *Assignment { return &Assignment{allPrivate: true} }

// Of resolves a qualifier term to a concrete level.
func (a *Assignment) Of(q types.Qual) types.Qual {
	switch {
	case a.allPrivate:
		return types.Private
	case q == types.Private:
		return types.Private
	case q == types.Public:
		return types.Public
	case int(q) < len(a.priv) && a.priv[q]:
		return types.Private
	default:
		return types.Public
	}
}

// IsPrivate reports whether the term resolves to Private.
func (a *Assignment) IsPrivate(q types.Qual) bool { return a.Of(q) == types.Private }

type collector struct {
	edges    []edge
	branches []edge // branch conditions: cond ⊑ L in strict mode
	mod      *ir.Module
}

func (c *collector) sub(from, to types.Qual, pos minic.Pos, reason string) {
	if from == types.Public { // trivially satisfied
		return
	}
	if from == to {
		return
	}
	c.edges = append(c.edges, edge{from, to, pos, reason})
}

func (c *collector) eq(a, b types.Qual, pos minic.Pos, reason string) {
	c.sub(a, b, pos, reason)
	c.sub(b, a, pos, reason)
}

// deepEq equates the qualifiers of the pointee chains of two same-shape
// types, excluding the outermost level. Mutable memory makes deeper levels
// invariant.
func (c *collector) deepEq(a, b *types.Type, pos minic.Pos, reason string) {
	for a != nil && b != nil {
		if a == b {
			return // shared type term: identical qualifiers by construction
		}
		if a.Kind != types.Ptr || b.Kind != types.Ptr {
			return
		}
		a, b = a.Elem, b.Elem
		c.eq(a.Qual, b.Qual, pos, reason+" (pointee)")
		if a.Kind == types.Func && b.Kind == types.Func {
			c.eqSig(a.Sig, b.Sig, pos, reason)
			return
		}
	}
}

// eqSig equates two function signatures' qualifiers (function pointers are
// invariant in their parameter and return taints; the CFI magic-sequence
// check enforces the same thing dynamically).
func (c *collector) eqSig(a, b *types.FuncSig, pos minic.Pos, reason string) {
	n := len(a.Params)
	if len(b.Params) < n {
		n = len(b.Params)
	}
	for i := 0; i < n; i++ {
		c.eq(a.Params[i].Qual, b.Params[i].Qual, pos, reason+" (fn param)")
		c.deepEq(a.Params[i], b.Params[i], pos, reason)
	}
	if a.Ret != nil && b.Ret != nil {
		c.eq(a.Ret.Qual, b.Ret.Qual, pos, reason+" (fn ret)")
		c.deepEq(a.Ret, b.Ret, pos, reason)
	}
}

// subValue constrains a value flow: outermost covariant, deeper invariant.
func (c *collector) subValue(from, to *types.Type, pos minic.Pos, reason string) {
	if from == nil || to == nil {
		return
	}
	c.sub(from.Qual, to.Qual, pos, reason)
	c.deepEq(from, to, pos, reason)
}

func (c *collector) collectFunc(f *ir.Func) {
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			c.collectInst(f, in)
		}
	}
}

func (c *collector) collectInst(f *ir.Func, in *ir.Inst) {
	ty := func(v ir.Value) *types.Type { return f.ValueType(v) }
	switch in.Op {
	case ir.OpConst, ir.OpFConst, ir.OpAddrOf, ir.OpGlobalAddr, ir.OpFuncAddr,
		ir.OpVaStart, ir.OpBr:
		// Sources with fixed or shared qualifiers: nothing to do.

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpICmp, ir.OpFCmp:
		for _, a := range in.Args {
			c.sub(ty(a).Qual, ty(in.Res).Qual, in.Pos, "operand flows into "+in.Op.String()+" result")
		}
		// Pointer arithmetic results share the pointee type term with the
		// pointer operand (constructed that way in irgen).

	case ir.OpCopy:
		c.subValue(ty(in.Args[0]), ty(in.Res), in.Pos, "assignment")

	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpIntToFP, ir.OpFPToInt:
		c.sub(ty(in.Args[0]).Qual, ty(in.Res).Qual, in.Pos, "conversion")

	case ir.OpBitcast:
		// Casts sever pointee linkage by design; only the value's own
		// taint flows.
		c.sub(ty(in.Args[0]).Qual, ty(in.Res).Qual, in.Pos, "cast")

	case ir.OpLoad:
		addrTy := ty(in.Args[0])
		if addrTy.Kind == types.Ptr {
			// The declared pointee and the access type must agree; the
			// runtime check enforces the region.
			c.eq(addrTy.Elem.Qual, in.Ty.Qual, in.Pos, "load pointee")
			c.deepEq(addrTy.Elem, in.Ty, in.Pos, "load pointee")
		}
		c.sub(in.Ty.Qual, ty(in.Res).Qual, in.Pos, "loaded value")
		c.deepEq(in.Ty, ty(in.Res), in.Pos, "loaded value")

	case ir.OpStore:
		addrTy := ty(in.Args[0])
		if addrTy.Kind == types.Ptr {
			c.eq(addrTy.Elem.Qual, in.Ty.Qual, in.Pos, "store pointee")
			c.deepEq(addrTy.Elem, in.Ty, in.Pos, "store pointee")
		}
		c.subValue(ty(in.Args[1]), in.Ty, in.Pos, "stored value")

	case ir.OpCall, ir.OpICall:
		var params []*types.Type
		var ret *types.Type
		var variadic bool
		args := in.Args
		name := in.Callee
		if in.Op == ir.OpCall {
			callee := c.mod.Func(in.Callee)
			if callee == nil {
				return
			}
			params, ret, variadic = callee.Params, callee.Ret, callee.Variadic
		} else {
			fnTy := ty(in.Args[0])
			args = in.Args[1:]
			name = "indirect call"
			var sig *types.FuncSig
			if fnTy.Kind == types.Ptr && fnTy.Elem.Kind == types.Func {
				sig = fnTy.Elem.Sig
			} else if fnTy.Kind == types.Func {
				sig = fnTy.Sig
			} else {
				return
			}
			params, ret, variadic = sig.Params, sig.Ret, sig.Variadic
		}
		for i, a := range args {
			if i < len(params) {
				c.subValue(ty(a), params[i], in.Pos,
					fmt.Sprintf("argument %d of %s", i+1, name))
			} else if variadic {
				// Variadic arguments travel on the public stack.
				c.sub(ty(a).Qual, types.Public, in.Pos,
					fmt.Sprintf("variadic argument %d of %s (varargs are public)", i+1, name))
			}
		}
		if in.Res != ir.NoValue && ret != nil {
			c.sub(ret.Qual, ty(in.Res).Qual, in.Pos, "return value of "+name)
			c.deepEq(ret, ty(in.Res), in.Pos, "return value of "+name)
		}

	case ir.OpRet:
		if len(in.Args) > 0 && f.Ret != nil && f.Ret.Kind != types.Void {
			c.subValue(ty(in.Args[0]), f.Ret, in.Pos, "return from "+f.Name)
		}

	case ir.OpCondBr:
		// Branch on private data is an implicit flow: warning, or error
		// in strict mode.
		c.branches = append(c.branches, edge{ty(in.Args[0]).Qual, types.Public,
			in.Pos, "branch condition in " + f.Name})
	}
}

// Options configures inference.
type Options struct {
	// Strict disallows branching on private data (implicit-flow-free
	// mode; the paper ran all experiments this way).
	Strict bool
	// AllPrivate marks every qualifier variable private (the paper's
	// all-private mode used for the SGX experiment): inference then only
	// confines U to its own memory.
	AllPrivate bool
}

// Infer generates and solves the qualifier constraints for mod. nvars is
// the number of qualifier variables allocated (QualGen.Count()).
func Infer(mod *ir.Module, nvars int32, opts Options) (*Assignment, error) {
	c := &collector{mod: mod}
	for _, f := range mod.Funcs {
		if f.Blocks != nil {
			c.collectFunc(f)
		}
	}

	if opts.AllPrivate {
		// All-private mode (§5.1): every value is private, so explicit
		// and implicit flows are impossible by construction; the
		// compiler's only remaining job is region confinement. No
		// constraint checking is needed.
		return AllPrivateAssignment(), nil
	}
	a := &Assignment{priv: make([]bool, nvars)}

	// Least-fixpoint propagation: seed with Private sources, propagate
	// along edges into variables.
	adj := make(map[int32][]int32) // var -> downstream vars
	var work []int32
	seen := make([]bool, nvars)
	push := func(v int32) {
		if !a.priv[v] {
			a.priv[v] = true
		}
		if !seen[v] {
			seen[v] = true
			work = append(work, v)
		}
	}
	for _, e := range c.edges {
		if e.From.IsVar() && e.To.IsVar() {
			adj[int32(e.From)] = append(adj[int32(e.From)], int32(e.To))
		}
		if e.From == types.Private && e.To.IsVar() {
			push(int32(e.To))
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		seen[v] = false
		for _, w := range adj[v] {
			if !a.priv[w] {
				a.priv[w] = true
				if !seen[w] {
					seen[w] = true
					work = append(work, w)
				}
			}
		}
	}

	// Check upper bounds: any edge whose resolved source is Private and
	// whose target is the constant Public is a violation.
	var viols []Violation
	for _, e := range c.edges {
		if e.To == types.Public && a.IsPrivate(e.From) {
			viols = append(viols, Violation{e.Pos, e.Reason})
		}
	}
	for _, e := range c.branches {
		if a.IsPrivate(e.From) {
			a.BranchWarnings = append(a.BranchWarnings, Violation{e.Pos, e.Reason})
		}
	}
	if opts.Strict && len(a.BranchWarnings) > 0 {
		viols = append(viols, a.BranchWarnings...)
	}
	if len(viols) > 0 {
		return nil, &TypeError{Violations: viols}
	}
	return a, nil
}
