package formal

import "fmt"

// Check implements the type system of Fig. 10: it computes register taints
// by forward dataflow from each function's entry Gamma and validates every
// node's rule. On success it returns the per-node taint environments
// (Γ before each node).
func (p *Program) Check() ([][]Gamma, error) {
	gammas := make([][]Gamma, len(p.Funcs))
	for fi := range p.Funcs {
		g, err := p.checkFunc(fi)
		if err != nil {
			return nil, err
		}
		gammas[fi] = g
	}
	return gammas, nil
}

func (p *Program) checkFunc(fi int) ([]Gamma, error) {
	f := &p.Funcs[fi]
	n := len(f.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("f%d: empty function", fi)
	}
	in := make([]Gamma, n)
	seen := make([]bool, n)
	in[0] = f.Entry
	seen[0] = true
	work := []int{0}

	succAndOut := func(pc int, g Gamma) (succs []int, out Gamma, err error) {
		out = g
		switch cmd := f.Nodes[pc].Cmd.(type) {
		case Ldr:
			// Fig. 10 ldr rule: the runtime assert establishes the
			// region, and the destination adopts the region's level.
			// Accesses to the *low* region additionally need low
			// addresses: a high-dependent index into public memory
			// makes two low-equivalent runs read different public
			// cells, which is itself a flow.
			if cmd.Rgn == L && cmd.Addr.level(g) == H {
				return nil, out, fmt.Errorf("f%d/pc%d: H-dependent address into L region", fi, pc)
			}
			out[cmd.Dst] = cmd.Rgn
			succs = []int{pc + 1}
		case Str:
			// Fig. 10 str rule: Γ(src) ⊑ region level, and low-region
			// stores need low addresses (same argument as Ldr).
			if !g[cmd.Src].Flows(cmd.Rgn) {
				return nil, out, fmt.Errorf("f%d/pc%d: H register r%d stored to L region",
					fi, pc, cmd.Src)
			}
			if cmd.Rgn == L && cmd.Addr.level(g) == H {
				return nil, out, fmt.Errorf("f%d/pc%d: H-dependent address into L region", fi, pc)
			}
			succs = []int{pc + 1}
		case Goto:
			succs = []int{cmd.Target}
		case If:
			// Fig. 10 ifthenelse rule: the condition must be public.
			if cmd.Cond.level(g) == H {
				return nil, out, fmt.Errorf("f%d/pc%d: branch on H data", fi, pc)
			}
			succs = []int{cmd.T, cmd.F}
		case CallU:
			// Fig. 10 call rule: register taints flow into the callee's
			// magic bits; on return, the return register adopts the
			// callee's MRet bit, all other registers are conservatively
			// high (caller-saved discipline).
			if cmd.Fn < 0 || cmd.Fn >= len(p.Funcs) {
				return nil, out, fmt.Errorf("f%d/pc%d: call to unknown f%d", fi, pc, cmd.Fn)
			}
			callee := &p.Funcs[cmd.Fn]
			if !g.Flows(callee.Entry) {
				return nil, out, fmt.Errorf("f%d/pc%d: argument taints exceed callee magic bits", fi, pc)
			}
			for r := range out {
				out[r] = H
			}
			out[0] = callee.RetLevel
			succs = []int{cmd.Ret}
		case Ret:
			// Fig. 10 ret rule: the return register's taint must flow
			// into the function's declared MRet bit.
			if !g[0].Flows(f.RetLevel) {
				return nil, out, fmt.Errorf("f%d/pc%d: H return value at L return taint", fi, pc)
			}
		case Halt:
		default:
			return nil, out, fmt.Errorf("f%d/pc%d: unknown command", fi, pc)
		}
		for _, s := range succs {
			if s < 0 || s >= n {
				return nil, out, fmt.Errorf("f%d/pc%d: jump target %d out of range", fi, pc, s)
			}
		}
		return succs, out, nil
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		succs, out, err := succAndOut(pc, in[pc])
		if err != nil {
			return nil, err
		}
		for _, s := range succs {
			joined := out
			if seen[s] {
				joined = in[s].Join(out)
				if joined == in[s] {
					continue
				}
			}
			in[s] = joined
			seen[s] = true
			work = append(work, s)
		}
	}
	return in, nil
}
