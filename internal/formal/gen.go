package formal

import "math/rand"

// GenProgram builds a random *well-typed-by-construction* program: every
// command is chosen so the Fig. 10 rules hold under the taints computed so
// far. The checker still validates the result (a mismatch is a test bug).
func GenProgram(rng *rand.Rand) *Program {
	nFuncs := 1 + rng.Intn(2)
	p := &Program{}
	for fi := 0; fi < nFuncs; fi++ {
		var entry Gamma
		for r := range entry {
			entry[r] = Level(rng.Intn(2) == 1)
		}
		p.Funcs = append(p.Funcs, Func{Entry: entry, RetLevel: Level(rng.Intn(2) == 1)})
	}
	for fi := range p.Funcs {
		genFunc(p, fi, rng)
	}
	return p
}

// genExpr builds an expression at most the given level (only registers
// whose taint flows into lvl).
func genExpr(g Gamma, lvl Level, rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return Const(rng.Int63n(64))
		}
		// Pick a register with taint ⊑ lvl; fall back to a constant.
		for tries := 0; tries < 8; tries++ {
			r := Reg(rng.Intn(NumRegs))
			if g[r].Flows(lvl) {
				return RegE(r)
			}
		}
		return Const(rng.Int63n(64))
	}
	return Bin{
		K: BinKind(rng.Intn(4)),
		A: genExpr(g, lvl, rng, depth-1),
		B: genExpr(g, lvl, rng, depth-1),
	}
}

func genFunc(p *Program, fi int, rng *rand.Rand) {
	f := &p.Funcs[fi]
	nBlocks := 2 + rng.Intn(3)
	blockLen := 3 + rng.Intn(3)
	// Pre-plan node layout: blocks of straight-line code, each ending in
	// a terminator whose targets are block starts (forward or backward,
	// bounded at runtime by the step budget).
	starts := make([]int, nBlocks)
	total := 0
	for b := range starts {
		starts[b] = total
		total += blockLen + 1
	}
	f.Nodes = make([]Node, total)

	g := f.Entry
	for b := 0; b < nBlocks; b++ {
		pc := starts[b]
		for i := 0; i < blockLen; i++ {
			switch rng.Intn(4) {
			case 0: // load from a random region (L-region loads need L addresses)
				rgn := Level(rng.Intn(2) == 1)
				dst := Reg(rng.Intn(NumRegs))
				f.Nodes[pc].Cmd = Ldr{Dst: dst, Addr: genExpr(g, Level(rgn), rng, 2), Rgn: rgn}
				g[dst] = rgn
			case 1: // store: region must dominate source taint and address
				src := Reg(rng.Intn(NumRegs))
				rgn := g[src] // store H to H, L to L (or raise L to H)
				if rgn == L && rng.Intn(2) == 0 {
					rgn = H
				}
				f.Nodes[pc].Cmd = Str{Src: src, Addr: genExpr(g, Level(rgn), rng, 2), Rgn: rgn}
			case 2: // consume an arbitrary expression with a high store
				src := Reg(rng.Intn(NumRegs))
				f.Nodes[pc].Cmd = Str{Src: src, Addr: genExpr(g, H, rng, 2), Rgn: H}
			case 3: // call another function if argument taints allow
				tgt := rng.Intn(len(p.Funcs))
				callee := &p.Funcs[tgt]
				if tgt != fi && g.Flows(callee.Entry) {
					f.Nodes[pc].Cmd = CallU{Fn: tgt, Ret: pc + 1}
					for r := range g {
						g[r] = H
					}
					g[0] = callee.RetLevel
				} else {
					f.Nodes[pc].Cmd = Goto{Target: pc + 1}
				}
			}
			pc++
		}
		// Terminator.
		last := b == nBlocks-1
		switch {
		case last && fi == 0:
			f.Nodes[pc].Cmd = Halt{}
		case last:
			// Return: r0's taint must flow into RetLevel. If it does
			// not, replace the preceding command with a public load of
			// r0 (a legitimate way to publish a public value).
			if !g[0].Flows(f.RetLevel) {
				f.Nodes[pc-1].Cmd = Ldr{Dst: 0, Addr: Const(0), Rgn: L}
				g[0] = L
			}
			f.Nodes[pc].Cmd = Ret{}
		default:
			// Branch or fall through to a later block (forward edges
			// keep the generated programs terminating).
			next := starts[b+1]
			if rng.Intn(2) == 0 {
				t := starts[b+1+rng.Intn(nBlocks-b-1)]
				f.Nodes[pc].Cmd = If{Cond: genExpr(g, L, rng, 2), T: t, F: next}
			} else {
				f.Nodes[pc].Cmd = Goto{Target: next}
			}
		}
	}
}

// InjectLeak mutates a well-typed program to leak: it rewrites one store
// to copy a high register into the low region. Returns the mutated node's
// location, or false if no high register is in scope anywhere.
func InjectLeak(p *Program, rng *rand.Rand) bool {
	gammas, err := p.Check()
	if err != nil {
		return false
	}
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		for pc := range f.Nodes {
			g := gammas[fi][pc]
			if _, ok := f.Nodes[pc].Cmd.(Str); !ok {
				continue
			}
			for r := 0; r < NumRegs; r++ {
				if g[r] == H {
					f.Nodes[pc].Cmd = Str{Src: Reg(r), Addr: Const(int64(rng.Intn(MemSize))), Rgn: L}
					return true
				}
			}
		}
	}
	return false
}
