// Package formal is an executable rendition of the paper's Appendix A:
// an abstract assembly language (load/store/goto/conditional/call/ret/
// assert), its operational semantics over a two-region memory with
// separate low and high stacks, the flow-sensitive type system of Fig. 10
// (ConfVerify's checks), and a testable statement of the termination-
// insensitive noninterference theorem.
//
// The accompanying property tests (testing/quick) generate random
// well-typed programs and check that two low-equivalent configurations
// stay low-equivalent step by step — and that ill-typed programs are both
// rejected by the checker and actually able to leak.
package formal

import (
	"fmt"
)

// Level is a secrecy level.
type Level bool

const (
	L Level = false // public
	H Level = true  // private
)

func (l Level) String() string {
	if l == H {
		return "H"
	}
	return "L"
}

// Flows reports l ⊑ m.
func (l Level) Flows(m Level) bool { return !bool(l) || bool(m) }

// Join returns l ⊔ m.
func (l Level) Join(m Level) Level { return l || m }

// NumRegs is the machine's register count.
const NumRegs = 8

// Reg is a register id.
type Reg int

// Gamma is a register taint environment.
type Gamma [NumRegs]Level

// Flows reports pointwise g ⊑ o.
func (g Gamma) Flows(o Gamma) bool {
	for i := range g {
		if !g[i].Flows(o[i]) {
			return false
		}
	}
	return true
}

// Join returns the pointwise join.
func (g Gamma) Join(o Gamma) Gamma {
	var r Gamma
	for i := range g {
		r[i] = g[i].Join(o[i])
	}
	return r
}

// ---- Expressions ----

// Expr is an arithmetic expression over registers and constants.
type Expr interface {
	eval(rho *[NumRegs]int64) int64
	level(g Gamma) Level
	String() string
}

// Const is a literal.
type Const int64

func (c Const) eval(*[NumRegs]int64) int64 { return int64(c) }
func (c Const) level(Gamma) Level          { return L }
func (c Const) String() string             { return fmt.Sprintf("%d", int64(c)) }

// RegE reads a register.
type RegE Reg

func (r RegE) eval(rho *[NumRegs]int64) int64 { return rho[r] }
func (r RegE) level(g Gamma) Level            { return g[r] }
func (r RegE) String() string                 { return fmt.Sprintf("r%d", int(r)) }

// BinOp kinds.
type BinKind uint8

const (
	BAdd BinKind = iota
	BSub
	BMul
	BXor
)

// Bin applies a total binary operator.
type Bin struct {
	K    BinKind
	A, B Expr
}

func (b Bin) eval(rho *[NumRegs]int64) int64 {
	x, y := b.A.eval(rho), b.B.eval(rho)
	switch b.K {
	case BAdd:
		return x + y
	case BSub:
		return x - y
	case BMul:
		return x * y
	}
	return x ^ y
}

func (b Bin) level(g Gamma) Level { return b.A.level(g).Join(b.B.level(g)) }

func (b Bin) String() string {
	ops := [...]string{"+", "-", "*", "^"}
	return fmt.Sprintf("(%s %s %s)", b.A, ops[b.K], b.B)
}

// ---- Commands (Table 1) ----

// Cmd is one abstract instruction.
type Cmd interface{ cmd() }

// Ldr loads reg from region Rgn at address Addr. The runtime assert
// (addr ∈ Dom(µ_rgn)) of Fig. 10's rule is built in: the semantics maps
// the address into the region's domain, so the region discipline always
// holds — which is exactly what ConfLLVM's range checks establish.
type Ldr struct {
	Dst  Reg
	Addr Expr
	Rgn  Level
}

// Str stores reg into region Rgn at Addr.
type Str struct {
	Src  Reg
	Addr Expr
	Rgn  Level
}

// Goto jumps to a node.
type Goto struct{ Target int }

// If branches on e: Fig. 10 requires level(e) ⊑ L.
type If struct {
	Cond Expr
	T, F int
}

// CallU calls an untrusted function: arguments are the registers as-is;
// the callee's entry taints are its magic bits. The return address goes
// on the low stack (as in the paper's model).
type CallU struct {
	Fn  int // function index
	Ret int // return node in the caller
}

// Ret returns to the address on top of the low stack.
type Ret struct{}

// Halt stops execution (models the program's final node).
type Halt struct{}

func (Ldr) cmd()   {}
func (Str) cmd()   {}
func (Goto) cmd()  {}
func (If) cmd()    {}
func (CallU) cmd() {}
func (Ret) cmd()   {}
func (Halt) cmd()  {}

// Node is a CFG node ⟨pc, C, Γ, Γ'⟩; Γs are computed by the checker.
type Node struct {
	Cmd Cmd
}

// Func is an untrusted function: nodes indexed by pc, with entry taints
// (the MCall magic bits) and a return-register taint (the MRet bit).
type Func struct {
	Nodes    []Node
	Entry    Gamma // taints at entry (magic word)
	RetLevel Level // taint of r0 at return sites
}

// Program is a CFG: function 0 is the designated entry.
type Program struct {
	Funcs []Func
}

// MemSize is the number of cells in each region.
const MemSize = 16

// Config is a machine configuration ⟨µ, ρ, [σH:σL], pc⟩. The trusted
// memory ν is omitted: the model has no T calls (Assumption 1 covers
// them).
type Config struct {
	MuL, MuH [MemSize]int64
	Rho      [NumRegs]int64
	StackL   []frame // low stack: return addresses (public)
	Fn       int     // current function
	PC       int
	Halted   bool
}

type frame struct {
	fn int
	pc int
}

// Step executes one command. It returns an error only for genuinely stuck
// configurations (which well-typed programs never reach).
func (p *Program) Step(c *Config) error {
	if c.Halted {
		return nil
	}
	f := &p.Funcs[c.Fn]
	if c.PC < 0 || c.PC >= len(f.Nodes) {
		return fmt.Errorf("pc %d out of range", c.PC)
	}
	switch cmd := f.Nodes[c.PC].Cmd.(type) {
	case Ldr:
		addr := mask(cmd.Addr.eval(&c.Rho))
		if cmd.Rgn == H {
			c.Rho[cmd.Dst] = c.MuH[addr]
		} else {
			c.Rho[cmd.Dst] = c.MuL[addr]
		}
		c.PC++
	case Str:
		addr := mask(cmd.Addr.eval(&c.Rho))
		if cmd.Rgn == H {
			c.MuH[addr] = c.Rho[cmd.Src]
		} else {
			c.MuL[addr] = c.Rho[cmd.Src]
		}
		c.PC++
	case Goto:
		c.PC = cmd.Target
	case If:
		if cmd.Cond.eval(&c.Rho) != 0 {
			c.PC = cmd.T
		} else {
			c.PC = cmd.F
		}
	case CallU:
		c.StackL = append(c.StackL, frame{c.Fn, cmd.Ret})
		c.Fn = cmd.Fn
		c.PC = 0
	case Ret:
		if len(c.StackL) == 0 {
			c.Halted = true
			return nil
		}
		fr := c.StackL[len(c.StackL)-1]
		c.StackL = c.StackL[:len(c.StackL)-1]
		c.Fn, c.PC = fr.fn, fr.pc
	case Halt:
		c.Halted = true
	default:
		return fmt.Errorf("unknown command %T", cmd)
	}
	return nil
}

func mask(v int64) int64 {
	v %= MemSize
	if v < 0 {
		v += MemSize
	}
	return v
}

// LowEquiv is the =L relation: same pc, same low stack, same low memory,
// same values in registers that are low at the current node.
func (p *Program) LowEquiv(a, b *Config, gammas [][]Gamma) bool {
	if a.Fn != b.Fn || a.PC != b.PC || a.Halted != b.Halted {
		return false
	}
	if len(a.StackL) != len(b.StackL) {
		return false
	}
	for i := range a.StackL {
		if a.StackL[i] != b.StackL[i] {
			return false
		}
	}
	if a.MuL != b.MuL {
		return false
	}
	if a.PC < len(gammas[a.Fn]) {
		g := gammas[a.Fn][a.PC]
		for r := 0; r < NumRegs; r++ {
			if g[r] == L && a.Rho[r] != b.Rho[r] {
				return false
			}
		}
	}
	return true
}
