package formal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genWellTyped generates a program and retries until the checker accepts
// it (joins at merge points can exceed the generator's linear taint
// tracking, so a small fraction of drafts is rejected).
func genWellTyped(rng *rand.Rand, t *testing.T) (*Program, [][]Gamma) {
	for tries := 0; tries < 100; tries++ {
		p := GenProgram(rng)
		if g, err := p.Check(); err == nil {
			return p, g
		}
	}
	t.Fatal("could not generate a well-typed program in 100 tries")
	return nil, nil
}

func initPair(p *Program, rng *rand.Rand) (Config, Config) {
	var a, b Config
	for i := 0; i < MemSize; i++ {
		a.MuL[i] = rng.Int63n(1000)
		b.MuL[i] = a.MuL[i] // low memories agree
		a.MuH[i] = rng.Int63n(1000)
		b.MuH[i] = rng.Int63n(1000) // high memories differ
	}
	entry := p.Funcs[0].Entry
	for r := 0; r < NumRegs; r++ {
		a.Rho[r] = rng.Int63n(1000)
		if entry[r] == L {
			b.Rho[r] = a.Rho[r]
		} else {
			b.Rho[r] = rng.Int63n(1000)
		}
	}
	return a, b
}

// lockstep runs both configurations and checks low-equivalence after
// every step (the stepwise form of Theorem 1: public control flow forces
// the two runs to move in lockstep).
func lockstep(t *testing.T, p *Program, gammas [][]Gamma, a, b Config) bool {
	const budget = 5000
	for step := 0; step < budget; step++ {
		if !p.LowEquiv(&a, &b, gammas) {
			if t != nil {
				t.Logf("low-equivalence broken at step %d: f%d/pc%d", step, a.Fn, a.PC)
			}
			return false
		}
		if a.Halted {
			return true
		}
		if err := p.Step(&a); err != nil {
			if t != nil {
				t.Logf("stuck: %v", err)
			}
			return false
		}
		if err := p.Step(&b); err != nil {
			return false
		}
	}
	return true // non-termination within budget: vacuously fine
}

func TestCheckerAcceptsGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	accepted := 0
	for i := 0; i < 200; i++ {
		p := GenProgram(rng)
		if _, err := p.Check(); err == nil {
			accepted++
		}
	}
	if accepted < 150 {
		t.Fatalf("generator quality degraded: only %d/200 drafts well-typed", accepted)
	}
}

// TestNoninterference is the executable Theorem 1: every well-typed
// program preserves low-equivalence.
func TestNoninterference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, gammas := genWellTyped(rng, t)
		a, b := initPair(p, rng)
		return lockstep(t, p, gammas, a, b)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCheckerRejectsLeaks: injecting an H->L store into a well-typed
// program must always be caught.
func TestCheckerRejectsLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rejected, injected := 0, 0
	for i := 0; i < 200; i++ {
		p, _ := genWellTyped(rng, t)
		if !InjectLeak(p, rng) {
			continue
		}
		injected++
		if _, err := p.Check(); err != nil {
			rejected++
		}
	}
	if injected == 0 {
		t.Fatal("no leak could be injected")
	}
	if rejected != injected {
		t.Fatalf("checker missed leaks: rejected %d of %d", rejected, injected)
	}
}

// TestLeakIsReal: at least some rejected programs genuinely violate
// noninterference when executed — the checker is not vacuous.
func TestLeakIsReal(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	broke := 0
	for i := 0; i < 300 && broke == 0; i++ {
		p, gammas := genWellTyped(rng, t)
		if !InjectLeak(p, rng) {
			continue
		}
		// Run the *leaky* program with the old gammas: low-equivalence
		// should break for some inputs.
		for trial := 0; trial < 20; trial++ {
			a, b := initPair(p, rng)
			if !lockstep(nil, p, gammas, a, b) {
				broke++
				break
			}
		}
	}
	if broke == 0 {
		t.Fatal("no injected leak ever manifested; the NI test has no teeth")
	}
}

// ---- deterministic semantics unit tests ----

func TestSemanticsStraightLine(t *testing.T) {
	p := &Program{Funcs: []Func{{
		Nodes: []Node{
			{Cmd: Ldr{Dst: 1, Addr: Const(3), Rgn: L}},
			{Cmd: Str{Src: 1, Addr: Const(5), Rgn: L}},
			{Cmd: Halt{}},
		},
	}}}
	if _, err := p.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	var c Config
	c.MuL[3] = 42
	for !c.Halted {
		if err := p.Step(&c); err != nil {
			t.Fatal(err)
		}
	}
	if c.MuL[5] != 42 {
		t.Fatalf("MuL[5] = %d, want 42", c.MuL[5])
	}
}

func TestSemanticsCallRet(t *testing.T) {
	// f0: call f1; halt.    f1: load r0 from L; ret.
	p := &Program{Funcs: []Func{
		{Nodes: []Node{
			{Cmd: CallU{Fn: 1, Ret: 1}},
			{Cmd: Str{Src: 0, Addr: Const(1), Rgn: L}},
			{Cmd: Halt{}},
		}},
		{Nodes: []Node{
			{Cmd: Ldr{Dst: 0, Addr: Const(2), Rgn: L}},
			{Cmd: Ret{}},
		}, RetLevel: L},
	}}
	if _, err := p.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	var c Config
	c.MuL[2] = 77
	for !c.Halted {
		if err := p.Step(&c); err != nil {
			t.Fatal(err)
		}
	}
	if c.MuL[1] != 77 {
		t.Fatalf("MuL[1] = %d, want 77", c.MuL[1])
	}
}

func TestCheckRejectsBranchOnPrivate(t *testing.T) {
	p := &Program{Funcs: []Func{{
		Nodes: []Node{
			{Cmd: Ldr{Dst: 2, Addr: Const(0), Rgn: H}},
			{Cmd: If{Cond: RegE(2), T: 2, F: 2}},
			{Cmd: Halt{}},
		},
	}}}
	if _, err := p.Check(); err == nil {
		t.Fatal("branch on private data must be rejected")
	}
}

func TestCheckRejectsPrivateStoreToPublic(t *testing.T) {
	p := &Program{Funcs: []Func{{
		Nodes: []Node{
			{Cmd: Ldr{Dst: 3, Addr: Const(0), Rgn: H}},
			{Cmd: Str{Src: 3, Addr: Const(0), Rgn: L}},
			{Cmd: Halt{}},
		},
	}}}
	if _, err := p.Check(); err == nil {
		t.Fatal("H->L store must be rejected")
	}
}
