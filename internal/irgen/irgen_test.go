package irgen

import (
	"strings"
	"testing"

	"confllvm/internal/minic"
	"confllvm/internal/opt"
	"confllvm/internal/taint"
	"confllvm/internal/types"
)

func TestGenSimple(t *testing.T) {
	gen := &minic.QualGen{}
	f, err := minic.Parse("t.c", `
int add(int a, int b) { return a + b; }
int main() { return add(2, 3); }
`, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	if mod.Func("add") == nil || mod.Func("main") == nil {
		t.Fatal("functions missing")
	}
	if _, err := taint.Infer(mod, gen.Count(), taint.Options{Strict: true}); err != nil {
		t.Fatalf("taint: %v", err)
	}
}

func TestGenWebServerExample(t *testing.T) {
	// The paper's Figure 1 fragment (with the send-password bug removed).
	gen := &minic.QualGen{}
	src := `
#define SIZE 64
extern int recv(int fd, char *buf, int buf_size);
extern int send(int fd, char *buf, int buf_size);
extern void decrypt(char *ciphertxt, private char *data);
extern void read_passwd(char *uname, private char *pass, int size);
extern void read_file(char *fname, char *out, int size);

int authenticate(char *uname, private char *upass, private char *pass) {
	int i;
	for (i = 0; i < SIZE; i++) {
		if (upass[i] != pass[i]) return 0;
		if (upass[i] == 0) break;
	}
	return 1;
}

void handleReq(char *uname, private char *upasswd, char *fname,
               char *out, int out_size) {
	char passwd[SIZE];
	char fcontents[SIZE];
	read_passwd(uname, passwd, SIZE);
	if (!authenticate(uname, upasswd, passwd)) {
		return;
	}
	read_file(fname, fcontents, SIZE);
	int i;
	for (i = 0; i < out_size; i++) out[i] = fcontents[i];
}
`
	f, err := minic.Parse("web.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	opt.Run(mod, opt.ConfLLVM())
	// Not strict: authenticate branches on private data (the password
	// comparison), which is intentional declassification-free auth logic
	// in this toy; strict mode must flag it.
	a, err := taint.Infer(mod, gen.Count(), taint.Options{Strict: false})
	if err != nil {
		t.Fatalf("taint: %v", err)
	}
	if len(a.BranchWarnings) == 0 {
		t.Error("expected implicit-flow warnings from authenticate")
	}
	// passwd must have been inferred private: its alloca type qual
	// resolves to Private.
	h := mod.Func("handleReq")
	found := false
	for _, al := range h.Allocas {
		if al.Name == "passwd" {
			found = true
			if !a.IsPrivate(al.Type.Qual) {
				t.Errorf("passwd should be inferred private, got %s", a.Of(al.Type.Qual))
			}
		}
		if al.Name == "fcontents" {
			if a.IsPrivate(al.Type.Qual) {
				t.Errorf("fcontents should be public")
			}
		}
	}
	if !found {
		t.Fatal("passwd alloca not found")
	}
}

func TestGenLeakDetected(t *testing.T) {
	// The paper's line-10 bug: sending the private password to a public
	// sink must be a compile-time taint error.
	gen := &minic.QualGen{}
	src := `
extern int send(int fd, char *buf, int buf_size);
extern void read_passwd(char *uname, private char *pass, int size);

void leak(char *uname) {
	char passwd[32];
	read_passwd(uname, passwd, 32);
	send(1, passwd, 32);
}
`
	f, err := minic.Parse("leak.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	if _, err := taint.Infer(mod, gen.Count(), taint.Options{}); err == nil {
		t.Fatal("expected a taint violation for the password leak")
	}
}

func TestGenCastHidesLeak(t *testing.T) {
	// Pointer casts sever the static linkage (Minizip scenario): the
	// leak must NOT be caught statically (runtime checks catch it).
	gen := &minic.QualGen{}
	src := `
extern int send(int fd, char *buf, int buf_size);
extern void read_passwd(char *uname, private char *pass, int size);

void leak(char *uname) {
	char passwd[32];
	read_passwd(uname, passwd, 32);
	send(1, (char*)(void*)passwd, 32);
}
`
	f, err := minic.Parse("cast.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	if _, err := taint.Infer(mod, gen.Count(), taint.Options{}); err != nil {
		t.Fatalf("cast should hide the leak statically, got: %v", err)
	}
}

func TestStructQualInheritance(t *testing.T) {
	gen := &minic.QualGen{}
	src := `
struct pair { int a; int b; };
extern void sink_pub(int x);
extern void src_priv(private int *out);

void f() {
	private struct pair p;
	src_priv(&p.a);
	sink_pub(p.b);
}
`
	f, err := minic.Parse("st.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	// p is private, so p.b is private and passing it to a public sink
	// must fail.
	if _, err := taint.Infer(mod, gen.Count(), taint.Options{}); err == nil {
		t.Fatal("expected violation: field of private struct flows to public sink")
	}
}

func TestFunctionPointers(t *testing.T) {
	gen := &minic.QualGen{}
	src := `
int h0(int x) { return x + 1; }
int h1(int x) { return x * 2; }
int (*table[2])(int) = { h0, h1 };

int dispatch(int i, int v) {
	return table[i](v);
}
`
	f, err := minic.Parse("fp.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	g := mod.Global("table")
	if g == nil {
		t.Fatal("table global missing")
	}
	if len(g.Relocs) != 2 {
		t.Fatalf("want 2 relocs in table, got %d", len(g.Relocs))
	}
	if _, err := taint.Infer(mod, gen.Count(), taint.Options{Strict: true}); err != nil {
		t.Fatalf("taint: %v", err)
	}
}

func TestVarargs(t *testing.T) {
	gen := &minic.QualGen{}
	src := `
int sum(int n, ...) {
	char *ap = __va_start();
	int total = 0;
	int i;
	for (i = 0; i < n; i++) {
		total += (int)__va_arg(ap, long);
	}
	return total;
}
int main() { return sum(3, 1, 2, 3); }
`
	f, err := minic.Parse("va.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	if !mod.Func("sum").Variadic {
		t.Fatal("sum should be variadic")
	}
	if _, err := taint.Infer(mod, gen.Count(), taint.Options{Strict: true}); err != nil {
		t.Fatalf("taint: %v", err)
	}
}

func TestPrivateVarargIsError(t *testing.T) {
	gen := &minic.QualGen{}
	src := `
extern void get_secret(private int *out);
int logf(char *fmt, ...) { return 0; }
void f() {
	int s;
	get_secret(&s);
	logf("v=%d", s);
}
`
	f, err := minic.Parse("pv.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Gen([]*minic.File{f}, gen)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	if _, err = taint.Infer(mod, gen.Count(), taint.Options{}); err == nil {
		t.Fatal("expected violation: private value passed as vararg")
	}
	if !strings.Contains(err.Error(), "variadic") {
		t.Fatalf("unexpected error: %v", err)
	}
}

var _ = types.Public
