package irgen

import (
	"confllvm/internal/ir"
	"confllvm/internal/minic"
	"confllvm/internal/types"
)

// ---- Statements ----

func (g *generator) genBlock(b *minic.Block) {
	g.pushScope()
	for _, s := range b.Stmts {
		g.genStmt(s)
	}
	g.popScope()
}

func (g *generator) genStmt(s minic.Stmt) {
	switch x := s.(type) {
	case *minic.Block:
		g.genBlock(x)
	case *minic.Empty:
	case *minic.DeclStmt:
		for _, d := range x.Decls {
			g.genLocalDecl(d)
		}
	case *minic.ExprStmt:
		g.genExpr(x.X)
	case *minic.If:
		cond, _ := g.genExpr(x.Cond)
		cond = g.truthValue(cond, x.Cond)
		thenB := g.fn.NewBlock()
		var elseB *ir.Block
		exitB := g.fn.NewBlock()
		elseID := exitB.ID
		if x.Else != nil {
			elseB = g.fn.NewBlock()
			elseID = elseB.ID
		}
		g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{cond}, Blk: thenB.ID, Blk2: elseID})
		g.startBlock(thenB)
		g.genStmt(x.Then)
		g.branchTo(exitB.ID)
		if elseB != nil {
			g.startBlock(elseB)
			g.genStmt(x.Else)
			g.branchTo(exitB.ID)
		}
		g.startBlock(exitB)
	case *minic.While:
		head := g.fn.NewBlock()
		body := g.fn.NewBlock()
		exit := g.fn.NewBlock()
		g.branchTo(head.ID)
		g.startBlock(head)
		cond, _ := g.genExpr(x.Cond)
		cond = g.truthValue(cond, x.Cond)
		g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{cond}, Blk: body.ID, Blk2: exit.ID})
		g.breakBlk = append(g.breakBlk, exit.ID)
		g.contBlk = append(g.contBlk, head.ID)
		g.startBlock(body)
		g.genStmt(x.Body)
		g.branchTo(head.ID)
		g.breakBlk = g.breakBlk[:len(g.breakBlk)-1]
		g.contBlk = g.contBlk[:len(g.contBlk)-1]
		g.startBlock(exit)
	case *minic.DoWhile:
		body := g.fn.NewBlock()
		check := g.fn.NewBlock()
		exit := g.fn.NewBlock()
		g.branchTo(body.ID)
		g.breakBlk = append(g.breakBlk, exit.ID)
		g.contBlk = append(g.contBlk, check.ID)
		g.startBlock(body)
		g.genStmt(x.Body)
		g.branchTo(check.ID)
		g.breakBlk = g.breakBlk[:len(g.breakBlk)-1]
		g.contBlk = g.contBlk[:len(g.contBlk)-1]
		g.startBlock(check)
		cond, _ := g.genExpr(x.Cond)
		cond = g.truthValue(cond, x.Cond)
		g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{cond}, Blk: body.ID, Blk2: exit.ID})
		g.startBlock(exit)
	case *minic.For:
		g.pushScope()
		if x.Init != nil {
			g.genStmt(x.Init)
		}
		head := g.fn.NewBlock()
		body := g.fn.NewBlock()
		post := g.fn.NewBlock()
		exit := g.fn.NewBlock()
		g.branchTo(head.ID)
		g.startBlock(head)
		if x.Cond != nil {
			cond, _ := g.genExpr(x.Cond)
			cond = g.truthValue(cond, x.Cond)
			g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{cond}, Blk: body.ID, Blk2: exit.ID})
		} else {
			g.branchTo(body.ID)
		}
		g.breakBlk = append(g.breakBlk, exit.ID)
		g.contBlk = append(g.contBlk, post.ID)
		g.startBlock(body)
		g.genStmt(x.Body)
		g.branchTo(post.ID)
		g.breakBlk = g.breakBlk[:len(g.breakBlk)-1]
		g.contBlk = g.contBlk[:len(g.contBlk)-1]
		g.startBlock(post)
		if x.Post != nil {
			g.genExpr(x.Post)
		}
		g.branchTo(head.ID)
		g.startBlock(exit)
		g.popScope()
	case *minic.Return:
		if x.X == nil {
			g.emit(&ir.Inst{Op: ir.OpRet})
			return
		}
		v, t := g.genExpr(x.X)
		v = g.convert(v, t, g.fn.Ret, x.Pos)
		g.emit(&ir.Inst{Op: ir.OpRet, Args: []ir.Value{v}})
	case *minic.Break:
		if len(g.breakBlk) == 0 {
			g.errorf(x.Pos, "break outside loop")
			return
		}
		g.branchTo(g.breakBlk[len(g.breakBlk)-1])
	case *minic.Continue:
		if len(g.contBlk) == 0 {
			g.errorf(x.Pos, "continue outside loop")
			return
		}
		g.branchTo(g.contBlk[len(g.contBlk)-1])
	}
}

func (g *generator) genLocalDecl(d *minic.VarDecl) {
	t := d.Type
	needMem := g.addrTaken[d.Name] || t.Kind == types.Array || t.IsRecord()
	if needMem {
		a := g.newAlloca(d.Name, t)
		l := &local{alloca: a, ty: t}
		g.define(d.Name, l)
		switch {
		case d.StrVal != nil:
			if t.Kind != types.Array {
				g.errorf(d.Pos, "string initializer requires a char array")
				return
			}
			base := g.allocaAddr(a)
			byteTy := t.Elem
			for i := 0; i < len(*d.StrVal)+1 && i < t.Len; i++ {
				var c byte
				if i < len(*d.StrVal) {
					c = (*d.StrVal)[i]
				}
				cv := g.constInt(int64(c), byteTy)
				off := g.constInt(int64(i), longType)
				addr := g.emitV(&ir.Inst{Op: ir.OpAdd, Args: []ir.Value{base, off},
					Res: g.fn.NewValue(g.fn.ValueType(base))})
				g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{addr, cv}, Ty: byteTy})
			}
		case d.Inits != nil:
			if t.Kind != types.Array {
				g.errorf(d.Pos, "brace initializer requires an array")
				return
			}
			base := g.allocaAddr(a)
			es := t.Elem.SizeOf()
			for i, e := range d.Inits {
				v, vt := g.genExpr(e)
				v = g.convert(v, vt, t.Elem, d.Pos)
				off := g.constInt(int64(i*es), longType)
				addr := g.emitV(&ir.Inst{Op: ir.OpAdd, Args: []ir.Value{base, off},
					Res: g.fn.NewValue(g.fn.ValueType(base))})
				g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{addr, v}, Ty: t.Elem})
			}
		case d.Init != nil:
			v, vt := g.genExpr(d.Init)
			v = g.convert(v, vt, t, d.Pos)
			addr := g.allocaAddr(a)
			g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{addr, v}, Ty: t})
		}
		return
	}
	// Promoted scalar local.
	v := g.fn.NewValue(t)
	g.define(d.Name, &local{vreg: v, ty: t})
	if d.Init != nil {
		iv, it := g.genExpr(d.Init)
		iv = g.convert(iv, it, t, d.Pos)
		g.emit(&ir.Inst{Op: ir.OpCopy, Args: []ir.Value{iv}, Res: v})
	} else {
		g.emit(&ir.Inst{Op: ir.OpConst, Imm: 0, Ty: t, Res: v})
	}
}

func (g *generator) allocaAddr(a *ir.Alloca) ir.Value {
	pt := types.MakePtr(a.Type, g.gen.Fresh())
	return g.emitV(&ir.Inst{Op: ir.OpAddrOf, A: a, Res: g.fn.NewValue(pt)})
}

// ---- Expressions ----

// genExpr lowers an rvalue expression and returns its value and type.
// Array-typed expressions decay to element pointers.
func (g *generator) genExpr(e minic.Expr) (ir.Value, *types.Type) {
	switch x := e.(type) {
	case *minic.IntLit:
		t := intType
		if x.Val > 0x7fffffff || x.Val < -0x80000000 {
			t = longType
		}
		return g.constInt(x.Val, t), t
	case *minic.FloatLit:
		t := types.MakeFloat(types.Public)
		return g.emitV(&ir.Inst{Op: ir.OpFConst, FImm: x.Val, Ty: t,
			Res: g.fn.NewValue(t)}), t
	case *minic.StrLit:
		qual := g.gen.Fresh()
		name := g.internString(x.Val, qual)
		elem := types.MakeInt(1, true, qual)
		pt := types.MakePtr(elem, g.gen.Fresh())
		return g.emitV(&ir.Inst{Op: ir.OpGlobalAddr, Global: name,
			Res: g.fn.NewValue(pt)}), pt
	case *minic.Ident:
		return g.genIdent(x)
	case *minic.SizeofType:
		return g.constInt(int64(x.Type.SizeOf()), longType), longType
	case *minic.Unary:
		return g.genUnary(x)
	case *minic.Binary:
		return g.genBinary(x)
	case *minic.Assign:
		return g.genAssign(x)
	case *minic.Cond:
		return g.genCond(x)
	case *minic.Call:
		return g.genCall(x)
	case *minic.Index, *minic.Member:
		addr, elem, ok := g.genAddr(e)
		if !ok {
			return g.constInt(0, intType), intType
		}
		return g.loadFrom(addr, elem)
	case *minic.Cast:
		v, t := g.genExpr(x.X)
		return g.convertExplicit(v, t, x.Type, x.Pos), x.Type
	case *minic.VaStart:
		pt := types.MakePtr(types.MakeInt(1, true, types.Public), types.Public)
		return g.emitV(&ir.Inst{Op: ir.OpVaStart, Res: g.fn.NewValue(pt)}), pt
	case *minic.VaArg:
		return g.genVaArg(x)
	}
	g.errorf(e.Position(), "unsupported expression")
	return g.constInt(0, intType), intType
}

func (g *generator) genIdent(x *minic.Ident) (ir.Value, *types.Type) {
	if l := g.lookup(x.Name); l != nil {
		if l.alloca == nil {
			return l.vreg, l.ty
		}
		addr := g.allocaAddr(l.alloca)
		return g.decayOrLoad(addr, l.ty)
	}
	if glob := g.mod.Global(x.Name); glob != nil {
		pt := types.MakePtr(glob.Type, g.gen.Fresh())
		addr := g.emitV(&ir.Inst{Op: ir.OpGlobalAddr, Global: x.Name,
			Res: g.fn.NewValue(pt)})
		return g.decayOrLoad(addr, glob.Type)
	}
	if fn := g.mod.Func(x.Name); fn != nil {
		sig := &types.FuncSig{Params: fn.Params, Ret: fn.Ret, Variadic: fn.Variadic}
		ft := types.MakeFunc(sig)
		pt := types.MakePtr(ft, types.Public)
		return g.emitV(&ir.Inst{Op: ir.OpFuncAddr, Global: x.Name,
			Res: g.fn.NewValue(pt)}), pt
	}
	g.errorf(x.Pos, "undefined identifier %q", x.Name)
	return g.constInt(0, intType), intType
}

// decayOrLoad converts an addressed object to an rvalue: arrays decay to
// element pointers, records stay as addresses (used via members), scalars
// are loaded.
func (g *generator) decayOrLoad(addr ir.Value, objTy *types.Type) (ir.Value, *types.Type) {
	switch objTy.Kind {
	case types.Array:
		pt := types.MakePtr(objTy.Elem, g.gen.Fresh())
		return g.emitV(&ir.Inst{Op: ir.OpBitcast, Args: []ir.Value{addr}, Ty: pt,
			Res: g.fn.NewValue(pt)}), pt
	case types.Struct, types.Union:
		return addr, objTy
	}
	return g.loadFrom(addr, objTy)
}

func (g *generator) loadFrom(addr ir.Value, elem *types.Type) (ir.Value, *types.Type) {
	if elem.Kind == types.Array || elem.IsRecord() {
		return g.decayOrLoad(addr, elem)
	}
	rt := elem.WithQual(g.gen.Fresh())
	return g.emitV(&ir.Inst{Op: ir.OpLoad, Args: []ir.Value{addr}, Ty: elem,
		Res: g.fn.NewValue(rt)}), rt
}

func (g *generator) genUnary(x *minic.Unary) (ir.Value, *types.Type) {
	switch x.Op {
	case "-":
		v, t := g.genExpr(x.X)
		if t.Kind == types.Float {
			z := g.emitV(&ir.Inst{Op: ir.OpFConst, FImm: 0, Ty: t, Res: g.fn.NewValue(t)})
			rt := t.WithQual(g.gen.Fresh())
			return g.emitV(&ir.Inst{Op: ir.OpFSub, Args: []ir.Value{z, v},
				Res: g.fn.NewValue(rt)}), rt
		}
		z := g.constInt(0, t)
		rt := t.WithQual(g.gen.Fresh())
		return g.emitV(&ir.Inst{Op: ir.OpSub, Args: []ir.Value{z, v},
			Res: g.fn.NewValue(rt)}), rt
	case "~":
		v, t := g.genExpr(x.X)
		m := g.constInt(-1, t)
		rt := t.WithQual(g.gen.Fresh())
		return g.emitV(&ir.Inst{Op: ir.OpXor, Args: []ir.Value{v, m},
			Res: g.fn.NewValue(rt)}), rt
	case "!":
		v, t := g.genExpr(x.X)
		z := g.constInt(0, t)
		rt := intType.WithQual(g.gen.Fresh())
		return g.emitV(&ir.Inst{Op: ir.OpICmp, Pred: ir.PredEQ,
			Args: []ir.Value{v, z}, Res: g.fn.NewValue(rt)}), rt
	case "*":
		v, t := g.genExpr(x.X)
		if t.Kind != types.Ptr {
			g.errorf(x.Pos, "cannot dereference non-pointer type %s", t)
			return g.constInt(0, intType), intType
		}
		return g.loadFrom(v, t.Elem)
	case "&":
		addr, elem, ok := g.genAddr(x.X)
		if !ok {
			return g.constInt(0, intType), intType
		}
		pt := types.MakePtr(elem, g.gen.Fresh())
		g.fn.SetValueType(addr, pt)
		return addr, pt
	case "++", "--":
		addr, elem, promoted, lv := g.lvalue(x.X)
		if elem == nil {
			return g.constInt(0, intType), intType
		}
		var old ir.Value
		if promoted {
			old = lv.vreg
		} else {
			old, _ = g.loadFrom(addr, elem)
		}
		delta := int64(1)
		if elem.Kind == types.Ptr {
			delta = int64(elem.Elem.SizeOf())
		}
		if x.Op == "--" {
			delta = -delta
		}
		d := g.constInt(delta, longType)
		nt := elem.WithQual(g.gen.Fresh())
		neu := g.emitV(&ir.Inst{Op: ir.OpAdd, Args: []ir.Value{old, d},
			Res: g.fn.NewValue(nt)})
		if promoted {
			g.emit(&ir.Inst{Op: ir.OpCopy, Args: []ir.Value{neu}, Res: lv.vreg})
		} else {
			g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{addr, neu}, Ty: elem})
		}
		if x.Post {
			return old, elem
		}
		return neu, elem
	}
	g.errorf(x.Pos, "unsupported unary operator %q", x.Op)
	return g.constInt(0, intType), intType
}

// truthValue normalizes a value to 0/1 for branching.
func (g *generator) truthValue(v ir.Value, e minic.Expr) ir.Value {
	t := g.fn.ValueType(v)
	if t == nil {
		return v
	}
	if t.Kind == types.Float {
		z := g.emitV(&ir.Inst{Op: ir.OpFConst, FImm: 0, Ty: t, Res: g.fn.NewValue(t)})
		rt := intType.WithQual(g.gen.Fresh())
		return g.emitV(&ir.Inst{Op: ir.OpFCmp, Pred: ir.PredNE,
			Args: []ir.Value{v, z}, Res: g.fn.NewValue(rt)})
	}
	return v
}

var binOpMap = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpMod,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl,
}

var cmpPredMap = map[string][2]ir.Pred{ // [signed, unsigned]
	"==": {ir.PredEQ, ir.PredEQ}, "!=": {ir.PredNE, ir.PredNE},
	"<": {ir.PredSLT, ir.PredULT}, "<=": {ir.PredSLE, ir.PredULE},
	">": {ir.PredSGT, ir.PredUGT}, ">=": {ir.PredSGE, ir.PredUGE},
}

func (g *generator) genBinary(x *minic.Binary) (ir.Value, *types.Type) {
	switch x.Op {
	case "&&", "||":
		return g.genShortCircuit(x)
	}
	lv, lt := g.genExpr(x.X)
	rv, rt := g.genExpr(x.Y)

	if preds, isCmp := cmpPredMap[x.Op]; isCmp {
		res := intType.WithQual(g.gen.Fresh())
		if lt.Kind == types.Float || rt.Kind == types.Float {
			lv = g.toFloat(lv, lt)
			rv = g.toFloat(rv, rt)
			return g.emitV(&ir.Inst{Op: ir.OpFCmp, Pred: preds[0],
				Args: []ir.Value{lv, rv}, Res: g.fn.NewValue(res)}), res
		}
		pred := preds[0]
		if g.isUnsignedCmp(lt, rt) {
			pred = preds[1]
		}
		return g.emitV(&ir.Inst{Op: ir.OpICmp, Pred: pred,
			Args: []ir.Value{lv, rv}, Res: g.fn.NewValue(res)}), res
	}

	// Pointer arithmetic.
	if x.Op == "+" || x.Op == "-" {
		if lt.Kind == types.Ptr && rt.IsInteger() {
			return g.ptrOffset(lv, lt, rv, x.Op == "-")
		}
		if rt.Kind == types.Ptr && lt.IsInteger() && x.Op == "+" {
			return g.ptrOffset(rv, rt, lv, false)
		}
		if lt.Kind == types.Ptr && rt.Kind == types.Ptr && x.Op == "-" {
			res := longType.WithQual(g.gen.Fresh())
			d := g.emitV(&ir.Inst{Op: ir.OpSub, Args: []ir.Value{lv, rv},
				Res: g.fn.NewValue(res)})
			es := int64(lt.Elem.SizeOf())
			if es > 1 {
				c := g.constInt(es, longType)
				d = g.emitV(&ir.Inst{Op: ir.OpDiv, Args: []ir.Value{d, c},
					Res: g.fn.NewValue(res.WithQual(g.gen.Fresh()))})
			}
			return d, res
		}
	}

	if lt.Kind == types.Float || rt.Kind == types.Float {
		var fop ir.Op
		switch x.Op {
		case "+":
			fop = ir.OpFAdd
		case "-":
			fop = ir.OpFSub
		case "*":
			fop = ir.OpFMul
		case "/":
			fop = ir.OpFDiv
		default:
			g.errorf(x.Pos, "invalid float operator %q", x.Op)
			return g.constInt(0, intType), intType
		}
		lv = g.toFloat(lv, lt)
		rv = g.toFloat(rv, rt)
		res := types.MakeFloat(g.gen.Fresh())
		return g.emitV(&ir.Inst{Op: fop, Args: []ir.Value{lv, rv},
			Res: g.fn.NewValue(res)}), res
	}

	op, ok := binOpMap[x.Op]
	if !ok {
		if x.Op == ">>" {
			op = ir.OpSar
			if !lt.Signed {
				op = ir.OpShr
			}
		} else {
			g.errorf(x.Pos, "unsupported binary operator %q", x.Op)
			return g.constInt(0, intType), intType
		}
	}
	res := g.commonType(lt, rt)
	// Narrow operands behave per their C width: truncate the result of
	// sub-64-bit arithmetic back to the common width.
	v := g.emitV(&ir.Inst{Op: op, Args: []ir.Value{lv, rv}, Res: g.fn.NewValue(res)})
	if res.Size < 8 && needsNormalize(op) {
		v = g.normalize(v, res)
	}
	return v, res
}

// needsNormalize reports whether an op can overflow the logical width.
func needsNormalize(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl:
		return true
	}
	return false
}

// normalize re-extends a sub-64-bit value to its canonical in-register
// representation (sign- or zero-extended).
func (g *generator) normalize(v ir.Value, t *types.Type) ir.Value {
	op := ir.OpZExt
	if t.Signed {
		op = ir.OpSExt
	}
	tr := g.emitV(&ir.Inst{Op: ir.OpTrunc, Args: []ir.Value{v}, Ty: t,
		Res: g.fn.NewValue(t)})
	return g.emitV(&ir.Inst{Op: op, Args: []ir.Value{tr}, Ty: t,
		Res: g.fn.NewValue(t)})
}

func (g *generator) isUnsignedCmp(a, b *types.Type) bool {
	if a.Kind == types.Ptr || b.Kind == types.Ptr {
		return true
	}
	return (a.IsInteger() && !a.Signed) || (b.IsInteger() && !b.Signed)
}

func (g *generator) ptrOffset(p ir.Value, pt *types.Type, idx ir.Value, neg bool) (ir.Value, *types.Type) {
	es := int64(pt.Elem.SizeOf())
	if es > 1 {
		c := g.constInt(es, longType)
		idx = g.emitV(&ir.Inst{Op: ir.OpMul, Args: []ir.Value{idx, c},
			Res: g.fn.NewValue(longType.WithQual(g.gen.Fresh()))})
	}
	op := ir.OpAdd
	if neg {
		op = ir.OpSub
	}
	res := pt.Clone()
	res.Qual = g.gen.Fresh()
	return g.emitV(&ir.Inst{Op: op, Args: []ir.Value{p, idx},
		Res: g.fn.NewValue(res)}), res
}

func (g *generator) toFloat(v ir.Value, t *types.Type) ir.Value {
	if t.Kind == types.Float {
		return v
	}
	ft := types.MakeFloat(g.gen.Fresh())
	return g.emitV(&ir.Inst{Op: ir.OpIntToFP, Args: []ir.Value{v}, Ty: ft,
		Res: g.fn.NewValue(ft)})
}

// commonType computes the usual-arithmetic-conversion result type with a
// fresh qualifier.
func (g *generator) commonType(a, b *types.Type) *types.Type {
	if a.Kind == types.Ptr {
		return a.Clone().WithQual(g.gen.Fresh())
	}
	if b.Kind == types.Ptr {
		return b.Clone().WithQual(g.gen.Fresh())
	}
	size := a.Size
	if b.Size > size {
		size = b.Size
	}
	if size < 4 {
		size = 4
	}
	signed := true
	if (a.Size == size && !a.Signed) || (b.Size == size && !b.Signed) {
		signed = false
	}
	return types.MakeInt(size, signed, g.gen.Fresh())
}

func (g *generator) genShortCircuit(x *minic.Binary) (ir.Value, *types.Type) {
	res := g.fn.NewValue(intType.WithQual(g.gen.Fresh()))
	evalY := g.fn.NewBlock()
	exit := g.fn.NewBlock()

	lv, _ := g.genExpr(x.X)
	lv = g.truthValue(lv, x.X)
	one := g.constInt(1, intType)
	zero := g.constInt(0, intType)
	lbool := g.emitV(&ir.Inst{Op: ir.OpICmp, Pred: ir.PredNE,
		Args: []ir.Value{lv, zero}, Res: g.fn.NewValue(intType.WithQual(g.gen.Fresh()))})
	g.emit(&ir.Inst{Op: ir.OpCopy, Args: []ir.Value{lbool}, Res: res})
	_ = one
	if x.Op == "&&" {
		g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{lbool}, Blk: evalY.ID, Blk2: exit.ID})
	} else {
		g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{lbool}, Blk: exit.ID, Blk2: evalY.ID})
	}
	g.startBlock(evalY)
	rv, _ := g.genExpr(x.Y)
	rv = g.truthValue(rv, x.Y)
	zero2 := g.constInt(0, intType)
	rbool := g.emitV(&ir.Inst{Op: ir.OpICmp, Pred: ir.PredNE,
		Args: []ir.Value{rv, zero2}, Res: g.fn.NewValue(intType.WithQual(g.gen.Fresh()))})
	g.emit(&ir.Inst{Op: ir.OpCopy, Args: []ir.Value{rbool}, Res: res})
	g.branchTo(exit.ID)
	g.startBlock(exit)
	return res, g.fn.ValueType(res)
}

func (g *generator) genCond(x *minic.Cond) (ir.Value, *types.Type) {
	cv, _ := g.genExpr(x.C)
	cv = g.truthValue(cv, x.C)
	thenB := g.fn.NewBlock()
	elseB := g.fn.NewBlock()
	exit := g.fn.NewBlock()
	g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{cv}, Blk: thenB.ID, Blk2: elseB.ID})

	g.startBlock(thenB)
	tv, tt := g.genExpr(x.T)
	res := g.fn.NewValue(tt.WithQual(g.gen.Fresh()))
	g.emit(&ir.Inst{Op: ir.OpCopy, Args: []ir.Value{tv}, Res: res})
	g.branchTo(exit.ID)

	g.startBlock(elseB)
	fv, ft := g.genExpr(x.F)
	fv = g.convert(fv, ft, tt, x.Pos)
	g.emit(&ir.Inst{Op: ir.OpCopy, Args: []ir.Value{fv}, Res: res})
	g.branchTo(exit.ID)

	g.startBlock(exit)
	return res, g.fn.ValueType(res)
}

func (g *generator) genAssign(x *minic.Assign) (ir.Value, *types.Type) {
	addr, elem, promoted, lv := g.lvalue(x.LHS)
	if elem == nil {
		return g.constInt(0, intType), intType
	}
	var rhs ir.Value
	var rt *types.Type
	if x.Op == "" {
		rhs, rt = g.genExpr(x.RHS)
	} else {
		// Compound: load-modify.
		var old ir.Value
		if promoted {
			old = lv.vreg
		} else {
			old, _ = g.loadFrom(addr, elem)
		}
		rhs, rt = g.genBinaryOn(x.Pos, x.Op, old, elem, x.RHS)
	}
	rhs = g.convert(rhs, rt, elem, x.Pos)
	if promoted {
		g.emit(&ir.Inst{Op: ir.OpCopy, Args: []ir.Value{rhs}, Res: lv.vreg})
	} else {
		g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{addr, rhs}, Ty: elem})
	}
	return rhs, elem
}

// genBinaryOn applies `old op rhsExpr` for compound assignment.
func (g *generator) genBinaryOn(pos minic.Pos, op string, old ir.Value, oldTy *types.Type, rhsE minic.Expr) (ir.Value, *types.Type) {
	rv, rt := g.genExpr(rhsE)
	if oldTy.Kind == types.Ptr && (op == "+" || op == "-") {
		return g.ptrOffset(old, oldTy, rv, op == "-")
	}
	if oldTy.Kind == types.Float || rt.Kind == types.Float {
		var fop ir.Op
		switch op {
		case "+":
			fop = ir.OpFAdd
		case "-":
			fop = ir.OpFSub
		case "*":
			fop = ir.OpFMul
		case "/":
			fop = ir.OpFDiv
		default:
			g.errorf(pos, "invalid float compound operator %q=", op)
			return g.constInt(0, intType), intType
		}
		ov := g.toFloat(old, oldTy)
		rv = g.toFloat(rv, rt)
		res := types.MakeFloat(g.gen.Fresh())
		return g.emitV(&ir.Inst{Op: fop, Args: []ir.Value{ov, rv},
			Res: g.fn.NewValue(res)}), res
	}
	var iop ir.Op
	if op == ">>" {
		iop = ir.OpSar
		if !oldTy.Signed {
			iop = ir.OpShr
		}
	} else {
		var ok bool
		iop, ok = binOpMap[op]
		if !ok {
			g.errorf(pos, "unsupported compound operator %q=", op)
			return g.constInt(0, intType), intType
		}
	}
	res := g.commonType(oldTy, rt)
	v := g.emitV(&ir.Inst{Op: iop, Args: []ir.Value{old, rv}, Res: g.fn.NewValue(res)})
	if res.Size < 8 && needsNormalize(iop) {
		v = g.normalize(v, res)
	}
	return v, res
}

// lvalue resolves an assignable expression. It returns either a promoted
// local (promoted=true, lv set) or an address + element type.
func (g *generator) lvalue(e minic.Expr) (addr ir.Value, elem *types.Type, promoted bool, lv *local) {
	if id, ok := e.(*minic.Ident); ok {
		if l := g.lookup(id.Name); l != nil && l.alloca == nil {
			return ir.NoValue, l.ty, true, l
		}
	}
	a, t, ok := g.genAddr(e)
	if !ok {
		return ir.NoValue, nil, false, nil
	}
	return a, t, false, nil
}

func (g *generator) genCall(x *minic.Call) (ir.Value, *types.Type) {
	// Direct call?
	var callee *ir.Func
	if id, ok := x.Fn.(*minic.Ident); ok {
		if g.lookup(id.Name) == nil {
			callee = g.mod.Func(id.Name)
		}
	}
	var sig *types.FuncSig
	var fnVal ir.Value
	if callee != nil {
		sig = &types.FuncSig{Params: callee.Params, Ret: callee.Ret, Variadic: callee.Variadic}
	} else {
		v, t := g.genExpr(x.Fn)
		if t.Kind == types.Ptr && t.Elem.Kind == types.Func {
			sig = t.Elem.Sig
		} else if t.Kind == types.Func {
			sig = t.Sig
		} else {
			g.errorf(x.Pos, "called object is not a function")
			return g.constInt(0, intType), intType
		}
		fnVal = v
	}
	nfixed := len(sig.Params)
	if len(x.Args) < nfixed || (!sig.Variadic && len(x.Args) > nfixed) {
		g.errorf(x.Pos, "wrong number of arguments: have %d, want %d", len(x.Args), nfixed)
		return g.constInt(0, intType), intType
	}
	var args []ir.Value
	for i, ae := range x.Args {
		av, at := g.genExpr(ae)
		if i < nfixed {
			av = g.convert(av, at, sig.Params[i], x.Pos)
		} else if at.IsInteger() && at.Size < 8 {
			// Default promotion of variadic integer args to 8 bytes.
			op := ir.OpZExt
			if at.Signed {
				op = ir.OpSExt
			}
			nt := types.MakeInt(8, at.Signed, g.gen.Fresh())
			av = g.emitV(&ir.Inst{Op: op, Args: []ir.Value{av}, Ty: nt,
				Res: g.fn.NewValue(nt)})
		}
		args = append(args, av)
	}
	var res ir.Value = ir.NoValue
	rt := sig.Ret
	if rt.Kind != types.Void {
		res = g.fn.NewValue(rt.WithQual(g.gen.Fresh()))
	}
	if callee != nil {
		g.emit(&ir.Inst{Op: ir.OpCall, Callee: callee.Name, Args: args, Res: res, Pos: x.Pos})
	} else {
		g.emit(&ir.Inst{Op: ir.OpICall, Args: append([]ir.Value{fnVal}, args...), Res: res, Pos: x.Pos})
	}
	if res == ir.NoValue {
		return ir.NoValue, types.MakeVoid()
	}
	return res, g.fn.ValueType(res)
}

func (g *generator) genVaArg(x *minic.VaArg) (ir.Value, *types.Type) {
	// ap is an lvalue holding a char* cursor into the public vararg area.
	addr, elem, promoted, lv := g.lvalue(x.Ap)
	if elem == nil {
		return g.constInt(0, intType), intType
	}
	var cur ir.Value
	if promoted {
		cur = lv.vreg
	} else {
		cur, _ = g.loadFrom(addr, elem)
	}
	// Load the value: vararg slots are 8-byte public stack slots.
	slotTy := x.Type.WithQual(types.Public)
	rt := x.Type.WithQual(g.gen.Fresh())
	val := g.emitV(&ir.Inst{Op: ir.OpLoad, Args: []ir.Value{cur}, Ty: slotTy,
		Res: g.fn.NewValue(rt)})
	// Advance the cursor by 8.
	eight := g.constInt(8, longType)
	next := g.emitV(&ir.Inst{Op: ir.OpAdd, Args: []ir.Value{cur, eight},
		Res: g.fn.NewValue(g.fn.ValueType(cur))})
	if promoted {
		g.emit(&ir.Inst{Op: ir.OpCopy, Args: []ir.Value{next}, Res: lv.vreg})
	} else {
		g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{addr, next}, Ty: elem})
	}
	return val, rt
}

// genAddr lowers an lvalue expression to (address value, element type).
func (g *generator) genAddr(e minic.Expr) (ir.Value, *types.Type, bool) {
	switch x := e.(type) {
	case *minic.Ident:
		if l := g.lookup(x.Name); l != nil {
			if l.alloca == nil {
				g.errorf(x.Pos, "cannot take the address of register variable %q (internal)", x.Name)
				return ir.NoValue, nil, false
			}
			return g.allocaAddr(l.alloca), l.ty, true
		}
		if glob := g.mod.Global(x.Name); glob != nil {
			pt := types.MakePtr(glob.Type, g.gen.Fresh())
			addr := g.emitV(&ir.Inst{Op: ir.OpGlobalAddr, Global: x.Name,
				Res: g.fn.NewValue(pt)})
			return addr, glob.Type, true
		}
		g.errorf(x.Pos, "undefined identifier %q", x.Name)
		return ir.NoValue, nil, false
	case *minic.Unary:
		if x.Op == "*" {
			v, t := g.genExpr(x.X)
			if t.Kind != types.Ptr {
				g.errorf(x.Pos, "cannot dereference non-pointer type %s", t)
				return ir.NoValue, nil, false
			}
			return v, t.Elem, true
		}
	case *minic.Index:
		bv, bt := g.genExpr(x.X)
		if bt.Kind != types.Ptr {
			g.errorf(x.Pos, "subscript of non-pointer type %s", bt)
			return ir.NoValue, nil, false
		}
		iv, _ := g.genExpr(x.I)
		av, _ := g.ptrOffset(bv, bt, iv, false)
		return av, bt.Elem, true
	case *minic.Member:
		var recAddr ir.Value
		var recTy *types.Type
		if x.Arrow {
			v, t := g.genExpr(x.X)
			if t.Kind != types.Ptr || !t.Elem.IsRecord() {
				g.errorf(x.Pos, "-> on non-record-pointer type %s", t)
				return ir.NoValue, nil, false
			}
			recAddr, recTy = v, t.Elem
		} else {
			a, t, ok := g.genAddr(x.X)
			if !ok {
				return ir.NoValue, nil, false
			}
			if !t.IsRecord() {
				g.errorf(x.Pos, ". on non-record type %s", t)
				return ir.NoValue, nil, false
			}
			recAddr, recTy = a, t
		}
		ft, off := recTy.FieldType(x.Name)
		if ft == nil {
			g.errorf(x.Pos, "no field %q in %s", x.Name, recTy)
			return ir.NoValue, nil, false
		}
		if off != 0 {
			c := g.constInt(int64(off), longType)
			pt := types.MakePtr(ft, g.gen.Fresh())
			recAddr = g.emitV(&ir.Inst{Op: ir.OpAdd, Args: []ir.Value{recAddr, c},
				Res: g.fn.NewValue(pt)})
		}
		return recAddr, ft, true
	case *minic.Cast:
		// (T*)lvalue as store target: compute the inner address, retype.
		if x.Type.Kind == types.Ptr {
			a, _, ok := g.genAddr(x.X)
			if !ok {
				return ir.NoValue, nil, false
			}
			return a, x.Type.Elem, true
		}
	}
	g.errorf(e.Position(), "expression is not an lvalue")
	return ir.NoValue, nil, false
}

// convert applies implicit conversion from type `from` to `to`.
func (g *generator) convert(v ir.Value, from, to *types.Type, pos minic.Pos) ir.Value {
	if from == nil || to == nil || to.Kind == types.Void {
		return v
	}
	switch {
	case from.IsInteger() && to.IsInteger():
		if from.Size == to.Size {
			return v
		}
		if to.Size < from.Size {
			tv := g.emitV(&ir.Inst{Op: ir.OpTrunc, Args: []ir.Value{v}, Ty: to,
				Res: g.fn.NewValue(to.WithQual(g.gen.Fresh()))})
			return tv
		}
		op := ir.OpZExt
		if from.Signed {
			op = ir.OpSExt
		}
		return g.emitV(&ir.Inst{Op: op, Args: []ir.Value{v}, Ty: to,
			Res: g.fn.NewValue(to.WithQual(g.gen.Fresh()))})
	case from.IsInteger() && to.Kind == types.Float:
		return g.toFloat(v, from)
	case from.Kind == types.Float && to.IsInteger():
		return g.emitV(&ir.Inst{Op: ir.OpFPToInt, Args: []ir.Value{v}, Ty: to,
			Res: g.fn.NewValue(to.WithQual(g.gen.Fresh()))})
	case from.Kind == types.Ptr && to.Kind == types.Ptr:
		// Implicit pointer conversion keeps the source type: the taint
		// constraints between pointee qualifiers are generated at the
		// consumer (store/call) and enforce equality.
		return v
	case from.IsInteger() && to.Kind == types.Ptr:
		return g.emitV(&ir.Inst{Op: ir.OpBitcast, Args: []ir.Value{v}, Ty: to,
			Res: g.fn.NewValue(to)})
	case from.Kind == types.Ptr && to.IsInteger():
		return g.emitV(&ir.Inst{Op: ir.OpBitcast, Args: []ir.Value{v}, Ty: to,
			Res: g.fn.NewValue(to.WithQual(g.gen.Fresh()))})
	}
	return v
}

// convertExplicit applies a C cast: unlike implicit conversion, pointer
// casts adopt the target type wholesale, deliberately severing the pointee
// qualifier linkage (the runtime checks still protect confidentiality —
// this is the Minizip scenario from the paper's §7.6).
func (g *generator) convertExplicit(v ir.Value, from, to *types.Type, pos minic.Pos) ir.Value {
	if from.Kind == types.Ptr && to.Kind == types.Ptr {
		return g.emitV(&ir.Inst{Op: ir.OpBitcast, Args: []ir.Value{v}, Ty: to,
			Res: g.fn.NewValue(to)})
	}
	return g.convert(v, from, to, pos)
}
