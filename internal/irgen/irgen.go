// Package irgen lowers miniC ASTs to the typed IR. It implements C
// evaluation semantics for the supported subset: usual arithmetic
// conversions, array decay, pointer arithmetic, short-circuit logic,
// compound assignment, function pointers and varargs.
//
// Scalar locals whose address is never taken are promoted directly to
// virtual registers; everything else becomes a stack object (alloca) whose
// region (public or private stack) is decided by taint resolution.
package irgen

import (
	"encoding/binary"
	"fmt"
	"math"

	"confllvm/internal/ir"
	"confllvm/internal/minic"
	"confllvm/internal/types"
)

type local struct {
	vreg   ir.Value   // valid if alloca == nil
	alloca *ir.Alloca // non-nil for memory-resident locals
	ty     *types.Type
}

type generator struct {
	mod  *ir.Module
	gen  *minic.QualGen
	errs []error

	// current function state
	fn        *ir.Func
	blk       *ir.Block
	scopes    []map[string]*local
	addrTaken map[string]bool
	breakBlk  []int
	contBlk   []int
	strCount  int
	curDecl   *minic.FuncDecl
}

// Gen lowers the parsed files into a single IR module. gen must be the
// same qualifier generator used during parsing.
func Gen(files []*minic.File, gen *minic.QualGen) (*ir.Module, error) {
	g := &generator{mod: ir.NewModule(), gen: gen}

	// Pass 1: register all function signatures (including extern T
	// functions) and globals, so forward references resolve.
	for _, f := range files {
		for _, fd := range f.Funcs {
			if g.mod.Func(fd.Name) != nil {
				if fd.Body == nil {
					continue // repeated prototype
				}
				if g.mod.Func(fd.Name).Blocks != nil {
					g.errorf(fd.Pos, "function %s redefined", fd.Name)
					continue
				}
			}
			irf := &ir.Func{
				Name: fd.Name, Ret: fd.Ret, Variadic: fd.Variadic,
				Extern: fd.Extern, Pos: fd.Pos,
			}
			for _, p := range fd.Params {
				irf.Params = append(irf.Params, types.Decay(p.Type))
			}
			if prev := g.mod.Func(fd.Name); prev != nil {
				*prev = *irf
			} else {
				g.mod.AddFunc(irf)
			}
		}
		for _, vd := range f.Globals {
			g.genGlobal(vd)
		}
	}

	// Pass 2: function bodies.
	for _, f := range files {
		for _, fd := range f.Funcs {
			if fd.Body != nil {
				g.genFunc(fd)
			}
		}
	}
	if len(g.errs) > 0 {
		return nil, g.errs[0]
	}
	return g.mod, nil
}

func (g *generator) errorf(pos minic.Pos, format string, args ...interface{}) {
	g.errs = append(g.errs, &minic.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ---- Globals ----

func (g *generator) genGlobal(vd *minic.VarDecl) {
	if g.mod.Global(vd.Name) != nil {
		g.errorf(vd.Pos, "global %s redefined", vd.Name)
		return
	}
	t := vd.Type
	glob := &ir.Global{Name: vd.Name, Type: t, Pos: vd.Pos}
	glob.Data = make([]byte, t.SizeOf())
	switch {
	case vd.StrVal != nil:
		copy(glob.Data, *vd.StrVal)
	case vd.Inits != nil:
		elemSize := 8
		var elem *types.Type
		if t.Kind == types.Array {
			elem = t.Elem
			elemSize = elem.SizeOf()
		} else if t.IsRecord() {
			// Struct initializer: field-by-field.
			for i, e := range vd.Inits {
				if i >= len(t.Fields) {
					g.errorf(vd.Pos, "too many initializers for %s", t)
					break
				}
				g.initScalar(glob, t.Fields[i].Offset, t.Fields[i].Type, e, vd.Pos)
			}
			return
		}
		for i, e := range vd.Inits {
			off := i * elemSize
			if off+elemSize > len(glob.Data) {
				g.errorf(vd.Pos, "too many initializers for %s", t)
				break
			}
			g.initScalar(glob, off, elem, e, vd.Pos)
		}
	case vd.Init != nil:
		g.initScalar(glob, 0, t, vd.Init, vd.Pos)
	}
	g.mod.AddGlobal(glob)
}

// initScalar fills one scalar slot of a global initializer, recording a
// relocation when the initializer is a symbol address (function pointers
// in dispatch tables, &global).
func (g *generator) initScalar(glob *ir.Global, off int, t *types.Type, e minic.Expr, pos minic.Pos) {
	size := 8
	if t != nil {
		size = t.SizeOf()
		if t.Kind == types.Array || t.IsRecord() {
			g.errorf(pos, "nested aggregate initializers are not supported")
			return
		}
	}
	if id, ok := e.(*minic.Ident); ok {
		if g.mod.Func(id.Name) != nil {
			glob.Relocs = append(glob.Relocs, ir.Reloc{Off: off, Symbol: id.Name})
			return
		}
		if g.mod.Global(id.Name) != nil {
			glob.Relocs = append(glob.Relocs, ir.Reloc{Off: off, Symbol: id.Name})
			return
		}
	}
	if u, ok := e.(*minic.Unary); ok && u.Op == "&" {
		if id, ok2 := u.X.(*minic.Ident); ok2 && g.mod.Global(id.Name) != nil {
			glob.Relocs = append(glob.Relocs, ir.Reloc{Off: off, Symbol: id.Name})
			return
		}
	}
	if s, ok := e.(*minic.StrLit); ok {
		name := g.internString(s.Val, types.Public)
		glob.Relocs = append(glob.Relocs, ir.Reloc{Off: off, Symbol: name})
		return
	}
	if f, ok := e.(*minic.FloatLit); ok {
		binary.LittleEndian.PutUint64(glob.Data[off:], math.Float64bits(f.Val))
		return
	}
	v, ok := minic.FoldConst(e)
	if !ok {
		g.errorf(pos, "global initializer must be a constant expression")
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	copy(glob.Data[off:off+size], buf[:size])
}

// internString creates (or reuses) a rodata global for a string literal
// and returns its symbol name.
func (g *generator) internString(s string, qual types.Qual) string {
	name := fmt.Sprintf(".str%d", g.strCount)
	g.strCount++
	elem := types.MakeInt(1, true, qual)
	t := types.MakeArray(elem, len(s)+1)
	data := make([]byte, len(s)+1)
	copy(data, s)
	g.mod.AddGlobal(&ir.Global{Name: name, Type: t, Data: data})
	return name
}

// ---- Functions ----

func (g *generator) genFunc(fd *minic.FuncDecl) {
	irf := g.mod.Func(fd.Name)
	g.fn = irf
	g.curDecl = fd
	g.scopes = []map[string]*local{{}}
	g.addrTaken = map[string]bool{}
	markAddrTaken(fd.Body, g.addrTaken)

	entry := irf.NewBlock()
	g.blk = entry

	for i, p := range fd.Params {
		pt := types.Decay(p.Type)
		v := irf.NewValue(pt)
		irf.ParamRegs = append(irf.ParamRegs, v)
		if p.Name == "" {
			continue
		}
		if g.addrTaken[p.Name] || p.Type.Kind == types.Array || p.Type.IsRecord() {
			a := g.newAlloca(p.Name, pt)
			addr := g.emitV(&ir.Inst{Op: ir.OpAddrOf, A: a,
				Res: irf.NewValue(types.MakePtr(pt, g.gen.Fresh()))})
			g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{addr, v}, Ty: pt})
			g.define(p.Name, &local{alloca: a, ty: pt})
		} else {
			g.define(p.Name, &local{vreg: v, ty: pt})
		}
		_ = i
	}

	g.genBlock(fd.Body)

	// Implicit return at fall-off.
	if g.blk != nil && !g.terminated() {
		if fd.Ret.Kind == types.Void {
			g.emit(&ir.Inst{Op: ir.OpRet})
		} else {
			z := g.emitV(&ir.Inst{Op: ir.OpConst, Imm: 0, Ty: fd.Ret,
				Res: irf.NewValue(fd.Ret)})
			g.emit(&ir.Inst{Op: ir.OpRet, Args: []ir.Value{z}})
		}
	}
	g.fn = nil
}

// markAddrTaken records identifiers whose address is taken with unary &.
func markAddrTaken(s minic.Stmt, set map[string]bool) {
	var walkE func(e minic.Expr)
	walkE = func(e minic.Expr) {
		switch x := e.(type) {
		case *minic.Unary:
			if x.Op == "&" {
				if id, ok := x.X.(*minic.Ident); ok {
					set[id.Name] = true
				}
			}
			walkE(x.X)
		case *minic.Binary:
			walkE(x.X)
			walkE(x.Y)
		case *minic.Assign:
			walkE(x.LHS)
			walkE(x.RHS)
		case *minic.Cond:
			walkE(x.C)
			walkE(x.T)
			walkE(x.F)
		case *minic.Call:
			walkE(x.Fn)
			for _, a := range x.Args {
				walkE(a)
			}
		case *minic.Index:
			walkE(x.X)
			walkE(x.I)
		case *minic.Member:
			walkE(x.X)
		case *minic.Cast:
			walkE(x.X)
		case *minic.VaArg:
			walkE(x.Ap)
		}
	}
	var walkS func(s minic.Stmt)
	walkS = func(s minic.Stmt) {
		switch x := s.(type) {
		case *minic.Block:
			for _, st := range x.Stmts {
				walkS(st)
			}
		case *minic.DeclStmt:
			for _, d := range x.Decls {
				if d.Init != nil {
					walkE(d.Init)
				}
				for _, e := range d.Inits {
					walkE(e)
				}
			}
		case *minic.ExprStmt:
			walkE(x.X)
		case *minic.If:
			walkE(x.Cond)
			walkS(x.Then)
			if x.Else != nil {
				walkS(x.Else)
			}
		case *minic.While:
			walkE(x.Cond)
			walkS(x.Body)
		case *minic.DoWhile:
			walkS(x.Body)
			walkE(x.Cond)
		case *minic.For:
			if x.Init != nil {
				walkS(x.Init)
			}
			if x.Cond != nil {
				walkE(x.Cond)
			}
			if x.Post != nil {
				walkE(x.Post)
			}
			walkS(x.Body)
		case *minic.Return:
			if x.X != nil {
				walkE(x.X)
			}
		}
	}
	walkS(s)
}

// ---- Emission helpers ----

func (g *generator) emit(in *ir.Inst) {
	if !in.Op.HasResult() {
		// Normalize: a zero Res would alias virtual register 0 in
		// liveness and optimization bookkeeping.
		in.Res = ir.NoValue
	}
	if g.blk == nil {
		// Unreachable code after a terminator: drop it into a fresh
		// orphan block so the rest of the pipeline stays simple (DCE
		// removes it).
		g.blk = g.fn.NewBlock()
	}
	g.blk.Insts = append(g.blk.Insts, in)
	if in.IsTerminator() {
		g.blk = nil
	}
}

// emitV emits and returns the instruction's result value.
func (g *generator) emitV(in *ir.Inst) ir.Value {
	g.emit(in)
	return in.Res
}

func (g *generator) terminated() bool {
	return g.blk == nil ||
		(len(g.blk.Insts) > 0 && g.blk.Insts[len(g.blk.Insts)-1].IsTerminator())
}

func (g *generator) startBlock(b *ir.Block) { g.blk = b }

func (g *generator) branchTo(id int) {
	if !g.terminated() {
		g.emit(&ir.Inst{Op: ir.OpBr, Blk: id})
	}
	g.blk = nil
}

func (g *generator) newAlloca(name string, t *types.Type) *ir.Alloca {
	a := &ir.Alloca{Name: name, Type: t}
	g.fn.Allocas = append(g.fn.Allocas, a)
	return a
}

func (g *generator) define(name string, l *local) {
	g.scopes[len(g.scopes)-1][name] = l
}

func (g *generator) lookup(name string) *local {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if l, ok := g.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (g *generator) pushScope() { g.scopes = append(g.scopes, map[string]*local{}) }
func (g *generator) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *generator) constInt(v int64, t *types.Type) ir.Value {
	return g.emitV(&ir.Inst{Op: ir.OpConst, Imm: v, Ty: t, Res: g.fn.NewValue(t)})
}

var intType = types.MakeInt(4, true, types.Public)
var longType = types.MakeInt(8, true, types.Public)

func (g *generator) freshInt(size int) *types.Type {
	return types.MakeInt(size, true, g.gen.Fresh())
}
