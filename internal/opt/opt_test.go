package opt

import (
	"testing"

	"confllvm/internal/ir"
	"confllvm/internal/types"
)

var i64 = types.MakeInt(8, true, types.Public)

// buildFunc makes a one-block function computing (2+3)*4 and returning it,
// with a dead extra instruction.
func buildFunc() *ir.Func {
	f := &ir.Func{Name: "t", Ret: i64}
	b := f.NewBlock()
	v1 := f.NewValue(i64)
	v2 := f.NewValue(i64)
	v3 := f.NewValue(i64)
	v4 := f.NewValue(i64)
	v5 := f.NewValue(i64)
	dead := f.NewValue(i64)
	b.Insts = []*ir.Inst{
		{Op: ir.OpConst, Res: v1, Imm: 2, Ty: i64},
		{Op: ir.OpConst, Res: v2, Imm: 3, Ty: i64},
		{Op: ir.OpAdd, Res: v3, Args: []ir.Value{v1, v2}},
		{Op: ir.OpConst, Res: v4, Imm: 4, Ty: i64},
		{Op: ir.OpMul, Res: v5, Args: []ir.Value{v3, v4}},
		{Op: ir.OpXor, Res: dead, Args: []ir.Value{v1, v2}}, // dead
		{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{v5}},
	}
	return f
}

func TestConstFoldAndDCE(t *testing.T) {
	f := buildFunc()
	mod := ir.NewModule()
	mod.AddFunc(f)
	Run(mod, O2())
	// The whole computation folds to a single constant 20 + ret.
	var retArg ir.Value = ir.NoValue
	consts := map[ir.Value]int64{}
	n := 0
	for _, in := range f.Blocks[0].Insts {
		n++
		if in.Op == ir.OpConst {
			consts[in.Res] = in.Imm
		}
		if in.Op == ir.OpRet {
			retArg = in.Args[0]
		}
	}
	if consts[retArg] != 20 {
		t.Errorf("did not fold to 20: %v", f)
	}
	if n > 3 { // at most: const 20, maybe one leftover, ret
		t.Errorf("DCE left %d instructions:\n%s", n, f)
	}
}

func TestCondBrFolding(t *testing.T) {
	f := &ir.Func{Name: "t", Ret: i64}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	c := f.NewValue(i64)
	r := f.NewValue(i64)
	b0.Insts = []*ir.Inst{
		{Op: ir.OpConst, Res: c, Imm: 1, Ty: i64},
		{Op: ir.OpCondBr, Res: ir.NoValue, Args: []ir.Value{c}, Blk: b1.ID, Blk2: b2.ID},
	}
	b1.Insts = []*ir.Inst{
		{Op: ir.OpConst, Res: r, Imm: 7, Ty: i64},
		{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{r}},
	}
	b2.Insts = []*ir.Inst{
		{Op: ir.OpConst, Res: r, Imm: 8, Ty: i64},
		{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{r}},
	}
	mod := ir.NewModule()
	mod.AddFunc(f)
	Run(mod, O2())
	// The false branch becomes unreachable and must be removed.
	if len(f.Blocks) != 2 {
		t.Errorf("unreachable block not removed: %d blocks\n%s", len(f.Blocks), f)
	}
	if f.Blocks[0].Insts[len(f.Blocks[0].Insts)-1].Op != ir.OpBr {
		t.Errorf("condbr on constant not folded:\n%s", f)
	}
}

func TestCopyPropRespectsMutation(t *testing.T) {
	// v2 = copy v1; v1 = const 9; use v2  -- must NOT propagate v1 into
	// the use (mutable vregs).
	f := &ir.Func{Name: "t", Ret: i64}
	b := f.NewBlock()
	v1 := f.NewValue(i64)
	v2 := f.NewValue(i64)
	b.Insts = []*ir.Inst{
		{Op: ir.OpConst, Res: v1, Imm: 5, Ty: i64},
		{Op: ir.OpCopy, Res: v2, Args: []ir.Value{v1}},
		{Op: ir.OpConst, Res: v1, Imm: 9, Ty: i64},
		{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{v2}},
	}
	mod := ir.NewModule()
	mod.AddFunc(f)
	Run(mod, Passes{CopyProp: true})
	ret := f.Blocks[0].Insts[len(f.Blocks[0].Insts)-1]
	if ret.Args[0] == v1 {
		t.Fatalf("copy-prop propagated across a redefinition:\n%s", f)
	}
}

func TestLocalCSE(t *testing.T) {
	f := &ir.Func{Name: "t", Ret: i64}
	b := f.NewBlock()
	a := f.NewValue(i64)
	c := f.NewValue(i64)
	s1 := f.NewValue(i64)
	s2 := f.NewValue(i64)
	r := f.NewValue(i64)
	// Use opaque sources (call results) so const-folding can't interfere.
	b.Insts = []*ir.Inst{
		{Op: ir.OpCall, Callee: "src", Res: a},
		{Op: ir.OpCall, Callee: "src", Res: c},
		{Op: ir.OpAdd, Res: s1, Args: []ir.Value{a, c}},
		{Op: ir.OpAdd, Res: s2, Args: []ir.Value{a, c}}, // same expr
		{Op: ir.OpAdd, Res: r, Args: []ir.Value{s1, s2}},
		{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{r}},
	}
	mod := ir.NewModule()
	mod.AddFunc(f)
	Run(mod, Passes{LocalCSE: true})
	count := 0
	for _, in := range f.Blocks[0].Insts {
		if in.Op == ir.OpCopy {
			count++
		}
	}
	if count != 1 {
		t.Errorf("CSE should rewrite the duplicate add into a copy:\n%s", f)
	}
}
