// Package opt implements the IR optimization pipeline. The paper compiles
// the baseline with full -O2 and ConfLLVM with the subset of passes whose
// metadata handling was ported (§5.1: "We disable the remaining
// optimizations in our prototype"). Passes here are selectable so both
// pipelines can be reproduced: the ConfLLVM pipeline drops the
// aggressive block-local value-numbering pass.
package opt

import (
	"confllvm/internal/ir"
)

// Passes selects which optimizations run.
type Passes struct {
	ConstFold   bool
	CopyProp    bool
	LocalCSE    bool // block-local value numbering (a "vanilla-only" pass)
	DCE         bool
	SimplifyCFG bool
}

// O2 is the full pipeline (vanilla LLVM baseline).
func O2() Passes {
	return Passes{ConstFold: true, CopyProp: true, LocalCSE: true, DCE: true, SimplifyCFG: true}
}

// ConfLLVM is the reduced pipeline: the local CSE pass mutates value
// metadata in ways the instrumenting backend does not support, so it is
// disabled (mirroring the paper's disabled optimizations).
func ConfLLVM() Passes {
	return Passes{ConstFold: true, CopyProp: true, LocalCSE: false, DCE: true, SimplifyCFG: true}
}

// None disables all optimization (-O0).
func None() Passes { return Passes{} }

// Run applies the selected passes to every function until a fixpoint
// (bounded at 4 rounds).
func Run(mod *ir.Module, p Passes) {
	for _, f := range mod.Funcs {
		if f.Blocks == nil {
			continue
		}
		for round := 0; round < 4; round++ {
			changed := false
			if p.SimplifyCFG {
				changed = simplifyCFG(f) || changed
			}
			if p.ConstFold {
				changed = constFold(f) || changed
			}
			if p.CopyProp {
				changed = copyProp(f) || changed
			}
			if p.LocalCSE {
				changed = localCSE(f) || changed
			}
			if p.DCE {
				changed = dce(f) || changed
			}
			if !changed {
				break
			}
		}
	}
}

// ---- Constant folding ----

// constFold folds arithmetic over constants, block-locally. A vreg is known
// constant within a block from the point of a Const def until reassigned.
func constFold(f *ir.Func) bool {
	changed := false
	for _, blk := range f.Blocks {
		consts := map[ir.Value]int64{}
		for _, in := range blk.Insts {
			if in.Op.HasResult() && in.Res != ir.NoValue {
				delete(consts, in.Res)
			}
			switch in.Op {
			case ir.OpConst:
				consts[in.Res] = in.Imm
				continue
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
				ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar:
				a, okA := consts[in.Args[0]]
				b, okB := consts[in.Args[1]]
				if !okA || !okB {
					continue
				}
				v, ok := foldBin(in.Op, a, b)
				if !ok {
					continue
				}
				ty := f.ValueType(in.Res)
				*in = ir.Inst{Op: ir.OpConst, Res: in.Res, Imm: v, Ty: ty, Pos: in.Pos}
				consts[in.Res] = v
				changed = true
			case ir.OpICmp:
				a, okA := consts[in.Args[0]]
				b, okB := consts[in.Args[1]]
				if !okA || !okB {
					continue
				}
				v := foldICmp(in.Pred, a, b)
				ty := f.ValueType(in.Res)
				*in = ir.Inst{Op: ir.OpConst, Res: in.Res, Imm: v, Ty: ty, Pos: in.Pos}
				consts[in.Res] = v
				changed = true
			case ir.OpCondBr:
				if v, ok := consts[in.Args[0]]; ok {
					target := in.Blk
					if v == 0 {
						target = in.Blk2
					}
					*in = ir.Inst{Op: ir.OpBr, Res: ir.NoValue, Blk: target, Pos: in.Pos}
					changed = true
				}
			}
		}
	}
	return changed
}

func foldBin(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << uint(b&63), true
	case ir.OpShr:
		return int64(uint64(a) >> uint(b&63)), true
	case ir.OpSar:
		return a >> uint(b&63), true
	}
	return 0, false
}

func foldICmp(p ir.Pred, a, b int64) int64 {
	var r bool
	switch p {
	case ir.PredEQ:
		r = a == b
	case ir.PredNE:
		r = a != b
	case ir.PredSLT:
		r = a < b
	case ir.PredSLE:
		r = a <= b
	case ir.PredSGT:
		r = a > b
	case ir.PredSGE:
		r = a >= b
	case ir.PredULT:
		r = uint64(a) < uint64(b)
	case ir.PredULE:
		r = uint64(a) <= uint64(b)
	case ir.PredUGT:
		r = uint64(a) > uint64(b)
	case ir.PredUGE:
		r = uint64(a) >= uint64(b)
	}
	if r {
		return 1
	}
	return 0
}

// ---- Copy propagation ----

// copyProp replaces uses of a Copy destination with its source, block-
// locally, while neither is reassigned.
func copyProp(f *ir.Func) bool {
	changed := false
	for _, blk := range f.Blocks {
		alias := map[ir.Value]ir.Value{}
		invalidate := func(v ir.Value) {
			delete(alias, v)
			for k, a := range alias {
				if a == v {
					delete(alias, k)
				}
			}
		}
		for _, in := range blk.Insts {
			for i, a := range in.Args {
				if s, ok := alias[a]; ok {
					in.Args[i] = s
					changed = true
				}
			}
			if in.Res == ir.NoValue {
				continue
			}
			invalidate(in.Res)
			if in.Op == ir.OpCopy && in.Args[0] != in.Res {
				alias[in.Res] = in.Args[0]
			}
		}
	}
	return changed
}

// ---- Local CSE ----

type cseKey struct {
	op   ir.Op
	a, b ir.Value
	imm  int64
	pred ir.Pred
}

// localCSE reuses block-local recomputations of pure expressions.
func localCSE(f *ir.Func) bool {
	changed := false
	for _, blk := range f.Blocks {
		avail := map[cseKey]ir.Value{}
		invalidate := func(v ir.Value) {
			for k, r := range avail {
				if r == v || k.a == v || k.b == v {
					delete(avail, k)
				}
			}
		}
		for _, in := range blk.Insts {
			pure := false
			var key cseKey
			switch in.Op {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
				ir.OpShl, ir.OpShr, ir.OpSar:
				key = cseKey{op: in.Op, a: in.Args[0], b: in.Args[1]}
				pure = true
			case ir.OpICmp:
				key = cseKey{op: in.Op, a: in.Args[0], b: in.Args[1], pred: in.Pred}
				pure = true
			case ir.OpConst:
				key = cseKey{op: in.Op, imm: in.Imm}
				pure = true
			}
			if pure {
				if prev, ok := avail[key]; ok {
					ty := f.ValueType(in.Res)
					res := in.Res
					*in = ir.Inst{Op: ir.OpCopy, Res: res, Args: []ir.Value{prev}, Ty: ty, Pos: in.Pos}
					invalidate(res)
					changed = true
					continue
				}
			}
			if in.Res != ir.NoValue {
				invalidate(in.Res)
				if pure {
					avail[key] = in.Res
				}
			}
		}
	}
	return changed
}

// ---- Dead code elimination ----

func hasSideEffects(in *ir.Inst) bool {
	switch in.Op {
	case ir.OpStore, ir.OpCall, ir.OpICall, ir.OpRet, ir.OpBr, ir.OpCondBr:
		return true
	case ir.OpDiv, ir.OpMod: // may fault
		return true
	}
	return false
}

// dce removes pure instructions whose results are never used anywhere and
// Copy instructions to dead vregs.
func dce(f *ir.Func) bool {
	used := make([]bool, f.NumValues())
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			for _, a := range in.Args {
				if a != ir.NoValue {
					used[a] = true
				}
			}
		}
	}
	changed := false
	for _, blk := range f.Blocks {
		out := blk.Insts[:0]
		for _, in := range blk.Insts {
			if !hasSideEffects(in) && in.Res != ir.NoValue && !used[in.Res] {
				changed = true
				continue
			}
			out = append(out, in)
		}
		blk.Insts = out
	}
	return changed
}

// ---- CFG simplification ----

// simplifyCFG removes blocks unreachable from the entry.
func simplifyCFG(f *ir.Func) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	byID := map[int]*ir.Block{}
	for _, b := range f.Blocks {
		byID[b.ID] = b
	}
	reach := map[int]bool{f.Blocks[0].ID: true}
	work := []int{f.Blocks[0].ID}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		b := byID[id]
		if b == nil {
			continue
		}
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	if len(reach) == len(f.Blocks) {
		return false
	}
	out := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b.ID] {
			out = append(out, b)
		}
	}
	f.Blocks = out
	return true
}
