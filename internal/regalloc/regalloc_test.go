package regalloc

import (
	"testing"

	"confllvm/internal/asm"
	"confllvm/internal/ir"
	"confllvm/internal/types"
)

var longTy = types.MakeInt(8, true, types.Public)

func allocate(f *ir.Func, private map[ir.Value]bool) *Result {
	return Allocate(f,
		func(v ir.Value) bool { return private[v] },
		func(v ir.Value) bool { return false })
}

// TestIntervalRegisterReuse checks interval construction through its
// observable effect: values that are live simultaneously get distinct
// registers, and a value whose interval has expired frees its register for
// the next one.
func TestIntervalRegisterReuse(t *testing.T) {
	f := &ir.Func{Name: "t"}
	blk := f.NewBlock()
	v0 := f.NewValue(longTy)
	v1 := f.NewValue(longTy)
	v2 := f.NewValue(longTy)
	v3 := f.NewValue(longTy)
	blk.Insts = []*ir.Inst{
		{Op: ir.OpConst, Res: v0, Imm: 1},
		{Op: ir.OpConst, Res: v1, Imm: 2},
		{Op: ir.OpAdd, Res: v2, Args: []ir.Value{v0, v1}}, // v0, v1 overlap
		{Op: ir.OpAdd, Res: v3, Args: []ir.Value{v2, v2}}, // v0, v1 now dead
		{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{v3}},
	}
	res := allocate(f, nil)

	for _, v := range []ir.Value{v0, v1, v2, v3} {
		if res.Locs[v].Kind != LocReg {
			t.Fatalf("v%d not in a register: %+v", v, res.Locs[v])
		}
	}
	if res.Locs[v0].Reg == res.Locs[v1].Reg {
		t.Errorf("v0 and v1 are live simultaneously but share %v", res.Locs[v0].Reg)
	}
	if res.Locs[v1].Reg == res.Locs[v2].Reg {
		t.Errorf("v1 and v2 overlap at the add but share %v", res.Locs[v1].Reg)
	}
	// v3 starts after v0's interval ends, so the allocator must have at
	// least reused some register; with a 12-register pool and only two
	// values live at once, nothing may spill.
	if res.PubSlots != 0 || res.PrivSlots != 0 {
		t.Errorf("unexpected spills: pub=%d priv=%d", res.PubSlots, res.PrivSlots)
	}
}

// TestPrivateNeverCalleeSaved checks the core taint invariant: a private
// value must never be assigned a callee-saved register, whatever the
// register pressure (callees compiled elsewhere would spill it to the
// public stack).
func TestPrivateNeverCalleeSaved(t *testing.T) {
	f := &ir.Func{Name: "t"}
	blk := f.NewBlock()
	private := map[ir.Value]bool{}
	// 12 private values all live at once: more than the caller-saved pool,
	// so the allocator is under pressure to cheat.
	var vals []ir.Value
	for i := 0; i < 12; i++ {
		v := f.NewValue(longTy)
		vals = append(vals, v)
		private[v] = true
		blk.Insts = append(blk.Insts, &ir.Inst{Op: ir.OpConst, Res: v, Imm: int64(i)})
	}
	sum := f.NewValue(longTy)
	blk.Insts = append(blk.Insts, &ir.Inst{Op: ir.OpAdd, Res: sum, Args: vals})
	blk.Insts = append(blk.Insts, &ir.Inst{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{sum}})

	res := allocate(f, private)
	for _, v := range vals {
		loc := res.Locs[v]
		switch loc.Kind {
		case LocReg:
			if asm.IsCalleeSaved(loc.Reg) {
				t.Errorf("private v%d assigned callee-saved %v", v, loc.Reg)
			}
			if loc.Reg == ScratchA || loc.Reg == ScratchB {
				t.Errorf("v%d assigned reserved scratch %v", v, loc.Reg)
			}
		case LocSlot:
			if !loc.Private {
				t.Errorf("private v%d spilled to a public slot", v)
			}
		default:
			t.Errorf("v%d has no location", v)
		}
	}
}

// TestPrivateAcrossCallSpills checks that a private value live across a
// call is never kept in any register at all: caller-saved registers die at
// the call and callee-saved ones are forbidden, so it must live in a
// private spill slot.
func TestPrivateAcrossCallSpills(t *testing.T) {
	f := &ir.Func{Name: "t"}
	blk := f.NewBlock()
	priv := f.NewValue(longTy)
	pub := f.NewValue(longTy)
	use := f.NewValue(longTy)
	blk.Insts = []*ir.Inst{
		{Op: ir.OpConst, Res: priv, Imm: 1},
		{Op: ir.OpConst, Res: pub, Imm: 2},
		{Op: ir.OpCall, Res: ir.NoValue, Callee: "ext"},
		{Op: ir.OpAdd, Res: use, Args: []ir.Value{priv, pub}},
		{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{use}},
	}
	res := allocate(f, map[ir.Value]bool{priv: true})

	if !res.HasCall {
		t.Fatal("call not detected")
	}
	pl := res.Locs[priv]
	if pl.Kind != LocSlot {
		t.Fatalf("private value crossing a call must spill, got %+v", pl)
	}
	if !pl.Private {
		t.Error("private spill slot labeled public")
	}
	if res.PrivSlots != 1 {
		t.Errorf("PrivSlots = %d, want 1", res.PrivSlots)
	}
	// The public value may stay in a register, but only a callee-saved one
	// survives the call.
	if gl := res.Locs[pub]; gl.Kind == LocReg && !asm.IsCalleeSaved(gl.Reg) {
		t.Errorf("public value crossing the call landed in caller-saved %v", gl.Reg)
	}
}

// TestSpillSlotTaintLabeling forces both pools to overflow and checks that
// public and private values spill to disjoint, independently-numbered slot
// sequences on their respective stacks.
func TestSpillSlotTaintLabeling(t *testing.T) {
	f := &ir.Func{Name: "t"}
	blk := f.NewBlock()
	private := map[ir.Value]bool{}
	var vals []ir.Value
	// 24 values live at once, alternating taint: overflows the 5-register
	// caller-saved pool (privates) and the 12-register combined pool.
	for i := 0; i < 24; i++ {
		v := f.NewValue(longTy)
		vals = append(vals, v)
		if i%2 == 1 {
			private[v] = true
		}
		blk.Insts = append(blk.Insts, &ir.Inst{Op: ir.OpConst, Res: v, Imm: int64(i)})
	}
	sum := f.NewValue(longTy)
	blk.Insts = append(blk.Insts, &ir.Inst{Op: ir.OpAdd, Res: sum, Args: vals})
	blk.Insts = append(blk.Insts, &ir.Inst{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{sum}})

	res := allocate(f, private)
	seenPub := map[int]bool{}
	seenPriv := map[int]bool{}
	for _, v := range append(append([]ir.Value{}, vals...), sum) {
		loc := res.Locs[v]
		if loc.Kind != LocSlot {
			continue
		}
		if loc.Private != private[v] {
			t.Errorf("v%d spill slot taint = %v, want %v", v, loc.Private, private[v])
		}
		seen := seenPub
		if loc.Private {
			seen = seenPriv
		}
		if seen[loc.Slot] {
			t.Errorf("slot %d (private=%v) assigned twice", loc.Slot, loc.Private)
		}
		seen[loc.Slot] = true
	}
	if len(seenPub) == 0 || len(seenPriv) == 0 {
		t.Fatalf("expected spills in both pools: pub=%d priv=%d", len(seenPub), len(seenPriv))
	}
	if res.PubSlots != len(seenPub) || res.PrivSlots != len(seenPriv) {
		t.Errorf("slot counts pub=%d priv=%d, want %d/%d",
			res.PubSlots, res.PrivSlots, len(seenPub), len(seenPriv))
	}
	// Slots must be numbered densely from 0 within each stack.
	for i := 0; i < res.PubSlots; i++ {
		if !seenPub[i] {
			t.Errorf("public slot %d skipped", i)
		}
	}
	for i := 0; i < res.PrivSlots; i++ {
		if !seenPriv[i] {
			t.Errorf("private slot %d skipped", i)
		}
	}
}

// TestCalleeSavedReporting checks that UsedCalleeSaved reports exactly the
// callee-saved registers handed out.
func TestCalleeSavedReporting(t *testing.T) {
	f := &ir.Func{Name: "t"}
	blk := f.NewBlock()
	v0 := f.NewValue(longTy)
	use := f.NewValue(longTy)
	blk.Insts = []*ir.Inst{
		{Op: ir.OpConst, Res: v0, Imm: 7},
		{Op: ir.OpCall, Res: ir.NoValue, Callee: "ext"},
		{Op: ir.OpAdd, Res: use, Args: []ir.Value{v0, v0}},
		{Op: ir.OpRet, Res: ir.NoValue, Args: []ir.Value{use}},
	}
	res := allocate(f, nil)
	loc := res.Locs[v0]
	if loc.Kind != LocReg || !asm.IsCalleeSaved(loc.Reg) {
		t.Fatalf("public value across a call should get a callee-saved register, got %+v", loc)
	}
	found := false
	for _, r := range res.UsedCalleeSaved {
		if r == loc.Reg {
			found = true
		}
	}
	if !found {
		t.Errorf("%v missing from UsedCalleeSaved %v", loc.Reg, res.UsedCalleeSaved)
	}
}
