// Package regalloc implements a taint-aware linear-scan register allocator
// over the IR's virtual registers.
//
// Taint awareness (paper §4, §5.1):
//
//   - callee-saved registers must hold public taints at call boundaries
//     (ConfLLVM makes callers save/clear private callee-saved registers;
//     we achieve the same invariant by never assigning private values to
//     callee-saved registers at all);
//   - spilled private values go to the private stack, public ones to the
//     public stack — the allocator labels each spill slot with its taint.
//
// R10 and R11 are reserved as instrumentation scratch registers and are
// never allocated.
package regalloc

import (
	"sort"

	"confllvm/internal/asm"
	"confllvm/internal/ir"
)

// LocKind discriminates value locations.
type LocKind uint8

const (
	LocNone LocKind = iota
	LocReg          // general-purpose register
	LocFReg         // floating-point register
	LocSlot         // spill slot (8 bytes) on the public or private stack
)

// Loc is the assigned location of a virtual register.
type Loc struct {
	Kind    LocKind
	Reg     asm.Reg
	FReg    asm.FReg
	Slot    int // slot index within its stack's spill area
	Private bool
	IsFloat bool
}

// Result is the allocation for one function.
type Result struct {
	Locs            []Loc
	PubSlots        int // public spill slots used
	PrivSlots       int // private spill slots used
	UsedCalleeSaved []asm.Reg
	// MaxCallArgs is the largest argument count of any call in the
	// function (for sizing the outgoing-argument area).
	MaxCallArgs int
	HasCall     bool
}

// pools: private values may only live in caller-saved registers.
var (
	calleeSavedPool = []asm.Reg{asm.RBX, asm.RSI, asm.RDI, asm.R12, asm.R13, asm.R14, asm.R15}
	callerSavedPool = []asm.Reg{asm.RAX, asm.RCX, asm.RDX, asm.R8, asm.R9}
	fregPool        = []asm.FReg{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
)

// ScratchA and ScratchB are the reserved instrumentation scratch registers.
const (
	ScratchA = asm.R10
	ScratchB = asm.R11
)

// ScratchFA and ScratchFB are the reserved floating-point scratch registers.
const (
	ScratchFA = asm.FReg(14)
	ScratchFB = asm.FReg(15)
)

type interval struct {
	v           ir.Value
	start, end  int
	crossesCall bool
	private     bool
	isFloat     bool
}

// Allocate runs linear scan on f. isPrivate reports the resolved taint of a
// vreg; isFloat reports whether the vreg holds a float64.
func Allocate(f *ir.Func, isPrivate func(ir.Value) bool, isFloat func(ir.Value) bool) *Result {
	n := f.NumValues()
	res := &Result{Locs: make([]Loc, n)}

	// Linearize instructions and record positions.
	type placed struct {
		in  *ir.Inst
		pos int
	}
	var order []placed
	blockStart := map[int]int{}
	blockEnd := map[int]int{}
	pos := 0
	var callPos []int
	for _, blk := range f.Blocks {
		blockStart[blk.ID] = pos
		for _, in := range blk.Insts {
			order = append(order, placed{in, pos})
			if in.Op == ir.OpCall || in.Op == ir.OpICall {
				callPos = append(callPos, pos)
				res.HasCall = true
				na := len(in.Args)
				if in.Op == ir.OpICall {
					na--
				}
				if na > res.MaxCallArgs {
					res.MaxCallArgs = na
				}
			}
			pos++
		}
		blockEnd[blk.ID] = pos - 1
	}
	if n == 0 {
		return res
	}

	// Liveness analysis (backwards dataflow over blocks).
	words := (n + 63) / 64
	newSet := func() []uint64 { return make([]uint64, words) }
	set := func(s []uint64, v ir.Value) { s[v/64] |= 1 << (uint(v) % 64) }
	get := func(s []uint64, v ir.Value) bool { return s[v/64]&(1<<(uint(v)%64)) != 0 }

	use := map[int][]uint64{}
	def := map[int][]uint64{}
	liveIn := map[int][]uint64{}
	liveOut := map[int][]uint64{}
	for _, blk := range f.Blocks {
		u, d := newSet(), newSet()
		for _, in := range blk.Insts {
			for _, a := range in.Args {
				if a != ir.NoValue && !get(d, a) {
					set(u, a)
				}
			}
			if in.Res != ir.NoValue && !get(u, in.Res) {
				set(d, in.Res)
			}
		}
		use[blk.ID], def[blk.ID] = u, d
		liveIn[blk.ID], liveOut[blk.ID] = newSet(), newSet()
	}
	// Parameters are defined at entry.
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			blk := f.Blocks[i]
			out := liveOut[blk.ID]
			for _, s := range blk.Succs() {
				for w := 0; w < words; w++ {
					nv := out[w] | liveIn[s][w]
					if nv != out[w] {
						out[w] = nv
						changed = true
					}
				}
			}
			in := liveIn[blk.ID]
			for w := 0; w < words; w++ {
				nv := use[blk.ID][w] | (out[w] &^ def[blk.ID][w])
				if nv != in[w] {
					in[w] = nv
					changed = true
				}
			}
		}
	}

	// Build single covering intervals.
	starts := make([]int, n)
	ends := make([]int, n)
	for i := range starts {
		starts[i] = -1
	}
	touch := func(v ir.Value, p int) {
		if starts[v] == -1 || p < starts[v] {
			starts[v] = p
		}
		if p > ends[v] {
			ends[v] = p
		}
	}
	for _, pl := range order {
		for _, a := range pl.in.Args {
			if a != ir.NoValue {
				touch(a, pl.pos)
			}
		}
		if pl.in.Res != ir.NoValue {
			touch(pl.in.Res, pl.pos)
		}
	}
	for _, blk := range f.Blocks {
		for v := ir.Value(0); int(v) < n; v++ {
			if get(liveIn[blk.ID], v) {
				touch(v, blockStart[blk.ID])
			}
			if get(liveOut[blk.ID], v) {
				touch(v, blockEnd[blk.ID])
			}
		}
	}
	for _, pv := range f.ParamRegs {
		touch(pv, 0)
	}

	var ivs []*interval
	for v := 0; v < n; v++ {
		if starts[v] == -1 {
			continue
		}
		iv := &interval{v: ir.Value(v), start: starts[v], end: ends[v],
			private: isPrivate(ir.Value(v)), isFloat: isFloat(ir.Value(v))}
		for _, cp := range callPos {
			if cp >= iv.start && cp < iv.end {
				iv.crossesCall = true
				break
			}
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].end < ivs[j].end
	})

	// Linear scan with three pools.
	type active struct {
		iv  *interval
		reg asm.Reg
		fr  asm.FReg
	}
	var act []active
	freeGPR := map[asm.Reg]bool{}
	for _, r := range calleeSavedPool {
		freeGPR[r] = true
	}
	for _, r := range callerSavedPool {
		freeGPR[r] = true
	}
	freeFP := map[asm.FReg]bool{}
	for _, r := range fregPool {
		freeFP[r] = true
	}
	usedCS := map[asm.Reg]bool{}

	expire := func(p int) {
		out := act[:0]
		for _, a := range act {
			if a.iv.end < p {
				if a.iv.isFloat {
					freeFP[a.fr] = true
				} else {
					freeGPR[a.reg] = true
				}
			} else {
				out = append(out, a)
			}
		}
		act = out
	}

	spill := func(iv *interval) {
		var slot int
		if iv.private {
			slot = res.PrivSlots
			res.PrivSlots++
		} else {
			slot = res.PubSlots
			res.PubSlots++
		}
		res.Locs[iv.v] = Loc{Kind: LocSlot, Slot: slot, Private: iv.private, IsFloat: iv.isFloat}
	}

	for _, iv := range ivs {
		expire(iv.start)
		if iv.isFloat {
			if iv.crossesCall {
				spill(iv) // no callee-saved FP registers in our model
				continue
			}
			assigned := false
			for _, r := range fregPool {
				if freeFP[r] {
					freeFP[r] = false
					res.Locs[iv.v] = Loc{Kind: LocFReg, FReg: r, Private: iv.private, IsFloat: true}
					act = append(act, active{iv, 0, r})
					assigned = true
					break
				}
			}
			if !assigned {
				spill(iv)
			}
			continue
		}
		// Integer/pointer value: choose an allowed pool.
		var pool []asm.Reg
		switch {
		case iv.private && iv.crossesCall:
			pool = nil // private across a call: must be in private memory
		case iv.private:
			pool = callerSavedPool
		case iv.crossesCall:
			pool = calleeSavedPool
		default:
			// Prefer caller-saved to keep callee-saved pushes rare.
			pool = append(append([]asm.Reg{}, callerSavedPool...), calleeSavedPool...)
		}
		assigned := false
		for _, r := range pool {
			if freeGPR[r] {
				freeGPR[r] = false
				res.Locs[iv.v] = Loc{Kind: LocReg, Reg: r, Private: iv.private}
				if asm.IsCalleeSaved(r) {
					usedCS[r] = true
				}
				act = append(act, active{iv, r, 0})
				assigned = true
				break
			}
		}
		if !assigned {
			spill(iv)
		}
	}

	for _, r := range calleeSavedPool {
		if usedCS[r] {
			res.UsedCalleeSaved = append(res.UsedCalleeSaved, r)
		}
	}
	return res
}
