package verify

import (
	"fmt"
	"sort"
	"sync"
)

// Cache memoizes per-function verdicts across Verify calls. A verdict is
// keyed by (context hash, span hash, span start):
//
//   - the context hash covers everything outside the function's own bytes
//     that a verdict can depend on — both magic prefixes, every magic
//     word occurrence (offset and word), the code base, code length, the
//     externals table, the codegen config, and Strict;
//   - the span hash covers the function's bytes, from its MCall magic
//     word to the next procedure entry (or end of code);
//   - the span start pins the function's code offset (offsets appear in
//     errors and in the used-return-site lists).
//
// Patching one function changes only its own span hash, so re-verifying
// the image re-checks exactly the changed function — unless the patch
// adds or removes a magic occurrence, which changes the context hash and
// conservatively invalidates every function. A procedure whose checks
// read bytes outside its own span (e.g. a jump into another function) is
// never cached. Cache is safe for concurrent use and never evicts; scope
// one per trust domain (the bench harness keeps one for its load gate).
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*verdict
}

// NewCache returns an empty verdict cache.
func NewCache() *Cache {
	return &Cache{m: map[cacheKey]*verdict{}}
}

// Len reports the number of cached verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

type cacheKey struct {
	ctx   uint64
	span  uint64
	start int
}

// verdict is an immutable cached procedure result.
type verdict struct {
	insts    int
	stub     bool
	usedRets []int
	hasErr   bool
	errOff   int
	errMsg   string
}

func (vd *verdict) err() *Error {
	if !vd.hasErr {
		return nil
	}
	return &Error{vd.errOff, vd.errMsg}
}

func (c *Cache) get(k cacheKey) (*verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	vd, ok := c.m[k]
	return vd, ok
}

func (c *Cache) put(k cacheKey, vd *verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = vd
}

// FNV-1a, the same offset basis/prime as hash/fnv (inlined so hashing a
// mixed stream of bytes and integers needs no allocation).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

func hashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h = fnvByte(h, c)
	}
	return h
}

// contextHash fingerprints the image-wide inputs of every procedure
// verdict. entries must be the sorted MCall offsets (sorted iteration
// keeps the hash deterministic).
func (v *verifier) contextHash(entries []int) uint64 {
	h := uint64(fnvOffset)
	h = fnvUint64(h, v.img.MCallPrefix)
	h = fnvUint64(h, v.img.MRetPrefix)
	h = fnvUint64(h, v.img.Layout.CodeBase)
	h = fnvUint64(h, uint64(len(v.code)))
	h = fnvUint64(h, v.img.Layout.ExtTableBase())
	h = fnvUint64(h, uint64(len(v.img.Externals)))
	// The codegen config (bounds scheme, chkstk, stack offset, ...) and
	// Strict select which checks run; %+v is deterministic for a struct
	// of scalars.
	h = hashInto(h, fmt.Sprintf("%+v/strict=%v", v.img.Config, v.opts.Strict))
	for _, off := range entries {
		h = fnvUint64(h, uint64(off))
		h = fnvUint64(h, v.mcallOffs[off])
	}
	mrets := make([]int, 0, len(v.mretOffs))
	for off := range v.mretOffs {
		mrets = append(mrets, off)
	}
	sort.Ints(mrets)
	for _, off := range mrets {
		h = fnvUint64(h, uint64(off))
		h = fnvUint64(h, v.mretOffs[off])
	}
	return h
}

func hashInto(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}
