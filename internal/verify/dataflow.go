package verify

import (
	"fmt"

	"confllvm/internal/asm"
	"confllvm/internal/codegen"
)

// Register taint state: true = private (H), false = public (L).
type state struct {
	g     [asm.NumRegs]bool
	f     [asm.NumFRegs]bool
	valid bool
}

func (s *state) join(o *state) bool {
	if !o.valid {
		return false
	}
	if !s.valid {
		*s = *o
		return true
	}
	changed := false
	for i := range s.g {
		if o.g[i] && !s.g[i] {
			s.g[i] = true
			changed = true
		}
	}
	for i := range s.f {
		if o.f[i] && !s.f[i] {
			s.f[i] = true
			changed = true
		}
	}
	return changed
}

// block is a basic block of a disassembled procedure.
type block struct {
	start int
	insts []*inst
	succs []int // block start offsets
}

// checkProc runs the structural and dataflow checks on one procedure.
func (v *verifier) checkProc(p *proc) error {
	if err := v.structural(p); err != nil {
		return err
	}
	blocks, err := v.buildBlocks(p)
	if err != nil {
		return err
	}

	conf := v.img.Config
	// _chkstk presence: a frame-allocating procedure must check rsp.
	// (The MPX-requires-ChkStk configuration check happens once in
	// VerifyStats, not per procedure.)
	hasSub, hasChk := false, false
	for _, off := range p.order {
		in := p.insts[off]
		if in.Op == asm.OpSubRI && in.Dst == asm.RSP {
			hasSub = true
		}
		if in.Op == asm.OpChkSP {
			hasChk = true
		}
		// rsp may only move by push/pop/call/ret-idiom and immediate
		// adjustment; anything else lets U escape its stack.
		switch in.Op {
		case asm.OpSubRI, asm.OpAddRI, asm.OpPush, asm.OpPop, asm.OpChkSP:
		default:
			if writesGPR(&in.Inst) == asm.RSP {
				return &Error{in.off, "arbitrary rsp modification"}
			}
		}
	}
	if conf.ChkStk && hasSub && !hasChk {
		return &Error{p.entryOff, "frame allocation without a chksp stack check"}
	}

	// Entry taint state from the procedure's magic bits: argument
	// registers per the taint bits, other caller-saved conservatively
	// private, callee-saved public (ConfLLVM's convention).
	entry := state{valid: true}
	for _, r := range asm.CallerSaved {
		entry.g[r] = true
	}
	for i := range entry.f {
		entry.f[i] = true
	}
	for i, r := range asm.ArgRegs {
		entry.g[r] = p.bits&(1<<i) != 0
	}
	entry.g[asm.RSP] = false

	in := map[int]*state{}
	for _, b := range blocks {
		in[b.start] = &state{}
	}
	*in[p.entryOff] = entry

	// Fixpoint.
	work := []int{p.entryOff}
	byStart := map[int]*block{}
	for _, b := range blocks {
		byStart[b.start] = b
	}
	for len(work) > 0 {
		start := work[len(work)-1]
		work = work[:len(work)-1]
		b := byStart[start]
		out := *in[start]
		if !out.valid {
			continue
		}
		if err := v.transferBlock(p, b, &out); err != nil {
			return err
		}
		for _, s := range b.succs {
			if in[s].join(&out) {
				work = append(work, s)
			}
		}
	}
	return nil
}

// structural validates the CFI instruction idioms on the linear layout and
// annotates the anchor instructions with their extracted taint bits.
func (v *verifier) structural(p *proc) error {
	idx := map[int]int{}
	for i, off := range p.order {
		idx[off] = i
	}
	adjacent := func(i int) bool { // inst i immediately precedes inst i+1
		a := p.insts[p.order[i]]
		return a.off+a.size == p.order[i+1]
	}
	isTrap := func(addr uint64) bool {
		o := int(addr - v.img.Layout.CodeBase)
		t, ok := p.insts[o]
		return ok && t.Op == asm.OpTrap
	}

	for i, off := range p.order {
		in := p.insts[off]
		switch in.Op {
		case asm.OpICall:
			// [mov r11, imm] [not r11] [cmp [rt], r11] [jne trap]
			// [add rt, 8] [icall rt]
			if i < 5 {
				return &Error{off, "icall without CFI check sequence"}
			}
			i0 := p.insts[p.order[i-5]]
			i1 := p.insts[p.order[i-4]]
			i2 := p.insts[p.order[i-3]]
			i3 := p.insts[p.order[i-2]]
			i4 := p.insts[p.order[i-1]]
			ok := i0.Op == asm.OpMovRI && i1.Op == asm.OpNot && i1.Dst == i0.Dst &&
				i2.Op == asm.OpCmpMR && i2.Src == i0.Dst && i2.M.Base == in.Src &&
				i3.Op == asm.OpJcc && i3.Cond == asm.CondNE && isTrap(uint64(i3.Imm)) &&
				i4.Op == asm.OpAddRI && i4.Dst == in.Src && i4.Imm == 8
			for k := i - 5; k < i && ok; k++ {
				ok = adjacent(k)
			}
			if !ok {
				return &Error{off, "icall check idiom malformed"}
			}
			word := ^uint64(i0.Imm)
			if word&^31 != v.img.MCallPrefix {
				return &Error{off, "icall checks a non-MCall magic word"}
			}
			in.icallBits = uint8(word & 31)
			in.icallOK = true
		case asm.OpJmpR:
			// Return idiom:
			// [pop r] [mov r11, imm] [not r11] [cmp [r], r11] [jne trap]
			// [add r, 8] [jmp r]
			if i < 6 {
				return &Error{off, "indirect jump without return idiom"}
			}
			i0 := p.insts[p.order[i-6]]
			i1 := p.insts[p.order[i-5]]
			i2 := p.insts[p.order[i-4]]
			i3 := p.insts[p.order[i-3]]
			i4 := p.insts[p.order[i-2]]
			i5 := p.insts[p.order[i-1]]
			r := in.Src
			ok := i0.Op == asm.OpPop && i0.Dst == r &&
				i1.Op == asm.OpMovRI && i2.Op == asm.OpNot && i2.Dst == i1.Dst &&
				i3.Op == asm.OpCmpMR && i3.M.Base == r && i3.Src == i1.Dst &&
				i4.Op == asm.OpJcc && i4.Cond == asm.CondNE && isTrap(uint64(i4.Imm)) &&
				i5.Op == asm.OpAddRI && i5.Dst == r && i5.Imm == 8
			for k := i - 6; k < i && ok; k++ {
				ok = adjacent(k)
			}
			if !ok {
				return &Error{off, "return idiom malformed (stray indirect jump)"}
			}
			word := ^uint64(i1.Imm)
			if word&^31 != v.img.MRetPrefix {
				return &Error{off, "return checks a non-MRet magic word"}
			}
			in.retBit = uint8(word & 1)
			in.retOK = true
		case asm.OpExit:
			return &Error{off, "exit instruction inside a procedure"}
		}
	}
	return nil
}

// buildBlocks splits a procedure into basic blocks with successor edges.
func (v *verifier) buildBlocks(p *proc) ([]*block, error) {
	var blocks []*block
	var cur *block
	for i, off := range p.order {
		if p.leaders[off] || cur == nil {
			cur = &block{start: off}
			blocks = append(blocks, cur)
		}
		in := p.insts[off]
		cur.insts = append(cur.insts, in)
		next := -1
		if i+1 < len(p.order) {
			next = p.order[i+1]
		}
		terminated := true
		switch in.Op {
		case asm.OpJmp:
			cur.succs = append(cur.succs, int(uint64(in.Imm)-v.img.Layout.CodeBase))
		case asm.OpJcc:
			cur.succs = append(cur.succs,
				int(uint64(in.Imm)-v.img.Layout.CodeBase), in.off+in.size)
		case asm.OpCall, asm.OpICall:
			cur.succs = append(cur.succs, in.retSite+8)
		case asm.OpJmpR, asm.OpTrap, asm.OpExit:
		default:
			terminated = false
			if next >= 0 && p.leaders[next] {
				if in.off+in.size != next {
					return nil, &Error{in.off, "control falls into a gap"}
				}
				cur.succs = append(cur.succs, next)
				terminated = true
			}
		}
		if terminated {
			cur = nil
		}
	}
	return blocks, nil
}

// writesGPR returns the GPR an instruction writes, or NoReg.
func writesGPR(in *asm.Inst) asm.Reg {
	switch in.Op {
	case asm.OpMovRR, asm.OpMovRI, asm.OpLoad, asm.OpLea, asm.OpPop,
		asm.OpAddRR, asm.OpAddRI, asm.OpSubRR, asm.OpSubRI,
		asm.OpMulRR, asm.OpMulRI, asm.OpDivRR, asm.OpModRR,
		asm.OpAndRR, asm.OpAndRI, asm.OpOrRR, asm.OpOrRI,
		asm.OpXorRR, asm.OpXorRI,
		asm.OpShlRR, asm.OpShlRI, asm.OpShrRR, asm.OpShrRI,
		asm.OpSarRR, asm.OpSarRI, asm.OpNeg, asm.OpNot,
		asm.OpSetCC, asm.OpCvtFI, asm.OpMovQFI:
		return in.Dst
	}
	return asm.NoReg
}

type bndCheck struct {
	reg asm.Reg
	bnd asm.Bnd
}

// transferBlock applies the taint transfer function and all per-
// instruction checks to one block.
func (v *verifier) transferBlock(p *proc, b *block, s *state) error {
	conf := v.img.Config
	checks := map[bndCheck]uint8{} // bit0 = lower checked, bit1 = upper
	flags := false                 // taint of the flags register

	invalidate := func(r asm.Reg) {
		for k := range checks {
			if k.reg == r {
				delete(checks, k)
			}
		}
	}

	// operandLevel determines the region taint of a memory operand and
	// validates its protection evidence.
	operandLevel := func(in *inst) (bool, error) {
		m := in.M
		if conf.Bounds == codegen.BoundsSeg {
			if !m.Use32 {
				return false, &Error{in.off, "segment-scheme operand without 32-bit constraint"}
			}
			switch m.Seg {
			case asm.SegGS:
				return true, nil
			case asm.SegFS:
				return false, nil
			}
			return false, &Error{in.off, "unprefixed memory operand under segmentation scheme"}
		}
		// MPX scheme.
		if m.Base == asm.RSP {
			return int64(m.Disp) >= conf.StackOffset, nil
		}
		lo := checks[bndCheck{m.Base, asm.BND0}] == 3
		hi := checks[bndCheck{m.Base, asm.BND1}] == 3
		switch {
		case lo && !hi:
			return false, nil
		case hi && !lo:
			return true, nil
		case lo && hi:
			return false, &Error{in.off, "ambiguous bound checks on operand base"}
		}
		return false, &Error{in.off, "memory operand without MPX bound checks"}
	}

	for _, in := range b.insts {
		switch in.Op {
		case asm.OpNop, asm.OpChkSP, asm.OpTrap:
		case asm.OpMovRR:
			s.g[in.Dst] = s.g[in.Src]
		case asm.OpMovRI:
			s.g[in.Dst] = false
		case asm.OpLea:
			lvl := false
			if in.M.Base != asm.NoReg {
				lvl = lvl || s.g[in.M.Base]
			}
			if in.M.Index != asm.NoReg {
				lvl = lvl || s.g[in.M.Index]
			}
			s.g[in.Dst] = lvl
		case asm.OpLoad:
			lvl, err := operandLevel(in)
			if err != nil {
				return err
			}
			s.g[in.Dst] = lvl
		case asm.OpStore:
			lvl, err := operandLevel(in)
			if err != nil {
				return err
			}
			if s.g[in.Src] && !lvl {
				return &Error{in.off, "private register stored to public memory"}
			}
		case asm.OpFLoad:
			lvl, err := operandLevel(in)
			if err != nil {
				return err
			}
			s.f[in.FDst] = lvl
		case asm.OpFStore:
			lvl, err := operandLevel(in)
			if err != nil {
				return err
			}
			if s.f[in.FSrc] && !lvl {
				return &Error{in.off, "private FP register stored to public memory"}
			}
		case asm.OpPush:
			if s.g[in.Src] {
				return &Error{in.off, "private register pushed to the public stack"}
			}
		case asm.OpPop:
			s.g[in.Dst] = false
		case asm.OpAddRR, asm.OpSubRR, asm.OpMulRR, asm.OpDivRR, asm.OpModRR,
			asm.OpAndRR, asm.OpOrRR, asm.OpXorRR,
			asm.OpShlRR, asm.OpShrRR, asm.OpSarRR:
			s.g[in.Dst] = s.g[in.Dst] || s.g[in.Src]
		case asm.OpAddRI, asm.OpSubRI, asm.OpMulRI, asm.OpAndRI, asm.OpOrRI,
			asm.OpXorRI, asm.OpShlRI, asm.OpShrRI, asm.OpSarRI,
			asm.OpNeg, asm.OpNot:
			// dst taint unchanged
		case asm.OpCmpRR, asm.OpTestRR:
			flags = s.g[in.Dst] || s.g[in.Src]
		case asm.OpCmpRI, asm.OpTestRI:
			flags = s.g[in.Dst]
		case asm.OpCmpMR:
			// Only legal inside CFI idioms (structural pass enforced
			// adjacency); it compares code bytes with a public constant.
			flags = s.g[in.Src]
		case asm.OpSetCC:
			s.g[in.Dst] = flags
		case asm.OpJcc:
			if v.opts.Strict && flags {
				return &Error{in.off, "branch on private data (implicit flow)"}
			}
		case asm.OpJmp:
		case asm.OpJmpR:
			if !in.retOK {
				return &Error{in.off, "unvalidated indirect jump"}
			}
			if s.g[asm.RetReg] && in.retBit == 0 {
				return &Error{in.off, "private return value at a public return site"}
			}
		case asm.OpCall:
			entryOff := int(uint64(in.Imm) - v.img.Layout.CodeBase)
			calleeBits := uint8(v.mcallOffs[entryOff-8] & 31)
			if err := v.checkArgBits(in, s, calleeBits); err != nil {
				return err
			}
			v.applyCallEffect(in, s)
			checks = map[bndCheck]uint8{}
		case asm.OpICall:
			if !in.icallOK {
				return &Error{in.off, "unchecked indirect call"}
			}
			if err := v.checkArgBits(in, s, in.icallBits); err != nil {
				return err
			}
			v.applyCallEffect(in, s)
			checks = map[bndCheck]uint8{}
		case asm.OpBndCLReg:
			checks[bndCheck{in.Src, in.Bnd}] |= 1
		case asm.OpBndCUReg:
			checks[bndCheck{in.Src, in.Bnd}] |= 2
		case asm.OpBndCLMem, asm.OpBndCUMem:
			// The generator uses register-form checks only.
			return &Error{in.off, "unexpected memory-form bound check"}
		case asm.OpFMovRR:
			s.f[in.FDst] = s.f[in.FSrc]
		case asm.OpFMovI:
			s.f[in.FDst] = false
		case asm.OpFAdd, asm.OpFSub, asm.OpFMul, asm.OpFDiv, asm.OpFMax:
			s.f[in.FDst] = s.f[in.FDst] || s.f[in.FSrc]
		case asm.OpFCmp:
			flags = s.f[in.FDst] || s.f[in.FSrc]
		case asm.OpCvtIF:
			s.f[in.FDst] = s.g[in.Src]
		case asm.OpCvtFI:
			s.g[in.Dst] = s.f[in.FSrc]
		case asm.OpMovQIF:
			s.f[in.FDst] = s.g[in.Src]
		case asm.OpMovQFI:
			s.g[in.Dst] = s.f[in.FSrc]
		default:
			return &Error{in.off, "instruction not allowed in untrusted code: " + in.Op.String()}
		}
		if r := writesGPR(&in.Inst); r != asm.NoReg {
			invalidate(r)
		}
	}
	return nil
}

// checkArgBits enforces that argument-register taints flow into the
// callee's declared taints (ℓ ⊑ M_call, Appendix A's call rule).
func (v *verifier) checkArgBits(in *inst, s *state, bits uint8) error {
	for i, r := range asm.ArgRegs {
		if s.g[r] && bits&(1<<i) == 0 {
			return &Error{in.off,
				fmt.Sprintf("private argument register %s at a public-argument call site", r)}
		}
	}
	return nil
}

// applyCallEffect models a call's register effect: caller-saved registers
// become (conservatively) private, callee-saved stay public, and the
// return register's taint comes from the return-site magic word.
func (v *verifier) applyCallEffect(in *inst, s *state) {
	for _, r := range asm.CallerSaved {
		s.g[r] = true
	}
	for _, r := range asm.CalleeSaved {
		s.g[r] = false
	}
	for i := range s.f {
		s.f[i] = true
	}
	retWord := v.mretOffs[in.retSite]
	s.g[asm.RetReg] = retWord&1 != 0
}
