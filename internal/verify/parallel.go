package verify

import (
	"sort"
	"sync"
	"sync/atomic"

	"confllvm/internal/asm"
)

// procResult is the verdict of one independently checked procedure.
type procResult struct {
	insts    int
	stub     bool
	usedRets []int
	err      *Error
	hit      bool // served from the verdict cache
}

// run drives the per-procedure checks — serially or over a worker pool —
// and then performs the whole-image passes (exit-shim legitimization,
// stray-magic detection) that need every procedure's verdict.
//
// Determinism invariant: the verdict, the reported error and Stats are
// identical for every Options.Parallel value. Procedures are independent
// (checkOne never mutates the verifier), so the only scheduling-sensitive
// quantity is *which* failing procedure is seen first; the pool resolves
// that by always reporting the failure of the lowest-offset entry — which
// is exactly the error the serial sorted sweep hits first.
func (v *verifier) run() (Stats, error) {
	v.scanMagic()

	entries := make([]int, 0, len(v.mcallOffs))
	for off := range v.mcallOffs {
		entries = append(entries, off)
	}
	sort.Ints(entries)

	if v.opts.Cache != nil {
		v.ctxHash = v.contextHash(entries)
	}

	// spanEnd(i) is the end of entry i's span: the next entry's magic
	// word, or the end of code for the last procedure.
	spanEnd := func(i int) int {
		if i+1 < len(entries) {
			return entries[i+1]
		}
		return len(v.code)
	}

	results := make([]procResult, len(entries))
	workers := v.opts.Parallel
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers <= 1 {
		for i, off := range entries {
			results[i] = v.checkOne(off, spanEnd(i))
			if results[i].err != nil {
				return Stats{}, results[i].err
			}
		}
	} else {
		// minErr is the lowest entry index known to fail (len(entries)
		// while none has). Workers skip indexes above it — those can never
		// be the reported error — and shrink it with a CAS loop when they
		// find an earlier failure.
		var next atomic.Int64
		minErr := atomic.Int64{}
		minErr.Store(int64(len(entries)))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(entries) {
						return
					}
					if int64(i) > minErr.Load() {
						continue // a lower-offset proc already failed
					}
					r := v.checkOne(entries[i], spanEnd(i))
					results[i] = r
					if r.err != nil {
						for {
							cur := minErr.Load()
							if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
								break
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		if m := minErr.Load(); m < int64(len(entries)) {
			return Stats{}, results[m].err
		}
	}

	var stats Stats
	used := make(map[int]bool, len(v.mcallOffs)+len(v.mretOffs))
	for _, off := range entries {
		used[off] = true // entry magic words are legitimate
	}
	for i := range results {
		r := &results[i]
		stats.Funcs++
		stats.Insts += r.insts
		if r.stub {
			stats.Stubs++
		}
		if r.hit {
			stats.CacheHits++
		}
		for _, rs := range r.usedRets {
			used[rs] = true
		}
	}

	// Exit shims: MRet word immediately followed by exit.
	mrets := make([]int, 0, len(v.mretOffs))
	for off := range v.mretOffs {
		mrets = append(mrets, off)
	}
	sort.Ints(mrets)
	for _, off := range mrets {
		if used[off] {
			continue
		}
		if inst, _, err := asm.Decode(v.code, off+8); err == nil && inst.Op == asm.OpExit {
			used[off] = true
		}
	}

	// Any magic occurrence we did not legitimize is suspicious. The
	// offsets are swept in sorted order so the reported stray is the
	// lowest one — byte-stable output (the old map-order sweep was not).
	for _, off := range entries {
		if !used[off] {
			return Stats{}, &Error{off, "stray MCall magic word"}
		}
	}
	for _, off := range mrets {
		if !used[off] {
			return Stats{}, &Error{off, "stray MRet magic word"}
		}
	}
	return stats, nil
}

// checkOne disassembles and checks the procedure whose MCall magic word
// is at magicOff. It reads only the immutable verifier context, so any
// number of checkOne calls may run concurrently. spanEnd bounds the
// procedure's span for verdict caching.
func (v *verifier) checkOne(magicOff, spanEnd int) procResult {
	c := v.opts.Cache
	var key cacheKey
	if c != nil {
		key = cacheKey{ctx: v.ctxHash, span: hashBytes(v.code[magicOff:spanEnd]), start: magicOff}
		if verd, ok := c.get(key); ok {
			return procResult{insts: verd.insts, stub: verd.stub,
				usedRets: verd.usedRets, err: verd.err(), hit: true}
		}
	}

	r := procResult{}
	p, err := v.disassemble(magicOff)
	if err == nil && !p.isStub {
		err = v.checkProc(p)
	}
	r.insts = len(p.insts)
	r.stub = p.isStub
	r.usedRets = p.usedRets
	if err != nil {
		verr, ok := err.(*Error)
		if !ok {
			// Should not happen (every rejection is an *Error), but never
			// lose an error to the cache path.
			verr = &Error{magicOff, err.Error()}
		}
		r.err = verr
	}

	// Cacheable only if every byte the checks read lies inside this
	// procedure's span: a verdict that peeked at another function's bytes
	// would go stale when *that* function is patched.
	if c != nil && p.lo >= magicOff && p.hi <= spanEnd {
		verd := &verdict{insts: r.insts, stub: r.stub, usedRets: r.usedRets}
		if r.err != nil {
			verd.hasErr = true
			verd.errOff = r.err.Off
			verd.errMsg = r.err.Msg
		}
		c.put(key, verd)
	}
	return r
}
