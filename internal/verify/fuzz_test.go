package verify_test

import (
	"errors"
	"sync"
	"testing"

	"confllvm"
	"confllvm/internal/link"
	"confllvm/internal/verify"
)

// fuzzImages compiles the two deployable-scheme images once per process;
// the fuzzer flips bytes in copies of their code pages.
var fuzzImages = sync.OnceValue(func() []*link.Image {
	var imgs []*link.Image
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
		art, err := confllvm.Compile(confllvm.Program{
			Sources: []confllvm.Source{{Name: "t.c", Code: testProg}},
		}, v)
		if err != nil {
			panic(err)
		}
		imgs = append(imgs, art.Image)
	}
	return imgs
})

// FuzzVerifyImage flips one code byte (position and xor mask fuzzer-
// chosen) in a valid linked image and checks the verifier's two hard
// properties on arbitrary input: it never panics, and the serial and
// parallel verdicts are identical — accept/accept or the same Error.
// Seed corpus entries live in testdata/fuzz/FuzzVerifyImage.
func FuzzVerifyImage(f *testing.F) {
	// Seeds: untouched image (delta 0), opcode-byte smashes at the start,
	// middle and end of the code page, magic-word corruptions, and a
	// high-bit flip (prefix byte territory).
	f.Add(uint32(0), byte(0), false)
	f.Add(uint32(0), byte(0xff), false)
	f.Add(uint32(9), byte(0x01), true)
	f.Add(uint32(101), byte(0x80), false)
	f.Add(uint32(4096), byte(0x20), true)
	f.Add(uint32(0xffffffff), byte(0x55), false)

	f.Fuzz(func(t *testing.T, pos uint32, delta byte, seg bool) {
		imgs := fuzzImages()
		img := imgs[0]
		if seg {
			img = imgs[1]
		}
		code := append([]byte{}, img.Code...)
		code[int(pos)%len(code)] ^= delta
		mut := *img
		mut.Code = code

		sStats, sErr := verify.VerifyStats(&mut, verify.Options{})
		pStats, pErr := verify.VerifyStats(&mut, verify.Options{Parallel: 8})

		if (sErr == nil) != (pErr == nil) {
			t.Fatalf("serial verdict %v, parallel verdict %v", sErr, pErr)
		}
		if sErr == nil {
			if sStats != pStats {
				t.Fatalf("serial stats %+v, parallel stats %+v", sStats, pStats)
			}
			return
		}
		var sv, pv *verify.Error
		if errors.As(sErr, &sv) != errors.As(pErr, &pv) || (sv != nil && *sv != *pv) {
			t.Fatalf("serial error %v, parallel error %v", sErr, pErr)
		}
	})
}
