package verify_test

import (
	"errors"
	"testing"

	"confllvm"
	"confllvm/internal/asm"
	"confllvm/internal/link"
	"confllvm/internal/verify"
)

// decodeSweep walks the code linearly, skipping magic words, and calls fn
// for every decodable instruction offset (the same sweep the fault-
// injection tests use to find mutation sites).
func decodeSweep(img *link.Image, fn func(off int, in asm.Inst, n int)) {
	magic := img.MagicOffsets()
	for off := 0; off < len(img.Code); {
		if magic[off] {
			off += 8
			continue
		}
		in, n, err := asm.Decode(img.Code, off)
		if err != nil {
			off++
			continue
		}
		fn(off, in, n)
		off += n
	}
}

// TestParallelMatchesSerial pins the tentpole's determinism contract on
// accepting runs: Stats and the verdict are identical for every worker
// count.
func TestParallelMatchesSerial(t *testing.T) {
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
		art := compile(t, v)
		serial, err := verify.VerifyStats(art.Image, verify.Options{})
		if err != nil {
			t.Fatalf("[%v] serial: %v", v, err)
		}
		if serial.Funcs == 0 || serial.Insts == 0 || serial.Stubs == 0 {
			t.Fatalf("[%v] implausible stats: %+v", v, serial)
		}
		for _, workers := range []int{2, 4, 8, 64} {
			par, err := verify.VerifyStats(art.Image, verify.Options{Parallel: workers})
			if err != nil {
				t.Fatalf("[%v] parallel=%d: %v", v, workers, err)
			}
			if par != serial {
				t.Errorf("[%v] parallel=%d stats %+v differ from serial %+v", v, workers, par, serial)
			}
		}
	}
}

// TestParallelFirstErrorDeterminism corrupts *many* procedures at once and
// demands the parallel verifier always report exactly the error the serial
// sorted sweep hits first, under every worker count and across repeated
// runs (scheduling must never leak into the verdict).
func TestParallelFirstErrorDeterminism(t *testing.T) {
	art := compile(t, confllvm.VariantMPX)
	img := art.Image

	// Turn every pop into a plain ret: most procedures now fail, each at
	// its own offset.
	code := append([]byte{}, img.Code...)
	broken := 0
	decodeSweep(img, func(off int, in asm.Inst, n int) {
		if in.Op == asm.OpPop {
			code[off] = byte(asm.OpRet)
			broken++
		}
	})
	if broken < 2 {
		t.Fatalf("corpus too small: only %d pops to break", broken)
	}
	mut := *img
	mut.Code = code

	serr := verify.Verify(&mut, verify.Options{})
	var sverr *verify.Error
	if !errors.As(serr, &sverr) {
		t.Fatalf("serial: want a verify.Error, got %v", serr)
	}

	for _, workers := range []int{2, 4, 8, 64} {
		for rep := 0; rep < 5; rep++ {
			perr := verify.Verify(&mut, verify.Options{Parallel: workers})
			var pverr *verify.Error
			if !errors.As(perr, &pverr) || *pverr != *sverr {
				t.Fatalf("parallel=%d rep=%d: verdict %v differs from serial %v",
					workers, rep, perr, serr)
			}
		}
	}
}

// TestVerifyStatsCache pins the verdict cache's accounting: a cold run
// caches every procedure, a warm run serves all of them as hits with
// otherwise identical stats — serial and parallel alike.
func TestVerifyStatsCache(t *testing.T) {
	art := compile(t, confllvm.VariantSeg)
	cache := verify.NewCache()
	opts := verify.Options{Cache: cache}

	cold, err := verify.VerifyStats(art.Image, opts)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold run reported %d cache hits", cold.CacheHits)
	}
	if cache.Len() != cold.Funcs {
		t.Fatalf("cached %d verdicts, want one per function (%d)", cache.Len(), cold.Funcs)
	}

	warm, err := verify.VerifyStats(art.Image, opts)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.CacheHits != warm.Funcs {
		t.Errorf("warm run: %d hits, want all %d functions", warm.CacheHits, warm.Funcs)
	}
	if warm.Funcs != cold.Funcs || warm.Stubs != cold.Stubs || warm.Insts != cold.Insts {
		t.Errorf("warm stats %+v differ from cold %+v", warm, cold)
	}

	pwarm, err := verify.VerifyStats(art.Image, verify.Options{Parallel: 8, Cache: cache})
	if err != nil {
		t.Fatalf("parallel warm: %v", err)
	}
	if pwarm != warm {
		t.Errorf("parallel warm stats %+v differ from serial warm %+v", pwarm, warm)
	}
}

// TestCacheInvalidatesOnContext pins the context-hash invariant: the same
// code bytes under a *different* image context (here: strictness) must not
// share verdicts.
func TestCacheInvalidatesOnContext(t *testing.T) {
	art := compile(t, confllvm.VariantSeg)
	cache := verify.NewCache()

	if _, err := verify.VerifyStats(art.Image, verify.Options{Cache: cache}); err != nil {
		t.Fatalf("lenient: %v", err)
	}
	n := cache.Len()
	if n == 0 {
		t.Fatal("nothing cached")
	}
	// Strict mode changes the checks, so it must miss every cached verdict
	// (testProg branches on private data, so strict mode also rejects —
	// from a fresh check, not a stale lenient verdict).
	strictStats, strictErr := verify.VerifyStats(art.Image, verify.Options{Strict: true, Cache: cache})
	if strictErr == nil && strictStats.CacheHits != 0 {
		t.Errorf("strict run served %d verdicts cached by the lenient run", strictStats.CacheHits)
	}
	freshErr := verify.Verify(art.Image, verify.Options{Strict: true})
	if (strictErr == nil) != (freshErr == nil) {
		t.Errorf("cached strict verdict %v differs from fresh %v", strictErr, freshErr)
	}
}
