package verify_test

import (
	"runtime"
	"testing"

	"confllvm"
	"confllvm/internal/link"
	"confllvm/internal/verify"
)

// benchImage compiles the benchmark corpus once; benchmarks verify copies
// of the same image so verdict-cache sub-benchmarks can't contaminate the
// cold ones.
var benchImage = func() func(b *testing.B) *link.Image {
	var img *link.Image
	return func(b *testing.B) *link.Image {
		b.Helper()
		if img == nil {
			art, err := confllvm.Compile(confllvm.Program{
				Sources: []confllvm.Source{{Name: "t.c", Code: testProg}},
			}, confllvm.VariantMPX)
			if err != nil {
				b.Fatalf("compile: %v", err)
			}
			img = art.Image
		}
		return img
	}
}()

func benchVerify(b *testing.B, opts verify.Options, freshCache bool) {
	img := benchImage(b)
	stats, err := verify.VerifyStats(img, opts)
	if err != nil {
		b.Fatalf("verify: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opts
		if freshCache {
			o.Cache = verify.NewCache()
		}
		if _, err := verify.VerifyStats(img, o); err != nil {
			b.Fatalf("verify: %v", err)
		}
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(stats.Funcs*b.N)/sec, "funcs/s")
		b.ReportMetric(float64(stats.Insts*b.N)/sec, "insts/s")
	}
}

// BenchmarkVerify measures the verifier end to end: serial vs parallel
// worker pools, and a cold full check vs a warm verdict-cached re-check
// (the CompileCached load-gate path). funcs/s and insts/s are reported as
// custom metrics; confbench's verify figure reports the same quantities
// from the harness side.
func BenchmarkVerify(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		benchVerify(b, verify.Options{}, false)
	})
	b.Run("parallel", func(b *testing.B) {
		benchVerify(b, verify.Options{Parallel: runtime.NumCPU()}, false)
	})
	b.Run("cache-cold", func(b *testing.B) {
		benchVerify(b, verify.Options{}, true)
	})
	b.Run("cache-warm", func(b *testing.B) {
		cache := verify.NewCache()
		benchVerify(b, verify.Options{Cache: cache}, false)
	})
}
