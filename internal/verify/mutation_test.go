package verify_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"confllvm"
	"confllvm/internal/verify"
	"confllvm/internal/verify/verifymut"
)

// mutationCorpus is the built-in set of programs the mutation harness
// compiles into real linked images. Each exercises different
// instrumentation: privateProg carries private scalars through argument
// registers, an indirect call and the trusted externs (the crafted
// program every mutator fires on); serverProg is a recv/send loop like
// the scenario servers (calls, frames, private buffers).
var mutationCorpus = []struct {
	name string
	src  string
}{
	{"crafted", `
extern int send(int fd, char *buf, int size);
extern void read_passwd(char *uname, private char *pass, int size);
extern void encrypt(private char *src, char *dst, int size);
extern void output(long v);

int checksum(char *buf, int n) {
	int i;
	int acc = 0;
	for (i = 0; i < n; i++) acc += buf[i];
	return acc;
}

private int sq(private int x) { return x * x; }

int (*fns[1])(char*, int) = { checksum };

int main() {
	char uname[8] = "bob";
	private char pw[32];
	char enc[32];
	read_passwd(uname, pw, 32);
	pw[1] = (char)sq(pw[0]);
	encrypt(pw, enc, 32);
	send(1, enc, 32);
	output(fns[0](enc, 32));
	return 0;
}
`},
	{"server", `
extern int recv(int fd, private char *buf, int size);
extern int send(int fd, char *buf, int size);
extern void encrypt(private char *src, char *dst, int size);
extern void output(long v);

private long mix(private char *buf, int n) {
	int i;
	private long h = 7;
	for (i = 0; i < n; i++) h = h * 31 + buf[i];
	return h;
}

int main() {
	private char req[64];
	char rsp[64];
	long total = 0;
	int n;
	int round;
	for (round = 0; round < 4; round++) {
		n = recv(0, req, 64);
		if (n <= 0) break;
		req[0] = (char)mix(req, n);
		encrypt(req, rsp, n);
		total += send(1, rsp, n);
	}
	output(total);
	return 0;
}
`},
}

// mutationSeed fixes the harness's site selection; the corpus and its
// kill verdicts are deterministic.
const mutationSeed = 0x5eedbeef

// corpusImages compiles the corpus for both deployable schemes.
func corpusImages(t testing.TB) []struct {
	name string
	art  *confllvm.Artifact
} {
	t.Helper()
	var out []struct {
		name string
		art  *confllvm.Artifact
	}
	for _, c := range mutationCorpus {
		for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
			art, err := confllvm.Compile(confllvm.Program{
				Sources: []confllvm.Source{{Name: c.name + ".c", Code: c.src}},
			}, v)
			if err != nil {
				t.Fatalf("compile %s [%v]: %v", c.name, v, err)
			}
			if err := verify.Verify(art.Image, verify.Options{}); err != nil {
				t.Fatalf("pristine %s [%v] must verify: %v", c.name, v, err)
			}
			out = append(out, struct {
				name string
				art  *confllvm.Artifact
			}{fmt.Sprintf("%s/%v", c.name, v), art})
		}
	}
	return out
}

// TestMutationKillRate is the mutation-killing scoreboard: every mutant
// verifymut lowers into the corpus must be rejected with a structured
// verify.Error at the offset the mutator pinned, under both the serial
// and the parallel verifier. Anything under a 100% kill rate fails —
// a surviving mutant is a verifier hole, not a statistic.
func TestMutationKillRate(t *testing.T) {
	images := corpusImages(t)

	total, killed := 0, 0
	perMutator := map[string]int{}
	for _, img := range images {
		muts := verifymut.Generate(img.art.Image, mutationSeed)
		if len(muts) == 0 {
			t.Errorf("%s: no applicable mutants", img.name)
		}
		for _, m := range muts {
			total++
			perMutator[m.Mutator]++
			name := img.name + "/" + m.Name

			err := verify.Verify(m.Image, verify.Options{})
			if err == nil {
				t.Errorf("SURVIVED %s: mutant passed verification", name)
				continue
			}
			var verr *verify.Error
			if !errors.As(err, &verr) {
				t.Errorf("%s: rejection is not a structured verify.Error: %v", name, err)
				continue
			}
			okOff := false
			for _, w := range m.WantOffs {
				if verr.Off == w {
					okOff = true
				}
			}
			if !okOff {
				t.Errorf("%s: rejected at %#x, want one of %#x: %s",
					name, verr.Off, m.WantOffs, verr.Msg)
				continue
			}
			if !strings.Contains(verr.Msg, m.WantMsg) {
				t.Errorf("%s: rejected with %q, want substring %q", name, verr.Msg, m.WantMsg)
				continue
			}

			// The parallel verifier must report the identical error.
			perr := verify.Verify(m.Image, verify.Options{Parallel: 8})
			var pverr *verify.Error
			if !errors.As(perr, &pverr) || *pverr != *verr {
				t.Errorf("%s: parallel verdict %v differs from serial %v", name, perr, err)
				continue
			}
			killed++
		}
	}

	// Every operator in the corpus must fire at least once somewhere —
	// an operator that never applies is dead weight, or a signal that
	// the corpus lost the shape it needs.
	for _, m := range verifymut.Mutators() {
		if perMutator[m.Name] == 0 {
			t.Errorf("mutator %s never produced a mutant on the corpus", m.Name)
		}
	}

	rate := 0.0
	if total > 0 {
		rate = float64(killed) / float64(total) * 100
	}
	t.Logf("mutation scoreboard: %d/%d killed (%.1f%%) across %d operators",
		killed, total, rate, len(perMutator))
	if killed != total {
		t.Fatalf("kill rate %.1f%% < 100%%: %d mutants survived or misreported",
			rate, total-killed)
	}
}

// TestMutantKilledFromCache pins the verdict-cache soundness contract on
// adversarial input: verifying a pristine image must not make its
// mutants pass — a mutant's changed bytes change its function's span
// hash, so the poisoned-by-construction cache entry never matches.
func TestMutantKilledFromCache(t *testing.T) {
	images := corpusImages(t)
	for _, img := range images {
		cache := verify.NewCache()
		opts := verify.Options{Cache: cache}
		if err := verify.Verify(img.art.Image, opts); err != nil {
			t.Fatalf("%s: pristine: %v", img.name, err)
		}
		if cache.Len() == 0 {
			t.Fatalf("%s: nothing cached", img.name)
		}
		for _, m := range verifymut.Generate(img.art.Image, mutationSeed) {
			cold := verify.Verify(m.Image, verify.Options{})
			warm := verify.Verify(m.Image, opts)
			if warm == nil {
				t.Errorf("%s/%s: mutant passed through a warm cache", img.name, m.Name)
				continue
			}
			var cv, wv *verify.Error
			if !errors.As(cold, &cv) || !errors.As(warm, &wv) || *cv != *wv {
				t.Errorf("%s/%s: warm verdict %v differs from cold %v",
					img.name, m.Name, warm, cold)
			}
		}
	}
}
