// Package verify implements ConfVerify (§5.2): an independent static
// verifier that checks a *linked binary* — not the compiler — for the
// instrumentation that guarantees confidentiality. It takes only the code
// bytes, the two magic prefixes and the layout as input:
//
//  1. it locates procedure entries by scanning for the MCall prefix and
//     disassembles each procedure, reconstructing its CFG (decoding
//     failure rejects the binary);
//  2. it re-infers register taints by dataflow, seeding from the magic
//     words' taint bits;
//  3. it checks every memory operand's taint evidence (MPX checks in the
//     same basic block, or segment prefixes with the 32-bit operand
//     constraint), every call/return/indirect-call against the taint-
//     aware CFI discipline, and rejects syscalls, segment-register
//     writes, plain rets, and stray indirect jumps.
//
// Like the paper's ConfVerify, it is vastly simpler than the compiler: no
// register allocation, no optimization — just decoding and a lattice
// dataflow. It verifies the deployable configurations (CFI + MPX or
// segmentation with separated stacks).
package verify

import (
	"encoding/binary"
	"fmt"
	"sort"

	"confllvm/internal/asm"
	"confllvm/internal/codegen"
	"confllvm/internal/link"
)

// Options tunes verification.
type Options struct {
	// Strict additionally rejects conditional branches on private flags
	// (implicit-flow-free mode).
	Strict bool
}

// Error is a verification rejection.
type Error struct {
	Off int // code offset
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("confverify: offset %#x: %s", e.Off, e.Msg)
}

// Verify checks a linked image. A nil return means the binary carries all
// the instrumentation needed for confidentiality.
func Verify(img *link.Image, opts Options) error {
	conf := img.Config
	if !conf.CFI {
		return fmt.Errorf("confverify: only CFI-enabled configurations are verifiable")
	}
	if conf.Bounds == codegen.BoundsNone {
		return fmt.Errorf("confverify: configuration carries no bounds enforcement")
	}
	if !conf.SeparateStacks {
		return fmt.Errorf("confverify: single-stack ablation is not a verifiable configuration")
	}
	v := &verifier{img: img, opts: opts, code: img.Code}
	return v.run()
}

type verifier struct {
	img  *link.Image
	opts Options
	code []byte

	mcallOffs map[int]uint64 // offset -> magic word
	mretOffs  map[int]uint64

	// usedMagic tracks magic occurrences legitimized during disassembly.
	usedMagic map[int]bool
}

func (v *verifier) run() error {
	v.scanMagic()

	// Every procedure entry: disassemble and check.
	entries := make([]int, 0, len(v.mcallOffs))
	for off := range v.mcallOffs {
		entries = append(entries, off)
	}
	sort.Ints(entries)
	v.usedMagic = map[int]bool{}
	for off := range v.mcallOffs {
		v.usedMagic[off] = true // entry magic words are legitimate
	}

	for _, off := range entries {
		p, err := v.disassemble(off)
		if err != nil {
			return err
		}
		if p.isStub {
			continue
		}
		if err := v.checkProc(p); err != nil {
			return err
		}
	}

	// Exit shims: MRet word immediately followed by exit.
	for off := range v.mretOffs {
		if v.usedMagic[off] {
			continue
		}
		if inst, _, err := asm.Decode(v.code, off+8); err == nil && inst.Op == asm.OpExit {
			v.usedMagic[off] = true
		}
	}

	// Any magic occurrence we did not legitimize is suspicious.
	for off := range v.mcallOffs {
		if !v.usedMagic[off] {
			return &Error{off, "stray MCall magic word"}
		}
	}
	for off := range v.mretOffs {
		if !v.usedMagic[off] {
			return &Error{off, "stray MRet magic word"}
		}
	}
	return nil
}

// scanMagic finds every occurrence of the two prefixes at every byte
// offset.
func (v *verifier) scanMagic() {
	v.mcallOffs = map[int]uint64{}
	v.mretOffs = map[int]uint64{}
	for i := 0; i+8 <= len(v.code); i++ {
		w := binary.LittleEndian.Uint64(v.code[i:])
		switch w &^ 31 {
		case v.img.MCallPrefix:
			v.mcallOffs[i] = w
		case v.img.MRetPrefix:
			v.mretOffs[i] = w
		}
	}
}

// inst is a decoded instruction with layout info.
type inst struct {
	asm.Inst
	off  int
	size int
	// retSite is set on calls: the code offset of the following MRet word.
	retSite int
	// Structural-pass annotations.
	icallBits uint8 // expected MCall taint bits at a checked indirect call
	icallOK   bool
	retBit    uint8 // MRet taint bit checked by the return idiom
	retOK     bool
}

// proc is a disassembled procedure.
type proc struct {
	entryOff int // offset of first instruction (magic+8)
	bits     uint8
	insts    map[int]*inst
	order    []int // sorted instruction offsets
	leaders  map[int]bool
	isStub   bool
}

// disassemble decodes the procedure whose MCall magic word is at magicOff,
// following intra-procedural control flow.
func (v *verifier) disassemble(magicOff int) (*proc, error) {
	p := &proc{
		entryOff: magicOff + 8,
		bits:     uint8(v.mcallOffs[magicOff] & 31),
		insts:    map[int]*inst{},
	}
	p.leaders = map[int]bool{p.entryOff: true}

	codeBase := v.img.Layout.CodeBase
	toOff := func(addr uint64) (int, bool) {
		if addr < codeBase {
			return 0, false
		}
		o := int(addr - codeBase)
		return o, o < len(v.code)
	}

	work := []int{p.entryOff}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		if _, done := p.insts[off]; done {
			continue
		}
		in, n, err := asm.Decode(v.code, off)
		if err != nil {
			return nil, &Error{off, "undecodable instruction: " + err.Error()}
		}
		pi := &inst{Inst: in, off: off, size: n, retSite: -1}
		p.insts[off] = pi

		switch in.Op {
		case asm.OpRet:
			return nil, &Error{off, "plain ret is forbidden under taint-aware CFI"}
		case asm.OpSyscall:
			return nil, &Error{off, "syscall in untrusted code"}
		case asm.OpWrFS, asm.OpWrGS:
			return nil, &Error{off, "segment register write in untrusted code"}
		case asm.OpJmp:
			t, ok := toOff(uint64(in.Imm))
			if !ok {
				return nil, &Error{off, "jump target outside code"}
			}
			p.leaders[t] = true
			work = append(work, t)
		case asm.OpJcc:
			t, ok := toOff(uint64(in.Imm))
			if !ok {
				return nil, &Error{off, "jcc target outside code"}
			}
			p.leaders[t] = true
			p.leaders[off+n] = true
			work = append(work, t, off+n)
		case asm.OpCall, asm.OpICall:
			// The next 8 bytes must be a valid MRet word; execution
			// resumes after it.
			rs := off + n
			if _, ok := v.mretOffs[rs]; !ok {
				return nil, &Error{off, "call without a return-site MRet magic word"}
			}
			v.usedMagic[rs] = true
			pi.retSite = rs
			p.leaders[rs+8] = true
			work = append(work, rs+8)
			if in.Op == asm.OpCall {
				// Direct call target must be a magic-preceded entry.
				t, ok := toOff(uint64(in.Imm))
				if !ok || t < 8 {
					return nil, &Error{off, "call target outside code"}
				}
				if _, isEntry := v.mcallOffs[t-8]; !isEntry {
					return nil, &Error{off, "call target is not a procedure entry"}
				}
			}
		case asm.OpJmpR, asm.OpTrap, asm.OpExit:
			// Terminators; validated in the block pass.
		default:
			// Straight-line instruction: fall through.
			work = append(work, off+n)
		}
	}

	for off := range p.insts {
		p.order = append(p.order, off)
	}
	sort.Ints(p.order)

	// Stub recognition: exactly mov r11, slot; load r11, [r11]; jmp r11
	// with the slot inside the read-only externals table.
	if len(p.order) == 3 {
		i0 := p.insts[p.order[0]]
		i1 := p.insts[p.order[1]]
		i2 := p.insts[p.order[2]]
		if i0.Op == asm.OpMovRI && i1.Op == asm.OpLoad && i2.Op == asm.OpJmpR &&
			i1.M.Base == i0.Dst && i2.Src == i1.Dst {
			tbl := v.img.Layout.ExtTableBase()
			slot := uint64(i0.Imm)
			if slot >= tbl && slot < tbl+uint64(8*len(v.img.Externals)) {
				p.isStub = true
				return p, nil
			}
			return nil, &Error{i0.off, "stub jumps through an address outside the externals table"}
		}
	}
	return p, nil
}
