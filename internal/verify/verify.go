// Package verify implements ConfVerify (§5.2): an independent static
// verifier that checks a *linked binary* — not the compiler — for the
// instrumentation that guarantees confidentiality. It takes only the code
// bytes, the two magic prefixes and the layout as input:
//
//  1. it locates procedure entries by scanning for the MCall prefix and
//     disassembles each procedure, reconstructing its CFG (decoding
//     failure rejects the binary);
//  2. it re-infers register taints by dataflow, seeding from the magic
//     words' taint bits;
//  3. it checks every memory operand's taint evidence (MPX checks in the
//     same basic block, or segment prefixes with the 32-bit operand
//     constraint), every call/return/indirect-call against the taint-
//     aware CFI discipline, and rejects syscalls, segment-register
//     writes, plain rets, and stray indirect jumps.
//
// Like the paper's ConfVerify, it is vastly simpler than the compiler: no
// register allocation, no optimization — just decoding and a lattice
// dataflow. It verifies the deployable configurations (CFI + MPX or
// segmentation with separated stacks).
//
// Procedures are independent verification units: each is disassembled and
// checked against only the image-wide context (code bytes, magic-word
// table, layout, config), never against another procedure's in-progress
// state. That makes checking streamable — Options.Parallel fans
// procedures over a worker pool with byte-identical output (the reported
// error is always the one the serial verifier would hit first), and
// Options.Cache memoizes per-function verdicts so re-verifying a patched
// image only re-checks the functions whose bytes changed. See README.md
// in this package for the invariants.
package verify

import (
	"encoding/binary"
	"fmt"
	"sort"

	"confllvm/internal/asm"
	"confllvm/internal/codegen"
	"confllvm/internal/link"
)

// Options tunes verification.
type Options struct {
	// Strict additionally rejects conditional branches on private flags
	// (implicit-flow-free mode).
	Strict bool
	// Parallel is the number of procedures checked concurrently; values
	// <= 1 select the serial path. The accept/reject verdict, the
	// reported error and Stats are byte-identical for every value.
	Parallel int
	// Cache, when non-nil, memoizes per-function verdicts across Verify
	// calls keyed by the function's code bytes and the image context, so
	// re-verifying a patched image only re-checks changed functions.
	Cache *Cache
}

// Stats summarizes one verification run (all simulated-input quantities,
// identical under any Parallel setting).
type Stats struct {
	// Funcs is the number of procedure entries verified (stubs included).
	Funcs int
	// Stubs counts import stubs among Funcs.
	Stubs int
	// Insts is the total number of instructions decoded and checked.
	Insts int
	// CacheHits counts verdicts served from Options.Cache.
	CacheHits int
}

// Error is a verification rejection.
type Error struct {
	Off int // code offset
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("confverify: offset %#x: %s", e.Off, e.Msg)
}

// Verify checks a linked image. A nil return means the binary carries all
// the instrumentation needed for confidentiality.
func Verify(img *link.Image, opts Options) error {
	_, err := VerifyStats(img, opts)
	return err
}

// VerifyStats is Verify returning throughput counters alongside the
// verdict. Stats is only meaningful when err is nil.
func VerifyStats(img *link.Image, opts Options) (Stats, error) {
	conf := img.Config
	if !conf.CFI {
		return Stats{}, fmt.Errorf("confverify: only CFI-enabled configurations are verifiable")
	}
	if conf.Bounds == codegen.BoundsNone {
		return Stats{}, fmt.Errorf("confverify: configuration carries no bounds enforcement")
	}
	if !conf.SeparateStacks {
		return Stats{}, fmt.Errorf("confverify: single-stack ablation is not a verifiable configuration")
	}
	if conf.Bounds == codegen.BoundsMPX && !conf.ChkStk {
		return Stats{}, fmt.Errorf("confverify: MPX configuration requires the _chkstk discipline")
	}
	v := &verifier{img: img, opts: opts, code: img.Code}
	return v.run()
}

// verifier holds the image-wide context. After scanMagic it is read-only:
// checkOne never mutates it, which is what makes procedures checkable
// concurrently.
type verifier struct {
	img  *link.Image
	opts Options
	code []byte

	mcallOffs map[int]uint64 // offset -> magic word
	mretOffs  map[int]uint64

	// ctxHash fingerprints everything a procedure verdict depends on
	// besides its own span bytes (only computed when Options.Cache is set).
	ctxHash uint64
}

// scanMagic finds every occurrence of the two prefixes at every byte
// offset.
func (v *verifier) scanMagic() {
	v.mcallOffs = map[int]uint64{}
	v.mretOffs = map[int]uint64{}
	for i := 0; i+8 <= len(v.code); i++ {
		w := binary.LittleEndian.Uint64(v.code[i:])
		switch w &^ 31 {
		case v.img.MCallPrefix:
			v.mcallOffs[i] = w
		case v.img.MRetPrefix:
			v.mretOffs[i] = w
		}
	}
}

// inst is a decoded instruction with layout info.
type inst struct {
	asm.Inst
	off  int
	size int
	// retSite is set on calls: the code offset of the following MRet word.
	retSite int
	// Structural-pass annotations.
	icallBits uint8 // expected MCall taint bits at a checked indirect call
	icallOK   bool
	retBit    uint8 // MRet taint bit checked by the return idiom
	retOK     bool
}

// proc is a disassembled procedure.
type proc struct {
	entryOff int // offset of first instruction (magic+8)
	bits     uint8
	insts    map[int]*inst
	order    []int // sorted instruction offsets
	leaders  map[int]bool
	isStub   bool
	// usedRets lists the return-site MRet magic offsets this procedure
	// legitimized (collected per-proc so disassembly never mutates shared
	// verifier state; merged after all procedures pass).
	usedRets []int
	// lo/hi is the half-open range of code offsets this procedure's
	// checks read (its magic word, every decoded instruction). A verdict
	// is only cacheable when the range stays inside the procedure's span.
	lo, hi int
}

// touch widens the procedure's read extent to cover [off, off+n).
func (p *proc) touch(off, n int) {
	if off < p.lo {
		p.lo = off
	}
	if off+n > p.hi {
		p.hi = off + n
	}
}

// regsValid reports whether every register field of a decoded instruction
// is in range. asm.Decode does not validate operand bytes, so a corrupted
// image can name register 139; the dataflow pass indexes 16-entry taint
// arrays by these fields and must never see such a value (found by
// FuzzVerifyImage). Unused fields are zero after decoding, which the
// checks below accept.
func regsValid(in *asm.Inst) bool {
	return in.Dst < asm.NumRegs && in.Src < asm.NumRegs &&
		in.FDst < asm.NumFRegs && in.FSrc < asm.NumFRegs &&
		(in.M.Base == asm.NoReg || in.M.Base < asm.NumRegs) &&
		(in.M.Index == asm.NoReg || in.M.Index < asm.NumRegs)
}

// disassemble decodes the procedure whose MCall magic word is at magicOff,
// following intra-procedural control flow.
func (v *verifier) disassemble(magicOff int) (*proc, error) {
	p := &proc{
		entryOff: magicOff + 8,
		bits:     uint8(v.mcallOffs[magicOff] & 31),
		insts:    map[int]*inst{},
		lo:       magicOff,
		hi:       magicOff + 8,
	}
	p.leaders = map[int]bool{p.entryOff: true}

	codeBase := v.img.Layout.CodeBase
	toOff := func(addr uint64) (int, bool) {
		if addr < codeBase {
			return 0, false
		}
		o := int(addr - codeBase)
		return o, o < len(v.code)
	}

	work := []int{p.entryOff}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		if _, done := p.insts[off]; done {
			continue
		}
		in, n, err := asm.Decode(v.code, off)
		if err != nil {
			p.touch(off, 1)
			return p, &Error{off, "undecodable instruction: " + err.Error()}
		}
		p.touch(off, n)
		pi := &inst{Inst: in, off: off, size: n, retSite: -1}
		p.insts[off] = pi

		switch in.Op {
		case asm.OpRet:
			return p, &Error{off, "plain ret is forbidden under taint-aware CFI"}
		case asm.OpSyscall:
			return p, &Error{off, "syscall in untrusted code"}
		case asm.OpWrFS, asm.OpWrGS:
			return p, &Error{off, "segment register write in untrusted code"}
		}
		// Operand sanity comes after the forbidden-opcode rejections (the
		// opcode is the security-relevant fact) but before anything indexes
		// a register field.
		if !regsValid(&in) {
			return p, &Error{off, "instruction names an out-of-range register"}
		}

		switch in.Op {
		case asm.OpJmp:
			t, ok := toOff(uint64(in.Imm))
			if !ok {
				return p, &Error{off, "jump target outside code"}
			}
			p.leaders[t] = true
			work = append(work, t)
		case asm.OpJcc:
			t, ok := toOff(uint64(in.Imm))
			if !ok {
				return p, &Error{off, "jcc target outside code"}
			}
			p.leaders[t] = true
			p.leaders[off+n] = true
			work = append(work, t, off+n)
		case asm.OpCall, asm.OpICall:
			// The next 8 bytes must be a valid MRet word; execution
			// resumes after it.
			rs := off + n
			if _, ok := v.mretOffs[rs]; !ok {
				return p, &Error{off, "call without a return-site MRet magic word"}
			}
			p.usedRets = append(p.usedRets, rs)
			p.touch(rs, 8)
			pi.retSite = rs
			p.leaders[rs+8] = true
			work = append(work, rs+8)
			if in.Op == asm.OpCall {
				// Direct call target must be a magic-preceded entry.
				t, ok := toOff(uint64(in.Imm))
				if !ok || t < 8 {
					return p, &Error{off, "call target outside code"}
				}
				if _, isEntry := v.mcallOffs[t-8]; !isEntry {
					return p, &Error{off, "call target is not a procedure entry"}
				}
			}
		case asm.OpJmpR, asm.OpTrap, asm.OpExit:
			// Terminators; validated in the block pass.
		default:
			// Straight-line instruction: fall through.
			work = append(work, off+n)
		}
	}

	for off := range p.insts {
		p.order = append(p.order, off)
	}
	sort.Ints(p.order)

	// Stub recognition: exactly mov r11, slot; load r11, [r11]; jmp r11
	// with the slot inside the read-only externals table.
	if len(p.order) == 3 {
		i0 := p.insts[p.order[0]]
		i1 := p.insts[p.order[1]]
		i2 := p.insts[p.order[2]]
		if i0.Op == asm.OpMovRI && i1.Op == asm.OpLoad && i2.Op == asm.OpJmpR &&
			i1.M.Base == i0.Dst && i2.Src == i1.Dst {
			tbl := v.img.Layout.ExtTableBase()
			slot := uint64(i0.Imm)
			if slot >= tbl && slot < tbl+uint64(8*len(v.img.Externals)) {
				p.isStub = true
				return p, nil
			}
			return p, &Error{i0.off, "stub jumps through an address outside the externals table"}
		}
	}
	return p, nil
}
