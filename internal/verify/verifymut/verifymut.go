// Package verifymut generates adversarial mutants of linked images for
// mutation-testing the verifier: each mutator lowers one
// confidentiality violation — the binary-level analogue of
// internal/formal's InjectLeak — into a real compiled image by an
// in-place byte rewrite (the fixed-length encoding means no offsets
// shift), and records where and why ConfVerify must reject the result.
//
// A mutator is *guaranteed-kill* by construction: it only fires on sites
// where the verifier's own rules make rejection inevitable (e.g. a
// private-region load feeding a straight-line store is private under the
// may-private join no matter what other paths exist). Mutants are never
// "maybe equivalent" — a mutant that verifies clean is a verifier bug,
// and the mutation harness (internal/verify/mutation_test.go) fails on
// any kill rate below 100%.
//
// The taxonomy (see internal/verify/README.md):
//
//   - check removal: drop-mpx-check, chksp-drop
//   - evidence forgery: seg-store-public, seg-unprefixed, seg-use32-drop
//   - interface lies: entry-bits-clear, arg-redirect
//   - CFI splicing: call-skip-magic, icall-strip-check, ret-to-plain,
//     stray-magic-inject
//   - privilege escape: syscall-inject, wrgs-inject
package verifymut

import (
	"encoding/binary"
	"fmt"
	"sort"

	"confllvm/internal/asm"
	"confllvm/internal/link"
)

// Mutant is one corrupted image plus the rejection contract the verifier
// must honor.
type Mutant struct {
	// Name identifies the mutant (mutator plus site offset).
	Name string
	// Mutator is the operator that produced it.
	Mutator string
	// Image is the mutated image (its Code is a private copy; the source
	// image is never modified).
	Image *link.Image
	// MutOff is the code offset the mutator rewrote.
	MutOff int
	// WantOffs lists the acceptable verify.Error offsets. Most mutators
	// pin exactly one; check-removal mutators list every access the
	// removed check covered (check coalescing means the first uncovered
	// access in dataflow order is the one reported).
	WantOffs []int
	// WantMsg is a substring the verify.Error message must contain.
	WantMsg string
}

// Mutator is one seeded mutation operator.
type Mutator struct {
	Name string
	// Apply returns the mutant for a seeded site pick, or nil when the
	// image has no applicable site (not every operator fits every
	// bounds scheme or program shape).
	Apply func(img *link.Image, seed uint64) *Mutant
}

// splitmix64 is the repo-wide seeding primitive (same constants as
// internal/chaos and internal/scenario): a pure function of its input,
// so a (seed, image) pair always picks the same site.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pick(seed uint64, n int) int {
	if n <= 0 {
		return -1
	}
	return int(splitmix64(seed) % uint64(n))
}

// site is one linearly decoded instruction inside a non-stub function.
type site struct {
	off int
	in  asm.Inst
	n   int
	fn  *link.FuncSym
}

// walk linearly decodes every non-stub function body, skipping magic
// words. Linear decode over compiler output enumerates exactly the
// emitted instructions (functions are contiguous; magic words are the
// only embedded data).
func walk(img *link.Image) []site {
	var sites []site
	magic := img.MagicOffsets()
	for _, fn := range img.Funcs {
		if fn.IsStub {
			continue
		}
		off := int(fn.Base - img.Layout.CodeBase)
		end := off + int(fn.Size)
		for off < end {
			if magic[off] {
				off += 8
				continue
			}
			in, n, err := asm.Decode(img.Code, off)
			if err != nil {
				off++
				continue
			}
			sites = append(sites, site{off: off, in: in, n: n, fn: fn})
			off += n
		}
	}
	return sites
}

// mutate shallow-copies the image with a private copy of its code and
// applies edit to the copy.
func mutate(img *link.Image, edit func(code []byte)) *link.Image {
	m := *img
	m.Code = append([]byte{}, img.Code...)
	edit(m.Code)
	return &m
}

func nopOut(code []byte, off, n int) {
	for i := 0; i < n; i++ {
		code[off+i] = byte(asm.OpNop)
	}
}

// entryBitsAt returns the taint bits of the procedure entry at code
// offset entryOff (the magic word sits 8 bytes before it), or false if
// entryOff is not a procedure entry.
func entryBitsAt(img *link.Image, entryOff int) (uint8, bool) {
	w, ok := asm.ReadWord(img.Code, entryOff-8)
	if !ok || w&^31 != img.MCallPrefix {
		return 0, false
	}
	return uint8(w & 31), true
}

// memFlagsOff returns the code offset of a memory operand's flags byte
// for the ops the segment mutators rewrite, or -1.
func memFlagsOff(in asm.Inst, off int) int {
	switch in.Op {
	case asm.OpLoad, asm.OpFLoad: // [op][dst][mem...]
		return off + 2
	case asm.OpStore, asm.OpFStore: // [op][mem...][src]
		return off + 1
	}
	return -1
}

// writesReg reports the GPR an instruction overwrites (mirrors the
// verifier's transfer function), or NoReg.
func writesReg(in asm.Inst) asm.Reg {
	switch in.Op {
	case asm.OpMovRR, asm.OpMovRI, asm.OpLoad, asm.OpLea, asm.OpPop,
		asm.OpAddRR, asm.OpAddRI, asm.OpSubRR, asm.OpSubRI,
		asm.OpMulRR, asm.OpMulRI, asm.OpDivRR, asm.OpModRR,
		asm.OpAndRR, asm.OpAndRI, asm.OpOrRR, asm.OpOrRI,
		asm.OpXorRR, asm.OpXorRI,
		asm.OpShlRR, asm.OpShlRI, asm.OpShrRR, asm.OpShrRI,
		asm.OpSarRR, asm.OpSarRI, asm.OpNeg, asm.OpNot,
		asm.OpSetCC, asm.OpCvtFI, asm.OpMovQFI:
		return in.Dst
	}
	return asm.NoReg
}

func isControl(op asm.Op) bool {
	switch op {
	case asm.OpJmp, asm.OpJcc, asm.OpJmpR, asm.OpCall, asm.OpICall,
		asm.OpRet, asm.OpTrap, asm.OpExit:
		return true
	}
	return false
}

// Mutators returns the built-in operator corpus.
func Mutators() []Mutator {
	return []Mutator{
		{"drop-mpx-check", dropMPXCheck},
		{"chksp-drop", chkspDrop},
		{"seg-store-public", segStorePublic},
		{"seg-unprefixed", segUnprefixed},
		{"seg-use32-drop", segUse32Drop},
		{"entry-bits-clear", entryBitsClear},
		{"arg-redirect", argRedirect},
		{"call-skip-magic", callSkipMagic},
		{"icall-strip-check", icallStripCheck},
		{"ret-to-plain", retToPlain},
		{"stray-magic-inject", strayMagicInject},
		{"syscall-inject", syscallInject},
		{"wrgs-inject", wrgsInject},
	}
}

// Generate applies every built-in mutator to the image with seeded site
// selection and returns the applicable mutants.
func Generate(img *link.Image, seed uint64) []*Mutant {
	var out []*Mutant
	for i, m := range Mutators() {
		if mut := m.Apply(img, splitmix64(seed+uint64(i))); mut != nil {
			mut.Mutator = m.Name
			mut.Name = fmt.Sprintf("%s@%#x", m.Name, mut.MutOff)
			out = append(out, mut)
		}
	}
	return out
}

// dropMPXCheck NOPs a contiguous [bndcl r][bndcu r] pair that guards the
// immediately following memory access: the access (and every later
// access the coalesced pair covered) loses its evidence, so the verifier
// must report "memory operand without MPX bound checks" at one of them.
func dropMPXCheck(img *link.Image, seed uint64) *Mutant {
	sites := walk(img)
	type cand struct {
		lo, hi site // the check pair
		covers []int
	}
	var cands []cand
	for i := 0; i+2 < len(sites); i++ {
		lo, hi := sites[i], sites[i+1]
		if lo.in.Op != asm.OpBndCLReg || hi.in.Op != asm.OpBndCUReg ||
			lo.in.Src != hi.in.Src || lo.in.Bnd != hi.in.Bnd ||
			lo.off+lo.n != hi.off || hi.off+hi.n != sites[i+2].off {
			continue
		}
		base := lo.in.Src
		// Collect the linear run of accesses on this base that the pair
		// may cover: stop at control flow, a write to the base, or a
		// fresh check pair on it.
		var covers []int
		for j := i + 2; j < len(sites) && sites[j].fn == lo.fn; j++ {
			in := sites[j].in
			if isControl(in.Op) {
				break
			}
			if (in.Op == asm.OpBndCLReg || in.Op == asm.OpBndCUReg) && in.Src == base {
				break
			}
			switch in.Op {
			case asm.OpLoad, asm.OpStore, asm.OpFLoad, asm.OpFStore:
				if in.M.Base == base {
					covers = append(covers, sites[j].off)
				}
			}
			if writesReg(in) == base {
				break
			}
		}
		if len(covers) > 0 {
			cands = append(cands, cand{lo, hi, covers})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	m := mutate(img, func(code []byte) {
		nopOut(code, c.lo.off, c.lo.n+c.hi.n)
	})
	return &Mutant{Image: m, MutOff: c.lo.off, WantOffs: c.covers,
		WantMsg: "memory operand without MPX bound checks"}
}

// chkspDrop NOPs every chksp in a frame-allocating function, so the
// frame is allocated with no stack check at all.
func chkspDrop(img *link.Image, seed uint64) *Mutant {
	sites := walk(img)
	byFn := map[*link.FuncSym][]site{}
	for _, s := range sites {
		byFn[s.fn] = append(byFn[s.fn], s)
	}
	var cands []*link.FuncSym
	for _, fn := range img.Funcs {
		hasSub, hasChk := false, false
		for _, s := range byFn[fn] {
			if s.in.Op == asm.OpSubRI && s.in.Dst == asm.RSP {
				hasSub = true
			}
			if s.in.Op == asm.OpChkSP {
				hasChk = true
			}
		}
		if hasSub && hasChk {
			cands = append(cands, fn)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	fn := cands[pick(seed, len(cands))]
	first := -1
	m := mutate(img, func(code []byte) {
		for _, s := range byFn[fn] {
			if s.in.Op == asm.OpChkSP {
				if first < 0 {
					first = s.off
				}
				nopOut(code, s.off, s.n)
			}
		}
	})
	entry := int(fn.Base-img.Layout.CodeBase) + 8
	return &Mutant{Image: m, MutOff: first, WantOffs: []int{entry},
		WantMsg: "frame allocation without a chksp stack check"}
}

// segStorePublic retargets a private store to the public segment: it
// finds a GS load into r followed by a straight-line, r-preserving run
// ending in a GS store of r, and flips the store's segment to FS. The
// fall-through path makes r private at the store, and the may-private
// join keeps it private no matter what other paths merge in — the
// verifier must report the private-to-public store.
func segStorePublic(img *link.Image, seed uint64) *Mutant {
	sites := walk(img)
	type cand struct{ store site }
	var cands []cand
	for i, s := range sites {
		if s.in.Op != asm.OpLoad || s.in.M.Seg != asm.SegGS {
			continue
		}
		r := s.in.Dst
		for j := i + 1; j < len(sites) && sites[j].fn == s.fn; j++ {
			t := sites[j]
			if t.off != sites[j-1].off+sites[j-1].n {
				break // magic word between: not straight-line
			}
			if t.in.Op == asm.OpStore && t.in.M.Seg == asm.SegGS && t.in.Src == r {
				cands = append(cands, cand{t})
				break
			}
			if isControl(t.in.Op) || writesReg(t.in) == r {
				break
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	fo := memFlagsOff(c.store.in, c.store.off)
	m := mutate(img, func(code []byte) {
		code[fo] = code[fo]&^3 | byte(asm.SegFS)
	})
	return &Mutant{Image: m, MutOff: c.store.off, WantOffs: []int{c.store.off},
		WantMsg: "private register stored to public memory"}
}

// segUnprefixed strips the segment prefix from a memory operand: under
// the segmentation scheme every access must carry FS or GS evidence.
func segUnprefixed(img *link.Image, seed uint64) *Mutant {
	c := pickSegOperand(img, seed)
	if c == nil {
		return nil
	}
	fo := memFlagsOff(c.in, c.off)
	m := mutate(img, func(code []byte) {
		code[fo] &^= 3 // SegNone
	})
	return &Mutant{Image: m, MutOff: c.off, WantOffs: []int{c.off},
		WantMsg: "unprefixed memory operand under segmentation scheme"}
}

// segUse32Drop clears the 32-bit-operand constraint on a segment-prefixed
// access: without Use32 the truncation argument that confines the access
// to its region is gone.
func segUse32Drop(img *link.Image, seed uint64) *Mutant {
	c := pickSegOperand(img, seed)
	if c == nil {
		return nil
	}
	fo := memFlagsOff(c.in, c.off)
	m := mutate(img, func(code []byte) {
		code[fo] &^= 1 << 2
	})
	return &Mutant{Image: m, MutOff: c.off, WantOffs: []int{c.off},
		WantMsg: "segment-scheme operand without 32-bit constraint"}
}

// pickSegOperand selects a seeded load/store with a segment prefix.
func pickSegOperand(img *link.Image, seed uint64) *site {
	var cands []site
	for _, s := range walk(img) {
		if memFlagsOff(s.in, s.off) < 0 || s.in.M.Seg == asm.SegNone {
			continue
		}
		cands = append(cands, s)
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	return &c
}

// privAt computes, for every walked site, a register set that is
// *provably* private right before that instruction under the verifier's
// dataflow. It is a lower bound: it only trusts straight-line runs
// starting at a function entry (seeded from the magic bits) or at a call
// return site (the verifier's call effect), and the may-private join
// means extra CFG paths merging into a run can only add private
// registers, never remove them — so every bit set here is set in the
// verifier's state too.
func privAt(img *link.Image, sites []site) []uint32 {
	out := make([]uint32, len(sites))
	var cur uint32
	valid := false
	set := func(r asm.Reg, p bool) {
		if p {
			cur |= 1 << r
		} else {
			cur &^= 1 << r
		}
	}
	has := func(r asm.Reg) bool { return cur&(1<<r) != 0 }

	for i, s := range sites {
		if i == 0 || sites[i-1].fn != s.fn || sites[i-1].off+sites[i-1].n != s.off {
			// A new straight-line run: re-seed the state if this is a
			// known anchor, else distrust it.
			valid, cur = false, 0
			entryOff := int(s.fn.Base-img.Layout.CodeBase) + 8
			if s.off == entryOff {
				if bits, ok := entryBitsAt(img, s.off); ok {
					valid = true
					for _, r := range asm.CallerSaved {
						set(r, true)
					}
					for k, r := range asm.ArgRegs {
						set(r, bits&(1<<k) != 0)
					}
				}
			} else if i > 0 && sites[i-1].fn == s.fn &&
				(sites[i-1].in.Op == asm.OpCall || sites[i-1].in.Op == asm.OpICall) &&
				sites[i-1].off+sites[i-1].n+8 == s.off {
				// Resuming past a call's return-site magic word: the
				// verifier's call effect.
				if w, ok := asm.ReadWord(img.Code, sites[i-1].off+sites[i-1].n); ok &&
					w&^31 == img.MRetPrefix {
					valid = true
					for _, r := range asm.CallerSaved {
						set(r, true)
					}
					set(asm.RetReg, w&1 != 0)
				}
			}
		}
		if !valid {
			continue
		}
		out[i] = cur

		in := s.in
		switch in.Op {
		case asm.OpMovRR:
			set(in.Dst, has(in.Src))
		case asm.OpMovRI, asm.OpLea, asm.OpPop, asm.OpSetCC,
			asm.OpCvtFI, asm.OpMovQFI:
			set(in.Dst, false)
		case asm.OpLoad:
			p := in.M.Seg == asm.SegGS
			if !p && i >= 2 {
				// MPX private-region evidence: an adjacent complete BND1
				// check pair on the base.
				lo, hi := sites[i-2], sites[i-1]
				p = lo.in.Op == asm.OpBndCLReg && hi.in.Op == asm.OpBndCUReg &&
					lo.in.Bnd == asm.BND1 && hi.in.Bnd == asm.BND1 &&
					lo.in.Src == in.M.Base && hi.in.Src == in.M.Base &&
					lo.off+lo.n == hi.off && hi.off+hi.n == s.off
			}
			set(in.Dst, p)
		case asm.OpAddRR, asm.OpSubRR, asm.OpMulRR, asm.OpDivRR, asm.OpModRR,
			asm.OpAndRR, asm.OpOrRR, asm.OpXorRR,
			asm.OpShlRR, asm.OpShrRR, asm.OpSarRR:
			set(in.Dst, has(in.Dst) || has(in.Src))
		case asm.OpAddRI, asm.OpSubRI, asm.OpMulRI, asm.OpAndRI, asm.OpOrRI,
			asm.OpXorRI, asm.OpShlRI, asm.OpShrRI, asm.OpSarRI,
			asm.OpNeg, asm.OpNot:
			// dst taint unchanged
		case asm.OpJcc:
			// Fall-through keeps the state.
		case asm.OpCall, asm.OpICall, asm.OpJmp, asm.OpJmpR, asm.OpTrap,
			asm.OpExit, asm.OpRet:
			valid = false
		default:
			if w := writesReg(in); w != asm.NoReg {
				set(w, false)
			}
		}
	}
	return out
}

// entryBitsClear lies about a callee's interface: it clears an argument
// taint bit on the entry magic word of a function that provably receives
// a private value in that register at some direct call site. The caller
// now passes private data to a "public" parameter, which the verifier
// must flag at one of the callee's call sites.
func entryBitsClear(img *link.Image, seed uint64) *Mutant {
	sites := walk(img)
	pv := privAt(img, sites)
	type cand struct {
		calleeEntry int
		argIdx      int
	}
	var cands []cand
	for i, s := range sites {
		if s.in.Op != asm.OpCall {
			continue
		}
		entry := int(uint64(s.in.Imm) - img.Layout.CodeBase)
		bits, ok := entryBitsAt(img, entry)
		if !ok {
			continue
		}
		for k, a := range asm.ArgRegs {
			if pv[i]&(1<<a) != 0 && bits&(1<<k) != 0 {
				cands = append(cands, cand{entry, k})
				break
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	// Clearing the bit turns *every* call site of the callee into a
	// potential violation; whichever the dataflow reaches first is the
	// reported one, so accept them all.
	var wantOffs []int
	for _, s := range sites {
		if s.in.Op == asm.OpCall &&
			int(uint64(s.in.Imm)-img.Layout.CodeBase) == c.calleeEntry {
			wantOffs = append(wantOffs, s.off)
		}
	}
	magicOff := c.calleeEntry - 8
	m := mutate(img, func(code []byte) {
		w := binary.LittleEndian.Uint64(code[magicOff:])
		binary.LittleEndian.PutUint64(code[magicOff:], w&^(1<<c.argIdx))
	})
	return &Mutant{Image: m, MutOff: magicOff, WantOffs: wantOffs,
		WantMsg: "public-argument call site"}
}

// argRedirect models the paper's ssl_send attack at the binary level: at
// a call passing a *public* argument, the final argument-staging move
// (directly before the call, so the redirect has no other consumers) is
// redirected to read from a register that is provably private at that
// point. Private data now flows into a public parameter.
func argRedirect(img *link.Image, seed uint64) *Mutant {
	sites := walk(img)
	pv := privAt(img, sites)
	type cand struct {
		mov     site // the staging move directly before the call
		callOff int
		evil    asm.Reg
	}
	var cands []cand
	for i, s := range sites {
		if s.in.Op != asm.OpCall || i == 0 {
			continue
		}
		mov := sites[i-1]
		if mov.fn != s.fn || mov.off+mov.n != s.off {
			continue
		}
		if mov.in.Op != asm.OpMovRR && mov.in.Op != asm.OpMovRI {
			continue
		}
		ai := -1
		for k, a := range asm.ArgRegs {
			if mov.in.Dst == a {
				ai = k
			}
		}
		if ai < 0 {
			continue
		}
		entry := int(uint64(s.in.Imm) - img.Layout.CodeBase)
		bits, ok := entryBitsAt(img, entry)
		// Only a *public* parameter makes the redirect a leak.
		if !ok || bits&(1<<ai) != 0 {
			continue
		}
		// An evil source: any register private right before the staging
		// move (lowest index for determinism), other than the destination.
		for r := asm.Reg(0); r < asm.NumRegs; r++ {
			if pv[i-1]&(1<<r) != 0 && r != mov.in.Dst {
				cands = append(cands, cand{mov, s.off, r})
				break
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	m := mutate(img, func(code []byte) {
		if c.mov.in.Op == asm.OpMovRR {
			// Retarget the source byte of [mov argreg, src]: the argument
			// register now copies the private register's taint.
			code[c.mov.off+2] = byte(c.evil)
			return
		}
		// Rewrite [mov argreg, imm] (11 bytes) in place as
		// [mov argreg, evil] (3 bytes) plus nop padding.
		code[c.mov.off] = byte(asm.OpMovRR)
		code[c.mov.off+1] = byte(c.mov.in.Dst)
		code[c.mov.off+2] = byte(c.evil)
		nopOut(code, c.mov.off+3, c.mov.n-3)
	})
	return &Mutant{Image: m, MutOff: c.mov.off,
		WantOffs: []int{c.callOff},
		WantMsg:  "public-argument call site"}
}

// callSkipMagic splices a direct call past the callee's CFI magic word:
// the target is no longer a procedure entry.
func callSkipMagic(img *link.Image, seed uint64) *Mutant {
	var cands []site
	for _, s := range walk(img) {
		if s.in.Op == asm.OpCall {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	m := mutate(img, func(code []byte) {
		imm := binary.LittleEndian.Uint64(code[c.off+1:])
		binary.LittleEndian.PutUint64(code[c.off+1:], imm+8)
	})
	return &Mutant{Image: m, MutOff: c.off, WantOffs: []int{c.off},
		WantMsg: "call target is not a procedure entry"}
}

// icallStripCheck NOPs the [add rt, 8] that completes an indirect call's
// CFI check sequence, breaking the idiom the structural pass requires.
func icallStripCheck(img *link.Image, seed uint64) *Mutant {
	sites := walk(img)
	type cand struct{ add, icall site }
	var cands []cand
	for i := 0; i+1 < len(sites); i++ {
		add, ic := sites[i], sites[i+1]
		if ic.in.Op == asm.OpICall && add.in.Op == asm.OpAddRI &&
			add.in.Dst == ic.in.Src && add.in.Imm == 8 &&
			add.off+add.n == ic.off {
			cands = append(cands, cand{add, ic})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	m := mutate(img, func(code []byte) {
		nopOut(code, c.add.off, c.add.n)
	})
	return &Mutant{Image: m, MutOff: c.add.off, WantOffs: []int{c.icall.off},
		WantMsg: "icall check idiom malformed"}
}

// retToPlain rewrites a pop into a plain ret — the classic CFI bypass:
// returning through an unchecked address.
func retToPlain(img *link.Image, seed uint64) *Mutant {
	var cands []site
	for _, s := range walk(img) {
		if s.in.Op == asm.OpPop {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	m := mutate(img, func(code []byte) {
		code[c.off] = byte(asm.OpRet)
	})
	return &Mutant{Image: m, MutOff: c.off, WantOffs: []int{c.off},
		WantMsg: "plain ret is forbidden"}
}

// strayMagicInject writes an MRet magic word into inter-function nop
// padding: a return-site word no call legitimizes, usable as a forged
// CFI landing pad.
func strayMagicInject(img *link.Image, seed uint64) *Mutant {
	type gap struct{ off int }
	var cands []gap
	funcs := append([]*link.FuncSym{}, img.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Base < funcs[j].Base })
	for i := 0; i+1 < len(funcs); i++ {
		// Alignment padding between one function's end and the next one's
		// magic word. The word is written at the gap's start and needs at
		// least one trailing padding nop after it: the byte after the word
		// must decode as a nop, never as an exit (which would legitimize
		// the stray word as an exit shim).
		end := int(funcs[i].Base-img.Layout.CodeBase) + int(funcs[i].Size)
		next := int(funcs[i+1].Base - img.Layout.CodeBase)
		if next-end >= 9 {
			cands = append(cands, gap{end})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	m := mutate(img, func(code []byte) {
		binary.LittleEndian.PutUint64(code[c.off:], img.MRetPrefix|1)
	})
	return &Mutant{Image: m, MutOff: c.off, WantOffs: []int{c.off},
		WantMsg: "stray MRet magic word"}
}

// syscallInject overwrites a reachable one-byte instruction (the
// prologue chksp) with a syscall.
func syscallInject(img *link.Image, seed uint64) *Mutant {
	c := pickChkSP(img, seed)
	if c == nil {
		return nil
	}
	m := mutate(img, func(code []byte) {
		code[c.off] = byte(asm.OpSyscall)
	})
	return &Mutant{Image: m, MutOff: c.off, WantOffs: []int{c.off},
		WantMsg: "syscall in untrusted code"}
}

// wrgsInject overwrites a reachable instruction with a segment-register
// write (re-basing GS would move the private region).
func wrgsInject(img *link.Image, seed uint64) *Mutant {
	c := pickChkSP(img, seed)
	if c == nil {
		return nil
	}
	m := mutate(img, func(code []byte) {
		code[c.off] = byte(asm.OpWrGS)
	})
	return &Mutant{Image: m, MutOff: c.off, WantOffs: []int{c.off},
		WantMsg: "segment register write in untrusted code"}
}

func pickChkSP(img *link.Image, seed uint64) *site {
	var cands []site
	for _, s := range walk(img) {
		if s.in.Op == asm.OpChkSP {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[pick(seed, len(cands))]
	return &c
}
