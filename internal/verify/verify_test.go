package verify_test

import (
	"encoding/binary"
	"testing"

	"confllvm"
	"confllvm/internal/asm"
	"confllvm/internal/verify"
)

const testProg = `
extern int send(int fd, char *buf, int size);
extern void read_passwd(char *uname, private char *pass, int size);
extern void encrypt(private char *src, char *dst, int size);
extern void output(long v);

int checksum(char *buf, int n) {
	int i;
	int acc = 0;
	for (i = 0; i < n; i++) acc += buf[i];
	return acc;
}

private int sq(private int x) { return x * x; }

int (*fns[1])(char*, int) = { checksum };

int main() {
	char uname[8] = "bob";
	private char pw[32];
	char enc[32];
	read_passwd(uname, pw, 32);
	// A private scalar travels through an argument register.
	pw[1] = (char)sq(pw[0]);
	encrypt(pw, enc, 32);
	send(1, enc, 32);
	output(fns[0](enc, 32));
	return 0;
}
`

func compile(t *testing.T, v confllvm.Variant) *confllvm.Artifact {
	t.Helper()
	art, err := confllvm.Compile(confllvm.Program{
		Sources: []confllvm.Source{{Name: "t.c", Code: testProg}},
	}, v)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return art
}

func TestVerifyAcceptsCompilerOutput(t *testing.T) {
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
		art := compile(t, v)
		if err := verify.Verify(art.Image, verify.Options{}); err != nil {
			t.Errorf("[%v] verifier rejected valid output: %v", v, err)
		}
	}
}

func TestVerifyRejectsUncheckedConfigs(t *testing.T) {
	for _, v := range []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBare,
		confllvm.VariantCFI, confllvm.VariantMPXSep} {
		art := compile(t, v)
		if err := verify.Verify(art.Image, verify.Options{}); err == nil {
			t.Errorf("[%v] verifier must reject unverifiable configurations", v)
		}
	}
}

// TestVerifyFaultInjection models a buggy (or malicious) compiler: each
// mutation strips or corrupts one piece of instrumentation, and the
// verifier must reject every mutant (§5.2: ConfVerify guards against
// compiler bugs).
func TestVerifyFaultInjection(t *testing.T) {
	art := compile(t, confllvm.VariantMPX)
	img := art.Image
	base := func() []byte { return append([]byte{}, img.Code...) }

	// Locate interesting instruction offsets by a linear sweep from each
	// function entry... simpler: scan all offsets for opcode bytes and
	// mutate the first match outside magic words.
	findOp := func(code []byte, op asm.Op) int {
		magic := img.MagicOffsets()
		for i := 0; i < len(code); i++ {
			inMagic := false
			for m := range magic {
				if i >= m && i < m+8 {
					inMagic = true
					break
				}
			}
			if inMagic {
				continue
			}
			if in, _, err := asm.Decode(code, i); err == nil && in.Op == op {
				// Heuristic: only accept offsets that are also decodable
				// from a function entry chain; good enough for mutation.
				return i
			}
		}
		return -1
	}

	mutants := map[string]func() []byte{
		"strip-bound-check-to-nops": func() []byte {
			c := base()
			off := findOp(c, asm.OpBndCLReg)
			if off < 0 {
				t.Fatal("no bound check found")
			}
			n := asm.EncodedLen(asm.OpBndCLReg)
			for i := 0; i < n; i++ {
				c[off+i] = byte(asm.OpNop)
			}
			return c
		},
		"flip-entry-taint-bits": func() []byte {
			// Make sq claim a *public* argument: its caller passes a
			// private value in rcx, which the verifier must now flag.
			c := base()
			fs := img.Func("sq")
			off := int(fs.MagicAddr - img.Layout.CodeBase)
			w := binary.LittleEndian.Uint64(c[off:])
			binary.LittleEndian.PutUint64(c[off:], w&^1)
			return c
		},
		"plain-ret-injection": func() []byte {
			c := base()
			off := findOp(c, asm.OpPop)
			if off < 0 {
				t.Fatal("no pop found")
			}
			c[off] = byte(asm.OpRet)
			return c
		},
		"syscall-injection": func() []byte {
			// Overwrite a *reachable* instruction (the prologue chksp)
			// with a syscall; padding nops are unreachable and would be
			// rightly ignored by the verifier.
			c := base()
			off := findOp(c, asm.OpChkSP)
			if off < 0 {
				t.Fatal("no chksp found")
			}
			c[off] = byte(asm.OpSyscall)
			return c
		},
	}

	for name, mk := range mutants {
		code := mk()
		mut := *img
		mut.Code = code
		if err := verify.Verify(&mut, verify.Options{}); err == nil {
			t.Errorf("mutant %q passed verification", name)
		}
	}
}
