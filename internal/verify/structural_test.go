package verify_test

import (
	"errors"
	"strings"
	"testing"

	"confllvm"
	"confllvm/internal/asm"
	"confllvm/internal/link"
	"confllvm/internal/verify"
)

// Hand-picked magic prefixes for synthetic images (low 5 bits clear, and
// byte patterns that cannot collide with any encoded operand below).
const (
	synthMCall uint64 = 0x6b3a77d1905c4a40
	synthMRet  uint64 = 0x39f2c58e17ba6d20
)

// ib builds a synthetic code image byte by byte: magic words, encoded
// instructions and raw bytes, at known offsets. The verifier takes only
// code + prefixes + layout + config, so a hand-built image pins error
// offsets exactly.
type ib struct {
	code   []byte
	layout link.Layout
}

func (b *ib) off() int          { return len(b.code) }
func (b *ib) addr() uint64      { return b.layout.CodeBase + uint64(len(b.code)) }
func (b *ib) at(off int) uint64 { return b.layout.CodeBase + uint64(off) }

func (b *ib) mcall(bits uint8) int {
	off := len(b.code)
	b.code = asm.AppendMagic(b.code, synthMCall|uint64(bits))
	return off
}

func (b *ib) mret(bits uint8) int {
	off := len(b.code)
	b.code = asm.AppendMagic(b.code, synthMRet|uint64(bits))
	return off
}

func (b *ib) emit(in asm.Inst) int {
	off := len(b.code)
	b.code = asm.Encode(b.code, in)
	return off
}

func (b *ib) raw(bs ...byte) int {
	off := len(b.code)
	b.code = append(b.code, bs...)
	return off
}

func (b *ib) image(v confllvm.Variant) *link.Image {
	conf := v.Config()
	return &link.Image{
		Code:        b.code,
		MCallPrefix: synthMCall,
		MRetPrefix:  synthMRet,
		Layout:      b.layout,
		Config:      conf,
	}
}

// TestVerifyErrorPaths drives every structural, CFG and dataflow rejection
// through hand-built images and pins the exact Error{Off, Msg} each one
// must produce — under the serial and the parallel verifier alike.
func TestVerifyErrorPaths(t *testing.T) {
	mem8 := func(base asm.Reg, seg asm.Seg, use32 bool) asm.Mem {
		return asm.Mem{Seg: seg, Base: base, Index: asm.NoReg, Size: 8, Use32: use32}
	}

	cases := []struct {
		name    string
		variant confllvm.Variant
		strict  bool
		// build emits one image and returns the wanted error offset and
		// message (substring match for errors that embed decode details).
		build func(b *ib) (int, string)
	}{
		{"plain-ret", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpRet})
			return off, "plain ret is forbidden under taint-aware CFI"
		}},
		{"syscall", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpSyscall})
			return off, "syscall in untrusted code"
		}},
		{"segment-write", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpWrFS, Src: asm.RAX})
			return off, "segment register write in untrusted code"
		}},
		{"jmp-outside-code", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpJmp, Imm: 0})
			return off, "jump target outside code"
		}},
		{"jcc-outside-code", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpJcc, Cond: asm.CondE, Imm: 0})
			return off, "jcc target outside code"
		}},
		{"undecodable", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.raw(0xEE)
			return off, "undecodable instruction"
		}},
		{"call-without-retsite", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpCall, Imm: int64(b.addr())})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "call without a return-site MRet magic word"
		}},
		{"call-not-an-entry", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			callLen := asm.EncodedLen(asm.OpCall)
			// Target the trap after the return site: decodable code, but
			// not preceded by an MCall word.
			target := b.at(b.off() + callLen + 8)
			off := b.emit(asm.Inst{Op: asm.OpCall, Imm: int64(target)})
			b.mret(0)
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "call target is not a procedure entry"
		}},
		{"stub-outside-externals-table", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpMovRI, Dst: asm.R11, Imm: 0x123456})
			b.emit(asm.Inst{Op: asm.OpLoad, Dst: asm.R11, M: mem8(asm.R11, asm.SegNone, false)})
			b.emit(asm.Inst{Op: asm.OpJmpR, Src: asm.R11})
			return off, "stub jumps through an address outside the externals table"
		}},
		{"icall-without-sequence", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpICall, Src: asm.RAX})
			b.mret(0)
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "icall without CFI check sequence"
		}},
		{"jmpr-without-return-idiom", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpJmpR, Src: asm.RAX})
			return off, "indirect jump without return idiom"
		}},
		{"exit-inside-procedure", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpExit})
			return off, "exit instruction inside a procedure"
		}},
		{"control-falls-into-gap", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			// A jcc targets byte 2 of a mov-immediate, creating an
			// overlapping decode stream: the mov's fall-through leader is
			// not adjacent to it.
			b.mcall(0)
			jccLen := asm.EncodedLen(asm.OpJcc)
			movOff := b.off() + jccLen
			b.emit(asm.Inst{Op: asm.OpJcc, Cond: asm.CondE, Imm: int64(b.at(movOff + 2))})
			// The mov's first immediate byte (at movOff+2) decodes as trap.
			b.emit(asm.Inst{Op: asm.OpMovRI, Dst: asm.RAX, Imm: int64(asm.OpTrap)})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return movOff, "control falls into a gap"
		}},
		{"private-arg-at-public-call", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			// Callee F declares a public rcx; the caller's entry bits make
			// rcx private and pass it straight to F.
			fEntry := b.mcall(0) + 8
			b.emit(asm.Inst{Op: asm.OpTrap})
			b.mcall(1) // caller: rcx private on entry
			off := b.emit(asm.Inst{Op: asm.OpCall, Imm: int64(b.at(fEntry))})
			b.mret(0)
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "private argument register rcx at a public-argument call site"
		}},
		{"private-ret-at-public-retsite", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			// A full, well-formed return idiom with ret bit 0 while rax
			// still carries its conservative private entry taint.
			b.mcall(0)
			sz := func(op asm.Op) int { return asm.EncodedLen(op) }
			trapOff := b.off() + sz(asm.OpPop) + sz(asm.OpMovRI) + sz(asm.OpNot) +
				sz(asm.OpCmpMR) + sz(asm.OpJcc) + sz(asm.OpAddRI) + sz(asm.OpJmpR)
			b.emit(asm.Inst{Op: asm.OpPop, Dst: asm.R10})
			mretWord := synthMRet // force non-constant: ^ of the typed constant overflows int64
			b.emit(asm.Inst{Op: asm.OpMovRI, Dst: asm.R11, Imm: int64(^mretWord)})
			b.emit(asm.Inst{Op: asm.OpNot, Dst: asm.R11})
			b.emit(asm.Inst{Op: asm.OpCmpMR, M: mem8(asm.R10, asm.SegNone, false), Src: asm.R11})
			b.emit(asm.Inst{Op: asm.OpJcc, Cond: asm.CondNE, Imm: int64(b.at(trapOff))})
			b.emit(asm.Inst{Op: asm.OpAddRI, Dst: asm.R10, Imm: 8})
			off := b.emit(asm.Inst{Op: asm.OpJmpR, Src: asm.R10})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "private return value at a public return site"
		}},
		{"seg-operand-without-use32", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpLoad, Dst: asm.RBX, M: mem8(asm.RAX, asm.SegFS, false)})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "segment-scheme operand without 32-bit constraint"
		}},
		{"seg-operand-unprefixed", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpLoad, Dst: asm.RBX, M: mem8(asm.RAX, asm.SegNone, true)})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "unprefixed memory operand under segmentation scheme"
		}},
		{"private-store-to-public", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(1) // rcx private on entry
			off := b.emit(asm.Inst{Op: asm.OpStore, M: mem8(asm.RAX, asm.SegFS, true), Src: asm.RCX})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "private register stored to public memory"
		}},
		{"private-push", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(1)
			off := b.emit(asm.Inst{Op: asm.OpPush, Src: asm.RCX})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "private register pushed to the public stack"
		}},
		{"mpx-missing-bound-checks", confllvm.VariantMPX, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpLoad, Dst: asm.RBX, M: mem8(asm.RAX, asm.SegNone, false)})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "memory operand without MPX bound checks"
		}},
		{"mpx-ambiguous-bound-checks", confllvm.VariantMPX, false, func(b *ib) (int, string) {
			b.mcall(0)
			b.emit(asm.Inst{Op: asm.OpBndCLReg, Src: asm.RAX, Bnd: asm.BND0})
			b.emit(asm.Inst{Op: asm.OpBndCUReg, Src: asm.RAX, Bnd: asm.BND0})
			b.emit(asm.Inst{Op: asm.OpBndCLReg, Src: asm.RAX, Bnd: asm.BND1})
			b.emit(asm.Inst{Op: asm.OpBndCUReg, Src: asm.RAX, Bnd: asm.BND1})
			off := b.emit(asm.Inst{Op: asm.OpLoad, Dst: asm.RBX, M: mem8(asm.RAX, asm.SegNone, false)})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "ambiguous bound checks on operand base"
		}},
		{"arbitrary-rsp-write", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			off := b.emit(asm.Inst{Op: asm.OpMovRR, Dst: asm.RSP, Src: asm.RAX})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "arbitrary rsp modification"
		}},
		{"frame-without-chksp", confllvm.VariantMPX, false, func(b *ib) (int, string) {
			entry := b.mcall(0) + 8
			b.emit(asm.Inst{Op: asm.OpSubRI, Dst: asm.RSP, Imm: 32})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return entry, "frame allocation without a chksp stack check"
		}},
		{"strict-private-branch", confllvm.VariantSeg, true, func(b *ib) (int, string) {
			b.mcall(1) // rcx private
			cmpLen := asm.EncodedLen(asm.OpCmpRR)
			jccLen := asm.EncodedLen(asm.OpJcc)
			trapAddr := b.at(b.off() + cmpLen + jccLen)
			b.emit(asm.Inst{Op: asm.OpCmpRR, Dst: asm.RCX, Src: asm.RCX})
			off := b.emit(asm.Inst{Op: asm.OpJcc, Cond: asm.CondE, Imm: int64(trapAddr)})
			b.emit(asm.Inst{Op: asm.OpTrap})
			return off, "branch on private data (implicit flow)"
		}},
		{"stray-mret-word", confllvm.VariantSeg, false, func(b *ib) (int, string) {
			b.mcall(0)
			b.emit(asm.Inst{Op: asm.OpTrap})
			off := b.mret(0)
			// Followed by a nop, not an exit: no shim legitimization.
			b.emit(asm.Inst{Op: asm.OpNop})
			return off, "stray MRet magic word"
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := &ib{layout: link.LayoutFor(tc.variant.Config())}
			wantOff, wantMsg := tc.build(b)
			img := b.image(tc.variant)

			check := func(par int) {
				err := verify.Verify(img, verify.Options{Strict: tc.strict, Parallel: par})
				if err == nil {
					t.Fatalf("parallel=%d: image accepted, want Error{%#x, %q}", par, wantOff, wantMsg)
				}
				var verr *verify.Error
				if !errors.As(err, &verr) {
					t.Fatalf("parallel=%d: not a structured verify.Error: %v", par, err)
				}
				if verr.Off != wantOff || !strings.Contains(verr.Msg, wantMsg) {
					t.Fatalf("parallel=%d: got Error{%#x, %q}, want Error{%#x, %q}",
						par, verr.Off, verr.Msg, wantOff, wantMsg)
				}
			}
			check(1)
			check(8)
		})
	}
}
