// Package ir defines ConfLLVM's typed intermediate representation: a
// CFG of basic blocks over mutable virtual registers (machine-IR style,
// no SSA/phi nodes). Every virtual register carries a qualified type whose
// confidentiality qualifier may still be an inference variable; the taint
// package resolves those and the code generator consumes the result.
package ir

import (
	"fmt"
	"strings"

	"confllvm/internal/minic"
	"confllvm/internal/types"
)

// Value is a virtual register id. NoValue marks "no result".
type Value int32

// NoValue is the absent value.
const NoValue Value = -1

// Op is an IR operation.
type Op uint8

const (
	OpInvalid Op = iota

	OpConst  // Res = Imm (typed by Ty)
	OpFConst // Res = FImm

	// Integer arithmetic: Res = Args[0] op Args[1].
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical
	OpSar // arithmetic

	// Float arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons: Res (int) = Args[0] pred Args[1].
	OpICmp
	OpFCmp

	// Memory. Ty is the accessed element type; its Qual is the memory
	// operand's taint (what the runtime checks enforce).
	OpLoad  // Res = *(Ty*)Args[0]
	OpStore // *(Ty*)Args[0] = Args[1]

	// Address producers.
	OpAddrOf     // Res = &alloca (A)
	OpGlobalAddr // Res = &global (Global)
	OpFuncAddr   // Res = &func (Global)

	// Calls.
	OpCall  // Res = Callee(Args...); Res may be NoValue
	OpICall // Res = (*Args[0])(Args[1:]...)

	// Conversions. Res type is Ty.
	OpTrunc
	OpZExt
	OpSExt
	OpBitcast // pointer/int reinterpretation, same size
	OpIntToFP
	OpFPToInt

	// Copy: Res = Args[0] (assignment to a promoted local).
	OpCopy

	// Varargs support.
	OpVaStart // Res = pointer to first variadic incoming slot

	// Terminators.
	OpBr     // unconditional branch to Blk
	OpCondBr // if Args[0] != 0 goto Blk else Blk2
	OpRet    // return Args[0] (optional)

	numOps
)

// Pred is a comparison predicate for OpICmp/OpFCmp.
type Pred uint8

const (
	PredEQ Pred = iota
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	PredULT
	PredULE
	PredUGT
	PredUGE
)

var predNames = [...]string{"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}

func (p Pred) String() string { return predNames[p] }

var opNames = [numOps]string{
	OpConst: "const", OpFConst: "fconst",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSar: "sar",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpLoad: "load", OpStore: "store",
	OpAddrOf: "addrof", OpGlobalAddr: "gaddr", OpFuncAddr: "faddr",
	OpCall: "call", OpICall: "icall",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext", OpBitcast: "bitcast",
	OpIntToFP: "inttofp", OpFPToInt: "fptoint",
	OpCopy: "copy", OpVaStart: "vastart",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Inst is one IR instruction.
type Inst struct {
	Op     Op
	Res    Value
	Args   []Value
	Imm    int64
	FImm   float64
	Ty     *types.Type // element type (load/store), target type (casts/const)
	Pred   Pred
	A      *Alloca
	Global string // global or function symbol
	Callee string // direct call target
	Blk    int    // branch target
	Blk2   int    // false branch target
	Pos    minic.Pos
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Inst) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpCondBr || in.Op == OpRet
}

// HasResult reports whether the op defines a virtual register. (Calls may
// still carry Res == NoValue for void calls.)
func (o Op) HasResult() bool {
	switch o {
	case OpStore, OpBr, OpCondBr, OpRet:
		return false
	}
	return true
}

// Alloca is a stack object.
type Alloca struct {
	Name string
	Type *types.Type // object type; Qual decides private/public stack
	// FrameOff is assigned by the code generator.
	FrameOff int
}

// Block is a basic block. The last instruction is the terminator.
type Block struct {
	ID    int
	Insts []*Inst
}

// Succs returns the successor block ids.
func (b *Block) Succs() []int {
	if len(b.Insts) == 0 {
		return nil
	}
	t := b.Insts[len(b.Insts)-1]
	switch t.Op {
	case OpBr:
		return []int{t.Blk}
	case OpCondBr:
		return []int{t.Blk, t.Blk2}
	}
	return nil
}

// Func is an IR function.
type Func struct {
	Name      string
	Params    []*types.Type
	ParamRegs []Value // vreg holding each incoming parameter
	Ret       *types.Type
	Variadic  bool
	Extern    bool // trusted-runtime function (no body, called via stubs)
	Blocks    []*Block
	Allocas   []*Alloca

	valueTypes []*types.Type
	Pos        minic.Pos
}

// NewValue allocates a virtual register of type t.
func (f *Func) NewValue(t *types.Type) Value {
	f.valueTypes = append(f.valueTypes, t)
	return Value(len(f.valueTypes) - 1)
}

// ValueType returns the type of v.
func (f *Func) ValueType(v Value) *types.Type {
	if v == NoValue {
		return nil
	}
	return f.valueTypes[v]
}

// SetValueType overrides the type of v (taint resolution rewrites quals).
func (f *Func) SetValueType(v Value, t *types.Type) { f.valueTypes[v] = t }

// NumValues returns the number of virtual registers.
func (f *Func) NumValues() int { return len(f.valueTypes) }

// NewBlock appends an empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Global is a module-level variable.
type Global struct {
	Name string
	Type *types.Type
	// Data is the initial contents (zero-filled to the type's size).
	Data []byte
	// Relocs list offsets within Data that must be patched with the
	// address of another symbol at link time.
	Relocs []Reloc
	Pos    minic.Pos
}

// Reloc is an address fixup inside a global's initializer.
type Reloc struct {
	Off    int
	Symbol string // global or function name
}

// Module is a compiled translation unit (all of U).
type Module struct {
	Funcs   []*Func
	Globals []*Global

	funcsByName   map[string]*Func
	globalsByName map[string]*Global
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{
		funcsByName:   map[string]*Func{},
		globalsByName: map[string]*Global{},
	}
}

// AddFunc registers a function.
func (m *Module) AddFunc(f *Func) { m.Funcs = append(m.Funcs, f); m.funcsByName[f.Name] = f }

// AddGlobal registers a global.
func (m *Module) AddGlobal(g *Global) {
	m.Globals = append(m.Globals, g)
	m.globalsByName[g.Name] = g
}

// Func looks up a function by name.
func (m *Module) Func(name string) *Func { return m.funcsByName[name] }

// Global looks up a global by name.
func (m *Module) Global(name string) *Global { return m.globalsByName[name] }

// ---- Printer (for tests and -emit-ir debugging) ----

func (in *Inst) String() string {
	var b strings.Builder
	if in.Res != NoValue {
		fmt.Fprintf(&b, "v%d = ", in.Res)
	}
	b.WriteString(in.Op.String())
	if in.Op == OpICmp || in.Op == OpFCmp {
		fmt.Fprintf(&b, ".%s", in.Pred)
	}
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, " %d", in.Imm)
	case OpFConst:
		fmt.Fprintf(&b, " %g", in.FImm)
	case OpAddrOf:
		fmt.Fprintf(&b, " %s", in.A.Name)
	case OpGlobalAddr, OpFuncAddr:
		fmt.Fprintf(&b, " %s", in.Global)
	case OpCall:
		fmt.Fprintf(&b, " %s", in.Callee)
	case OpBr:
		fmt.Fprintf(&b, " b%d", in.Blk)
	case OpCondBr:
		fmt.Fprintf(&b, " v%d, b%d, b%d", in.Args[0], in.Blk, in.Blk2)
		return b.String()
	}
	for _, a := range in.Args {
		fmt.Fprintf(&b, " v%d", a)
	}
	if in.Ty != nil {
		fmt.Fprintf(&b, " : %s", in.Ty)
	}
	return b.String()
}

// String renders the function for debugging.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "v%d %s", f.ParamRegs[i], p)
	}
	fmt.Fprintf(&b, ") %s {\n", f.Ret)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", blk.ID)
		for _, in := range blk.Insts {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
