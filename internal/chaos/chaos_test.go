package chaos_test

import (
	"bytes"
	"testing"

	"confllvm"
	"confllvm/internal/chaos"
	"confllvm/internal/verify"
)

const testProg = `
extern int send(int fd, char *buf, int size);
extern void read_passwd(char *uname, private char *pass, int size);
extern void encrypt(private char *src, char *dst, int size);
extern void output(long v);

int checksum(char *buf, int n) {
	int i;
	int acc = 0;
	for (i = 0; i < n; i++) acc += buf[i];
	return acc;
}

int main() {
	char uname[8] = "bob";
	private char pw[32];
	char enc[32];
	read_passwd(uname, pw, 32);
	encrypt(pw, enc, 32);
	send(1, enc, 32);
	output(checksum(enc, 32));
	return 0;
}
`

func compile(t *testing.T) *confllvm.Artifact {
	t.Helper()
	art, err := confllvm.Compile(confllvm.Program{
		Sources: []confllvm.Source{{Name: "t.c", Code: testProg}},
	}, confllvm.VariantMPX)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return art
}

// TestDecisionsDeterministic: the injector is stateless — re-querying any
// decision yields the same answer, and the per-request wire schedule is
// independent of query order.
func TestDecisionsDeterministic(t *testing.T) {
	in := chaos.NewInjector(42, 250)
	var first []bool
	for i := uint64(0); i < 200; i++ {
		first = append(first, in.CorruptWire(i))
	}
	// Re-query in reverse order.
	for i := len(first) - 1; i >= 0; i-- {
		if in.CorruptWire(uint64(i)) != first[i] {
			t.Fatalf("CorruptWire(%d) changed across queries", i)
		}
	}
	hits := 0
	for _, b := range first {
		if b {
			hits++
		}
	}
	// 250 per mille over 200 rolls: expect roughly 50; just require the
	// coin is neither stuck-off nor stuck-on.
	if hits == 0 || hits == len(first) {
		t.Fatalf("rate 250/1000 produced %d/%d corruptions", hits, len(first))
	}
	for e := uint64(0); e < 16; e++ {
		if in.FuelBudget(e) != in.FuelBudget(e) {
			t.Fatalf("FuelBudget(%d) unstable", e)
		}
		if b := in.FuelBudget(e); b < 30_000 || b >= 300_000 {
			t.Fatalf("FuelBudget(%d) = %d outside default window", e, b)
		}
	}
}

// TestSeedsIndependent: distinct seeds yield distinct schedules.
func TestSeedsIndependent(t *testing.T) {
	a, b := chaos.NewInjector(1, 500), chaos.NewInjector(2, 500)
	same := true
	for i := uint64(0); i < 256 && same; i++ {
		if a.CorruptWire(i) != b.CorruptWire(i) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 256-roll wire schedules")
	}
}

// TestCorruptPacketPoisonsLengthWord: word-protocol packets get the op
// word forced to the decrypting op and the length dword sign-poisoned;
// the input packet is never mutated.
func TestCorruptPacketPoisonsLengthWord(t *testing.T) {
	in := chaos.NewInjector(7, 1000)
	pkt := make([]byte, 24)
	pkt[0] = 1 // op = get
	orig := append([]byte(nil), pkt...)
	out := in.CorruptPacket(3, pkt)
	if !bytes.Equal(pkt, orig) {
		t.Fatal("CorruptPacket mutated its input")
	}
	if out[0] != 2 {
		t.Fatalf("op word not forced to put: %d", out[0])
	}
	if out[19]&0x80 == 0 {
		t.Fatal("length dword sign bit not set")
	}
	if !bytes.Equal(in.CorruptPacket(3, orig), out) {
		t.Fatal("CorruptPacket not deterministic")
	}
	// Short packets: still corrupted, still pure.
	small := []byte{9, 9}
	if bytes.Equal(in.CorruptPacket(0, small), small) {
		t.Fatal("short packet left untouched")
	}
}

// TestTamperImageRejectedByVerifier: the tampered image must fail
// verification for every epoch seed, and the original image must stay
// byte-identical (metadata shared, code copied).
func TestTamperImageRejectedByVerifier(t *testing.T) {
	art := compile(t)
	img := art.Image
	origCode := append([]byte(nil), img.Code...)
	if err := verify.Verify(img, verify.Options{}); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	for epoch := uint64(0); epoch < 8; epoch++ {
		mut := chaos.TamperImage(99, epoch, img)
		if mut == nil {
			t.Fatalf("epoch %d: no tamper target", epoch)
		}
		if err := verify.Verify(mut, verify.Options{}); err == nil {
			t.Errorf("epoch %d: tampered image passed verification", epoch)
		}
		if !bytes.Equal(img.Code, origCode) {
			t.Fatalf("epoch %d: TamperImage mutated the original image", epoch)
		}
	}
}

// TestCodeBombSiteStable: the bomb site is a stable function entry inside
// the code region.
func TestCodeBombSiteStable(t *testing.T) {
	art := compile(t)
	in := chaos.NewInjector(5, 1000)
	for epoch := uint64(0); epoch < 8; epoch++ {
		a1, ok1 := in.CodeBombSite(epoch, art.Image)
		a2, ok2 := in.CodeBombSite(epoch, art.Image)
		if !ok1 || !ok2 || a1 != a2 {
			t.Fatalf("epoch %d: unstable site (%#x,%v) vs (%#x,%v)", epoch, a1, ok1, a2, ok2)
		}
		off := a1 - art.Image.Layout.CodeBase
		if off >= uint64(len(art.Image.Code)) {
			t.Fatalf("epoch %d: site %#x outside code", epoch, a1)
		}
	}
}
