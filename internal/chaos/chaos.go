// Package chaos is the seeded fault injector behind `confbench -figure
// faults` and the supervisor tests: a deterministic source of adversarial
// perturbations — wire-packet corruption, code-page bit rot, fuel
// exhaustion, and pre-load image tampering — that turns failure into a
// reproducible workload.
//
// Determinism contract: every decision is a pure function of (Seed, tag,
// index). The injector carries no mutable state, so the same seed yields
// the same fault schedule no matter how many times, in which order, or on
// how many goroutines decisions are queried. Randomness comes from a
// private splitmix64 stream (the same frozen algorithm as
// internal/scenario), never math/rand: Go is free to change math/rand
// between releases, which would silently re-roll every nightly figure.
package chaos

import (
	"encoding/binary"

	"confllvm/internal/asm"
	"confllvm/internal/link"
)

// Stream tags partition the seed space so each fault mechanism draws from
// an independent stream. Frozen: renumbering re-rolls every figure.
const (
	tagWire        = 1 // per-request wire-corruption coin
	tagWirePayload = 2 // per-request corruption byte positions/values
	tagCode        = 3 // per-slot code-bomb coin
	tagCodeTarget  = 4 // per-slot code-bomb target function
	tagFuel        = 5 // per-slot fuel-bomb coin
	tagFuelBudget  = 6 // per-slot fuel budget
	tagTamper      = 7 // per-epoch image-tamper coin
	tagTamperSite  = 8 // per-epoch tamper target function
)

// EpochStride namespaces the per-slot fault rolls: the j'th request in an
// epoch's batch rolls at slot = epoch*EpochStride + j. Rolling per slot
// rather than per epoch makes fault exposure proportional to offered load
// instead of to the batching knob — a workload served in 6 big epochs sees
// the same expected fault count as one served in 24 small ones. Frozen:
// changing the stride re-rolls every figure. (Batches are bounded well
// below the stride by FaultPolicy; the constant exists so the slot spaces
// of distinct epochs can never collide.)
const EpochStride = 4096

// Injector decides, deterministically, which faults strike a supervised
// run. Rates are per-mille (0 = never, 1000 = always): wire corruption is
// rolled once per request (by absolute request index, so the schedule is
// independent of how requests are batched into epochs); code and fuel
// bombs are rolled once per request slot (see EpochStride); image
// tampering is rolled once per machine epoch (there is one load per
// epoch, hence one gate check).
type Injector struct {
	Seed uint64
	// WirePermille corrupts a request's packet before it reaches the
	// server (models an on-path attacker / link corruption).
	WirePermille uint64
	// CodePermille corrupts a loaded code page before the epoch runs
	// (models post-load memory corruption; bypasses the verify gate by
	// design — the gate checks bits at load time, not physics).
	CodePermille uint64
	// FuelPermille caps the epoch's fuel at a seeded budget (models a
	// runaway-execution watchdog firing mid-request).
	FuelPermille uint64
	// TamperPermille presents a tampered image to the verify-before-load
	// gate (models a compromised build artifact; must always be rejected).
	TamperPermille uint64
	// FuelMin/FuelMax bound the seeded fuel budget (instructions). Zero
	// values select the defaults below.
	FuelMin, FuelMax uint64
}

// Default fuel-bomb window: enough to boot and serve a few requests,
// small enough to fault partway through any full scenario.
const (
	defaultFuelMin = 30_000
	defaultFuelMax = 300_000
)

// DeriveSeed folds a tag path into a base seed with the package's frozen
// mixer — how a figure derives one independent injector seed per sweep
// cell from a single -seed flag.
func DeriveSeed(vals ...uint64) uint64 { return mix(vals...) }

// NewInjector builds an injector applying one rate to every mechanism —
// the knob the faults figure sweeps.
func NewInjector(seed, ratePermille uint64) Injector {
	return Injector{
		Seed:           seed,
		WirePermille:   ratePermille,
		CodePermille:   ratePermille,
		FuelPermille:   ratePermille,
		TamperPermille: ratePermille,
	}
}

// roll is the shared biased coin: true with probability permille/1000,
// drawn from the (Seed, tag, idx) stream.
func (in Injector) roll(tag, idx, permille uint64) bool {
	if permille == 0 {
		return false
	}
	return newRNG(mix(in.Seed, tag, idx)).next()%1000 < permille
}

// CorruptWire reports whether the request at absolute index req has its
// packet corrupted on the wire.
func (in Injector) CorruptWire(req uint64) bool {
	return in.roll(tagWire, req, in.WirePermille)
}

// CorruptPacket returns a corrupted copy of a request packet (the input
// is never mutated; queues share packet slices across replays). The
// corruption is deliberately adversarial rather than a blind bit flip —
// random single-byte flips almost never reach a guarded path: for
// word-protocol packets (>= 24 bytes, the KV wire format) it rewrites the
// op word to the decrypting op (put) and poisons the length word's low
// dword so the `(int)` truncation in the server yields a negative size,
// which the trusted decrypt handler must refuse (FaultTrusted). A seeded
// key-byte flip rides along. Fixed-format packets that ignore the length
// word (the TLS-ish handshake) decode the corruption as garbage data
// instead of faulting — their availability dips come from the code and
// fuel mechanisms.
func (in Injector) CorruptPacket(req uint64, pkt []byte) []byte {
	out := append([]byte(nil), pkt...)
	r := newRNG(mix(in.Seed, tagWirePayload, req))
	if len(out) >= 24 {
		binary.LittleEndian.PutUint64(out[0:8], 2) // op = put
		out[19] |= 0x80                            // (int)len < 0
		out[8+r.intn(8)] ^= byte(1 + r.intn(255))  // scramble the key too
	} else if len(out) > 0 {
		out[r.intn(uint64(len(out)))] ^= byte(1 + r.intn(255))
	}
	return out
}

// CodeBomb reports whether the given slot corrupts the epoch's loaded
// code image.
func (in Injector) CodeBomb(slot uint64) bool {
	return in.roll(tagCode, slot, in.CodePermille)
}

// CodeBombSite picks the seeded corruption target for a slot: the entry
// instruction of a non-stub function. Writing a single invalid-opcode
// byte (0xFF decodes to no instruction) there makes the first call into
// that function raise FaultDecode; a cold function makes the bomb a dud —
// corruption of an unexecuted page, which is also a real outcome. ok is
// false when the image has no eligible target.
func (in Injector) CodeBombSite(slot uint64, img *link.Image) (addr uint64, ok bool) {
	fs := pickFunc(mix(in.Seed, tagCodeTarget, slot), img)
	if fs == nil {
		return 0, false
	}
	return fs.Entry, true
}

// InvalidOpcode is the byte a code bomb plants: it decodes to no
// instruction, so execution reaching it raises FaultDecode in every
// dispatch mode.
const InvalidOpcode byte = 0xFF

// FuelBomb reports whether the given slot caps the epoch's fuel budget.
func (in Injector) FuelBomb(slot uint64) bool {
	return in.roll(tagFuel, slot, in.FuelPermille)
}

// FuelBudget returns the slot's seeded fuel allowance in instructions,
// drawn from [FuelMin, FuelMax).
func (in Injector) FuelBudget(slot uint64) uint64 {
	lo, hi := in.FuelMin, in.FuelMax
	if lo == 0 {
		lo = defaultFuelMin
	}
	if hi <= lo {
		hi = lo + (defaultFuelMax - defaultFuelMin)
	}
	return lo + newRNG(mix(in.Seed, tagFuelBudget, slot)).intn(hi-lo)
}

// Tamper reports whether this epoch presents a tampered image to the
// verify-before-load gate.
func (in Injector) Tamper(epoch uint64) bool {
	return in.roll(tagTamper, epoch, in.TamperPermille)
}

// TamperImage returns a tampered copy of a linked image: the entry
// instruction of a seeded non-stub function is overwritten with a raw
// syscall opcode. The verifier must reject it (syscalls are forbidden in
// untrusted code, and the entry instruction is reachable from the entry
// magic word); if it were ever loaded anyway, the planted syscall would
// fault on first execution rather than execute silently. The original
// image is not modified — only the code bytes are copied; all metadata is
// shared read-only. Returns nil when the image has no eligible target.
func TamperImage(seed, epoch uint64, img *link.Image) *link.Image {
	fs := pickFunc(mix(seed, tagTamperSite, epoch), img)
	if fs == nil {
		return nil
	}
	code := append([]byte(nil), img.Code...)
	code[fs.Entry-img.Layout.CodeBase] = byte(asm.OpSyscall)
	mut := *img
	mut.Code = code
	return &mut
}

// pickFunc selects a seeded non-stub function with executable bytes.
func pickFunc(seed uint64, img *link.Image) *link.FuncSym {
	var elig []*link.FuncSym
	for _, fs := range img.Funcs {
		if !fs.IsStub && fs.Size > 0 {
			elig = append(elig, fs)
		}
	}
	if len(elig) == 0 {
		return nil
	}
	return elig[newRNG(seed).intn(uint64(len(elig)))]
}

// ---- Frozen randomness (mirrors internal/scenario) ----

// rng is a splitmix64 stream — a frozen algorithm, so fault schedules can
// never drift across Go releases.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// mix derives a child seed from a seed and a tag path (same construction
// as internal/scenario.mix; duplicated because the streams are part of
// each package's frozen output contract, not shared infrastructure).
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 29
	}
	return h
}
