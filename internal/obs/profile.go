package obs

import (
	"fmt"
	"sort"
	"strings"

	"confllvm/internal/link"
	"confllvm/internal/loader"
	"confllvm/internal/machine"
)

// FuncCost is the flat (exclusive) cost attributed to one symbol.
type FuncCost struct {
	Name   string
	Cycles uint64
	Instrs uint64
	Hits   uint64 // block entries (U code) or invocations (T handlers)
}

// Profile is a symbolized flat profile. Costs merge by per-symbol
// addition, so profiles from different cells/runs fold commutatively.
type Profile struct {
	funcs map[string]*FuncCost
}

// NewFuncProfile returns an empty symbolized profile.
func NewFuncProfile() *Profile { return &Profile{funcs: map[string]*FuncCost{}} }

// Add accumulates cost against a symbol.
func (p *Profile) Add(name string, cycles, instrs, hits uint64) {
	c, ok := p.funcs[name]
	if !ok {
		c = &FuncCost{Name: name}
		p.funcs[name] = c
	}
	c.Cycles += cycles
	c.Instrs += instrs
	c.Hits += hits
}

// Merge folds o into p.
func (p *Profile) Merge(o *Profile) {
	for name, c := range o.funcs {
		p.Add(name, c.Cycles, c.Instrs, c.Hits)
	}
}

// TotalCycles sums attributed cycles across all symbols. For a profile
// flattened from one run this equals that run's Stats.Cycles exactly
// (the machine attributes every cycle it charges).
func (p *Profile) TotalCycles() uint64 {
	var n uint64
	for _, c := range p.funcs {
		n += c.Cycles
	}
	return n
}

// Top returns costs sorted by cycles descending (name ascending on
// ties) — the render order for profile tables.
func (p *Profile) Top() []FuncCost {
	out := make([]FuncCost, 0, len(p.funcs))
	for _, c := range p.funcs {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Folded renders the profile in folded-stack format ("symbol cycles",
// one line per symbol, sorted by name) — the input flamegraph tools
// take, and a canonical byte-diffable form.
func (p *Profile) Folded() string {
	names := make([]string, 0, len(p.funcs))
	for name := range p.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s %d\n", name, p.funcs[name].Cycles)
	}
	return b.String()
}

// FlattenProfile symbolizes a machine PC-keyed profile against a
// linked image: PCs inside a linked function's [Base, Base+Size) get
// that function's name, trusted-handler dispatch addresses become
// "T:<extern>" (via the loader's binding formula), the exit shims fold
// into "exit-shim", and anything else falls back to "pc:0x...".
func FlattenProfile(mp *machine.Profile, img *link.Image) *Profile {
	out := NewFuncProfile()
	if mp == nil {
		return out
	}
	funcs := make([]*link.FuncSym, len(img.Funcs))
	copy(funcs, img.Funcs)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Base < funcs[j].Base })
	handlers := make(map[uint64]string, len(img.Externals))
	for i, name := range img.Externals {
		handlers[loader.HandlerAddr(img.Layout, i)] = "T:" + name
	}
	for pc, cell := range mp.Cells() {
		out.Add(symbolize(pc, funcs, handlers, img), cell.Cycles, cell.Instrs, cell.Hits)
	}
	return out
}

func symbolize(pc uint64, funcs []*link.FuncSym, handlers map[uint64]string, img *link.Image) string {
	if name, ok := handlers[pc]; ok {
		return name
	}
	if pc == img.ExitShim[0] || pc == img.ExitShim[1] {
		return "exit-shim"
	}
	// First function with Base > pc, then step back one.
	i := sort.Search(len(funcs), func(i int) bool { return funcs[i].Base > pc })
	if i > 0 {
		f := funcs[i-1]
		if pc < f.Base+f.Size {
			return f.Name
		}
	}
	return fmt.Sprintf("pc:%#x", pc)
}
