package obs

import (
	"encoding/json"
	"math/bits"
	"reflect"
	"strings"
	"testing"
)

// sm64 is a splitmix64 stream — the same integer-only seeded generator
// the scenario package uses, inlined so obs stays dependency-free.
type sm64 struct{ s uint64 }

func (r *sm64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestBucketRoundTrip(t *testing.T) {
	// Every value maps to a bucket whose upper bound is >= the value,
	// and bucketUpper(b) itself maps back to bucket b.
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<63 + 12345, ^uint64(0)}
	for _, v := range vals {
		b := bucketOf(v)
		if u := bucketUpper(b); u < v {
			t.Errorf("bucketUpper(bucketOf(%d)) = %d < value", v, u)
		}
		if got := bucketOf(bucketUpper(b)); got != b {
			t.Errorf("bucketOf(bucketUpper(%d)) = %d", b, got)
		}
		if b < 0 || b >= histNumBuckets {
			t.Fatalf("bucket %d out of range for %d", b, v)
		}
	}
	// Relative error bound: bucket width / value <= 1/32.
	for v := uint64(64); v != 0; v <<= 1 {
		b := bucketOf(v + v/3)
		width := bucketUpper(b) - (bucketUpper(b-1) + 1) + 1
		if width > (v+v/3)/16 {
			t.Errorf("bucket width %d too coarse at %d", width, v+v/3)
		}
	}
	_ = bits.Len64 // keep import honest if constants change
}

func TestHistogramExactSmallQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 20; v++ {
		h.Observe(v)
	}
	// Values < 32 land in exact buckets, so quantiles are exact order
	// statistics (upper-bound convention: rank ceil(n*p/100)).
	for _, tc := range []struct {
		p    int
		want uint64
	}{
		{0, 1}, {50, 10}, {95, 19}, {99, 20}, {100, 20},
	} {
		if got := h.Quantile(tc.p); got != tc.want {
			t.Errorf("p%d = %d, want %d", tc.p, got, tc.want)
		}
	}
	if h.Mean() != 10 {
		t.Errorf("mean = %d, want 10", h.Mean())
	}
	if h.Min != 1 || h.Max != 20 {
		t.Errorf("min/max = %d/%d", h.Min, h.Max)
	}
}

func TestHistogramDeterminismAndSeedSensitivity(t *testing.T) {
	fill := func(seed uint64) *Histogram {
		var h Histogram
		r := &sm64{s: seed}
		for i := 0; i < 5000; i++ {
			h.Observe(r.next() % 1_000_000)
		}
		return &h
	}
	a, b := fill(7), fill(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different histograms")
	}
	c := fill(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical histograms")
	}
	// Quantile clamps to the observed max.
	if a.Quantile(100) != a.Max {
		t.Errorf("p100 = %d, want max %d", a.Quantile(100), a.Max)
	}
}

func TestHistogramMergeEqualsSingle(t *testing.T) {
	// Observing a stream into one histogram == splitting it across
	// shards and merging in any order.
	r := &sm64{s: 42}
	vals := make([]uint64, 999)
	for i := range vals {
		vals[i] = r.next() % (1 << 40)
	}
	var whole Histogram
	for _, v := range vals {
		whole.Observe(v)
	}
	shard := make([]*Histogram, 7)
	for i := range shard {
		shard[i] = &Histogram{}
	}
	for i, v := range vals {
		shard[i%7].Observe(v)
	}
	for _, order := range [][]int{{0, 1, 2, 3, 4, 5, 6}, {6, 2, 0, 5, 3, 1, 4}} {
		var m Histogram
		for _, i := range order {
			m.Merge(shard[i])
		}
		if !reflect.DeepEqual(&m, &whole) {
			t.Fatalf("merge order %v != whole-stream histogram", order)
		}
	}
}

func TestRegistryMergeOrderInvariance(t *testing.T) {
	mk := func(seed uint64) *Registry {
		r := NewRegistry()
		g := &sm64{s: seed}
		for i := 0; i < 200; i++ {
			r.Counter("reqs", 1)
			r.Gauge("queue-depth", g.next()%64)
			r.Hist("latency").Observe(g.next() % 100_000)
		}
		r.Counter("shards", 1)
		return r
	}
	parts := []*Registry{mk(1), mk(2), mk(3), mk(4)}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	var want string
	for pi, perm := range perms {
		m := NewRegistry()
		for _, i := range perm {
			m.Merge(parts[i])
		}
		snap := m.Snapshot()
		if pi == 0 {
			want = snap
			if m.CounterValue("reqs") != 800 || m.CounterValue("shards") != 4 {
				t.Fatalf("counter sums wrong:\n%s", snap)
			}
		} else if snap != want {
			t.Fatalf("merge order %v changed snapshot:\n%s\nvs\n%s", perm, snap, want)
		}
	}
	if !strings.Contains(want, "hist latency count=800") {
		t.Fatalf("snapshot missing merged hist:\n%s", want)
	}
}

func TestTracerWellFormed(t *testing.T) {
	tr := NewTracer()
	root := tr.Span("epoch", 0, 100, 900)
	tr.Span("run", root, 100, 700)
	tr.Span("backoff", root, 700, 900)
	if err := tr.WellFormed(); err != nil {
		t.Fatalf("good tree rejected: %v", err)
	}

	bad := NewTracer()
	bad.Span("child", 2, 0, 10) // parent not yet emitted
	if err := bad.WellFormed(); err == nil {
		t.Fatal("forward parent reference accepted")
	}

	escape := NewTracer()
	p := escape.Span("parent", 0, 100, 200)
	escape.Span("child", p, 150, 300) // escapes parent interval
	if err := escape.WellFormed(); err == nil {
		t.Fatal("non-nested child accepted")
	}

	rev := NewTracer()
	rev.Span("negative", 0, 50, 40)
	if err := rev.WellFormed(); err == nil {
		t.Fatal("end<start accepted")
	}
}

func TestTracerExports(t *testing.T) {
	tr := NewTracer()
	root := tr.Span("request", 0, 2000, 10000)
	tr.Span("T:recv", root, 2100, 2400)
	j1, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := tr.JSON()
	if string(j1) != string(j2) {
		t.Fatal("JSON export not deterministic")
	}
	var spans []Span
	if err := json.Unmarshal(j1, &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[1].Parent != root {
		t.Fatalf("roundtrip mismatch: %+v", spans)
	}
	ct, err := tr.ChromeTrace(2000)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]interface{}
	if err := json.Unmarshal(ct, &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0]["ph"] != "X" {
		t.Fatalf("chrome trace malformed: %s", ct)
	}
	ct2, _ := tr.ChromeTrace(2000)
	if string(ct) != string(ct2) {
		t.Fatal("chrome trace not deterministic")
	}
}

func TestProfileMergeAndFolded(t *testing.T) {
	a := NewFuncProfile()
	a.Add("main", 100, 40, 2)
	a.Add("T:send", 50, 0, 1)
	b := NewFuncProfile()
	b.Add("main", 11, 4, 1)
	b.Add("hash", 7, 3, 1)
	a.Merge(b)
	if got := a.TotalCycles(); got != 168 {
		t.Fatalf("total = %d, want 168", got)
	}
	top := a.Top()
	if top[0].Name != "main" || top[0].Cycles != 111 || top[0].Hits != 3 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	want := "T:send 50\nhash 7\nmain 111\n"
	if got := a.Folded(); got != want {
		t.Fatalf("folded = %q, want %q", got, want)
	}
}
