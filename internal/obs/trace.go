package obs

import (
	"encoding/json"
	"fmt"
)

// Span is one interval in simulated cycles. IDs are sequential from 1
// in emission order; Parent 0 means root. Because timestamps are
// simulated and emission order is program order, a trace is
// byte-identical across dispatch modes.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Start  uint64 `json:"start"`
	End    uint64 `json:"end"`
}

// Tracer accumulates spans. The zero value is ready to use.
type Tracer struct {
	spans []Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span records a completed interval and returns its ID (usable as the
// Parent of later spans). Parents must be emitted before children —
// emit the enclosing span once its end is known, then its children, or
// restructure so the parent interval is known first (the supervisor
// emits each epoch's span after the epoch completes, then the epoch's
// run/replay/backoff children).
func (t *Tracer) Span(name string, parent, start, end uint64) uint64 {
	id := uint64(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: start, End: end})
	return id
}

// Spans returns a copy of the recorded spans.
func (t *Tracer) Spans() []Span {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int { return len(t.spans) }

// WellFormed checks the span-tree invariants: sequential IDs, End >=
// Start, parents precede children, and every child interval nests
// inside its parent's interval.
func (t *Tracer) WellFormed() error {
	for i, s := range t.spans {
		if s.ID != uint64(i+1) {
			return fmt.Errorf("span %d: ID %d out of sequence", i, s.ID)
		}
		if s.End < s.Start {
			return fmt.Errorf("span %d (%s): end %d < start %d", s.ID, s.Name, s.End, s.Start)
		}
		if s.Parent == 0 {
			continue
		}
		if s.Parent >= s.ID {
			return fmt.Errorf("span %d (%s): parent %d not emitted before child", s.ID, s.Name, s.Parent)
		}
		p := t.spans[s.Parent-1]
		if s.Start < p.Start || s.End > p.End {
			return fmt.Errorf("span %d (%s): [%d,%d] outside parent %d (%s) [%d,%d]",
				s.ID, s.Name, s.Start, s.End, p.ID, p.Name, p.Start, p.End)
		}
	}
	return nil
}

// JSON renders the spans as a JSON array (one span object per
// element), deterministic byte-for-byte.
func (t *Tracer) JSON() ([]byte, error) {
	return json.MarshalIndent(t.spans, "", "  ")
}

// chromeEvent is one Chrome trace-event ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	TS   uint64            `json:"ts"`
	Dur  uint64            `json:"dur"`
	Args map[string]uint64 `json:"args,omitempty"`
}

// ChromeTrace renders the spans in Chrome trace-event JSON (load in
// chrome://tracing or Perfetto). cyclesPerMicro converts simulated
// cycles to the microsecond timestamps the format wants — pass the
// simulated clock rate / 1e6 (e.g. 2000 for a 2 GHz simulated clock);
// 0 is treated as 1. Each root span gets its own lane (tid = root ID),
// so concurrent requests render stacked.
func (t *Tracer) ChromeTrace(cyclesPerMicro uint64) ([]byte, error) {
	if cyclesPerMicro == 0 {
		cyclesPerMicro = 1
	}
	// root[i] = ID of the topmost ancestor of span i+1.
	root := make([]uint64, len(t.spans))
	for i, s := range t.spans {
		if s.Parent == 0 || s.Parent > uint64(i) {
			root[i] = s.ID
		} else {
			root[i] = root[s.Parent-1]
		}
	}
	evs := make([]chromeEvent, 0, len(t.spans))
	for i, s := range t.spans {
		ev := chromeEvent{
			Name: s.Name, Ph: "X", PID: 1, TID: root[i],
			TS: s.Start / cyclesPerMicro, Dur: (s.End - s.Start) / cyclesPerMicro,
			Args: map[string]uint64{"id": s.ID, "start_cycles": s.Start, "end_cycles": s.End},
		}
		if s.Parent != 0 {
			ev.Args["parent"] = s.Parent
		}
		evs = append(evs, ev)
	}
	return json.MarshalIndent(evs, "", "  ")
}
