// Package obs is the deterministic observability plane: metrics,
// request tracing and per-function profiles, all denominated in
// *simulated* cycles so every observation is byte-identical across
// dispatch modes (-superblocks, -chain) and across -parallel runs.
//
// The package deliberately has no clock and no randomness of its own:
// callers pass in simulated-cycle timestamps (machine Stats.Cycles) and
// every aggregate here — counters, gauges, histograms, span trees,
// flattened profiles — merges commutatively, the same discipline the
// cluster layer uses for shard clocks (bench.MergeShardClocks). That is
// what lets the bench matrix observe cells on worker goroutines in any
// completion order and still render one canonical table.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Histogram buckets: 32 sub-buckets per power-of-two octave (an
// HDR-histogram-style layout). Values < 32 get exact buckets; larger
// values land in bucket 32*(octave+1)+sub where the octave keeps the
// top 6 significant bits. Worst case (64-bit values) needs
// 32 + 32*59 = 1920 buckets, so the array is fixed-size and two
// histograms merge by plain per-bucket addition — commutative and
// associative by construction.
const (
	histSubBuckets = 32
	histNumBuckets = histSubBuckets * 60
)

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	shift := uint(bits.Len64(v) - 6) // v >= 32 so Len64 >= 6
	top := v >> shift                // in [32, 64)
	return histSubBuckets*(int(shift)+1) + int(top-histSubBuckets)
}

// bucketUpper is the largest value that maps into bucket b.
func bucketUpper(b int) uint64 {
	if b < histSubBuckets {
		return uint64(b)
	}
	shift := uint(b/histSubBuckets - 1)
	top := uint64(histSubBuckets + b%histSubBuckets)
	return ((top + 1) << shift) - 1
}

// Histogram is a log-bucketed histogram of simulated-cycle values.
// The zero value is ready to use.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64 // valid only when Count > 0
	Max     uint64
	buckets [histNumBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.buckets[bucketOf(v)]++
}

// Mean is the integer mean (0 when empty).
func (h *Histogram) Mean() uint64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Quantile returns the p-th percentile (p in [0,100]) as the upper
// bound of the bucket holding the rank-⌈count·p/100⌉ observation,
// clamped to the observed max. Integer arithmetic only: the same
// observations in any order give the same answer.
func (h *Histogram) Quantile(p int) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := (h.Count*uint64(p) + 99) / 100
	if rank == 0 {
		rank = 1
	}
	var acc uint64
	for b := 0; b < histNumBuckets; b++ {
		acc += h.buckets[b]
		if acc >= rank {
			if u := bucketUpper(b); u < h.Max {
				return u
			}
			return h.Max
		}
	}
	return h.Max
}

// Merge folds o into h (per-bucket sums; min/max extremes). Merging in
// any order yields identical state.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for b, n := range o.buckets {
		h.buckets[b] += n
	}
}

// Registry holds named counters, high-watermark gauges and histograms.
// All three merge commutatively: counters by sum, gauges by max,
// histograms by bucket sum.
type Registry struct {
	counters map[string]uint64
	gauges   map[string]uint64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]uint64{},
		gauges:   map[string]uint64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter adds delta to a named counter.
func (r *Registry) Counter(name string, delta uint64) { r.counters[name] += delta }

// CounterValue reads a counter (0 when absent).
func (r *Registry) CounterValue(name string) uint64 { return r.counters[name] }

// Gauge records a high-watermark gauge: the registry keeps the maximum
// value ever recorded, which is what makes gauge merges commutative.
func (r *Registry) Gauge(name string, v uint64) {
	if v > r.gauges[name] {
		r.gauges[name] = v
	}
}

// GaugeValue reads a gauge (0 when absent).
func (r *Registry) GaugeValue(name string) uint64 { return r.gauges[name] }

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Merge folds o into r. Merging registries in any order yields an
// identical registry (the permutation test pins this).
func (r *Registry) Merge(o *Registry) {
	for k, v := range o.counters {
		r.counters[k] += v
	}
	for k, v := range o.gauges {
		if v > r.gauges[k] {
			r.gauges[k] = v
		}
	}
	for k, h := range o.hists {
		r.Hist(k).Merge(h)
	}
}

// Snapshot renders the registry as sorted text, one metric per line —
// the canonical byte-diffable form.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	for _, k := range sortedKeys(r.counters) {
		fmt.Fprintf(&b, "counter %s %d\n", k, r.counters[k])
	}
	for _, k := range sortedKeys(r.gauges) {
		fmt.Fprintf(&b, "gauge %s %d\n", k, r.gauges[k])
	}
	hk := make([]string, 0, len(r.hists))
	for k := range r.hists {
		hk = append(hk, k)
	}
	sort.Strings(hk)
	for _, k := range hk {
		h := r.hists[k]
		fmt.Fprintf(&b, "hist %s count=%d min=%d mean=%d p50=%d p95=%d p99=%d max=%d\n",
			k, h.Count, h.Min, h.Mean(), h.Quantile(50), h.Quantile(95), h.Quantile(99), h.Max)
	}
	return b.String()
}

func sortedKeys(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
