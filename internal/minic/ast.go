package minic

import "confllvm/internal/types"

// File is a parsed translation unit.
type File struct {
	Name    string
	Structs map[string]*types.Type // struct/union tags
	Globals []*VarDecl
	Funcs   []*FuncDecl // definitions and prototypes
}

// FuncDecl is a function prototype or definition.
type FuncDecl struct {
	Pos      Pos
	Name     string
	Params   []Param
	Ret      *types.Type
	Variadic bool
	Extern   bool   // trusted-runtime (T) function: declared `extern`
	Body     *Block // nil for prototypes
}

// Sig returns the function's signature as a type.
func (f *FuncDecl) Sig() *types.FuncSig {
	sig := &types.FuncSig{Ret: f.Ret, Variadic: f.Variadic}
	for _, p := range f.Params {
		sig.Params = append(sig.Params, p.Type)
	}
	return sig
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *types.Type
	Pos  Pos
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Pos    Pos
	Name   string
	Type   *types.Type
	Init   Expr    // nil if none (scalar init)
	Inits  []Expr  // brace-list initializer elements
	StrVal *string // string-literal initializer for char arrays
	Static bool    // file-scope linkage marker (accepted, not enforced)
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Block is a brace-enclosed statement list with its own scope.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares local variables.
type DeclStmt struct {
	Pos   Pos
	Decls []*VarDecl
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// If is if/else.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhile is a do/while loop.
type DoWhile struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// For is a for loop. Init may be a DeclStmt or ExprStmt; any part may be nil.
type For struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Return returns from the current function.
type Return struct {
	Pos Pos
	X   Expr // nil for void
}

// Break exits the nearest loop.
type Break struct{ Pos Pos }

// Continue jumps to the nearest loop's next iteration.
type Continue struct{ Pos Pos }

// Empty is a lone semicolon.
type Empty struct{ Pos Pos }

func (*Block) stmtNode()    {}
func (*DeclStmt) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Empty) stmtNode()    {}

// ---- Expressions ----

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	Position() Pos
}

// IntLit is an integer (or character) literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos Pos
	Val float64
}

// StrLit is a string literal (NUL-terminated in rodata).
type StrLit struct {
	Pos Pos
	Val string
}

// Ident references a variable, parameter or function by name.
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is a prefix operator: - ! ~ * & ++ --.
type Unary struct {
	Pos  Pos
	Op   string
	X    Expr
	Post bool // postfix ++/--
}

// Binary is an infix operator (arithmetic, comparison, logical, shifts).
type Binary struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// Assign is an assignment, possibly compound (op is "", "+", "-", ...).
type Assign struct {
	Pos Pos
	Op  string
	LHS Expr
	RHS Expr
}

// Cond is the ternary operator.
type Cond struct {
	Pos     Pos
	C, T, F Expr
}

// Call invokes a function: direct if Fn is an Ident naming a function,
// indirect otherwise.
type Call struct {
	Pos  Pos
	Fn   Expr
	Args []Expr
}

// Index is array/pointer subscripting.
type Index struct {
	Pos  Pos
	X, I Expr
}

// Member is field access: x.f or p->f.
type Member struct {
	Pos   Pos
	X     Expr
	Name  string
	Arrow bool
}

// Cast converts X to Type. Pointer casts are unchecked statically — that is
// the point of the runtime region checks.
type Cast struct {
	Pos  Pos
	Type *types.Type
	X    Expr
}

// SizeofType is sizeof(type); sizeof expr is folded by the parser.
type SizeofType struct {
	Pos  Pos
	Type *types.Type
}

// VaStart is the builtin __va_start(): yields a pointer to the first
// variadic argument slot of the current function.
type VaStart struct{ Pos Pos }

// VaArg is the builtin __va_arg(ap, type): reads the next variadic argument
// through ap (a char** cursor) and advances it.
type VaArg struct {
	Pos  Pos
	Ap   Expr
	Type *types.Type
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Cast) exprNode()       {}
func (*SizeofType) exprNode() {}
func (*VaStart) exprNode()    {}
func (*VaArg) exprNode()      {}

func (e *IntLit) Position() Pos     { return e.Pos }
func (e *FloatLit) Position() Pos   { return e.Pos }
func (e *StrLit) Position() Pos     { return e.Pos }
func (e *Ident) Position() Pos      { return e.Pos }
func (e *Unary) Position() Pos      { return e.Pos }
func (e *Binary) Position() Pos     { return e.Pos }
func (e *Assign) Position() Pos     { return e.Pos }
func (e *Cond) Position() Pos       { return e.Pos }
func (e *Call) Position() Pos       { return e.Pos }
func (e *Index) Position() Pos      { return e.Pos }
func (e *Member) Position() Pos     { return e.Pos }
func (e *Cast) Position() Pos       { return e.Pos }
func (e *SizeofType) Position() Pos { return e.Pos }
func (e *VaStart) Position() Pos    { return e.Pos }
func (e *VaArg) Position() Pos      { return e.Pos }
