package minic

import (
	"fmt"

	"confllvm/internal/types"
)

// QualGen allocates fresh qualifier inference variables. One generator is
// shared by the parser (for unannotated local declarations and casts) and
// the IR generator (for temporaries).
type QualGen struct{ n int32 }

// Fresh returns a new qualifier variable.
func (g *QualGen) Fresh() types.Qual {
	q := types.Qual(g.n)
	g.n++
	return q
}

// Count returns the number of variables allocated so far.
func (g *QualGen) Count() int32 { return g.n }

type parser struct {
	toks    []Token
	pos     int
	structs map[string]*types.Type
	gen     *QualGen
	inFunc  bool // inside a function body: unannotated quals become variables

	// paramNames carries the parameter names of the most recently parsed
	// function declarator (C declarators carry names out-of-band).
	paramNames []string
}

// Parse parses one source file. structs is a shared tag registry (pass the
// same map when parsing multiple files of one program); gen is the shared
// qualifier-variable generator.
func Parse(name, src string, structs map[string]*types.Type, gen *QualGen) (*File, error) {
	toks, err := Lex(name, src)
	if err != nil {
		return nil, err
	}
	if structs == nil {
		structs = map[string]*types.Type{}
	}
	p := &parser{toks: toks, structs: structs, gen: gen}
	f := &File{Name: name, Structs: structs}
	if err := p.file(f); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) isKw(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) eatPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) eatKw(s string) bool {
	if p.isKw(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return &Error{p.cur().Pos, fmt.Sprintf("expected %q, found %s", s, p.cur())}
	}
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{p.cur().Pos, fmt.Sprintf(format, args...)}
}

// freshQual returns a fresh inference variable inside function bodies and
// Public at top level (the paper's convention: unannotated top-level
// definitions are public; locals are inferred).
func (p *parser) freshQual() types.Qual {
	if p.inFunc {
		return p.gen.Fresh()
	}
	return types.Public
}

// ---- Top level ----

func (p *parser) file(f *File) error {
	for p.cur().Kind != TokEOF {
		if p.isKw("struct") || p.isKw("union") {
			// Could be a tag definition `struct s { ... };` or a
			// declaration using the tag. Peek: kw ident '{'.
			if p.peek().Kind == TokIdent {
				save := p.pos
				kw := p.advance().Text
				tag := p.advance().Text
				if p.isPunct("{") {
					if err := p.structDef(kw, tag); err != nil {
						return err
					}
					if err := p.expectPunct(";"); err != nil {
						return err
					}
					continue
				}
				p.pos = save
			}
		}
		if err := p.topDecl(f); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) structDef(kw, tag string) error {
	t := &types.Type{Name: tag, Qual: types.Public}
	if kw == "struct" {
		t.Kind = types.Struct
	} else {
		t.Kind = types.Union
	}
	// Register before parsing fields so self-referential pointers work.
	p.structs[kw+" "+tag] = t
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.eatPunct("}") {
		base, err := p.declSpec()
		if err != nil {
			return err
		}
		for {
			name, ty, err := p.declarator(base)
			if err != nil {
				return err
			}
			if name == "" {
				return p.errf("field name expected")
			}
			t.Fields = append(t.Fields, types.Field{Name: name, Type: ty})
			if !p.eatPunct(",") {
				break
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	t.Layout()
	return nil
}

func (p *parser) topDecl(f *File) error {
	isExtern := p.eatKw("extern")
	isStatic := false
	for p.eatKw("static") || p.eatKw("const") || p.eatKw("volatile") {
		isStatic = true
	}
	base, err := p.declSpec()
	if err != nil {
		return err
	}
	if p.eatPunct(";") {
		return nil // bare struct declaration already handled
	}
	first := true
	for {
		pos := p.cur().Pos
		name, ty, err := p.declaratorFn(base)
		if err != nil {
			return err
		}
		if name == "" {
			return p.errf("declarator name expected")
		}
		if ty.Kind == types.Func {
			fd := &FuncDecl{
				Pos: pos, Name: name, Ret: ty.Sig.Ret,
				Variadic: ty.Sig.Variadic, Extern: isExtern,
			}
			for i, pt := range ty.Sig.Params {
				pname := ""
				if i < len(p.paramNames) {
					pname = p.paramNames[i]
				}
				fd.Params = append(fd.Params, Param{Name: pname, Type: pt, Pos: pos})
			}
			if first && p.isPunct("{") {
				if isExtern {
					return p.errf("extern function %s cannot have a body", name)
				}
				p.inFunc = true
				body, err := p.block()
				p.inFunc = false
				if err != nil {
					return err
				}
				fd.Body = body
				f.Funcs = append(f.Funcs, fd)
				return nil
			}
			f.Funcs = append(f.Funcs, fd)
		} else {
			vd := &VarDecl{Pos: pos, Name: name, Type: ty, Static: isStatic}
			if p.eatPunct("=") {
				if err := p.initializer(vd); err != nil {
					return err
				}
			}
			f.Globals = append(f.Globals, vd)
		}
		first = false
		if !p.eatPunct(",") {
			break
		}
	}
	return p.expectPunct(";")
}

func (p *parser) initializer(vd *VarDecl) error {
	if p.isPunct("{") {
		p.advance()
		for !p.eatPunct("}") {
			e, err := p.assignExpr()
			if err != nil {
				return err
			}
			vd.Inits = append(vd.Inits, e)
			if !p.eatPunct(",") {
				if err := p.expectPunct("}"); err != nil {
					return err
				}
				break
			}
		}
		return nil
	}
	if p.cur().Kind == TokStr && vd.Type.Kind == types.Array {
		s := p.advance().Str
		vd.StrVal = &s
		return nil
	}
	e, err := p.assignExpr()
	if err != nil {
		return err
	}
	vd.Init = e
	return nil
}

// ---- Types ----

// isTypeStart reports whether the current token begins a type name.
func (p *parser) isTypeStart() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "char", "short", "int", "long", "double", "float",
		"unsigned", "signed", "struct", "union", "private", "const":
		return true
	}
	return false
}

// declSpec parses [private] [const] base-type.
func (p *parser) declSpec() (*types.Type, error) {
	qual := p.freshQual()
	hasPrivate := false
	for {
		if p.eatKw("private") {
			hasPrivate = true
			continue
		}
		if p.eatKw("const") || p.eatKw("volatile") {
			continue
		}
		break
	}
	if hasPrivate {
		qual = types.Private
	}
	unsigned := false
	if p.eatKw("unsigned") {
		unsigned = true
	} else if p.eatKw("signed") {
		unsigned = false
	}
	t := p.cur()
	if t.Kind != TokKeyword {
		if unsigned {
			return types.MakeInt(4, false, qual), nil // bare `unsigned`
		}
		return nil, p.errf("type name expected, found %s", t)
	}
	switch t.Text {
	case "void":
		p.advance()
		if hasPrivate {
			// `private void` exists only as a pointee (private void *p):
			// carry the qualifier so a private pointer erased to void*
			// stays deep-compatible with private pointees instead of
			// silently reverting to a public pointee (which made every
			// `private void *` parameter reject private-pointer
			// arguments in taint inference).
			return &types.Type{Kind: types.Void, Qual: types.Private}, nil
		}
		return types.MakeVoid(), nil
	case "char":
		p.advance()
		return types.MakeInt(1, !unsigned, qual), nil
	case "short":
		p.advance()
		p.eatKw("int")
		return types.MakeInt(2, !unsigned, qual), nil
	case "int":
		p.advance()
		return types.MakeInt(4, !unsigned, qual), nil
	case "long":
		p.advance()
		p.eatKw("long")
		p.eatKw("int")
		return types.MakeInt(8, !unsigned, qual), nil
	case "double", "float":
		p.advance()
		return types.MakeFloat(qual), nil
	case "struct", "union":
		kw := p.advance().Text
		if p.cur().Kind != TokIdent {
			return nil, p.errf("struct tag expected")
		}
		tag := p.advance().Text
		st, ok := p.structs[kw+" "+tag]
		if !ok {
			// Forward reference: register an incomplete record.
			st = &types.Type{Name: tag, Qual: types.Public}
			if kw == "struct" {
				st.Kind = types.Struct
			} else {
				st.Kind = types.Union
			}
			p.structs[kw+" "+tag] = st
		}
		c := st.Clone()
		c.Qual = qual
		return c, nil
	}
	if unsigned {
		return types.MakeInt(4, false, qual), nil
	}
	return nil, p.errf("type name expected, found %s", t)
}

// paramNames records the parameter names of the most recently parsed
// function declarator (C declarators carry names out-of-band).
var _ = 0

// declarator parses pointers and a direct declarator, returning the
// declared name (possibly empty for abstract declarators) and the full type.
func (p *parser) declarator(base *types.Type) (string, *types.Type, error) {
	name, ty, err := p.declaratorFn(base)
	return name, ty, err
}

func (p *parser) declaratorFn(base *types.Type) (string, *types.Type, error) {
	// Pointers: each '*' may be followed by `private` qualifying the
	// pointer itself, or `const` (ignored).
	for p.eatPunct("*") {
		q := p.freshQual()
		for {
			if p.eatKw("private") {
				q = types.Private
				continue
			}
			if p.eatKw("const") || p.eatKw("volatile") {
				continue
			}
			break
		}
		base = types.MakePtr(base, q)
	}
	return p.directDeclarator(base)
}

func (p *parser) directDeclarator(base *types.Type) (string, *types.Type, error) {
	var name string
	var innerStart, innerEnd int = -1, -1

	if p.isPunct("(") && p.declaratorFollows() {
		// Parenthesized inner declarator: skip its tokens now, apply later.
		p.advance()
		depth := 1
		innerStart = p.pos
		for depth > 0 {
			if p.cur().Kind == TokEOF {
				return "", nil, p.errf("unterminated declarator")
			}
			if p.isPunct("(") {
				depth++
			} else if p.isPunct(")") {
				depth--
				if depth == 0 {
					break
				}
			}
			p.advance()
		}
		innerEnd = p.pos
		p.advance() // ')'
	} else if p.cur().Kind == TokIdent {
		name = p.advance().Text
	}

	ty := base
	// Suffixes, applied right-to-left onto base.
	type suffix struct {
		isArr    bool
		n        int
		params   []*types.Type
		pnames   []string
		variadic bool
	}
	var suffixes []suffix
	for {
		if p.eatPunct("[") {
			n := 0
			if !p.isPunct("]") {
				e, err := p.condExpr()
				if err != nil {
					return "", nil, err
				}
				v, ok := foldConst(e)
				if !ok {
					return "", nil, p.errf("array length must be a constant expression")
				}
				n = int(v)
			}
			if err := p.expectPunct("]"); err != nil {
				return "", nil, err
			}
			suffixes = append(suffixes, suffix{isArr: true, n: n})
			continue
		}
		if p.isPunct("(") {
			p.advance()
			var params []*types.Type
			var pnames []string
			variadic := false
			if p.isKw("void") && p.peek().Kind == TokPunct && p.peek().Text == ")" {
				p.advance()
			}
			for !p.isPunct(")") {
				if p.eatPunct("...") {
					variadic = true
					break
				}
				pb, err := p.declSpec()
				if err != nil {
					return "", nil, err
				}
				pn, pt, err := p.declaratorFn(pb)
				if err != nil {
					return "", nil, err
				}
				pt = types.Decay(pt) // array params decay
				params = append(params, pt)
				pnames = append(pnames, pn)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return "", nil, err
			}
			suffixes = append(suffixes, suffix{params: params, pnames: pnames, variadic: variadic})
			continue
		}
		break
	}
	for i := len(suffixes) - 1; i >= 0; i-- {
		s := suffixes[i]
		if s.isArr {
			ty = types.MakeArray(ty, s.n)
		} else {
			ty = types.MakeFunc(&types.FuncSig{Params: s.params, Ret: ty, Variadic: s.variadic})
			p.paramNames = s.pnames
		}
	}

	if innerStart >= 0 {
		// Re-parse the inner declarator with the constructed type as base.
		sub := &parser{toks: append(append([]Token{}, p.toks[innerStart:innerEnd]...),
			Token{Kind: TokEOF}), structs: p.structs, gen: p.gen, inFunc: p.inFunc}
		n2, t2, err := sub.declaratorFn(ty)
		if err != nil {
			return "", nil, err
		}
		if sub.paramNames != nil {
			p.paramNames = sub.paramNames
		}
		return n2, t2, nil
	}
	return name, ty, nil
}

// paramNames side-channel (see directDeclarator).
func (p *parser) declaratorFollows() bool {
	t := p.peek()
	if t.Kind == TokPunct && t.Text == "*" {
		return true
	}
	// `(ident)` only counts as a declarator if the ident is not a type
	// start — we have no typedefs, so a lone ident inside parens is a
	// declarator name only when followed by tokens that continue a
	// declarator. We keep it simple: '(' ident ')' is a declarator.
	if t.Kind == TokIdent {
		if p.pos+2 < len(p.toks) {
			t2 := p.toks[p.pos+2]
			if t2.Kind == TokPunct && (t2.Text == ")" || t2.Text == "[" || t2.Text == "(") {
				return true
			}
		}
	}
	return false
}

// typeName parses a full type name (for casts and sizeof).
func (p *parser) typeName() (*types.Type, error) {
	base, err := p.declSpec()
	if err != nil {
		return nil, err
	}
	name, ty, err := p.declaratorFn(base)
	if err != nil {
		return nil, err
	}
	if name != "" {
		return nil, p.errf("unexpected name %q in type", name)
	}
	return ty, nil
}

// ---- Statements ----

func (p *parser) block() (*Block, error) {
	pos := p.cur().Pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for !p.eatPunct("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	pos := p.cur().Pos
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.eatPunct(";"):
		return &Empty{pos}, nil
	case p.eatKw("if"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.eatKw("else") {
			if els, err = p.stmt(); err != nil {
				return nil, err
			}
		}
		return &If{pos, cond, then, els}, nil
	case p.eatKw("while"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{pos, cond, body}, nil
	case p.eatKw("do"):
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if !p.eatKw("while") {
			return nil, p.errf("expected while after do body")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &DoWhile{pos, body, cond}, nil
	case p.eatKw("for"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.eatPunct(";") {
			if p.isTypeStart() {
				ds, err := p.declStmt()
				if err != nil {
					return nil, err
				}
				init = ds
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				init = &ExprStmt{pos, e}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
			}
		}
		var cond Expr
		if !p.isPunct(";") {
			var err error
			if cond, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		var post Expr
		if !p.isPunct(")") {
			var err error
			if post, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &For{pos, init, cond, post, body}, nil
	case p.eatKw("return"):
		var x Expr
		if !p.isPunct(";") {
			var err error
			if x, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Return{pos, x}, nil
	case p.eatKw("break"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Break{pos}, nil
	case p.eatKw("continue"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Continue{pos}, nil
	}
	if p.isTypeStart() {
		return p.declStmt()
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{pos, e}, nil
}

// declStmt parses a local declaration list including the trailing ';'.
func (p *parser) declStmt() (*DeclStmt, error) {
	pos := p.cur().Pos
	base, err := p.declSpec()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{Pos: pos}
	for {
		dpos := p.cur().Pos
		name, ty, err := p.declaratorFn(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("variable name expected")
		}
		vd := &VarDecl{Pos: dpos, Name: name, Type: ty}
		if p.eatPunct("=") {
			if err := p.initializer(vd); err != nil {
				return nil, err
			}
		}
		ds.Decls = append(ds.Decls, vd)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return ds, nil
}

// ---- Expressions ----

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		var op string
		switch t.Text {
		case "=":
			op = ""
		case "+=":
			op = "+"
		case "-=":
			op = "-"
		case "*=":
			op = "*"
		case "/=":
			op = "/"
		case "%=":
			op = "%"
		case "&=":
			op = "&"
		case "|=":
			op = "|"
		case "^=":
			op = "^"
		case "<<=":
			op = "<<"
		case ">>=":
			op = ">>"
		default:
			return lhs, nil
		}
		pos := p.advance().Pos
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{pos, op, lhs, rhs}, nil
	}
	return lhs, nil
}

func (p *parser) condExpr() (Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") {
		pos := p.advance().Pos
		t, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		f, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{pos, c, t, f}, nil
	}
	return c, nil
}

// binary operator precedence (higher binds tighter).
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.advance()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{op.Pos, op.Text, lhs, rhs}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	pos := t.Pos
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&", "+":
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			if t.Text == "+" {
				return x, nil
			}
			return &Unary{pos, t.Text, x, false}, nil
		case "++", "--":
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{pos, t.Text, x, false}, nil
		case "(":
			// Cast or parenthesized expression.
			save := p.pos
			p.advance()
			if p.isTypeStart() {
				ty, err := p.typeName()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.unaryExpr()
				if err != nil {
					return nil, err
				}
				return &Cast{pos, ty, x}, nil
			}
			p.pos = save
		}
	}
	if p.eatKw("sizeof") {
		if p.isPunct("(") && func() bool {
			save := p.pos
			p.advance()
			ok := p.isTypeStart()
			p.pos = save
			return ok
		}() {
			p.advance()
			ty, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &SizeofType{pos, ty}, nil
		}
		return nil, p.errf("sizeof requires a parenthesized type name")
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case "(":
			pos := p.advance().Pos
			call := &Call{Pos: pos, Fn: x}
			for !p.isPunct(")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			x = call
		case "[":
			pos := p.advance().Pos
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{pos, x, i}
		case ".", "->":
			arrow := t.Text == "->"
			pos := p.advance().Pos
			if p.cur().Kind != TokIdent {
				return nil, p.errf("field name expected after %q", t.Text)
			}
			name := p.advance().Text
			x = &Member{pos, x, name, arrow}
		case "++", "--":
			pos := p.advance().Pos
			x = &Unary{pos, t.Text, x, true}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.advance()
		return &IntLit{t.Pos, t.Int}, nil
	case TokFloat:
		p.advance()
		return &FloatLit{t.Pos, t.Flt}, nil
	case TokStr:
		p.advance()
		return &StrLit{t.Pos, t.Str}, nil
	case TokIdent:
		if t.Text == "NULL" {
			p.advance()
			return &IntLit{t.Pos, 0}, nil
		}
		// Builtins.
		if t.Text == "__va_start" {
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &VaStart{t.Pos}, nil
		}
		if t.Text == "__va_arg" {
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			ap, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			ty, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &VaArg{t.Pos, ap, ty}, nil
		}
		p.advance()
		return &Ident{t.Pos, t.Text}, nil
	case TokKeyword:
		if t.Text == "NULL" {
			p.advance()
			return &IntLit{t.Pos, 0}, nil
		}
	case TokPunct:
		if t.Text == "(" {
			p.advance()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf("expression expected, found %s", t)
}

// foldConst evaluates constant integer expressions (for array lengths and
// global initializers).
func foldConst(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, true
	case *SizeofType:
		return int64(x.Type.SizeOf()), true
	case *Unary:
		v, ok := foldConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		a, ok1 := foldConst(x.X)
		b, ok2 := foldConst(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case "%":
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case "<<":
			return a << uint(b&63), true
		case ">>":
			return a >> uint(b&63), true
		case "&":
			return a & b, true
		case "|":
			return a | b, true
		case "^":
			return a ^ b, true
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			var r bool
			switch x.Op {
			case "==":
				r = a == b
			case "!=":
				r = a != b
			case "<":
				r = a < b
			case "<=":
				r = a <= b
			case ">":
				r = a > b
			case ">=":
				r = a >= b
			case "&&":
				r = a != 0 && b != 0
			case "||":
				r = a != 0 || b != 0
			}
			if r {
				return 1, true
			}
			return 0, true
		}
	case *Cast:
		return foldConst(x.X)
	}
	return 0, false
}

// FoldConst exposes constant folding for other packages (irgen).
func FoldConst(e Expr) (int64, bool) { return foldConst(e) }
