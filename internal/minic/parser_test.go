package minic

import (
	"strings"
	"testing"

	"confllvm/internal/types"
)

func parse(t *testing.T, src string) *File {
	t.Helper()
	gen := &QualGen{}
	f, err := Parse("t.c", src, nil, gen)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	gen := &QualGen{}
	_, err := Parse("t.c", src, nil, gen)
	if err == nil {
		t.Fatalf("expected a parse error")
	}
	return err
}

func TestDeclaratorShapes(t *testing.T) {
	f := parse(t, `
int a;
int *b;
int **c;
int d[10];
int *e[4];
int (*g)[4];
int (*h)(int, char*);
int (*tbl[3])(int);
private char *p;
char * private q;
`)
	byName := map[string]*types.Type{}
	for _, g := range f.Globals {
		byName[g.Name] = g.Type
	}
	checks := []struct {
		name string
		want string
	}{
		{"a", "int32"},
		{"b", "int32*"},
		{"c", "int32**"},
		{"d", "int32[10]"},
		{"e", "int32*[4]"},
		{"g", "int32[4]*"},
		{"h", "fn(int32, int8*) int32*"},
		{"tbl", "fn(int32) int32*[3]"},
		{"p", "private int8*"},
		{"q", "private int8*"}, // qualifier position differs, meaning differs
	}
	for _, c := range checks {
		got := byName[c.name]
		if got == nil {
			t.Errorf("%s: missing", c.name)
			continue
		}
		if c.name == "q" {
			// `char * private q`: the POINTER is private, pointing to
			// public char.
			if got.Kind != types.Ptr || got.Qual != types.Private || got.Elem.Qual != types.Public {
				t.Errorf("q: got %s, want private pointer to public char", got)
			}
			continue
		}
		if got.String() != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got, c.want)
		}
	}
	// p: public pointer to private char.
	p := byName["p"]
	if p.Qual != types.Public || p.Elem.Qual != types.Private {
		t.Errorf("p: got %s, want public pointer to private char", p)
	}
}

func TestStructLayoutAndUnions(t *testing.T) {
	f := parse(t, `
struct s { char a; int b; char c; long d; };
union u { int i; long l; char buf[12]; };
struct s g;
union u v;
`)
	s := f.Structs["struct s"]
	if s.SizeOf() != 24 {
		t.Errorf("struct size = %d, want 24", s.SizeOf())
	}
	bTy, off := s.FieldType("b")
	if bTy == nil || off != 4 {
		t.Errorf("field b at %d, want 4", off)
	}
	_, doff := s.FieldType("d")
	if doff != 16 {
		t.Errorf("field d at %d, want 16", doff)
	}
	u := f.Structs["union u"]
	if u.SizeOf() != 16 { // 12 rounded to alignment 8
		t.Errorf("union size = %d, want 16", u.SizeOf())
	}
}

func TestMacros(t *testing.T) {
	f := parse(t, `
#define N 16
#define TWO_N (N * 2)
int arr[TWO_N];
`)
	if f.Globals[0].Type.Len != 32 {
		t.Errorf("macro expansion: len = %d, want 32", f.Globals[0].Type.Len)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	// 2 + 3 * 4 == 14, (2+3)*4 == 20, shifts, ternary, logicals.
	cases := map[string]int64{
		"2 + 3 * 4":        14,
		"(2 + 3) * 4":      20,
		"1 << 3 | 1":       9,
		"10 - 4 - 3":       3,
		"7 & 3 | 8":        11,
		"~0 & 15":          15,
		"1 + 2 == 3":       1,
		"4 / 2 / 2":        1,
		"5 % 3":            2,
		"-3 * -2":          6,
		"(1 << 4) >> 2":    4,
		"sizeof(long) * 2": 16,
	}
	for expr, want := range cases {
		f := parse(t, "long x = "+expr+";")
		got, ok := FoldConst(f.Globals[0].Init)
		if f.Globals[0].Init == nil {
			// folded into Inits? scalar init is Init
			t.Fatalf("%s: no init", expr)
		}
		if !ok || got != want {
			t.Errorf("%s = %d (ok=%v), want %d", expr, got, ok, want)
		}
	}
}

func TestStringAndCharEscapes(t *testing.T) {
	f := parse(t, `char s[8] = "a\n\x41"; int c = '\t';`)
	if *f.Globals[0].StrVal != "a\nA" {
		t.Errorf("string escape: %q", *f.Globals[0].StrVal)
	}
	v, _ := FoldConst(f.Globals[1].Init)
	if v != '\t' {
		t.Errorf("char escape: %d", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( {",
		"int x = ;",
		"struct s { int a };", // missing ; after field? actually valid... use a real error:
		"int a[3 = 4];",
		"void f() { if x) {} }",
		"void f() { return 1 }",
		"#define\nint x;",
		`char *s = "unterminated;`,
	}
	for _, src := range cases {
		gen := &QualGen{}
		if _, err := Parse("e.c", src, nil, gen); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestVarargsParse(t *testing.T) {
	f := parse(t, `int p(char *fmt, ...) { return 0; }`)
	if !f.Funcs[0].Variadic {
		t.Error("variadic flag lost")
	}
}

func TestPositionsInErrors(t *testing.T) {
	err := parseErr(t, "int x;\nint y = @;\n")
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}
