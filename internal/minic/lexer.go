// Package minic implements the C-subset frontend that ConfLLVM compiles:
// a lexer (with a minimal #define preprocessor), an AST, and a recursive-
// descent parser supporting the features the paper's applications exercise —
// pointers, casts, arrays, structs/unions, function pointers, varargs and
// the `private` type qualifier.
package minic

import (
	"fmt"
	"strings"
)

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// TokKind classifies tokens.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokStr
	TokPunct
)

// Token is a lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier, keyword or punctuation text
	Int  int64  // TokInt value
	Flt  float64
	Str  string // TokStr decoded value
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokFloat:
		return fmt.Sprintf("%g", t.Flt)
	case TokStr:
		return fmt.Sprintf("%q", t.Str)
	}
	return t.Text
}

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"double": true, "float": true, "unsigned": true, "signed": true,
	"struct": true, "union": true, "if": true, "else": true, "while": true,
	"for": true, "do": true, "return": true, "break": true, "continue": true,
	"sizeof": true, "private": true, "extern": true, "static": true,
	"const": true, "switch": true, "case": true, "default": true,
	"goto": true, "typedef": true, "volatile": true, "NULL": false,
}

// Error is a diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type lexer struct {
	src    string
	file   string
	off    int
	line   int
	col    int
	tokens []Token
}

// Lex tokenizes src, applying the single-pass #define preprocessor.
// Object-like macros only; macro bodies are token sequences substituted at
// use sites (one level, which covers the constant-style macros the
// workloads use, e.g. `#define SIZE 512`).
func Lex(file, src string) ([]Token, error) {
	l := &lexer{src: src, file: file, line: 1, col: 1}
	macros := map[string][]Token{}
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == TokPunct && tok.Text == "#" {
			// Directive: only #define NAME tokens... (to end of line).
			dline := tok.Pos.Line
			name, err2 := l.next()
			if err2 != nil {
				return nil, err2
			}
			if name.Kind != TokIdent || name.Text != "define" || name.Pos.Line != dline {
				return nil, &Error{tok.Pos, "unsupported preprocessor directive"}
			}
			mname, err2 := l.next()
			if err2 != nil {
				return nil, err2
			}
			if mname.Kind != TokIdent && mname.Kind != TokKeyword {
				return nil, &Error{mname.Pos, "macro name expected after #define"}
			}
			var body []Token
			for {
				save := *l
				t, err3 := l.next()
				if err3 != nil {
					return nil, err3
				}
				if t.Kind == TokEOF || t.Pos.Line != dline {
					*l = save // put back
					break
				}
				body = append(body, t)
			}
			macros[mname.Text] = body
			continue
		}
		if tok.Kind == TokIdent {
			if _, ok := macros[tok.Text]; ok {
				out = expandMacro(out, tok, macros, map[string]bool{})
				continue
			}
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

// expandMacro appends tok's macro body, rescanning it for further macro
// uses (as the C preprocessor does), with self-reference protection.
func expandMacro(out []Token, tok Token, macros map[string][]Token, active map[string]bool) []Token {
	active[tok.Text] = true
	defer delete(active, tok.Text)
	for _, bt := range macros[tok.Text] {
		bt.Pos = tok.Pos
		if bt.Kind == TokIdent && !active[bt.Text] {
			if _, ok := macros[bt.Text]; ok {
				out = expandMacro(out, bt, macros, active)
				continue
			}
		}
		out = append(out, bt)
	}
	return out
}

func (l *lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekByte2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return &Error{start, "unterminated block comment"}
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "[", "]", "{", "}", ",", ";", ":", "?", ".", "#",
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if keywords[text] {
			return Token{Kind: TokKeyword, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case isDigit(c) || (c == '.' && isDigit(l.peekByte2())):
		return l.number(pos)

	case c == '\'':
		l.advance()
		val, err := l.escapeChar(pos)
		if err != nil {
			return Token{}, err
		}
		if l.off >= len(l.src) || l.peekByte() != '\'' {
			return Token{}, &Error{pos, "unterminated character literal"}
		}
		l.advance()
		return Token{Kind: TokInt, Int: int64(val), Pos: pos}, nil

	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, &Error{pos, "unterminated string literal"}
			}
			if l.peekByte() == '"' {
				l.advance()
				break
			}
			ch, err := l.escapeChar(pos)
			if err != nil {
				return Token{}, err
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokStr, Str: b.String(), Pos: pos}, nil
	}

	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.off:], p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	return Token{}, &Error{pos, fmt.Sprintf("unexpected character %q", c)}
}

func (l *lexer) escapeChar(pos Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, &Error{pos, "unterminated literal"}
	}
	c := l.advance()
	if c != '\\' {
		return c, nil
	}
	if l.off >= len(l.src) {
		return 0, &Error{pos, "unterminated escape"}
	}
	e := l.advance()
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case 'x':
		v := 0
		for i := 0; i < 2 && l.off < len(l.src); i++ {
			h := l.peekByte()
			switch {
			case h >= '0' && h <= '9':
				v = v*16 + int(h-'0')
			case h >= 'a' && h <= 'f':
				v = v*16 + int(h-'a'+10)
			case h >= 'A' && h <= 'F':
				v = v*16 + int(h-'A'+10)
			default:
				return byte(v), nil
			}
			l.advance()
		}
		return byte(v), nil
	}
	return 0, &Error{pos, fmt.Sprintf("unknown escape \\%c", e)}
}

func (l *lexer) number(pos Pos) (Token, error) {
	start := l.off
	if l.peekByte() == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
		l.advance()
		l.advance()
		v := int64(0)
		n := 0
		for l.off < len(l.src) {
			c := l.peekByte()
			var d int64
			switch {
			case c >= '0' && c <= '9':
				d = int64(c - '0')
			case c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			default:
				if n == 0 {
					return Token{}, &Error{pos, "malformed hex literal"}
				}
				return Token{Kind: TokInt, Int: v, Pos: pos}, nil
			}
			v = v*16 + d
			n++
			l.advance()
		}
		return Token{Kind: TokInt, Int: v, Pos: pos}, nil
	}
	isFloat := false
	for l.off < len(l.src) {
		c := l.peekByte()
		if isDigit(c) {
			l.advance()
		} else if c == '.' && !isFloat {
			isFloat = true
			l.advance()
		} else if (c == 'e' || c == 'E') && l.off > start {
			isFloat = true
			l.advance()
			if l.off < len(l.src) && (l.peekByte() == '+' || l.peekByte() == '-') {
				l.advance()
			}
		} else {
			break
		}
	}
	text := l.src[start:l.off]
	// Swallow integer suffixes.
	for l.off < len(l.src) {
		c := l.peekByte()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' || c == 'f' || c == 'F' {
			if c == 'f' || c == 'F' {
				isFloat = true
			}
			l.advance()
		} else {
			break
		}
	}
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return Token{}, &Error{pos, "malformed float literal " + text}
		}
		return Token{Kind: TokFloat, Flt: f, Pos: pos}, nil
	}
	var v int64
	if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
		return Token{}, &Error{pos, "malformed integer literal " + text}
	}
	return Token{Kind: TokInt, Int: v, Pos: pos}, nil
}
