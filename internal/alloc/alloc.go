// Package alloc implements the region-confined heap allocators: every
// allocation is carved out of one region (public, private, or T), so heap
// objects can never straddle a confidentiality boundary — the property the
// paper obtains by modifying dlmalloc (§6).
//
// Two policies are provided so the Base-vs-BaseOA comparison of §7.1 is
// reproducible: Bump models a naive system allocator that never reuses
// freed memory (larger footprint, worse locality), FreeList is the
// dlmalloc-like first-fit allocator with coalescing that ConfLLVM ships.
package alloc

import (
	"fmt"
	"sort"
)

// Mode selects the allocation policy.
type Mode uint8

const (
	// Bump never reuses freed memory.
	Bump Mode = iota
	// FreeList is first-fit with free-block coalescing.
	FreeList
)

// Allocator hands out addresses from a fixed region window. Metadata lives
// host-side; the region's bytes are entirely the program's.
type Allocator struct {
	base, end uint64
	mode      Mode
	cursor    uint64
	free      []span // sorted by addr
	sizes     map[uint64]uint64
}

type span struct {
	addr, size uint64
}

const chunkAlign = 16

// New creates an allocator over [base, base+size).
func New(base, size uint64, mode Mode) *Allocator {
	return &Allocator{
		base: base, end: base + size, mode: mode, cursor: base,
		sizes: map[uint64]uint64{},
	}
}

// Alloc returns the address of a fresh chunk of at least size bytes.
func (a *Allocator) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	size = (size + chunkAlign - 1) &^ (chunkAlign - 1)
	if a.mode == FreeList {
		for i, s := range a.free {
			if s.size >= size {
				addr := s.addr
				if s.size == size {
					a.free = append(a.free[:i], a.free[i+1:]...)
				} else {
					a.free[i] = span{s.addr + size, s.size - size}
				}
				a.sizes[addr] = size
				return addr, nil
			}
		}
	}
	if a.cursor+size > a.end {
		return 0, fmt.Errorf("alloc: out of region memory (%d bytes requested)", size)
	}
	addr := a.cursor
	a.cursor += size
	a.sizes[addr] = size
	return addr, nil
}

// Free returns a chunk to the allocator. Freeing an address that was not
// allocated is an error (the trusted wrapper turns it into a fault).
func (a *Allocator) Free(addr uint64) error {
	size, ok := a.sizes[addr]
	if !ok {
		return fmt.Errorf("alloc: free of unallocated address %#x", addr)
	}
	delete(a.sizes, addr)
	if a.mode == Bump {
		return nil
	}
	a.free = append(a.free, span{addr, size})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].addr < a.free[j].addr })
	// Coalesce adjacent spans.
	out := a.free[:0]
	for _, s := range a.free {
		if n := len(out); n > 0 && out[n-1].addr+out[n-1].size == s.addr {
			out[n-1].size += s.size
		} else {
			out = append(out, s)
		}
	}
	a.free = out
	return nil
}

// InUse returns the number of live chunks (for leak tests).
func (a *Allocator) InUse() int { return len(a.sizes) }

// HighWater returns the highest address ever handed out.
func (a *Allocator) HighWater() uint64 { return a.cursor }

// Contains reports whether addr lies in this allocator's region window.
func (a *Allocator) Contains(addr uint64) bool { return addr >= a.base && addr < a.end }
