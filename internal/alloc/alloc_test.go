package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestNoOverlap: live chunks never overlap and stay in the region,
// whatever the interleaving of Alloc and Free (testing/quick drives the
// schedule).
func TestNoOverlap(t *testing.T) {
	prop := func(seed int64, freeList bool) bool {
		rng := rand.New(rand.NewSource(seed))
		mode := Bump
		if freeList {
			mode = FreeList
		}
		a := New(0x1000, 1<<20, mode)
		type chunk struct{ addr, size uint64 }
		var live []chunk
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				if err := a.Free(live[k].addr); err != nil {
					t.Logf("free: %v", err)
					return false
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			size := uint64(rng.Intn(512) + 1)
			addr, err := a.Alloc(size)
			if err != nil {
				continue // region exhausted under Bump: fine
			}
			if !a.Contains(addr) || !a.Contains(addr+size-1) {
				t.Logf("chunk escapes region: %#x+%d", addr, size)
				return false
			}
			for _, c := range live {
				if addr < c.addr+c.size && c.addr < addr+size {
					t.Logf("overlap: [%#x,+%d) vs [%#x,+%d)", addr, size, c.addr, c.size)
					return false
				}
			}
			live = append(live, chunk{addr, size})
		}
		return a.InUse() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListReuse(t *testing.T) {
	a := New(0, 4096, FreeList)
	p1, _ := a.Alloc(128)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, _ := a.Alloc(64)
	if p2 != p1 {
		t.Errorf("free list should reuse the freed block: got %#x, want %#x", p2, p1)
	}
}

func TestBumpNeverReuses(t *testing.T) {
	a := New(0, 4096, Bump)
	p1, _ := a.Alloc(128)
	a.Free(p1)
	p2, _ := a.Alloc(64)
	if p2 == p1 {
		t.Error("bump allocator must not reuse freed memory")
	}
}

func TestCoalescing(t *testing.T) {
	a := New(0, 4096, FreeList)
	p1, _ := a.Alloc(64)
	p2, _ := a.Alloc(64)
	p3, _ := a.Alloc(64)
	_ = p3
	a.Free(p1)
	a.Free(p2)
	// p1+p2 coalesce into 128 bytes: a 100-byte request must fit there.
	p4, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p4 != p1 {
		t.Errorf("coalesced block not reused: got %#x, want %#x", p4, p1)
	}
}

func TestDoubleFree(t *testing.T) {
	a := New(0, 4096, FreeList)
	p, _ := a.Alloc(16)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free must be rejected")
	}
	if err := a.Free(0x999); err == nil {
		t.Error("wild free must be rejected")
	}
}

func TestExhaustion(t *testing.T) {
	a := New(0, 256, Bump)
	if _, err := a.Alloc(512); err == nil {
		t.Error("oversized allocation must fail")
	}
	if _, err := a.Alloc(128); err != nil {
		t.Error("fitting allocation must succeed")
	}
}

func TestZeroSize(t *testing.T) {
	a := New(0, 4096, FreeList)
	p1, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := a.Alloc(0)
	if p1 == p2 {
		t.Error("zero-size allocations must still be distinct")
	}
}
