module confllvm

go 1.22
