// confrun loads a linked U image, binds the trusted runtime, and executes
// it on the emulated machine, reporting the observable channels and the
// cycle statistics.
//
// Usage:
//
//	confrun [-param n]... [-file name=content]... [-passwd user=pw]... prog.img
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"confllvm"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	var params, files, privFiles, passwds listFlag
	flag.Var(&params, "param", "append an integer scenario parameter (repeatable)")
	flag.Var(&files, "file", "add a public file as name=content (repeatable)")
	flag.Var(&privFiles, "privfile", "add a private file as name=content (repeatable)")
	flag.Var(&passwds, "passwd", "add a stored password as user=pw (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: confrun [flags] prog.img")
		os.Exit(2)
	}
	art, err := confllvm.LoadArtifactFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	w := confllvm.NewWorld()
	for _, p := range params {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			fatal(err)
		}
		w.Params = append(w.Params, v)
	}
	addKV := func(entries []string, m map[string][]byte) {
		for _, e := range entries {
			k, v, ok := strings.Cut(e, "=")
			if !ok {
				fatal(fmt.Errorf("bad entry %q, want name=value", e))
			}
			m[k] = []byte(v)
		}
	}
	addKV(files, w.Files)
	addKV(privFiles, w.PrivFiles)
	addKV(passwds, w.Passwords)

	res, err := confllvm.Run(art, w, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("variant:   %v\n", art.Variant)
	fmt.Printf("exit code: %d\n", res.ExitCode)
	if res.Fault != nil {
		fmt.Printf("FAULT:     %v\n", res.Fault)
	}
	fmt.Printf("cycles:    %d (wall %d)\n", res.Stats.Cycles, res.WallCycles)
	fmt.Printf("instrs:    %d  loads: %d  stores: %d  bnd-checks: %d (masked %d)  L1-misses: %d\n",
		res.Stats.Instrs, res.Stats.Loads, res.Stats.Stores,
		res.Stats.BndChecks, res.Stats.BndMasked, res.Stats.CacheMisses)
	for i, o := range res.Outputs {
		fmt.Printf("output[%d]: %d\n", i, o)
	}
	for i, pkt := range res.NetOut {
		fmt.Printf("net[%d]:    %q\n", i, clip(pkt))
	}
	if len(res.Log) > 0 {
		fmt.Printf("log:       %q\n", clip(res.Log))
	}
	if res.Fault != nil {
		os.Exit(1)
	}
}

func clip(b []byte) []byte {
	if len(b) > 80 {
		return append(append([]byte{}, b[:77]...), '.', '.', '.')
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confrun:", err)
	os.Exit(1)
}
