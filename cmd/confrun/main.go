// confrun loads a linked U image, binds the trusted runtime, and executes
// it on the emulated machine, reporting the observable channels and the
// cycle statistics.
//
// Usage:
//
//	confrun [-param n]... [-file name=content]... [-privfile name=content]...
//	        [-passwd user=pw]... [-stats] [-trace out.json] [-chrometrace out.json]
//	        [-profile out.folded] [-fuse on|off] [-threaded on|off] prog.img
//
// -fuse and -threaded are dispatch escape hatches mirroring confbench's:
// fusion folds hot instruction idioms into superinstruction slots
// (default on), threaded dispatch replaces the opcode switch with a
// per-slot handler table (default off). Both are pure performance
// switches — every simulated result and counter above is bit-identical
// in any combination.
//
// The observability flags surface the deterministic plane (internal/obs)
// for one run: -stats prints the full simulated counter set, -trace
// writes a span-tree JSON of every trusted-handler call under one "run"
// root (all timestamps simulated cycles), -chrometrace writes the same
// tree in Chrome trace-event format for chrome://tracing or Perfetto,
// and -profile enables the machine's cycle-attribution profiler and
// writes a folded-stack per-function profile whose cycle total equals
// the run's cycle counter exactly. All four are pure observation: the
// simulated execution is bit-identical with or without them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"confllvm"
	"confllvm/internal/bench"
	"confllvm/internal/machine"
	"confllvm/internal/obs"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	var params, files, privFiles, passwds listFlag
	flag.Var(&params, "param", "append an integer scenario parameter (repeatable)")
	flag.Var(&files, "file", "add a public file as name=content (repeatable)")
	flag.Var(&privFiles, "privfile", "add a private file as name=content (repeatable)")
	flag.Var(&passwds, "passwd", "add a stored password as user=pw (repeatable)")
	stats := flag.Bool("stats", false, "print the full simulated statistics")
	tracePath := flag.String("trace", "", "write a span-tree JSON trace of trusted-handler calls")
	chromePath := flag.String("chrometrace", "", "write the trace in Chrome trace-event format")
	profilePath := flag.String("profile", "", "write a folded-stack per-function cycle profile")
	fuseFlag := flag.String("fuse", "on", "superinstruction fusion: on|off")
	threadedFlag := flag.String("threaded", "off", "threaded per-slot handler dispatch: on|off")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: confrun [flags] prog.img")
		os.Exit(2)
	}
	art, err := confllvm.LoadArtifactFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	w := confllvm.NewWorld()
	for _, p := range params {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			fatal(err)
		}
		w.Params = append(w.Params, v)
	}
	addKV := func(entries []string, m map[string][]byte) {
		for _, e := range entries {
			k, v, ok := strings.Cut(e, "=")
			if !ok {
				fatal(fmt.Errorf("bad entry %q, want name=value", e))
			}
			m[k] = []byte(v)
		}
	}
	addKV(files, w.Files)
	addKV(privFiles, w.PrivFiles)
	addKV(passwds, w.Passwords)

	// Handler observations feed the trace exports. Spans are emitted as
	// handler-call records first and re-rooted under the "run" span after
	// the run, when the root's extent is known.
	type call struct {
		name       string
		start, end uint64
	}
	var calls []call
	if *tracePath != "" || *chromePath != "" {
		w.Observe = func(name string, start, end uint64) {
			calls = append(calls, call{name, start, end})
		}
	}
	onOff := func(name, val string) bool {
		switch val {
		case "on", "true", "1":
			return true
		case "off", "false", "0":
			return false
		default:
			fatal(fmt.Errorf("bad -%s %q (want on or off)", name, val))
			panic("unreachable")
		}
	}
	// Build an explicit machine config when any dispatch or profiling
	// flag departs from the defaults (nil means "library default").
	c := machine.DefaultConfig()
	c.Profile = *profilePath != ""
	c.Fuse = onOff("fuse", *fuseFlag)
	c.Threaded = onOff("threaded", *threadedFlag)
	var mconf *machine.Config
	if c != machine.DefaultConfig() {
		mconf = &c
	}

	res, err := confllvm.Run(art, w, mconf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("variant:   %v\n", art.Variant)
	fmt.Printf("exit code: %d\n", res.ExitCode)
	if res.Fault != nil {
		fmt.Printf("FAULT:     %v\n", res.Fault)
	}
	fmt.Printf("cycles:    %d (wall %d)\n", res.Stats.Cycles, res.WallCycles)
	fmt.Printf("instrs:    %d  loads: %d  stores: %d  bnd-checks: %d (masked %d)  L1-misses: %d\n",
		res.Stats.Instrs, res.Stats.Loads, res.Stats.Stores,
		res.Stats.BndChecks, res.Stats.BndMasked, res.Stats.CacheMisses)
	if *stats {
		fmt.Printf("trusted:   %d calls\n", res.Stats.TrustedCall)
		fmt.Printf("sim time:  %d ns at %.1f GHz (wall cycles / simulated clock)\n",
			res.WallCycles*1_000_000_000/bench.SimClockHz, float64(bench.SimClockHz)/1e9)
	}
	for i, o := range res.Outputs {
		fmt.Printf("output[%d]: %d\n", i, o)
	}
	for i, pkt := range res.NetOut {
		fmt.Printf("net[%d]:    %q\n", i, clip(pkt))
	}
	if len(res.Log) > 0 {
		fmt.Printf("log:       %q\n", clip(res.Log))
	}

	if *tracePath != "" || *chromePath != "" {
		tr := obs.NewTracer()
		root := tr.Span("run", 0, 0, res.Stats.Cycles)
		for _, c := range calls {
			tr.Span("T:"+c.name, root, c.start, c.end)
		}
		if err := tr.WellFormed(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if *tracePath != "" {
			data, err := tr.JSON()
			if err != nil {
				fatal(err)
			}
			writeFile(*tracePath, append(data, '\n'))
			fmt.Printf("trace:     %s (%d spans)\n", *tracePath, tr.Len())
		}
		if *chromePath != "" {
			data, err := tr.ChromeTrace(bench.SimClockHz / 1_000_000)
			if err != nil {
				fatal(err)
			}
			writeFile(*chromePath, append(data, '\n'))
			fmt.Printf("chrome:    %s (%d events)\n", *chromePath, tr.Len())
		}
	}
	if *profilePath != "" {
		prof := obs.FlattenProfile(res.Profile, art.Image)
		if got, want := prof.TotalCycles(), res.Stats.Cycles; got != want {
			fatal(fmt.Errorf("profile attributed %d cycles, run counted %d", got, want))
		}
		writeFile(*profilePath, []byte(prof.Folded()))
		fmt.Printf("profile:   %s (%d symbols, %d cycles)\n",
			*profilePath, len(prof.Top()), prof.TotalCycles())
	}
	if res.Fault != nil {
		os.Exit(1)
	}
}

func writeFile(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func clip(b []byte) []byte {
	if len(b) > 80 {
		return append(append([]byte{}, b[:77]...), '.', '.', '.')
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confrun:", err)
	os.Exit(1)
}
