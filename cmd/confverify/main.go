// confverify checks linked U images for the instrumentation that
// guarantees confidentiality, without trusting the compiler that produced
// them (§5.2). It is the standalone face of the same verifier the bench
// harness runs as its verify-before-load gate.
//
// Usage:
//
//	confverify [-strict] [-json] [-par N] [-bench] prog.img [more.img ...]
//
// Every argument is verified independently and reported on one line
// (path, verdict, and for rejections the code offset and reason), so the
// output greps and diffs cleanly in CI. With -json the same report is a
// JSON array on stdout.
//
// -par N checks each image's procedures on N workers; the verdict, the
// reported error and the counters are byte-identical to -par 1, so the
// flag only changes wall time. -bench adds per-image throughput (checked
// functions and instructions per host second) to the report; in text mode
// it is a trailing annotation, in JSON the funcs_per_sec / insts_per_sec
// fields.
//
// Exit status: 0 if every image is accepted, 1 if any is rejected or
// unreadable, 2 on usage errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"confllvm"
	"confllvm/internal/verify"
)

// result is one image's verdict, shaped for both report modes.
type result struct {
	File  string `json:"file"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Offset is the rejecting code offset when the verifier pinpointed
	// one (absent for load failures and whole-image rejections).
	Offset *int `json:"offset,omitempty"`
	// Throughput fields, set only with -bench on accepted images. Host
	// time — compare across runs, not across machines.
	Funcs       int     `json:"funcs,omitempty"`
	Insts       int     `json:"insts,omitempty"`
	FuncsPerSec float64 `json:"funcs_per_sec,omitempty"`
	InstsPerSec float64 `json:"insts_per_sec,omitempty"`
}

func main() {
	strict := flag.Bool("strict", false, "additionally reject branches on private data")
	jsonOut := flag.Bool("json", false, "report as a JSON array on stdout")
	par := flag.Int("par", 1, "worker goroutines per image (verdict is identical for any value)")
	bench := flag.Bool("bench", false, "report verification throughput (funcs/s, insts/s)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: confverify [-strict] [-json] [-par N] [-bench] prog.img [more.img ...]")
		fmt.Fprintln(os.Stderr, "exit status: 0 all images accepted, 1 any rejection or read failure, 2 usage error")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	opts := verify.Options{Strict: *strict, Parallel: *par}
	results := make([]result, 0, flag.NArg())
	failed := false
	for _, path := range flag.Args() {
		r := result{File: path, OK: true}
		start := time.Now()
		stats, err := confllvm.VerifyImageFileStats(path, opts)
		elapsed := time.Since(start)
		if err != nil {
			r.OK = false
			r.Error = err.Error()
			var verr *verify.Error
			if errors.As(err, &verr) {
				off := verr.Off
				r.Offset = &off
				r.Error = verr.Msg
			}
			failed = true
		} else if *bench {
			r.Funcs = stats.Funcs
			r.Insts = stats.Insts
			if sec := elapsed.Seconds(); sec > 0 {
				r.FuncsPerSec = float64(stats.Funcs) / sec
				r.InstsPerSec = float64(stats.Insts) / sec
			}
		}
		results = append(results, r)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "confverify:", err)
			os.Exit(2)
		}
	} else {
		for _, r := range results {
			switch {
			case r.OK && *bench:
				fmt.Printf("%s: OK (%d funcs, %d insts, %.0f funcs/s, %.0f insts/s)\n",
					r.File, r.Funcs, r.Insts, r.FuncsPerSec, r.InstsPerSec)
			case r.OK:
				fmt.Printf("%s: OK\n", r.File)
			case r.Offset != nil:
				fmt.Printf("%s: REJECTED: offset %#x: %s\n", r.File, *r.Offset, r.Error)
			default:
				fmt.Printf("%s: REJECTED: %s\n", r.File, r.Error)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
