// confverify checks linked U images for the instrumentation that
// guarantees confidentiality, without trusting the compiler that produced
// them (§5.2). It is the standalone face of the same verifier the bench
// harness runs as its verify-before-load gate.
//
// Usage:
//
//	confverify [-strict] [-json] prog.img [more.img ...]
//
// Every argument is verified independently and reported on one line
// (path, verdict, and for rejections the code offset and reason), so the
// output greps and diffs cleanly in CI. With -json the same report is a
// JSON array on stdout. Exit status: 0 if every image is accepted, 1 if
// any is rejected or unreadable, 2 on usage errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"confllvm"
	"confllvm/internal/verify"
)

// result is one image's verdict, shaped for both report modes.
type result struct {
	File  string `json:"file"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Offset is the rejecting code offset when the verifier pinpointed
	// one (absent for load failures and whole-image rejections).
	Offset *int `json:"offset,omitempty"`
}

func main() {
	strict := flag.Bool("strict", false, "additionally reject branches on private data")
	jsonOut := flag.Bool("json", false, "report as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: confverify [-strict] [-json] prog.img [more.img ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	results := make([]result, 0, flag.NArg())
	failed := false
	for _, path := range flag.Args() {
		r := result{File: path, OK: true}
		if err := confllvm.VerifyImageFile(path, *strict); err != nil {
			r.OK = false
			r.Error = err.Error()
			var verr *verify.Error
			if errors.As(err, &verr) {
				off := verr.Off
				r.Offset = &off
				r.Error = verr.Msg
			}
			failed = true
		}
		results = append(results, r)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "confverify:", err)
			os.Exit(2)
		}
	} else {
		for _, r := range results {
			switch {
			case r.OK:
				fmt.Printf("%s: OK\n", r.File)
			case r.Offset != nil:
				fmt.Printf("%s: REJECTED: offset %#x: %s\n", r.File, *r.Offset, r.Error)
			default:
				fmt.Printf("%s: REJECTED: %s\n", r.File, r.Error)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
