// confverify checks a linked U image for the instrumentation that
// guarantees confidentiality, without trusting the compiler that produced
// it (§5.2). Exit status 0 means the binary is accepted.
//
// Usage:
//
//	confverify [-strict] prog.img
package main

import (
	"flag"
	"fmt"
	"os"

	"confllvm"
)

func main() {
	strict := flag.Bool("strict", false, "additionally reject branches on private data")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: confverify [-strict] prog.img")
		os.Exit(2)
	}
	if err := confllvm.VerifyImageFile(flag.Arg(0), *strict); err != nil {
		fmt.Fprintln(os.Stderr, "confverify: REJECTED:", err)
		os.Exit(1)
	}
	fmt.Println("confverify: OK")
}
