// benchhistory appends one perf-trajectory row to BENCH_history.jsonl.
//
// Usage:
//
//	benchhistory [-bench benchrun.txt] [-interp BENCH_interp.json]
//	             [-faults BENCH_faults.json] [-verify BENCH_verify.json]
//	             [-cluster BENCH_cluster.json] [-latency BENCH_latency.json]
//	             [-out BENCH_history.jsonl] [-commit SHA]
//
// It reads artifacts the nightly CI job already produces — the
// `go test -bench BenchmarkRun` output, the `confbench -figure interp
// -json` report and (optionally) the `confbench -figure faults -json`
// report — and distills them into a single JSON line:
//
//	{"commit": ..., "date": ..., "benchrun_mips": ...., "interp_geomean": ...,
//	 "faults_avail_geomean": ...}
//
// benchrun_mips is the BenchmarkRun/superblock MIPS datapoint (raw
// dispatch throughput on straight-line ALU blocks under the default
// stack: chained superblocks with superinstruction fusion — the other
// BenchmarkRun lanes deliberately do not start with "superblock" so the
// prefix match below stays unambiguous); interp_geomean is
// the geometric mean, over all workloads in the interp sweep, of the
// superblock-vs-stepwise MIPS speedup (untimed cells are skipped, as in
// the confbench table); faults_avail_geomean is the geometric mean of
// the faults figure's availability percentages (zero-availability cells
// are skipped, like every other geomean in the repo — present only when
// -faults is given); verify_funcs_per_sec is the geometric mean of the
// verify figure's per-binary checking throughput (present only when
// -verify is given — it tracks the load gate's cost over time the same
// way interp_geomean tracks the interpreter's); cluster_reqs_per_sec is
// the geometric mean of the cluster figure's aggregate simulated req/s
// across the shard/skew grid (present only when -cluster is given — a
// deterministic quantity, so any drift is a real behavior change, not
// host noise); latency_p99_cycles is the geometric mean of the latency
// figure's p99 request latencies in simulated cycles (present only when
// -latency is given — also fully deterministic, tracking tail-latency
// regressions at the trusted boundary). -commit defaults to
// $GITHUB_SHA, then "local".
// Appending (not rewriting) keeps the file a grep-able trajectory; rows
// carry the commit so gaps and reruns are self-describing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"
)

// interpReport mirrors the subset of the confbench -json schema the
// history row needs.
type interpReport struct {
	GeneratedAt string `json:"generated_at"`
	Rows        []struct {
		Figure   string  `json:"figure"`
		Workload string  `json:"workload"`
		Variant  string  `json:"variant"`
		MIPS     float64 `json:"mips"`
	} `json:"rows"`
}

type historyRow struct {
	Commit        string  `json:"commit"`
	Date          string  `json:"date"`
	BenchRunMIPS  float64 `json:"benchrun_mips"`
	InterpGeomean float64 `json:"interp_geomean"`
	// FaultsAvailGeomean tracks the chaos figure: geometric mean of the
	// supervised-serving availability percentages across the fault-rate
	// sweep (0 when the faults report was not supplied).
	FaultsAvailGeomean float64 `json:"faults_avail_geomean,omitempty"`
	// VerifyFuncsPerSec tracks the verify figure: geometric mean of the
	// per-binary parallel checking throughput in functions per host second
	// (0 when the verify report was not supplied).
	VerifyFuncsPerSec float64 `json:"verify_funcs_per_sec,omitempty"`
	// ClusterReqsPerSec tracks the cluster figure: geometric mean of the
	// aggregate simulated req/s across the shard/skew grid (0 when the
	// cluster report was not supplied). Unlike the host-time columns this
	// is fully deterministic — drift means behavior changed.
	ClusterReqsPerSec float64 `json:"cluster_reqs_per_sec,omitempty"`
	// LatencyP99Cycles tracks the latency figure: geometric mean of the
	// per-row p99 request latencies in simulated cycles across the
	// arrival-process/load grid (0 when the latency report was not
	// supplied). Fully deterministic — a moving p99 is a real tail-latency
	// change at the trusted boundary.
	LatencyP99Cycles float64 `json:"latency_p99_cycles,omitempty"`
}

// benchRunMIPS extracts the MIPS metric of the BenchmarkRun/superblock
// line from `go test -bench` output: the value immediately preceding the
// "MIPS" unit token.
func benchRunMIPS(path string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(strings.TrimSpace(line), "BenchmarkRun/superblock") {
			continue
		}
		fields := strings.Fields(line)
		for i := 1; i < len(fields); i++ {
			if fields[i] == "MIPS" {
				return strconv.ParseFloat(fields[i-1], 64)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("no BenchmarkRun/superblock MIPS line in %s", path)
}

// interpGeomean pairs each interp workload's stepwise and superblock
// rows and returns the geometric mean of the MIPS speedups, skipping
// untimed cells (MIPS <= 0) exactly like the confbench table does.
func interpGeomean(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep interpReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	step := map[string]float64{}
	block := map[string]float64{}
	for _, r := range rep.Rows {
		if r.Figure != "interp" {
			continue
		}
		switch r.Variant {
		case "stepwise":
			step[r.Workload] = r.MIPS
		case "superblock":
			block[r.Workload] = r.MIPS
		}
	}
	var logSum float64
	var n int
	for wl, s := range step {
		b, ok := block[wl]
		if !ok || s <= 0 || b <= 0 {
			continue
		}
		logSum += math.Log(b / s)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("no timed interp workload pairs in %s", path)
	}
	return math.Exp(logSum / float64(n)), nil
}

// faultsReport mirrors the subset of the faults-figure JSON the history
// row needs.
type faultsReport struct {
	Rows []struct {
		Figure   string  `json:"figure"`
		AvailPct float64 `json:"avail_pct"`
	} `json:"rows"`
}

// faultsAvailGeomean returns the geometric mean of the faults figure's
// availability percentages, skipping zero-availability cells (a fully
// dead cell must never fold -Inf into the aggregate, matching the repo's
// other geomeans).
func faultsAvailGeomean(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep faultsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	var logSum float64
	var n int
	for _, r := range rep.Rows {
		if r.Figure != "faults" || r.AvailPct <= 0 {
			continue
		}
		logSum += math.Log(r.AvailPct)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("no faults rows with nonzero availability in %s", path)
	}
	return math.Exp(logSum / float64(n)), nil
}

// verifyReport mirrors the subset of the verify-figure JSON the history
// row needs.
type verifyReport struct {
	Rows []struct {
		Figure            string  `json:"figure"`
		VerifyFuncsPerSec float64 `json:"verify_funcs_per_sec"`
	} `json:"rows"`
}

// verifyFuncsGeomean returns the geometric mean of the verify figure's
// per-binary funcs/s throughput, skipping untimed cells.
func verifyFuncsGeomean(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep verifyReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	var logSum float64
	var n int
	for _, r := range rep.Rows {
		if r.Figure != "verify" || r.VerifyFuncsPerSec <= 0 {
			continue
		}
		logSum += math.Log(r.VerifyFuncsPerSec)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("no timed verify rows in %s", path)
	}
	return math.Exp(logSum / float64(n)), nil
}

// clusterReport mirrors the subset of the cluster-figure JSON the
// history row needs.
type clusterReport struct {
	Rows []struct {
		Figure        string `json:"figure"`
		AggReqsPerSec uint64 `json:"agg_reqs_per_sec"`
	} `json:"rows"`
}

// clusterReqsGeomean returns the geometric mean of the cluster figure's
// aggregate simulated req/s across the grid, skipping empty cells.
func clusterReqsGeomean(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep clusterReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	var logSum float64
	var n int
	for _, r := range rep.Rows {
		if r.Figure != "cluster" || r.AggReqsPerSec == 0 {
			continue
		}
		logSum += math.Log(float64(r.AggReqsPerSec))
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("no cluster rows with nonzero req/s in %s", path)
	}
	return math.Exp(logSum / float64(n)), nil
}

// latencyReport mirrors the subset of the latency-figure JSON the
// history row needs.
type latencyReport struct {
	Rows []struct {
		Figure       string `json:"figure"`
		LatP99Cycles uint64 `json:"latency_p99_cycles"`
	} `json:"rows"`
}

// latencyP99Geomean returns the geometric mean of the latency figure's
// per-row p99 latencies in simulated cycles, skipping empty cells.
func latencyP99Geomean(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep latencyReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	var logSum float64
	var n int
	for _, r := range rep.Rows {
		if r.Figure != "latency" || r.LatP99Cycles == 0 {
			continue
		}
		logSum += math.Log(float64(r.LatP99Cycles))
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("no latency rows with nonzero p99 in %s", path)
	}
	return math.Exp(logSum / float64(n)), nil
}

func main() {
	bench := flag.String("bench", "benchrun.txt", "go test -bench BenchmarkRun output")
	interp := flag.String("interp", "BENCH_interp.nightly.json", "confbench -figure interp -json report")
	faults := flag.String("faults", "", "confbench -figure faults -json report (optional)")
	verifyIn := flag.String("verify", "", "confbench -figure verify -json report (optional)")
	clusterIn := flag.String("cluster", "", "confbench -figure cluster -json report (optional)")
	latencyIn := flag.String("latency", "", "confbench -figure latency -json report (optional)")
	out := flag.String("out", "BENCH_history.jsonl", "history file to append to")
	commit := flag.String("commit", "", "commit SHA for the row (default: $GITHUB_SHA, then \"local\")")
	flag.Parse()

	sha := *commit
	if sha == "" {
		sha = os.Getenv("GITHUB_SHA")
	}
	if sha == "" {
		sha = "local"
	}

	mips, err := benchRunMIPS(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchhistory: %v\n", err)
		os.Exit(1)
	}
	geo, err := interpGeomean(*interp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchhistory: %v\n", err)
		os.Exit(1)
	}

	row := historyRow{
		Commit:        sha,
		Date:          time.Now().UTC().Format("2006-01-02"),
		BenchRunMIPS:  mips,
		InterpGeomean: geo,
	}
	if *faults != "" {
		avail, err := faultsAvailGeomean(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchhistory: %v\n", err)
			os.Exit(1)
		}
		row.FaultsAvailGeomean = avail
	}
	if *verifyIn != "" {
		fps, err := verifyFuncsGeomean(*verifyIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchhistory: %v\n", err)
			os.Exit(1)
		}
		row.VerifyFuncsPerSec = fps
	}
	if *clusterIn != "" {
		crps, err := clusterReqsGeomean(*clusterIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchhistory: %v\n", err)
			os.Exit(1)
		}
		row.ClusterReqsPerSec = crps
	}
	if *latencyIn != "" {
		p99, err := latencyP99Geomean(*latencyIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchhistory: %v\n", err)
			os.Exit(1)
		}
		row.LatencyP99Cycles = p99
	}
	line, err := json.Marshal(row)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchhistory: marshal: %v\n", err)
		os.Exit(1)
	}
	f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchhistory: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "benchhistory: append: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("appended to %s: %s\n", *out, line)
}
