// confcc is the ConfLLVM compiler driver: it compiles miniC sources
// (annotated with the `private` qualifier), links them into a U image and
// optionally verifies, disassembles or saves the result.
//
// Usage:
//
//	confcc [-variant ourseg] [-strict] [-allprivate] [-S] [-o prog.img] file.c...
package main

import (
	"flag"
	"fmt"
	"os"

	"confllvm"
)

func main() {
	variant := flag.String("variant", "ourseg", "configuration: base, baseoa, ourbare, ourcfi, ourmpx, ourseg")
	strict := flag.Bool("strict", false, "reject branching on private data (implicit-flow-free mode)")
	allPrivate := flag.Bool("allprivate", false, "all-private (SGX enclave) mode")
	dumpAsm := flag.Bool("S", false, "print the assembly listing")
	out := flag.String("o", "", "write the linked image to this path")
	noVerify := flag.Bool("no-verify", false, "skip ConfVerify on the output")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "confcc: no input files")
		os.Exit(2)
	}
	v, err := confllvm.ParseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	art, err := confllvm.CompileFiles(flag.Args(), v, confllvm.Program{
		Strict:     *strict,
		AllPrivate: *allPrivate,
	})
	if err != nil {
		fatal(err)
	}
	for _, w := range art.Warnings {
		fmt.Fprintln(os.Stderr, "confcc:", w)
	}
	if !*noVerify && v.Checked() {
		if err := confllvm.Verify(art); err != nil {
			fatal(fmt.Errorf("output failed verification (compiler bug?): %w", err))
		}
		fmt.Fprintln(os.Stderr, "confcc: ConfVerify passed")
	}
	if *dumpAsm {
		fmt.Print(confllvm.Disassemble(art))
	}
	if *out != "" {
		if err := art.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "confcc: wrote %s (%d bytes of code)\n", *out, len(art.Image.Code))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confcc:", err)
	os.Exit(1)
}
