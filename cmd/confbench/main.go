// confbench regenerates the paper's evaluation tables (Figures 5-8 and
// §7.3) directly, without the testing framework.
//
// Usage:
//
//	confbench [-figure all|5|6|7|8|ldap|interp] [-superblocks=true|false]
//	          [-json] [-out BENCH_interp.json]
//
// With -json, every measurement (simulated wall cycles, instruction count,
// host run time, interpreter MIPS) is also written to a JSON file so later
// changes have a perf trajectory to compare against.
//
// -superblocks=false replays everything with per-instruction stepping;
// the figure tables must come out byte-identical (the nightly CI job
// diffs the two). The "interp" figure runs every workload in both modes
// back to back, verifies the simulated cycles agree, and reports the
// dispatch speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"confllvm"
	"confllvm/internal/bench"
	"confllvm/internal/machine"
)

// benchRow is one (figure, workload, variant) measurement in the JSON
// report. Variant is a confllvm configuration name, or a dispatch mode
// ("superblock"/"stepwise") for the interp figure.
type benchRow struct {
	Figure     string  `json:"figure"`
	Workload   string  `json:"workload"`
	Variant    string  `json:"variant"`
	WallCycles uint64  `json:"wall_cycles"`
	Instrs     uint64  `json:"instrs"`
	HostNS     int64   `json:"host_ns"`
	MIPS       float64 `json:"mips"`
}

// benchReport is the BENCH_interp.json schema.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	// FigureFilter records the -figure selection so partial runs are never
	// mistaken for a full-suite trajectory point.
	FigureFilter string `json:"figure_filter"`
	// Superblocks records the dispatch mode of the figure-table runs.
	Superblocks bool       `json:"superblocks"`
	TotalInstrs uint64     `json:"total_instrs"`
	TotalHostNS int64      `json:"total_host_ns"`
	MIPS        float64    `json:"mips"` // aggregate simulated instructions/sec, in millions
	Rows        []benchRow `json:"rows"`
}

var (
	report *benchReport
	// mcfg is the machine configuration used for the figure tables,
	// controlled by -superblocks.
	mcfg machine.Config
)

// record adds a measurement to the JSON report (no-op without -json).
func record(figure, workload, variant string, m *bench.Measurement) {
	if report == nil {
		return
	}
	report.TotalInstrs += m.Stats.Instrs
	report.TotalHostNS += m.HostNS
	report.Rows = append(report.Rows, benchRow{
		Figure: figure, Workload: workload, Variant: variant,
		WallCycles: m.Wall, Instrs: m.Stats.Instrs, HostNS: m.HostNS,
		MIPS: m.MIPS(),
	})
}

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: all, 5, 6, 7, 8, ldap, interp")
	superblocks := flag.Bool("superblocks", true, "dispatch basic blocks (false = per-instruction stepping)")
	jsonOut := flag.Bool("json", false, "also write a JSON perf report")
	outPath := flag.String("out", "BENCH_interp.json", "path of the JSON report (with -json)")
	flag.Parse()

	mcfg = machine.DefaultConfig()
	mcfg.Superblocks = *superblocks

	if *jsonOut {
		report = &benchReport{
			GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
			FigureFilter: *figure,
			Superblocks:  *superblocks,
		}
		if *figure != "all" && *outPath == "BENCH_interp.json" {
			fmt.Fprintf(os.Stderr, "confbench: note: partial run (-figure %s) writing the default %s; "+
				"aggregate MIPS and row counts are not comparable to full-suite reports\n", *figure, *outPath)
		}
	}

	run := func(name string, fn func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "confbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("5", fig5)
	run("6", fig6)
	run("ldap", ldap)
	run("7", fig7)
	run("8", fig8)
	run("interp", interp)

	if report != nil {
		if report.TotalHostNS > 0 {
			report.MIPS = float64(report.TotalInstrs) / 1e6 / (float64(report.TotalHostNS) / 1e9)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "confbench: marshal report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "confbench: write report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows, interpreter throughput %.1f MIPS)\n",
			*outPath, len(report.Rows), report.MIPS)
	}
}

func fig5() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX, confllvm.VariantSeg}
	tbl := bench.NewTable("Figure 5: SPEC CPU 2006 execution time (% of Base)", cols, "cyc")
	for _, k := range bench.SPECKernels() {
		wl := bench.SPECWorkload(k, k.Params)
		for _, v := range cols {
			m, err := wl.Run(v, &mcfg)
			if err != nil {
				return err
			}
			tbl.Set(k.Name, v, m.Wall)
			record("fig5", k.Name, v.String(), m)
		}
	}
	fmt.Println(tbl)
	fmt.Printf("geomean overheads: CFI=%.1f%%  MPX=%.1f%%  Seg=%.1f%%\n\n",
		tbl.GeoMeanOverhead(confllvm.VariantCFI),
		tbl.GeoMeanOverhead(confllvm.VariantMPX),
		tbl.GeoMeanOverhead(confllvm.VariantSeg))
	return nil
}

func fig6() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantOneMem,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPXSep, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 6: NGINX cycles per request (% of Base)", cols, "cyc/req")
	const reqs = 32
	for _, kb := range []int{0, 1, 2, 5, 10, 20, 40} {
		wl := bench.WebWorkload(reqs, kb*1024)
		for _, v := range cols {
			m, err := wl.Run(v, &mcfg)
			if err != nil {
				return err
			}
			tbl.Set(fmt.Sprintf("resp-%02dKB", kb), v, m.Wall/uint64(reqs))
			record("fig6", fmt.Sprintf("resp-%02dKB", kb), v.String(), m)
		}
	}
	fmt.Println(tbl)
	return nil
}

func ldap() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX}
	tbl := bench.NewTable("Section 7.3: OpenLDAP cycles per query (% of Base)", cols, "cyc/q")
	const queries = 2000
	for _, mode := range []struct {
		name string
		miss int
	}{{"query-miss", 100}, {"query-hit", 0}} {
		wl := bench.LDAPWorkload(queries, mode.miss)
		for _, v := range cols {
			m, err := wl.Run(v, &mcfg)
			if err != nil {
				return err
			}
			tbl.Set(mode.name, v, m.Wall/queries)
			record("ldap", mode.name, v.String(), m)
		}
	}
	fmt.Println(tbl)
	return nil
}

func fig7() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 7: Privado classification latency (% of Base)", cols, "cyc/img")
	const images = 4
	wl := bench.ClassifierWorkload(images)
	for _, v := range cols {
		m, err := wl.Run(v, &mcfg)
		if err != nil {
			return err
		}
		tbl.Set("classify", v, m.Wall/images)
		record("fig7", "classify", v.String(), m)
	}
	fmt.Println(tbl)
	return nil
}

func fig8() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantSeg, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 8: Merkle-FS parallel read, total time (% of Base)", cols, "cyc")
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		wl := bench.MerkleWorkload(256, n)
		for _, v := range cols {
			m, err := wl.Run(v, &mcfg)
			if err != nil {
				return err
			}
			tbl.Set(fmt.Sprintf("%d-threads", n), v, m.Wall)
			record("fig8", fmt.Sprintf("%d-threads", n), v.String(), m)
		}
	}
	fmt.Println(tbl)
	return nil
}

// interp sweeps every workload with superblock dispatch on and off under
// OurMPX: simulated cycles must agree exactly (a runtime re-check of the
// determinism invariant) and the MIPS ratio is the dispatch speedup.
// These rows are the BENCH_interp.json trajectory datapoints.
func interp() error {
	fmt.Println("Interpreter dispatch: superblock vs per-instruction stepping (OurMPX)")
	fmt.Printf("%-16s %12s %12s %9s\n", "workload", "step MIPS", "block MIPS", "speedup")
	const v = confllvm.VariantMPX
	stepConf := machine.DefaultConfig()
	stepConf.Superblocks = false
	blockConf := machine.DefaultConfig()
	blockConf.Superblocks = true
	var geo float64
	var n int
	for _, wl := range bench.Workloads(false) {
		ms, err := wl.Run(v, &stepConf)
		if err != nil {
			return err
		}
		mb, err := wl.Run(v, &blockConf)
		if err != nil {
			return err
		}
		if ms.Wall != mb.Wall || ms.Stats != mb.Stats {
			return fmt.Errorf("%s: dispatch modes disagree (stepwise %d cycles, superblock %d cycles)",
				wl.Name, ms.Wall, mb.Wall)
		}
		speedup := mb.MIPS() / ms.MIPS()
		fmt.Printf("%-16s %12.1f %12.1f %8.2fx\n", wl.Name, ms.MIPS(), mb.MIPS(), speedup)
		record("interp", wl.Name, "stepwise", ms)
		record("interp", wl.Name, "superblock", mb)
		geo += math.Log(speedup)
		n++
	}
	fmt.Printf("%-16s %25s %8.2fx\n\n", "geomean", "", math.Exp(geo/float64(n)))
	return nil
}
