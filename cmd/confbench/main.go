// confbench regenerates the paper's evaluation tables (Figures 5-8 and
// §7.3) directly, without the testing framework.
//
// Usage:
//
//	confbench [-figure all|5|6|7|8|ldap] [-json] [-out BENCH_interp.json]
//
// With -json, every measurement (simulated wall cycles, instruction count,
// host run time, interpreter MIPS) is also written to a JSON file so later
// changes have a perf trajectory to compare against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"confllvm"
	"confllvm/internal/bench"
)

// benchRow is one (figure, workload, variant) measurement in the JSON
// report.
type benchRow struct {
	Figure     string  `json:"figure"`
	Workload   string  `json:"workload"`
	Variant    string  `json:"variant"`
	WallCycles uint64  `json:"wall_cycles"`
	Instrs     uint64  `json:"instrs"`
	HostNS     int64   `json:"host_ns"`
	MIPS       float64 `json:"mips"`
}

// benchReport is the BENCH_interp.json schema.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	// FigureFilter records the -figure selection so partial runs are never
	// mistaken for a full-suite trajectory point.
	FigureFilter string     `json:"figure_filter"`
	TotalInstrs  uint64     `json:"total_instrs"`
	TotalHostNS  int64      `json:"total_host_ns"`
	MIPS         float64    `json:"mips"` // aggregate simulated instructions/sec, in millions
	Rows         []benchRow `json:"rows"`
}

var report *benchReport

// record adds a measurement to the JSON report (no-op without -json).
func record(figure, workload string, v confllvm.Variant, m *bench.Measurement) {
	if report == nil {
		return
	}
	report.TotalInstrs += m.Stats.Instrs
	report.TotalHostNS += m.HostNS
	report.Rows = append(report.Rows, benchRow{
		Figure: figure, Workload: workload, Variant: v.String(),
		WallCycles: m.Wall, Instrs: m.Stats.Instrs, HostNS: m.HostNS,
		MIPS: m.MIPS(),
	})
}

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: all, 5, 6, 7, 8, ldap")
	jsonOut := flag.Bool("json", false, "also write a JSON perf report")
	outPath := flag.String("out", "BENCH_interp.json", "path of the JSON report (with -json)")
	flag.Parse()

	if *jsonOut {
		report = &benchReport{
			GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
			FigureFilter: *figure,
		}
		if *figure != "all" && *outPath == "BENCH_interp.json" {
			fmt.Fprintf(os.Stderr, "confbench: note: partial run (-figure %s) writing the default %s; "+
				"aggregate MIPS and row counts are not comparable to full-suite reports\n", *figure, *outPath)
		}
	}

	run := func(name string, fn func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "confbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("5", fig5)
	run("6", fig6)
	run("ldap", ldap)
	run("7", fig7)
	run("8", fig8)

	if report != nil {
		if report.TotalHostNS > 0 {
			report.MIPS = float64(report.TotalInstrs) / 1e6 / (float64(report.TotalHostNS) / 1e9)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "confbench: marshal report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "confbench: write report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows, interpreter throughput %.1f MIPS)\n",
			*outPath, len(report.Rows), report.MIPS)
	}
}

func fig5() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX, confllvm.VariantSeg}
	tbl := bench.NewTable("Figure 5: SPEC CPU 2006 execution time (% of Base)", cols, "cyc")
	for _, k := range bench.SPECKernels() {
		for _, v := range cols {
			m, err := bench.RunSPEC(k, v)
			if err != nil {
				return err
			}
			tbl.Set(k.Name, v, m.Wall)
			record("fig5", k.Name, v, m)
		}
	}
	fmt.Println(tbl)
	fmt.Printf("geomean overheads: CFI=%.1f%%  MPX=%.1f%%  Seg=%.1f%%\n\n",
		tbl.GeoMeanOverhead(confllvm.VariantCFI),
		tbl.GeoMeanOverhead(confllvm.VariantMPX),
		tbl.GeoMeanOverhead(confllvm.VariantSeg))
	return nil
}

func fig6() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantOneMem,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPXSep, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 6: NGINX cycles per request (% of Base)", cols, "cyc/req")
	const reqs = 32
	for _, kb := range []int{0, 1, 2, 5, 10, 20, 40} {
		for _, v := range cols {
			m, err := bench.RunWebServer(v, reqs, kb*1024)
			if err != nil {
				return err
			}
			tbl.Set(fmt.Sprintf("resp-%02dKB", kb), v, m.Wall/uint64(reqs))
			record("fig6", fmt.Sprintf("resp-%02dKB", kb), v, m)
		}
	}
	fmt.Println(tbl)
	return nil
}

func ldap() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX}
	tbl := bench.NewTable("Section 7.3: OpenLDAP cycles per query (% of Base)", cols, "cyc/q")
	const queries = 2000
	for _, mode := range []struct {
		name string
		miss int
	}{{"query-miss", 100}, {"query-hit", 0}} {
		for _, v := range cols {
			m, err := bench.RunLDAP(v, queries, mode.miss)
			if err != nil {
				return err
			}
			tbl.Set(mode.name, v, m.Wall/queries)
			record("ldap", mode.name, v, m)
		}
	}
	fmt.Println(tbl)
	return nil
}

func fig7() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 7: Privado classification latency (% of Base)", cols, "cyc/img")
	const images = 4
	for _, v := range cols {
		m, err := bench.RunClassifier(v, images)
		if err != nil {
			return err
		}
		tbl.Set("classify", v, m.Wall/images)
		record("fig7", "classify", v, m)
	}
	fmt.Println(tbl)
	return nil
}

func fig8() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantSeg, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 8: Merkle-FS parallel read, total time (% of Base)", cols, "cyc")
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		for _, v := range cols {
			m, err := bench.RunMerkle(v, 256, n)
			if err != nil {
				return err
			}
			tbl.Set(fmt.Sprintf("%d-threads", n), v, m.Wall)
			record("fig8", fmt.Sprintf("%d-threads", n), v, m)
		}
	}
	fmt.Println(tbl)
	return nil
}
