// confbench regenerates the paper's evaluation tables (Figures 5-8 and
// §7.3) directly, without the testing framework.
//
// Usage:
//
//	confbench [-figure all|5|6|7|8|ldap]
package main

import (
	"flag"
	"fmt"
	"os"

	"confllvm"
	"confllvm/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: all, 5, 6, 7, 8, ldap")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "confbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("5", fig5)
	run("6", fig6)
	run("ldap", ldap)
	run("7", fig7)
	run("8", fig8)
}

func fig5() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX, confllvm.VariantSeg}
	tbl := bench.NewTable("Figure 5: SPEC CPU 2006 execution time (% of Base)", cols, "cyc")
	for _, k := range bench.SPECKernels() {
		for _, v := range cols {
			m, err := bench.RunSPEC(k, v)
			if err != nil {
				return err
			}
			tbl.Set(k.Name, v, m.Wall)
		}
	}
	fmt.Println(tbl)
	fmt.Printf("geomean overheads: CFI=%.1f%%  MPX=%.1f%%  Seg=%.1f%%\n\n",
		tbl.GeoMeanOverhead(confllvm.VariantCFI),
		tbl.GeoMeanOverhead(confllvm.VariantMPX),
		tbl.GeoMeanOverhead(confllvm.VariantSeg))
	return nil
}

func fig6() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantOneMem,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPXSep, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 6: NGINX cycles per request (% of Base)", cols, "cyc/req")
	const reqs = 32
	for _, kb := range []int{0, 1, 2, 5, 10, 20, 40} {
		for _, v := range cols {
			m, err := bench.RunWebServer(v, reqs, kb*1024)
			if err != nil {
				return err
			}
			tbl.Set(fmt.Sprintf("resp-%02dKB", kb), v, m.Wall/uint64(reqs))
		}
	}
	fmt.Println(tbl)
	return nil
}

func ldap() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX}
	tbl := bench.NewTable("Section 7.3: OpenLDAP cycles per query (% of Base)", cols, "cyc/q")
	const queries = 2000
	for _, mode := range []struct {
		name string
		miss int
	}{{"query-miss", 100}, {"query-hit", 0}} {
		for _, v := range cols {
			m, err := bench.RunLDAP(v, queries, mode.miss)
			if err != nil {
				return err
			}
			tbl.Set(mode.name, v, m.Wall/queries)
		}
	}
	fmt.Println(tbl)
	return nil
}

func fig7() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 7: Privado classification latency (% of Base)", cols, "cyc/img")
	const images = 4
	for _, v := range cols {
		m, err := bench.RunClassifier(v, images)
		if err != nil {
			return err
		}
		tbl.Set("classify", v, m.Wall/images)
	}
	fmt.Println(tbl)
	return nil
}

func fig8() error {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantSeg, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 8: Merkle-FS parallel read, total time (% of Base)", cols, "cyc")
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		for _, v := range cols {
			m, err := bench.RunMerkle(v, 256, n)
			if err != nil {
				return err
			}
			tbl.Set(fmt.Sprintf("%d-threads", n), v, m.Wall)
		}
	}
	fmt.Println(tbl)
	return nil
}
