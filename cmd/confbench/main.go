// confbench regenerates the paper's evaluation tables (Figures 5-8 and
// §7.3) directly, without the testing framework.
//
// Usage:
//
//	confbench [-figure all|5|6|7|8|ldap|throughput|scenarios|faults|verify|cluster|latency|interp]
//	          [-superblocks=true|false] [-chain on|off] [-fuse on|off]
//	          [-threaded on|off] [-parallel N]
//	          [-seed N] [-short] [-list]
//	          [-json] [-out BENCH_interp.json] [-profile FILE]
//
// Figures register in one place (figureRegistry); the -figure usage
// string and the -list output derive from it, so the line above and the
// flag help cannot drift from the real set.
//
// The "scenarios" figure is the seeded traffic sweep: internal/scenario
// expands a grid of (request multiplier x hit ratio) specs for the
// confidential KV store and the TLS-ish handshake, and every cell's
// request stream is a pure function of -seed — the printed table is
// byte-identical across runs, dispatch modes and -parallel settings.
// The "faults" figure serves the same scenario traffic through the bench
// supervisor under seeded fault injection (internal/chaos) and reports
// availability, recovery latency and verify-gate rejections; it shares
// the scenarios figure's determinism contract because the injector and
// the simulated clock are the only randomness sources and both derive
// from -seed. -short shrinks the grids to a smoke size; -list prints the
// known figures and registered workloads and exits.
//
// The "verify" figure turns the load gate itself into an evaluation
// target: every workload's binary under both deployable schemes is
// checked cold-serial, cold-parallel and verdict-cached, and the seeded
// verifymut mutation corpus is run against it. The per-binary counters
// (functions, stubs, instructions, mutants tried/killed) are pure
// functions of the bits and -seed, so that part of the table is
// byte-identical across -parallel settings — the nightly job diffs it —
// while the throughput lines (funcs/s, insts/s, dispatch speedup) are
// host time and carry a "(host)" marker so diffs can strip them. A
// mutation kill rate below 100% fails the figure: a surviving mutant is
// a verifier soundness hole.
//
// The "cluster" figure lifts the single-machine assumption: a
// deterministic router partitions the KV key space across 1/4/16 shard
// machines (every shard serving through the same gate-verified binary),
// client skew (uniform vs seeded zipf) stresses routing balance, and
// cross-shard scans fan out into per-owner sub-requests. Shards run as
// ordinary matrix cells; per-cluster rows merge their simulated clocks
// with commutative folds (aggregate req/s = client requests over the
// slowest shard), so the table inherits the full determinism contract.
//
// The "latency" figure is the observability plane's flagship table: the
// KV scenario's per-request service times, measured at the trusted recv
// boundary in simulated cycles, are replayed through a deterministic
// FIFO queue fed by seeded open-loop arrival processes (uniform,
// Poisson, bursty) at three offered loads, and the p50/p95/p99/max
// latency plus queue-depth columns come out byte-identical across
// -parallel, -superblocks and -chain. -profile FILE additionally turns
// on the machine's cycle-attribution profiler for every table cell and
// writes one merged folded-stack profile (symbol + cycles per line,
// flamegraph-ready); profile totals conserve the runs' cycle counters
// exactly, and the disabled profiler costs nothing.
//
// Every (figure, workload, variant) cell is an independent simulation —
// its own compiled artifact and its own machine.Machine — so the whole
// matrix is scheduled across a worker pool (-parallel, default
// GOMAXPROCS) and the tables are assembled from the results in input
// order: the printed figure tables are byte-identical between -parallel=1
// and any parallel run, because every table cell is a simulated quantity.
// Only the interp sweep measures host time; its cells are pinned to a
// serial lane that runs after the pool drains, so MIPS numbers always
// come from a quiet host.
//
// With -json, every measurement (simulated wall cycles, instruction count,
// host run time, interpreter MIPS) is also written to a JSON file so later
// changes have a perf trajectory to compare against.
//
// -superblocks=false replays everything with per-instruction stepping,
// and -chain=off keeps superblock dispatch but disables direct block
// chaining; -fuse=off disables superinstruction fusion and -threaded=on
// swaps the opcode switch for the per-slot handler table. The figure
// tables must come out byte-identical under every combination (the
// nightly CI job diffs stepwise-vs-superblock, chained-vs-unchained,
// fused-vs-unfused and threaded-vs-switch). The "interp" figure runs
// every workload in both dispatch modes back to back, verifies the
// simulated cycles agree, and reports the dispatch speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"confllvm"
	"confllvm/internal/bench"
	"confllvm/internal/machine"
	"confllvm/internal/obs"
	"confllvm/internal/scenario"
)

// benchRow is one (figure, workload, variant) measurement in the JSON
// report. Variant is a confllvm configuration name, or a dispatch mode
// ("superblock"/"stepwise") for the interp figure. host_ns/mips are only
// quiet-host measurements for interp rows (their cells run in the serial
// lane); figure-table rows run concurrently when parallel > 1, so their
// host times are contended — compare them across reports only at equal
// "parallel" settings, or rely on the interp rows for the trajectory.
type benchRow struct {
	Figure     string  `json:"figure"`
	Workload   string  `json:"workload"`
	Variant    string  `json:"variant"`
	WallCycles uint64  `json:"wall_cycles"`
	Instrs     uint64  `json:"instrs"`
	HostNS     int64   `json:"host_ns"`
	MIPS       float64 `json:"mips"`
	// FusedSlots counts fused superinstruction slots executed (an
	// observability counter: zero when -fuse=off, excluded from the
	// cross-mode determinism compares).
	FusedSlots uint64 `json:"fused_slots,omitempty"`

	// Availability columns, set only for supervised (faults-figure) rows.
	// All simulated quantities; recovery latencies are simulated cycles.
	TotalReqs          int     `json:"total_reqs,omitempty"`
	Served             int     `json:"served,omitempty"`
	AvailPct           float64 `json:"avail_pct,omitempty"`
	ServedPerSec       uint64  `json:"served_per_sec,omitempty"`
	Restarts           int     `json:"restarts,omitempty"`
	RecoveryMeanCycles uint64  `json:"recovery_mean_cycles,omitempty"`
	RecoveryMaxCycles  uint64  `json:"recovery_max_cycles,omitempty"`
	VerifyRejections   int     `json:"verify_rejections,omitempty"`
	Shed               int     `json:"shed,omitempty"`
	Rejected           int     `json:"rejected,omitempty"`

	// Verify columns, set only for verify-figure rows. The counters are
	// deterministic; the *_ns and per-sec fields are host time (cells run
	// in the serial lane, so they are quiet-host measurements).
	VerifyFuncs       int     `json:"verify_funcs,omitempty"`
	VerifyStubs       int     `json:"verify_stubs,omitempty"`
	VerifyInsts       int     `json:"verify_insts,omitempty"`
	CodeBytes         int     `json:"code_bytes,omitempty"`
	VerifyWorkers     int     `json:"verify_workers,omitempty"`
	VerifySerialNS    int64   `json:"verify_serial_ns,omitempty"`
	VerifyParallelNS  int64   `json:"verify_parallel_ns,omitempty"`
	VerifyCachedNS    int64   `json:"verify_cached_ns,omitempty"`
	VerifyFuncsPerSec float64 `json:"verify_funcs_per_sec,omitempty"`
	VerifyInstsPerSec float64 `json:"verify_insts_per_sec,omitempty"`
	MutantsTried      int     `json:"mutants_tried,omitempty"`
	MutantsKilled     int     `json:"mutants_killed,omitempty"`

	// Cluster columns, set only for cluster-figure rows. Each such row is
	// one whole cluster (shard measurements merged by commutative clock
	// folds); wall_cycles is the cluster wall clock (slowest shard) and
	// instrs the cross-shard sum. All simulated quantities.
	Shards         int    `json:"shards,omitempty"`
	ClientReqs     int    `json:"client_reqs,omitempty"`
	AggReqsPerSec  uint64 `json:"agg_reqs_per_sec,omitempty"`
	ShardReqMin    int    `json:"shard_req_min,omitempty"`
	ShardReqMax    int    `json:"shard_req_max,omitempty"`
	ShardCyclesMin uint64 `json:"shard_cycles_min,omitempty"`
	ShardCyclesMax uint64 `json:"shard_cycles_max,omitempty"`
	ScanSplits     int    `json:"scan_splits,omitempty"`
	CrossScans     int    `json:"cross_scans,omitempty"`

	// Latency columns, set only for latency-figure rows: the open-loop
	// queueing report of internal/bench.RunLatency. All simulated
	// quantities in cycles at bench.SimClockHz.
	ArrivalKind   string `json:"arrival_kind,omitempty"`
	MeanGapCycles uint64 `json:"mean_gap_cycles,omitempty"`
	OfferedRPS    uint64 `json:"offered_rps,omitempty"`
	SvcMeanCycles uint64 `json:"svc_mean_cycles,omitempty"`
	LatP50Cycles  uint64 `json:"latency_p50_cycles,omitempty"`
	LatP95Cycles  uint64 `json:"latency_p95_cycles,omitempty"`
	LatP99Cycles  uint64 `json:"latency_p99_cycles,omitempty"`
	LatMaxCycles  uint64 `json:"latency_max_cycles,omitempty"`
	MaxQueue      uint64 `json:"max_queue,omitempty"`
}

// benchReport is the BENCH_interp.json schema.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	// FigureFilter records the -figure selection so partial runs are never
	// mistaken for a full-suite trajectory point.
	FigureFilter string `json:"figure_filter"`
	// Superblocks/Chain/Fuse/Threaded record the dispatch mode of the
	// figure-table runs.
	Superblocks bool `json:"superblocks"`
	Chain       bool `json:"chain"`
	Fuse        bool `json:"fuse"`
	Threaded    bool `json:"threaded"`
	// Parallel is the worker count the matrix ran with.
	Parallel    int    `json:"parallel"`
	TotalInstrs uint64 `json:"total_instrs"`
	// TotalHostNS sums per-cell host time. With concurrent cells this is
	// aggregate CPU time, not elapsed time — dividing instructions by it
	// would overstate nothing but understate parallel speedup; the honest
	// throughput denominator is SuiteWallNS.
	TotalHostNS int64 `json:"total_host_ns"`
	// SuiteWallNS is the true elapsed time of the whole matrix run.
	SuiteWallNS int64      `json:"suite_wall_ns"`
	MIPS        float64    `json:"mips"` // TotalInstrs / SuiteWallNS, in millions/sec
	Rows        []benchRow `json:"rows"`
}

var (
	reportMu sync.Mutex
	report   *benchReport
	// mcfg is the machine configuration used for the figure tables,
	// controlled by -superblocks.
	mcfg machine.Config
	// scenarioSeed and shortGrid parameterize the scenarios sweep
	// (-seed / -short).
	scenarioSeed uint64
	shortGrid    bool
)

// record adds a measurement to the JSON report (no-op without -json).
// It is mutex-guarded so figures may record from any goroutine; row
// order is nevertheless deterministic because renders run sequentially
// over matrix results that are already in input order.
func record(figure, workload, variant string, m *bench.Measurement) {
	reportMu.Lock()
	defer reportMu.Unlock()
	if report == nil {
		return
	}
	report.TotalInstrs += m.Stats.Instrs
	report.TotalHostNS += m.HostNS
	row := benchRow{
		Figure: figure, Workload: workload, Variant: variant,
		WallCycles: m.Wall, Instrs: m.Stats.Instrs, HostNS: m.HostNS,
		MIPS: m.MIPS(), FusedSlots: m.Stats.FusedSlots,
	}
	if rep := m.Serve; rep != nil {
		row.TotalReqs = rep.Total
		row.Served = rep.Served
		row.AvailPct = rep.AvailabilityPct()
		row.ServedPerSec = rep.ServedPerSec()
		row.Restarts = rep.Restarts
		row.RecoveryMeanCycles = rep.RecoveryMean()
		row.RecoveryMaxCycles = rep.RecoveryMax()
		row.VerifyRejections = rep.VerifyRejections
		row.Shed = rep.Shed
		row.Rejected = rep.Rejected
	}
	if rep := m.Verify; rep != nil {
		row.VerifyFuncs = rep.Funcs
		row.VerifyStubs = rep.Stubs
		row.VerifyInsts = rep.Insts
		row.CodeBytes = rep.CodeBytes
		row.VerifyWorkers = rep.Workers
		row.VerifySerialNS = rep.SerialNS
		row.VerifyParallelNS = rep.ParallelNS
		row.VerifyCachedNS = rep.CachedNS
		row.VerifyFuncsPerSec = rep.FuncsPerSec()
		row.VerifyInstsPerSec = rep.InstsPerSec()
		row.MutantsTried = rep.MutantsTried
		row.MutantsKilled = rep.MutantsKilled
	}
	if rep := m.Latency; rep != nil {
		row.TotalReqs = int(rep.Requests)
		row.ArrivalKind = rep.Kind
		row.MeanGapCycles = rep.MeanGap
		row.OfferedRPS = rep.OfferedRPS
		row.SvcMeanCycles = rep.SvcMean
		row.LatP50Cycles = rep.P50
		row.LatP95Cycles = rep.P95
		row.LatP99Cycles = rep.P99
		row.LatMaxCycles = rep.Max
		row.MaxQueue = rep.MaxQueue
	}
	if rep := m.Cluster; rep != nil {
		row.Shards = rep.Shards
		row.ClientReqs = rep.ClientRequests
		row.AggReqsPerSec = rep.AggReqsPerSec()
		row.ShardReqMin = rep.MinShardReqs
		row.ShardReqMax = rep.MaxShardReqs
		row.ShardCyclesMin = rep.MinShardCycles
		row.ShardCyclesMax = rep.MaxShardCycles
		row.ScanSplits = rep.ScanSplits
		row.CrossScans = rep.CrossScans
	}
	report.Rows = append(report.Rows, row)
}

// renderFn consumes a figure's slice of the matrix results (in cell
// order) and prints its table.
type renderFn func([]bench.CellResult) error

// figureSpec is one figure: build returns the figure's cells plus the
// render that assembles them once the matrix has run.
type figureSpec struct {
	name  string
	build func() ([]bench.Cell, renderFn)
}

// figureRegistry is the single source of truth for -figure: the flag's
// usage string, the -list output and the selection logic all derive from
// this slice, so registering a figure here is the *only* step — a guard
// test pins that every registered figure is listed and that unknown
// names error with a pointer to -list.
var figureRegistry = []figureSpec{
	{"5", fig5}, {"6", fig6}, {"ldap", ldap}, {"7", fig7}, {"8", fig8},
	{"throughput", throughput}, {"scenarios", scenarios}, {"faults", faults},
	{"verify", verifyFigure}, {"cluster", cluster}, {"latency", latencyFigure},
	{"interp", interp},
}

// figureNames renders the registry as the -figure usage enumeration.
func figureNames() string {
	names := "all"
	for _, f := range figureRegistry {
		names += ", " + f.name
	}
	return names
}

// figuresFor resolves a -figure selection against the registry ("all" =
// every figure, in registry order).
func figuresFor(name string) ([]figureSpec, error) {
	if name == "all" {
		return figureRegistry, nil
	}
	for _, f := range figureRegistry {
		if f.name == name {
			return []figureSpec{f}, nil
		}
	}
	return nil, fmt.Errorf("unknown figure %q (run confbench -list for the valid set)", name)
}

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: "+figureNames())
	superblocks := flag.Bool("superblocks", true, "dispatch basic blocks (false = per-instruction stepping)")
	chainFlag := flag.String("chain", "on", "direct block chaining: on|off (escape hatch; only meaningful with -superblocks)")
	fuseFlag := flag.String("fuse", "on", "superinstruction fusion: on|off (escape hatch; only meaningful with -superblocks)")
	threadedFlag := flag.String("threaded", "off", "threaded per-slot handler dispatch: on|off (replaces the opcode switch; only meaningful with -superblocks)")
	parallel := flag.Int("parallel", 0, "worker goroutines for the bench matrix (0 = GOMAXPROCS, 1 = serial)")
	seed := flag.Uint64("seed", scenario.DefaultSeed, "base seed of the scenario traffic engine")
	short := flag.Bool("short", false, "shrink the scenarios grid to a smoke size")
	list := flag.Bool("list", false, "print known figures and registered workloads, then exit")
	jsonOut := flag.Bool("json", false, "also write a JSON perf report")
	outPath := flag.String("out", "BENCH_interp.json", "path of the JSON report (with -json)")
	profilePath := flag.String("profile", "", "enable cycle profiling and write the merged folded-stack profile of every cell to this file")
	flag.Parse()

	mcfg = machine.DefaultConfig()
	mcfg.Superblocks = *superblocks
	mcfg.Profile = *profilePath != ""
	onOff := func(name, val string) bool {
		switch val {
		case "on", "true", "1":
			return true
		case "off", "false", "0":
			return false
		default:
			fmt.Fprintf(os.Stderr, "confbench: bad -%s %q (want on or off)\n", name, val)
			os.Exit(2)
			panic("unreachable")
		}
	}
	mcfg.Chain = onOff("chain", *chainFlag)
	mcfg.Fuse = onOff("fuse", *fuseFlag)
	mcfg.Threaded = onOff("threaded", *threadedFlag)
	scenarioSeed = *seed
	shortGrid = *short

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	if *jsonOut {
		report = &benchReport{
			GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
			FigureFilter: *figure,
			Superblocks:  *superblocks,
			Chain:        mcfg.Chain,
			Fuse:         mcfg.Fuse,
			Threaded:     mcfg.Threaded,
			Parallel:     workers,
		}
		if *figure != "all" && *outPath == "BENCH_interp.json" {
			fmt.Fprintf(os.Stderr, "confbench: note: partial run (-figure %s) writing the default %s; "+
				"aggregate MIPS and row counts are not comparable to full-suite reports\n", *figure, *outPath)
		}
	}

	if *list {
		fmt.Println("figures:")
		fmt.Println("  all")
		for _, f := range figureRegistry {
			fmt.Printf("  %s\n", f.name)
		}
		fmt.Println("workloads:")
		for _, wl := range bench.Workloads(false) {
			fmt.Printf("  %-22s (artifact key %q)\n", wl.Name, wl.Key)
		}
		return
	}

	selected, err := figuresFor(*figure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "confbench: %v\n", err)
		os.Exit(2)
	}

	// Build the combined cell matrix for the selected figures, remembering
	// each figure's slice so renders run in figure order afterwards.
	var cells []bench.Cell
	type pending struct {
		name   string
		lo, hi int
		render renderFn
	}
	var pend []pending
	for _, f := range selected {
		cs, render := f.build()
		pend = append(pend, pending{f.name, len(cells), len(cells) + len(cs), render})
		cells = append(cells, cs...)
	}

	start := time.Now()
	results := bench.RunMatrix(cells, workers)
	suiteWall := time.Since(start)

	for _, p := range pend {
		if err := p.render(results[p.lo:p.hi]); err != nil {
			fmt.Fprintf(os.Stderr, "confbench: figure %s: %v\n", p.name, err)
			os.Exit(1)
		}
	}

	if *profilePath != "" {
		// Per-cell profiles fold commutatively, so the merged profile is
		// independent of matrix scheduling. Cells running under their own
		// machine configs (the interp MIPS lanes, supervised epochs)
		// deliberately do not profile and contribute nothing.
		merged := obs.NewFuncProfile()
		var cellsProfiled int
		for _, r := range results {
			if r.M != nil && r.M.Profile != nil {
				merged.Merge(r.M.Profile)
				cellsProfiled++
			}
		}
		if err := os.WriteFile(*profilePath, []byte(merged.Folded()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "confbench: write profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d symbols from %d cells, %d cycles attributed)\n",
			*profilePath, len(merged.Top()), cellsProfiled, merged.TotalCycles())
	}

	if report != nil {
		report.SuiteWallNS = suiteWall.Nanoseconds()
		if report.SuiteWallNS > 0 {
			report.MIPS = float64(report.TotalInstrs) / 1e6 / (float64(report.SuiteWallNS) / 1e9)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "confbench: marshal report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "confbench: write report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows, %d workers, suite throughput %.1f MIPS)\n",
			*outPath, len(report.Rows), workers, report.MIPS)
	}
}

// tableRow is one figure-table row: its name, workload, and the Wall
// divisor for the table cell (0 = absolute cycles).
type tableRow struct {
	name  string
	wl    bench.Workload
	scale uint64
}

// tableCells builds the cross product of rows x cols for one figure.
func tableCells(figure string, rows []tableRow, cols []confllvm.Variant) []bench.Cell {
	var cells []bench.Cell
	for _, r := range rows {
		for _, v := range cols {
			cells = append(cells, bench.Cell{
				Figure: figure, Row: r.name, Workload: r.wl,
				Variant: v, Conf: &mcfg, Scale: r.scale,
			})
		}
	}
	return cells
}

// renderTable fills tbl from results and records the JSON rows. value
// converts a measurement into the table cell; nil selects the default
// (Wall, divided by the cell's Scale).
func renderTable(figure string, tbl *bench.Table, results []bench.CellResult,
	value func(bench.CellResult) uint64) error {
	if value == nil {
		value = func(r bench.CellResult) uint64 {
			v := r.M.Wall
			if r.Cell.Scale > 1 {
				v /= r.Cell.Scale
			}
			return v
		}
	}
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
		tbl.Set(r.Cell.Row, r.Cell.Variant, value(r))
		record(figure, r.Cell.Row, r.Cell.Variant.String(), r.M)
	}
	fmt.Println(tbl)
	return nil
}

// printGeomeans prints the CFI/MPX/Seg geomean-overhead line fig5 and
// the throughput table share.
func printGeomeans(prefix string, tbl *bench.Table) {
	fmt.Printf("%s: CFI=%.1f%%  MPX=%.1f%%  Seg=%.1f%%\n\n", prefix,
		tbl.GeoMeanOverhead(confllvm.VariantCFI),
		tbl.GeoMeanOverhead(confllvm.VariantMPX),
		tbl.GeoMeanOverhead(confllvm.VariantSeg))
}

func fig5() ([]bench.Cell, renderFn) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX, confllvm.VariantSeg}
	tbl := bench.NewTable("Figure 5: SPEC CPU 2006 execution time (% of Base)", cols, "cyc")
	var rows []tableRow
	for _, k := range bench.SPECKernels() {
		rows = append(rows, tableRow{k.Name, bench.SPECWorkload(k, k.Params), 0})
	}
	render := func(results []bench.CellResult) error {
		if err := renderTable("fig5", tbl, results, nil); err != nil {
			return err
		}
		printGeomeans("geomean overheads", tbl)
		return nil
	}
	return tableCells("fig5", rows, cols), render
}

func fig6() ([]bench.Cell, renderFn) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantOneMem,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPXSep, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 6: NGINX cycles per request (% of Base)", cols, "cyc/req")
	const reqs = 32
	var rows []tableRow
	for _, kb := range []int{0, 1, 2, 5, 10, 20, 40} {
		rows = append(rows, tableRow{fmt.Sprintf("resp-%02dKB", kb),
			bench.WebWorkload(reqs, kb*1024), reqs})
	}
	render := func(results []bench.CellResult) error {
		return renderTable("fig6", tbl, results, nil)
	}
	return tableCells("fig6", rows, cols), render
}

func ldap() ([]bench.Cell, renderFn) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantMPX}
	tbl := bench.NewTable("Section 7.3: OpenLDAP cycles per query (% of Base)", cols, "cyc/q")
	const queries = 2000
	rows := []tableRow{
		{"query-miss", bench.LDAPWorkload(queries, 100), queries},
		{"query-hit", bench.LDAPWorkload(queries, 0), queries},
	}
	render := func(results []bench.CellResult) error {
		return renderTable("ldap", tbl, results, nil)
	}
	return tableCells("ldap", rows, cols), render
}

func fig7() ([]bench.Cell, renderFn) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBaseOA,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 7: Privado classification latency (% of Base)", cols, "cyc/img")
	const images = 4
	rows := []tableRow{{"classify", bench.ClassifierWorkload(images), images}}
	render := func(results []bench.CellResult) error {
		return renderTable("fig7", tbl, results, nil)
	}
	return tableCells("fig7", rows, cols), render
}

func fig8() ([]bench.Cell, renderFn) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantSeg, confllvm.VariantMPX}
	tbl := bench.NewTable("Figure 8: Merkle-FS parallel read, total time (% of Base)", cols, "cyc")
	var rows []tableRow
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		rows = append(rows, tableRow{fmt.Sprintf("%d-threads", n),
			bench.MerkleWorkload(256, n), 0})
	}
	render := func(results []bench.CellResult) error {
		return renderTable("fig8", tbl, results, nil)
	}
	return tableCells("fig8", rows, cols), render
}

// throughput is the scaled-traffic table the parallel matrix makes
// affordable: the webserver and LDAP drivers at 10x the request counts
// of their figure runs, reported as requests per second at the
// simulated clock (bench.SimClockHz). Cells are simulated quantities, so
// the table is deterministic and parallel-safe.
func throughput() ([]bench.Cell, renderFn) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantCFI,
		confllvm.VariantMPX, confllvm.VariantSeg}
	tbl := bench.NewTable(
		fmt.Sprintf("Throughput: sustained requests/sec at a %.1f GHz simulated clock (%% of Base)",
			float64(bench.SimClockHz)/1e9), cols, "req/s")
	tbl.HigherIsBetter = true
	const webReqs = 320       // 10x the Figure 6 run
	const ldapQueries = 20000 // 10x the §7.3 run
	rows := []tableRow{
		{"web-2KB", bench.WebWorkload(webReqs, 2*1024), webReqs},
		{"web-10KB", bench.WebWorkload(webReqs, 10*1024), webReqs},
		{"ldap-hit", bench.LDAPWorkload(ldapQueries, 0), ldapQueries},
		{"ldap-miss", bench.LDAPWorkload(ldapQueries, 100), ldapQueries},
	}
	render := func(results []bench.CellResult) error {
		err := renderTable("throughput", tbl, results, func(r bench.CellResult) uint64 {
			return bench.ReqsPerSec(r.Cell.Scale, r.M.Wall)
		})
		if err != nil {
			return err
		}
		printGeomeans("geomean throughput overheads", tbl)
		return nil
	}
	return tableCells("throughput", rows, cols), render
}

// scenarios is the traffic-engine sweep: the internal/scenario grid
// (request multipliers 1x/10x/100x crossed with hit/resumption ratios)
// for the confidential KV store and the TLS-ish handshake, reported as
// requests per second at the simulated clock. Every cell's stream is a
// pure function of the spec (including -seed), every table value is a
// simulated quantity, and each workload family compiles once per variant
// — so even the 100x cells only add simulated execution time and the
// table is byte-identical across schedulings, dispatch modes and reruns.
func scenarios() ([]bench.Cell, renderFn) {
	cols := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantCFI,
		confllvm.VariantMPX, confllvm.VariantSeg}
	specs := scenario.FigureGrid(shortGrid, scenarioSeed)
	tbl := bench.NewTable(
		fmt.Sprintf("Scenario sweep: seeded KV-store + TLS-ish traffic, requests/sec at a %.1f GHz simulated clock (%% of Base)",
			float64(bench.SimClockHz)/1e9), cols, "req/s")
	tbl.HigherIsBetter = true
	cells := bench.ScenarioCells("scenarios", specs, cols, &mcfg)
	render := func(results []bench.CellResult) error {
		err := renderTable("scenarios", tbl, results, func(r bench.CellResult) uint64 {
			return bench.ReqsPerSec(r.Cell.Scale, r.M.Wall)
		})
		if err != nil {
			return err
		}
		printGeomeans("geomean throughput overheads", tbl)
		return nil
	}
	return cells, render
}

// faults is the chaos figure: the KV-store and TLS-ish scenario
// workloads served through the bench supervisor while a seeded injector
// (internal/chaos) corrupts wire packets, plants code bombs, exhausts
// fuel, and presents tampered images to the verify-before-load gate. The
// sweep crosses the two workloads with a fault-rate ladder (per-mille,
// applied to every mechanism) and reports availability, successful
// throughput, restart counts, recovery latency and gate rejections —
// every column a simulated quantity, so the table is byte-identical
// across -parallel, -superblocks and -chain settings and joins the
// nightly dispatch-mode diffs. The injector seeds derive from -seed, so
// the figure is one deterministic function of the flag set.
func faults() ([]bench.Cell, renderFn) {
	const v = confllvm.VariantMPX // the deployable, verifiable configuration
	specs := []scenario.Spec{scenario.DefaultKV(shortGrid), scenario.DefaultTLSH(shortGrid)}
	rates := []uint64{0, 50, 200, 500}
	if shortGrid {
		rates = []uint64{0, 200, 500}
	}
	cells := bench.FaultCells("faults", specs, rates, v, &mcfg, scenarioSeed)
	render := func(results []bench.CellResult) error {
		fmt.Printf("Faults: supervised serving under seeded fault injection (%v, seed %d, rates in per-mille)\n", v, scenarioSeed)
		fmt.Printf("%-22s %7s %9s %11s %9s %12s %12s %7s %6s %6s\n",
			"workload/rate", "avail%", "req/s", "served", "restarts",
			"recov-mean", "recov-max", "gate✗", "shed", "rej")
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
			rep := r.M.Serve
			fmt.Printf("%-22s %6.1f%% %9d %5d/%-5d %9d %12d %12d %7d %6d %6d\n",
				r.Cell.Row, rep.AvailabilityPct(), rep.ServedPerSec(),
				rep.Served, rep.Total, rep.Restarts,
				rep.RecoveryMean(), rep.RecoveryMax(),
				rep.VerifyRejections, rep.Shed, rep.Rejected)
			record("faults", r.Cell.Row, r.Cell.Variant.String(), r.M)
		}
		fmt.Println()
		return nil
	}
	return cells, render
}

// verifyFigure is the load-gate evaluation: every workload's binary under
// both deployable schemes is verified cold-serial, cold-parallel and
// verdict-cached, then attacked with the seeded verifymut corpus. The
// first table is deterministic (counters are pure functions of the bits
// and -seed, identical under any -parallel/-superblocks/-chain setting);
// the following lines measure verifier throughput on the host and are
// marked "(host)" so the nightly byte-diff can strip them. Any mutant the
// verifier fails to kill by contract fails the whole figure.
func verifyFigure() ([]bench.Cell, renderFn) {
	vs := []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg}
	cells := bench.VerifyCells("verify", bench.Workloads(shortGrid), vs, scenarioSeed)
	render := func(results []bench.CellResult) error {
		fmt.Printf("Verify: load-gate checking of every workload binary (seed %d)\n", scenarioSeed)
		fmt.Printf("%-16s %8s %7s %6s %8s %10s %9s\n",
			"workload", "variant", "funcs", "stubs", "insts", "code-bytes", "mutants")
		var surviving int
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
			rep := r.M.Verify
			fmt.Printf("%-16s %8v %7d %6d %8d %10d %5d/%-3d\n",
				r.Cell.Row, r.Cell.Variant, rep.Funcs, rep.Stubs, rep.Insts,
				rep.CodeBytes, rep.MutantsKilled, rep.MutantsTried)
			surviving += rep.MutantsTried - rep.MutantsKilled
			record("verify", r.Cell.Row, r.Cell.Variant.String(), r.M)
		}
		fmt.Println()
		for _, r := range results {
			rep := r.M.Verify
			fmt.Printf("%-16s %8v %10.0f funcs/s %12.0f insts/s %6.2fx par %6.1fx cached  (host, %d workers)\n",
				r.Cell.Row, r.Cell.Variant, rep.FuncsPerSec(), rep.InstsPerSec(),
				rep.Speedup(), float64(rep.ParallelNS)/float64(max64(rep.CachedNS, 1)),
				rep.Workers)
		}
		fmt.Println()
		if surviving > 0 {
			return fmt.Errorf("%d mutant(s) survived the verifier — kill rate below 100%%", surviving)
		}
		return nil
	}
	return cells, render
}

// cluster is the sharded-cluster figure: the confidential KV store's key
// space partitioned across {1, 4, 16} machines, swept over request
// multipliers (1x/10x/100x) and client key skews (uniform, zipf). The
// deterministic router in internal/scenario splits one seeded client
// stream into per-shard streams (cross-shard scans fan out into per-owner
// sub-requests) and predicts each shard's output vector; every shard then
// runs as an ordinary matrix cell on the shared verified artifact, and
// the render merges each cluster's shard measurements with commutative
// clock folds — aggregate req/s is client requests over the slowest
// shard, and the min/max columns show routing balance. Every printed
// value is a simulated quantity: the table is byte-identical across
// -parallel, -superblocks and -chain settings.
func cluster() ([]bench.Cell, renderFn) {
	const v = confllvm.VariantMPX // the deployable, verifiable configuration
	cts := bench.ClusterTraffics(scenario.ClusterGrid(shortGrid, scenarioSeed))
	cells := bench.ClusterCells("cluster", cts, v, &mcfg)
	render := func(results []bench.CellResult) error {
		fmt.Printf("Cluster: sharded confidential KV store, aggregate req/s at a %.1f GHz simulated clock (%v, seed %d)\n",
			float64(bench.SimClockHz)/1e9, v, scenarioSeed)
		fmt.Printf("%-18s %3s %6s %10s %13s %23s %7s %7s\n",
			"cluster", "sh", "reqs", "agg-req/s", "shard-reqs", "shard-cycles", "splits", "xscans")
		idx := 0
		for _, ct := range cts {
			ms := make([]*bench.Measurement, ct.Spec.Shards)
			var hostNS int64
			for sh := range ms {
				r := results[idx]
				idx++
				if r.Err != nil {
					return r.Err
				}
				ms[sh] = r.M
				hostNS += r.M.HostNS
			}
			rep, err := bench.MergeShardClocks(ct, ms)
			if err != nil {
				return err
			}
			fmt.Printf("%-18s %3d %6d %10d %5d/%-7d %11d/%-11d %7d %7d\n",
				ct.Spec.Name, rep.Shards, rep.ClientRequests, rep.AggReqsPerSec(),
				rep.MinShardReqs, rep.MaxShardReqs,
				rep.MinShardCycles, rep.MaxShardCycles,
				rep.ScanSplits, rep.CrossScans)
			// One JSON row per cluster: wall = merged cluster clock, instrs
			// = cross-shard sum, host time = summed shard run times.
			m := &bench.Measurement{
				Variant: v,
				Wall:    rep.WallCycles,
				HostNS:  hostNS,
				Cluster: rep,
			}
			m.Stats.Instrs = rep.Instrs
			record("cluster", ct.Spec.Name, v.String(), m)
		}
		fmt.Println()
		return nil
	}
	return cells, render
}

// latencyFigure is the open-loop latency figure: the confidential KV
// store's per-request service times (measured at the trusted recv
// boundary in simulated cycles) replayed through a deterministic FIFO
// queue fed by seeded uniform/Poisson/bursty arrival processes at three
// offered loads. Every column is a simulated quantity — the table joins
// the nightly byte-diffs across -parallel, -superblocks and -chain —
// and the arrival streams derive from -seed, so the figure is one
// deterministic function of the flag set. The aggregate line merges
// every row's metric registry commutatively (internal/obs), the same
// discipline the cluster figure uses for shard clocks.
func latencyFigure() ([]bench.Cell, renderFn) {
	const v = confllvm.VariantMPX // the deployable, verifiable configuration
	sweeps := bench.LatencyGrid(shortGrid, scenarioSeed)
	cells := bench.LatencyCells("latency", sweeps, v, &mcfg)
	render := func(results []bench.CellResult) error {
		fmt.Printf("Latency: open-loop arrivals queueing at the trusted boundary (%v, seed %d, cycles at a %.1f GHz simulated clock)\n",
			v, scenarioSeed, float64(bench.SimClockHz)/1e9)
		fmt.Printf("%-28s %8s %10s %9s %9s %9s %9s %11s %5s\n",
			"scenario/arrival", "gap", "offer-r/s", "svc-mean", "p50", "p95", "p99", "max", "maxq")
		agg := obs.NewRegistry()
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
			rep := r.M.Latency
			fmt.Printf("%-28s %8d %10d %9d %9d %9d %9d %11d %5d\n",
				r.Cell.Row, rep.MeanGap, rep.OfferedRPS, rep.SvcMean,
				rep.P50, rep.P95, rep.P99, rep.Max, rep.MaxQueue)
			agg.Merge(rep.Registry)
			record("latency", r.Cell.Row, r.Cell.Variant.String(), r.M)
		}
		lat := agg.Hist("latency")
		fmt.Printf("aggregate: %d requests, latency p50=%d p99=%d max=%d cycles, %d trusted calls\n\n",
			lat.Count, lat.Quantile(50), lat.Quantile(99), lat.Max,
			agg.CounterValue("trusted-calls"))
		return nil
	}
	return cells, render
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// interp sweeps every workload with superblock dispatch on and off under
// OurMPX: simulated cycles must agree exactly (a runtime re-check of the
// determinism invariant) and the MIPS ratio is the dispatch speedup.
// These rows are the BENCH_interp.json trajectory datapoints. The cells
// are Serial — MIPS is a host-time measurement — so they run one at a
// time after the parallel lane drains; only their compilation shares the
// pool.
func interp() ([]bench.Cell, renderFn) {
	const v = confllvm.VariantMPX
	stepConf := machine.DefaultConfig()
	stepConf.Superblocks = false
	blockConf := machine.DefaultConfig()
	blockConf.Superblocks = true
	// -chain=off / -fuse=off / -threaded=on measure the corresponding
	// dispatch-stack variants; the stepwise lane stays fixed so the
	// speedup column is always "this stack vs stepping".
	blockConf.Chain = mcfg.Chain
	blockConf.Fuse = mcfg.Fuse
	blockConf.Threaded = mcfg.Threaded
	wls := bench.Workloads(false)
	var cells []bench.Cell
	for _, wl := range wls {
		cells = append(cells,
			bench.Cell{Figure: "interp", Row: wl.Name, Label: "stepwise",
				Workload: wl, Variant: v, Conf: &stepConf, Serial: true},
			bench.Cell{Figure: "interp", Row: wl.Name, Label: "superblock",
				Workload: wl, Variant: v, Conf: &blockConf, Serial: true},
		)
	}
	render := func(results []bench.CellResult) error {
		fmt.Println("Interpreter dispatch: superblock vs per-instruction stepping (OurMPX)")
		fmt.Printf("%-16s %12s %12s %9s\n", "workload", "step MIPS", "block MIPS", "speedup")
		var geo float64
		var n int
		for i := 0; i+1 < len(results); i += 2 {
			ms, mb := results[i], results[i+1]
			if ms.Err != nil {
				return ms.Err
			}
			if mb.Err != nil {
				return mb.Err
			}
			name := ms.Cell.Row
			if ms.M.Wall != mb.M.Wall || ms.M.Stats.Arch() != mb.M.Stats.Arch() {
				return fmt.Errorf("%s: dispatch modes disagree (stepwise %d cycles, superblock %d cycles)",
					name, ms.M.Wall, mb.M.Wall)
			}
			record("interp", name, "stepwise", ms.M)
			record("interp", name, "superblock", mb.M)
			// A sub-clock-resolution run has HostNS == 0 and MIPS == 0;
			// dividing would poison the geomean with +Inf/NaN. Skip
			// untimed cells instead.
			if ms.M.MIPS() <= 0 || mb.M.MIPS() <= 0 {
				fmt.Printf("%-16s %12s %12s %9s\n", name, "-", "-", "untimed")
				continue
			}
			speedup := mb.M.MIPS() / ms.M.MIPS()
			fmt.Printf("%-16s %12.1f %12.1f %8.2fx\n", name, ms.M.MIPS(), mb.M.MIPS(), speedup)
			geo += math.Log(speedup)
			n++
		}
		if n > 0 {
			fmt.Printf("%-16s %25s %8.2fx\n\n", "geomean", "", math.Exp(geo/float64(n)))
		} else {
			fmt.Printf("%-16s %25s %9s\n\n", "geomean", "", "untimed")
		}
		return nil
	}
	return cells, render
}
