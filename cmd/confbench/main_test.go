package main

import (
	"strings"
	"testing"
)

// TestFigureRegistryComplete pins the registry as the single source of
// truth: every registered figure resolves through figuresFor and appears
// in the derived usage enumeration (which is also what -list prints), so
// a figure cannot be runnable-but-unlisted or listed-but-unknown. It also
// pins that the figures this repo's CI drives by name actually exist.
func TestFigureRegistryComplete(t *testing.T) {
	names := figureNames()
	seen := map[string]bool{}
	for _, f := range figureRegistry {
		if f.name == "" || f.build == nil {
			t.Fatalf("registry entry %+v is incomplete", f.name)
		}
		if seen[f.name] {
			t.Fatalf("figure %q registered twice", f.name)
		}
		seen[f.name] = true
		sel, err := figuresFor(f.name)
		if err != nil {
			t.Fatalf("registered figure %q does not resolve: %v", f.name, err)
		}
		if len(sel) != 1 || sel[0].name != f.name {
			t.Fatalf("figuresFor(%q) selected %d figures", f.name, len(sel))
		}
		if !strings.Contains(names, f.name) {
			t.Fatalf("figure %q missing from the derived usage string %q", f.name, names)
		}
	}
	for _, required := range []string{"scenarios", "faults", "verify", "cluster", "latency", "interp"} {
		if !seen[required] {
			t.Fatalf("figure %q (driven by CI) is not registered", required)
		}
	}
	all, err := figuresFor("all")
	if err != nil || len(all) != len(figureRegistry) {
		t.Fatalf("figuresFor(all) = %d figures, err %v; want the whole registry (%d)",
			len(all), err, len(figureRegistry))
	}
}

// TestFiguresForUnknown: an unknown figure must error with a pointer to
// -list, so the CLI's failure mode teaches the valid set.
func TestFiguresForUnknown(t *testing.T) {
	_, err := figuresFor("fig99")
	if err == nil {
		t.Fatal("unknown figure must error")
	}
	if !strings.Contains(err.Error(), "-list") {
		t.Fatalf("error %q does not point at -list", err)
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("error %q does not name the bad figure", err)
	}
}
