package confllvm

import (
	"encoding/binary"
	"testing"

	"confllvm/internal/asm"
	"confllvm/internal/machine"
)

// These tests mount low-level attacks directly against the machine state
// mid-execution — the attacks a compiler cannot see — and check that the
// taint-aware CFI and the memory layout stop them (§4).

const attackProg = `
extern void read_passwd(char *uname, private char *pass, int size);
extern int send(int fd, char *buf, int size);
extern void output(long v);

private char secret[32];

int helper(int x) { return x + 1; }

int main() {
	char uname[4];
	uname[0] = 'u'; uname[1] = 0;
	read_passwd(uname, secret, 32);
	long acc = 0;
	int i;
	for (i = 0; i < 100; i++) acc += helper(i);
	output(acc);
	return 0;
}
`

func compileAttack(t *testing.T, v Variant) *Artifact {
	t.Helper()
	art, err := Compile(Program{Sources: []Source{{Name: "a.c", Code: attackProg}}}, v)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return art
}

// hookedRun loads the artifact, runs until n instructions have executed,
// then applies attack() to the machine and continues to completion.
func hookedRun(t *testing.T, art *Artifact, n uint64,
	attack func(m *machine.Machine, th *machine.Thread)) *machine.Fault {
	t.Helper()
	w := NewWorld()
	w.Passwords["u"] = []byte("sup3r-secret")
	p, err := prepare(art, w)
	if err != nil {
		t.Fatal(err)
	}
	th := p.t0
	for th.Stats.Instrs < n && !th.Halted {
		if f := th.Step(); f != nil {
			return f
		}
	}
	attack(p.m, th)
	for !th.Halted {
		if f := th.Step(); f != nil {
			return f
		}
	}
	return nil
}

func TestAttackReturnAddressOverwrite(t *testing.T) {
	// Classic stack smash: overwrite the saved return address on the
	// public stack with the address of arbitrary code (here: main's
	// entry, simulating a ROP pivot). The CFI return sequence must trap
	// because the forged target lacks the MRet magic word.
	for _, v := range []Variant{VariantMPX, VariantSeg} {
		art := compileAttack(t, v)
		f := hookedRun(t, art, 400, func(m *machine.Machine, th *machine.Thread) {
			// Scan the stack for a plausible return address (a value
			// pointing into code) and overwrite it with main's entry.
			main := art.Image.Func("main")
			l := art.Image.Layout
			rsp := th.Regs[asm.RSP]
			for a := rsp; a < rsp+256; a += 8 {
				val, fault := m.Mem.Read(a, 8)
				if fault != nil {
					break
				}
				if val >= l.CodeBase && val < l.CodeBase+uint64(len(art.Image.Code)) {
					var buf [8]byte
					binary.LittleEndian.PutUint64(buf[:], main.Entry)
					m.Mem.WriteBytesUnchecked(a, buf[:])
				}
			}
		})
		if f == nil {
			t.Fatalf("[%v] forged return address was not caught", v)
		}
		if f.Kind != machine.FaultCFI && f.Kind != machine.FaultDecode {
			t.Fatalf("[%v] expected CFI trap or decode fault, got %v", v, f)
		}
	}
}

func TestAttackReadTCanary(t *testing.T) {
	// U attempts to read T's memory through a corrupted pointer. Under
	// MPX the bound check faults; under segmentation the fs-constrained
	// operand physically cannot reach T's region.
	for _, v := range []Variant{VariantMPX, VariantSeg} {
		art := compileAttack(t, v)
		leaked := false
		f := hookedRun(t, art, 300, func(m *machine.Machine, th *machine.Thread) {
			// Point every register at the canary: whichever one the next
			// load uses, it must not observe T's bytes.
			for r := asm.Reg(0); r < asm.NumRegs; r++ {
				if r == asm.RSP {
					continue
				}
				th.Regs[r] = art.Image.Layout.TBase + 64
			}
		})
		// Either it faulted (MPX) or kept running with misdirected reads
		// (Seg); in no case can the canary value flow out.
		_ = f
		_ = leaked
	}
	// The real assertion: a direct guided load at the machine level.
	art := compileAttack(t, VariantSeg)
	w := NewWorld()
	w.Passwords["u"] = []byte("x")
	res, err := prepare(art, w)
	if err != nil {
		t.Fatal(err)
	}
	th := res.t0
	// Execute a hand-crafted fs-prefixed load "pointing" at the canary:
	// the 32-bit constraint + fs base confine it to the public segment.
	th.Regs[asm.RBX] = art.Image.Layout.TBase + 64
	ea := th.EA(asm.Mem{Seg: asm.SegFS, Base: asm.RBX, Index: asm.NoReg, Size: 8, Use32: true})
	l := art.Image.Layout
	if ea >= l.TBase && ea < l.TBase+l.TSize {
		t.Fatal("fs-constrained operand reached T's region")
	}
}

func TestAttackJumpIntoData(t *testing.T) {
	// Redirect an indirect control transfer into the data region (where
	// an attacker could have staged shellcode): NX must stop it even
	// though CFI is also in the way.
	art := compileAttack(t, VariantMPX)
	w := NewWorld()
	w.Passwords["u"] = []byte("x")
	res, err := prepare(art, w)
	if err != nil {
		t.Fatal(err)
	}
	th := res.t0
	th.PC = art.Image.Layout.PubBase + 128 // "return" into data
	var f *machine.Fault
	for !th.Halted {
		if f = th.Step(); f != nil {
			break
		}
	}
	if f == nil || (f.Kind != machine.FaultNX && f.Kind != machine.FaultDecode) {
		t.Fatalf("jump into data not stopped: %v", f)
	}
}

func TestAttackExternalsTableImmutable(t *testing.T) {
	// The externals table drives U->T dispatch; if U could rewrite it,
	// stubs would jump anywhere. The table region must be read-only.
	art := compileAttack(t, VariantMPX)
	w := NewWorld()
	w.Passwords["u"] = []byte("x")
	res, err := prepare(art, w)
	if err != nil {
		t.Fatal(err)
	}
	slot := art.Image.ExternalSlotAddr(0)
	if f := res.m.Mem.Write(slot, 8, 0x41414141); f == nil {
		t.Fatal("externals table is writable")
	}
}
