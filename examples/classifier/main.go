// Classifier reproduces the Privado/SGX scenario (paper §7.4): an
// 11-layer neural network compiled in all-private mode, where the model
// weights and the input image live in the enclave's private region and
// only the argmax class index crosses the boundary through the
// declassifier.
package main

import (
	"fmt"
	"log"

	"confllvm"
	"confllvm/internal/bench"
)

func main() {
	const images = 3
	configs := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantBare,
		confllvm.VariantCFI, confllvm.VariantMPX}

	fmt.Println("Privado-style private inference (all data in U marked private)")
	var base uint64
	for _, v := range configs {
		m, err := bench.RunClassifier(v, images)
		if err != nil {
			log.Fatalf("[%v] %v", v, err)
		}
		per := m.Wall / images
		if v == confllvm.VariantBase {
			base = per
		}
		fmt.Printf("%-10v  %9d cyc/image (%5.1f%% of Base)  bnd-checks=%d masked-behind-FP=%d\n",
			v, per, float64(per)/float64(base)*100, m.Stats.BndChecks, m.Stats.BndMasked)
		fmt.Printf("            declassified classes: %v\n", m.Outputs)
	}
	fmt.Println("\nnote how most MPX checks hide behind the FP pipeline (Fig. 7's effect)")
}
