// Webserver runs the NGINX-analogue (paper §7.2) across the evaluation
// configurations for one response size and prints a Figure-6-style
// throughput comparison plus the observable-channel evidence.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strconv"

	"confllvm"
	"confllvm/internal/bench"
)

func main() {
	sizeKB := 10
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			sizeKB = v
		}
	}
	const reqs = 16
	fmt.Printf("serving %d requests of %d KB responses\n\n", reqs, sizeKB)

	configs := []confllvm.Variant{confllvm.VariantBase, confllvm.VariantOneMem,
		confllvm.VariantBare, confllvm.VariantCFI, confllvm.VariantMPXSep, confllvm.VariantMPX}
	var base float64
	for _, v := range configs {
		m, err := bench.RunWebServer(v, reqs, sizeKB*1024)
		if err != nil {
			log.Fatalf("[%v] %v", v, err)
		}
		thr := float64(reqs) / float64(m.Wall) * 1e9
		if v == confllvm.VariantBase {
			base = thr
		}
		fmt.Printf("%-12v  %10.1f req/Gcyc  (%5.1f%% of Base)\n", v, thr, thr/base*100)

		// Evidence: responses are on the wire, but only encrypted; the
		// file content never appears in clear.
		if len(m.Res.NetOut) != reqs {
			log.Fatalf("[%v] expected %d responses, got %d", v, reqs, len(m.Res.NetOut))
		}
		for _, pkt := range m.Res.NetOut {
			if bytes.Contains(pkt, []byte("abcdefghij")) {
				log.Fatalf("[%v] private file content leaked in cleartext", v)
			}
		}
	}
	fmt.Println("\nall responses encrypted; private file bytes never left in clear")
}
