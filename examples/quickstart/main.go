// Quickstart walks the paper's Figure 1 story end to end:
//
//  1. a web-server request handler with the send-the-password bug is
//     rejected at compile time by the taint inference;
//  2. the fixed version compiles, passes ConfVerify, and runs on the
//     emulated machine with the password confined to the private region;
//  3. the observable network output provably never contains the password.
//
// The handler sources and the request world live in internal/bench
// (quickstart.go), where the differential-execution tests reuse them.
package main

import (
	"bytes"
	"fmt"
	"log"

	"confllvm"
	"confllvm/internal/bench"
)

func main() {
	// Step 1: the buggy handler must be rejected.
	_, err := confllvm.Compile(confllvm.Program{
		Sources: []confllvm.Source{{Name: "buggy.c", Code: bench.QuickstartBuggySrc}},
	}, confllvm.VariantSeg)
	if err == nil {
		log.Fatal("expected the password leak to be rejected")
	}
	fmt.Println("== ConfLLVM rejects the buggy handler ==")
	fmt.Println(err)
	fmt.Println()

	// Step 2: the version without the leaking line compiles for both
	// schemes.
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
		art, err := confllvm.Compile(confllvm.Program{
			Sources: []confllvm.Source{{Name: "fixed.c", Code: bench.QuickstartFixedSrc()}},
		}, v)
		if err != nil {
			log.Fatalf("[%v] compile: %v", v, err)
		}
		if err := confllvm.Verify(art); err != nil {
			log.Fatalf("[%v] ConfVerify rejected the compiler's output: %v", v, err)
		}

		// Step 3: run with a real secret and watch the wire.
		res, err := confllvm.Run(art, bench.QuickstartWorld(), nil)
		if err != nil {
			log.Fatalf("[%v] run: %v", v, err)
		}
		fmt.Printf("== %v ==\n", v)
		fmt.Printf("verified, ran %d instructions in %d simulated cycles\n",
			res.Stats.Instrs, res.Stats.Cycles)
		for _, pkt := range res.NetOut {
			if bytes.Contains(pkt, []byte(bench.QuickstartPassword)) {
				log.Fatal("the password escaped in cleartext!")
			}
		}
		fmt.Printf("network output packets: %d, none contain the password\n\n", len(res.NetOut))
	}
}
