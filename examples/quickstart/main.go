// Quickstart walks the paper's Figure 1 story end to end:
//
//  1. a web-server request handler with the send-the-password bug is
//     rejected at compile time by the taint inference;
//  2. the fixed version compiles, passes ConfVerify, and runs on the
//     emulated machine with the password confined to the private region;
//  3. the observable network output provably never contains the password.
package main

import (
	"bytes"
	"fmt"
	"log"

	"confllvm"
)

const buggy = `
#define SIZE 32
extern int send(int fd, char *buf, int buf_size);
extern void read_passwd(char *uname, private char *pass, int size);
extern int read_file(char *fname, char *out, int size);

int authenticate(char *uname, private char *upass, private char *pass);

void handleReq(char *uname, private char *upasswd, char *fname,
               char *out, int out_size) {
	char passwd[SIZE];
	char fcontents[SIZE];
	read_passwd(uname, passwd, SIZE);
	if (!authenticate(uname, upasswd, passwd)) return;
	/* BUG (paper Fig. 1, line 10): the cleartext password goes to a
	 * public channel. */
	send(1, passwd, SIZE);
	read_file(fname, fcontents, SIZE);
	int i;
	for (i = 0; i < out_size && i < SIZE; i++) out[i] = fcontents[i];
}

int authenticate(char *uname, private char *upass, private char *pass) {
	int i;
	for (i = 0; i < SIZE; i++) {
		if (upass[i] != pass[i]) return 0;
		if (upass[i] == 0) break;
	}
	return 1;
}

extern int recv(int fd, char *buf, int buf_size);
extern void decrypt(char *src, private char *dst, int size);

int main() {
	char req[128];
	char out[SIZE];
	private char upw[SIZE];
	int n = recv(0, req, 128);
	if (n < SIZE) return 1;
	/* request: 32 bytes encrypted password + filename */
	decrypt(req, upw, SIZE);
	handleReq(req + SIZE, upw, req + SIZE, out, SIZE);
	send(1, out, SIZE);
	return 0;
}
`

func main() {
	// Step 1: the buggy handler must be rejected.
	_, err := confllvm.Compile(confllvm.Program{
		Sources: []confllvm.Source{{Name: "buggy.c", Code: buggy}},
	}, confllvm.VariantSeg)
	if err == nil {
		log.Fatal("expected the password leak to be rejected")
	}
	fmt.Println("== ConfLLVM rejects the buggy handler ==")
	fmt.Println(err)
	fmt.Println()

	// Step 2: remove the leaking line and compile for both schemes.
	fixed := bytes.Replace([]byte(buggy), []byte("send(1, passwd, SIZE);"), []byte(""), 1)
	for _, v := range []confllvm.Variant{confllvm.VariantMPX, confllvm.VariantSeg} {
		art, err := confllvm.Compile(confllvm.Program{
			Sources: []confllvm.Source{{Name: "fixed.c", Code: string(fixed)}},
		}, v)
		if err != nil {
			log.Fatalf("[%v] compile: %v", v, err)
		}
		if err := confllvm.Verify(art); err != nil {
			log.Fatalf("[%v] ConfVerify rejected the compiler's output: %v", v, err)
		}

		// Step 3: run with a real secret and watch the wire.
		password := "correct-horse-battery"
		w := confllvm.NewWorld()
		// This toy request reuses the filename as the username.
		w.Passwords["file0"] = []byte(password)
		pw := make([]byte, 32)
		copy(pw, password)
		req := append([]byte{}, confllvm.EncryptForWire(pw)...)
		req = append(req, []byte("file0")...)
		req = append(req, make([]byte, 128-len(req))...)
		w.NetIn = [][]byte{req}
		w.Files["file0"] = []byte("hello world")

		res, err := confllvm.Run(art, w, nil)
		if err != nil {
			log.Fatalf("[%v] run: %v", v, err)
		}
		fmt.Printf("== %v ==\n", v)
		fmt.Printf("verified, ran %d instructions in %d simulated cycles\n",
			res.Stats.Instrs, res.Stats.Cycles)
		for _, pkt := range res.NetOut {
			if bytes.Contains(pkt, []byte(password)) {
				log.Fatal("the password escaped in cleartext!")
			}
		}
		fmt.Printf("network output packets: %d, none contain the password\n\n", len(res.NetOut))
	}
}
