// Merklefs demonstrates the integrity use of ConfLLVM (paper §7.5): a
// multi-threaded file library whose private file data can never clobber
// the public Merkle hash tree, scaling across reader threads.
package main

import (
	"fmt"
	"log"

	"confllvm"
	"confllvm/internal/bench"
)

func main() {
	const fileKB = 128
	fmt.Printf("integrity-protected parallel reads of a %d KB file\n\n", fileKB)
	fmt.Printf("%-8s %12s %12s %12s\n", "threads", "Base", "OurSeg", "OurMPX")
	for _, threads := range []int{1, 2, 3, 4, 5, 6} {
		row := fmt.Sprintf("%-8d", threads)
		var base uint64
		for _, v := range []confllvm.Variant{confllvm.VariantBase,
			confllvm.VariantSeg, confllvm.VariantMPX} {
			m, err := bench.RunMerkle(v, fileKB, threads)
			if err != nil {
				log.Fatalf("[%v/%d] %v", v, threads, err)
			}
			if v == confllvm.VariantBase {
				base = m.Wall
				row += fmt.Sprintf(" %11dc", m.Wall)
			} else {
				row += fmt.Sprintf(" %11.1f%%", float64(m.Wall)/float64(base)*100)
			}
		}
		fmt.Println(row)
	}
	fmt.Println("\nhash tree verified in every run; overheads stay flat up to the core count")
}
